// Tiny argv helpers shared by the bench binaries and `sras` so every
// tool spells its observability flags the same way:
//
//   --json <path>           machine-readable RunReport (benches)
//   --report-json <path>    same, for sras
//   --trace-format=<fmt>    text | jsonl | chrome
//   --trace-out <path>      where the trace goes
//
// `extract_option` removes the flag (and its value) from argv so the
// tools' existing positional parsing is untouched.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace sring::obs {

/// Find `--name <value>` or `--name=<value>` in argv, remove it, and
/// return the value.  Returns nullopt if absent; a flag with a
/// missing value prints a usage error and exits(2) — this is a helper
/// for tool main()s, not library code.  `name` includes the dashes
/// ("--json").
std::optional<std::string> extract_option(int& argc, char** argv,
                                          std::string_view name);

/// Find and remove a bare `--name` switch; true if it was present.
bool extract_flag(int& argc, char** argv, std::string_view name);

}  // namespace sring::obs
