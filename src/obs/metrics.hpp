// Hierarchical counter / histogram registry — the profiling half of
// the paper's §6 "compiling/profiling tool" as a queryable API.
//
// Instrument names are dot-separated paths ("dnode.0.1.issue",
// "switch.3.route_changes"); the registry stores them sorted, so
// serialization order is deterministic.  Counters and histograms are
// plain value types: the hot simulation paths keep their own raw
// arrays (see Ring / Controller / ConfigMemory) and the registry is a
// named snapshot assembled on demand by System::metrics() — reading
// the metrics never perturbs the run being measured.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace sring::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  void set(std::uint64_t value) noexcept { value_ = value; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Fixed-bucket histogram.  Bucket i counts samples <= bounds[i]
/// (bounds ascending); one implicit overflow bucket counts the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> upper_bounds);

  /// Build directly from per-bucket counts maintained elsewhere
  /// (`counts` may include the overflow bucket as its last element or
  /// omit it; missing tail buckets read as zero).
  static Histogram from_counts(std::vector<std::uint64_t> upper_bounds,
                               const std::vector<std::uint64_t>& counts);

  void record(std::uint64_t sample) noexcept;

  /// Element-wise accumulate `other` into this histogram; counts and
  /// sums saturate at uint64 max instead of wrapping.  Returns
  /// false (and leaves this histogram untouched) when the bucket
  /// bounds differ — merging histograms of different shapes is a
  /// caller bug, reported rather than silently misfiled.
  bool merge_from(const Histogram& other);

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t max() const noexcept { return max_; }
  const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const noexcept {
    return counts_;
  }

  JsonValue to_json() const;

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Named instrument collection.  Copyable; iteration is name-sorted.
class Registry {
 public:
  /// Get or create the counter at `name`.
  Counter& counter(std::string_view name);

  /// Get or create a histogram; `upper_bounds` is used on creation only.
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> upper_bounds);

  /// Insert a prebuilt histogram under `name` (replaces any existing).
  void put_histogram(std::string_view name, Histogram h);

  const Counter* find_counter(std::string_view name) const noexcept;
  const Histogram* find_histogram(std::string_view name) const noexcept;

  const std::map<std::string, Counter, std::less<>>& counters()
      const noexcept {
    return counters_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms()
      const noexcept {
    return histograms_;
  }

  std::size_t size() const noexcept {
    return counters_.size() + histograms_.size();
  }

  /// Accumulate another registry into this one: counters add, and
  /// histograms with matching bounds add bucket-wise (an absent name
  /// is copied).  This is how the runtime folds per-worker registries
  /// into one fleet snapshot — each worker owns its registry
  /// lock-free and the merge happens only at snapshot time.  Throws
  /// SimError when two histograms share a name but not bounds.
  void merge_from(const Registry& other);

  /// {"counters": {name: value, ...}, "histograms": {name: {...}, ...}}
  JsonValue to_json() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace sring::obs
