#include "obs/sinks.hpp"

#include <iomanip>

#include "core/ring.hpp"
#include "obs/json.hpp"

namespace sring::obs {

// --- TextSink ----------------------------------------------------------

void TextSink::event(const Event&) {}

void TextSink::cycle_end(const CycleState& state) {
  auto& os = *out_;
  os << "cyc " << std::setw(6) << state.cycle << " pc " << std::setw(4)
     << state.ctrl_pc << (state.ctrl_halted ? " H" : "  ") << " bus "
     << std::setw(5) << as_signed(state.bus) << " |";
  const Ring& ring = *state.ring;
  const auto& g = ring.geometry();
  for (std::size_t layer = 0; layer < g.layers; ++layer) {
    for (std::size_t lane = 0; lane < g.lanes; ++lane) {
      os << ' ' << std::setw(6) << as_signed(ring.dnode(layer, lane).out());
    }
    if (layer + 1 < g.layers) os << " /";
  }
  os << '\n';
}

// --- JsonlSink ---------------------------------------------------------

void JsonlSink::begin(const std::vector<Track>& tracks) {
  tracks_ = tracks;
  auto& os = *out_;
  os << "{\"type\":\"trace_begin\",\"tracks\":[";
  bool first = true;
  for (const auto& t : tracks_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, t.name);
  }
  os << "]}\n";
}

void JsonlSink::event(const Event& e) {
  auto& os = *out_;
  os << "{\"type\":\"event\",\"cycle\":" << e.cycle << ",\"track\":";
  if (e.track < tracks_.size()) {
    write_json_string(os, tracks_[e.track].name);
  } else {
    os << e.track;
  }
  os << ",\"name\":";
  write_json_string(os, e.name);
  os << ",\"value\":" << e.value << ",\"dur\":" << e.dur << "}\n";
}

void JsonlSink::end() { *out_ << "{\"type\":\"trace_end\"}\n"; }

// --- ChromeTraceSink ---------------------------------------------------

ChromeTraceSink::~ChromeTraceSink() { end(); }

void ChromeTraceSink::separator() {
  if (!first_) *out_ << ",\n";
  first_ = false;
}

void ChromeTraceSink::begin(const std::vector<Track>& tracks) {
  tracks_ = tracks;
  auto& os = *out_;
  os << "[\n";
  open_ = true;
  first_ = true;
  // Name the processes once and every thread (track) in table order.
  const char* pid_names[] = {"", "system", "dnodes", "switches"};
  std::uint32_t named_pids = 0;
  for (const auto& t : tracks_) {
    if (t.pid < 4 && !(named_pids & (1u << t.pid))) {
      named_pids |= 1u << t.pid;
      separator();
      os << "{\"ph\":\"M\",\"pid\":" << t.pid
         << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":";
      write_json_string(os, pid_names[t.pid]);
      os << "}}";
    }
    separator();
    os << "{\"ph\":\"M\",\"pid\":" << t.pid << ",\"tid\":" << t.tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":";
    write_json_string(os, t.name);
    os << "}}";
  }
}

void ChromeTraceSink::event(const Event& e) {
  if (!open_) return;
  auto& os = *out_;
  std::uint32_t pid = 1;
  std::uint32_t tid = e.track;
  if (e.track < tracks_.size()) {
    pid = tracks_[e.track].pid;
    tid = tracks_[e.track].tid;
  }
  separator();
  os << "{\"ph\":\"X\",\"ts\":" << e.cycle << ",\"dur\":" << e.dur
     << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"name\":";
  write_json_string(os, e.name);
  os << ",\"args\":{\"value\":" << e.value << "}}";
}

void ChromeTraceSink::end() {
  if (!open_) return;
  open_ = false;
  *out_ << "\n]\n";
}

}  // namespace sring::obs
