#include "obs/flight_recorder.hpp"

#include <utility>

namespace sring::obs {

JsonValue SpanRecord::to_json() const {
  JsonValue j = JsonValue::object();
  j.set("trace_id", trace_id);
  j.set("name", name);
  j.set("ok", ok);
  if (!ok) j.set("error", error);
  j.set("worker", std::uint64_t{worker});
  j.set("sim_cycles", sim_cycles);
  j.set("plan_hits", plan_hits);
  j.set("superstep_cycles", superstep_cycles);
  j.set("start_offset_us", start_offset_us);
  j.set("queue_wait_us", std::uint64_t{queue_wait_us});
  j.set("arm_us", std::uint64_t{arm_us});
  j.set("execute_us", std::uint64_t{execute_us});
  j.set("serialize_us", std::uint64_t{serialize_us});
  j.set("e2e_us", std::uint64_t{e2e_us});
  j.set("slow", slow);
  return j;
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config) {}

void FlightRecorder::record(SpanRecord rec) {
  rec.slow = config_.slow_threshold_us > 0 &&
             rec.e2e_us >= config_.slow_threshold_us;
  ++recorded_;
  if (rec.slow || !rec.ok) {
    ++captured_total_;
    captured_.push_back(rec);
    while (captured_.size() > config_.captured_capacity) {
      captured_.pop_front();
    }
  }
  recent_.push_back(std::move(rec));
  while (recent_.size() > config_.recent_capacity) recent_.pop_front();
}

std::vector<SpanRecord> FlightRecorder::recent() const {
  return {recent_.begin(), recent_.end()};
}

std::vector<SpanRecord> FlightRecorder::captured() const {
  return {captured_.begin(), captured_.end()};
}

void FlightRecorder::write_jsonl(std::ostream& os) const {
  for (const SpanRecord& rec : captured_) os << rec.to_json().dump() << '\n';
}

}  // namespace sring::obs
