// Quantile extraction shared by the benches and the serving stats
// path, so p50/p99 mean the same thing wherever they are printed.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace sring::obs {

/// Exact quantile of an ascending-sorted sample vector by linear
/// interpolation between the two straddling order statistics (the
/// same estimator bench_serve always used).  `q` in [0, 1]; an empty
/// vector reads as 0.
double percentile_sorted(const std::vector<double>& sorted, double q);

/// Quantile estimated from a fixed-bucket histogram: find the bucket
/// holding the q-th sample and interpolate linearly inside it (the
/// overflow bucket reads as the observed max).  Exact samples are
/// gone by then, so this is an estimate bounded by the bucket width;
/// an empty histogram reads as 0.
double histogram_quantile(const Histogram& h, double q);

/// Shared bucket bounds for microsecond-latency histograms: a
/// 1-2-5 ladder from 1 us to 10 s.  Every latency histogram in the
/// runtime and the server uses these, so fleet merges never hit a
/// bounds mismatch.
const std::vector<std::uint64_t>& latency_bounds_us();

}  // namespace sring::obs
