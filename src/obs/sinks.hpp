// The three standard event sinks.
//
//  * TextSink   — one human-readable line per cycle (the simulator's
//                 original "logic analyzer" format, cf. paper fig. 6).
//  * JsonlSink  — one JSON object per line: a `trace_begin` record,
//                 then every structured event, then `trace_end`.
//  * ChromeTraceSink — Chrome `trace_event` JSON array of complete
//                 ("ph":"X") events, one track per Dnode / switch /
//                 controller; loads in chrome://tracing and Perfetto.
//
// All sinks borrow their ostream: the stream must outlive the sink.
// Sinks themselves are attached to a System by raw pointer and must
// outlive the run (see System::set_trace).
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/event.hpp"

namespace sring::obs {

/// Text format, one line per cycle:
///   cyc      3 pc    2   bus     0 |      1      0 /      5      0
class TextSink : public EventSink {
 public:
  explicit TextSink(std::ostream& out) : out_(&out) {}

  void event(const Event& e) override;  // no-op: text is state-based
  void cycle_end(const CycleState& state) override;

 private:
  std::ostream* out_;
};

/// JSON Lines: {"type":"trace_begin",...}, then one event per line
/// {"type":"event","cycle":N,"track":"dnode 0.0","name":"mac",
///  "value":V,"dur":1}, then {"type":"trace_end"}.
class JsonlSink : public EventSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(&out) {}

  void begin(const std::vector<Track>& tracks) override;
  void event(const Event& e) override;
  void end() override;

 private:
  std::ostream* out_;
  std::vector<Track> tracks_;
};

/// Chrome trace_event "JSON Array Format".  `begin` opens the array
/// and names the tracks with "M" metadata records; every event becomes
/// a complete event ("ph":"X") with ts/dur in microseconds (1 cycle =
/// 1 us).  `end` closes the array; the destructor closes it if the
/// owner forgot.
class ChromeTraceSink : public EventSink {
 public:
  explicit ChromeTraceSink(std::ostream& out) : out_(&out) {}
  ~ChromeTraceSink() override;

  void begin(const std::vector<Track>& tracks) override;
  void event(const Event& e) override;
  void end() override;

 private:
  void separator();

  std::ostream* out_;
  std::vector<Track> tracks_;
  bool open_ = false;
  bool first_ = true;
};

}  // namespace sring::obs
