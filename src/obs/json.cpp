#include "obs/json.hpp"

#include <cstdio>
#include <sstream>

namespace sring::obs {

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  items_.push_back(std::move(v));
  return items_.back();
}

JsonValue& JsonValue::set(std::string_view key, JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(std::string(key), std::move(v));
  return members_.back().second;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t JsonValue::as_uint() const noexcept {
  switch (kind_) {
    case Kind::kInt:
      return int_ >= 0 ? static_cast<std::uint64_t>(int_) : 0;
    case Kind::kUint:
      return uint_;
    case Kind::kDouble:
      return double_ >= 0.0 ? static_cast<std::uint64_t>(double_) : 0;
    default:
      return 0;
  }
}

double JsonValue::as_double() const noexcept {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kUint:
      return static_cast<double>(uint_);
    case Kind::kDouble:
      return double_;
    default:
      return 0.0;
  }
}

void write_json_string(std::ostream& os, std::string_view text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void JsonValue::dump(std::ostream& os) const {
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kInt:
      os << int_;
      break;
    case Kind::kUint:
      os << uint_;
      break;
    case Kind::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.10g", double_);
      os << buf;
      break;
    }
    case Kind::kString:
      write_json_string(os, string_);
      break;
    case Kind::kArray: {
      os << '[';
      bool first = true;
      for (const auto& item : items_) {
        if (!first) os << ',';
        first = false;
        item.dump(os);
      }
      os << ']';
      break;
    }
    case Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) os << ',';
        first = false;
        write_json_string(os, k);
        os << ':';
        v.dump(os);
      }
      os << '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::ostringstream ss;
  dump(ss);
  return ss.str();
}

}  // namespace sring::obs
