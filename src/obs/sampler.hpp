// Rolling time-series sampler over an obs::Registry.
//
// A Sampler is fed whole registry snapshots at (roughly) fixed
// intervals — the net server drives it from its poll loop's existing
// timer — and keeps the last `capacity` delta points in a bounded
// ring.  Each point records, for every tracked counter, both the
// cumulative total and the delta since the previous sample, which is
// what turns monotonic counters (jobs completed, bytes in, busy
// rejects) into rates (jobs/s, bytes/s) without the sampler ever
// touching the hot path.  The ring flushes as a JSONL time series for
// offline plotting.  Time is injected by the caller, so tests drive
// the sampler with a synthetic clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace sring::obs {

struct SamplerConfig {
  /// Ring bound: oldest points fall off past this many samples.
  std::size_t capacity = 128;

  /// Counter names to track.  A name absent from a snapshot reads as
  /// 0 (counters appear lazily, e.g. before the first job completes).
  std::vector<std::string> counters;
};

class Sampler {
 public:
  using Clock = std::chrono::steady_clock;

  /// One delta snapshot.  `totals` / `deltas` align with tracked().
  struct Point {
    std::uint64_t offset_us = 0;    ///< since the first sample
    std::uint64_t interval_us = 0;  ///< since the previous sample (0 first)
    std::vector<std::uint64_t> totals;
    std::vector<std::uint64_t> deltas;
  };

  explicit Sampler(SamplerConfig config);

  /// Take one snapshot at `now`.  Counter regressions (a registry that
  /// restarted) clamp the delta to 0 rather than underflowing.
  void sample(const Registry& registry, Clock::time_point now);

  const std::vector<std::string>& tracked() const noexcept {
    return config_.counters;
  }
  std::size_t size() const noexcept { return ring_.size(); }
  bool empty() const noexcept { return ring_.empty(); }

  /// Oldest-to-newest copy of the ring.
  std::vector<Point> points() const;

  /// Per-second rates derived from the newest point's deltas, one
  /// entry per tracked counter.  Empty until two samples exist (a
  /// single sample has no interval to rate over).
  std::vector<std::pair<std::string, double>> rates() const;

  /// One JSON object per ring point: {"offset_us":..,"interval_us":..,
  /// "totals":{name:..},"deltas":{name:..}}.
  void write_jsonl(std::ostream& os) const;

 private:
  SamplerConfig config_;
  std::deque<Point> ring_;
  bool started_ = false;
  Clock::time_point first_;
  Clock::time_point last_;
  std::vector<std::uint64_t> last_totals_;
};

}  // namespace sring::obs
