#include "obs/event.hpp"

namespace sring::obs {

std::vector<Track> make_tracks(std::size_t layers, std::size_t lanes) {
  std::vector<Track> tracks;
  tracks.reserve(3 + layers * lanes + layers);
  tracks.push_back({TrackKind::kController, 1, 0, "ctrl"});
  tracks.push_back({TrackKind::kBus, 1, 1, "bus"});
  tracks.push_back({TrackKind::kRing, 1, 2, "ring"});
  for (std::size_t layer = 0; layer < layers; ++layer) {
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      Track t;
      t.kind = TrackKind::kDnode;
      t.pid = 2;
      t.tid = static_cast<std::uint32_t>(layer * lanes + lane);
      t.name = "dnode " + std::to_string(layer) + "." + std::to_string(lane);
      tracks.push_back(std::move(t));
    }
  }
  for (std::size_t sw = 0; sw < layers; ++sw) {
    Track t;
    t.kind = TrackKind::kSwitch;
    t.pid = 3;
    t.tid = static_cast<std::uint32_t>(sw);
    t.name = "switch " + std::to_string(sw);
    tracks.push_back(std::move(t));
  }
  return tracks;
}

void EventSink::begin(const std::vector<Track>&) {}
void EventSink::cycle_end(const CycleState&) {}
void EventSink::end() {}

}  // namespace sring::obs
