// Structured event tracing.
//
// The simulator publishes its per-cycle activity as a stream of
// `Event` records on named tracks (one per Dnode, one per switch, one
// each for the controller, the shared bus and ring-wide conditions),
// plus one `CycleState` callback per cycle carrying the full post-edge
// machine state for whole-system sinks (the classic text trace).
//
// Sinks implement `EventSink`.  Attachment is a raw pointer
// (`System::set_trace`): the System never owns the sink, and with no
// sink attached the instrumentation code is a single null check per
// cycle — observation only, never part of the simulated semantics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace sring {

class Ring;

namespace obs {

/// What a track represents; fixed pid/tid assignment for Chrome
/// traces: controller/bus/ring run under pid 1, Dnodes under pid 2
/// (tid = flat index), switches under pid 3 (tid = switch index).
enum class TrackKind : std::uint8_t {
  kController = 0,
  kBus,
  kRing,
  kDnode,
  kSwitch,
};

struct Track {
  TrackKind kind = TrackKind::kController;
  std::uint32_t pid = 1;
  std::uint32_t tid = 0;
  std::string name;  ///< "ctrl", "bus", "ring", "dnode 0.1", "switch 3"
};

/// Track table for a `layers x lanes` ring; indices follow
/// `kControllerTrack` / `dnode_track` / `switch_track` below.
std::vector<Track> make_tracks(std::size_t layers, std::size_t lanes);

inline constexpr std::uint32_t kControllerTrack = 0;
inline constexpr std::uint32_t kBusTrack = 1;
inline constexpr std::uint32_t kRingTrack = 2;

inline constexpr std::uint32_t dnode_track(std::size_t flat_index) {
  return 3 + static_cast<std::uint32_t>(flat_index);
}
inline constexpr std::uint32_t switch_track(std::size_t dnode_count,
                                            std::size_t sw) {
  return 3 + static_cast<std::uint32_t>(dnode_count + sw);
}

/// One traced occurrence.  `name` must reference storage that outlives
/// the sink call (all emitters use static mnemonic tables).
struct Event {
  std::uint64_t cycle = 0;  ///< cycle the event belongs to
  std::uint32_t track = 0;  ///< index into the track table
  std::string_view name;    ///< e.g. "mac", "stall.inpop", "route.update"
  std::int64_t value = 0;   ///< primary payload (result, pc, word count)
  std::uint64_t dur = 1;    ///< duration in cycles
};

/// Full post-edge machine state, published once per cycle.
struct CycleState {
  std::uint64_t cycle = 0;
  std::uint64_t ctrl_pc = 0;
  bool ctrl_halted = false;
  Word bus = 0;
  const Ring* ring = nullptr;
};

class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Called once on attachment with the track table.
  virtual void begin(const std::vector<Track>& tracks);

  /// One structured event; may fire many times per cycle.
  virtual void event(const Event& e) = 0;

  /// Full machine state after the cycle's clock edge.
  virtual void cycle_end(const CycleState& state);

  /// Finalize the output (close the Chrome JSON array, flush...).
  /// The System never calls this: the sink's owner does, or the
  /// destructor of sinks that need it.
  virtual void end();
};

}  // namespace obs
}  // namespace sring
