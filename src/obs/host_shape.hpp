// Host-shape self-description for benchmark reports: the machine and
// build-flag context a perf number was recorded under.  A
// BENCH_*.json from a 1-core container or a sanitizer build is
// meaningless without this block, so write_run_report attaches it to
// every report.
#pragma once

#include "obs/json.hpp"

namespace sring::obs {

/// {"cores":.., "page_size":.., "build_type":"release|debug",
///  "compiler":.., "lto":bool, "sanitizers":".."} — everything is
/// resolved at compile or process start, no syscalls beyond sysconf.
JsonValue host_shape_json();

}  // namespace sring::obs
