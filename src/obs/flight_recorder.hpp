// Flight recorder: the last N completed job timelines, with slow and
// failed jobs captured verbatim.
//
// Under load the interesting job is the one that already finished —
// the p99 outlier, the request that raised a SimError — and by the
// time anyone asks, its timeline is gone.  The recorder keeps two
// bounded rings: `recent` holds the last N completions regardless of
// outcome (a rolling tape), and `captured` pins jobs that exceeded
// the slow threshold or ended in error, so a burst of fast jobs
// cannot evict the one worth diagnosing.  Recording is a struct move
// into a ring off the simulation hot path; dumps are JSONL, one
// record per line.
#pragma once

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace sring::obs {

/// One completed job's span timeline, flattened to durations (the
/// wire and JSONL form of a SpanTimeline plus job identity and the
/// per-run simulation counters worth correlating with wall time).
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::string name;
  bool ok = true;
  std::string error;  ///< SimError text when !ok
  std::uint32_t worker = 0;
  std::uint64_t sim_cycles = 0;
  std::uint64_t plan_hits = 0;
  std::uint64_t superstep_cycles = 0;
  std::uint64_t start_offset_us = 0;  ///< admission vs server start
  std::uint32_t queue_wait_us = 0;
  std::uint32_t arm_us = 0;
  std::uint32_t execute_us = 0;
  std::uint32_t serialize_us = 0;
  std::uint32_t e2e_us = 0;
  bool slow = false;  ///< exceeded the recorder's slow threshold

  bool operator==(const SpanRecord&) const = default;

  JsonValue to_json() const;
};

struct FlightRecorderConfig {
  std::size_t recent_capacity = 64;
  std::size_t captured_capacity = 64;
  /// e2e threshold past which a job is captured; 0 captures nothing
  /// on time alone (errors are always captured).
  std::uint64_t slow_threshold_us = 100'000;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config);

  /// File one completed job.  Sets `rec.slow` from the threshold and
  /// pins slow/error records in the captured ring.
  void record(SpanRecord rec);

  std::uint64_t recorded() const noexcept { return recorded_; }
  std::uint64_t captured_total() const noexcept { return captured_total_; }

  /// Oldest-to-newest copies of the rings.
  std::vector<SpanRecord> recent() const;
  std::vector<SpanRecord> captured() const;

  /// JSONL dump of the captured ring (the diagnosable outliers).
  void write_jsonl(std::ostream& os) const;

 private:
  FlightRecorderConfig config_;
  std::deque<SpanRecord> recent_;
  std::deque<SpanRecord> captured_;
  std::uint64_t recorded_ = 0;
  std::uint64_t captured_total_ = 0;
};

}  // namespace sring::obs
