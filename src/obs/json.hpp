// Minimal JSON document model for the observability layer.
//
// Serialization-oriented: objects keep their members in insertion
// order, so every sink and report emits a byte-stable field ordering
// (the golden tests rely on it).  Numbers are stored as signed/unsigned
// 64-bit integers or doubles; doubles print with up to 10 significant
// digits, integers exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sring::obs {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull = 0,
    kBool,
    kInt,
    kUint,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;
  JsonValue(std::nullptr_t) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(int v) : JsonValue(static_cast<std::int64_t>(v)) {}
  JsonValue(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(std::string_view s) : JsonValue(std::string(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}

  static JsonValue array();
  static JsonValue object();

  Kind kind() const noexcept { return kind_; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }

  /// Append to an array (converts a null value into an array).
  JsonValue& push_back(JsonValue v);

  /// Set an object member, appended in insertion order (converts a
  /// null value into an object; overwrites an existing key in place).
  JsonValue& set(std::string_view key, JsonValue v);

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;

  const std::vector<JsonValue>& items() const noexcept { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members()
      const noexcept {
    return members_;
  }

  std::uint64_t as_uint() const noexcept;
  double as_double() const noexcept;
  const std::string& as_string() const noexcept { return string_; }

  /// Compact single-line serialization (no spaces after separators).
  void dump(std::ostream& os) const;
  std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Write `text` as a JSON string literal (quotes + escapes).
void write_json_string(std::ostream& os, std::string_view text);

}  // namespace sring::obs
