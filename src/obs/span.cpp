#include "obs/span.hpp"

#include <atomic>
#include <cstdlib>

namespace sring::obs {

namespace {

bool env_default() {
  const char* v = std::getenv("SRING_NO_TELEMETRY");
  const bool disabled = v != nullptr && v[0] != '\0' &&
                        !(v[0] == '0' && v[1] == '\0');
  return !disabled;
}

std::atomic<bool>& flag() {
  static std::atomic<bool> enabled{env_default()};
  return enabled;
}

}  // namespace

bool telemetry_enabled() noexcept {
  return flag().load(std::memory_order_relaxed);
}

void set_telemetry_enabled(bool on) noexcept {
  flag().store(on, std::memory_order_relaxed);
}

}  // namespace sring::obs
