#include "obs/host_shape.hpp"

#include <unistd.h>

#include <cstdint>
#include <thread>

namespace sring::obs {

JsonValue host_shape_json() {
  JsonValue j = JsonValue::object();
  j.set("cores", std::uint64_t{std::thread::hardware_concurrency()});
  const long page = ::sysconf(_SC_PAGESIZE);
  j.set("page_size", std::uint64_t{page > 0 ? static_cast<std::uint64_t>(
                                                  page)
                                            : 0});
#ifdef NDEBUG
  j.set("build_type", "release");
#else
  j.set("build_type", "debug");
#endif
#ifdef __VERSION__
  j.set("compiler", __VERSION__);
#else
  j.set("compiler", "unknown");
#endif
#ifdef SRING_BUILD_LTO
  j.set("lto", true);
#else
  j.set("lto", false);
#endif
#ifdef SRING_BUILD_SANITIZE
  j.set("sanitizers", SRING_BUILD_SANITIZE);
#else
  j.set("sanitizers", "");
#endif
  return j;
}

}  // namespace sring::obs
