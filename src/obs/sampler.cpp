#include "obs/sampler.hpp"

#include "obs/json.hpp"

namespace sring::obs {

namespace {

std::uint64_t us_since(Sampler::Clock::time_point from,
                       Sampler::Clock::time_point to) {
  if (to < from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

Sampler::Sampler(SamplerConfig config) : config_(std::move(config)) {
  last_totals_.assign(config_.counters.size(), 0);
}

void Sampler::sample(const Registry& registry, Clock::time_point now) {
  Point p;
  p.totals.reserve(config_.counters.size());
  p.deltas.reserve(config_.counters.size());
  for (std::size_t i = 0; i < config_.counters.size(); ++i) {
    const Counter* c = registry.find_counter(config_.counters[i]);
    const std::uint64_t total = c != nullptr ? c->value() : 0;
    const std::uint64_t prev = last_totals_[i];
    p.totals.push_back(total);
    p.deltas.push_back(started_ && total >= prev ? total - prev : 0);
    last_totals_[i] = total;
  }
  if (!started_) {
    started_ = true;
    first_ = now;
  } else {
    p.interval_us = us_since(last_, now);
  }
  p.offset_us = us_since(first_, now);
  last_ = now;
  ring_.push_back(std::move(p));
  while (ring_.size() > config_.capacity) ring_.pop_front();
}

std::vector<Sampler::Point> Sampler::points() const {
  return {ring_.begin(), ring_.end()};
}

std::vector<std::pair<std::string, double>> Sampler::rates() const {
  std::vector<std::pair<std::string, double>> out;
  if (ring_.size() < 2) return out;
  const Point& p = ring_.back();
  if (p.interval_us == 0) return out;
  const double seconds = static_cast<double>(p.interval_us) / 1e6;
  out.reserve(config_.counters.size());
  for (std::size_t i = 0; i < config_.counters.size(); ++i) {
    out.emplace_back(config_.counters[i],
                     static_cast<double>(p.deltas[i]) / seconds);
  }
  return out;
}

void Sampler::write_jsonl(std::ostream& os) const {
  for (const Point& p : ring_) {
    JsonValue j = JsonValue::object();
    j.set("offset_us", p.offset_us);
    j.set("interval_us", p.interval_us);
    JsonValue totals = JsonValue::object();
    JsonValue deltas = JsonValue::object();
    for (std::size_t i = 0; i < config_.counters.size(); ++i) {
      totals.set(config_.counters[i], p.totals[i]);
      deltas.set(config_.counters[i], p.deltas[i]);
    }
    j.set("totals", std::move(totals));
    j.set("deltas", std::move(deltas));
    os << j.dump() << '\n';
  }
}

}  // namespace sring::obs
