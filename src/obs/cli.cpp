#include "obs/cli.hpp"

#include <cstdio>
#include <cstdlib>

namespace sring::obs {

namespace {

void remove_args(int& argc, char** argv, int at, int count) {
  for (int i = at; i + count < argc; ++i) argv[i] = argv[i + count];
  argc -= count;
}

}  // namespace

std::optional<std::string> extract_option(int& argc, char** argv,
                                          std::string_view name) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == name) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value after %.*s\n", argv[0],
                     static_cast<int>(name.size()), name.data());
        std::exit(2);
      }
      std::string value = argv[i + 1];
      remove_args(argc, argv, i, 2);
      return value;
    }
    if (arg.size() > name.size() + 1 &&
        arg.substr(0, name.size()) == name && arg[name.size()] == '=') {
      std::string value(arg.substr(name.size() + 1));
      remove_args(argc, argv, i, 1);
      return value;
    }
  }
  return std::nullopt;
}

bool extract_flag(int& argc, char** argv, std::string_view name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == name) {
      remove_args(argc, argv, i, 1);
      return true;
    }
  }
  return false;
}

}  // namespace sring::obs
