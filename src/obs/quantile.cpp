#include "obs/quantile.hpp"

#include <algorithm>
#include <cmath>

namespace sring::obs {

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double histogram_quantile(const Histogram& h, double q) {
  const std::uint64_t total = h.count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target =
      std::max(1.0, std::ceil(q * static_cast<double>(total)));

  const auto& bounds = h.bounds();
  const auto& counts = h.bucket_counts();
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= target) {
      if (i >= bounds.size()) {
        // Overflow bucket: all that is known is "beyond the last
        // bound"; the recorded max is the tightest honest answer.
        return static_cast<double>(h.max());
      }
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double upper = static_cast<double>(bounds[i]);
      const double frac =
          (target - cum) / static_cast<double>(counts[i]);
      const double v = lower + (upper - lower) * frac;
      // Never report beyond the observed max (a lone sample in a wide
      // bucket would otherwise read as the bucket's upper bound).
      return std::min(v, static_cast<double>(h.max()));
    }
    cum = next;
  }
  return static_cast<double>(h.max());
}

const std::vector<std::uint64_t>& latency_bounds_us() {
  static const std::vector<std::uint64_t> bounds = [] {
    std::vector<std::uint64_t> b;
    for (std::uint64_t decade = 1; decade <= 1'000'000; decade *= 10) {
      b.push_back(decade);
      b.push_back(decade * 2);
      b.push_back(decade * 5);
    }
    b.push_back(10'000'000);  // 10 s: anything slower is the overflow
    return b;
  }();
  return bounds;
}

}  // namespace sring::obs
