// Per-job span timelines — the wall-clock half of the serving-path
// telemetry.  A SpanTimeline rides inside a queued job and is stamped
// at each lifecycle boundary (enqueue, dequeue, pool arm, execute
// done, result assembled); consumers derive per-phase durations
// (queue wait, arm, execute) from the stamps.  Stamping is a single
// steady_clock read per phase — cheap enough for every job — and the
// whole facility collapses to no-ops behind the process-wide
// telemetry switch, so `SRING_NO_TELEMETRY=1` runs carry zero extra
// clock traffic while keeping job outputs bit-identical either way.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

namespace sring::obs {

/// Process-wide telemetry master switch.  Defaults to on; the
/// SRING_NO_TELEMETRY environment variable (any non-empty value other
/// than "0") turns it off at start-up.  Tests flip it at runtime to
/// hold the telemetry-off path to the same outputs.
bool telemetry_enabled() noexcept;
void set_telemetry_enabled(bool on) noexcept;

/// Monotonic stamps over one job's lifecycle.  A default-constructed
/// timeline has no stamps; a phase that was never stamped (or stamped
/// with telemetry off) reads as absent and every duration touching it
/// is zero.
class SpanTimeline {
 public:
  using Clock = std::chrono::steady_clock;

  enum Phase : std::uint8_t {
    kEnqueued = 0,  ///< admitted to the JobQueue
    kDequeued,      ///< picked up by a worker (queue wait ends)
    kArmed,         ///< SystemPool lease acquired, program resident
    kExecuted,      ///< simulation finished (sim cycles burned here)
    kCompleted,     ///< outputs sliced + RunReport assembled
    kPhaseCount,
  };

  void stamp(Phase p) noexcept {
    if (telemetry_enabled()) at_[p] = Clock::now();
  }

  bool has(Phase p) const noexcept {
    return at_[p].time_since_epoch().count() != 0;
  }

  Clock::time_point at(Phase p) const noexcept { return at_[p]; }

  /// Microseconds from `from` to `to`; 0 when either stamp is absent
  /// or the clock ran backwards between them.
  std::uint64_t us_between(Phase from, Phase to) const noexcept {
    if (!has(from) || !has(to) || at_[to] < at_[from]) return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(at_[to] -
                                                              at_[from])
            .count());
  }

  std::uint64_t queue_wait_us() const noexcept {
    return us_between(kEnqueued, kDequeued);
  }
  std::uint64_t arm_us() const noexcept {
    return us_between(kDequeued, kArmed);
  }
  std::uint64_t execute_us() const noexcept {
    return us_between(kArmed, kExecuted);
  }
  std::uint64_t total_us() const noexcept {
    return us_between(kEnqueued, kCompleted);
  }

 private:
  std::array<Clock::time_point, kPhaseCount> at_{};
};

}  // namespace sring::obs
