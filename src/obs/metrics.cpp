#include "obs/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sring::obs {

Histogram::Histogram(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  check(std::is_sorted(bounds_.begin(), bounds_.end()),
        "Histogram: bucket bounds must be ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

Histogram Histogram::from_counts(std::vector<std::uint64_t> upper_bounds,
                                 const std::vector<std::uint64_t>& counts) {
  Histogram h(std::move(upper_bounds));
  check(counts.size() <= h.counts_.size(),
        "Histogram::from_counts: more counts than buckets");
  for (std::size_t i = 0; i < counts.size(); ++i) {
    h.counts_[i] = counts[i];
    h.count_ += counts[i];
    // sum/max are approximated by the bucket bound the samples fell in.
    const std::uint64_t bound =
        i < h.bounds_.size() ? h.bounds_[i]
                             : (h.bounds_.empty() ? 0 : h.bounds_.back());
    h.sum_ += counts[i] * bound;
    if (counts[i] > 0) h.max_ = std::max(h.max_, bound);
  }
  return h;
}

void Histogram::record(std::uint64_t sample) noexcept {
  std::size_t i = 0;
  while (i < bounds_.size() && sample > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += sample;
  max_ = std::max(max_, sample);
}

namespace {

/// Saturating add: merged totals pin at uint64 max instead of
/// wrapping — a histogram that has seen "too many" samples must never
/// report a small count.
std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) noexcept {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

}  // namespace

bool Histogram::merge_from(const Histogram& other) {
  if (bounds_ != other.bounds_) return false;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] = sat_add(counts_[i], other.counts_[i]);
  }
  count_ = sat_add(count_, other.count_);
  sum_ = sat_add(sum_, other.sum_);
  max_ = std::max(max_, other.max_);
  return true;
}

JsonValue Histogram::to_json() const {
  JsonValue v = JsonValue::object();
  v.set("count", count_);
  v.set("sum", sum_);
  v.set("max", max_);
  JsonValue bounds = JsonValue::array();
  for (const auto b : bounds_) bounds.push_back(b);
  v.set("bounds", std::move(bounds));
  JsonValue counts = JsonValue::array();
  for (const auto c : counts_) counts.push_back(c);
  v.set("buckets", std::move(counts));
  return v;
}

Counter& Registry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<std::uint64_t> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(std::string(name), Histogram(std::move(upper_bounds)))
      .first->second;
}

void Registry::put_histogram(std::string_view name, Histogram h) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    it->second = std::move(h);
    return;
  }
  histograms_.emplace(std::string(name), std::move(h));
}

const Counter* Registry::find_counter(std::string_view name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(
    std::string_view name) const noexcept {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).add(c.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
      continue;
    }
    check(it->second.merge_from(h),
          "Registry::merge_from: histogram '" + name +
              "' has mismatched bucket bounds");
  }
}

JsonValue Registry::to_json() const {
  JsonValue v = JsonValue::object();
  JsonValue counters = JsonValue::object();
  for (const auto& [name, c] : counters_) counters.set(name, c.value());
  v.set("counters", std::move(counters));
  JsonValue hists = JsonValue::object();
  for (const auto& [name, h] : histograms_) hists.set(name, h.to_json());
  v.set("histograms", std::move(hists));
  return v;
}

}  // namespace sring::obs
