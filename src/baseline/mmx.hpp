// Pentium-MMX baseline for Table 1 (paper reference [8], Intel
// application notes for Pentium MMX).
//
// Substitution (see DESIGN.md): the paper measured cycle counts of an
// MMX motion-estimation routine on real silicon; we implement a
// functional 64-bit MMX-like SIMD model with the documented U/V
// pairing cost rules and run the same full-search workload on it, so
// the cycle count is produced by executing the actual instruction
// sequence rather than copied from the paper.
//
// Modeled subset (pre-SSE, so no PSADBW — SAD is built from
// PSUBUSB/POR/PUNPCK/PADDW exactly as the era's app notes did):
//   MOVQ (reg/mem), PSUBUSB, POR, PAND, PXOR, PUNPCKLBW, PUNPCKHBW,
//   PADDW, PADDD, PSRLQ, scalar ADD/CMP/JCC bookkeeping.
// Cost model: every MMX op is 1 cycle; two MMX ops pair (U+V) when
// neither depends on the other and at most one touches memory; memory
// operands add no penalty on a cache hit (the paper's steady-state
// assumption); taken branches cost 1 extra cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "common/image.hpp"
#include "dsp/sad.hpp"

namespace sring::baseline {

/// One 64-bit MMX register value.
using Mmx = std::uint64_t;

/// Functional MMX ALU used by the model (exposed for unit tests).
Mmx psubusb(Mmx a, Mmx b) noexcept;  ///< per-byte unsigned saturating sub
Mmx por(Mmx a, Mmx b) noexcept;
Mmx punpcklbw_zero(Mmx a) noexcept;  ///< low 4 bytes -> 4 words
Mmx punpckhbw_zero(Mmx a) noexcept;  ///< high 4 bytes -> 4 words
Mmx paddw(Mmx a, Mmx b) noexcept;    ///< per-word wrapping add
std::uint32_t horizontal_sum_words(Mmx a) noexcept;

/// Cycle-counting executor: count MMX ops with U/V pairing plus the
/// scalar loop bookkeeping of the block-match routine.
struct MmxRunStats {
  std::uint64_t mmx_ops = 0;
  std::uint64_t scalar_ops = 0;
  std::uint64_t cycles = 0;
};

struct MmxMotionEstimationResult {
  std::vector<std::uint32_t> sads;  ///< per candidate, (dy,dx) row-major
  dsp::MotionVector best;
  MmxRunStats stats;
};

/// Full-search 8x8 motion estimation on the MMX model; functionally
/// identical to dsp::all_candidate_sads / dsp::full_search.
MmxMotionEstimationResult mmx_motion_estimation(const Image& ref,
                                                std::size_t rx,
                                                std::size_t ry,
                                                const Image& cand,
                                                int range);

}  // namespace sring::baseline
