#include "baseline/asic_me.hpp"

#include <bit>

#include "common/error.hpp"

namespace sring::baseline {

AsicMotionEstimationResult asic_motion_estimation(const Image& ref,
                                                  std::size_t rx,
                                                  std::size_t ry,
                                                  const Image& cand,
                                                  int range,
                                                  const AsicConfig& cfg) {
  check(cfg.block >= 1 && cfg.fill_rows_per_cycle >= 1,
        "asic_motion_estimation: bad configuration");
  AsicMotionEstimationResult result;

  // Functional pass (the PE array computes exactly these SADs).
  bool first = true;
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      const std::uint32_t sad = dsp::block_sad(
          ref, rx, ry, cand, static_cast<std::ptrdiff_t>(rx) + dx,
          static_cast<std::ptrdiff_t>(ry) + dy, cfg.block);
      result.sads.push_back(sad);
      if (first || sad < result.best.sad) {
        result.best = {dx, dy, sad};
        first = false;
      }
    }
  }

  // Timing model.
  const std::uint64_t candidates = result.sads.size();
  const std::uint64_t fill =
      cfg.block / cfg.fill_rows_per_cycle;  // reference block load
  const std::uint64_t tree_depth =
      std::bit_width(cfg.block * cfg.block - 1);  // adder tree stages
  result.cycles = fill + candidates + tree_depth;
  result.pe_ops = candidates * cfg.block * cfg.block;
  return result;
}

}  // namespace sring::baseline
