// Block-matching ASIC baseline for Table 1 (paper reference [7],
// Bugeja & Yang, "A Re-configurable VLSI Coprocessing System for the
// Block Matching Algorithm"; see also Hsieh & Lin [4]).
//
// Substitution (see DESIGN.md): we model the classic dedicated
// systolic PE-array architecture those papers describe — an N x N
// array of absolute-difference PEs with an adder tree, fully pipelined
// so that after the array fills it retires one candidate position per
// clock.  Cycle count for a full search:
//
//   cycles = fill_latency + candidates * II + drain
//     fill_latency = N (rows loaded per cycle) + adder-tree depth
//     II (initiation interval) = 1 candidate / cycle
//
// The model also executes the computation functionally so its SADs are
// checked against the golden model, keeping the cycle claim honest.
#pragma once

#include <cstdint>
#include <vector>

#include "common/image.hpp"
#include "dsp/sad.hpp"

namespace sring::baseline {

struct AsicConfig {
  std::size_t block = 8;   ///< N: PE array is N x N
  std::size_t fill_rows_per_cycle = 1;
};

struct AsicMotionEstimationResult {
  std::vector<std::uint32_t> sads;
  dsp::MotionVector best;
  std::uint64_t cycles = 0;
  std::uint64_t pe_ops = 0;  ///< total absolute-difference operations
};

/// Full-search 8x8 motion estimation on the PE-array model.
AsicMotionEstimationResult asic_motion_estimation(const Image& ref,
                                                  std::size_t rx,
                                                  std::size_t ry,
                                                  const Image& cand,
                                                  int range,
                                                  const AsicConfig& cfg = {});

}  // namespace sring::baseline
