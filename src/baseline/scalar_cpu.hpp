// Scalar Von-Neumann CPU cost model, used by the comparative-results
// bench (§5.1: "1600 MIPS ... quite impressive compared to the 400
// MIPS of a Pentium II 450 MHz processor").
//
// The model charges classic in-order costs per abstract operation and
// reports both an instruction count and a cycle estimate, from which
// sustained MIPS at a given clock follow.  It also executes the
// workloads functionally so results stay checkable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/image.hpp"
#include "common/types.hpp"

namespace sring::baseline {

/// Abstract cost table (cycles per operation class).
struct ScalarCosts {
  double alu = 1.0;      ///< add/sub/logic/compare
  double mul = 4.0;      ///< integer multiply (P6-era latency, pipelined ~1)
  double load = 1.0;     ///< cache-hit load
  double store = 1.0;
  double branch = 1.5;   ///< average with misprediction share
  /// Average sustained IPC of the pipeline (P6-class superscalar ~1.1
  /// on integer DSP loops; applied as a divisor on the op count).
  double sustained_ipc = 1.1;
};

struct ScalarRunStats {
  std::uint64_t instructions = 0;
  double cycles = 0.0;

  /// Million instructions per second at `clock_hz`.
  double mips(double clock_hz) const noexcept {
    return cycles == 0.0 ? 0.0
                         : static_cast<double>(instructions) /
                               (cycles / clock_hz) / 1e6;
  }
};

/// FIR on the scalar model (functionally identical to
/// dsp::fir_reference).
struct ScalarFirResult {
  std::vector<Word> outputs;
  ScalarRunStats stats;
};
ScalarFirResult scalar_fir(std::span<const Word> x,
                           std::span<const Word> coeffs,
                           const ScalarCosts& costs = {});

/// 8x8 full-search motion estimation on the scalar model.
struct ScalarMeResult {
  std::vector<std::uint32_t> sads;
  ScalarRunStats stats;
};
ScalarMeResult scalar_motion_estimation(const Image& ref, std::size_t rx,
                                        std::size_t ry, const Image& cand,
                                        int range,
                                        const ScalarCosts& costs = {});

}  // namespace sring::baseline
