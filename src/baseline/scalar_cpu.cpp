#include "baseline/scalar_cpu.hpp"

#include <cstdlib>

#include "dsp/sad.hpp"

namespace sring::baseline {

namespace {

class Counter {
 public:
  explicit Counter(const ScalarCosts& costs) : costs_(costs) {}

  void alu(std::uint64_t n = 1) { add(n, costs_.alu); }
  void mul(std::uint64_t n = 1) { add(n, costs_.mul); }
  void load(std::uint64_t n = 1) { add(n, costs_.load); }
  void store(std::uint64_t n = 1) { add(n, costs_.store); }
  void branch(std::uint64_t n = 1) { add(n, costs_.branch); }

  ScalarRunStats stats() const {
    ScalarRunStats s;
    s.instructions = instructions_;
    s.cycles = raw_cycles_ / costs_.sustained_ipc;
    return s;
  }

 private:
  void add(std::uint64_t n, double cost) {
    instructions_ += n;
    raw_cycles_ += static_cast<double>(n) * cost;
  }

  ScalarCosts costs_;
  std::uint64_t instructions_ = 0;
  double raw_cycles_ = 0.0;
};

}  // namespace

ScalarFirResult scalar_fir(std::span<const Word> x,
                           std::span<const Word> coeffs,
                           const ScalarCosts& costs) {
  Counter c(costs);
  ScalarFirResult result;
  result.outputs.resize(x.size());
  for (std::size_t n = 0; n < x.size(); ++n) {
    Word acc = 0;
    c.alu();  // clear accumulator
    for (std::size_t k = 0; k < coeffs.size() && k <= n; ++k) {
      acc = to_word(static_cast<std::int64_t>(as_signed(coeffs[k])) *
                        as_signed(x[n - k]) +
                    as_signed(acc));
      c.load(2);   // x and coefficient
      c.mul();     // multiply
      c.alu();     // accumulate
      c.branch();  // tap-loop control
    }
    result.outputs[n] = acc;
    c.store();
    c.branch();  // sample-loop control
  }
  result.stats = c.stats();
  return result;
}

ScalarMeResult scalar_motion_estimation(const Image& ref, std::size_t rx,
                                        std::size_t ry, const Image& cand,
                                        int range,
                                        const ScalarCosts& costs) {
  Counter c(costs);
  ScalarMeResult result;
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      std::uint32_t sad = 0;
      c.alu();  // clear
      for (std::size_t py = 0; py < dsp::kBlockSize; ++py) {
        for (std::size_t px = 0; px < dsp::kBlockSize; ++px) {
          const std::int32_t a = as_signed(ref.at_clamped(
              static_cast<std::ptrdiff_t>(rx + px),
              static_cast<std::ptrdiff_t>(ry + py)));
          const std::int32_t b = as_signed(cand.at_clamped(
              static_cast<std::ptrdiff_t>(rx + px) + dx,
              static_cast<std::ptrdiff_t>(ry + py) + dy));
          sad += static_cast<std::uint32_t>(std::abs(a - b));
          c.load(2);  // both pixels
          c.alu(3);   // subtract, abs, accumulate
        }
        c.branch();  // row loop
      }
      c.alu();     // best-so-far compare
      c.branch();  // candidate loop
      result.sads.push_back(sad);
    }
  }
  result.stats = c.stats();
  return result;
}

}  // namespace sring::baseline
