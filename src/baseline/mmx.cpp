#include "baseline/mmx.hpp"

#include <algorithm>
#include <array>
#include <initializer_list>

#include "common/error.hpp"

namespace sring::baseline {

Mmx psubusb(Mmx a, Mmx b) noexcept {
  Mmx r = 0;
  for (int i = 0; i < 8; ++i) {
    const auto ab = static_cast<std::int32_t>((a >> (8 * i)) & 0xFF);
    const auto bb = static_cast<std::int32_t>((b >> (8 * i)) & 0xFF);
    const std::int32_t d = std::max(ab - bb, 0);
    r |= static_cast<Mmx>(d & 0xFF) << (8 * i);
  }
  return r;
}

Mmx por(Mmx a, Mmx b) noexcept { return a | b; }

Mmx punpcklbw_zero(Mmx a) noexcept {
  Mmx r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= ((a >> (8 * i)) & 0xFF) << (16 * i);
  }
  return r;
}

Mmx punpckhbw_zero(Mmx a) noexcept {
  Mmx r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= ((a >> (8 * (i + 4))) & 0xFF) << (16 * i);
  }
  return r;
}

Mmx paddw(Mmx a, Mmx b) noexcept {
  Mmx r = 0;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t s =
        ((a >> (16 * i)) & 0xFFFF) + ((b >> (16 * i)) & 0xFFFF);
    r |= (s & 0xFFFF) << (16 * i);
  }
  return r;
}

std::uint32_t horizontal_sum_words(Mmx a) noexcept {
  std::uint32_t s = 0;
  for (int i = 0; i < 4; ++i) {
    s += static_cast<std::uint32_t>((a >> (16 * i)) & 0xFFFF);
  }
  return s;
}

namespace {

/// Tiny U/V-pairing scheduler: Pentium-MMX issues up to two MMX ops
/// per cycle when the second does not consume the first's result and
/// at most one of the pair touches memory.
class MmxMachine {
 public:
  static constexpr int kMem = -1;  ///< pseudo register id for memory

  Mmx reg(int i) const { return mm_.at(static_cast<std::size_t>(i)); }

  /// Execute `value = f(...)` into mm[dst]; `srcs` lists consumed
  /// register ids (kMem for a memory operand).
  void op(int dst, std::initializer_list<int> srcs, Mmx value) {
    bool mem = false;
    bool dep = false;
    for (const int s : srcs) {
      if (s == kMem) mem = true;
      if (s >= 0 && s == last_dst_ && u_slot_busy_) dep = true;
    }
    if (u_slot_busy_ && !dep && !(mem && last_mem_)) {
      // Pairs into the V slot of the current cycle.
      u_slot_busy_ = false;
    } else {
      ++stats_.cycles;
      u_slot_busy_ = true;
      last_dst_ = dst;
      last_mem_ = mem;
    }
    ++stats_.mmx_ops;
    mm_.at(static_cast<std::size_t>(dst)) = value;
  }

  /// Scalar bookkeeping (address updates, compares): pairs freely, so
  /// two scalar ops cost one cycle.
  void scalar(std::uint64_t n) {
    stats_.scalar_ops += n;
    stats_.cycles += (n + 1) / 2;
    u_slot_busy_ = false;
  }

  /// Taken branch: one extra cycle, breaks pairing.
  void taken_branch() {
    ++stats_.scalar_ops;
    ++stats_.cycles;
    u_slot_busy_ = false;
  }

  const MmxRunStats& stats() const { return stats_; }

 private:
  std::array<Mmx, 8> mm_{};
  MmxRunStats stats_;
  bool u_slot_busy_ = false;
  bool last_mem_ = false;
  int last_dst_ = -2;
};

/// Pack eight clamped 8-bit pixels of a row into one MMX quadword.
Mmx pack_row(const Image& img, std::ptrdiff_t x0, std::ptrdiff_t y) {
  Mmx r = 0;
  for (int i = 0; i < 8; ++i) {
    const std::int32_t v =
        std::clamp(as_signed(img.at_clamped(x0 + i, y)), 0, 255);
    r |= static_cast<Mmx>(v) << (8 * i);
  }
  return r;
}

/// One candidate's 8x8 SAD, instruction-by-instruction (the classic
/// pre-PSADBW sequence from the MMX application notes).
std::uint32_t sad_8x8(MmxMachine& m, const Image& ref, std::ptrdiff_t rx,
                      std::ptrdiff_t ry, const Image& cand,
                      std::ptrdiff_t cx, std::ptrdiff_t cy) {
  // mm4 accumulates four word sums.
  m.op(4, {4, 4}, 0);  // pxor mm4, mm4
  for (int row = 0; row < 8; ++row) {
    const Mmx r = pack_row(ref, rx, ry + row);
    const Mmx c = pack_row(cand, cx, cy + row);
    m.op(0, {MmxMachine::kMem}, r);                  // movq mm0, [ref]
    m.op(1, {MmxMachine::kMem}, c);                  // movq mm1, [cand]
    m.op(2, {0}, m.reg(0));                          // movq mm2, mm0
    m.op(0, {0, 1}, psubusb(m.reg(0), m.reg(1)));    // psubusb mm0, mm1
    m.op(1, {1, 2}, psubusb(m.reg(1), m.reg(2)));    // psubusb mm1, mm2
    m.op(0, {0, 1}, por(m.reg(0), m.reg(1)));        // por mm0, mm1
    m.op(3, {0}, punpcklbw_zero(m.reg(0)));          // punpcklbw
    m.op(0, {0}, punpckhbw_zero(m.reg(0)));          // punpckhbw
    m.op(4, {4, 3}, paddw(m.reg(4), m.reg(3)));      // paddw mm4, mm3
    m.op(4, {4, 0}, paddw(m.reg(4), m.reg(0)));      // paddw mm4, mm0
    m.scalar(2);  // advance the two row pointers
  }
  // Horizontal sum: fold the four word lanes (shift 32 then 16).
  m.op(5, {4}, m.reg(4) >> 32);                      // psrlq mm5, 32
  m.op(4, {4, 5}, paddw(m.reg(4), m.reg(5)));        // paddw mm4, mm5
  m.op(5, {4}, m.reg(4) >> 16);                      // psrlq mm5, 16
  m.op(4, {4, 5}, paddw(m.reg(4), m.reg(5)));        // paddw mm4, mm5
  return static_cast<std::uint32_t>(m.reg(4) & 0xFFFF);
}

}  // namespace

MmxMotionEstimationResult mmx_motion_estimation(const Image& ref,
                                                std::size_t rx,
                                                std::size_t ry,
                                                const Image& cand,
                                                int range) {
  MmxMachine m;
  MmxMotionEstimationResult result;
  bool first = true;
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      const std::uint32_t sad =
          sad_8x8(m, ref, static_cast<std::ptrdiff_t>(rx),
                  static_cast<std::ptrdiff_t>(ry), cand,
                  static_cast<std::ptrdiff_t>(rx) + dx,
                  static_cast<std::ptrdiff_t>(ry) + dy);
      // Best-so-far compare + candidate loop bookkeeping.
      m.scalar(4);
      m.taken_branch();
      result.sads.push_back(sad);
      if (first || sad < result.best.sad) {
        result.best = {dx, dy, sad};
        first = false;
      }
    }
  }
  result.stats = m.stats();
  return result;
}

}  // namespace sring::baseline
