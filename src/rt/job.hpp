// Batch-execution job model.
//
// The paper deploys the Systolic Ring as an IP core serving a host SoC
// (§3, fig. 2); the runtime generalizes that to a *fleet* of ring
// instances executing a stream of independent kernel jobs.  A Job is
// everything the paper's host hands the core for one kernel launch:
// the configware + management code (LoadableProgram), the input word
// stream, and the run policy (halt- or output-bounded).  A JobResult
// is what comes back: the raw host output words plus the per-run
// RunReport.
//
// Jobs are value types — each one runs on a private System owned by
// exactly one worker thread, which is what makes per-job results
// bit-identical regardless of worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "sim/host_interface.hpp"
#include "sim/program.hpp"
#include "sim/report.hpp"

namespace sring::rt {

struct Job {
  /// Run policy: halt-bounded programs stop at HALT (+ drain cycles);
  /// output-bounded ones stop once `expected_outputs` host words
  /// arrived.
  enum class Run : std::uint8_t { kUntilHalt = 0, kUntilOutputs };

  std::string name;  ///< job label; becomes the RunReport name

  /// The program, shared so a whole batch references one build.  The
  /// pool keys reuse on (`geometry`, `program_key`), never on pointer
  /// identity.
  std::shared_ptr<const LoadableProgram> program;

  /// Cache identity of `program`: two jobs with equal non-empty keys
  /// (and equal geometry/link) MUST carry behaviourally identical
  /// programs — the pool then skips reconfiguration between them, the
  /// software analogue of the paper's preloaded configuration pages.
  /// An empty key disables program reuse (every run fully reloads).
  std::string program_key;

  std::vector<Word> input;  ///< words sent to the host FIFO before the run

  Run run = Run::kUntilHalt;
  std::size_t expected_outputs = 0;   ///< kUntilOutputs stop condition
  std::uint64_t max_cycles = 1'000'000;
  std::uint64_t drain_cycles = 0;     ///< kUntilHalt post-halt cycles

  /// Output slicing: drop `discard_prefix` warm-up words, then keep
  /// `take_words` words (0 = everything remaining).  Kernels use this
  /// to strip pipeline warm-up exactly like their run_* helpers do.
  std::size_t discard_prefix = 0;
  std::size_t take_words = 0;

  LinkRate link = LinkRate::unlimited();  ///< host-link model for the run

  /// Caller-chosen correlation id, echoed through JobResult (and, for
  /// remote jobs, the wire) so a request can be matched to its span
  /// timeline and flight-recorder entry.  0 = untraced.
  std::uint64_t trace_id = 0;
};

struct JobResult {
  bool ok = false;
  std::string error;          ///< SimError text when !ok
  std::vector<Word> outputs;  ///< sliced host output words
  RunReport report;           ///< full per-run record (deterministic)

  // Execution provenance — the only fields allowed to differ between
  // runs of the same batch at different worker counts.
  std::size_t worker = 0;        ///< worker index that ran the job
  bool reused_system = false;    ///< pooled System, program still loaded
  std::uint64_t trace_id = 0;    ///< Job::trace_id, echoed back
  obs::SpanTimeline timeline;    ///< wall-clock spans (empty if disabled)
};

}  // namespace sring::rt
