#include "rt/job_queue.hpp"

#include "common/error.hpp"

namespace sring::rt {

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  check(capacity_ >= 1, "JobQueue: capacity must be at least 1");
  stats_.capacity = capacity_;
}

bool JobQueue::push(Envelope envelope) {
  std::unique_lock lock(mu_);
  if (items_.size() >= capacity_ && !closed_) {
    ++stats_.blocked_pushes;
    not_full_.wait(lock,
                   [&] { return items_.size() < capacity_ || closed_; });
  }
  if (closed_) {
    ++stats_.rejected_closed;
    return false;
  }
  items_.push_back(std::move(envelope));
  ++stats_.enqueued;
  stats_.max_depth = std::max<std::uint64_t>(stats_.max_depth,
                                             items_.size());
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

JobQueue::PushStatus JobQueue::try_push(Envelope& envelope) {
  std::unique_lock lock(mu_);
  if (closed_) {
    ++stats_.rejected_closed;
    return PushStatus::kClosed;
  }
  if (items_.size() >= capacity_) {
    ++stats_.rejected_full;
    return PushStatus::kFull;
  }
  items_.push_back(std::move(envelope));
  ++stats_.enqueued;
  stats_.max_depth = std::max<std::uint64_t>(stats_.max_depth,
                                             items_.size());
  lock.unlock();
  not_empty_.notify_one();
  return PushStatus::kOk;
}

std::optional<JobQueue::Envelope> JobQueue::pop() {
  std::unique_lock lock(mu_);
  not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
  if (items_.empty()) return std::nullopt;  // closed and drained
  Envelope e = std::move(items_.front());
  items_.pop_front();
  ++stats_.dequeued;
  lock.unlock();
  not_full_.notify_one();
  return e;
}

void JobQueue::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

JobQueue::Stats JobQueue::stats() const {
  std::lock_guard lock(mu_);
  Stats s = stats_;
  s.depth = items_.size();
  s.closed = closed_;
  return s;
}

}  // namespace sring::rt
