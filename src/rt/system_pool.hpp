// Per-worker System cache.
//
// Constructing a System and loading a program means re-validating and
// re-decoding every configuration page — the software counterpart of
// shipping configware over the paper's 250 MB/s host link.  The pool
// keeps a small LRU set of Systems keyed by (geometry, link) and
// remembers which program each one has loaded, so a job stream that
// repeats (geometry, program_key) pairs re-arms via the cheap
// System::reset_for_rerun() path instead of reloading: the paper's
// "preloaded configuration pages" argument, applied to the fleet.
//
// The Ring's decoded cycle-plan storage survives reset_for_rerun()
// re-arms: the plan's capacity stays allocated and only its validity
// key is cleared, so a rerun of the same program recompiles once into
// warm buffers rather than reallocating.  Plan counters reset with
// the rest of the statistics, keeping rerun reports bit-identical to
// fresh-System reports.
//
// NOT thread-safe by design: every worker thread owns one pool, so
// the job hot path takes no locks at all.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rt/job.hpp"
#include "sim/system.hpp"

namespace sring::rt {

class SystemPool {
 public:
  /// `max_systems` bounds resident Systems (LRU eviction beyond it).
  explicit SystemPool(std::size_t max_systems = 4);

  struct Lease {
    System& system;       ///< loaded and reset, ready to run `job`
    bool reused_program;  ///< fast re-arm: reconfiguration was skipped
  };

  /// Hand out a System armed for `job`: reuses a cached instance when
  /// geometry and link match, and skips the program reload entirely
  /// when the (non-empty) program_key matches what that System last
  /// loaded.
  Lease acquire(const Job& job);

  // --- instrumentation ------------------------------------------------
  std::uint64_t systems_constructed() const noexcept { return constructed_; }
  std::uint64_t full_loads() const noexcept { return full_loads_; }
  std::uint64_t fast_resets() const noexcept { return fast_resets_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    RingGeometry geometry;
    LinkRate link;
    std::string program_key;  ///< empty: contents unknown, must reload
    std::unique_ptr<System> system;
    std::uint64_t last_use = 0;
  };

  std::size_t max_systems_;
  std::vector<Entry> entries_;  // small; linear scan beats a map here
  std::uint64_t tick_ = 0;
  std::uint64_t constructed_ = 0;
  std::uint64_t full_loads_ = 0;
  std::uint64_t fast_resets_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace sring::rt
