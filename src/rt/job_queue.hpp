// Bounded, backpressured MPMC job queue.
//
// The host-side admission path of the runtime: producers block in
// push() while the queue is full (backpressure — submission slows to
// the fleet's drain rate instead of buffering unboundedly), workers
// block in pop() while it is empty.  close() wakes everyone: pending
// items still drain, then pop() returns nullopt and push() returns
// false.  All statistics are maintained under the queue mutex and
// snapshot via stats().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>

#include "rt/job.hpp"

namespace sring::rt {

class JobQueue {
 public:
  /// One queued unit of work: the job plus the promise its result is
  /// delivered through.
  struct Envelope {
    Job job;
    std::promise<JobResult> result;

    /// Optional completion hook, invoked by the worker *after* the
    /// promise is fulfilled.  Lets a poll-loop consumer (the net
    /// server) get woken without blocking on the future; must be
    /// cheap and must not throw.
    std::function<void()> notify;

    /// Span stamps for this job; kEnqueued is stamped at submission,
    /// the worker stamps the rest and copies the timeline into the
    /// JobResult.
    obs::SpanTimeline timeline;
  };

  /// Outcome of a non-blocking try_push().
  enum class PushStatus : std::uint8_t { kOk = 0, kFull, kClosed };

  struct Stats {
    std::size_t capacity = 0;
    std::size_t depth = 0;           ///< items queued right now
    std::uint64_t enqueued = 0;      ///< successful push() calls
    std::uint64_t dequeued = 0;      ///< successful pop() calls
    std::uint64_t max_depth = 0;     ///< high-water mark
    std::uint64_t blocked_pushes = 0;///< push() calls that had to wait
    std::uint64_t rejected_full = 0; ///< try_push() calls that saw kFull
    std::uint64_t rejected_closed = 0;///< push/try_push after close()
    bool closed = false;
  };

  explicit JobQueue(std::size_t capacity);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueue, blocking while full.  Returns false (envelope untouched
  /// beyond the move attempt) once the queue is closed.
  bool push(Envelope envelope);

  /// Non-blocking enqueue: kFull when the queue is at capacity (the
  /// admission decision a network server needs to reject with Busy
  /// instead of parking its accept loop), kClosed after close().  The
  /// envelope is consumed only on kOk.
  PushStatus try_push(Envelope& envelope);

  /// Dequeue, blocking while empty.  nullopt only after close() AND
  /// the queue fully drained — a closed queue still hands out its
  /// backlog.
  std::optional<Envelope> pop();

  /// Close the queue: subsequent push() fails, pop() drains then ends.
  void close();

  Stats stats() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Envelope> items_;
  Stats stats_;
  bool closed_ = false;
};

}  // namespace sring::rt
