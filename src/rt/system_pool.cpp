#include "rt/system_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sring::rt {

namespace {

bool link_equal(const LinkRate& a, const LinkRate& b) {
  return a.num == b.num && a.den == b.den;
}

}  // namespace

SystemPool::SystemPool(std::size_t max_systems)
    : max_systems_(max_systems) {
  check(max_systems_ >= 1, "SystemPool: max_systems must be at least 1");
}

SystemPool::Lease SystemPool::acquire(const Job& job) {
  check(job.program != nullptr, "SystemPool::acquire: job has no program");
  const RingGeometry& g = job.program->geometry;
  ++tick_;

  // Best match first: a resident that still holds this exact program
  // re-arms without touching the configware.
  for (auto& entry : entries_) {
    if (entry.geometry == g && link_equal(entry.link, job.link) &&
        !job.program_key.empty() && entry.program_key == job.program_key) {
      entry.last_use = tick_;
      ++fast_resets_;
      entry.system->reset_for_rerun(*job.program);
      return {*entry.system, true};
    }
  }

  // While there is room, grow instead of reloading a resident: a
  // working set of up to max_systems_ distinct programs settles into
  // all-fast-resets instead of thrashing one System.
  if (entries_.size() >= max_systems_) {
    const auto lru = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.last_use < b.last_use; });
    if (lru->geometry == g && link_equal(lru->link, job.link)) {
      lru->last_use = tick_;
      ++full_loads_;
      lru->system->load(*job.program);
      lru->program_key = job.program_key;
      return {*lru->system, false};
    }
    entries_.erase(lru);
    ++evictions_;
  }

  Entry entry;
  entry.geometry = g;
  entry.link = job.link;
  entry.program_key = job.program_key;
  entry.system = std::make_unique<System>(SystemConfig{g, job.link});
  entry.last_use = tick_;
  ++constructed_;
  ++full_loads_;
  entry.system->load(*job.program);
  entries_.push_back(std::move(entry));
  return {*entries_.back().system, false};
}

}  // namespace sring::rt
