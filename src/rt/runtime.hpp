// Concurrent batch-execution runtime: a fleet of Systolic Ring
// instances serving a stream of kernel jobs.
//
// Architecture (the multi-core deployment the paper's §3 host/IP-core
// split implies, scaled out):
//
//   submit()/submit_batch() --> JobQueue (bounded, backpressured)
//        --> N worker threads, each owning a private SystemPool
//        --> JobResult via std::future / ordered batch vector
//
// Determinism: a job never shares a System with a concurrently
// running job — each worker arms a private instance, so per-job
// outputs and RunReports are bit-identical at any worker count (only
// the JobResult provenance fields differ).  The test suite holds the
// runtime to that.
//
// Observability: workers accumulate into per-worker obs::Registry
// instances guarded by per-worker mutexes taken only at job
// boundaries — the simulation hot path is lock-free.  metrics()
// merges those registries (plus queue statistics) into one fleet
// snapshot via Registry::merge_from.  An optional sink factory gives
// each worker its own EventSink; a traced worker re-attaches the sink
// per job, so each job appears as one begin()-delimited trace segment.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "rt/job.hpp"
#include "rt/job_queue.hpp"
#include "rt/system_pool.hpp"

namespace sring::rt {

struct RuntimeConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
  std::size_t workers = 0;

  /// JobQueue capacity: how far submission may run ahead of the fleet
  /// before push() blocks (backpressure).
  std::size_t queue_capacity = 64;

  /// Resident Systems per worker (SystemPool LRU bound).
  std::size_t pool_systems_per_worker = 4;

  /// Optional per-worker event sink factory, called once per worker
  /// at start-up with the worker index.  The worker owns the sink,
  /// attaches it to the System of every job it runs, and calls end()
  /// when the runtime shuts down.
  std::function<std::unique_ptr<obs::EventSink>(std::size_t)> sink_factory;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config = {});
  ~Runtime();  ///< closes the queue, drains the backlog, joins workers

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Asynchronous submission; blocks only while the queue is full.
  /// Throws SimError after shutdown().
  std::future<JobResult> submit(Job job);

  /// Outcome of a non-blocking try_submit().
  enum class SubmitStatus : std::uint8_t {
    kAccepted = 0,
    kQueueFull,  ///< bounded queue at capacity — caller should shed load
    kShutDown,   ///< runtime already shut down
  };
  struct TrySubmit {
    SubmitStatus status = SubmitStatus::kShutDown;
    std::future<JobResult> result;  ///< valid only when kAccepted
  };

  /// Non-blocking submission for callers that must never park (the net
  /// server's accept loop): returns kQueueFull instead of waiting and
  /// kShutDown instead of throwing.  `notify`, when set, is invoked by
  /// the worker after the result future becomes ready — it runs on the
  /// worker thread and must be cheap and non-throwing.
  TrySubmit try_submit(Job job, std::function<void()> notify = {});

  /// Synchronous convenience: submit every job, wait for all, return
  /// results in submission order.  Jobs still spread across the whole
  /// fleet; ordering is restored on collection.
  std::vector<JobResult> submit_batch(std::vector<Job> jobs);

  /// Stop accepting work, run the backlog dry, join the workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Jobs queued right now (JobQueue depth).  Thread-safe; the net
  /// server's watermark admission polls it on every submit.
  std::size_t queue_depth() const { return queue_.stats().depth; }

  /// The queue's configured capacity (admission watermarks scale off
  /// it).
  std::size_t queue_capacity() const { return queue_.stats().capacity; }

  /// Fleet-wide metrics snapshot: queue statistics plus the merged
  /// per-worker registries (rt.jobs, rt.sim_cycles, per-worker
  /// rt.worker.<i>.* counters, pool reuse counters, job-cycle and
  /// rt.latency.* histograms, ring.plan.* / ring.superstep.*
  /// effectiveness counters).  Callable at any time, including
  /// mid-run.
  obs::Registry metrics() const;

 private:
  struct Worker {
    std::thread thread;
    SystemPool pool;
    std::unique_ptr<obs::EventSink> sink;
    mutable std::mutex mu;    ///< guards registry; taken per job, not per cycle
    obs::Registry registry;

    explicit Worker(std::size_t pool_size) : pool(pool_size) {}
  };

  void worker_main(std::size_t index);
  JobResult run_job(const Job& job, std::size_t index, Worker& worker,
                    obs::SpanTimeline& timeline);

  RuntimeConfig config_;
  JobQueue queue_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool shut_down_ = false;
};

}  // namespace sring::rt
