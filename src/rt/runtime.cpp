#include "rt/runtime.hpp"

#include <cstdio>
#include <exception>
#include <utility>

#include "common/error.hpp"
#include "obs/quantile.hpp"
#include "sim/system.hpp"

namespace sring::rt {

namespace {

std::size_t resolve_workers(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Bucket bounds for the per-worker job-cycle histogram: powers of
/// two up to 1M simulated cycles.
std::vector<std::uint64_t> job_cycle_bounds() {
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 64; b <= (1u << 20); b <<= 1) bounds.push_back(b);
  return bounds;
}

}  // namespace

Runtime::Runtime(RuntimeConfig config)
    : config_(std::move(config)), queue_(config_.queue_capacity) {
  const std::size_t n = resolve_workers(config_.workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>(config_.pool_systems_per_worker);
    if (config_.sink_factory) w->sink = config_.sink_factory(i);
    workers_.push_back(std::move(w));
  }
  // Threads start only after every Worker slot exists: worker_main
  // indexes workers_ freely.
  for (std::size_t i = 0; i < n; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_main(i); });
  }
}

Runtime::~Runtime() { shutdown(); }

void Runtime::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  queue_.close();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

std::future<JobResult> Runtime::submit(Job job) {
  JobQueue::Envelope env;
  env.job = std::move(job);
  std::future<JobResult> fut = env.result.get_future();
  // Stamped before push(): a full queue blocks here, and that wait IS
  // the queue-wait phase the latency histograms must see.
  env.timeline.stamp(obs::SpanTimeline::kEnqueued);
  check(queue_.push(std::move(env)),
        "Runtime::submit: runtime is shut down");
  return fut;
}

Runtime::TrySubmit Runtime::try_submit(Job job,
                                       std::function<void()> notify) {
  JobQueue::Envelope env;
  env.job = std::move(job);
  env.notify = std::move(notify);
  env.timeline.stamp(obs::SpanTimeline::kEnqueued);
  TrySubmit out;
  out.result = env.result.get_future();
  switch (queue_.try_push(env)) {
    case JobQueue::PushStatus::kOk:
      out.status = SubmitStatus::kAccepted;
      break;
    case JobQueue::PushStatus::kFull:
      out.status = SubmitStatus::kQueueFull;
      out.result = {};
      break;
    case JobQueue::PushStatus::kClosed:
      out.status = SubmitStatus::kShutDown;
      out.result = {};
      break;
  }
  return out;
}

std::vector<JobResult> Runtime::submit_batch(std::vector<Job> jobs) {
  std::vector<std::future<JobResult>> futures;
  futures.reserve(jobs.size());
  for (auto& job : jobs) futures.push_back(submit(std::move(job)));
  std::vector<JobResult> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

void Runtime::worker_main(std::size_t index) {
  Worker& w = *workers_[index];
  while (auto env = queue_.pop()) {
    env->timeline.stamp(obs::SpanTimeline::kDequeued);
    JobResult result = run_job(env->job, index, w, env->timeline);

    {  // job-boundary accounting; the simulation itself ran lock-free
      std::lock_guard lock(w.mu);
      char name[64];
      std::snprintf(name, sizeof(name), "rt.worker.%zu.", index);
      const std::string p(name);
      obs::Registry& reg = w.registry;
      reg.counter("rt.jobs").add(1);
      reg.counter(p + "jobs").add(1);
      if (!result.ok) {
        reg.counter("rt.jobs_failed").add(1);
        reg.counter(p + "jobs_failed").add(1);
      } else {
        const SystemStats& s = result.report.stats;
        reg.counter("rt.sim_cycles").add(s.cycles);
        reg.counter("rt.dnode_ops").add(s.dnode_ops);
        reg.counter("rt.host_words_in").add(s.host_words_in);
        reg.counter("rt.host_words_out").add(s.host_words_out);
        reg.counter(p + "sim_cycles").add(s.cycles);
        reg.histogram("rt.job_cycles", job_cycle_bounds())
            .record(s.cycles);
        // Plan-cache / superstep effectiveness per deployment, not
        // just per cycle-bench run (ROADMAP: matvec8's 0.29 hit rate).
        reg.counter("ring.plan.compiles").add(s.plan_compiles);
        reg.counter("ring.plan.hits").add(s.plan_hits);
        reg.counter("ring.plan.invalidations").add(s.plan_invalidations);
        for (const char* key :
             {"ring.superstep.dispatches", "ring.superstep.cycles"}) {
          const obs::Counter* c = result.report.metrics.find_counter(key);
          if (c != nullptr) reg.counter(key).add(c->value());
        }
      }
      if (obs::telemetry_enabled()) {
        const obs::SpanTimeline& tl = result.timeline;
        reg.histogram("rt.latency.queue_wait_us", obs::latency_bounds_us())
            .record(tl.queue_wait_us());
        reg.histogram("rt.latency.arm_us", obs::latency_bounds_us())
            .record(tl.arm_us());
        reg.histogram("rt.latency.execute_us", obs::latency_bounds_us())
            .record(tl.execute_us());
        // Worker busy time; utilization = rate(rt.busy_us) / workers.
        reg.counter("rt.busy_us")
            .add(tl.us_between(obs::SpanTimeline::kDequeued,
                               obs::SpanTimeline::kCompleted));
      }
      // set() with the pool's cumulative totals: each worker owns its
      // registry, and merge_from() adds counters, so shared names
      // (rt.pool.*) sum across the fleet at snapshot time.
      reg.counter("rt.pool.fast_resets").set(w.pool.fast_resets());
      reg.counter("rt.pool.full_loads").set(w.pool.full_loads());
      reg.counter(p + "pool.fast_resets").set(w.pool.fast_resets());
      reg.counter(p + "pool.full_loads").set(w.pool.full_loads());
      reg.counter(p + "pool.systems").set(w.pool.systems_constructed());
    }

    env->result.set_value(std::move(result));
    if (env->notify) env->notify();
  }
  if (w.sink) w.sink->end();
}

JobResult Runtime::run_job(const Job& job, std::size_t index,
                           Worker& worker, obs::SpanTimeline& timeline) {
  JobResult result;
  result.worker = index;
  result.trace_id = job.trace_id;
  try {
    check(job.program != nullptr, "rt job '" + job.name + "': no program");
    const SystemPool::Lease lease = worker.pool.acquire(job);
    System& sys = lease.system;
    result.reused_system = lease.reused_program;
    timeline.stamp(obs::SpanTimeline::kArmed);
    if (worker.sink) sys.set_trace(worker.sink.get());

    sys.host().send(job.input);
    if (job.run == Job::Run::kUntilOutputs) {
      sys.run_until_outputs(job.expected_outputs, job.max_cycles);
    } else {
      sys.run_until_halt(job.max_cycles, job.drain_cycles);
    }
    timeline.stamp(obs::SpanTimeline::kExecuted);

    std::vector<Word> raw = sys.host().take_received();
    check(raw.size() >= job.discard_prefix,
          "rt job '" + job.name + "': fewer outputs than discard_prefix");
    const std::size_t avail = raw.size() - job.discard_prefix;
    const std::size_t take =
        job.take_words == 0 ? avail : std::min(job.take_words, avail);
    check(job.take_words == 0 || avail >= job.take_words,
          "rt job '" + job.name + "': fewer outputs than requested");
    result.outputs.assign(
        raw.begin() + static_cast<std::ptrdiff_t>(job.discard_prefix),
        raw.begin() +
            static_cast<std::ptrdiff_t>(job.discard_prefix + take));
    result.report = RunReport::from_system(job.name, sys);
    if (worker.sink) sys.set_trace(nullptr);
    result.ok = true;
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  }
  timeline.stamp(obs::SpanTimeline::kCompleted);
  result.timeline = timeline;
  return result;
}

obs::Registry Runtime::metrics() const {
  obs::Registry out;
  out.counter("rt.workers").set(workers_.size());

  const JobQueue::Stats q = queue_.stats();
  out.counter("rt.queue.capacity").set(q.capacity);
  out.counter("rt.queue.depth").set(q.depth);
  out.counter("rt.queue.enqueued").set(q.enqueued);
  out.counter("rt.queue.dequeued").set(q.dequeued);
  out.counter("rt.queue.max_depth").set(q.max_depth);
  out.counter("rt.queue.blocked_pushes").set(q.blocked_pushes);
  out.counter("rt.queue.rejected_full").set(q.rejected_full);
  out.counter("rt.queue.rejected_closed").set(q.rejected_closed);

  for (const auto& w : workers_) {
    std::lock_guard lock(w->mu);
    out.merge_from(w->registry);
  }
  return out;
}

}  // namespace sring::rt
