// Golden-model CORDIC (circular rotation mode) — the "trigonometric
// op." macro-operator of the paper's §6 compilation argument.
//
// Fixed point: angles and outputs are Q12 (4096 = 1.0 / one radian).
// Starting vector (K_inv, 0) absorbs the CORDIC gain so after N
// iterations x ~= 4096*cos(theta), y ~= 4096*sin(theta).  All steps
// use Dnode-exact arithmetic (16-bit wrap, arithmetic shifts), so the
// ring kernel can match this model bit-for-bit.
//
// Convergence domain: |theta| <= ~1.74 rad (about 99.9 degrees).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace sring::dsp {

inline constexpr unsigned kCordicIterations = 12;
inline constexpr std::int32_t kCordicOne = 4096;  // Q12 unity

/// Q12 arctangent table: atan_table()[i] = round(4096 * atan(2^-i)).
std::array<Word, kCordicIterations> cordic_atan_table();

/// Q12 gain-compensated starting x: round(4096 / prod sqrt(1+2^-2i)).
Word cordic_k_inv();

struct CordicResult {
  Word cos_q12 = 0;
  Word sin_q12 = 0;
};

/// Rotate (k_inv, 0) by theta (Q12 radians), Dnode-exact arithmetic.
CordicResult cordic_rotate(Word theta_q12,
                           unsigned iterations = kCordicIterations);

/// Vectorized convenience over an angle stream.
std::vector<CordicResult> cordic_rotate_stream(
    std::span<const Word> thetas_q12,
    unsigned iterations = kCordicIterations);

}  // namespace sring::dsp
