// Golden-model block-matching motion estimation (paper §5.1, Table 1).
//
// Criterion: sum of absolute differences (SAD) of an 8x8 reference
// block against every candidate position within ±`range` pixels of
// displacement (H.261-style full search; range 8 gives the paper's
// 17 x 17 = 289 candidates).
#pragma once

#include <cstdint>
#include <vector>

#include "common/image.hpp"

namespace sring::dsp {

inline constexpr std::size_t kBlockSize = 8;

/// SAD of the `n x n` block at (rx, ry) in `ref` against the block at
/// (cx, cy) in `cand`; out-of-image pixels read border-clamped.
std::uint32_t block_sad(const Image& ref, std::size_t rx, std::size_t ry,
                        const Image& cand, std::ptrdiff_t cx,
                        std::ptrdiff_t cy, std::size_t n = kBlockSize);

struct MotionVector {
  int dx = 0;
  int dy = 0;
  std::uint32_t sad = 0;

  bool operator==(const MotionVector&) const = default;
};

/// Exhaustive (full-search) motion estimation of one block.  Ties
/// break toward the first candidate in row-major (dy, dx) scan order.
MotionVector full_search(const Image& ref, std::size_t rx, std::size_t ry,
                         const Image& cand, int range,
                         std::size_t n = kBlockSize);

/// All candidate SADs in row-major (dy, dx) scan order, i.e. the raw
/// sequence a SAD engine would emit.
std::vector<std::uint32_t> all_candidate_sads(const Image& ref,
                                              std::size_t rx,
                                              std::size_t ry,
                                              const Image& cand, int range,
                                              std::size_t n = kBlockSize);

}  // namespace sring::dsp
