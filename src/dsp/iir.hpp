// Golden-model recursive (IIR) filter references with Dnode-exact
// (16-bit wrapping) arithmetic.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace sring::dsp {

/// First-order recursive filter y[n] = x[n] + a * y[n-1] (wrapping),
/// zero initial state.
std::vector<Word> iir1_reference(std::span<const Word> x, Word a);

/// Direct-form-I biquad with wrapping arithmetic and zero state:
///   y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] + a1 y[n-1] + a2 y[n-2]
struct BiquadCoeffs {
  Word b0 = 0, b1 = 0, b2 = 0, a1 = 0, a2 = 0;
};
std::vector<Word> biquad_reference(std::span<const Word> x,
                                   const BiquadCoeffs& c);

}  // namespace sring::dsp
