#include "dsp/wavelet.hpp"

#include "common/error.hpp"

namespace sring::dsp {

namespace {

/// Extended read of x at a possibly out-of-range index.
std::int32_t read_ext(std::span<const Word> x, std::ptrdiff_t i,
                      Boundary boundary) {
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  if (i >= 0 && i < n) return as_signed(x[static_cast<std::size_t>(i)]);
  if (boundary == Boundary::kZero) return 0;
  // Whole-sample symmetric: ... x2 x1 | x0 x1 x2 ... xN-1 | xN-2 ...
  // Reflect repeatedly: short signals may need several bounces.
  if (n == 1) return as_signed(x[0]);
  while (i < 0 || i >= n) {
    if (i < 0) i = -i;
    if (i >= n) i = 2 * (n - 1) - i;
  }
  return as_signed(x[static_cast<std::size_t>(i)]);
}

std::int32_t read_ext(const std::vector<Word>& x, std::ptrdiff_t i,
                      Boundary boundary) {
  return read_ext(std::span<const Word>(x), i, boundary);
}

}  // namespace

Subbands dwt53_forward(std::span<const Word> x, Boundary boundary) {
  check(x.size() >= 2 && x.size() % 2 == 0,
        "dwt53_forward: even-length input of >= 2 samples required");
  const std::size_t half = x.size() / 2;
  Subbands out;
  out.high.resize(half);
  out.low.resize(half);
  // Predict: d[i] = x[2i+1] - floor((x[2i] + x[2i+2]) / 2)
  for (std::size_t i = 0; i < half; ++i) {
    const std::int32_t even = as_signed(x[2 * i]);
    const std::int32_t next_even =
        read_ext(x, static_cast<std::ptrdiff_t>(2 * i + 2), boundary);
    const std::int32_t odd = as_signed(x[2 * i + 1]);
    out.high[i] = to_word(odd - ((even + next_even) >> 1));
  }
  // Update: s[i] = x[2i] + floor((d[i-1] + d[i] + 2) / 4)
  for (std::size_t i = 0; i < half; ++i) {
    const std::int32_t d0 =
        read_ext(out.high, static_cast<std::ptrdiff_t>(i) - 1, boundary);
    const std::int32_t d1 = as_signed(out.high[i]);
    out.low[i] = to_word(as_signed(x[2 * i]) + ((d0 + d1 + 2) >> 2));
  }
  return out;
}

std::vector<Word> dwt53_inverse(const Subbands& bands, Boundary boundary) {
  check(bands.low.size() == bands.high.size(),
        "dwt53_inverse: subband size mismatch");
  const std::size_t half = bands.low.size();
  check(half >= 1, "dwt53_inverse: empty subbands");
  std::vector<Word> x(2 * half);
  // Undo update: x[2i] = s[i] - floor((d[i-1] + d[i] + 2) / 4)
  for (std::size_t i = 0; i < half; ++i) {
    const std::int32_t d0 =
        read_ext(bands.high, static_cast<std::ptrdiff_t>(i) - 1, boundary);
    const std::int32_t d1 = as_signed(bands.high[i]);
    x[2 * i] = to_word(as_signed(bands.low[i]) - ((d0 + d1 + 2) >> 2));
  }
  // Undo predict: x[2i+1] = d[i] + floor((x[2i] + x[2i+2]) / 2)
  // Note the even samples are fully reconstructed first, so the
  // extension of x here matches the forward pass exactly.
  for (std::size_t i = 0; i < half; ++i) {
    std::int32_t next_even;
    if (2 * i + 2 < x.size()) {
      next_even = as_signed(x[2 * i + 2]);
    } else if (boundary == Boundary::kZero) {
      next_even = 0;
    } else {
      // Symmetric extension of the full-length signal: x[N] == x[N-2].
      next_even = as_signed(x[2 * i]);
    }
    x[2 * i + 1] =
        to_word(as_signed(bands.high[i]) +
                ((as_signed(x[2 * i]) + next_even) >> 1));
  }
  return x;
}

namespace {

std::vector<Word> image_row(const Image& img, std::size_t y) {
  std::vector<Word> row(img.width());
  for (std::size_t x = 0; x < img.width(); ++x) row[x] = img.at(x, y);
  return row;
}

std::vector<Word> image_col(const Image& img, std::size_t x) {
  std::vector<Word> col(img.height());
  for (std::size_t y = 0; y < img.height(); ++y) col[y] = img.at(x, y);
  return col;
}

}  // namespace

Subbands2D dwt53_forward_2d(const Image& img, Boundary boundary) {
  check(img.width() % 2 == 0 && img.height() % 2 == 0,
        "dwt53_forward_2d: even dimensions required");
  const std::size_t hw = img.width() / 2;
  const std::size_t hh = img.height() / 2;

  // Row pass: produces L and H half-width planes.
  Image low_plane(hw, img.height());
  Image high_plane(hw, img.height());
  for (std::size_t y = 0; y < img.height(); ++y) {
    const Subbands b = dwt53_forward(image_row(img, y), boundary);
    for (std::size_t x = 0; x < hw; ++x) {
      low_plane.at(x, y) = b.low[x];
      high_plane.at(x, y) = b.high[x];
    }
  }

  // Column pass on each plane.
  Subbands2D out{Image(hw, hh), Image(hw, hh), Image(hw, hh),
                 Image(hw, hh)};
  for (std::size_t x = 0; x < hw; ++x) {
    const Subbands bl = dwt53_forward(image_col(low_plane, x), boundary);
    const Subbands bh = dwt53_forward(image_col(high_plane, x), boundary);
    for (std::size_t y = 0; y < hh; ++y) {
      out.ll.at(x, y) = bl.low[y];
      out.lh.at(x, y) = bl.high[y];
      out.hl.at(x, y) = bh.low[y];
      out.hh.at(x, y) = bh.high[y];
    }
  }
  return out;
}

Image dwt53_inverse_2d(const Subbands2D& bands, Boundary boundary) {
  const std::size_t hw = bands.ll.width();
  const std::size_t hh = bands.ll.height();
  check(bands.hl.width() == hw && bands.lh.width() == hw &&
            bands.hh.width() == hw && bands.hl.height() == hh &&
            bands.lh.height() == hh && bands.hh.height() == hh,
        "dwt53_inverse_2d: subband shape mismatch");

  // Undo the column pass.
  Image low_plane(hw, 2 * hh);
  Image high_plane(hw, 2 * hh);
  for (std::size_t x = 0; x < hw; ++x) {
    Subbands bl{image_col(bands.ll, x), image_col(bands.lh, x)};
    Subbands bh{image_col(bands.hl, x), image_col(bands.hh, x)};
    const auto lcol = dwt53_inverse(bl, boundary);
    const auto hcol = dwt53_inverse(bh, boundary);
    for (std::size_t y = 0; y < 2 * hh; ++y) {
      low_plane.at(x, y) = lcol[y];
      high_plane.at(x, y) = hcol[y];
    }
  }

  // Undo the row pass.
  Image img(2 * hw, 2 * hh);
  for (std::size_t y = 0; y < 2 * hh; ++y) {
    Subbands b{image_row(low_plane, y), image_row(high_plane, y)};
    const auto row = dwt53_inverse(b, boundary);
    for (std::size_t x = 0; x < 2 * hw; ++x) img.at(x, y) = row[x];
  }
  return img;
}

std::vector<Subbands2D> dwt53_pyramid(const Image& img, int levels,
                                      Boundary boundary) {
  check(levels >= 1, "dwt53_pyramid: levels must be >= 1");
  std::vector<Subbands2D> pyramid;
  Image current = img;
  for (int l = 0; l < levels; ++l) {
    pyramid.push_back(dwt53_forward_2d(current, boundary));
    current = pyramid.back().ll;
  }
  return pyramid;
}

Image dwt53_pyramid_inverse(const std::vector<Subbands2D>& pyramid,
                            Boundary boundary) {
  check(!pyramid.empty(), "dwt53_pyramid_inverse: empty pyramid");
  Image current = dwt53_inverse_2d(pyramid.back(), boundary);
  for (auto it = pyramid.rbegin() + 1; it != pyramid.rend(); ++it) {
    Subbands2D level = *it;
    level.ll = current;
    current = dwt53_inverse_2d(level, boundary);
  }
  return current;
}

}  // namespace sring::dsp
