// Golden-model block matrix-vector products and the 8-point DCT-II
// matrix (the paper's intro motivates JPEG/MPEG (I)DCT acceleration;
// an 8x8 constant matrix times a sample block is its computational
// core).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace sring::dsp {

inline constexpr std::size_t kMatvecN = 8;

/// Row-major 8x8 coefficient matrix.
using Matrix8 = std::array<std::array<Word, kMatvecN>, kMatvecN>;

/// y = M x with Dnode-exact wrapping MAC arithmetic.
std::array<Word, kMatvecN> matvec8_reference(
    const Matrix8& m, std::span<const Word, kMatvecN> x);

/// Apply matvec8 to consecutive 8-sample blocks of a stream (the
/// stream length must be a multiple of 8).
std::vector<Word> block_matvec8_reference(const Matrix8& m,
                                          std::span<const Word> x);

/// The 8-point DCT-II basis in Q7 fixed point:
/// m[k][j] = round(127 * c(k) * cos((2j+1) k pi / 16)), c(0)=1/sqrt(2).
/// Outputs of matvec8 with this matrix are Q7 DCT coefficients
/// (callers shift right by 7 to rescale).
Matrix8 dct8_matrix_q7();

}  // namespace sring::dsp
