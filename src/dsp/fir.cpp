#include "dsp/fir.hpp"

#include "common/error.hpp"

namespace sring::dsp {

std::vector<Word> fir_reference(std::span<const Word> x,
                                std::span<const Word> coeffs) {
  check(!coeffs.empty(), "fir_reference: empty coefficient vector");
  std::vector<Word> y(x.size(), 0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    Word acc = 0;
    for (std::size_t k = 0; k < coeffs.size(); ++k) {
      if (n < k) break;
      // One MAC step: acc += c[k] * x[n-k], wrapped exactly like kMac.
      acc = to_word(static_cast<std::int64_t>(as_signed(coeffs[k])) *
                        as_signed(x[n - k]) +
                    as_signed(acc));
    }
    y[n] = acc;
  }
  return y;
}

Word dot_reference(std::span<const Word> a, std::span<const Word> b) {
  check(a.size() == b.size(), "dot_reference: length mismatch");
  Word acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = to_word(static_cast<std::int64_t>(as_signed(a[i])) *
                      as_signed(b[i]) +
                  as_signed(acc));
  }
  return acc;
}

std::vector<Word> running_mac_reference(std::span<const Word> a,
                                        std::span<const Word> b) {
  check(a.size() == b.size(), "running_mac_reference: length mismatch");
  std::vector<Word> out(a.size());
  Word acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = to_word(static_cast<std::int64_t>(as_signed(a[i])) *
                      as_signed(b[i]) +
                  as_signed(acc));
    out[i] = acc;
  }
  return out;
}

}  // namespace sring::dsp
