#include "dsp/matvec.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sring::dsp {

std::array<Word, kMatvecN> matvec8_reference(
    const Matrix8& m, std::span<const Word, kMatvecN> x) {
  std::array<Word, kMatvecN> y{};
  for (std::size_t k = 0; k < kMatvecN; ++k) {
    Word acc = 0;
    for (std::size_t j = 0; j < kMatvecN; ++j) {
      acc = to_word(static_cast<std::int64_t>(as_signed(m[k][j])) *
                        as_signed(x[j]) +
                    as_signed(acc));
    }
    y[k] = acc;
  }
  return y;
}

std::vector<Word> block_matvec8_reference(const Matrix8& m,
                                          std::span<const Word> x) {
  check(x.size() % kMatvecN == 0,
        "block_matvec8_reference: length must be a multiple of 8");
  std::vector<Word> out;
  out.reserve(x.size());
  for (std::size_t b = 0; b < x.size(); b += kMatvecN) {
    const auto y = matvec8_reference(
        m, std::span<const Word, kMatvecN>(x.data() + b, kMatvecN));
    out.insert(out.end(), y.begin(), y.end());
  }
  return out;
}

Matrix8 dct8_matrix_q7() {
  Matrix8 m{};
  constexpr double kPi = 3.14159265358979323846;
  for (std::size_t k = 0; k < kMatvecN; ++k) {
    const double ck = k == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
    for (std::size_t j = 0; j < kMatvecN; ++j) {
      const double v =
          127.0 * ck * 0.5 *
          std::cos((2.0 * static_cast<double>(j) + 1.0) *
                   static_cast<double>(k) * kPi / 16.0);
      m[k][j] = to_word(static_cast<std::int64_t>(std::llround(v)));
    }
  }
  return m;
}

}  // namespace sring::dsp
