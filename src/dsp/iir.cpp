#include "dsp/iir.hpp"

namespace sring::dsp {

namespace {
Word mac(Word coeff, Word value, Word acc) {
  return to_word(static_cast<std::int64_t>(as_signed(coeff)) *
                     as_signed(value) +
                 as_signed(acc));
}
}  // namespace

std::vector<Word> iir1_reference(std::span<const Word> x, Word a) {
  std::vector<Word> y(x.size());
  Word prev = 0;
  for (std::size_t n = 0; n < x.size(); ++n) {
    prev = mac(a, prev, x[n]);
    y[n] = prev;
  }
  return y;
}

std::vector<Word> biquad_reference(std::span<const Word> x,
                                   const BiquadCoeffs& c) {
  std::vector<Word> y(x.size());
  Word x1 = 0, x2 = 0, y1 = 0, y2 = 0;
  for (std::size_t n = 0; n < x.size(); ++n) {
    Word acc = 0;
    acc = mac(c.b0, x[n], acc);
    acc = mac(c.b1, x1, acc);
    acc = mac(c.b2, x2, acc);
    acc = mac(c.a1, y1, acc);
    acc = mac(c.a2, y2, acc);
    x2 = x1;
    x1 = x[n];
    y2 = y1;
    y1 = acc;
    y[n] = acc;
  }
  return y;
}

}  // namespace sring::dsp
