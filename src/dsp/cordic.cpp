#include "dsp/cordic.hpp"

#include <cmath>

#include "common/error.hpp"
#include "core/alu.hpp"

namespace sring::dsp {

std::array<Word, kCordicIterations> cordic_atan_table() {
  std::array<Word, kCordicIterations> table{};
  for (unsigned i = 0; i < kCordicIterations; ++i) {
    table[i] = to_word(static_cast<std::int64_t>(std::llround(
        kCordicOne * std::atan(std::ldexp(1.0, -static_cast<int>(i))))));
  }
  return table;
}

Word cordic_k_inv() {
  double k = 1.0;
  for (unsigned i = 0; i < kCordicIterations; ++i) {
    k *= std::sqrt(1.0 + std::ldexp(1.0, -2 * static_cast<int>(i)));
  }
  return to_word(static_cast<std::int64_t>(std::llround(kCordicOne / k)));
}

CordicResult cordic_rotate(Word theta_q12, unsigned iterations) {
  check(iterations >= 1 && iterations <= kCordicIterations,
        "cordic_rotate: 1..12 iterations supported");
  const auto atan = cordic_atan_table();
  // Every step below is expressed through the Dnode ALU so the ring
  // kernel reproduces it exactly:
  //   t    = cmplt(z, 0)               (1 if z negative)
  //   dval = 1 - (t << 1)              (+1 / -1)
  //   xs   = asr(y, i), ys = asr(x, i)
  //   x'   = msu(dval, xs, x) = x - dval * (y >> i)
  //   y'   = mac(dval, ys, y) = y + dval * (x >> i)
  //   z'   = msu(dval, atan_i, z)
  Word x = cordic_k_inv();
  Word y = 0;
  Word z = theta_q12;
  for (unsigned i = 0; i < iterations; ++i) {
    const Word shift = to_word(static_cast<std::int64_t>(i));
    const Word t = alu_execute(DnodeOp::kCmplt, z, 0, 0);
    const Word doubled = alu_execute(DnodeOp::kShl, t, 1, 0);
    const Word dval = alu_execute(DnodeOp::kRsub, doubled, 1, 0);
    const Word xs = alu_execute(DnodeOp::kAsr, y, shift, 0);
    const Word ys = alu_execute(DnodeOp::kAsr, x, shift, 0);
    x = alu_execute(DnodeOp::kMsu, dval, xs, x);
    y = alu_execute(DnodeOp::kMac, dval, ys, y);
    z = alu_execute(DnodeOp::kMsu, dval, atan[i], z);
  }
  return {x, y};
}

std::vector<CordicResult> cordic_rotate_stream(
    std::span<const Word> thetas_q12, unsigned iterations) {
  std::vector<CordicResult> out;
  out.reserve(thetas_q12.size());
  for (const Word theta : thetas_q12) {
    out.push_back(cordic_rotate(theta, iterations));
  }
  return out;
}

}  // namespace sring::dsp
