// Golden-model FIR / dot-product references.
//
// Arithmetic matches the Dnode datapath bit-exactly: every
// multiply-accumulate step wraps to 16 bits (two's complement), because
// the ring's MAC operator wraps at every stage.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace sring::dsp {

/// y[n] = sum_k coeffs[k] * x[n-k], zero history (x[i<0] = 0), each
/// accumulation step wrapping to 16 bits.  Returns x.size() outputs.
std::vector<Word> fir_reference(std::span<const Word> x,
                                std::span<const Word> coeffs);

/// Wrapping dot product of two equal-length vectors.
Word dot_reference(std::span<const Word> a, std::span<const Word> b);

/// Running MAC sequence: out[i] = sum_{j<=i} a[j]*b[j] (wrapping).
std::vector<Word> running_mac_reference(std::span<const Word> a,
                                        std::span<const Word> b);

}  // namespace sring::dsp
