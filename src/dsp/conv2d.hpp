// Golden-model 3x3 2-D convolution (border-clamped), the classic image
// filter of the paper's video use cases.  Dnode-exact wrapping MACs.
#pragma once

#include <array>

#include "common/image.hpp"
#include "common/types.hpp"

namespace sring::dsp {

/// Row-major 3x3 kernel.
using Kernel3x3 = std::array<std::array<Word, 3>, 3>;

/// y(x,y) = sum_{j,i} k[j][i] * img(x+i-1, y+j-1), border-clamped,
/// every accumulation step wrapping to 16 bits.
Image conv2d_3x3_reference(const Image& img, const Kernel3x3& k);

/// Common kernels for demos/tests.
Kernel3x3 kernel_smooth();   ///< 1 2 1 / 2 4 2 / 1 2 1 (unnormalized)
Kernel3x3 kernel_sharpen();  ///< 0 -1 0 / -1 5 -1 / 0 -1 0
Kernel3x3 kernel_sobel_x();  ///< -1 0 1 / -2 0 2 / -1 0 1

}  // namespace sring::dsp
