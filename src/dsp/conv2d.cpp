#include "dsp/conv2d.hpp"

namespace sring::dsp {

Image conv2d_3x3_reference(const Image& img, const Kernel3x3& k) {
  Image out(img.width(), img.height());
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      Word acc = 0;
      for (int j = 0; j < 3; ++j) {
        for (int i = 0; i < 3; ++i) {
          const Word pixel = img.at_clamped(
              static_cast<std::ptrdiff_t>(x) + i - 1,
              static_cast<std::ptrdiff_t>(y) + j - 1);
          acc = to_word(
              static_cast<std::int64_t>(as_signed(k[static_cast<std::size_t>(
                  j)][static_cast<std::size_t>(i)])) *
                  as_signed(pixel) +
              as_signed(acc));
        }
      }
      out.at(x, y) = acc;
    }
  }
  return out;
}

Kernel3x3 kernel_smooth() {
  return {{{1, 2, 1}, {2, 4, 2}, {1, 2, 1}}};
}

Kernel3x3 kernel_sharpen() {
  return {{{0, to_word(-1), 0},
           {to_word(-1), 5, to_word(-1)},
           {0, to_word(-1), 0}}};
}

Kernel3x3 kernel_sobel_x() {
  return {{{to_word(-1), 0, 1},
           {to_word(-2), 0, 2},
           {to_word(-1), 0, 1}}};
}

}  // namespace sring::dsp
