// Golden-model 5/3 lifting-scheme wavelet transform (paper §5.1,
// Table 2: "our implementation uses the lifting scheme algorithm and
// operates a 2D direct transform on a 1024x768 pixels 16 bits coded
// image; one pixel sample is computed each clock cycle").
//
// Reversible integer 5/3 (LeGall) lifting:
//   d[i] = x[2i+1] - floor((x[2i] + x[2i+2]) / 2)
//   s[i] = x[2i]   + floor((d[i-1] + d[i] + 2) / 4)
//
// Two boundary policies: kZero extends the signal with zeros (this is
// what the streaming ring kernel produces) and kSymmetric is the
// JPEG2000 whole-sample symmetric extension.  Both are perfectly
// reconstructible by the matching inverse.
#pragma once

#include <span>
#include <vector>

#include "common/image.hpp"
#include "common/types.hpp"

namespace sring::dsp {

enum class Boundary {
  kZero,       ///< x outside [0, N) reads 0 (streaming semantics)
  kSymmetric,  ///< whole-sample symmetric extension (JPEG2000)
};

/// One level of 1-D analysis output: `low` = s (approximation),
/// `high` = d (detail); each N/2 samples for an even-length input.
struct Subbands {
  std::vector<Word> low;
  std::vector<Word> high;

  bool operator==(const Subbands&) const = default;
};

/// Forward 1-D 5/3 transform of an even-length signal.
Subbands dwt53_forward(std::span<const Word> x,
                       Boundary boundary = Boundary::kZero);

/// Inverse 1-D transform; exact reconstruction for matching boundary.
std::vector<Word> dwt53_inverse(const Subbands& bands,
                                Boundary boundary = Boundary::kZero);

/// One level of separable 2-D analysis (rows then columns).
struct Subbands2D {
  Image ll, hl, lh, hh;

  bool operator==(const Subbands2D&) const = default;
};

Subbands2D dwt53_forward_2d(const Image& img,
                            Boundary boundary = Boundary::kZero);

Image dwt53_inverse_2d(const Subbands2D& bands,
                       Boundary boundary = Boundary::kZero);

/// Multi-level 2-D pyramid: level k re-decomposes the previous LL.
/// Returns levels[0] = finest.  `levels` must be >= 1 and each LL must
/// stay even-sized.
std::vector<Subbands2D> dwt53_pyramid(const Image& img, int levels,
                                      Boundary boundary = Boundary::kZero);

Image dwt53_pyramid_inverse(const std::vector<Subbands2D>& pyramid,
                            Boundary boundary = Boundary::kZero);

}  // namespace sring::dsp
