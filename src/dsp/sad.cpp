#include "dsp/sad.hpp"

#include <cstdlib>

namespace sring::dsp {

std::uint32_t block_sad(const Image& ref, std::size_t rx, std::size_t ry,
                        const Image& cand, std::ptrdiff_t cx,
                        std::ptrdiff_t cy, std::size_t n) {
  std::uint32_t sad = 0;
  for (std::size_t y = 0; y < n; ++y) {
    for (std::size_t x = 0; x < n; ++x) {
      const std::int32_t a = as_signed(
          ref.at_clamped(static_cast<std::ptrdiff_t>(rx + x),
                         static_cast<std::ptrdiff_t>(ry + y)));
      const std::int32_t b = as_signed(
          cand.at_clamped(cx + static_cast<std::ptrdiff_t>(x),
                          cy + static_cast<std::ptrdiff_t>(y)));
      sad += static_cast<std::uint32_t>(std::abs(a - b));
    }
  }
  return sad;
}

MotionVector full_search(const Image& ref, std::size_t rx, std::size_t ry,
                         const Image& cand, int range, std::size_t n) {
  MotionVector best;
  bool first = true;
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      const std::uint32_t sad =
          block_sad(ref, rx, ry, cand,
                    static_cast<std::ptrdiff_t>(rx) + dx,
                    static_cast<std::ptrdiff_t>(ry) + dy, n);
      if (first || sad < best.sad) {
        best = {dx, dy, sad};
        first = false;
      }
    }
  }
  return best;
}

std::vector<std::uint32_t> all_candidate_sads(const Image& ref,
                                              std::size_t rx,
                                              std::size_t ry,
                                              const Image& cand, int range,
                                              std::size_t n) {
  std::vector<std::uint32_t> sads;
  sads.reserve(static_cast<std::size_t>(2 * range + 1) *
               static_cast<std::size_t>(2 * range + 1));
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      sads.push_back(block_sad(ref, rx, ry, cand,
                               static_cast<std::ptrdiff_t>(rx) + dx,
                               static_cast<std::ptrdiff_t>(ry) + dy, n));
    }
  }
  return sads;
}

}  // namespace sring::dsp
