#include "sim/trace.hpp"

#include <iomanip>

#include "core/ring.hpp"
#include "ctrl/controller.hpp"

namespace sring {

void Trace::on_cycle(std::uint64_t cycle, const Controller& ctrl, Word bus,
                     const Ring& ring) {
  auto& os = *out_;
  os << "cyc " << std::setw(6) << cycle << " pc " << std::setw(4)
     << ctrl.pc() << (ctrl.halted() ? " H" : "  ") << " bus "
     << std::setw(5) << as_signed(bus) << " |";
  const auto& g = ring.geometry();
  for (std::size_t layer = 0; layer < g.layers; ++layer) {
    for (std::size_t lane = 0; lane < g.lanes; ++lane) {
      os << ' ' << std::setw(6) << as_signed(ring.dnode(layer, lane).out());
    }
    if (layer + 1 < g.layers) os << " /";
  }
  os << '\n';
}

}  // namespace sring
