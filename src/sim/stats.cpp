#include "sim/stats.hpp"

namespace sring {

double SystemStats::utilization(std::size_t dnode_count) const noexcept {
  if (cycles == 0 || dnode_count == 0) return 0.0;
  return static_cast<double>(dnode_ops) /
         (static_cast<double>(cycles) * static_cast<double>(dnode_count));
}

std::string SystemStats::to_string() const {
  std::string s;
  s += "cycles=" + std::to_string(cycles);
  s += " ring_stalls=" + std::to_string(ring_stall_cycles);
  s += " ctrl_stalls=" + std::to_string(ctrl_stall_cycles);
  s += " dnode_ops=" + std::to_string(dnode_ops);
  s += " arith_ops=" + std::to_string(arith_ops);
  s += " host_in=" + std::to_string(host_words_in);
  s += " host_out=" + std::to_string(host_words_out);
  s += " ctrl_instrs=" + std::to_string(ctrl_instructions);
  s += " cfg_writes=" + std::to_string(config_words_written);
  s += " inpop_stalls=" + std::to_string(ctrl_inpop_stalls);
  s += " wait_stalls=" + std::to_string(ctrl_wait_stalls);
  s += " bus_drives=" + std::to_string(bus_drives);
  s += " bus_conflicts=" + std::to_string(bus_conflicts);
  s += " route_changes=" + std::to_string(switch_route_changes);
  s += " plan_compiles=" + std::to_string(plan_compiles);
  s += " plan_hits=" + std::to_string(plan_hits);
  s += " plan_invalidations=" + std::to_string(plan_invalidations);
  s += " plan_content_hits=" + std::to_string(plan_content_hits);
  s += " plan_evictions=" + std::to_string(plan_evictions);
  s += " plan_seq_fusions=" + std::to_string(plan_seq_fusions);
  s += " plan_seq_hits=" + std::to_string(plan_seq_hits);
  return s;
}

}  // namespace sring
