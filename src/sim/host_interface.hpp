// Host <-> core data interface.
//
// The paper's core talks to the host CPU through dedicated switch data
// ports; the implemented communication protocol was a PCI bus limited
// to 250 Mbytes/s against a theoretical internal bandwidth of about
// 3 Gbytes/s (§5.1).  We model the link as a word FIFO pair with an
// optional rational bandwidth limit of `num`/`den` words per cycle:
// host-side buffers drain into the ring-visible FIFOs (and back) at
// that rate, so an underprovisioned link starves the ring and shows up
// as stall cycles — exactly the effect the paper's 250 MB/s figure
// describes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/host_fifo.hpp"
#include "common/types.hpp"

namespace sring {

/// Link bandwidth: at most `num` words every `den` cycles per
/// direction.  num == 0 means unlimited (ideal link).
struct LinkRate {
  std::uint32_t num = 0;
  std::uint32_t den = 1;

  static LinkRate unlimited() noexcept { return {0, 1}; }

  /// Build from bytes/second at a clock frequency (16-bit words).
  static LinkRate from_bytes_per_second(double bytes_per_s,
                                        double clock_hz);
};

class HostInterface {
 public:
  explicit HostInterface(LinkRate rate = LinkRate::unlimited());

  // --- host-side API --------------------------------------------------
  /// Queue words for transmission to the core.
  void send(std::span<const Word> words);
  void send(Word word) { send(std::span<const Word>(&word, 1)); }

  /// Words the host has received so far (does not consume them).
  const std::vector<Word>& received() const noexcept { return host_rx_; }

  /// Take all received words, clearing the receive buffer.
  std::vector<Word> take_received();

  // --- core-side (simulator) API ---------------------------------------
  HostFifo& ring_in() noexcept { return ring_in_; }
  const HostFifo& ring_in() const noexcept { return ring_in_; }
  std::vector<Word>& ring_out() noexcept { return ring_out_; }
  const std::vector<Word>& ring_out() const noexcept { return ring_out_; }

  /// Advance the link by one cycle: move words host->core and
  /// core->host under the bandwidth limit.
  void tick();

  /// True when the link has no bandwidth limit (ideal link).  The
  /// superstep engine only fuses cycles over an unlimited link, where
  /// a tick can never change what the ring sees mid-run.
  bool unlimited() const noexcept { return rate_.num == 0; }

  /// Superstep support (unlimited link only): publish ring_out words
  /// up to prefix length `n` into the host receive buffer, exactly as
  /// the skipped per-cycle tick() mirror would have.  Keeps
  /// received() consistent with the per-cycle timeline after a fused
  /// run that produced outputs without ticking the link.
  void publish_to_host(std::size_t n);

  /// Drop every queued/received word and all traffic counters,
  /// keeping the configured link rate — a fresh interface, as if
  /// just constructed.
  void reset();

  std::uint64_t words_to_core() const noexcept { return words_to_core_; }
  std::uint64_t words_to_host() const noexcept { return words_to_host_; }

 private:
  LinkRate rate_;
  HostFifo host_tx_;   // waiting on the host side
  HostFifo ring_in_;   // visible to the ring / controller
  std::vector<Word> ring_out_; // produced by the ring / controller
  std::size_t ring_out_taken_ = 0;  // prefix already shipped to host_rx_
  std::vector<Word> host_rx_;
  std::uint64_t credits_tx_ = 0;
  std::uint64_t credits_rx_ = 0;
  std::uint64_t words_to_core_ = 0;
  std::uint64_t words_to_host_ = 0;
};

}  // namespace sring
