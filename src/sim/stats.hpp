// Aggregate execution statistics of a simulation run.
#pragma once

#include <cstdint>
#include <string>

namespace sring {

struct SystemStats {
  std::uint64_t cycles = 0;
  std::uint64_t ring_stall_cycles = 0;   ///< host-input underflow cycles
  std::uint64_t ctrl_stall_cycles = 0;   ///< controller INPOP/WAIT stalls
  std::uint64_t dnode_ops = 0;           ///< Dnode instructions executed
  std::uint64_t arith_ops = 0;           ///< arithmetic ops (MAC/MSU = 2)
  std::uint64_t host_words_in = 0;       ///< words consumed by the ring
  std::uint64_t host_words_out = 0;      ///< words produced by the ring
  std::uint64_t ctrl_instructions = 0;
  std::uint64_t config_words_written = 0;
  std::uint64_t ctrl_inpop_stalls = 0;   ///< ctrl stalls on empty host FIFO
  std::uint64_t ctrl_wait_stalls = 0;    ///< ctrl stalls inside WAIT
  std::uint64_t bus_drives = 0;          ///< Dnode shared-bus drives
  std::uint64_t bus_conflicts = 0;       ///< cycles >1 Dnode drove the bus
  std::uint64_t switch_route_changes = 0;///< decoded route words changed
  std::uint64_t plan_compiles = 0;       ///< cycle plans compiled
  std::uint64_t plan_hits = 0;           ///< cycles served by a cached plan
  std::uint64_t plan_invalidations = 0;  ///< plans detached by config writes
  /// Detachments recovered by re-attaching a cached plan whose content
  /// key matched the rewritten configuration (subset of plan_hits);
  /// plan_invalidations - plan_content_hits is the true miss count.
  std::uint64_t plan_content_hits = 0;
  std::uint64_t plan_evictions = 0;      ///< plan-cache entries discarded
  std::uint64_t plan_seq_fusions = 0;    ///< periodic plan rotations fused
  std::uint64_t plan_seq_hits = 0;       ///< re-attaches served by prediction

  /// Fraction of Dnode issue slots used, given the Dnode count.
  double utilization(std::size_t dnode_count) const noexcept;

  std::string to_string() const;
};

}  // namespace sring
