// Aggregate execution statistics of a simulation run.
#pragma once

#include <cstdint>
#include <string>

namespace sring {

struct SystemStats {
  std::uint64_t cycles = 0;
  std::uint64_t ring_stall_cycles = 0;   ///< host-input underflow cycles
  std::uint64_t ctrl_stall_cycles = 0;   ///< controller INPOP/WAIT stalls
  std::uint64_t dnode_ops = 0;           ///< Dnode instructions executed
  std::uint64_t arith_ops = 0;           ///< arithmetic ops (MAC/MSU = 2)
  std::uint64_t host_words_in = 0;       ///< words consumed by the ring
  std::uint64_t host_words_out = 0;      ///< words produced by the ring
  std::uint64_t ctrl_instructions = 0;
  std::uint64_t config_words_written = 0;

  /// Fraction of Dnode issue slots used, given the Dnode count.
  double utilization(std::size_t dnode_count) const noexcept;

  std::string to_string() const;
};

}  // namespace sring
