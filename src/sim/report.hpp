// Run reporting — the profiling half of the paper's §6
// "compiling/profiling tool": human-readable summaries and the
// machine-readable RunReport every benchmark can emit as JSON.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/ring.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"

namespace sring {

class System;

/// Per-Dnode utilization over a run: one row per layer, one column per
/// lane, each cell the fraction of cycles the Dnode issued an
/// instruction.
std::string utilization_report(const Ring& ring, std::uint64_t cycles);

/// One-paragraph summary of a run (cycles, stalls, ops, utilization).
std::string run_summary(const Ring& ring, const SystemStats& stats);

/// Machine-readable record of one run, serialized as a single JSON
/// object (schema "sring.run_report.v1").  Build with `from_system`
/// when a System is available (full per-Dnode / per-switch detail and
/// the metrics registry), `from_stats` when only aggregate stats
/// survived, or default-construct and fill `name` + extras for
/// analytic models with no simulated machine behind them.
struct RunReport {
  std::string name;                  ///< benchmark / run identifier
  std::size_t layers = 0;            ///< 0 when no geometry is known
  std::size_t lanes = 0;
  bool has_stats = false;            ///< aggregate counters are present
  SystemStats stats;
  std::vector<std::uint64_t> issue_per_dnode;
  std::vector<std::uint64_t> mac_per_dnode;
  std::vector<std::uint64_t> route_changes_per_switch;
  std::vector<std::uint64_t> host_out_words_per_switch;
  obs::Registry metrics;             ///< full snapshot (from_system only)
  obs::JsonValue extras = obs::JsonValue::object();

  static RunReport from_system(std::string_view name, const System& sys);
  static RunReport from_stats(std::string_view name,
                              const SystemStats& stats);

  /// Attach a benchmark-specific key; returns *this for chaining.
  RunReport& extra(std::string_view key, obs::JsonValue value);

  obs::JsonValue to_json() const;
};

/// Serialize `report` to `path` (single line + trailing newline);
/// throws SimError when the file cannot be written.  The written JSON
/// additionally carries extras.host (obs::host_shape_json()) unless
/// the report already set one — persisted perf numbers always
/// self-describe the machine and build flags behind them.
void write_run_report(const RunReport& report, const std::string& path);

/// Handle a bench's `--json <path>` option: no-op when `path` is
/// empty, otherwise write_run_report.
void maybe_write_run_report(const RunReport& report,
                            const std::string& path);

}  // namespace sring
