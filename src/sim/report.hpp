// Utilization reporting — the profiling half of the paper's §6
// "compiling/profiling tool".
#pragma once

#include <string>

#include "core/ring.hpp"
#include "sim/stats.hpp"

namespace sring {

/// Per-Dnode utilization over a run: one row per layer, one column per
/// lane, each cell the fraction of cycles the Dnode issued an
/// instruction.
std::string utilization_report(const Ring& ring, std::uint64_t cycles);

/// One-paragraph summary of a run (cycles, stalls, ops, utilization).
std::string run_summary(const Ring& ring, const SystemStats& stats);

}  // namespace sring
