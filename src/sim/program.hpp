// A loadable Systolic Ring application.
//
// Mirrors the paper's deployment model (§3): the host loads "management
// code" into the configuration controller's program memory plus the
// configware (configuration pages) for the operating layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config_memory.hpp"

namespace sring {

/// One preloaded local-control-unit register write, applied when the
/// program is loaded (models the boot sequence that fills stand-alone
/// microprograms before the controller starts).
struct LocalWrite {
  std::uint32_t dnode = 0;
  std::uint8_t slot = 0;   ///< 0..7 program, 8 LIMIT, 9 counter reset
  std::uint64_t value = 0;

  bool operator==(const LocalWrite&) const = default;
};

struct LoadableProgram {
  std::string name;
  RingGeometry geometry;                      ///< ring the code targets
  std::vector<std::uint32_t> controller_code; ///< encoded RISC instructions
  std::vector<ConfigPage> pages;              ///< preloaded config pages
  std::vector<LocalWrite> local_init;         ///< boot-time WRLOC writes

  bool operator==(const LoadableProgram&) const = default;
};

}  // namespace sring
