// VCD (Value Change Dump, IEEE 1364) waveform writer — lets any
// standard waveform viewer (GTKWave etc.) display a simulation, the
// way the paper's authors watched the APEX prototype on a logic
// analyzer (fig. 6).
//
// Dumped signals: the cycle clock, the shared bus, the controller PC
// and halt flag, host FIFO depth, and every Dnode's registered output.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sring {

class System;

class VcdWriter {
 public:
  /// Writes the VCD header for `system`'s geometry immediately.
  VcdWriter(std::ostream& out, const System& system,
            const std::string& top_module = "systolic_ring");

  /// Capture the system state as one timestep (call once per cycle,
  /// after System::step()).
  void sample(const System& system);

 private:
  struct Signal {
    std::string id;     ///< VCD short identifier
    unsigned width;
    std::uint64_t last = ~0ull;  ///< force first emission
    bool emitted = false;
  };

  void define(std::ostream& out, const std::string& name, unsigned width,
              Signal& sig);
  void emit(Signal& sig, std::uint64_t value);

  static std::string make_id(std::size_t index);

  std::ostream* out_;
  std::uint64_t time_ = 0;
  std::size_t next_id_ = 0;
  Signal clock_;
  Signal bus_;
  Signal pc_;
  Signal halted_;
  Signal fifo_depth_;
  std::vector<Signal> dnode_out_;
};

}  // namespace sring
