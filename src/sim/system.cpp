#include "sim/system.hpp"

#include "common/error.hpp"

namespace sring {

System::System(const SystemConfig& config)
    : geom_(config.geometry),
      cfg_(config.geometry),
      ring_(config.geometry),
      host_(config.link) {
  geom_.validate();
}

void System::load(const LoadableProgram& program) {
  check(program.geometry.layers == geom_.layers &&
            program.geometry.lanes == geom_.lanes,
        "System::load: program was built for a different ring geometry");
  cfg_ = ConfigMemory(geom_);
  for (const auto& page : program.pages) cfg_.add_page(page);
  ctrl_.load_program(program.controller_code);
  ring_.reset();
  for (const auto& lw : program.local_init) {
    ring_.write_local(lw.dnode, lw.slot, lw.value);
  }
  bus_ = 0;
  cycle_ = 0;
  stats_ = SystemStats{};
}

void System::step() {
  host_.tick();

  const Controller::StepContext ctx{cfg_,
                                    ring_,
                                    bus_,
                                    host_.ring_in(),
                                    host_.ring_out(),
                                    cycle_};
  const auto ctrl_res = ctrl_.step(ctx);
  if (ctrl_res.stalled) ++stats_.ctrl_stall_cycles;
  if (ctrl_res.executed) ++stats_.ctrl_instructions;

  // Controller bus writes are visible to the Dnodes in the same cycle.
  const Word bus_for_ring = ctrl_res.bus_drive.value_or(bus_);

  const auto ring_res =
      ring_.step(cfg_, bus_for_ring, host_.ring_in(), host_.ring_out());
  if (ring_res.stalled) ++stats_.ring_stall_cycles;
  stats_.dnode_ops += ring_res.ops;
  stats_.arith_ops += ring_res.arith_ops;
  stats_.host_words_in += ring_res.host_words_in;
  stats_.host_words_out += ring_res.host_words_out;

  // Dnode bus drives become visible next cycle.
  bus_ = ring_res.bus_drive.value_or(bus_for_ring);

  ++cycle_;
  ++stats_.cycles;
  if (trace_ != nullptr) trace_->on_cycle(cycle_, ctrl_, bus_, ring_);
}

SystemStats System::stats() const {
  SystemStats s = stats_;
  s.config_words_written = cfg_.words_written();
  return s;
}

void System::run_until_halt(std::uint64_t max_cycles,
                            std::uint64_t drain_cycles) {
  std::uint64_t n = 0;
  while (!ctrl_.halted()) {
    check(n++ < max_cycles, "System::run_until_halt: cycle budget exceeded");
    step();
  }
  run_cycles(drain_cycles);
}

void System::run_until_outputs(std::size_t count, std::uint64_t max_cycles) {
  std::uint64_t n = 0;
  while (host_.received().size() < count) {
    check(n++ < max_cycles,
          "System::run_until_outputs: cycle budget exceeded");
    step();
  }
}

void System::run_cycles(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

}  // namespace sring
