#include "sim/system.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"
#include "isa/dnode_instr.hpp"
#include "isa/risc_instr.hpp"

namespace sring {

System::System(const SystemConfig& config)
    : geom_(config.geometry),
      cfg_(config.geometry),
      ring_(config.geometry),
      host_(config.link) {
  geom_.validate();
  route_marks_.assign(geom_.switch_count(), 0);
  const char* no_superstep = std::getenv("SRING_NO_SUPERSTEP");
  superstep_enabled_ = no_superstep == nullptr || *no_superstep == '\0';
}

void System::load(const LoadableProgram& program) {
  check(program.geometry.layers == geom_.layers &&
            program.geometry.lanes == geom_.lanes,
        "System::load: program was built for a different ring geometry");
  cfg_ = ConfigMemory(geom_);
  for (const auto& page : program.pages) cfg_.add_page(page);
  ctrl_.load_program(program.controller_code);
  reset_common(program, /*keep_plans=*/false);
}

void System::reset_for_rerun(const LoadableProgram& program) {
  check(program.geometry.layers == geom_.layers &&
            program.geometry.lanes == geom_.lanes,
        "System::reset_for_rerun: wrong ring geometry");
  check(cfg_.page_count() == program.pages.size(),
        "System::reset_for_rerun: a different program is loaded");
  cfg_.reset_live();
  ctrl_.reset();
  reset_common(program, /*keep_plans=*/true);
}

void System::reset_common(const LoadableProgram& program, bool keep_plans) {
  // A rerun keeps the ring's compiled plan cache warm (content keys
  // re-verified before reuse); a fresh load drops it.
  if (keep_plans) {
    ring_.reset_for_rerun();
  } else {
    ring_.reset();
  }
  for (const auto& lw : program.local_init) {
    ring_.write_local(lw.dnode, lw.slot, lw.value);
  }
  host_.reset();
  bus_ = 0;
  cycle_ = 0;
  stats_ = SystemStats{};
  host_depth_counts_.fill(0);
  route_marks_.assign(geom_.switch_count(), 0);
}

void System::set_trace(obs::EventSink* sink) {
  sink_ = sink;
  // The planned ring path maintains the full per-Dnode fetch/effect
  // views only while a sink can observe them.
  ring_.set_trace_views(sink_ != nullptr);
  if (sink_ == nullptr) return;
  if (tracks_.empty()) tracks_ = obs::make_tracks(geom_.layers, geom_.lanes);
  route_marks_ = cfg_.route_changes_per_switch();
  sink_->begin(tracks_);
}

void System::step() {
  host_.tick();

  {  // sample the ring-visible input-FIFO depth (post link tick)
    const std::size_t depth = host_.ring_in().size();
    ++host_depth_counts_[kDepthLut[depth < kDepthLutMax ? depth
                                                        : kDepthLutMax]];
  }

  const Controller::StepContext ctx{cfg_,
                                    ring_,
                                    bus_,
                                    host_.ring_in(),
                                    host_.ring_out(),
                                    cycle_};
  const auto ctrl_res = ctrl_.step(ctx);
  if (ctrl_res.stalled) ++stats_.ctrl_stall_cycles;
  if (ctrl_res.executed) ++stats_.ctrl_instructions;

  // Controller bus writes are visible to the Dnodes in the same cycle.
  const Word bus_for_ring = ctrl_res.bus_drive.value_or(bus_);

  const auto ring_res =
      ring_.step(cfg_, bus_for_ring, host_.ring_in(), host_.ring_out());
  if (ring_res.stalled) ++stats_.ring_stall_cycles;
  stats_.dnode_ops += ring_res.ops;
  stats_.arith_ops += ring_res.arith_ops;
  stats_.host_words_in += ring_res.host_words_in;
  stats_.host_words_out += ring_res.host_words_out;

  // Dnode bus drives become visible next cycle.
  bus_ = ring_res.bus_drive.value_or(bus_for_ring);

  ++cycle_;
  ++stats_.cycles;
  if (sink_ != nullptr) emit_cycle_events(ctrl_res, ring_res);
}

void System::emit_cycle_events(const Controller::StepResult& ctrl_res,
                               const Ring::CycleResult& ring_res) {
  using obs::Event;
  const std::uint64_t cyc = cycle_;  // post-edge label, first cycle is 1

  // Controller: one event per cycle while running.
  if (ctrl_res.executed) {
    sink_->event(Event{cyc, obs::kControllerTrack, to_mnemonic(ctrl_res.op),
                       static_cast<std::int64_t>(ctrl_.pc()), 1});
  } else if (ctrl_res.stalled) {
    sink_->event(Event{
        cyc, obs::kControllerTrack,
        ctrl_res.stall_cause == Controller::StallCause::kInpop
            ? std::string_view{"stall.inpop"}
            : std::string_view{"stall.wait"},
        static_cast<std::int64_t>(ctrl_.pc()), 1});
  }

  // Shared bus: who drove it this cycle.
  if (ctrl_res.bus_drive.has_value()) {
    sink_->event(Event{cyc, obs::kBusTrack, "busw",
                       as_signed(*ctrl_res.bus_drive), 1});
  }
  if (ring_res.bus_drive.has_value()) {
    sink_->event(Event{cyc, obs::kBusTrack, "drive",
                       as_signed(*ring_res.bus_drive), 1});
  }

  // Ring-wide conditions and host traffic.
  if (ring_res.stalled) {
    sink_->event(Event{cyc, obs::kRingTrack, "stall.host_in", 0, 1});
  }
  if (ring_res.host_words_in > 0) {
    sink_->event(Event{cyc, obs::kRingTrack, "host.in",
                       static_cast<std::int64_t>(ring_res.host_words_in), 1});
  }
  if (ring_res.host_words_out > 0) {
    sink_->event(Event{cyc, obs::kRingTrack, "host.out",
                       static_cast<std::int64_t>(ring_res.host_words_out),
                       1});
  }

  // Dnode issue slots: one event per instruction actually executed.
  if (!ring_res.stalled) {
    const auto effects = ring_.last_effects();
    const auto& fetched = ring_.last_fetched();
    for (std::size_t i = 0; i < effects.size(); ++i) {
      if (!effects[i].executed) continue;
      sink_->event(Event{cyc, obs::dnode_track(i),
                         to_mnemonic(fetched[i]->op),
                         as_signed(effects[i].result), 1});
    }
  }

  // Switch reconfiguration: decoded route words changed this cycle
  // (WRSW or page swap executed by the controller above).
  const auto& changes = cfg_.route_changes_per_switch();
  for (std::size_t s = 0; s < changes.size(); ++s) {
    if (changes[s] != route_marks_[s]) {
      sink_->event(
          Event{cyc, obs::switch_track(geom_.dnode_count(), s),
                "route.update",
                static_cast<std::int64_t>(changes[s] - route_marks_[s]), 1});
      route_marks_[s] = changes[s];
    }
  }

  sink_->cycle_end(
      obs::CycleState{cyc, ctrl_.pc(), ctrl_.halted(), bus_, &ring_});
}

SystemStats System::stats() const {
  SystemStats s = stats_;
  s.config_words_written = cfg_.words_written();
  s.ctrl_inpop_stalls = ctrl_.inpop_stall_cycles();
  s.ctrl_wait_stalls = ctrl_.wait_stall_cycles();
  s.bus_drives = ring_.bus_drives();
  s.bus_conflicts = ring_.bus_conflicts();
  s.switch_route_changes = cfg_.route_changes_total();
  s.plan_compiles = ring_.plan_compiles();
  s.plan_hits = ring_.plan_hits();
  s.plan_invalidations = ring_.plan_invalidations();
  s.plan_content_hits = ring_.plan_content_hits();
  s.plan_evictions = ring_.plan_evictions();
  s.plan_seq_fusions = ring_.plan_seq_fusions();
  s.plan_seq_hits = ring_.plan_seq_hits();
  return s;
}

obs::Registry System::metrics() const {
  obs::Registry reg;
  const SystemStats s = stats();

  reg.counter("sys.cycles").set(s.cycles);
  reg.counter("sys.ring_stall_cycles").set(s.ring_stall_cycles);
  reg.counter("sys.dnode_ops").set(s.dnode_ops);
  reg.counter("sys.arith_ops").set(s.arith_ops);

  reg.counter("ctrl.instructions").set(s.ctrl_instructions);
  reg.counter("ctrl.stall.inpop").set(s.ctrl_inpop_stalls);
  reg.counter("ctrl.stall.wait").set(s.ctrl_wait_stalls);
  reg.counter("ctrl.bus_writes").set(ctrl_.bus_writes());

  reg.counter("bus.dnode_drives").set(s.bus_drives);
  reg.counter("bus.conflicts").set(s.bus_conflicts);

  reg.counter("cfg.words_written").set(s.config_words_written);
  reg.counter("cfg.route_changes").set(s.switch_route_changes);

  reg.counter("ring.plan.compiles").set(s.plan_compiles);
  reg.counter("ring.plan.hits").set(s.plan_hits);
  reg.counter("ring.plan.invalidations").set(s.plan_invalidations);
  reg.counter("ring.plan.content_hits").set(s.plan_content_hits);
  reg.counter("ring.plan.evictions").set(s.plan_evictions);
  reg.counter("ring.plan.seq_fusions").set(s.plan_seq_fusions);
  reg.counter("ring.plan.seq_hits").set(s.plan_seq_hits);

  // Superstep engine activity.  These are the ONLY values allowed to
  // differ between superstep and per-cycle execution of the same run.
  reg.counter("ring.superstep.dispatches").set(ring_.superstep_dispatches());
  reg.counter("ring.superstep.cycles").set(ring_.superstep_cycles());

  reg.counter("host.words_in").set(s.host_words_in);
  reg.counter("host.words_out").set(s.host_words_out);
  reg.counter("host.link_words_to_core").set(host_.words_to_core());
  reg.counter("host.link_words_to_host").set(host_.words_to_host());
  reg.put_histogram(
      "host.in_fifo_depth",
      obs::Histogram::from_counts(
          {kHostDepthBounds.begin(), kHostDepthBounds.end()},
          {host_depth_counts_.begin(), host_depth_counts_.end()}));

  const auto& issue = ring_.ops_per_dnode();
  const auto& mac = ring_.mac_ops_per_dnode();
  const auto& loc = ring_.local_cycles_per_dnode();
  const auto& glob = ring_.global_cycles_per_dnode();
  char name[64];
  for (std::size_t layer = 0; layer < geom_.layers; ++layer) {
    for (std::size_t lane = 0; lane < geom_.lanes; ++lane) {
      const std::size_t i = layer * geom_.lanes + lane;
      const auto set = [&](const char* leaf, std::uint64_t v) {
        std::snprintf(name, sizeof(name), "dnode.%zu.%zu.%s", layer, lane,
                      leaf);
        reg.counter(name).set(v);
      };
      set("issue", issue[i]);
      set("mac", mac[i]);
      set("alu", issue[i] - mac[i]);
      set("local_cycles", loc[i]);
      set("global_cycles", glob[i]);
    }
  }

  const auto& route_changes = cfg_.route_changes_per_switch();
  const auto& host_out = ring_.host_out_words_per_switch();
  const auto& fb_reads = ring_.fb_reads_per_pipe();
  const auto& fb_depths = ring_.fb_read_depth_counts();
  const std::size_t fb_depth = geom_.fb_depth;
  std::vector<std::uint64_t> depth_bounds(fb_depth);
  for (std::size_t d = 0; d < fb_depth; ++d) depth_bounds[d] = d;
  for (std::size_t sw = 0; sw < geom_.switch_count(); ++sw) {
    const auto set = [&](const char* leaf, std::uint64_t v) {
      std::snprintf(name, sizeof(name), "switch.%zu.%s", sw, leaf);
      reg.counter(name).set(v);
    };
    set("route_changes", route_changes[sw]);
    set("host_out_words", host_out[sw]);
    set("fb_reads", fb_reads[sw]);
    set("fb_occupancy", ring_.pipeline(sw).occupancy());
    std::snprintf(name, sizeof(name), "switch.%zu.fb_read_depth", sw);
    reg.put_histogram(
        name,
        obs::Histogram::from_counts(
            depth_bounds,
            {fb_depths.begin() + static_cast<std::ptrdiff_t>(sw * fb_depth),
             fb_depths.begin() +
                 static_cast<std::ptrdiff_t>((sw + 1) * fb_depth)}));
  }
  return reg;
}

std::uint64_t System::try_superstep(std::uint64_t cycle_budget,
                                    std::size_t host_out_stop) {
  if (!superstep_enabled_ || sink_ != nullptr || !host_.unlimited()) {
    return 0;
  }
  std::uint64_t cap = cycle_budget;
  const bool waiting = !ctrl_.halted();
  if (waiting) {
    // Only a controller parked in a multi-cycle WAIT is as inert as a
    // halted one; cap the fused run at its wake-up cycle.
    const std::uint64_t w = ctrl_.wait_cycles_remaining();
    if (w == 0) return 0;
    if (w < cap) cap = w;
  }
  const auto res = ring_.run_planned(
      cfg_, bus_, host_.ring_in(), host_.ring_out(), cap, host_out_stop,
      Ring::HostDepthProbe{host_depth_counts_.data(), kDepthLut.data(),
                           kDepthLutMax});
  if (res.cycles == 0) return 0;

  // Flush what the skipped per-cycle steps would have accounted.  The
  // host link is NOT ticked: publish_to_host reproduces the mirror's
  // one-tick lag so received() matches the per-cycle timeline exactly.
  if (waiting) {
    ctrl_.skip_wait(res.cycles);
    stats_.ctrl_stall_cycles += res.cycles;
  }
  stats_.cycles += res.cycles;
  stats_.dnode_ops += res.ops;
  stats_.arith_ops += res.arith_ops;
  stats_.host_words_in += res.host_words_in;
  stats_.host_words_out += res.host_words_out;
  cycle_ += res.cycles;
  if (res.bus_drive.has_value()) bus_ = *res.bus_drive;
  host_.publish_to_host(res.out_size_at_last_top);
  return res.cycles;
}

void System::run_until_halt(std::uint64_t max_cycles,
                            std::uint64_t drain_cycles) {
  std::uint64_t n = 0;
  while (!ctrl_.halted()) {
    const std::uint64_t k =
        try_superstep(max_cycles - n, std::numeric_limits<std::size_t>::max());
    if (k > 0) {
      n += k;
      continue;
    }
    check(n++ < max_cycles, "System::run_until_halt: cycle budget exceeded");
    step();
  }
  run_cycles(drain_cycles);
}

void System::run_until_outputs(std::size_t count, std::uint64_t max_cycles) {
  std::uint64_t n = 0;
  while (host_.received().size() < count) {
    const std::uint64_t k = try_superstep(max_cycles - n, count);
    if (k > 0) {
      n += k;
      continue;
    }
    check(n++ < max_cycles,
          "System::run_until_outputs: cycle budget exceeded");
    step();
  }
}

void System::run_cycles(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n;) {
    const std::uint64_t k =
        try_superstep(n - i, std::numeric_limits<std::size_t>::max());
    if (k > 0) {
      i += k;
      continue;
    }
    step();
    ++i;
  }
}

}  // namespace sring
