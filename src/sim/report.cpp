#include "sim/report.hpp"

#include <cstdio>

namespace sring {

std::string utilization_report(const Ring& ring, std::uint64_t cycles) {
  const auto& g = ring.geometry();
  const auto& ops = ring.ops_per_dnode();
  std::string out = "        ";
  char buf[64];
  for (std::size_t lane = 0; lane < g.lanes; ++lane) {
    std::snprintf(buf, sizeof(buf), "  lane%-2zu", lane);
    out += buf;
  }
  out += '\n';
  for (std::size_t layer = 0; layer < g.layers; ++layer) {
    std::snprintf(buf, sizeof(buf), "layer%-2zu ", layer);
    out += buf;
    for (std::size_t lane = 0; lane < g.lanes; ++lane) {
      const double u =
          cycles == 0
              ? 0.0
              : static_cast<double>(ops[layer * g.lanes + lane]) /
                    static_cast<double>(cycles);
      std::snprintf(buf, sizeof(buf), " %6.1f%%", 100.0 * u);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

std::string run_summary(const Ring& ring, const SystemStats& stats) {
  const std::size_t n = ring.geometry().dnode_count();
  std::size_t active = 0;
  for (const auto c : ring.ops_per_dnode()) active += c > 0 ? 1 : 0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%llu cycles (%llu ring stalls), %llu Dnode ops on "
                "%zu/%zu Dnodes, utilization %.1f%%",
                static_cast<unsigned long long>(stats.cycles),
                static_cast<unsigned long long>(stats.ring_stall_cycles),
                static_cast<unsigned long long>(stats.dnode_ops), active,
                n, 100.0 * stats.utilization(n));
  return std::string(buf) + "\n" + utilization_report(ring, stats.cycles);
}

}  // namespace sring
