#include "sim/report.hpp"

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "obs/host_shape.hpp"
#include "sim/system.hpp"

namespace sring {

std::string utilization_report(const Ring& ring, std::uint64_t cycles) {
  const auto& g = ring.geometry();
  const auto& ops = ring.ops_per_dnode();
  std::string out = "        ";
  char buf[64];
  for (std::size_t lane = 0; lane < g.lanes; ++lane) {
    std::snprintf(buf, sizeof(buf), "  lane%-2zu", lane);
    out += buf;
  }
  out += '\n';
  for (std::size_t layer = 0; layer < g.layers; ++layer) {
    std::snprintf(buf, sizeof(buf), "layer%-2zu ", layer);
    out += buf;
    for (std::size_t lane = 0; lane < g.lanes; ++lane) {
      const double u =
          cycles == 0
              ? 0.0
              : static_cast<double>(ops[layer * g.lanes + lane]) /
                    static_cast<double>(cycles);
      std::snprintf(buf, sizeof(buf), " %6.1f%%", 100.0 * u);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

std::string run_summary(const Ring& ring, const SystemStats& stats) {
  const std::size_t n = ring.geometry().dnode_count();
  std::size_t active = 0;
  for (const auto c : ring.ops_per_dnode()) active += c > 0 ? 1 : 0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%llu cycles (%llu ring stalls), %llu Dnode ops on "
                "%zu/%zu Dnodes, utilization %.1f%%",
                static_cast<unsigned long long>(stats.cycles),
                static_cast<unsigned long long>(stats.ring_stall_cycles),
                static_cast<unsigned long long>(stats.dnode_ops), active,
                n, 100.0 * stats.utilization(n));
  return std::string(buf) + "\n" + utilization_report(ring, stats.cycles);
}

RunReport RunReport::from_system(std::string_view name, const System& sys) {
  RunReport r;
  r.name = std::string(name);
  const auto& g = sys.ring().geometry();
  r.layers = g.layers;
  r.lanes = g.lanes;
  r.has_stats = true;
  r.stats = sys.stats();
  r.issue_per_dnode = sys.ring().ops_per_dnode();
  r.mac_per_dnode = sys.ring().mac_ops_per_dnode();
  r.route_changes_per_switch = sys.config().route_changes_per_switch();
  r.host_out_words_per_switch = sys.ring().host_out_words_per_switch();
  r.metrics = sys.metrics();
  return r;
}

RunReport RunReport::from_stats(std::string_view name,
                                const SystemStats& stats) {
  RunReport r;
  r.name = std::string(name);
  r.has_stats = true;
  r.stats = stats;
  return r;
}

RunReport& RunReport::extra(std::string_view key, obs::JsonValue value) {
  extras.set(key, std::move(value));
  return *this;
}

obs::JsonValue RunReport::to_json() const {
  using obs::JsonValue;
  JsonValue j = JsonValue::object();
  j.set("schema", "sring.run_report.v1");
  j.set("name", name);
  if (layers > 0 && lanes > 0) {
    JsonValue g = JsonValue::object();
    g.set("layers", std::uint64_t{layers});
    g.set("lanes", std::uint64_t{lanes});
    j.set("geometry", std::move(g));
  }
  if (has_stats) {
    j.set("cycles", stats.cycles);

    JsonValue s = JsonValue::object();
    s.set("cycles", stats.cycles);
    s.set("ring_stall_cycles", stats.ring_stall_cycles);
    s.set("ctrl_stall_cycles", stats.ctrl_stall_cycles);
    s.set("dnode_ops", stats.dnode_ops);
    s.set("arith_ops", stats.arith_ops);
    s.set("host_words_in", stats.host_words_in);
    s.set("host_words_out", stats.host_words_out);
    s.set("ctrl_instructions", stats.ctrl_instructions);
    s.set("config_words_written", stats.config_words_written);
    s.set("bus_drives", stats.bus_drives);
    s.set("bus_conflicts", stats.bus_conflicts);
    s.set("switch_route_changes", stats.switch_route_changes);
    if (layers > 0 && lanes > 0) {
      s.set("utilization", stats.utilization(layers * lanes));
    }
    j.set("stats", std::move(s));

    JsonValue st = JsonValue::object();
    st.set("ring_host_underflow", stats.ring_stall_cycles);
    st.set("ctrl_inpop", stats.ctrl_inpop_stalls);
    st.set("ctrl_wait", stats.ctrl_wait_stalls);
    j.set("stalls", std::move(st));

    JsonValue h = JsonValue::object();
    h.set("words_in", stats.host_words_in);
    h.set("words_out", stats.host_words_out);
    j.set("host", std::move(h));
  }
  if (!issue_per_dnode.empty() && lanes > 0) {
    JsonValue dn = JsonValue::array();
    for (std::size_t i = 0; i < issue_per_dnode.size(); ++i) {
      JsonValue d = JsonValue::object();
      d.set("layer", std::uint64_t{i / lanes});
      d.set("lane", std::uint64_t{i % lanes});
      d.set("issue", issue_per_dnode[i]);
      if (i < mac_per_dnode.size()) d.set("mac", mac_per_dnode[i]);
      dn.push_back(std::move(d));
    }
    j.set("dnodes", std::move(dn));
  }
  if (!route_changes_per_switch.empty()) {
    JsonValue sws = JsonValue::array();
    for (std::size_t sw = 0; sw < route_changes_per_switch.size(); ++sw) {
      JsonValue s = JsonValue::object();
      s.set("switch", std::uint64_t{sw});
      s.set("route_changes", route_changes_per_switch[sw]);
      if (sw < host_out_words_per_switch.size()) {
        s.set("host_out_words", host_out_words_per_switch[sw]);
      }
      sws.push_back(std::move(s));
    }
    j.set("switches", std::move(sws));
  }
  if (metrics.size() > 0) j.set("metrics", metrics.to_json());
  if (!extras.members().empty()) j.set("extras", extras);
  return j;
}

void write_run_report(const RunReport& report, const std::string& path) {
  // Write-then-rename: an interrupted run leaves either the previous
  // report or none, never a truncated JSON file.  The temp file sits
  // next to the target so the rename stays within one filesystem.
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".tmp.%ld",
                static_cast<long>(::getpid()));
  const std::string tmp = path + suffix;

  // Every persisted report self-describes the host and build flags it
  // was recorded under — a throughput number from a 1-core container
  // or a sanitizer build is meaningless without them.  Injected here
  // (not in to_json) so in-memory extras stay exactly what the bench
  // set; an explicit "host" extra wins.
  obs::JsonValue j = report.to_json();
  const obs::JsonValue* extras = j.find("extras");
  if (extras == nullptr || extras->find("host") == nullptr) {
    obs::JsonValue merged =
        extras != nullptr ? *extras : obs::JsonValue::object();
    merged.set("host", obs::host_shape_json());
    j.set("extras", std::move(merged));
  }

  {
    std::ofstream out(tmp);
    check(static_cast<bool>(out),
          "write_run_report: cannot open output file: " + tmp);
    j.dump(out);
    out << '\n';
    out.flush();
    check(static_cast<bool>(out),
          "write_run_report: write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    check(false, "write_run_report: cannot rename " + tmp + " to " + path);
  }
}

void maybe_write_run_report(const RunReport& report,
                            const std::string& path) {
  if (!path.empty()) write_run_report(report, path);
}

}  // namespace sring
