#include "sim/vcd.hpp"

#include "sim/system.hpp"

namespace sring {

std::string VcdWriter::make_id(std::size_t index) {
  // Printable VCD identifiers: base-94 over '!'..'~'.
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

void VcdWriter::define(std::ostream& out, const std::string& name,
                       unsigned width, Signal& sig) {
  sig.id = make_id(next_id_++);
  sig.width = width;
  out << "$var wire " << width << " " << sig.id << " " << name
      << " $end\n";
}

VcdWriter::VcdWriter(std::ostream& out, const System& system,
                     const std::string& top_module)
    : out_(&out) {
  out << "$timescale 1ns $end\n";
  out << "$scope module " << top_module << " $end\n";
  define(out, "clk", 1, clock_);
  define(out, "bus[15:0]", 16, bus_);
  define(out, "ctrl_pc[15:0]", 16, pc_);
  define(out, "ctrl_halted", 1, halted_);
  define(out, "host_fifo_depth[15:0]", 16, fifo_depth_);
  const auto& g = system.ring().geometry();
  dnode_out_.resize(g.dnode_count());
  for (std::size_t layer = 0; layer < g.layers; ++layer) {
    for (std::size_t lane = 0; lane < g.lanes; ++lane) {
      define(out,
             "dnode_" + std::to_string(layer) + "_" +
                 std::to_string(lane) + "_out[15:0]",
             16, dnode_out_[layer * g.lanes + lane]);
    }
  }
  out << "$upscope $end\n$enddefinitions $end\n";
}

void VcdWriter::emit(Signal& sig, std::uint64_t value) {
  if (sig.emitted && value == sig.last) return;
  sig.last = value;
  sig.emitted = true;
  auto& out = *out_;
  if (sig.width == 1) {
    out << (value & 1) << sig.id << '\n';
    return;
  }
  out << 'b';
  bool leading = true;
  for (int bit = static_cast<int>(sig.width) - 1; bit >= 0; --bit) {
    const bool v = (value >> bit) & 1;
    if (v) leading = false;
    if (!leading || bit == 0) out << (v ? '1' : '0');
  }
  out << ' ' << sig.id << '\n';
}

void VcdWriter::sample(const System& system) {
  auto& out = *out_;
  // Two timesteps per cycle give a visible clock edge.
  out << '#' << (2 * time_) << '\n';
  emit(clock_, 1);
  emit(bus_, system.bus());
  emit(pc_, system.controller().pc() & 0xFFFF);
  emit(halted_, system.controller().halted() ? 1 : 0);
  emit(fifo_depth_,
       static_cast<std::uint64_t>(system.host().ring_in().size()) & 0xFFFF);
  const auto& g = system.ring().geometry();
  for (std::size_t layer = 0; layer < g.layers; ++layer) {
    for (std::size_t lane = 0; lane < g.lanes; ++lane) {
      emit(dnode_out_[layer * g.lanes + lane],
           system.ring().dnode(layer, lane).out());
    }
  }
  out << '#' << (2 * time_ + 1) << '\n';
  clock_.emitted = false;  // force the falling edge each cycle
  emit(clock_, 0);
  ++time_;
}

}  // namespace sring
