#include "sim/host_interface.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace sring {

LinkRate LinkRate::from_bytes_per_second(double bytes_per_s,
                                         double clock_hz) {
  check(bytes_per_s > 0 && clock_hz > 0,
        "LinkRate: rates must be positive");
  // words/cycle = (bytes/s / 2) / (cycles/s); represent as a rational
  // with a fixed denominator for exactness in the accumulator.
  constexpr std::uint32_t kDen = 10000;
  const double words_per_cycle = bytes_per_s / 2.0 / clock_hz;
  const auto num = static_cast<std::uint32_t>(
      std::llround(words_per_cycle * kDen));
  check(num > 0, "LinkRate: link too slow to ever transfer a word");
  return {num, kDen};
}

HostInterface::HostInterface(LinkRate rate) : rate_(rate) {
  check(rate_.den > 0, "HostInterface: zero rate denominator");
}

void HostInterface::send(std::span<const Word> words) {
  if (rate_.num == 0) {
    // Ideal link: words are visible to the core immediately.
    ring_in_.append(words);
    words_to_core_ += words.size();
  } else {
    host_tx_.append(words);
  }
}

std::vector<Word> HostInterface::take_received() {
  if (rate_.num == 0) {
    // Ideal link: everything the core produced is already host-visible.
    host_rx_.insert(host_rx_.end(),
                    ring_out_.begin() + static_cast<std::ptrdiff_t>(
                                            ring_out_taken_),
                    ring_out_.end());
    words_to_host_ += ring_out_.size() - ring_out_taken_;
    ring_out_taken_ = ring_out_.size();
  }
  return std::exchange(host_rx_, {});
}

void HostInterface::reset() {
  host_tx_.clear();
  ring_in_.clear();
  ring_out_.clear();
  ring_out_taken_ = 0;
  host_rx_.clear();
  credits_tx_ = 0;
  credits_rx_ = 0;
  words_to_core_ = 0;
  words_to_host_ = 0;
}

void HostInterface::tick() {
  if (rate_.num == 0) {
    // Ideal link: host->core moves in send(); mirror core->host too so
    // received() stays current without waiting for take_received().
    if (ring_out_taken_ < ring_out_.size()) {
      host_rx_.insert(host_rx_.end(),
                      ring_out_.begin() + static_cast<std::ptrdiff_t>(
                                              ring_out_taken_),
                      ring_out_.end());
      words_to_host_ += ring_out_.size() - ring_out_taken_;
      ring_out_taken_ = ring_out_.size();
    }
    return;
  }
  credits_tx_ += rate_.num;
  while (credits_tx_ >= rate_.den && !host_tx_.empty()) {
    ring_in_.push_back(host_tx_.front());
    host_tx_.pop_front();
    credits_tx_ -= rate_.den;
    ++words_to_core_;
  }
  if (host_tx_.empty()) credits_tx_ = 0;  // no banking of idle bandwidth

  credits_rx_ += rate_.num;
  while (credits_rx_ >= rate_.den && ring_out_taken_ < ring_out_.size()) {
    host_rx_.push_back(ring_out_[ring_out_taken_++]);
    credits_rx_ -= rate_.den;
    ++words_to_host_;
  }
  if (ring_out_taken_ == ring_out_.size()) credits_rx_ = 0;
}

void HostInterface::publish_to_host(std::size_t n) {
  if (n > ring_out_.size()) n = ring_out_.size();
  if (n <= ring_out_taken_) return;
  host_rx_.insert(host_rx_.end(),
                  ring_out_.begin() + static_cast<std::ptrdiff_t>(
                                          ring_out_taken_),
                  ring_out_.begin() + static_cast<std::ptrdiff_t>(n));
  words_to_host_ += n - ring_out_taken_;
  ring_out_taken_ = n;
}

}  // namespace sring
