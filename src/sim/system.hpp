// Top-level cycle-accurate model: Ring + configuration layer + RISC
// configuration controller + host interface (paper fig. 2).
//
// Per-cycle ordering (one call to step()):
//   1. the host link moves words under its bandwidth limit;
//   2. the controller executes one instruction; a BUSW result is
//      visible to the Dnodes in the same cycle (the controller sits
//      upstream of the operating layer's bus);
//   3. the ring evaluates one cycle; a Dnode bus drive becomes visible
//      the next cycle;
//   4. statistics and the cycle counter advance.
#pragma once

#include <cstdint>
#include <optional>

#include "core/config_memory.hpp"
#include "core/ring.hpp"
#include "ctrl/controller.hpp"
#include "sim/host_interface.hpp"
#include "sim/program.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace sring {

struct SystemConfig {
  RingGeometry geometry;
  LinkRate link = LinkRate::unlimited();
};

class System {
 public:
  explicit System(const SystemConfig& config);

  /// Load an application: fresh configuration memory with the
  /// program's pages, controller program loaded, ring state cleared.
  void load(const LoadableProgram& program);

  /// Advance one clock cycle.
  void step();

  /// Run until the controller halts (or `max_cycles` elapse; throws if
  /// exceeded), then `drain_cycles` extra cycles for in-flight data.
  void run_until_halt(std::uint64_t max_cycles,
                      std::uint64_t drain_cycles = 0);

  /// Run until the host has received `count` words in total (throws
  /// after `max_cycles`).
  void run_until_outputs(std::size_t count, std::uint64_t max_cycles);

  void run_cycles(std::uint64_t n);

  // --- accessors --------------------------------------------------------
  Ring& ring() noexcept { return ring_; }
  const Ring& ring() const noexcept { return ring_; }
  ConfigMemory& config() noexcept { return cfg_; }
  const ConfigMemory& config() const noexcept { return cfg_; }
  Controller& controller() noexcept { return ctrl_; }
  const Controller& controller() const noexcept { return ctrl_; }
  HostInterface& host() noexcept { return host_; }
  const HostInterface& host() const noexcept { return host_; }

  std::uint64_t cycle() const noexcept { return cycle_; }
  Word bus() const noexcept { return bus_; }
  SystemStats stats() const;

  /// Attach / detach a cycle trace sink (not owned; may be nullptr).
  void set_trace(Trace* trace) noexcept { trace_ = trace; }

 private:
  RingGeometry geom_;
  ConfigMemory cfg_;
  Ring ring_;
  Controller ctrl_;
  HostInterface host_;
  Word bus_ = 0;
  std::uint64_t cycle_ = 0;
  SystemStats stats_;
  Trace* trace_ = nullptr;
};

}  // namespace sring
