// Top-level cycle-accurate model: Ring + configuration layer + RISC
// configuration controller + host interface (paper fig. 2).
//
// Per-cycle ordering (one call to step()):
//   1. the host link moves words under its bandwidth limit;
//   2. the controller executes one instruction; a BUSW result is
//      visible to the Dnodes in the same cycle (the controller sits
//      upstream of the operating layer's bus);
//   3. the ring evaluates one cycle; a Dnode bus drive becomes visible
//      the next cycle;
//   4. statistics and the cycle counter advance; if an event sink is
//      attached, the cycle's events and post-edge state are published.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "core/config_memory.hpp"
#include "core/ring.hpp"
#include "ctrl/controller.hpp"
#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "sim/host_interface.hpp"
#include "sim/program.hpp"
#include "sim/stats.hpp"

namespace sring {

struct SystemConfig {
  RingGeometry geometry;
  LinkRate link = LinkRate::unlimited();
};

class System {
 public:
  explicit System(const SystemConfig& config);

  /// Load an application: fresh configuration memory with the
  /// program's pages, controller program loaded, ring state cleared,
  /// host FIFOs drained.
  void load(const LoadableProgram& program);

  /// Re-arm the machine for another run of the program most recently
  /// load()ed, skipping the configware rebuild (pages stay decoded in
  /// configuration memory — the software analogue of the paper's
  /// preloaded configuration layer).  `program` must be the same
  /// program passed to the last load(); it is re-taken here only for
  /// the boot-time local-control writes.  Afterwards the machine's
  /// architectural state, outputs and statistics are indistinguishable
  /// from a freshly constructed System that just load()ed `program` —
  /// the runtime's determinism test holds it to that — with ONE
  /// carve-out: the ring keeps its compiled cycle-plan cache warm
  /// (entries re-verify their content key before re-attaching, so a
  /// different same-page-count program misses cleanly), which shows up
  /// only in the ring.plan.* counters.
  void reset_for_rerun(const LoadableProgram& program);

  /// Advance one clock cycle.
  void step();

  /// Run until the controller halts (or `max_cycles` elapse; throws if
  /// exceeded), then `drain_cycles` extra cycles for in-flight data.
  void run_until_halt(std::uint64_t max_cycles,
                      std::uint64_t drain_cycles = 0);

  /// Run until the host has received `count` words in total (throws
  /// after `max_cycles`).
  void run_until_outputs(std::size_t count, std::uint64_t max_cycles);

  void run_cycles(std::uint64_t n);

  /// Enable/disable the superstep engine at runtime (A/B comparisons;
  /// outputs and SystemStats are bit-identical either way, only the
  /// ring.superstep.* metrics differ).  Also disabled for the whole
  /// System by the SRING_NO_SUPERSTEP environment variable (any
  /// non-empty value, read at construction).
  void set_superstep_enabled(bool enabled) noexcept {
    superstep_enabled_ = enabled;
  }
  bool superstep_enabled() const noexcept { return superstep_enabled_; }

  // --- accessors --------------------------------------------------------
  Ring& ring() noexcept { return ring_; }
  const Ring& ring() const noexcept { return ring_; }
  ConfigMemory& config() noexcept { return cfg_; }
  const ConfigMemory& config() const noexcept { return cfg_; }
  Controller& controller() noexcept { return ctrl_; }
  const Controller& controller() const noexcept { return ctrl_; }
  HostInterface& host() noexcept { return host_; }
  const HostInterface& host() const noexcept { return host_; }

  std::uint64_t cycle() const noexcept { return cycle_; }
  Word bus() const noexcept { return bus_; }
  SystemStats stats() const;

  /// Named snapshot of every instrument in the machine (per-Dnode
  /// issue/mix/mode counters, per-switch route and feedback activity,
  /// controller stall causes, host-link traffic, input-FIFO depth
  /// histogram).  Assembling the snapshot never perturbs the run.
  obs::Registry metrics() const;

  /// Attach / detach a structured event sink.  The sink is borrowed —
  /// never owned — by raw pointer: it must outlive every step() made
  /// while attached (detach with nullptr first otherwise).  Attaching
  /// calls sink->begin() with the track table; the System never calls
  /// sink->end() — finalizing the output is the owner's job.  With no
  /// sink attached the per-cycle cost is a single null check.
  void set_trace(obs::EventSink* sink);

 private:
  void reset_common(const LoadableProgram& program, bool keep_plans);
  void emit_cycle_events(const Controller::StepResult& ctrl_res,
                         const Ring::CycleResult& ring_res);

  /// Try to run a fused superstep covering up to `cycle_budget` cycles
  /// (see Ring::run_planned).  Eligible only while per-cycle stepping
  /// could not observe anything a fused run skips: superstep enabled,
  /// no trace sink, unlimited host link, and the controller halted or
  /// inside a multi-cycle WAIT (the fused run is then capped at the
  /// wake-up).  `host_out_stop` carries run_until_outputs' target into
  /// the ring (SIZE_MAX otherwise).  Returns the cycles executed, 0
  /// when ineligible or nothing ran — the caller must then fall back
  /// to step() so progress is guaranteed.
  std::uint64_t try_superstep(std::uint64_t cycle_budget,
                              std::size_t host_out_stop);

  RingGeometry geom_;
  ConfigMemory cfg_;
  Ring ring_;
  Controller ctrl_;
  HostInterface host_;
  Word bus_ = 0;
  std::uint64_t cycle_ = 0;
  SystemStats stats_;

  // Input-FIFO depth sampled once per cycle; bucket i counts cycles
  // with depth <= kHostDepthBounds[i], the last bucket the overflow.
  // The depth->bucket map is a compile-time LUT so the per-cycle
  // sample is one clamped load instead of a linear bound scan.
  static constexpr std::array<std::uint64_t, 10> kHostDepthBounds{
      0, 1, 2, 4, 8, 16, 32, 64, 128, 256};
  static constexpr std::size_t kDepthLutMax = kHostDepthBounds.back() + 1;
  static constexpr auto kDepthLut = [] {
    std::array<std::uint8_t, kDepthLutMax + 1> lut{};
    for (std::size_t d = 0; d < lut.size(); ++d) {
      std::size_t b = 0;
      while (b < kHostDepthBounds.size() && d > kHostDepthBounds[b]) ++b;
      lut[d] = static_cast<std::uint8_t>(b);
    }
    return lut;
  }();
  std::array<std::uint64_t, kHostDepthBounds.size() + 1>
      host_depth_counts_{};

  bool superstep_enabled_ = true;

  obs::EventSink* sink_ = nullptr;
  std::vector<obs::Track> tracks_;          // built on sink attachment
  std::vector<std::uint64_t> route_marks_;  // per-switch change watermark
};

}  // namespace sring
