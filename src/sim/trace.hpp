// Per-cycle execution trace (the simulator's "logic analyzer", cf. the
// paper's fig. 6 prototype bench).
#pragma once

#include <cstdint>
#include <ostream>

#include "common/types.hpp"

namespace sring {

class Ring;
class Controller;

/// Writes one text line per cycle: cycle number, controller PC, bus
/// value, and every Dnode's registered output.
class Trace {
 public:
  explicit Trace(std::ostream& out) : out_(&out) {}

  void on_cycle(std::uint64_t cycle, const Controller& ctrl, Word bus,
                const Ring& ring);

 private:
  std::ostream* out_;
};

}  // namespace sring
