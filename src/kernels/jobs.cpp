#include "kernels/jobs.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "kernels/dwt_kernel.hpp"
#include "kernels/fir_kernel.hpp"
#include "kernels/matvec_kernel.hpp"
#include "kernels/motion_estimation.hpp"

namespace sring::kernels {

namespace {

/// FNV-1a over a word sequence — stable content hash for program
/// cache keys.
std::uint64_t fnv1a(std::span<const Word> words) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const Word w : words) {
    for (int shift = 0; shift < 16; shift += 8) {
      h ^= (w >> shift) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

std::string geom_key(const RingGeometry& g) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "L%zux%zufb%zu", g.layers, g.lanes,
                g.fb_depth);
  return buf;
}

}  // namespace

rt::Job make_spatial_fir_job(
    const RingGeometry& g, std::span<const Word> x,
    std::span<const Word> coeffs,
    std::shared_ptr<const LoadableProgram> program) {
  const std::size_t taps = coeffs.size();
  rt::Job job;
  job.name = "fir.spatial";
  job.program = program != nullptr
                    ? std::move(program)
                    : std::make_shared<const LoadableProgram>(
                          make_spatial_fir_program(g, coeffs));
  char key[96];
  std::snprintf(key, sizeof(key), "fir.spatial/%s/t%zu/%016llx",
                geom_key(g).c_str(), taps,
                static_cast<unsigned long long>(fnv1a(coeffs)));
  job.program_key = key;

  // Same feed/run/slice schedule as run_spatial_fir: x plus `taps`
  // flush zeros in, the first `taps` received words are warm-up.
  job.input.assign(x.begin(), x.end());
  job.input.insert(job.input.end(), taps, 0);
  job.run = rt::Job::Run::kUntilOutputs;
  job.expected_outputs = x.size() + taps;
  job.max_cycles = 64 + 16 * job.input.size();
  job.discard_prefix = taps;
  job.take_words = x.size();
  return job;
}

rt::Job make_motion_estimation_job(
    const RingGeometry& g, const Image& ref, std::size_t rx, std::size_t ry,
    const Image& cand, int range,
    std::shared_ptr<const LoadableProgram> program) {
  const std::size_t n = dsp::kBlockSize;
  const std::size_t units = g.layers;
  const auto disp = sad_displacements(range);
  const std::size_t batches = (disp.size() + units - 1) / units;

  rt::Job job;
  job.name = "motion_estimation";
  job.program = program != nullptr
                    ? std::move(program)
                    : std::make_shared<const LoadableProgram>(
                          make_sad_engine_program(g, n * n, batches));
  char key[96];
  std::snprintf(key, sizeof(key), "sad_engine/%s/px%zu/b%zu",
                geom_key(g).c_str(), n * n, batches);
  job.program_key = key;

  job.input = make_sad_feed(ref, rx, ry, cand, disp, units, n);
  job.run = rt::Job::Run::kUntilHalt;
  job.max_cycles = batches * (n * n + 16) + 1000;
  job.drain_cycles = 2;
  job.take_words = disp.size();
  return job;
}

dsp::MotionVector best_motion_vector(std::span<const Word> sads,
                                     int range) {
  const auto disp = sad_displacements(range);
  check(sads.size() >= disp.size(),
        "best_motion_vector: fewer SADs than candidates");
  dsp::MotionVector best;
  bool first = true;
  for (std::size_t c = 0; c < disp.size(); ++c) {
    if (first || sads[c] < best.sad) {
      best = {disp[c].first, disp[c].second, sads[c]};
      first = false;
    }
  }
  return best;
}

rt::Job make_dwt53_job(const RingGeometry& g, std::span<const Word> x,
                       std::shared_ptr<const LoadableProgram> program) {
  rt::Job job;
  job.name = "dwt53";
  job.program = program != nullptr
                    ? std::move(program)
                    : std::make_shared<const LoadableProgram>(
                          make_dwt53_program(g));
  job.program_key = "dwt53/" + geom_key(g);

  job.input = make_dwt53_feed(x);
  job.run = rt::Job::Run::kUntilOutputs;
  job.expected_outputs = dwt53_output_words(x.size() / 2);
  job.max_cycles = 64 + 8 * job.input.size();
  return job;
}

rt::Job make_matvec8_job(const RingGeometry& g, const dsp::Matrix8& m,
                         std::span<const Word> x,
                         std::shared_ptr<const LoadableProgram> program) {
  check(x.size() % dsp::kMatvecN == 0 && !x.empty(),
        "make_matvec8_job: length must be a positive multiple of 8");
  const std::size_t blocks = x.size() / dsp::kMatvecN;

  std::vector<Word> flat;
  flat.reserve(dsp::kMatvecN * dsp::kMatvecN);
  for (const auto& row : m) flat.insert(flat.end(), row.begin(), row.end());

  rt::Job job;
  job.name = "matvec8";
  job.program = program != nullptr
                    ? std::move(program)
                    : std::make_shared<const LoadableProgram>(
                          make_matvec8_program(g, m, blocks));
  char key[96];
  std::snprintf(key, sizeof(key), "matvec8/%s/b%zu/%016llx",
                geom_key(g).c_str(), blocks,
                static_cast<unsigned long long>(fnv1a(flat)));
  job.program_key = key;

  job.input.assign(x.begin(), x.end());
  job.run = rt::Job::Run::kUntilHalt;
  job.max_cycles = 64 + 40 * x.size();
  job.drain_cycles = 2;
  job.take_words = blocks * dsp::kMatvecN;
  return job;
}

}  // namespace sring::kernels
