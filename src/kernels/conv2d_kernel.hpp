// 3x3 2-D convolution on the ring, composed entirely by the §6
// compiler: the filter is described as a dataflow graph (three row
// streams, horizontal taps as z^-k delays, vertical taps as separate
// inputs) and map_dfg places it — MAC fusion collapses the
// multiply/add pairs, the feedback pipelines provide the tap delays.
#pragma once

#include "dsp/conv2d.hpp"
#include "mapper/mapper.hpp"

namespace sring::kernels {

/// Build the convolution DFG (inputs: top, mid, bot row streams; one
/// output).  Zero coefficients are skipped at construction.
mapper::Dfg make_conv3x3_dfg(const dsp::Kernel3x3& k);

struct Conv2dResult {
  Image output;
  std::uint64_t total_cycles = 0;
  double cycles_per_pixel = 0.0;
  std::size_t dnodes_used = 0;
};

/// Convolve an image row by row; bit-exact vs
/// dsp::conv2d_3x3_reference (border-clamped).
Conv2dResult run_conv2d_3x3(const RingGeometry& g, const Image& img,
                            const dsp::Kernel3x3& k);

}  // namespace sring::kernels
