// Running-MAC / dot-product kernel.
//
// One Dnode in local (stand-alone) mode executes a single-instruction
// microprogram `mac r0, in1, in2, r0` on host word pairs and streams
// every partial sum back — the paper's flagship single-cycle MAC
// macro-operator (§4.1) with zero controller overhead after boot.
#pragma once

#include <span>
#include <vector>

#include "sim/program.hpp"
#include "sim/stats.hpp"
#include "sim/host_interface.hpp"

namespace sring::kernels {

/// Build the program for any geometry (uses Dnode 0.0).
LoadableProgram make_running_mac_program(const RingGeometry& g);

struct MacResult {
  std::vector<Word> partial_sums;  ///< one per input pair
  SystemStats stats;
};

/// Run a dot product of `a` x `b` on a fresh system; returns all
/// partial sums (the last one is the dot product) and run statistics.
MacResult run_running_mac(const RingGeometry& g, std::span<const Word> a,
                          std::span<const Word> b,
                          LinkRate link = LinkRate::unlimited());

}  // namespace sring::kernels
