#include "kernels/conv2d_kernel.hpp"

#include "common/error.hpp"

namespace sring::kernels {

mapper::Dfg make_conv3x3_dfg(const dsp::Kernel3x3& k) {
  using mapper::Dfg;
  using mapper::DfgOp;
  using mapper::NodeId;

  Dfg g;
  const std::array<NodeId, 3> rows = {
      g.add_input("top"), g.add_input("mid"), g.add_input("bot")};

  // Horizontal tap i of row j: k[j][i] * z^-(2-i)(row_j).  The newest
  // stream sample is the rightmost image column of the window.
  std::vector<NodeId> terms;
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t i = 0; i < 3; ++i) {
      if (k[j][i] == 0) continue;  // dead taps cost nothing
      NodeId x = rows[j];
      if (i < 2) x = g.add_delay(x, 2 - static_cast<unsigned>(i));
      if (k[j][i] == 1) {
        // Unit taps need no multiplier; a delay cannot feed an adder
        // port count... it can: delays are edge annotations.
        terms.push_back(x);
      } else {
        terms.push_back(g.add_binary(DfgOp::kMul, x, g.add_const(k[j][i])));
      }
    }
  }
  check(!terms.empty(), "make_conv3x3_dfg: all-zero kernel");

  // Balanced adder tree (depth log2 of the term count; MAC fusion
  // folds one product into each add).
  std::vector<NodeId> level = terms;
  while (level.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t t = 0; t + 1 < level.size(); t += 2) {
      next.push_back(g.add_binary(DfgOp::kAdd, level[t], level[t + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  NodeId acc = level[0];
  if (terms.size() == 1) {
    acc = g.add_unary(DfgOp::kPass, acc);  // outputs need a Dnode
  }
  g.mark_output(acc, "conv");
  return g;
}

Conv2dResult run_conv2d_3x3(const RingGeometry& g, const Image& img,
                            const dsp::Kernel3x3& k) {
  const auto dfg = make_conv3x3_dfg(k);
  const auto mapped = mapper::map_dfg(dfg, g);

  const std::size_t w = img.width();
  Conv2dResult result;
  result.output = Image(w, img.height());
  result.dnodes_used = mapped.dnodes_used;

  // Stream g[m] = clamped column (m-1): the taps at stream index n see
  // columns (n-3, n-2, n-1), i.e. the window centered on column n-2,
  // with both borders clamped inside the feed itself; output column c
  // arrives at stream index c+2.
  const auto row_stream = [&](std::ptrdiff_t y) {
    std::vector<Word> s(w + 2);
    for (std::size_t m = 0; m < w + 2; ++m) {
      s[m] = img.at_clamped(static_cast<std::ptrdiff_t>(m) - 1, y);
    }
    return s;
  };

  for (std::size_t y = 0; y < img.height(); ++y) {
    const auto run = mapper::run_mapped(
        mapped, {row_stream(static_cast<std::ptrdiff_t>(y) - 1),
                 row_stream(static_cast<std::ptrdiff_t>(y)),
                 row_stream(static_cast<std::ptrdiff_t>(y) + 1)});
    result.total_cycles += run.stats.cycles;
    for (std::size_t x = 0; x < w; ++x) {
      result.output.at(x, y) = run.outputs[0][x + 2];
    }
  }
  result.cycles_per_pixel = static_cast<double>(result.total_cycles) /
                            static_cast<double>(w * img.height());
  return result;
}

}  // namespace sring::kernels
