#include "kernels/dwt_kernel.hpp"

#include "asm/program_builder.hpp"
#include "common/error.hpp"
#include "sim/system.hpp"

namespace sring::kernels {

namespace {

/// Latency (in cycles) from feeding pair i to the d_i push.
constexpr std::size_t kDetailLatency = 4;
/// Latency from feeding pair i to the s_i push.
constexpr std::size_t kSmoothLatency = 8;

DnodeInstr pass_out(DnodeSrc src) {
  DnodeInstr i;
  i.op = DnodeOp::kPass;
  i.src_a = src;
  i.out_en = true;
  return i;
}

}  // namespace

LoadableProgram make_dwt53_program(const RingGeometry& g) {
  check(g.layers >= 8 && g.lanes >= 2,
        "dwt53: needs 8 layers x 2 lanes (a Ring-16)");
  check(g.fb_depth >= 7, "dwt53: needs feedback depth >= 7");
  ProgramBuilder pb(g, "dwt53_lifting");
  PageBuilder page(g);

  // L0: even/odd split.  Pop order per cycle: lane0 (e) then lane1 (o).
  SwitchRoute host_route;
  host_route.in1 = PortRoute::host();
  page.route(0, 0, host_route);
  page.route(0, 1, host_route);
  page.instr(0, 0, pass_out(DnodeSrc::kIn1));
  page.instr(0, 1, pass_out(DnodeSrc::kIn1));

  // L1 lane0: e[i-1] + e[i]   (direct + depth-0 feedback tap of L0).
  {
    SwitchRoute r;
    r.in1 = PortRoute::prev(0);
    r.fifo1 = {1, 0, 0};
    page.route(1, 0, r);
    DnodeInstr add;
    add.op = DnodeOp::kAdd;
    add.src_a = DnodeSrc::kIn1;
    add.src_b = DnodeSrc::kFifo1;
    add.out_en = true;
    page.instr(1, 0, add);
  }
  // L1 lane1: o re-aligned one cycle (feedback tap of L0 lane1).
  {
    SwitchRoute r;
    r.fifo1 = {1, 1, 0};
    page.route(1, 1, r);
    page.instr(1, 1, pass_out(DnodeSrc::kFifo1));
  }

  // L2 lane0: halfsum = (e[i-1]+e[i]) >> 1 (arithmetic).
  {
    SwitchRoute r;
    r.in1 = PortRoute::prev(0);
    page.route(2, 0, r);
    DnodeInstr asr;
    asr.op = DnodeOp::kAsr;
    asr.src_a = DnodeSrc::kIn1;
    asr.src_b = DnodeSrc::kImm;
    asr.imm = 1;
    asr.out_en = true;
    page.instr(2, 0, asr);
  }
  // L2 lane1: carry o along.
  {
    SwitchRoute r;
    r.in1 = PortRoute::prev(1);
    page.route(2, 1, r);
    page.instr(2, 1, pass_out(DnodeSrc::kIn1));
  }

  // L3 lane0: d = o - halfsum; emits the detail stream.
  {
    SwitchRoute r;
    r.in1 = PortRoute::prev(0);  // halfsum
    r.in2 = PortRoute::prev(1);  // o
    page.route(3, 0, r);
    DnodeInstr sub;
    sub.op = DnodeOp::kSub;
    sub.src_a = DnodeSrc::kIn2;
    sub.src_b = DnodeSrc::kIn1;
    sub.out_en = true;
    sub.host_en = true;
    page.instr(3, 0, sub);
  }

  // L4 lane0: d[i-1] + d[i] (direct + depth-0 feedback tap of L3).
  {
    SwitchRoute r;
    r.in1 = PortRoute::prev(0);
    r.fifo1 = {4, 0, 0};
    page.route(4, 0, r);
    DnodeInstr add;
    add.op = DnodeOp::kAdd;
    add.src_a = DnodeSrc::kIn1;
    add.src_b = DnodeSrc::kFifo1;
    add.out_en = true;
    page.instr(4, 0, add);
  }

  // L5 lane0: + 2 (rounding).
  {
    SwitchRoute r;
    r.in1 = PortRoute::prev(0);
    page.route(5, 0, r);
    DnodeInstr add;
    add.op = DnodeOp::kAdd;
    add.src_a = DnodeSrc::kIn1;
    add.src_b = DnodeSrc::kImm;
    add.imm = 2;
    add.out_en = true;
    page.instr(5, 0, add);
  }

  // L6 lane0: >> 2 (update term).
  {
    SwitchRoute r;
    r.in1 = PortRoute::prev(0);
    page.route(6, 0, r);
    DnodeInstr asr;
    asr.op = DnodeOp::kAsr;
    asr.src_a = DnodeSrc::kIn1;
    asr.src_b = DnodeSrc::kImm;
    asr.imm = 2;
    asr.out_en = true;
    page.instr(6, 0, asr);
  }

  // L7 lane0: s = e + update.  e[i] comes from L0's history, delayed
  // six extra stages to re-align with the update term.
  {
    SwitchRoute r;
    r.in1 = PortRoute::prev(0);
    r.fifo1 = {1, 0, 6};
    page.route(7, 0, r);
    DnodeInstr add;
    add.op = DnodeOp::kAdd;
    add.src_a = DnodeSrc::kIn1;
    add.src_b = DnodeSrc::kFifo1;
    add.host_en = true;
    page.instr(7, 0, add);
  }

  pb.add_page(page);
  pb.page_switch(0);
  pb.halt();
  return pb.build();
}

std::vector<Word> make_dwt53_feed(std::span<const Word> x) {
  check(x.size() >= 2 && x.size() % 2 == 0,
        "dwt53: even-length input required");
  // Warm-up pair (e_{-1}, o_{-1}) = (0, x[0] >> 1): it forces the
  // pipeline's in-flight d_{-1} to exactly 0, which is the golden
  // model's zero-extension of the detail subband.  Then the signal,
  // then zero pairs to flush the tail.
  std::vector<Word> feed;
  feed.reserve(x.size() + 2 + 2 * kSmoothLatency);
  feed.push_back(0);
  feed.push_back(to_word(as_signed(x[0]) >> 1));
  feed.insert(feed.end(), x.begin(), x.end());
  feed.insert(feed.end(), 2 * kSmoothLatency, 0);
  return feed;
}

std::size_t dwt53_output_words(std::size_t pairs) {
  return 2 * (1 + pairs + kSmoothLatency);
}

dsp::Subbands dwt53_bands_from_raw(std::span<const Word> raw,
                                   std::size_t pairs) {
  check(raw.size() >= dwt53_output_words(pairs),
        "dwt53_bands_from_raw: truncated output stream");
  // Each executed cycle t pushes [d_{t-4}, s_{t-8}] in Dnode order;
  // the warm-up pair shifts every index by one.
  dsp::Subbands bands;
  bands.high.resize(pairs);
  bands.low.resize(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    bands.high[i] = raw[2 * (i + 1 + kDetailLatency)];
    bands.low[i] = raw[2 * (i + 1 + kSmoothLatency) + 1];
  }
  return bands;
}

DwtResult run_dwt53(const RingGeometry& g, std::span<const Word> x) {
  const std::size_t pairs = x.size() / 2;

  System sys({g});
  sys.load(make_dwt53_program(g));

  const std::vector<Word> feed = make_dwt53_feed(x);
  sys.host().send(feed);
  sys.run_until_outputs(dwt53_output_words(pairs), 64 + 8 * feed.size());

  const auto raw = sys.host().take_received();
  DwtResult result;
  result.bands = dwt53_bands_from_raw(raw, pairs);
  result.stats = sys.stats();
  result.cycles_per_sample =
      static_cast<double>(result.stats.cycles) /
      static_cast<double>(x.size());
  return result;
}

Dwt2DResult run_dwt53_2d(const RingGeometry& g, const Image& img) {
  check(img.width() % 2 == 0 && img.height() % 2 == 0,
        "run_dwt53_2d: even dimensions required");
  const std::size_t hw = img.width() / 2;
  const std::size_t hh = img.height() / 2;

  Dwt2DResult result;
  Image low_plane(hw, img.height());
  Image high_plane(hw, img.height());

  // Row pass.
  for (std::size_t y = 0; y < img.height(); ++y) {
    std::vector<Word> row(img.width());
    for (std::size_t x = 0; x < img.width(); ++x) row[x] = img.at(x, y);
    const auto r = run_dwt53(g, row);
    result.total_cycles += r.stats.cycles;
    for (std::size_t x = 0; x < hw; ++x) {
      low_plane.at(x, y) = r.bands.low[x];
      high_plane.at(x, y) = r.bands.high[x];
    }
  }

  // Column pass.
  result.bands = dsp::Subbands2D{Image(hw, hh), Image(hw, hh),
                                 Image(hw, hh), Image(hw, hh)};
  for (std::size_t x = 0; x < hw; ++x) {
    std::vector<Word> lcol(img.height());
    std::vector<Word> hcol(img.height());
    for (std::size_t y = 0; y < img.height(); ++y) {
      lcol[y] = low_plane.at(x, y);
      hcol[y] = high_plane.at(x, y);
    }
    const auto rl = run_dwt53(g, lcol);
    const auto rh = run_dwt53(g, hcol);
    result.total_cycles += rl.stats.cycles + rh.stats.cycles;
    for (std::size_t y = 0; y < hh; ++y) {
      result.bands.ll.at(x, y) = rl.bands.low[y];
      result.bands.lh.at(x, y) = rl.bands.high[y];
      result.bands.hl.at(x, y) = rh.bands.low[y];
      result.bands.hh.at(x, y) = rh.bands.high[y];
    }
  }
  result.cycles_per_sample =
      static_cast<double>(result.total_cycles) /
      static_cast<double>(img.width() * img.height());
  return result;
}

LoadableProgram make_idwt53_program(const RingGeometry& g) {
  check(g.layers >= 8 && g.lanes >= 2,
        "idwt53: needs 8 layers x 2 lanes (a Ring-16)");
  check(g.fb_depth >= 7, "idwt53: needs feedback depth >= 7");
  ProgramBuilder pb(g, "idwt53_lifting");
  PageBuilder page(g);

  // L0: s/d split.  Pop order per cycle: lane0 (s) then lane1 (d).
  SwitchRoute host_route;
  host_route.in1 = PortRoute::host();
  page.route(0, 0, host_route);
  page.route(0, 1, host_route);
  page.instr(0, 0, pass_out(DnodeSrc::kIn1));
  page.instr(0, 1, pass_out(DnodeSrc::kIn1));

  // L1 lane0: d[i-1] + d[i].  lane1: carry s.
  {
    SwitchRoute r;
    r.in1 = PortRoute::prev(1);
    r.fifo1 = {1, 1, 0};
    page.route(1, 0, r);
    DnodeInstr add;
    add.op = DnodeOp::kAdd;
    add.src_a = DnodeSrc::kIn1;
    add.src_b = DnodeSrc::kFifo1;
    add.out_en = true;
    page.instr(1, 0, add);

    SwitchRoute rs;
    rs.in1 = PortRoute::prev(0);
    page.route(1, 1, rs);
    page.instr(1, 1, pass_out(DnodeSrc::kIn1));
  }

  // L2 lane0: +2.  lane1: carry s.
  {
    SwitchRoute r;
    r.in1 = PortRoute::prev(0);
    page.route(2, 0, r);
    DnodeInstr add;
    add.op = DnodeOp::kAdd;
    add.src_a = DnodeSrc::kIn1;
    add.src_b = DnodeSrc::kImm;
    add.imm = 2;
    add.out_en = true;
    page.instr(2, 0, add);

    SwitchRoute rs;
    rs.in1 = PortRoute::prev(1);
    page.route(2, 1, rs);
    page.instr(2, 1, pass_out(DnodeSrc::kIn1));
  }

  // L3 lane0: >>2 (the update term).  lane1: carry s.
  {
    SwitchRoute r;
    r.in1 = PortRoute::prev(0);
    page.route(3, 0, r);
    DnodeInstr asr;
    asr.op = DnodeOp::kAsr;
    asr.src_a = DnodeSrc::kIn1;
    asr.src_b = DnodeSrc::kImm;
    asr.imm = 2;
    asr.out_en = true;
    page.instr(3, 0, asr);

    SwitchRoute rs;
    rs.in1 = PortRoute::prev(1);
    page.route(3, 1, rs);
    page.instr(3, 1, pass_out(DnodeSrc::kIn1));
  }

  // L4 lane0: e = s - update; emits the even samples.
  {
    SwitchRoute r;
    r.in1 = PortRoute::prev(0);  // update term
    r.in2 = PortRoute::prev(1);  // s
    page.route(4, 0, r);
    DnodeInstr sub;
    sub.op = DnodeOp::kSub;
    sub.src_a = DnodeSrc::kIn2;
    sub.src_b = DnodeSrc::kIn1;
    sub.out_en = true;
    sub.host_en = true;
    page.instr(4, 0, sub);
  }

  // L5 lane0: e[i] + e[i+1] (consecutive evens via the feedback tap).
  {
    SwitchRoute r;
    r.in1 = PortRoute::prev(0);
    r.fifo1 = {5, 0, 0};
    page.route(5, 0, r);
    DnodeInstr add;
    add.op = DnodeOp::kAdd;
    add.src_a = DnodeSrc::kIn1;
    add.src_b = DnodeSrc::kFifo1;
    add.out_en = true;
    page.instr(5, 0, add);
  }

  // L6 lane0: >>1 (the predict term).
  {
    SwitchRoute r;
    r.in1 = PortRoute::prev(0);
    page.route(6, 0, r);
    DnodeInstr asr;
    asr.op = DnodeOp::kAsr;
    asr.src_a = DnodeSrc::kIn1;
    asr.src_b = DnodeSrc::kImm;
    asr.imm = 1;
    asr.out_en = true;
    page.instr(6, 0, asr);
  }

  // L7 lane0: o = d + predict; emits the odd samples.  d[i] arrives
  // from L0's history six stages deep.
  {
    SwitchRoute r;
    r.in1 = PortRoute::prev(0);
    r.fifo1 = {1, 1, 6};
    page.route(7, 0, r);
    DnodeInstr add;
    add.op = DnodeOp::kAdd;
    add.src_a = DnodeSrc::kIn1;
    add.src_b = DnodeSrc::kFifo1;
    add.host_en = true;
    page.instr(7, 0, add);
  }

  pb.add_page(page);
  pb.page_switch(0);
  pb.halt();
  return pb.build();
}

IdwtResult run_idwt53(const RingGeometry& g, const dsp::Subbands& bands) {
  check(bands.low.size() == bands.high.size() && !bands.low.empty(),
        "run_idwt53: equal non-empty subbands required");
  const std::size_t half = bands.low.size();

  System sys({g});
  sys.load(make_idwt53_program(g));

  // Latencies: even sample i emitted during cycle i+4, odd during
  // cycle i+8 (same structure as the forward pipeline).
  constexpr std::size_t kEvenLatency = 4;
  constexpr std::size_t kOddLatency = 8;

  std::vector<Word> feed;
  feed.reserve(2 * (half + 1 + kOddLatency));
  for (std::size_t i = 0; i < half; ++i) {
    feed.push_back(bands.low[i]);
    feed.push_back(bands.high[i]);
  }
  // Boundary pad: the golden zero-extension inverse treats e[half] as
  // exactly 0; choosing s_pad = (d[half-1] + 2) >> 2 (with d_pad = 0)
  // forces the pipeline's e[half] to 0 as well.
  feed.push_back(to_word((as_signed(bands.high[half - 1]) + 2) >> 2));
  feed.push_back(0);
  feed.insert(feed.end(), 2 * kOddLatency, 0);
  sys.host().send(feed);

  const std::size_t total_cycles = half + 1 + kOddLatency;
  sys.run_until_outputs(2 * total_cycles, 64 + 8 * feed.size());

  const auto raw = sys.host().take_received();
  IdwtResult result;
  result.signal.resize(2 * half);
  for (std::size_t i = 0; i < half; ++i) {
    result.signal[2 * i] = raw[2 * (i + kEvenLatency)];
    result.signal[2 * i + 1] = raw[2 * (i + kOddLatency) + 1];
  }
  result.stats = sys.stats();
  result.cycles_per_sample = static_cast<double>(result.stats.cycles) /
                             static_cast<double>(2 * half);
  return result;
}

DwtPyramidResult run_dwt53_pyramid(const RingGeometry& g, const Image& img,
                                   int levels) {
  check(levels >= 1, "run_dwt53_pyramid: levels must be >= 1");
  DwtPyramidResult result;
  Image current = img;
  for (int l = 0; l < levels; ++l) {
    auto level = run_dwt53_2d(g, current);
    result.total_cycles += level.total_cycles;
    current = level.bands.ll;
    result.levels.push_back(std::move(level.bands));
  }
  return result;
}

}  // namespace sring::kernels
