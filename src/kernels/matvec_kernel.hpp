// Block matrix-vector kernel: y = M x on 8-sample blocks, M an 8x8
// constant matrix — with the Q7 DCT matrix this is the 8-point DCT
// engine the paper's introduction motivates (JPEG/MPEG core).
//
// Mapping: eight Dnodes (one per output row) listen to the shared bus;
// the controller broadcasts one block element per cycle (INPOP + BUSW)
// and pulses a per-element configuration page so every Dnode
// multiply-accumulates its own row coefficient — a "sequential
// synthesized datapath" in the paper's terms (hardware multiplexing of
// one MAC per row across the 8 columns).  Element 0 clears the
// accumulators; element 7 emits all eight dot products.
//
// Controller-timed: the input FIFO must be pre-filled.
#pragma once

#include <span>
#include <vector>

#include "dsp/matvec.hpp"
#include "sim/program.hpp"
#include "sim/stats.hpp"

namespace sring::kernels {

/// Build the engine for `blocks` 8-sample blocks (needs >= 8 Dnodes).
LoadableProgram make_matvec8_program(const RingGeometry& g,
                                     const dsp::Matrix8& m,
                                     std::size_t blocks);

struct MatvecResult {
  std::vector<Word> outputs;  ///< 8 words per input block
  SystemStats stats;
  double cycles_per_block = 0.0;
};

/// Run y = M x over consecutive blocks of `x` (multiple of 8 samples).
MatvecResult run_block_matvec8(const RingGeometry& g, const dsp::Matrix8& m,
                               std::span<const Word> x);

}  // namespace sring::kernels
