#include "kernels/iir_kernel.hpp"

#include "asm/program_builder.hpp"
#include "common/error.hpp"
#include "kernels/fir_kernel.hpp"
#include "sim/system.hpp"

namespace sring::kernels {

LoadableProgram make_iir1_program(const RingGeometry& g, Word a) {
  check(g.layers >= 2,
        "iir1: needs >= 2 layers (the feedback image of layer 0 lives "
        "in switch 1's pipeline)");
  ProgramBuilder pb(g, "iir1");

  PageBuilder page(g);
  SwitchRoute route;
  route.in1 = PortRoute::host();
  // fifo1 reads this Dnode's own output, one cycle delayed, from the
  // pipeline of the downstream switch (pipe 1 latches layer 0).
  route.fifo1 = {1, 0, 0};
  page.route(0, 0, route);
  page.mode(0, 0, DnodeMode::kLocal);
  pb.add_page(page);

  // Local program: MAC on even steps, NOP on odd steps.  The nop gap
  // lets y[n] travel out-register -> feedback pipeline before the next
  // recurrence step reads it.
  DnodeInstr mac;
  mac.op = DnodeOp::kMac;
  mac.src_a = DnodeSrc::kFifo1;  // y[n-1]
  mac.src_b = DnodeSrc::kImm;    // a
  mac.src_c = DnodeSrc::kIn1;    // x[n]
  mac.imm = a;
  mac.out_en = true;
  mac.host_en = true;
  pb.local_program(0, {mac, DnodeInstr{}});

  pb.page_switch(0);
  pb.halt();
  return pb.build();
}

LoadableProgram make_iir2_program(const RingGeometry& g, Word b0, Word a1,
                                  Word a2) {
  check(g.layers >= 2, "iir2: needs >= 2 layers");
  ProgramBuilder pb(g, "iir2");
  const auto y_pipe =
      static_cast<std::uint8_t>((1 + 1) % g.layers);  // image of layer 1

  PageBuilder page(g);
  // D1 at (0,0): folds b0*x[n] then a2*y[n-2].
  SwitchRoute r1;
  r1.fifo1 = {y_pipe, 0, 0};
  page.route(0, 0, r1);
  page.mode(0, 0, DnodeMode::kLocal);
  // D2 at (1,0): adds a1*y[n-1], emits y[n].
  SwitchRoute r2;
  r2.in1 = PortRoute::prev(0);
  r2.fifo1 = {y_pipe, 0, 0};
  page.route(1, 0, r2);
  page.mode(1, 0, DnodeMode::kLocal);
  pb.add_page(page);

  DnodeInstr d1_even;  // r0 = b0 * x[n]
  d1_even.op = DnodeOp::kMac;
  d1_even.src_a = DnodeSrc::kHost;
  d1_even.src_b = DnodeSrc::kImm;
  d1_even.src_c = DnodeSrc::kZero;
  d1_even.imm = b0;
  d1_even.dst = DnodeDst::kR0;
  DnodeInstr d1_odd;  // out = a2 * y[n-2] + r0
  d1_odd.op = DnodeOp::kMac;
  d1_odd.src_a = DnodeSrc::kFifo1;
  d1_odd.src_b = DnodeSrc::kImm;
  d1_odd.src_c = DnodeSrc::kR0;
  d1_odd.imm = a2;
  d1_odd.out_en = true;
  pb.local_program(0, {d1_even, d1_odd});

  DnodeInstr d2_even;  // y[n] = a1 * y[n-1] + in1, emit
  d2_even.op = DnodeOp::kMac;
  d2_even.src_a = DnodeSrc::kFifo1;
  d2_even.src_b = DnodeSrc::kImm;
  d2_even.src_c = DnodeSrc::kIn1;
  d2_even.imm = a1;
  d2_even.out_en = true;
  d2_even.host_en = true;
  pb.local_program(1 * g.lanes, {d2_even, DnodeInstr{}});

  pb.page_switch(0);
  pb.halt();
  return pb.build();
}

IirResult run_iir2(const RingGeometry& g, std::span<const Word> x, Word b0,
                   Word a1, Word a2) {
  System sys({g});
  sys.load(make_iir2_program(g, b0, a1, a2));
  // One padding word lets the final even cycle (which pops the next x
  // before y[N-1] is emitted) proceed.
  std::vector<Word> feed(x.begin(), x.end());
  feed.push_back(0);
  sys.host().send(feed);
  // One push per even cycle; the first is the pre-warm-up garbage.
  sys.run_until_outputs(x.size() + 1, 64 + 32 * x.size());

  IirResult result;
  const auto raw = sys.host().take_received();
  result.outputs.assign(raw.begin() + 1,
                        raw.begin() + 1 + static_cast<std::ptrdiff_t>(
                                              x.size()));
  result.stats = sys.stats();
  result.cycles_per_sample =
      x.empty() ? 0.0
                : static_cast<double>(result.stats.cycles) /
                      static_cast<double>(x.size());
  return result;
}

IirResult run_biquad_cascade(const RingGeometry& g, std::span<const Word> x,
                             const BiquadKernelCoeffs& c) {
  const std::vector<Word> fir_coeffs = {c.b0, c.b1, c.b2};
  const FirResult fir = run_spatial_fir(g, x, fir_coeffs);
  IirResult result = run_iir2(g, fir.outputs, 1, c.a1, c.a2);
  result.stats.cycles += fir.stats.cycles;
  result.stats.dnode_ops += fir.stats.dnode_ops;
  result.stats.arith_ops += fir.stats.arith_ops;
  result.stats.host_words_in += fir.stats.host_words_in;
  result.stats.host_words_out += fir.stats.host_words_out;
  result.cycles_per_sample =
      x.empty() ? 0.0
                : static_cast<double>(result.stats.cycles) /
                      static_cast<double>(x.size());
  return result;
}

IirResult run_iir1(const RingGeometry& g, std::span<const Word> x, Word a,
                   LinkRate link) {
  System sys({g, link});
  sys.load(make_iir1_program(g, a));
  sys.host().send(std::vector<Word>(x.begin(), x.end()));
  sys.run_until_outputs(x.size(), 64 + 32 * x.size());

  IirResult result;
  result.outputs = sys.host().take_received();
  result.outputs.resize(x.size());
  result.stats = sys.stats();
  result.cycles_per_sample =
      x.empty() ? 0.0
                : static_cast<double>(result.stats.cycles) /
                      static_cast<double>(x.size());
  return result;
}

}  // namespace sring::kernels
