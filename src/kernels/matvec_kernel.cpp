#include "kernels/matvec_kernel.hpp"

#include "asm/program_builder.hpp"
#include "common/error.hpp"
#include "sim/system.hpp"

namespace sring::kernels {

LoadableProgram make_matvec8_program(const RingGeometry& g,
                                     const dsp::Matrix8& m,
                                     std::size_t blocks) {
  check(g.dnode_count() >= dsp::kMatvecN,
        "matvec8: needs at least 8 Dnodes");
  check(blocks >= 1, "matvec8: at least one block");
  ProgramBuilder pb(g, "block_matvec8");

  // Page 0: idle.
  const std::size_t page_idle = pb.add_page(PageBuilder(g));

  // Pages 1..8: element j — every unit MACs its row coefficient with
  // the bus value.
  for (std::size_t j = 0; j < dsp::kMatvecN; ++j) {
    PageBuilder page(g);
    for (std::size_t k = 0; k < dsp::kMatvecN; ++k) {
      DnodeInstr mac;
      mac.op = DnodeOp::kMac;
      mac.src_a = DnodeSrc::kBus;
      mac.src_b = DnodeSrc::kImm;
      mac.src_c = j == 0 ? DnodeSrc::kZero : DnodeSrc::kR0;
      mac.imm = m[k][j];
      mac.dst = DnodeDst::kR0;
      mac.host_en = j == dsp::kMatvecN - 1;
      page.instr(k / g.lanes, k % g.lanes, mac);
    }
    pb.add_page(page);
  }

  // Controller: per block, 4 cycles per element (pop, broadcast,
  // pulse the element page, back to idle).
  pb.set_reg(1, blocks);
  pb.ldi(2, 0);
  pb.label("block");
  for (std::size_t j = 0; j < dsp::kMatvecN; ++j) {
    pb.inpop(3);
    pb.busw(3);
    pb.page_switch(1 + j);
    pb.page_switch(page_idle);
  }
  pb.addi(1, 1, -1);
  pb.branch(RiscOp::kBne, 1, 2, "block");
  pb.halt();
  return pb.build();
}

MatvecResult run_block_matvec8(const RingGeometry& g, const dsp::Matrix8& m,
                               std::span<const Word> x) {
  check(x.size() % dsp::kMatvecN == 0 && !x.empty(),
        "run_block_matvec8: length must be a positive multiple of 8");
  const std::size_t blocks = x.size() / dsp::kMatvecN;

  System sys({g});
  sys.load(make_matvec8_program(g, m, blocks));
  sys.host().send(std::vector<Word>(x.begin(), x.end()));
  sys.run_until_halt(64 + 40 * x.size(), /*drain_cycles=*/2);

  MatvecResult result;
  result.outputs = sys.host().take_received();
  check(result.outputs.size() == blocks * dsp::kMatvecN,
        "run_block_matvec8: unexpected output count");
  result.stats = sys.stats();
  result.cycles_per_block = static_cast<double>(result.stats.cycles) /
                            static_cast<double>(blocks);
  return result;
}

}  // namespace sring::kernels
