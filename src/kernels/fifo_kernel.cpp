#include "kernels/fifo_kernel.hpp"

#include "asm/program_builder.hpp"
#include "common/error.hpp"
#include "sim/system.hpp"

namespace sring::kernels {

LoadableProgram make_fifo_program(const RingGeometry& g,
                                  std::size_t depth) {
  check(g.layers >= 2, "fifo: needs >= 2 layers");
  check(depth < g.fb_depth, "fifo: depth exceeds the pipeline depth");
  ProgramBuilder pb(g, "fifo_emulation");

  PageBuilder page(g);
  // Producer at (0,0): host -> output register.
  SwitchRoute in_route;
  in_route.in1 = PortRoute::host();
  page.route(0, 0, in_route);
  DnodeInstr produce;
  produce.op = DnodeOp::kPass;
  produce.src_a = DnodeSrc::kIn1;
  produce.out_en = true;
  page.instr(0, 0, produce);
  page.mode(0, 0, DnodeMode::kLocal);

  // Consumer at (1,0): feedback read at the requested depth -> host.
  SwitchRoute out_route;
  out_route.fifo1 = {1, 0, static_cast<std::uint8_t>(depth)};
  page.route(1, 0, out_route);
  DnodeInstr consume;
  consume.op = DnodeOp::kPass;
  consume.src_a = DnodeSrc::kFifo1;
  consume.host_en = true;
  page.instr(1, 0, consume);
  pb.add_page(page);

  // Producer local program (single PASS) — pure stand-alone operation.
  pb.local_program(0, {produce});

  pb.page_switch(0);
  pb.halt();
  return pb.build();
}

LoadableProgram make_lifo_program(const RingGeometry& g, std::size_t block,
                                  std::size_t blocks) {
  check(g.layers >= 2, "lifo: needs >= 2 layers");
  check(block >= 2 && block <= 8, "lifo: block size 2..8");
  check(2 * block - 3 < g.fb_depth,
        "lifo: feedback pipeline too shallow for this block size");
  check(blocks >= 1, "lifo: at least one block");
  ProgramBuilder pb(g, "lifo_emulation");

  const std::size_t page_idle = pb.add_page(PageBuilder(g));

  // WRITE: the writer streams the block into its output history.
  PageBuilder write(g);
  {
    SwitchRoute r;
    r.in1 = PortRoute::host();
    write.route(0, 0, r);
    DnodeInstr in;
    in.op = DnodeOp::kPass;
    in.src_a = DnodeSrc::kIn1;
    in.out_en = true;
    write.instr(0, 0, in);
  }
  const std::size_t page_write = pb.add_page(write);

  // READ_k: the reader emits sample block-1-k; k = 0 sees it directly
  // on the upstream output register, k >= 1 at feedback depth 2k-1.
  std::vector<std::size_t> read_pages;
  for (std::size_t k = 0; k < block; ++k) {
    PageBuilder read(g);
    SwitchRoute r;
    DnodeInstr out;
    out.op = DnodeOp::kPass;
    out.host_en = true;
    if (k == 0) {
      r.in1 = PortRoute::prev(0);
      out.src_a = DnodeSrc::kIn1;
    } else {
      r.fifo1 = {1, 0, static_cast<std::uint8_t>(2 * k - 1)};
      out.src_a = DnodeSrc::kFifo1;
    }
    read.route(1, 0, r);
    read.instr(1, 0, out);
    read_pages.push_back(pb.add_page(read));
  }

  pb.set_reg(1, blocks);
  pb.ldi(2, 0);
  pb.label("block");
  pb.page_switch(page_write);
  if (block > 1) pb.wait(static_cast<std::uint32_t>(block - 1));
  for (const std::size_t p : read_pages) pb.page_switch(p);
  pb.page_switch(page_idle);
  pb.addi(1, 1, -1);
  pb.branch(RiscOp::kBne, 1, 2, "block");
  pb.halt();
  return pb.build();
}

FifoResult run_lifo(const RingGeometry& g, std::span<const Word> x,
                    std::size_t block) {
  check(!x.empty() && x.size() % block == 0,
        "run_lifo: length must be a positive multiple of the block size");
  const std::size_t blocks = x.size() / block;
  System sys({g});
  sys.load(make_lifo_program(g, block, blocks));
  sys.host().send(std::vector<Word>(x.begin(), x.end()));
  sys.run_until_halt(64 + 8 * block * blocks, /*drain_cycles=*/2);

  FifoResult result;
  result.outputs = sys.host().take_received();
  check(result.outputs.size() == x.size(),
        "run_lifo: unexpected output count");
  result.stats = sys.stats();
  return result;
}

FifoResult run_fifo(const RingGeometry& g, std::span<const Word> x,
                    std::size_t depth) {
  System sys({g});
  sys.load(make_fifo_program(g, depth));
  // Pad so the tail of x drains through the emulated FIFO.
  std::vector<Word> feed(x.begin(), x.end());
  feed.insert(feed.end(), depth + 2, 0);
  sys.host().send(feed);
  sys.run_until_outputs(x.size() + depth + 2, 64 + 8 * feed.size());

  FifoResult result;
  result.outputs = sys.host().take_received();
  result.outputs.resize(x.size() + depth + 2);
  result.stats = sys.stats();
  return result;
}

}  // namespace sring::kernels
