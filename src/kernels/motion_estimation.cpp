#include "kernels/motion_estimation.hpp"

#include "asm/program_builder.hpp"
#include "common/error.hpp"
#include "sim/system.hpp"

namespace sring::kernels {

LoadableProgram make_sad_engine_program(const RingGeometry& g,
                                        std::size_t block_pixels,
                                        std::size_t batches) {
  check(g.lanes >= 2, "sad engine: needs 2 lanes per unit");
  check(block_pixels >= 1 && batches >= 1,
        "sad engine: empty workload");

  ProgramBuilder pb(g, "sad_engine");

  // Page WORK: lane 0 absdiff on two host words, lane 1 accumulates
  // the upstream lane-0 result (one pixel per unit per cycle).
  PageBuilder work(g);
  for (std::size_t layer = 0; layer < g.layers; ++layer) {
    SwitchRoute r0;
    r0.in1 = PortRoute::host();
    r0.in2 = PortRoute::host();
    work.route(layer, 0, r0);
    DnodeInstr ad;
    ad.op = DnodeOp::kAbsdiff;
    ad.src_a = DnodeSrc::kIn1;
    ad.src_b = DnodeSrc::kIn2;
    ad.out_en = true;
    work.instr(layer, 0, ad);

    // lane 1 reads its own layer's lane-0 output through the
    // downstream switch's pipeline (depth 0 = one cycle behind).
    SwitchRoute r1;
    r1.fifo1 = {static_cast<std::uint8_t>((layer + 1) % g.layers), 0, 0};
    work.route(layer, 1, r1);
    DnodeInstr acc;
    acc.op = DnodeOp::kAdd;
    acc.src_a = DnodeSrc::kFifo1;
    acc.src_b = DnodeSrc::kR0;
    acc.dst = DnodeDst::kR0;
    work.instr(layer, 1, acc);
  }
  const std::size_t page_work = pb.add_page(work);

  // Page DRAIN (one cycle): lane 0 idles (its output register holds
  // the last absdiff), lane 1 folds in the second-to-last absdiff that
  // is still inside the feedback pipeline.
  PageBuilder drain(g);
  for (std::size_t layer = 0; layer < g.layers; ++layer) {
    SwitchRoute r1;
    r1.fifo1 = {static_cast<std::uint8_t>((layer + 1) % g.layers), 0, 0};
    drain.route(layer, 1, r1);
    DnodeInstr acc;
    acc.op = DnodeOp::kAdd;
    acc.src_a = DnodeSrc::kFifo1;
    acc.src_b = DnodeSrc::kR0;
    acc.dst = DnodeDst::kR0;
    drain.instr(layer, 1, acc);
  }
  const std::size_t page_drain = pb.add_page(drain);

  // Page EMIT: lane 1 pushes acc + in-flight absdiff (the lane-0
  // output registered at the last WORK edge) to the host.
  PageBuilder emit(g);
  for (std::size_t layer = 0; layer < g.layers; ++layer) {
    SwitchRoute r1;
    r1.fifo1 = {static_cast<std::uint8_t>((layer + 1) % g.layers), 0, 0};
    emit.route(layer, 1, r1);
    DnodeInstr e;
    e.op = DnodeOp::kAdd;
    e.src_a = DnodeSrc::kFifo1;
    e.src_b = DnodeSrc::kR0;
    e.host_en = true;
    emit.instr(layer, 1, e);
  }
  const std::size_t page_emit = pb.add_page(emit);

  // Page RESET: clear accumulators and lane-0 output registers.
  PageBuilder reset(g);
  for (std::size_t layer = 0; layer < g.layers; ++layer) {
    DnodeInstr z0;
    z0.op = DnodeOp::kPass;
    z0.src_a = DnodeSrc::kZero;
    z0.out_en = true;
    reset.instr(layer, 0, z0);
    DnodeInstr z1;
    z1.op = DnodeOp::kPass;
    z1.src_a = DnodeSrc::kZero;
    z1.dst = DnodeDst::kR0;
    reset.instr(layer, 1, z1);
  }
  const std::size_t page_reset = pb.add_page(reset);

  // Controller: per batch, WORK for `block_pixels` cycles, EMIT,
  // RESET; the two loop-upkeep cycles run under the RESET page (no
  // host pops, so stream alignment is preserved).
  pb.set_reg(1, batches);
  pb.ldi(2, 0);
  pb.label("batch");
  pb.page_switch(page_work);
  if (block_pixels > 1) {
    pb.wait(static_cast<std::uint32_t>(block_pixels - 1));
  }
  pb.page_switch(page_drain);
  pb.page_switch(page_emit);
  pb.page_switch(page_reset);
  pb.addi(1, 1, -1);
  pb.branch(RiscOp::kBne, 1, 2, "batch");
  pb.halt();
  return pb.build();
}

std::vector<std::pair<int, int>> sad_displacements(int range) {
  std::vector<std::pair<int, int>> disp;
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      disp.emplace_back(dx, dy);
    }
  }
  return disp;
}

/// Feed order within a WORK cycle: for each unit (layer) ascending,
/// its (ref, cand) pixel pair — matching the ring's documented host
/// pop order (layer asc, lane asc, in1 before in2).
std::vector<Word> make_sad_feed(const Image& ref, std::size_t rx,
                                std::size_t ry, const Image& cand,
                                const std::vector<std::pair<int, int>>& disp,
                                std::size_t units, std::size_t n) {
  std::vector<Word> feed;
  const std::size_t batches = (disp.size() + units - 1) / units;
  feed.reserve(batches * n * n * units * 2);
  for (std::size_t b = 0; b < batches; ++b) {
    for (std::size_t i = 0; i < n * n; ++i) {
      const std::size_t px = i % n;
      const std::size_t py = i / n;
      for (std::size_t u = 0; u < units; ++u) {
        const std::size_t c = b * units + u;
        if (c >= disp.size()) {
          feed.push_back(0);
          feed.push_back(0);
          continue;
        }
        const auto [dx, dy] = disp[c];
        feed.push_back(ref.at_clamped(
            static_cast<std::ptrdiff_t>(rx + px),
            static_cast<std::ptrdiff_t>(ry + py)));
        feed.push_back(cand.at_clamped(
            static_cast<std::ptrdiff_t>(rx + px) + dx,
            static_cast<std::ptrdiff_t>(ry + py) + dy));
      }
    }
  }
  return feed;
}

MotionEstimationResult run_motion_estimation(const RingGeometry& g,
                                             const Image& ref,
                                             std::size_t rx, std::size_t ry,
                                             const Image& cand, int range) {
  const std::size_t n = dsp::kBlockSize;
  const std::size_t units = g.layers;

  const auto disp = sad_displacements(range);
  const std::size_t batches = (disp.size() + units - 1) / units;

  System sys({g});
  sys.load(make_sad_engine_program(g, n * n, batches));
  sys.host().send(make_sad_feed(ref, rx, ry, cand, disp, units, n));
  sys.run_until_halt(batches * (n * n + 16) + 1000, /*drain_cycles=*/2);

  MotionEstimationResult result;
  const auto raw = sys.host().take_received();
  check(raw.size() >= batches * units,
        "motion estimation: missing SAD outputs");
  result.sads.reserve(disp.size());
  for (std::size_t c = 0; c < disp.size(); ++c) {
    result.sads.push_back(raw[c]);
  }
  bool first = true;
  for (std::size_t c = 0; c < disp.size(); ++c) {
    if (first || result.sads[c] < result.best.sad) {
      result.best = {disp[c].first, disp[c].second, result.sads[c]};
      first = false;
    }
  }
  result.stats = sys.stats();
  result.cycles = result.stats.cycles;
  result.report = RunReport::from_system("motion_estimation", sys);
  result.report.extra("candidates", std::uint64_t{disp.size()})
      .extra("batches", std::uint64_t{batches})
      .extra("best_sad", std::uint64_t{result.best.sad});
  return result;
}

}  // namespace sring::kernels
