// CORDIC sine/cosine macro-operator on the ring — the paper's §6
// "trigonometric op." mapped onto three cooperating Dnodes:
//
//   X (layer 0), Y (layer 1): hold the rotating vector; each reads the
//   other's output register through the feedback pipelines.
//   Z (layer 2): holds the residual angle and broadcasts the rotation
//   direction (+1/-1) over the shared bus each iteration.
//
// The configuration controller sequences one page chain per iteration
// (shift, sign, direction broadcast, coupled update) — per-cycle
// reconfiguration in the paper's "hardware multiplexing" sense; the
// angle stream must be pre-filled (controller-timed schedule).
//
// Q12 fixed point; bit-exact against dsp::cordic_rotate.
#pragma once

#include <span>
#include <vector>

#include "dsp/cordic.hpp"
#include "sim/program.hpp"
#include "sim/stats.hpp"

namespace sring::kernels {

/// Build the engine (needs >= 3 layers) for `samples` angles.
LoadableProgram make_cordic_program(const RingGeometry& g,
                                    std::size_t samples,
                                    unsigned iterations =
                                        dsp::kCordicIterations);

struct CordicKernelResult {
  std::vector<dsp::CordicResult> outputs;
  SystemStats stats;
  double cycles_per_sample = 0.0;
};

/// Rotate every angle of the stream; returns (cos, sin) pairs in Q12.
CordicKernelResult run_cordic(const RingGeometry& g,
                              std::span<const Word> thetas_q12,
                              unsigned iterations =
                                  dsp::kCordicIterations);

}  // namespace sring::kernels
