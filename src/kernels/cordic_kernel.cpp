#include "kernels/cordic_kernel.hpp"

#include "asm/program_builder.hpp"
#include "common/error.hpp"
#include "sim/system.hpp"

namespace sring::kernels {

namespace {

/// Static routes shared by every compute page: X and Y read each
/// other's output registers through the downstream switches' pipes.
void apply_routes(PageBuilder& page, const RingGeometry& g) {
  SwitchRoute xr;  // X reads Y.out (layer 1's image lives in pipe 2)
  xr.fifo1 = {static_cast<std::uint8_t>(2 % g.layers), 0, 0};
  page.route(0, 0, xr);
  SwitchRoute yr;  // Y reads X.out (layer 0's image lives in pipe 1)
  yr.fifo1 = {1, 0, 0};
  page.route(1, 0, yr);
}

}  // namespace

LoadableProgram make_cordic_program(const RingGeometry& g,
                                    std::size_t samples,
                                    unsigned iterations) {
  check(g.layers >= 3, "cordic: needs >= 3 layers (X, Y, Z units)");
  check(iterations >= 1 && iterations <= dsp::kCordicIterations,
        "cordic: 1..12 iterations supported");
  check(samples >= 1, "cordic: at least one sample");
  ProgramBuilder pb(g, "cordic_rotate");
  const auto atan = dsp::cordic_atan_table();

  // Page 0: idle (also the inter-page settle step).
  PageBuilder idle(g);
  apply_routes(idle, g);
  const std::size_t page_idle = pb.add_page(idle);

  // Page LOAD: x0 = K_inv, y0 = 0, z0 = theta (pops the host FIFO).
  PageBuilder load(g);
  apply_routes(load, g);
  {
    DnodeInstr xi;
    xi.op = DnodeOp::kPass;
    xi.src_a = DnodeSrc::kImm;
    xi.imm = dsp::cordic_k_inv();
    xi.dst = DnodeDst::kR0;
    xi.out_en = true;
    load.instr(0, 0, xi);
    DnodeInstr yi;
    yi.op = DnodeOp::kPass;
    yi.src_a = DnodeSrc::kZero;
    yi.dst = DnodeDst::kR0;
    yi.out_en = true;
    load.instr(1, 0, yi);
    DnodeInstr zi;
    zi.op = DnodeOp::kPass;
    zi.src_a = DnodeSrc::kHost;
    zi.dst = DnodeDst::kR0;
    load.instr(2, 0, zi);
  }
  const std::size_t page_load = pb.add_page(load);

  // Page EMIT: x (cos) then y (sin) to the host.
  PageBuilder emit(g);
  apply_routes(emit, g);
  {
    DnodeInstr xe;
    xe.op = DnodeOp::kPass;
    xe.src_a = DnodeSrc::kR0;
    xe.host_en = true;
    emit.instr(0, 0, xe);
    DnodeInstr ye;
    ye.op = DnodeOp::kPass;
    ye.src_a = DnodeSrc::kR0;
    ye.host_en = true;
    emit.instr(1, 0, ye);
  }
  const std::size_t page_emit = pb.add_page(emit);

  // Per-iteration page chain: A shift+sign, B double, C direction on
  // the bus, D coupled update (bus visible one cycle after C).
  std::vector<std::size_t> chain;
  for (unsigned i = 0; i < iterations; ++i) {
    PageBuilder a(g);
    apply_routes(a, g);
    {
      DnodeInstr xs;  // r1 = y >> i
      xs.op = DnodeOp::kAsr;
      xs.src_a = DnodeSrc::kFifo1;
      xs.src_b = DnodeSrc::kImm;
      xs.imm = to_word(static_cast<std::int64_t>(i));
      xs.dst = DnodeDst::kR1;
      a.instr(0, 0, xs);
      DnodeInstr ys = xs;  // r1 = x >> i
      a.instr(1, 0, ys);
      DnodeInstr zt;  // r1 = (z < 0)
      zt.op = DnodeOp::kCmplt;
      zt.src_a = DnodeSrc::kR0;
      zt.src_b = DnodeSrc::kImm;
      zt.imm = 0;
      zt.dst = DnodeDst::kR1;
      a.instr(2, 0, zt);
    }
    chain.push_back(pb.add_page(a));

    PageBuilder b(g);
    apply_routes(b, g);
    {
      DnodeInstr zd;  // r2 = r1 << 1
      zd.op = DnodeOp::kShl;
      zd.src_a = DnodeSrc::kR1;
      zd.src_b = DnodeSrc::kImm;
      zd.imm = 1;
      zd.dst = DnodeDst::kR2;
      b.instr(2, 0, zd);
    }
    chain.push_back(pb.add_page(b));

    PageBuilder c(g);
    apply_routes(c, g);
    {
      DnodeInstr zb;  // bus <- 1 - r2  (the +1/-1 direction)
      zb.op = DnodeOp::kRsub;
      zb.src_a = DnodeSrc::kR2;
      zb.src_b = DnodeSrc::kImm;
      zb.imm = 1;
      zb.bus_en = true;
      c.instr(2, 0, zb);
    }
    chain.push_back(pb.add_page(c));

    PageBuilder d(g);
    apply_routes(d, g);
    {
      DnodeInstr xu;  // x -= d * (y >> i)
      xu.op = DnodeOp::kMsu;
      xu.src_a = DnodeSrc::kBus;
      xu.src_b = DnodeSrc::kR1;
      xu.src_c = DnodeSrc::kR0;
      xu.dst = DnodeDst::kR0;
      xu.out_en = true;
      d.instr(0, 0, xu);
      DnodeInstr yu;  // y += d * (x >> i)
      yu.op = DnodeOp::kMac;
      yu.src_a = DnodeSrc::kBus;
      yu.src_b = DnodeSrc::kR1;
      yu.src_c = DnodeSrc::kR0;
      yu.dst = DnodeDst::kR0;
      yu.out_en = true;
      d.instr(1, 0, yu);
      DnodeInstr zu;  // z -= d * atan_i
      zu.op = DnodeOp::kMsu;
      zu.src_a = DnodeSrc::kBus;
      zu.src_b = DnodeSrc::kImm;
      zu.src_c = DnodeSrc::kR0;
      zu.imm = atan[i];
      zu.dst = DnodeDst::kR0;
      d.instr(2, 0, zu);
    }
    chain.push_back(pb.add_page(d));
  }

  // Controller schedule per sample.
  pb.set_reg(1, samples);
  pb.ldi(2, 0);
  pb.label("sample");
  pb.page_switch(page_load);
  pb.page_switch(page_idle);  // settle: outs reach the pipes
  for (std::size_t p = 0; p < chain.size(); p += 4) {
    pb.page_switch(chain[p]);
    pb.page_switch(chain[p + 1]);
    pb.page_switch(chain[p + 2]);
    pb.page_switch(chain[p + 3]);
    pb.page_switch(page_idle);  // settle before the next shift reads
  }
  pb.page_switch(page_emit);
  pb.page_switch(page_idle);  // emit for exactly one cycle
  pb.addi(1, 1, -1);
  pb.branch(RiscOp::kBne, 1, 2, "sample");
  pb.halt();
  return pb.build();
}

CordicKernelResult run_cordic(const RingGeometry& g,
                              std::span<const Word> thetas_q12,
                              unsigned iterations) {
  check(!thetas_q12.empty(), "run_cordic: empty angle stream");
  System sys({g});
  sys.load(make_cordic_program(g, thetas_q12.size(), iterations));
  sys.host().send(std::vector<Word>(thetas_q12.begin(), thetas_q12.end()));
  sys.run_until_halt(64 + 80 * iterations * thetas_q12.size(),
                     /*drain_cycles=*/2);

  const auto raw = sys.host().take_received();
  check(raw.size() == 2 * thetas_q12.size(),
        "run_cordic: unexpected output count");
  CordicKernelResult result;
  result.outputs.reserve(thetas_q12.size());
  for (std::size_t i = 0; i < thetas_q12.size(); ++i) {
    result.outputs.push_back({raw[2 * i], raw[2 * i + 1]});
  }
  result.stats = sys.stats();
  result.cycles_per_sample = static_cast<double>(result.stats.cycles) /
                             static_cast<double>(thetas_q12.size());
  return result;
}

}  // namespace sring::kernels
