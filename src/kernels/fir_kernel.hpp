// FIR filter kernels — three implementations of the same filter that
// together reproduce the paper's configuration-architecture argument
// (§4, §6):
//
//  * Spatial (systolic): one tap per Dnode pair, new sample every
//    cycle.  Uses T+1 layers x 2 lanes; the feedback pipelines slow the
//    x stream by one extra cycle per stage (the classic systolic FIR
//    retiming), partial sums ride the forward dataflow.
//
//  * Resource-shared, page-multiplexed: ONE multiplier computes all T
//    taps sequentially; the configuration controller swaps a full
//    configuration page every cycle (PAGE), changing both the MAC
//    instruction and the switch routing per phase.  T+4 cycles/sample.
//    This is the paper's "hardware multiplexing" enabled by the
//    dedicated configuration instruction set.
//
//  * Resource-shared, word-by-word (naive): same dataflow, but the
//    controller rewrites configuration words with WRCFG/WRSW instead
//    of pages — the baseline the paper's dual-layer scheme is designed
//    to beat.  ~10x more cycles per sample.
//
// Both resource-shared variants assume the input FIFO is pre-filled
// (the fig. 6 prototype's IMAGE memory): their schedules are
// controller-timed and do not tolerate input underflow.
#pragma once

#include <span>
#include <vector>

#include "sim/host_interface.hpp"
#include "sim/program.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace sring::kernels {

/// Spatial systolic FIR: needs g.layers >= taps+1 and g.lanes >= 2.
LoadableProgram make_spatial_fir_program(const RingGeometry& g,
                                         std::span<const Word> coeffs);

/// Page-multiplexed serial FIR: needs g.layers >= taps+1.
LoadableProgram make_paged_serial_fir_program(const RingGeometry& g,
                                              std::span<const Word> coeffs,
                                              std::size_t samples);

/// Word-by-word serial FIR (naive reconfiguration baseline).
LoadableProgram make_wordwise_serial_fir_program(
    const RingGeometry& g, std::span<const Word> coeffs,
    std::size_t samples);

struct FirResult {
  std::vector<Word> outputs;  ///< y[n] for every input sample
  SystemStats stats;
  double cycles_per_sample = 0.0;
  RunReport report;           ///< machine-readable run record
};

/// Run the spatial FIR over `x`; bit-exact vs dsp::fir_reference.
FirResult run_spatial_fir(const RingGeometry& g, std::span<const Word> x,
                          std::span<const Word> coeffs,
                          LinkRate link = LinkRate::unlimited());

/// Run the page-multiplexed serial FIR (pre-filled input).
FirResult run_paged_serial_fir(const RingGeometry& g,
                               std::span<const Word> x,
                               std::span<const Word> coeffs);

/// Run the naive word-by-word serial FIR (pre-filled input).
FirResult run_wordwise_serial_fir(const RingGeometry& g,
                                  std::span<const Word> x,
                                  std::span<const Word> coeffs);

}  // namespace sring::kernels
