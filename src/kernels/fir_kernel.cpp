#include "kernels/fir_kernel.hpp"

#include "asm/program_builder.hpp"
#include "common/error.hpp"
#include "dsp/fir.hpp"
#include "sim/system.hpp"

namespace sring::kernels {

namespace {

DnodeInstr pass_out(DnodeSrc src) {
  DnodeInstr i;
  i.op = DnodeOp::kPass;
  i.src_a = src;
  i.out_en = true;
  return i;
}

/// MAC with immediate coefficient: result = a * coeff + c.
DnodeInstr mac_imm(DnodeSrc a, Word coeff, DnodeSrc c) {
  DnodeInstr i;
  i.op = DnodeOp::kMac;
  i.src_a = a;
  i.src_b = DnodeSrc::kImm;
  i.src_c = c;
  i.imm = coeff;
  return i;
}

}  // namespace

LoadableProgram make_spatial_fir_program(const RingGeometry& g,
                                         std::span<const Word> coeffs) {
  const std::size_t taps = coeffs.size();
  check(taps >= 1, "spatial FIR: at least one tap");
  check(g.lanes >= 2, "spatial FIR: needs 2 lanes (x and partial sums)");
  check(g.layers >= taps + 1,
        "spatial FIR: needs taps+1 layers (injection + one per tap)");

  ProgramBuilder pb(g, "spatial_fir");
  PageBuilder page(g);

  // Layer 0: x injection (lane 0) and partial-sum seed 0 (lane 1).
  SwitchRoute inject;
  inject.in1 = PortRoute::host();
  page.route(0, 0, inject);
  page.instr(0, 0, pass_out(DnodeSrc::kIn1));
  page.instr(0, 1, pass_out(DnodeSrc::kZero));

  // Layers 1..T: lane 0 re-times x through the feedback pipeline (one
  // extra cycle per stage), lane 1 accumulates c_k * x + psum.
  for (std::size_t k = 1; k <= taps; ++k) {
    SwitchRoute xroute;
    xroute.in1 = PortRoute::feedback(
        {static_cast<std::uint8_t>(k), 0, 0});
    page.route(k, 0, xroute);
    page.instr(k, 0, pass_out(DnodeSrc::kIn1));

    SwitchRoute proute;
    proute.in1 = PortRoute::prev(0);
    proute.in2 = PortRoute::prev(1);
    page.route(k, 1, proute);
    DnodeInstr mac = mac_imm(DnodeSrc::kIn1, coeffs[k - 1], DnodeSrc::kIn2);
    mac.out_en = true;
    if (k == taps) mac.host_en = true;  // the y stream
    page.instr(k, 1, mac);
  }
  pb.add_page(page);
  pb.page_switch(0);
  pb.halt();
  return pb.build();
}

FirResult run_spatial_fir(const RingGeometry& g, std::span<const Word> x,
                          std::span<const Word> coeffs, LinkRate link) {
  const std::size_t taps = coeffs.size();
  System sys({g, link});
  sys.load(make_spatial_fir_program(g, coeffs));

  // Feed x plus `taps` flush zeros; the first `taps` emitted words are
  // pipeline warm-up (zero history) and are discarded.
  std::vector<Word> feed(x.begin(), x.end());
  feed.insert(feed.end(), taps, 0);
  sys.host().send(feed);
  sys.run_until_outputs(x.size() + taps, 64 + 16 * feed.size());

  FirResult result;
  const auto raw = sys.host().take_received();
  result.outputs.assign(raw.begin() + static_cast<std::ptrdiff_t>(taps),
                        raw.begin() + static_cast<std::ptrdiff_t>(
                                          taps + x.size()));
  result.stats = sys.stats();
  result.cycles_per_sample =
      x.empty() ? 0.0
                : static_cast<double>(result.stats.cycles) /
                      static_cast<double>(x.size());
  result.report = RunReport::from_system("fir.spatial", sys);
  result.report.extra("taps", std::uint64_t{taps})
      .extra("samples", std::uint64_t{x.size()})
      .extra("cycles_per_sample", result.cycles_per_sample);
  return result;
}

// ---------------------------------------------------------------------------
// Resource-shared serial FIR, page-multiplexed (one multiplier, T taps).
// Dataflow: X_j at (j, 0) hold x[n-j] (they all shift simultaneously in
// the SHIFT phase); the MAC Dnode at (taps, 0) computes one tap per
// phase, reading X_{T-1} directly and the others through depth-0
// feedback taps.
// ---------------------------------------------------------------------------

LoadableProgram make_paged_serial_fir_program(const RingGeometry& g,
                                              std::span<const Word> coeffs,
                                              std::size_t samples) {
  const std::size_t taps = coeffs.size();
  check(taps >= 1, "serial FIR: at least one tap");
  check(g.layers >= taps + 1, "serial FIR: needs taps+1 layers");
  check(samples >= 1, "serial FIR: at least one sample");

  ProgramBuilder pb(g, "paged_serial_fir");
  const std::size_t mac_layer = taps;
  const std::size_t mac_dnode = mac_layer * g.lanes;

  // Page 0 (SHIFT): delay line shifts once, MAC emits y[n-1].
  {
    PageBuilder page(g);
    SwitchRoute x0route;
    x0route.in1 = PortRoute::host();
    page.route(0, 0, x0route);
    page.instr(0, 0, pass_out(DnodeSrc::kIn1));
    for (std::size_t j = 1; j < taps; ++j) {
      SwitchRoute r;
      r.in1 = PortRoute::prev(0);
      page.route(j, 0, r);
      page.instr(j, 0, pass_out(DnodeSrc::kIn1));
    }
    DnodeInstr emit;
    emit.op = DnodeOp::kPass;
    emit.src_a = DnodeSrc::kR0;
    emit.host_en = true;
    page.instr(mac_layer, 0, emit);
    pb.add_page(page);
  }

  // Pages 1..T (TAP k): tap j = T-k; phase 1 reads X_{T-1} directly
  // (its feedback image is not yet fresh) and resets the accumulator.
  for (std::size_t k = 1; k <= taps; ++k) {
    const std::size_t j = taps - k;
    PageBuilder page(g);
    SwitchRoute r;
    DnodeInstr mac;
    if (k == 1) {
      r.in1 = PortRoute::prev(0);
      mac = mac_imm(DnodeSrc::kIn1, coeffs[j], DnodeSrc::kZero);
    } else {
      r.fifo1 = {static_cast<std::uint8_t>(j + 1), 0, 0};
      mac = mac_imm(DnodeSrc::kFifo1, coeffs[j],
                    taps == 1 ? DnodeSrc::kZero : DnodeSrc::kR0);
    }
    mac.dst = DnodeDst::kR0;
    page.route(mac_layer, 0, r);
    page.instr(mac_layer, 0, mac);
    pb.add_page(page);
  }

  // Page T+1 (IDLE): everything NOP.
  const std::size_t idle = pb.add_page(PageBuilder(g));

  // Controller: per sample, issue SHIFT, TAP 1..T, IDLE, loop upkeep.
  pb.set_reg(1, samples);
  pb.ldi(2, 0);
  pb.label("sample");
  for (std::size_t p = 0; p <= taps; ++p) {
    pb.page_switch(p);
  }
  pb.page_switch(idle);
  pb.addi(1, 1, -1);
  pb.branch(RiscOp::kBne, 1, 2, "sample");
  // Flush: one more SHIFT emits the last y (pops one padding word).
  pb.page_switch(0);
  pb.page_switch(idle);
  pb.halt();

  // The MAC Dnode index is only documented here for readers of the
  // disassembly; nothing at runtime needs it.
  (void)mac_dnode;
  return pb.build();
}

namespace {

FirResult run_serial_common(const RingGeometry& g,
                            const LoadableProgram& prog,
                            std::span<const Word> x, std::size_t pad_words,
                            std::string_view report_name) {
  System sys({g});
  sys.load(prog);
  std::vector<Word> feed(x.begin(), x.end());
  feed.insert(feed.end(), pad_words, 0);
  sys.host().send(feed);
  sys.run_until_halt(1000 + 200 * feed.size());

  FirResult result;
  const auto raw = sys.host().take_received();
  check(raw.size() >= x.size() + 1,
        "serial FIR: fewer outputs than expected");
  // First emission is the boot-time accumulator (garbage by contract).
  result.outputs.assign(raw.begin() + 1,
                        raw.begin() + 1 + static_cast<std::ptrdiff_t>(
                                              x.size()));
  result.stats = sys.stats();
  result.cycles_per_sample =
      x.empty() ? 0.0
                : static_cast<double>(result.stats.cycles) /
                      static_cast<double>(x.size());
  result.report = RunReport::from_system(report_name, sys);
  result.report.extra("samples", std::uint64_t{x.size()})
      .extra("cycles_per_sample", result.cycles_per_sample);
  return result;
}

}  // namespace

FirResult run_paged_serial_fir(const RingGeometry& g,
                               std::span<const Word> x,
                               std::span<const Word> coeffs) {
  return run_serial_common(
      g, make_paged_serial_fir_program(g, coeffs, x.size()), x,
      /*pad_words=*/1, "fir.paged_serial");
}

// ---------------------------------------------------------------------------
// Resource-shared serial FIR with word-by-word reconfiguration: the
// baseline showing what the dedicated page mechanism buys.  The
// controller pulses each Dnode's instruction on for exactly one cycle
// (write instr, write NOP back), shifting the delay line tail-first so
// word-at-a-time writes preserve the simultaneous-shift semantics.
//
// Register map (steady state): r1..rT tap microinstructions,
// r5+T.. routes would not fit for large T, so taps are limited by the
// 16-register file: 2T + 7 <= 16, i.e. taps <= 4.
// ---------------------------------------------------------------------------

LoadableProgram make_wordwise_serial_fir_program(
    const RingGeometry& g, std::span<const Word> coeffs,
    std::size_t samples) {
  const std::size_t taps = coeffs.size();
  check(taps >= 1 && taps <= 4,
        "wordwise serial FIR: 1..4 taps (register-file bound)");
  check(g.layers >= taps + 1, "wordwise serial FIR: needs taps+1 layers");
  check(samples >= 1, "wordwise serial FIR: at least one sample");

  ProgramBuilder pb(g, "wordwise_serial_fir");
  const std::size_t mac_layer = taps;
  const std::size_t mac_dnode = mac_layer * g.lanes;

  // Static switch routing (it never changes in this variant): the
  // delay line chains prev0; the MAC reads X_{taps-1} directly on in1
  // and X_j through fifo reads rewritten per tap would cost extra
  // registers, so instead each tap instruction selects a distinct
  // fifo port... two ports only — therefore the route IS rewritten per
  // tap, from a precomputed register.
  PageBuilder boot(g);
  {
    SwitchRoute x0route;
    x0route.in1 = PortRoute::host();
    boot.route(0, 0, x0route);
    for (std::size_t j = 1; j < taps; ++j) {
      SwitchRoute r;
      r.in1 = PortRoute::prev(0);
      boot.route(j, 0, r);
    }
  }
  pb.add_page(boot);

  // Register allocation (exactly fills the 16-entry file at taps = 4):
  // r0 sample counter, r1..rT tap instructions, r(T+1)..r(2T) tap
  // routes, r9/r10 delay-line microinstructions, r11/r12 MAC
  // addresses, r13 NOP constant, r14 emit, r15 loop scratch.
  const std::uint8_t rSamples = 0;
  const std::uint8_t rZero = 13;       // NOP microinstruction (0)
  const std::uint8_t rMacIdx = 12;     // MAC Dnode index (WRCFG address)
  const std::uint8_t rMacSw = 11;      // MAC switch address (WRSW)
  const std::uint8_t rXPass = 10;      // delay-line pass microinstruction
  const std::uint8_t rX0Pass = 9;      // head-of-line pass (pops host)
  const std::uint8_t rEmit = 14;       // emit microinstruction
  const auto tap_instr_reg = [&](std::size_t k) {
    return static_cast<std::uint8_t>(1 + (k - 1));
  };
  const auto tap_route_reg = [&](std::size_t k) {
    return static_cast<std::uint8_t>(1 + taps + (k - 1));
  };

  // --- boot: materialize constants, apply static routes -------------
  pb.page_switch(0);
  pb.ldi(rZero, 0);
  pb.set_reg(rMacIdx, mac_dnode);
  pb.set_reg(rMacSw, mac_layer * 16 + 0);
  pb.set_reg(rXPass, pass_out(DnodeSrc::kIn1).encode());
  pb.set_reg(rX0Pass, pass_out(DnodeSrc::kIn1).encode());
  DnodeInstr emit;
  emit.op = DnodeOp::kPass;
  emit.src_a = DnodeSrc::kR0;
  emit.host_en = true;
  pb.set_reg(rEmit, emit.encode());
  for (std::size_t k = 1; k <= taps; ++k) {
    const std::size_t j = taps - k;
    SwitchRoute r;
    DnodeInstr mac;
    if (k == 1) {
      r.in1 = PortRoute::prev(0);
      mac = mac_imm(DnodeSrc::kIn1, coeffs[j], DnodeSrc::kZero);
    } else {
      r.fifo1 = {static_cast<std::uint8_t>(j + 1), 0, 0};
      mac = mac_imm(DnodeSrc::kFifo1, coeffs[j],
                    taps == 1 ? DnodeSrc::kZero : DnodeSrc::kR0);
    }
    mac.dst = DnodeDst::kR0;
    pb.set_reg(tap_instr_reg(k), mac.encode());
    pb.set_reg(tap_route_reg(k), r.encode());
  }
  pb.set_reg(rSamples, samples);

  const auto pulse = [&](std::uint8_t idx_reg, std::uint8_t instr_reg) {
    // Enable for exactly one cycle, then write NOP back.
    pb.emit({RiscOp::kWrcfg, 0, idx_reg, instr_reg, 0});
    pb.emit({RiscOp::kWrcfg, 0, idx_reg, rZero, 0});
  };

  // --- steady state: one iteration per sample -----------------------
  pb.label("sample");
  // Emit y[n-1].
  pulse(rMacIdx, rEmit);
  // Shift the delay line tail-first (each X reads its upstream
  // neighbour's PRE-edge value, so one-per-cycle shifting from the
  // tail is equivalent to the simultaneous shift).
  for (std::size_t j = taps; j-- > 0;) {
    pb.ldi(15, static_cast<std::int32_t>(j * g.lanes));
    pulse(15, j == 0 ? rX0Pass : rXPass);
  }
  // Taps.
  for (std::size_t k = 1; k <= taps; ++k) {
    pb.emit({RiscOp::kWrsw, 0, rMacSw, tap_route_reg(k), 0});
    pulse(rMacIdx, tap_instr_reg(k));
  }
  pb.addi(rSamples, rSamples, -1);
  // rZero holds the NOP encoding, which is numerically 0 — reuse it as
  // the zero comparand.
  pb.branch(RiscOp::kBne, rSamples, rZero, "sample");
  // Flush: emit the final y (no extra input pop in this variant).
  pulse(rMacIdx, rEmit);
  pb.halt();
  return pb.build();
}

FirResult run_wordwise_serial_fir(const RingGeometry& g,
                                  std::span<const Word> x,
                                  std::span<const Word> coeffs) {
  return run_serial_common(
      g, make_wordwise_serial_fir_program(g, coeffs, x.size()), x,
      /*pad_words=*/0, "fir.wordwise_serial");
}

}  // namespace sring::kernels
