#include "kernels/mac_kernel.hpp"

#include "asm/program_builder.hpp"
#include "common/error.hpp"
#include "sim/system.hpp"

namespace sring::kernels {

LoadableProgram make_running_mac_program(const RingGeometry& g) {
  ProgramBuilder pb(g, "running_mac");

  PageBuilder page(g);
  SwitchRoute route;
  route.in1 = PortRoute::host();
  route.in2 = PortRoute::host();
  page.route(0, 0, route);
  page.mode(0, 0, DnodeMode::kLocal);
  pb.add_page(page);

  DnodeInstr mac;
  mac.op = DnodeOp::kMac;
  mac.src_a = DnodeSrc::kIn1;
  mac.src_b = DnodeSrc::kIn2;
  mac.src_c = DnodeSrc::kR0;
  mac.dst = DnodeDst::kR0;
  mac.host_en = true;
  pb.local_program(0, {mac});

  pb.page_switch(0);
  pb.halt();
  return pb.build();
}

MacResult run_running_mac(const RingGeometry& g, std::span<const Word> a,
                          std::span<const Word> b, LinkRate link) {
  check(a.size() == b.size(), "run_running_mac: length mismatch");
  System sys({g, link});
  sys.load(make_running_mac_program(g));

  std::vector<Word> interleaved;
  interleaved.reserve(2 * a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    interleaved.push_back(a[i]);
    interleaved.push_back(b[i]);
  }
  sys.host().send(interleaved);
  // Worst case: one pair per link-limited delivery; generous budget.
  sys.run_until_outputs(a.size(), 64 + 16 * a.size());

  MacResult result;
  result.partial_sums = sys.host().take_received();
  result.partial_sums.resize(a.size());
  result.stats = sys.stats();
  return result;
}

}  // namespace sring::kernels
