// Recursive (IIR) filter kernel — the paper's showcase for the
// feedback pipelines ("the required delays on recursive branch are
// automatically achieved in them", §4.2).
//
// y[n] = x[n] + a * y[n-1], computed by a single local-mode Dnode that
// reads its own previous output through the feedback pipeline of the
// downstream switch.  The recurrence closes in two cycles (output
// register + pipeline latch), so throughput is one sample per two
// cycles — the structural recursion bound of any systolic realization.
#pragma once

#include <span>
#include <vector>

#include "sim/host_interface.hpp"
#include "sim/program.hpp"
#include "sim/stats.hpp"

namespace sring::kernels {

/// Build the first-order IIR program (uses Dnode 0.0; needs layers>=2).
LoadableProgram make_iir1_program(const RingGeometry& g, Word a);

struct IirResult {
  std::vector<Word> outputs;
  SystemStats stats;
  double cycles_per_sample = 0.0;
};

/// Run y[n] = x[n] + a*y[n-1] over `x`; bit-exact vs
/// dsp::iir1_reference.
IirResult run_iir1(const RingGeometry& g, std::span<const Word> x, Word a,
                   LinkRate link = LinkRate::unlimited());

/// Second-order recursive section y[n] = b0 x[n] + a1 y[n-1] +
/// a2 y[n-2], built from two half-rate Dnodes: the first folds
/// b0 x[n] and a2 y[n-2] (read at feedback depth 0 from the output
/// Dnode's pipeline image), the second adds a1 y[n-1] and emits.
/// Needs layers >= 3.  Bit-exact vs dsp::biquad_reference with
/// b1 = b2 = 0.
LoadableProgram make_iir2_program(const RingGeometry& g, Word b0, Word a1,
                                  Word a2);

IirResult run_iir2(const RingGeometry& g, std::span<const Word> x, Word b0,
                   Word a1, Word a2);

/// Full direct-form-I biquad as a two-kernel cascade: the spatial FIR
/// computes w[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2], then the recursive
/// section computes y[n] = w[n] + a1 y[n-1] + a2 y[n-2].  Because all
/// arithmetic is mod-2^16, the cascade is bit-exact against
/// dsp::biquad_reference.  Statistics are summed over both passes.
struct BiquadKernelCoeffs {
  Word b0 = 0, b1 = 0, b2 = 0, a1 = 0, a2 = 0;
};
IirResult run_biquad_cascade(const RingGeometry& g, std::span<const Word> x,
                             const BiquadKernelCoeffs& c);

}  // namespace sring::kernels
