// Kernel job descriptors — adapters turning each DSP kernel into an
// rt::Job for the batch-execution runtime.
//
// Every descriptor packages what the kernel's run_* helper does
// inline: the LoadableProgram, the host feed (warm-up, signal, flush),
// the run policy, and the output-slicing that strips pipeline
// warm-up.  Descriptors accept an optional pre-built shared program so
// a whole batch references a single build; the program_key they stamp
// lets the runtime's SystemPool skip reconfiguration between jobs of
// the same kind — the fleet-level form of the paper's preloaded
// configuration pages.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/image.hpp"
#include "dsp/matvec.hpp"
#include "dsp/sad.hpp"
#include "rt/job.hpp"
#include "sim/program.hpp"

namespace sring::kernels {

/// Spatial systolic FIR over `x` (outputs y[n] per sample,
/// warm-up stripped; matches run_spatial_fir bit-for-bit).
/// `program` must be make_spatial_fir_program(g, coeffs) when given.
rt::Job make_spatial_fir_job(
    const RingGeometry& g, std::span<const Word> x,
    std::span<const Word> coeffs,
    std::shared_ptr<const LoadableProgram> program = nullptr);

/// Full-search block motion estimation: outputs one SAD word per
/// candidate displacement in row-major (dy, dx) order (matches
/// run_motion_estimation::sads).  `program` must be the SAD engine for
/// (g, 64, batches(range, g.layers)) when given.
rt::Job make_motion_estimation_job(
    const RingGeometry& g, const Image& ref, std::size_t rx, std::size_t ry,
    const Image& cand, int range,
    std::shared_ptr<const LoadableProgram> program = nullptr);

/// Pick the best motion vector from a motion-estimation job's outputs
/// (first-wins ties, same order as run_motion_estimation).
dsp::MotionVector best_motion_vector(std::span<const Word> sads, int range);

/// Forward 1-D 5/3 wavelet over an even-length `x`: raw interleaved
/// output stream; decode with dwt53_bands_from_raw(outputs, x.size()/2).
/// The program depends only on the geometry, so DWT batches reuse
/// pooled Systems maximally.
rt::Job make_dwt53_job(
    const RingGeometry& g, std::span<const Word> x,
    std::shared_ptr<const LoadableProgram> program = nullptr);

/// Block matrix-vector product y = M x over consecutive 8-sample
/// blocks of `x`: outputs 8 words per block (matches
/// run_block_matvec8).  `program` must match (g, m, x.size()/8) when
/// given.
rt::Job make_matvec8_job(
    const RingGeometry& g, const dsp::Matrix8& m, std::span<const Word> x,
    std::shared_ptr<const LoadableProgram> program = nullptr);

}  // namespace sring::kernels
