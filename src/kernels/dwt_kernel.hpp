// 5/3 lifting-scheme wavelet kernel (paper §5.1, Table 2).
//
// A fully spatial pipeline over 8 layers x 2 lanes (11 of 16 Dnodes —
// the paper's "25% of the Ring structure remains free"):
//
//   L0  e/o split from the host stream (2 pops/cycle = 1 pixel pair)
//   L1  e[i-1]+e[i] (feedback tap) and o re-align
//   L2  >>1 (predict half-sum)            L3  d = o - halfsum  -> host
//   L4  d[i-1]+d[i] (feedback tap)        L5  +2
//   L6  >>2 (update term)                 L7  s = e + update   -> host
//
// One pixel sample is consumed per clock cycle (the paper's Table 2
// throughput claim); the d and s streams come back interleaved, two
// words per cycle, with fixed pipeline latencies of 4 and 8 cycles.
// Zero-history streaming corresponds exactly to
// dsp::dwt53_forward(..., Boundary::kZero).
#pragma once

#include <span>
#include <vector>

#include "common/image.hpp"
#include "dsp/wavelet.hpp"
#include "sim/program.hpp"
#include "sim/stats.hpp"

namespace sring::kernels {

/// Build the 1-D analysis pipeline program (needs 8 layers, 2 lanes).
LoadableProgram make_dwt53_program(const RingGeometry& g);

/// The host word stream for one analysis pass over `x` (even length):
/// warm-up pair, signal, tail-flush zeros.
std::vector<Word> make_dwt53_feed(std::span<const Word> x);

/// Host words an analysis pass emits for `pairs` input pairs (the
/// run-until-outputs stop count for make_dwt53_feed's stream).
std::size_t dwt53_output_words(std::size_t pairs);

/// Decode the raw interleaved output stream of one analysis pass back
/// into (high, low) subbands of `pairs` coefficients each.
dsp::Subbands dwt53_bands_from_raw(std::span<const Word> raw,
                                   std::size_t pairs);

struct DwtResult {
  dsp::Subbands bands;
  SystemStats stats;
  double cycles_per_sample = 0.0;  ///< cycles per input pixel
};

/// Forward 1-D 5/3 transform of an even-length signal on the ring.
DwtResult run_dwt53(const RingGeometry& g, std::span<const Word> x);

struct Dwt2DResult {
  dsp::Subbands2D bands;
  std::uint64_t total_cycles = 0;   ///< sum over all row/column passes
  double cycles_per_sample = 0.0;   ///< per pixel of the input image
};

/// Separable 2-D transform: every row and then every column is pushed
/// through a fresh ring pipeline (per-line restart = zero-extension
/// boundary, matching dsp::dwt53_forward_2d with Boundary::kZero).
Dwt2DResult run_dwt53_2d(const RingGeometry& g, const Image& img);

/// Multi-level decomposition (JPEG2000-style pyramid): level k
/// re-decomposes the previous LL on the ring.  Matches
/// dsp::dwt53_pyramid with Boundary::kZero.
struct DwtPyramidResult {
  std::vector<dsp::Subbands2D> levels;
  std::uint64_t total_cycles = 0;
};
DwtPyramidResult run_dwt53_pyramid(const RingGeometry& g, const Image& img,
                                   int levels);

/// Build the inverse (synthesis) pipeline: feeds (s_i, d_i) pairs,
/// emits (x[2i], x[2i+1]) — also one pixel sample per cycle, on the
/// same 8x2 ring.
LoadableProgram make_idwt53_program(const RingGeometry& g);

/// Inverse 1-D transform on the ring; bit-exact against
/// dsp::dwt53_inverse(..., Boundary::kZero), hence a ring
/// forward+inverse round trip is the identity.
struct IdwtResult {
  std::vector<Word> signal;
  SystemStats stats;
  double cycles_per_sample = 0.0;
};
IdwtResult run_idwt53(const RingGeometry& g, const dsp::Subbands& bands);

}  // namespace sring::kernels
