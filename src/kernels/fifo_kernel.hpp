// FIFO emulation kernel (paper §4.1: in local mode a Dnode computes
// "MAC, serial digital filters, FIFO emulation without RISC controller
// overheading").
//
// A producer Dnode streams host words; a consumer Dnode reads the
// stream through a feedback pipeline at depth d and forwards it to the
// host.  The pair emulates a FIFO of depth d+2: one output register
// plus d+1 pipeline stages.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/program.hpp"
#include "sim/stats.hpp"

namespace sring::kernels {

/// Build the FIFO program for delay-stage count `depth` (0-based
/// feedback depth; total emulated FIFO latency is depth+2 cycles).
LoadableProgram make_fifo_program(const RingGeometry& g,
                                  std::size_t depth);

struct FifoResult {
  std::vector<Word> outputs;  ///< same words, delayed by depth+2 slots
  SystemStats stats;
};

/// Push `x` through the emulated FIFO; the returned stream equals
/// (depth+2) zeros followed by x.
FifoResult run_fifo(const RingGeometry& g, std::span<const Word> x,
                    std::size_t depth);

/// LIFO emulation (the other half of the paper's "FIFOs & LIFOs"
/// macro-operators): blocks of `block` samples (2..8) come back
/// reversed.  A writer Dnode streams the block into its output
/// register history; per-cycle configuration pages then read the
/// feedback pipeline at graduated depths (d = 2k-1) to emit the block
/// backwards.  Controller-timed: pre-filled input required.
LoadableProgram make_lifo_program(const RingGeometry& g, std::size_t block,
                                  std::size_t blocks);

/// Reverse every `block`-sized chunk of x (x.size() divisible by
/// block).
FifoResult run_lifo(const RingGeometry& g, std::span<const Word> x,
                    std::size_t block);

}  // namespace sring::kernels
