// Full-search block-matching motion estimation on the Ring (paper
// §5.1, Table 1: "the number of cycles needed for matching a 8x8
// reference block against its search area of 8 pixels displacement").
//
// Mapping: every layer is one SAD unit — lane 0 computes |ref - cand|
// on a host pixel-pair stream, lane 1 accumulates.  All units process
// one candidate position each per 64-cycle batch; the configuration
// controller then swaps an EMIT page (one cycle: each unit streams its
// final SAD, folding in the in-flight |ref-cand| so no drain bubble is
// needed) and a RESET page (one cycle), and loops.  With L layers, a
// batch covers L candidates in 64 + 4 cycles plus loop upkeep.
//
// Host bandwidth while a batch runs is 2 words per unit per cycle —
// exactly the paper's "Dnode count x 2 bytes/cycle" peak figure.  The
// schedule is controller-timed, so the input FIFO must be pre-filled
// (the prototype's on-board IMAGE memory, fig. 6).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/image.hpp"
#include "dsp/sad.hpp"
#include "sim/program.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace sring::kernels {

/// Build the SAD-engine program.  Needs lanes >= 2; every layer is a
/// unit.  `batches` = number of 64-cycle candidate batches to run.
LoadableProgram make_sad_engine_program(const RingGeometry& g,
                                        std::size_t block_pixels,
                                        std::size_t batches);

/// Candidate displacements for ±`range` pixels in row-major (dy, dx)
/// scan order — the emission order of the SAD engine.
std::vector<std::pair<int, int>> sad_displacements(int range);

/// The host word stream feeding the SAD engine: per WORK cycle, one
/// (ref, cand) pixel pair per unit in layer-ascending order (zero
/// padding for the tail batch).  `units` = g.layers of the target
/// ring.
std::vector<Word> make_sad_feed(const Image& ref, std::size_t rx,
                                std::size_t ry, const Image& cand,
                                const std::vector<std::pair<int, int>>& disp,
                                std::size_t units,
                                std::size_t n = dsp::kBlockSize);

struct MotionEstimationResult {
  std::vector<std::uint32_t> sads;  ///< per candidate, (dy,dx) row-major
  dsp::MotionVector best;           ///< arg-min with first-wins ties
  SystemStats stats;
  std::uint64_t cycles = 0;         ///< total cycles for the block match
  RunReport report;                 ///< machine-readable run record
};

/// Match the 8x8 block at (rx, ry) of `ref` against `cand` within
/// ±range pixels, on a ring of the given geometry.
MotionEstimationResult run_motion_estimation(const RingGeometry& g,
                                             const Image& ref,
                                             std::size_t rx, std::size_t ry,
                                             const Image& cand, int range);

}  // namespace sring::kernels
