#include "svc/dfg_codec.hpp"

#include <cstring>

#include "common/error.hpp"

namespace sring::svc {

namespace {

using mapper::DfgNode;
using mapper::DfgOp;
using mapper::NodeId;

constexpr std::uint8_t kMaxOpByte = static_cast<std::uint8_t>(DfgOp::kDelay);

/// Little-endian byte reader over the blob; every overrun is a typed
/// SimError, so mutated bytes can never walk off the buffer.
class BlobReader {
 public:
  explicit BlobReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() {
    const auto b = take(2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }
  std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[static_cast<std::size_t>(i)];
    return v;
  }
  std::string name() {
    const std::uint8_t n = u8();
    check(n <= kMaxDfgNameBytes,
          "dfg_codec: name exceeds " + std::to_string(kMaxDfgNameBytes) +
              " bytes");
    const auto b = take(n);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }
  void expect_end() const {
    check(pos_ == data_.size(), "dfg_codec: trailing bytes after graph");
  }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    check(data_.size() - pos_ >= n, "dfg_codec: truncated blob");
    const auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

class BlobWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int s = 0; s < 32; s += 8) {
      out_.push_back(static_cast<std::uint8_t>(v >> s));
    }
  }
  void name(const std::string& s) {
    check(s.size() <= kMaxDfgNameBytes,
          "dfg_codec: name exceeds " + std::to_string(kMaxDfgNameBytes) +
              " bytes");
    u8(static_cast<std::uint8_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

}  // namespace

std::vector<std::uint8_t> encode_dfg(const mapper::Dfg& dfg) {
  const auto& nodes = dfg.nodes();
  check(!nodes.empty(), "dfg_codec: empty graph");
  check(nodes.size() <= kMaxDfgNodes,
        "dfg_codec: node count " + std::to_string(nodes.size()) +
            " exceeds limit of " + std::to_string(kMaxDfgNodes));
  check(dfg.outputs().size() <= kMaxDfgOutputs,
        "dfg_codec: output count " + std::to_string(dfg.outputs().size()) +
            " exceeds limit of " + std::to_string(kMaxDfgOutputs));

  BlobWriter w;
  for (const std::uint8_t b : kDfgMagic) w.u8(b);
  w.u16(kDfgCodecVersion);
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (const DfgNode& n : nodes) {
    const unsigned arity = mapper::dfg_arity(n.op);
    w.u8(static_cast<std::uint8_t>(n.op));
    w.u8(static_cast<std::uint8_t>(arity));
    if (arity >= 1) w.u32(n.a);
    if (arity == 2) w.u32(n.b);
    if (n.op == DfgOp::kConst) w.u16(n.value);
    if (n.op == DfgOp::kDelay) {
      check(n.delay <= kMaxDfgDelay,
            "dfg_codec: delay " + std::to_string(n.delay) +
                " exceeds limit of " + std::to_string(kMaxDfgDelay));
      w.u32(n.delay);
    }
    w.name(n.name);
  }
  w.u32(static_cast<std::uint32_t>(dfg.outputs().size()));
  for (const NodeId out : dfg.outputs()) w.u32(out);

  std::vector<std::uint8_t> bytes = w.take();
  check(bytes.size() <= kMaxDfgBlobBytes, "dfg_codec: blob too large");
  return bytes;
}

mapper::Dfg decode_dfg(std::span<const std::uint8_t> bytes) {
  check(bytes.size() <= kMaxDfgBlobBytes,
        "dfg_codec: blob exceeds " + std::to_string(kMaxDfgBlobBytes) +
            " bytes");
  BlobReader r(bytes);
  std::uint8_t magic[4];
  for (std::uint8_t& b : magic) b = r.u8();
  check(std::memcmp(magic, kDfgMagic, 4) == 0, "dfg_codec: bad magic");
  const std::uint16_t version = r.u16();
  check(version == kDfgCodecVersion,
        "dfg_codec: unsupported codec version " + std::to_string(version));

  const std::uint32_t node_count = r.u32();
  check(node_count >= 1, "dfg_codec: empty graph");
  check(node_count <= kMaxDfgNodes,
        "dfg_codec: node count " + std::to_string(node_count) +
            " exceeds limit of " + std::to_string(kMaxDfgNodes));

  std::vector<DfgNode> nodes;
  nodes.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    const std::uint8_t op_byte = r.u8();
    check(op_byte <= kMaxOpByte,
          "dfg_codec: unknown op " + std::to_string(op_byte));
    DfgNode n;
    n.op = static_cast<DfgOp>(op_byte);
    const unsigned arity = mapper::dfg_arity(n.op);
    const std::uint8_t declared = r.u8();
    check(declared == arity,
          "dfg_codec: arity mismatch for op " + std::to_string(op_byte) +
              ": declared " + std::to_string(declared) + ", expected " +
              std::to_string(arity));
    if (arity >= 1) n.a = r.u32();
    if (arity == 2) n.b = r.u32();
    if (n.op == DfgOp::kConst) n.value = r.u16();
    if (n.op == DfgOp::kDelay) {
      n.delay = r.u32();
      check(n.delay >= 1 && n.delay <= kMaxDfgDelay,
            "dfg_codec: delay " + std::to_string(n.delay) +
                " outside 1.." + std::to_string(kMaxDfgDelay));
    }
    n.name = r.name();
    nodes.push_back(std::move(n));
  }

  const std::uint32_t output_count = r.u32();
  check(output_count <= kMaxDfgOutputs,
        "dfg_codec: output count " + std::to_string(output_count) +
            " exceeds limit of " + std::to_string(kMaxDfgOutputs));
  std::vector<NodeId> outputs;
  outputs.reserve(output_count);
  for (std::uint32_t i = 0; i < output_count; ++i) outputs.push_back(r.u32());
  r.expect_end();

  // Structural validation (operand ordering, delay bounds, ranges)
  // happens in assemble; the output-presence rule stays with
  // Dfg::validate() so its diagnostic reaches the wire verbatim.
  return mapper::Dfg::assemble(std::move(nodes), std::move(outputs));
}

std::uint64_t dfg_hash(std::span<const std::uint8_t> canonical_bytes) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (const std::uint8_t b : canonical_bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t dfg_hash(const mapper::Dfg& dfg) {
  return dfg_hash(encode_dfg(dfg));
}

std::string dfg_hash_hex(std::uint64_t hash) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

}  // namespace sring::svc
