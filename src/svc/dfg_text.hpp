// Line-oriented text format for dataflow graphs — the human front end
// of the DFG compile service (`sras map --dfg-file`, tests, docs).
//
// One definition per line: `name op args...`, `#` starts a comment.
//
//   x    input            # one host stream
//   k    const -7         # 16-bit constant (decimal, or 0x hex)
//   m    mul x k
//   d    delay m 2        # z^-2
//   y    add m d
//   out  output y         # output stream, named "out"
//
// Operand names must be defined on an earlier line (the text format is
// topological by construction, so it cannot express recursive graphs —
// those exist only at the wire level via Dfg::assemble, where map_dfg
// rejects them).  Every diagnostic is a SimError prefixed
// "dfg:<line>:<column>:" with 1-based positions of the offending token.
#pragma once

#include <string_view>

#include "mapper/dfg.hpp"

namespace sring::svc {

/// Parse the text format into a Dfg.  Throws SimError with precise
/// line/column positions on any malformed line.  The result is NOT yet
/// validated (call dfg.validate(); an output-less file parses fine and
/// fails there, matching the service's error path).
mapper::Dfg parse_dfg_text(std::string_view text);

/// Keyword of an op in the text format ("add", "delay", ...).
std::string_view dfg_op_name(mapper::DfgOp op);

}  // namespace sring::svc
