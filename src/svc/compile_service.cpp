#include "svc/compile_service.hpp"

#include <chrono>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/quantile.hpp"
#include "svc/dfg_codec.hpp"

namespace sring::svc {

namespace {

std::string geometry_suffix(const RingGeometry& g) {
  return std::to_string(g.layers) + "x" + std::to_string(g.lanes) + "x" +
         std::to_string(g.fb_depth);
}

}  // namespace

CompileService::CompileService(CompileServiceConfig config)
    : config_(config) {
  check(config_.cache_capacity >= 1,
        "svc: compile cache capacity must be at least 1");
  // Materialize every series up front so a fresh server's stats reply
  // already names them (CI greps svc.compile.hits on the first poll).
  registry_.counter("svc.compile.hits");
  registry_.counter("svc.compile.misses");
  registry_.counter("svc.compile.evictions");
  registry_.counter("svc.compile.validations");
  registry_.counter("svc.compile.failures");
  registry_.histogram("svc.compile.latency_us", obs::latency_bounds_us());
}

CompileService::Result CompileService::get_or_compile(
    std::span<const std::uint8_t> dfg_bytes, const RingGeometry& geometry) {
  check(!dfg_bytes.empty(), "svc: empty DFG blob");
  check(dfg_bytes.size() <= kMaxDfgBlobBytes,
        "dfg_codec: blob exceeds " + std::to_string(kMaxDfgBlobBytes) +
            " bytes");
  // The codec encoding is canonical (one graph, one byte string), so
  // hashing the raw bytes IS the content hash once decode succeeds —
  // and on the hit path decode never runs at all.
  const std::uint64_t hash = dfg_hash(dfg_bytes);
  const Key key{hash, static_cast<std::uint16_t>(geometry.layers),
                static_cast<std::uint16_t>(geometry.lanes),
                static_cast<std::uint16_t>(geometry.fb_depth)};

  std::lock_guard lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    registry_.counter("svc.compile.hits").add(1);
    return {it->second->second, true};
  }

  registry_.counter("svc.compile.misses").add(1);
  std::shared_ptr<const CompiledDfg> compiled;
  try {
    compiled = compile_locked(dfg_bytes, hash, geometry);
  } catch (...) {
    registry_.counter("svc.compile.failures").add(1);
    throw;
  }

  if (lru_.size() >= config_.cache_capacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    registry_.counter("svc.compile.evictions").add(1);
  }
  lru_.emplace_front(key, compiled);
  index_[key] = lru_.begin();
  return {std::move(compiled), false};
}

std::shared_ptr<const CompiledDfg> CompileService::compile_locked(
    std::span<const std::uint8_t> dfg_bytes, std::uint64_t hash,
    const RingGeometry& geometry) {
  const auto t0 = std::chrono::steady_clock::now();

  const mapper::Dfg dfg = decode_dfg(dfg_bytes);
  dfg.validate();

  auto compiled = std::make_shared<CompiledDfg>();
  compiled->dfg_hash = hash;
  compiled->mapped = mapper::map_dfg(dfg, geometry);
  compiled->program_key =
      "dfg/" + dfg_hash_hex(hash) + "/" + geometry_suffix(geometry);

  // Golden-model gate: before the program is ever served, run it over a
  // deterministic synthetic vector and hold it bit-identical to the
  // streaming interpreter.  A divergence is a mapper bug — better a
  // typed refusal now than wrong words to every future cache hit.
  if (compiled->mapped.input_count > 0 && config_.validate_samples > 0) {
    Rng rng(0x5DF6C0DEull ^ hash);
    std::vector<std::vector<Word>> streams(compiled->mapped.input_count);
    for (auto& s : streams) {
      s.reserve(config_.validate_samples);
      for (std::size_t n = 0; n < config_.validate_samples; ++n) {
        s.push_back(rng.next_word_in(-256, 255));
      }
    }
    const auto golden = mapper::interpret_dfg(dfg, streams);
    const auto run = mapper::run_mapped(compiled->mapped, streams);
    check(run.outputs == golden,
          "svc: mapped program diverges from the golden DSP model");
    registry_.counter("svc.compile.validations").add(1);
  }

  const auto t1 = std::chrono::steady_clock::now();
  compiled->compile_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
          .count());
  registry_.histogram("svc.compile.latency_us", obs::latency_bounds_us())
      .record(compiled->compile_us);
  return compiled;
}

obs::Registry CompileService::metrics() const {
  std::lock_guard lock(mu_);
  return registry_;
}

std::size_t CompileService::cache_size() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

}  // namespace sring::svc
