// Server-side DFG compile pipeline with a bounded compiled-program
// cache — the paper's §6 "efficient compiling tool" as a service.
//
// A submitted graph travels: canonical blob -> content hash (cache
// key) -> decode (svc/dfg_codec) -> mapper::map_dfg -> golden-model
// validation (interpret_dfg vs the mapped program on a deterministic
// synthetic vector) -> cached CompiledDfg.  A cache hit skips all of
// that: the hash lookup returns the program in microseconds and the
// job's span timeline never contains a compile phase.
//
// Counters (merged into Server::metrics() as svc.compile.*):
//   hits / misses / evictions / validations / failures, plus the
//   svc.compile.latency_us histogram on the shared 1-2-5 ladder —
//   recorded on misses only, so the histogram *is* the compile cost.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "mapper/mapper.hpp"
#include "obs/metrics.hpp"

namespace sring::svc {

/// One compiled graph, shared between the cache, in-flight jobs and
/// (via the aliasing constructor) rt::Job::program — eviction can
/// never invalidate a program a worker is still arming.
struct CompiledDfg {
  std::uint64_t dfg_hash = 0;
  mapper::MappedProgram mapped;
  /// SystemPool re-arm key: "dfg/<hash hex>/<layers>x<lanes>x<fb>".
  std::string program_key;
  std::uint64_t compile_us = 0;  ///< decode+map+validate cost (0 = n/a)
};

struct CompileServiceConfig {
  std::size_t cache_capacity = 64;    ///< compiled programs kept (LRU)
  std::size_t validate_samples = 16;  ///< synthetic samples per input
};

class CompileService {
 public:
  struct Result {
    std::shared_ptr<const CompiledDfg> compiled;
    bool cache_hit = false;
  };

  explicit CompileService(CompileServiceConfig config = {});

  /// Return the cached program for (content hash of dfg_bytes,
  /// geometry), or decode + map + validate and cache it.  Throws
  /// SimError on malformed blobs, unmappable graphs and golden-model
  /// divergence — the server answers Error{kBadRequest} with the text
  /// verbatim.  Thread-safe.
  Result get_or_compile(std::span<const std::uint8_t> dfg_bytes,
                        const RingGeometry& geometry);

  /// svc.compile.* counters + latency histogram snapshot.  Thread-safe.
  obs::Registry metrics() const;

  std::size_t cache_size() const;

 private:
  struct Key {
    std::uint64_t hash = 0;
    std::uint16_t layers = 0;
    std::uint16_t lanes = 0;
    std::uint16_t fb_depth = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.hash;
      h ^= (std::uint64_t{k.layers} << 32) ^ (std::uint64_t{k.lanes} << 16) ^
           k.fb_depth;
      h *= 1099511628211ull;
      return static_cast<std::size_t>(h);
    }
  };
  using LruList = std::list<std::pair<Key, std::shared_ptr<const CompiledDfg>>>;

  std::shared_ptr<const CompiledDfg> compile_locked(
      std::span<const std::uint8_t> dfg_bytes, std::uint64_t hash,
      const RingGeometry& geometry);

  CompileServiceConfig config_;
  mutable std::mutex mu_;
  LruList lru_;  ///< front = most recent
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  obs::Registry registry_;
};

}  // namespace sring::svc
