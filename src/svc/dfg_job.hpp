// Compiled-DFG jobs for the batch runtime — tentpole (d) of the
// compile service: once a graph is compiled and cached, its jobs flow
// through the existing worker fleet, superstep engine and telemetry
// spans exactly like the named kernels do.
//
// The feed/budget/slice arithmetic here mirrors mapper::run_mapped
// word for word (pad by max_latency, interleave one sample per input
// stream per cycle, budget 64 + 8*feed cycles), so a DFG job executed
// by rt::Runtime is bit-identical to a local run_mapped call — the
// loopback acceptance test holds exactly that.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "rt/job.hpp"
#include "svc/compile_service.hpp"

namespace sring::svc {

/// Package a compiled DFG over equal-length input streams as an
/// rt::Job.  The job shares `compiled` (aliasing pointer into its
/// MappedProgram — no program copy) and stamps compiled->program_key,
/// so the SystemPool re-arms instead of reloading between jobs of the
/// same graph.  Outputs are the *raw* interleaved host words; split
/// them with delace_outputs.  Throws SimError on stream mismatch.
rt::Job make_dfg_job(const std::shared_ptr<const CompiledDfg>& compiled,
                     const std::vector<std::vector<Word>>& input_streams);

/// De-lace a finished DFG job's raw output words into per-output
/// streams of `samples` words, in Dfg output order (bit-identical to
/// mapper::run_mapped).  Throws SimError if `raw` is too short.
std::vector<std::vector<Word>> delace_outputs(const CompiledDfg& compiled,
                                              std::span<const Word> raw,
                                              std::size_t samples);

}  // namespace sring::svc
