#include "svc/dfg_text.hpp"

#include <cctype>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "svc/dfg_codec.hpp"

namespace sring::svc {

namespace {

using mapper::Dfg;
using mapper::DfgOp;
using mapper::NodeId;

/// A token plus its 1-based column (for diagnostics).
struct Token {
  std::string_view text;
  std::size_t col = 0;
};

[[noreturn]] void fail(std::size_t line, std::size_t col,
                       const std::string& message) {
  throw SimError("dfg:" + std::to_string(line) + ":" + std::to_string(col) +
                 ": " + message);
}

std::vector<Token> tokenize(std::string_view line) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (line[i] == '#') break;  // comment to end of line
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < line.size() && line[i] != '#' &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    tokens.push_back({line.substr(start, i - start), start + 1});
  }
  return tokens;
}

bool valid_name(std::string_view s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (const char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '.') {
      return false;
    }
  }
  return true;
}

const std::unordered_map<std::string_view, DfgOp>& op_table() {
  static const std::unordered_map<std::string_view, DfgOp> table = {
      {"input", DfgOp::kInput},     {"const", DfgOp::kConst},
      {"add", DfgOp::kAdd},         {"sub", DfgOp::kSub},
      {"mul", DfgOp::kMul},         {"absdiff", DfgOp::kAbsdiff},
      {"min", DfgOp::kMin},         {"max", DfgOp::kMax},
      {"and", DfgOp::kAnd},         {"or", DfgOp::kOr},
      {"xor", DfgOp::kXor},         {"shl", DfgOp::kShl},
      {"asr", DfgOp::kAsr},         {"pass", DfgOp::kPass},
      {"not", DfgOp::kNot},         {"abs", DfgOp::kAbs},
      {"delay", DfgOp::kDelay},
  };
  return table;
}

/// Parse a signed/hex integer literal; the DFG's constants are 16-bit
/// words, so the accepted range is [-32768, 65535].
long parse_int(const Token& tok, std::size_t line, long lo, long hi,
               const char* what) {
  const std::string s(tok.text);
  std::size_t used = 0;
  long value = 0;
  try {
    value = std::stol(s, &used, 0);
  } catch (const std::exception&) {
    fail(line, tok.col, std::string("expected ") + what + ", got '" + s + "'");
  }
  if (used != s.size()) {
    fail(line, tok.col, std::string("expected ") + what + ", got '" + s + "'");
  }
  if (value < lo || value > hi) {
    fail(line, tok.col,
         std::string(what) + " " + s + " outside " + std::to_string(lo) +
             ".." + std::to_string(hi));
  }
  return value;
}

}  // namespace

std::string_view dfg_op_name(DfgOp op) {
  for (const auto& [name, o] : op_table()) {
    if (o == op) return name;
  }
  return "?";
}

mapper::Dfg parse_dfg_text(std::string_view text) {
  Dfg dfg;
  std::unordered_map<std::string, NodeId> by_name;

  const auto resolve = [&](const Token& tok, std::size_t line) -> NodeId {
    const auto it = by_name.find(std::string(tok.text));
    if (it == by_name.end()) {
      fail(line, tok.col,
           "unknown operand '" + std::string(tok.text) +
               "' (operands must be defined on an earlier line)");
    }
    return it->second;
  };

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    ++line_no;
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;

    const std::vector<Token> tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens.size() < 2) {
      fail(line_no, tokens[0].col,
           "expected 'name op args...', got only '" +
               std::string(tokens[0].text) + "'");
    }

    const Token& name_tok = tokens[0];
    const Token& op_tok = tokens[1];
    if (!valid_name(name_tok.text)) {
      fail(line_no, name_tok.col,
           "bad name '" + std::string(name_tok.text) +
               "' (want [A-Za-z_][A-Za-z0-9_.]*)");
    }
    const std::string name(name_tok.text);
    const bool is_output = op_tok.text == "output";
    DfgOp op = DfgOp::kPass;
    if (!is_output) {
      const auto op_it = op_table().find(op_tok.text);
      if (op_it == op_table().end()) {
        fail(line_no, op_tok.col,
             "unknown op '" + std::string(op_tok.text) + "'");
      }
      op = op_it->second;
    }

    const auto expect_args = [&](std::size_t want) {
      if (tokens.size() - 2 != want) {
        fail(line_no, tokens.size() - 2 > want ? tokens[2 + want].col
                                               : op_tok.col,
             "op '" + std::string(op_tok.text) + "' expects " +
                 std::to_string(want) + " argument(s), got " +
                 std::to_string(tokens.size() - 2));
      }
    };

    if (is_output) {
      expect_args(1);
      const NodeId src = resolve(tokens[2], line_no);
      dfg.mark_output(src, name);
      continue;  // outputs name an existing node, they define nothing new
    }
    if (by_name.count(name) != 0) {
      fail(line_no, name_tok.col, "duplicate name '" + name + "'");
    }

    NodeId id = 0;
    switch (op) {
      case DfgOp::kInput:
        expect_args(0);
        id = dfg.add_input(name);
        break;
      case DfgOp::kConst: {
        expect_args(1);
        const long v =
            parse_int(tokens[2], line_no, -32768, 65535, "constant");
        id = dfg.add_const(static_cast<Word>(v));
        break;
      }
      case DfgOp::kDelay: {
        expect_args(2);
        const NodeId src = resolve(tokens[2], line_no);
        const long k = parse_int(tokens[3], line_no, 1,
                                 static_cast<long>(kMaxDfgDelay), "delay");
        id = dfg.add_delay(src, static_cast<unsigned>(k));
        break;
      }
      default: {
        const unsigned arity = mapper::dfg_arity(op);
        expect_args(arity);
        if (arity == 1) {
          id = dfg.add_unary(op, resolve(tokens[2], line_no));
        } else {
          // Resolve left-to-right so the error position is deterministic
          // (argument evaluation order would not be).
          const NodeId a = resolve(tokens[2], line_no);
          const NodeId b = resolve(tokens[3], line_no);
          id = dfg.add_binary(op, a, b);
        }
        break;
      }
    }
    by_name.emplace(name, id);
  }
  return dfg;
}

}  // namespace sring::svc
