// Canonical binary serialization of mapper::Dfg graphs — the wire
// representation of the DFG compile service (docs/MAPPER.md).
//
// The encoding is *canonical*: one graph has exactly one byte string
// (nodes in id order, every field fixed-width or length-prefixed, no
// optional forms), so re-encoding a decoded blob reproduces the input
// bytes and the FNV-1a content hash is a stable identity — the compile
// cache key.  Decoding is total: malformed or oversized bytes always
// raise SimError (the server answers Error{kBadRequest}), never crash.
//
// Blob layout (all integers little-endian):
//
//   offset  size  field
//        0     4  magic "SDFG"
//        4     2  codec version (kDfgCodecVersion)
//        6     4  node count (1..kMaxDfgNodes)
//             ...  node records, in node-id order
//             u32  output count (0..kMaxDfgOutputs)
//             u32  output node ids
//
// Node record: op u8, declared arity u8 (must equal dfg_arity(op)),
// operand ids u32 (one per arity), const value u16 (kConst only),
// delay u32 (kDelay only, 1..kMaxDfgDelay), name u8 length + bytes
// (every node, possibly empty).  A delay operand may reference a later
// node — recursive graphs decode fine and fail in map_dfg with its own
// diagnostic, which is exactly the error the client should see.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mapper/dfg.hpp"

namespace sring::svc {

inline constexpr std::uint8_t kDfgMagic[4] = {'S', 'D', 'F', 'G'};
inline constexpr std::uint16_t kDfgCodecVersion = 1;

/// Bounds enforced by both encode and decode, so every accepted blob
/// round-trips and no blob demands unbounded memory before validation.
inline constexpr std::size_t kMaxDfgNodes = 4096;
inline constexpr std::size_t kMaxDfgOutputs = 256;
inline constexpr std::size_t kMaxDfgNameBytes = 64;
inline constexpr unsigned kMaxDfgDelay = 4096;
/// Upper bound on a whole blob; checked before any per-node work.
inline constexpr std::size_t kMaxDfgBlobBytes = 1u << 20;

/// Canonical encoding of a structurally valid graph.  Throws SimError
/// when the graph exceeds the codec bounds above.
std::vector<std::uint8_t> encode_dfg(const mapper::Dfg& dfg);

/// Decode + structural validation (operand references, arities,
/// bounds).  Zero outputs are accepted here — `Dfg::validate()` owns
/// that diagnostic, so an output-less graph surfaces the mapper's text
/// verbatim.  Throws SimError on any malformed byte.
mapper::Dfg decode_dfg(std::span<const std::uint8_t> bytes);

/// FNV-1a 64-bit over the canonical bytes — the compile-cache key.
std::uint64_t dfg_hash(std::span<const std::uint8_t> canonical_bytes);

/// Convenience: encode + hash.
std::uint64_t dfg_hash(const mapper::Dfg& dfg);

/// 16 lowercase hex digits (program keys, job names, logs).
std::string dfg_hash_hex(std::uint64_t hash);

}  // namespace sring::svc
