#include "svc/dfg_job.hpp"

#include "common/error.hpp"
#include "svc/dfg_codec.hpp"

namespace sring::svc {

rt::Job make_dfg_job(const std::shared_ptr<const CompiledDfg>& compiled,
                     const std::vector<std::vector<Word>>& input_streams) {
  check(compiled != nullptr, "svc: null compiled DFG");
  const mapper::MappedProgram& mapped = compiled->mapped;
  check(input_streams.size() == mapped.input_count,
        "svc: DFG expects " + std::to_string(mapped.input_count) +
            " input stream(s), got " + std::to_string(input_streams.size()));
  const std::size_t samples =
      input_streams.empty() ? 0 : input_streams[0].size();
  for (const auto& s : input_streams) {
    check(s.size() == samples, "svc: ragged input streams");
  }
  check(samples > 0, "svc: empty input streams");

  // Identical feed to mapper::run_mapped: pad by the pipeline depth so
  // the last real sample's outputs drain, one word per stream per cycle.
  const std::size_t pad = mapped.max_latency;
  std::vector<Word> feed;
  feed.reserve((samples + pad) * mapped.input_count);
  for (std::size_t n = 0; n < samples + pad; ++n) {
    for (const auto& stream : input_streams) {
      feed.push_back(n < samples ? stream[n] : Word{0});
    }
  }

  rt::Job job;
  job.name = "dfg/" + dfg_hash_hex(compiled->dfg_hash);
  // Aliasing pointer: the job's program shares the CompiledDfg's
  // lifetime, so cache eviction cannot free a program mid-arm.
  job.program = std::shared_ptr<const LoadableProgram>(compiled,
                                                       &mapped.program);
  job.program_key = compiled->program_key;
  job.input = std::move(feed);
  job.run = rt::Job::Run::kUntilOutputs;
  job.expected_outputs = mapped.pushes_per_cycle * (samples + pad);
  job.max_cycles = 64 + 8 * job.input.size();
  return job;
}

std::vector<std::vector<Word>> delace_outputs(const CompiledDfg& compiled,
                                              std::span<const Word> raw,
                                              std::size_t samples) {
  const mapper::MappedProgram& mapped = compiled.mapped;
  std::vector<std::vector<Word>> outputs(mapped.outputs.size());
  for (std::size_t o = 0; o < mapped.outputs.size(); ++o) {
    const mapper::MappedOutput& mo = mapped.outputs[o];
    outputs[o].resize(samples);
    for (std::size_t n = 0; n < samples; ++n) {
      const std::size_t at =
          (n + mo.latency) * mapped.pushes_per_cycle + mo.push_rank;
      check(at < raw.size(), "svc: raw output stream shorter than the "
                             "mapped program promises");
      outputs[o][n] = raw[at];
    }
  }
  return outputs;
}

}  // namespace sring::svc
