#include "core/feedback_pipeline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sring {

FeedbackPipeline::FeedbackPipeline(std::size_t lanes, std::size_t depth)
    : lanes_(lanes), depth_(depth), stages_(lanes * depth, 0) {
  check(lanes > 0, "FeedbackPipeline: lanes must be positive");
  check(depth > 0, "FeedbackPipeline: depth must be positive");
}

Word FeedbackPipeline::read(std::size_t lane, std::size_t depth) const {
  check(lane < lanes_, "FeedbackPipeline::read: lane out of range");
  check(depth < depth_, "FeedbackPipeline::read: depth out of range");
  return read_fast(lane, depth);
}

void FeedbackPipeline::push(const std::vector<Word>& upstream_outputs) {
  check(upstream_outputs.size() == lanes_,
        "FeedbackPipeline::push: wrong vector width");
  push_from(upstream_outputs.data());
}

void FeedbackPipeline::reset() noexcept {
  std::fill(stages_.begin(), stages_.end(), 0);
  head_ = 0;
  pushes_ = 0;
}

}  // namespace sring
