// Dnode register file: 4 x 16-bit, two read ports, master-slave timing.
//
// Reads during a cycle observe the state latched at the previous clock
// edge; at most one write is staged per cycle and committed at the
// edge.  This reproduces the paper's "result stored in one of these two
// registers (master-slave register architecture)" single-cycle
// register-to-register operations.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/types.hpp"

namespace sring {

class RegisterFile {
 public:
  /// Read port: value latched at the last clock edge.
  Word read(std::size_t index) const;

  /// Stage a write; takes effect at commit().  A second staged write in
  /// the same cycle is a model invariant violation.
  void stage_write(std::size_t index, Word value);

  /// Clock edge: apply the staged write, if any.
  void commit() noexcept;

  /// Drop any staged write (used when the ring stalls).
  void discard() noexcept { staged_.reset(); }

  /// Directly set a register (initialization / controller poke paths).
  void poke(std::size_t index, Word value);

 private:
  std::array<Word, kDnodeRegCount> regs_{};
  std::optional<std::pair<std::size_t, Word>> staged_;
};

}  // namespace sring
