// Dnode register file: 4 x 16-bit, two read ports, master-slave timing.
//
// Reads during a cycle observe the state latched at the previous clock
// edge; at most one write is staged per cycle and committed at the
// edge.  This reproduces the paper's "result stored in one of these two
// registers (master-slave register architecture)" single-cycle
// register-to-register operations.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/error.hpp"
#include "common/types.hpp"

namespace sring {

// Every member is defined inline: read/stage_write/commit run for each
// active Dnode every cycle, and the ring's fused superstep loop needs
// them visible for inlining without LTO.
class RegisterFile {
 public:
  /// Read port: value latched at the last clock edge.
  Word read(std::size_t index) const {
    check(index < kDnodeRegCount, "RegisterFile::read: index out of range");
    return regs_[index];
  }

  /// Stage a write; takes effect at commit().  A second staged write in
  /// the same cycle is a model invariant violation.
  void stage_write(std::size_t index, Word value) {
    check(index < kDnodeRegCount,
          "RegisterFile::stage_write: index out of range");
    check(!staged_.has_value(),
          "RegisterFile::stage_write: double write in one cycle");
    staged_ = {index, value};
  }

  /// Clock edge: apply the staged write, if any.
  void commit() noexcept {
    if (staged_) {
      regs_[staged_->first] = staged_->second;
      staged_.reset();
    }
  }

  /// Drop any staged write (used when the ring stalls).
  void discard() noexcept { staged_.reset(); }

  /// Directly set a register (initialization / controller poke paths).
  void poke(std::size_t index, Word value) {
    check(index < kDnodeRegCount, "RegisterFile::poke: index out of range");
    regs_[index] = value;
  }

 private:
  std::array<Word, kDnodeRegCount> regs_{};
  std::optional<std::pair<std::size_t, Word>> staged_;
};

}  // namespace sring
