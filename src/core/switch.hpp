// Inter-layer switch configuration (paper §4.2).
//
// A switch sits between two adjacent Dnode layers.  Per downstream
// Dnode it routes the two input ports (in1/in2) from: a lane of the
// upstream layer's outputs, the host input port, a feedback-pipeline
// read, the shared bus, or constant zero.  It also resolves the two
// feedback read ports (fifo1/fifo2) every Dnode microinstruction may
// reference, and can forward one upstream lane to the host output FIFO.
//
// Encoding (64-bit route word, one per downstream Dnode):
//   bits  0..2   in1 kind          bits 16..18  in2 kind
//   bits  3..15  in1 argument      bits 19..31  in2 argument
//   bits 32..44  fifo1 feedback address
//   bits 45..57  fifo2 feedback address
//   bit  58      host-out enable
//   bits 59..62  host-out upstream lane
//
// Arguments: PREV -> lane in bits [3..6]; FEEDBACK -> packed feedback
// address.  A feedback address packs pipe(5) | lane(4) | depth(4),
// which bounds a ring at 32 layers x 16 lanes x depth-16 pipelines
// (Ring-512) — far beyond the paper's largest quoted instance.
#pragma once

#include <cstdint>
#include <string>

namespace sring {

/// Source category of a switch input route.
enum class RouteKind : std::uint8_t {
  kZero = 0,   ///< constant 0
  kPrev,       ///< upstream layer output lane
  kHost,       ///< host input port (pops the host input FIFO on use)
  kFeedback,   ///< feedback-pipeline read
  kBus,        ///< shared bus
  kKindCount,
};

/// Address of one feedback-pipeline read.
struct FeedbackAddr {
  std::uint8_t pipe = 0;   ///< which switch's pipeline (0..31)
  std::uint8_t lane = 0;   ///< lane within the latched vector (0..15)
  std::uint8_t depth = 0;  ///< extra delay stages (0..15)

  bool operator==(const FeedbackAddr&) const = default;

  std::uint64_t encode() const noexcept;
  static FeedbackAddr decode(std::uint64_t packed) noexcept;

  /// Throw SimError unless pipe/lane/depth fit the given ring instance
  /// (the encoding allows addresses beyond a small ring's resources).
  void check_in_range(std::size_t pipes, std::size_t lanes,
                      std::size_t fb_depth) const;
};

/// Route of one Dnode input port.
struct PortRoute {
  RouteKind kind = RouteKind::kZero;
  std::uint8_t lane = 0;    ///< upstream lane, for kPrev
  FeedbackAddr fb{};        ///< feedback address, for kFeedback

  bool operator==(const PortRoute&) const = default;

  static PortRoute zero() noexcept { return {}; }
  static PortRoute prev(std::uint8_t lane) noexcept;
  static PortRoute host() noexcept;
  static PortRoute feedback(FeedbackAddr a) noexcept;
  static PortRoute bus() noexcept;
};

/// Full switch routing for one downstream Dnode.
struct SwitchRoute {
  PortRoute in1{};
  PortRoute in2{};
  FeedbackAddr fifo1{};
  FeedbackAddr fifo2{};
  bool host_out_en = false;
  std::uint8_t host_out_lane = 0;

  bool operator==(const SwitchRoute&) const = default;

  std::uint64_t encode() const;
  static SwitchRoute decode(std::uint64_t word);
  std::string to_string() const;
};

}  // namespace sring
