// The Dnode (paper §4.1): the coarse-grained reconfigurable block.
//
// 16-bit ALU + hardwired multiplier (single-cycle MAC), a 4x16-bit
// register file with master-slave timing, a registered systolic output,
// and the local control unit for stand-alone mode.  One Dnode executes
// exactly one microinstruction per clock cycle.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "core/alu.hpp"
#include "core/local_control.hpp"
#include "core/register_file.hpp"
#include "isa/dnode_instr.hpp"

namespace sring {

class Dnode {
 public:
  /// Operand values resolved by the upstream switch for this cycle.
  struct Inputs {
    Word in1 = 0;
    Word in2 = 0;
    Word fifo1 = 0;
    Word fifo2 = 0;
    Word bus = 0;
    Word host = 0;  ///< word popped for a direct `host` operand source
  };

  /// What the instruction produced this cycle (register/output writes
  /// are staged internally; bus/host effects are the caller's job).
  struct Effects {
    bool executed = false;  ///< true for any op other than NOP
    Word result = 0;
    bool out_en = false;
    bool bus_en = false;
    bool host_en = false;
  };

  /// Evaluate `instr` with this cycle's inputs.  Register and output
  /// writes are staged; nothing is visible until commit().  Defined
  /// inline (with resolve/commit) so the ring's per-cycle and fused
  /// superstep loops inline the whole operand-resolve → ALU → stage
  /// chain without LTO.
  Effects execute(const DnodeInstr& instr, const Inputs& inputs) {
    Effects eff;
    if (instr.op == DnodeOp::kNop) return eff;

    const Word a = resolve(instr.src_a, instr, inputs);
    const Word b = op_uses_b(instr.op) ? resolve(instr.src_b, instr, inputs)
                                       : Word{0};
    const Word c = op_uses_c(instr.op) ? resolve(instr.src_c, instr, inputs)
                                       : Word{0};
    const Word result = alu_execute(instr.op, a, b, c);

    if (instr.dst != DnodeDst::kNone) {
      regs_.stage_write(dst_reg_index(instr.dst), result);
    }
    if (instr.out_en) {
      staged_out_ = result;
    }
    eff.executed = true;
    eff.result = result;
    eff.out_en = instr.out_en;
    eff.bus_en = instr.bus_en;
    eff.host_en = instr.host_en;
    return eff;
  }

  /// Clock edge: apply staged writes.  `advance_local` additionally
  /// steps the local control unit's counter (local-mode Dnodes).
  void commit(bool advance_local) {
    regs_.commit();
    if (staged_out_) {
      out_ = *staged_out_;
      staged_out_.reset();
    }
    if (advance_local) local_.advance();
  }

  /// Drop staged writes (ring stall: the cycle did not happen).
  void discard() noexcept;

  /// Registered systolic output as visible during the current cycle.
  Word out() const noexcept { return out_; }

  RegisterFile& regs() noexcept { return regs_; }
  const RegisterFile& regs() const noexcept { return regs_; }
  LocalControl& local() noexcept { return local_; }
  const LocalControl& local() const noexcept { return local_; }

  /// Clear all architectural state.
  void reset();

 private:
  Word resolve(DnodeSrc src, const DnodeInstr& instr,
               const Inputs& inputs) const {
    switch (src) {
      case DnodeSrc::kZero:
        return 0;
      case DnodeSrc::kIn1:
        return inputs.in1;
      case DnodeSrc::kIn2:
        return inputs.in2;
      case DnodeSrc::kFifo1:
        return inputs.fifo1;
      case DnodeSrc::kFifo2:
        return inputs.fifo2;
      case DnodeSrc::kBus:
        return inputs.bus;
      case DnodeSrc::kHost:
        return inputs.host;
      case DnodeSrc::kImm:
        return instr.imm;
      case DnodeSrc::kR0:
        return regs_.read(0);
      case DnodeSrc::kR1:
        return regs_.read(1);
      case DnodeSrc::kR2:
        return regs_.read(2);
      case DnodeSrc::kR3:
        return regs_.read(3);
      case DnodeSrc::kSrcCount:
        break;
    }
    raise_sim_error("Dnode::resolve: bad operand source");
  }

  RegisterFile regs_;
  LocalControl local_;
  Word out_ = 0;
  std::optional<Word> staged_out_;
};

}  // namespace sring
