// The Dnode (paper §4.1): the coarse-grained reconfigurable block.
//
// 16-bit ALU + hardwired multiplier (single-cycle MAC), a 4x16-bit
// register file with master-slave timing, a registered systolic output,
// and the local control unit for stand-alone mode.  One Dnode executes
// exactly one microinstruction per clock cycle.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "core/local_control.hpp"
#include "core/register_file.hpp"
#include "isa/dnode_instr.hpp"

namespace sring {

class Dnode {
 public:
  /// Operand values resolved by the upstream switch for this cycle.
  struct Inputs {
    Word in1 = 0;
    Word in2 = 0;
    Word fifo1 = 0;
    Word fifo2 = 0;
    Word bus = 0;
    Word host = 0;  ///< word popped for a direct `host` operand source
  };

  /// What the instruction produced this cycle (register/output writes
  /// are staged internally; bus/host effects are the caller's job).
  struct Effects {
    bool executed = false;  ///< true for any op other than NOP
    Word result = 0;
    bool out_en = false;
    bool bus_en = false;
    bool host_en = false;
  };

  /// Evaluate `instr` with this cycle's inputs.  Register and output
  /// writes are staged; nothing is visible until commit().
  Effects execute(const DnodeInstr& instr, const Inputs& inputs);

  /// Clock edge: apply staged writes.  `advance_local` additionally
  /// steps the local control unit's counter (local-mode Dnodes).
  void commit(bool advance_local);

  /// Drop staged writes (ring stall: the cycle did not happen).
  void discard() noexcept;

  /// Registered systolic output as visible during the current cycle.
  Word out() const noexcept { return out_; }

  RegisterFile& regs() noexcept { return regs_; }
  const RegisterFile& regs() const noexcept { return regs_; }
  LocalControl& local() noexcept { return local_; }
  const LocalControl& local() const noexcept { return local_; }

  /// Clear all architectural state.
  void reset();

 private:
  Word resolve(DnodeSrc src, const DnodeInstr& instr,
               const Inputs& inputs) const;

  RegisterFile regs_;
  LocalControl local_;
  Word out_ = 0;
  std::optional<Word> staged_out_;
};

}  // namespace sring
