#include "core/switch.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace sring {

std::uint64_t FeedbackAddr::encode() const noexcept {
  std::uint64_t w = 0;
  w = deposit_bits(w, 0, 5, pipe);
  w = deposit_bits(w, 5, 4, lane);
  w = deposit_bits(w, 9, 4, depth);
  return w;
}

FeedbackAddr FeedbackAddr::decode(std::uint64_t packed) noexcept {
  FeedbackAddr a;
  a.pipe = static_cast<std::uint8_t>(extract_bits(packed, 0, 5));
  a.lane = static_cast<std::uint8_t>(extract_bits(packed, 5, 4));
  a.depth = static_cast<std::uint8_t>(extract_bits(packed, 9, 4));
  return a;
}

void FeedbackAddr::check_in_range(std::size_t pipes, std::size_t lanes,
                                  std::size_t fb_depth) const {
  check(pipe < pipes, "Ring: feedback pipe out of range");
  check(lane < lanes, "FeedbackPipeline::read: lane out of range");
  check(depth < fb_depth, "FeedbackPipeline::read: depth out of range");
}

PortRoute PortRoute::prev(std::uint8_t lane) noexcept {
  PortRoute r;
  r.kind = RouteKind::kPrev;
  r.lane = lane;
  return r;
}

PortRoute PortRoute::host() noexcept {
  PortRoute r;
  r.kind = RouteKind::kHost;
  return r;
}

PortRoute PortRoute::feedback(FeedbackAddr a) noexcept {
  PortRoute r;
  r.kind = RouteKind::kFeedback;
  r.fb = a;
  return r;
}

PortRoute PortRoute::bus() noexcept {
  PortRoute r;
  r.kind = RouteKind::kBus;
  return r;
}

namespace {

std::uint64_t encode_port(const PortRoute& p) {
  std::uint64_t arg = 0;
  switch (p.kind) {
    case RouteKind::kPrev:
      arg = p.lane;
      break;
    case RouteKind::kFeedback:
      arg = p.fb.encode();
      break;
    default:
      break;
  }
  std::uint64_t w = 0;
  w = deposit_bits(w, 0, 3, static_cast<std::uint64_t>(p.kind));
  w = deposit_bits(w, 3, 13, arg);
  return w;
}

PortRoute decode_port(std::uint64_t field) {
  const auto kind = extract_bits(field, 0, 3);
  check(kind < static_cast<std::uint64_t>(RouteKind::kKindCount),
        "SwitchRoute::decode: bad route kind");
  PortRoute p;
  p.kind = static_cast<RouteKind>(kind);
  const std::uint64_t arg = extract_bits(field, 3, 13);
  switch (p.kind) {
    case RouteKind::kPrev:
      p.lane = static_cast<std::uint8_t>(arg & 0xFu);
      break;
    case RouteKind::kFeedback:
      p.fb = FeedbackAddr::decode(arg);
      break;
    default:
      break;
  }
  return p;
}

std::string port_to_string(const PortRoute& p) {
  switch (p.kind) {
    case RouteKind::kZero:
      return "zero";
    case RouteKind::kPrev:
      return "prev" + std::to_string(p.lane);
    case RouteKind::kHost:
      return "host";
    case RouteKind::kFeedback:
      return "fb(" + std::to_string(p.fb.pipe) + "," +
             std::to_string(p.fb.lane) + "," + std::to_string(p.fb.depth) +
             ")";
    case RouteKind::kBus:
      return "bus";
    case RouteKind::kKindCount:
      break;
  }
  return "?";
}

}  // namespace

std::uint64_t SwitchRoute::encode() const {
  std::uint64_t w = 0;
  w = deposit_bits(w, 0, 16, encode_port(in1));
  w = deposit_bits(w, 16, 16, encode_port(in2));
  w = deposit_bits(w, 32, 13, fifo1.encode());
  w = deposit_bits(w, 45, 13, fifo2.encode());
  w = deposit_bits(w, 58, 1, host_out_en ? 1 : 0);
  w = deposit_bits(w, 59, 4, host_out_lane);
  return w;
}

SwitchRoute SwitchRoute::decode(std::uint64_t word) {
  SwitchRoute r;
  r.in1 = decode_port(extract_bits(word, 0, 16));
  r.in2 = decode_port(extract_bits(word, 16, 16));
  r.fifo1 = FeedbackAddr::decode(extract_bits(word, 32, 13));
  r.fifo2 = FeedbackAddr::decode(extract_bits(word, 45, 13));
  r.host_out_en = extract_bits(word, 58, 1) != 0;
  r.host_out_lane = static_cast<std::uint8_t>(extract_bits(word, 59, 4));
  return r;
}

std::string SwitchRoute::to_string() const {
  std::string s =
      "in1=" + port_to_string(in1) + " in2=" + port_to_string(in2);
  s += " fifo1=fb(" + std::to_string(fifo1.pipe) + "," +
       std::to_string(fifo1.lane) + "," + std::to_string(fifo1.depth) + ")";
  s += " fifo2=fb(" + std::to_string(fifo2.pipe) + "," +
       std::to_string(fifo2.lane) + "," + std::to_string(fifo2.depth) + ")";
  if (host_out_en) s += " hostout=prev" + std::to_string(host_out_lane);
  return s;
}

}  // namespace sring
