#include "core/register_file.hpp"

#include "common/error.hpp"

namespace sring {

Word RegisterFile::read(std::size_t index) const {
  check(index < kDnodeRegCount, "RegisterFile::read: index out of range");
  return regs_[index];
}

void RegisterFile::stage_write(std::size_t index, Word value) {
  check(index < kDnodeRegCount,
        "RegisterFile::stage_write: index out of range");
  check(!staged_.has_value(),
        "RegisterFile::stage_write: double write in one cycle");
  staged_ = {index, value};
}

void RegisterFile::commit() noexcept {
  if (staged_) {
    regs_[staged_->first] = staged_->second;
    staged_.reset();
  }
}

void RegisterFile::poke(std::size_t index, Word value) {
  check(index < kDnodeRegCount, "RegisterFile::poke: index out of range");
  regs_[index] = value;
}

}  // namespace sring
