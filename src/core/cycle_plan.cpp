#include "core/cycle_plan.hpp"

#include "common/error.hpp"
#include "core/local_control.hpp"

namespace sring {

namespace {

std::size_t upstream_of(const RingGeometry& geom, std::size_t layer) noexcept {
  return (layer + geom.layers - 1) % geom.layers;
}

std::size_t lcm_of(std::size_t a, std::size_t b) noexcept {
  std::size_t x = a;
  std::size_t y = b;
  while (y != 0) {
    const std::size_t t = x % y;
    x = y;
    y = t;
  }
  return a / x * b;
}

/// Compile one microinstruction against its switch route.  Performs
/// exactly the validation the interpreter does on a non-stalled cycle:
/// for a non-NOP instruction both input routes and both fifo addresses
/// are range-checked whether or not the instruction reads them (the
/// interpreter samples all four unconditionally), while operand
/// resolution — and host pops — happen only for sources the
/// instruction consumes.
PlannedSlot compile_slot(const RingGeometry& geom, const DnodeInstr& instr,
                         const SwitchRoute& route, std::size_t up_layer) {
  PlannedSlot ps;
  ps.instr = instr;
  ps.nop = instr.op == DnodeOp::kNop;
  if (ps.nop) return ps;  // the interpreter skips routing for NOP
  ps.is_mac = instr.op == DnodeOp::kMac || instr.op == DnodeOp::kMsu;

  const auto compile_port = [&](const PortRoute& p, DnodeSrc src,
                                PlannedSlot::Port& kind, std::uint16_t& prev,
                                FeedbackAddr& fb) {
    switch (p.kind) {
      case RouteKind::kZero:
      case RouteKind::kHost:
      case RouteKind::kBus:
        break;
      case RouteKind::kPrev:
        check(p.lane < geom.lanes, "Ring: route lane out of range");
        break;
      case RouteKind::kFeedback:
        p.fb.check_in_range(geom.switch_count(), geom.lanes, geom.fb_depth);
        break;
      case RouteKind::kKindCount:
        throw SimError("Ring: bad route kind");
    }
    if (!instr_reads(instr, src)) return;  // operand unused: stays kZero
    switch (p.kind) {
      case RouteKind::kZero:
        break;
      case RouteKind::kPrev:
        kind = PlannedSlot::Port::kPrev;
        prev = static_cast<std::uint16_t>(up_layer * geom.lanes + p.lane);
        break;
      case RouteKind::kHost:
        kind = PlannedSlot::Port::kHost;
        ++ps.pops;
        break;
      case RouteKind::kFeedback:
        kind = PlannedSlot::Port::kFeedback;
        fb = p.fb;
        break;
      case RouteKind::kBus:
        kind = PlannedSlot::Port::kBus;
        break;
      case RouteKind::kKindCount:
        break;
    }
  };
  compile_port(route.in1, DnodeSrc::kIn1, ps.in1, ps.in1_prev, ps.in1_fb);
  compile_port(route.in2, DnodeSrc::kIn2, ps.in2, ps.in2_prev, ps.in2_fb);

  route.fifo1.check_in_range(geom.switch_count(), geom.lanes, geom.fb_depth);
  route.fifo2.check_in_range(geom.switch_count(), geom.lanes, geom.fb_depth);
  ps.read_fifo1 = instr_reads(instr, DnodeSrc::kFifo1);
  ps.read_fifo2 = instr_reads(instr, DnodeSrc::kFifo2);
  ps.fifo1 = route.fifo1;
  ps.fifo2 = route.fifo2;

  if (instr_reads(instr, DnodeSrc::kHost)) {
    ps.direct_pop = true;
    ++ps.pops;
  }
  return ps;
}

}  // namespace

void compile_cycle_plan(const RingGeometry& geom, const ConfigMemory& cfg,
                        const std::vector<Dnode>& dnodes, CyclePlan& plan) {
  const std::size_t n = geom.dnode_count();
  plan.valid = false;
  plan.static_pops = 0;
  plan.superstep_period = 1;
  plan.dnodes.assign(n, PlannedDnode{});
  plan.local_dnodes.clear();
  plan.global_dnodes.clear();
  plan.exec_dnodes.clear();
  plan.host_taps.clear();

  for (std::size_t layer = 0; layer < geom.layers; ++layer) {
    const std::size_t up = upstream_of(geom, layer);
    for (std::size_t lane = 0; lane < geom.lanes; ++lane) {
      const std::size_t i = layer * geom.lanes + lane;
      PlannedDnode& pd = plan.dnodes[i];
      const SwitchRoute& route = cfg.switch_route(layer, lane);
      pd.is_local = cfg.dnode_mode(i) == DnodeMode::kLocal;
      if (pd.is_local) {
        plan.local_dnodes.push_back(static_cast<std::uint16_t>(i));
        const LocalControl& lc = dnodes[i].local();
        // The counter never exceeds LIMIT (writes clamp, advance
        // wraps), so slots above it are unreachable and stay NOP.
        for (std::size_t s = 0; s <= lc.limit(); ++s) {
          pd.local[s] = compile_slot(geom, lc.instr_at(s), route, up);
          pd.active = pd.active || !pd.local[s].nop;
        }
        pd.local_len = static_cast<std::uint8_t>(lc.limit() + 1);
        if (plan.superstep_period != 0) {
          plan.superstep_period =
              lcm_of(plan.superstep_period, pd.local_len);
          if (plan.superstep_period > kMaxSuperstepPeriod) {
            plan.superstep_period = 0;  // schedule too long to unroll
          }
        }
      } else {
        plan.global_dnodes.push_back(static_cast<std::uint16_t>(i));
        pd.global = compile_slot(geom, cfg.dnode_instr(i), route, up);
        pd.active = !pd.global.nop;
        plan.static_pops += pd.global.pops;
      }
      if (pd.active) {
        plan.exec_dnodes.push_back(static_cast<std::uint16_t>(i));
      }
    }
  }

  // Host-out taps fire independently of the downstream instruction.
  for (std::size_t s = 0; s < geom.switch_count(); ++s) {
    for (std::size_t lane = 0; lane < geom.lanes; ++lane) {
      const SwitchRoute& route = cfg.switch_route(s, lane);
      if (!route.host_out_en) continue;
      check(route.host_out_lane < geom.lanes,
            "Ring: host-out lane out of range");
      HostTapPlan tap;
      tap.src = static_cast<std::uint32_t>(upstream_of(geom, s) * geom.lanes +
                                           route.host_out_lane);
      tap.sw = static_cast<std::uint32_t>(s);
      plan.host_taps.push_back(tap);
    }
  }
}

}  // namespace sring
