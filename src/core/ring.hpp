// The Ring operating layer (paper §4.2).
//
// `layers` Dnode layers of `lanes` Dnodes each, closed into a ring.
// Switch s routes data from layer s-1 (mod layers) into layer s and
// owns the feedback pipeline that latches layer s-1's outputs every
// clock edge.
//
// Per-cycle evaluation order (one call to step()):
//   1. every Dnode's microinstruction is fetched from the configuration
//      memory (global mode) or its local control unit (local mode) — a
//      Dnode entering local mode this cycle fetches slot 0;
//   2. the host-FIFO pops required by this cycle are counted; if the
//      input FIFO cannot satisfy them the whole ring stalls (systolic
//      back-pressure) and NO state advances — not the local counters,
//      not the mode-transition tracking, not any statistic.  A stalled
//      cycle is a pure retry: re-issuing it later behaves exactly as if
//      the stall never happened;
//   3. switches resolve each Dnode's in1/in2/fifo1/fifo2 operands from
//      the upstream output registers (previous edge), the feedback
//      pipelines, the bus, or freshly popped host words (pop order:
//      layer-ascending, lane-ascending, port order in1, in2, direct
//      host operand);
//   4. all Dnodes execute combinationally and stage their writes;
//   5. commit: mode transitions take architectural effect (a Dnode
//      entering local mode resets its counter), register files and
//      output registers latch, local counters advance, every feedback
//      pipeline latches its upstream layer's pre-edge output vector,
//      switch host-out taps and Dnode hostEn results append to the
//      host output stream.
//
// Cycle-plan cache: when the configuration (ConfigMemory generation +
// local-control programs) was observed stable across one step boundary,
// the Ring compiles it into a CyclePlan and executes subsequent cycles
// from the plan — same architectural semantics, none of the per-cycle
// re-interpretation.  Any configuration write invalidates the plan and
// the next step falls back to the interpreter, so hardware multiplexing
// (rewriting configware every cycle) never pays a recompile.  Set the
// SRING_NO_PLAN_CACHE environment variable (any non-empty value, read
// at Ring construction) or call set_plan_cache_enabled(false) to force
// the interpreter; outputs and architectural statistics are bit-exact
// either way, only the plan counters differ.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/host_fifo.hpp"
#include "core/config_memory.hpp"
#include "core/cycle_plan.hpp"
#include "core/dnode.hpp"
#include "core/feedback_pipeline.hpp"
#include "core/switch.hpp"

namespace sring {

class Ring {
 public:
  explicit Ring(const RingGeometry& g);

  const RingGeometry& geometry() const noexcept { return geom_; }

  /// Outcome of one clock cycle.
  struct CycleResult {
    bool stalled = false;          ///< host input underflow: no state change
    unsigned ops = 0;              ///< Dnode instructions executed (non-NOP)
    unsigned arith_ops = 0;        ///< arithmetic operations (MAC/MSU = 2)
    unsigned host_words_in = 0;    ///< words popped from the input FIFO
    unsigned host_words_out = 0;   ///< words pushed to the output stream
    std::optional<Word> bus_drive; ///< bus value driven by a Dnode, if any
  };

  /// Advance one clock cycle.  `bus` is the shared-bus value visible to
  /// the Dnodes this cycle; host traffic uses the given FIFOs.
  CycleResult step(const ConfigMemory& cfg, Word bus,
                   HostFifo& host_in, std::vector<Word>& host_out);

  /// Host-FIFO depth histogram probe handed into run_planned(): the
  /// System's per-cycle depth sample, so fused cycles record exactly
  /// the histogram per-cycle execution would.  `lut` maps a clamped
  /// depth (index 0..lut_max) to a bucket counter in `counts`.
  struct HostDepthProbe {
    std::uint64_t* counts = nullptr;
    const std::uint8_t* lut = nullptr;
    std::size_t lut_max = 0;
  };

  /// Outcome of one fused superstep (run_planned()): per-cycle tallies
  /// accumulated over every executed cycle and flushed once.
  struct SuperstepResult {
    std::uint64_t cycles = 0;       ///< non-stalled cycles executed
    std::uint64_t ops = 0;
    std::uint64_t arith_ops = 0;
    std::uint64_t host_words_in = 0;
    std::uint64_t host_words_out = 0;
    /// host_out.size() observed at the top of the last executed cycle —
    /// what a per-cycle host mirror (one tick behind) would have
    /// published after that cycle.
    std::size_t out_size_at_last_top = 0;
    std::optional<Word> bus_drive;  ///< drive from the final cycle, if any
  };

  /// Superstep engine: execute up to `max_cycles` consecutive cycles
  /// straight from the compiled plan in one fused loop — plan-validity
  /// check, mode sync and local-slot bookkeeping hoisted out, the
  /// schedule unrolled over the local-program period.  Returns
  /// cycles == 0 (and touches nothing) unless the plan is valid and
  /// current; breaks back to the caller exactly at an impending stall
  /// (the stall cycle itself is NOT executed — the per-cycle path
  /// replays it), after any cycle that drives the bus (the new value
  /// must be visible next cycle), and once host_out reached
  /// `host_out_stop` with the per-cycle host-visibility lag (size at
  /// the top of the previous cycle; pass SIZE_MAX for no stop — the
  /// caller must have admitted the first cycle against its own stop
  /// condition).  Architectural state, outputs and statistics are
  /// bit-identical with the same cycles run through step().
  SuperstepResult run_planned(const ConfigMemory& cfg, Word bus,
                              HostFifo& host_in,
                              std::vector<Word>& host_out,
                              std::uint64_t max_cycles,
                              std::size_t host_out_stop,
                              const HostDepthProbe& probe);

  // --- state access ---------------------------------------------------
  Dnode& dnode(std::size_t layer, std::size_t lane);
  const Dnode& dnode(std::size_t layer, std::size_t lane) const;
  Dnode& dnode_flat(std::size_t index);
  const Dnode& dnode_flat(std::size_t index) const;

  const FeedbackPipeline& pipeline(std::size_t sw) const;

  /// Write a local-control register of a Dnode (controller WRLOC path).
  /// Invalidates the compiled cycle plan.
  void write_local(std::size_t dnode_index, std::size_t slot,
                   std::uint64_t value);

  /// Cumulative executed-instruction count per Dnode (utilization).
  const std::vector<std::uint64_t>& ops_per_dnode() const noexcept {
    return ops_per_dnode_;
  }

  // --- instrumentation (observation only, reset() clears) -------------
  /// MAC/MSU instructions per Dnode (the rest of ops_per_dnode is the
  /// plain-ALU mix).
  const std::vector<std::uint64_t>& mac_ops_per_dnode() const noexcept {
    return mac_ops_per_dnode_;
  }
  /// Non-stalled cycles each Dnode spent in local (stand-alone) mode.
  const std::vector<std::uint64_t>& local_cycles_per_dnode()
      const noexcept {
    return local_cycles_per_dnode_;
  }
  /// Non-stalled cycles each Dnode spent under global configuration.
  const std::vector<std::uint64_t>& global_cycles_per_dnode()
      const noexcept {
    return global_cycles_per_dnode_;
  }
  /// Host-out words forwarded by each switch's tap.
  const std::vector<std::uint64_t>& host_out_words_per_switch()
      const noexcept {
    return host_out_words_per_switch_;
  }
  /// Feedback reads per pipeline.
  const std::vector<std::uint64_t>& fb_reads_per_pipe() const noexcept {
    return fb_reads_per_pipe_;
  }
  /// Feedback reads per pipeline by depth, stride geometry().fb_depth:
  /// entry [pipe * fb_depth + depth] counts reads of that pipe at that
  /// depth.
  const std::vector<std::uint64_t>& fb_read_depth_counts() const noexcept {
    return fb_read_depth_counts_;
  }
  std::uint64_t bus_drives() const noexcept { return bus_drives_; }
  /// Cycles in which more than one Dnode drove the shared bus (the
  /// highest Dnode index won; the others were lost drives).
  std::uint64_t bus_conflicts() const noexcept { return bus_conflicts_; }

  // --- cycle-plan cache -----------------------------------------------
  /// Cycle plans compiled since construction/reset.
  std::uint64_t plan_compiles() const noexcept { return plan_compiles_; }
  /// Cycles executed from an already-compiled plan.
  std::uint64_t plan_hits() const noexcept { return plan_hits_; }
  /// Compiled plans discarded because the configuration changed.
  std::uint64_t plan_invalidations() const noexcept {
    return plan_invalidations_;
  }
  bool plan_cache_enabled() const noexcept { return plan_enabled_; }
  /// Superstep dispatches (run_planned() calls that executed >= 1
  /// cycle) and total cycles they covered.  Observability only: these
  /// are the ONLY counters allowed to differ between superstep and
  /// per-cycle execution.
  std::uint64_t superstep_dispatches() const noexcept {
    return superstep_dispatches_;
  }
  std::uint64_t superstep_cycles() const noexcept {
    return superstep_cycles_;
  }
  /// Enable/disable the cycle-plan cache at runtime (A/B comparisons).
  /// Disabling drops any compiled plan without counting an
  /// invalidation — it is a tooling action, not a configuration write.
  void set_plan_cache_enabled(bool enabled) noexcept;
  /// Bumped by every write_local(); part of the plan invalidation key.
  std::uint64_t local_generation() const noexcept {
    return local_generation_;
  }

  // --- last-cycle views for event tracing ------------------------------
  // Valid immediately after a non-stalled step(); the System's event
  // emitter is the only intended consumer.
  std::span<const Dnode::Effects> last_effects() const noexcept {
    return effects_;
  }
  const std::vector<const DnodeInstr*>& last_fetched() const noexcept {
    return fetched_;
  }
  const std::vector<bool>& last_is_local() const noexcept {
    return is_local_;
  }

  /// Clear all architectural state (configuration memory is separate).
  /// Also drops the compiled plan and zeroes the plan counters.
  void reset();

 private:
  std::size_t flat_index(std::size_t layer, std::size_t lane) const;
  std::size_t upstream_layer(std::size_t layer) const noexcept;

  Word read_feedback(const FeedbackAddr& addr) const;

  /// Record one feedback read actually consumed by an instruction.
  void note_fb_read(const FeedbackAddr& addr);

  /// Reference path: re-interpret ConfigMemory + local programs.
  CycleResult step_interpreted(const ConfigMemory& cfg, Word bus,
                               HostFifo& host_in,
                               std::vector<Word>& host_out);
  /// Fast path: execute from the compiled plan (plan_ must be valid).
  CycleResult step_planned(Word bus, HostFifo& host_in,
                           std::vector<Word>& host_out);
  /// Clock-edge tail shared by both paths: capture pre-edge outputs,
  /// commit every Dnode, latch the feedback pipelines.
  void commit_edge();
  /// Dnode hostEn pushes and bus drives (after commit_edge()).
  void drain_effects(CycleResult& result, std::vector<Word>& host_out);

  RingGeometry geom_;
  std::vector<Dnode> dnodes_;              // [layer * lanes + lane]
  std::vector<FeedbackPipeline> pipes_;    // one per switch / layer
  std::vector<DnodeMode> last_mode_;       // mode at last NON-stalled cycle
  std::vector<std::uint64_t> ops_per_dnode_;
  std::vector<std::uint64_t> mac_ops_per_dnode_;
  std::vector<std::uint64_t> local_cycles_per_dnode_;
  std::vector<std::uint64_t> global_cycles_per_dnode_;
  std::vector<std::uint64_t> host_out_words_per_switch_;
  std::vector<std::uint64_t> fb_reads_per_pipe_;
  std::vector<std::uint64_t> fb_read_depth_counts_;  // [pipe*fb_depth+depth]
  std::uint64_t bus_drives_ = 0;
  std::uint64_t bus_conflicts_ = 0;

  // Cycle-plan cache.  A plan is current while (cfg uid, cfg
  // generation, local_generation_) match the values stamped into it;
  // the last_cfg_* trackers implement the compile-on-stability
  // heuristic (compile only after the same configuration was seen
  // across one step boundary, so configware rewritten every cycle runs
  // the interpreter with zero recompile overhead).
  CyclePlan plan_;
  bool plan_enabled_ = true;
  bool mode_synced_ = false;     // planned path applied mode transitions
  std::uint64_t local_generation_ = 0;
  std::uint64_t last_cfg_uid_ = 0;  // 0: nothing seen (uids start at 1)
  std::uint64_t last_cfg_gen_ = 0;
  std::uint64_t last_local_gen_ = 0;
  std::uint64_t plan_compiles_ = 0;
  std::uint64_t plan_hits_ = 0;
  std::uint64_t plan_invalidations_ = 0;

  // Per-cycle scratch (members to avoid per-step allocations).
  struct PortNeed {
    bool in1_host = false;
    bool in2_host = false;
    bool direct_host = false;
  };
  std::vector<const DnodeInstr*> fetched_;
  std::vector<bool> is_local_;
  std::vector<PortNeed> needs_;
  std::vector<Dnode::Effects> effects_;
  std::vector<Word> pre_outs_;             // [layer * lanes + lane]
  std::vector<std::uint8_t> local_slot_;   // planned path: slot per Dnode

  // Superstep scratch (reused across dispatches) + counters.
  struct SuperExec {
    std::uint16_t dnode;
    const PlannedSlot* slot;
  };
  std::vector<SuperExec> ss_exec_;       // non-NOP slots, phase-major
  std::vector<std::uint32_t> ss_begin_;  // [period+1] offsets into ss_exec_
  std::vector<std::uint32_t> ss_pops_;   // [period] host pops per phase
  std::vector<std::uint32_t> ss_out_;    // ss_exec_ indices w/ host/bus en
  std::vector<std::uint32_t> ss_out_begin_;  // [period+1] into ss_out_
  std::vector<std::uint16_t> ss_active_; // Dnodes live during a superstep
  std::uint64_t superstep_dispatches_ = 0;
  std::uint64_t superstep_cycles_ = 0;
};

}  // namespace sring
