// The Ring operating layer (paper §4.2).
//
// `layers` Dnode layers of `lanes` Dnodes each, closed into a ring.
// Switch s routes data from layer s-1 (mod layers) into layer s and
// owns the feedback pipeline that latches layer s-1's outputs every
// clock edge.
//
// Per-cycle evaluation order (one call to step()):
//   1. every Dnode's microinstruction is fetched from the configuration
//      memory (global mode) or its local control unit (local mode) — a
//      Dnode entering local mode this cycle fetches slot 0;
//   2. the host-FIFO pops required by this cycle are counted; if the
//      input FIFO cannot satisfy them the whole ring stalls (systolic
//      back-pressure) and NO state advances — not the local counters,
//      not the mode-transition tracking, not any statistic.  A stalled
//      cycle is a pure retry: re-issuing it later behaves exactly as if
//      the stall never happened;
//   3. switches resolve each Dnode's in1/in2/fifo1/fifo2 operands from
//      the upstream output registers (previous edge), the feedback
//      pipelines, the bus, or freshly popped host words (pop order:
//      layer-ascending, lane-ascending, port order in1, in2, direct
//      host operand);
//   4. all Dnodes execute combinationally and stage their writes;
//   5. commit: mode transitions take architectural effect (a Dnode
//      entering local mode resets its counter), register files and
//      output registers latch, local counters advance, every feedback
//      pipeline latches its upstream layer's pre-edge output vector,
//      switch host-out taps and Dnode hostEn results append to the
//      host output stream.
//
// Cycle-plan cache: compiled CyclePlans are cached in a small bounded
// pool keyed by configuration *content* — a hash of the live
// configuration bytes plus the local-control programs — not by write
// generation.  A configuration write detaches the current plan, but if
// the resulting content was seen before (hardware multiplexing:
// configware pages pulsed in rotation, or a word rewritten with the
// byte-identical value), the cached plan re-attaches in O(1) instead
// of recompiling.  Unknown content is interpreted and compiled on its
// second sighting.  On top of the cache, the Ring watches the sequence
// of plan attachments: a periodic rotation (period capped like the
// superstep LCM) is fused so each detach predicts its successor and
// verifies it by provenance in O(1) — no hashing, no lookup.  Outputs
// and architectural statistics are bit-exact with the interpreter; only
// the ring.plan.* counters differ.  Set the SRING_NO_PLAN_CACHE
// environment variable (any non-empty value, read at Ring
// construction) or call set_plan_cache_enabled(false) to force the
// interpreter.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/host_fifo.hpp"
#include "core/config_memory.hpp"
#include "core/cycle_plan.hpp"
#include "core/dnode.hpp"
#include "core/feedback_pipeline.hpp"
#include "core/switch.hpp"

namespace sring {

class Ring {
 public:
  explicit Ring(const RingGeometry& g);

  const RingGeometry& geometry() const noexcept { return geom_; }

  /// Outcome of one clock cycle.
  struct CycleResult {
    bool stalled = false;          ///< host input underflow: no state change
    unsigned ops = 0;              ///< Dnode instructions executed (non-NOP)
    unsigned arith_ops = 0;        ///< arithmetic operations (MAC/MSU = 2)
    unsigned host_words_in = 0;    ///< words popped from the input FIFO
    unsigned host_words_out = 0;   ///< words pushed to the output stream
    std::optional<Word> bus_drive; ///< bus value driven by a Dnode, if any
  };

  /// Advance one clock cycle.  `bus` is the shared-bus value visible to
  /// the Dnodes this cycle; host traffic uses the given FIFOs.
  CycleResult step(const ConfigMemory& cfg, Word bus,
                   HostFifo& host_in, std::vector<Word>& host_out);

  /// Host-FIFO depth histogram probe handed into run_planned(): the
  /// System's per-cycle depth sample, so fused cycles record exactly
  /// the histogram per-cycle execution would.  `lut` maps a clamped
  /// depth (index 0..lut_max) to a bucket counter in `counts`.
  struct HostDepthProbe {
    std::uint64_t* counts = nullptr;
    const std::uint8_t* lut = nullptr;
    std::size_t lut_max = 0;
  };

  /// Outcome of one fused superstep (run_planned()): per-cycle tallies
  /// accumulated over every executed cycle and flushed once.
  struct SuperstepResult {
    std::uint64_t cycles = 0;       ///< non-stalled cycles executed
    std::uint64_t ops = 0;
    std::uint64_t arith_ops = 0;
    std::uint64_t host_words_in = 0;
    std::uint64_t host_words_out = 0;
    /// host_out.size() observed at the top of the last executed cycle —
    /// what a per-cycle host mirror (one tick behind) would have
    /// published after that cycle.
    std::size_t out_size_at_last_top = 0;
    std::optional<Word> bus_drive;  ///< drive from the final cycle, if any
  };

  /// Superstep engine: execute up to `max_cycles` consecutive cycles
  /// straight from the compiled plan in one fused loop — plan-validity
  /// check, mode sync and local-slot bookkeeping hoisted out, the
  /// schedule unrolled over the local-program period.  Returns
  /// cycles == 0 (and touches nothing) unless the plan is valid and
  /// current; breaks back to the caller exactly at an impending stall
  /// (the stall cycle itself is NOT executed — the per-cycle path
  /// replays it), after any cycle that drives the bus (the new value
  /// must be visible next cycle), and once host_out reached
  /// `host_out_stop` with the per-cycle host-visibility lag (size at
  /// the top of the previous cycle; pass SIZE_MAX for no stop — the
  /// caller must have admitted the first cycle against its own stop
  /// condition).  Architectural state, outputs and statistics are
  /// bit-identical with the same cycles run through step().
  SuperstepResult run_planned(const ConfigMemory& cfg, Word bus,
                              HostFifo& host_in,
                              std::vector<Word>& host_out,
                              std::uint64_t max_cycles,
                              std::size_t host_out_stop,
                              const HostDepthProbe& probe);

  // --- state access ---------------------------------------------------
  Dnode& dnode(std::size_t layer, std::size_t lane);
  const Dnode& dnode(std::size_t layer, std::size_t lane) const;
  Dnode& dnode_flat(std::size_t index);
  const Dnode& dnode_flat(std::size_t index) const;

  const FeedbackPipeline& pipeline(std::size_t sw) const;

  /// Write a local-control register of a Dnode (controller WRLOC path).
  /// Invalidates the compiled cycle plan.
  void write_local(std::size_t dnode_index, std::size_t slot,
                   std::uint64_t value);

  /// Cumulative executed-instruction count per Dnode (utilization).
  const std::vector<std::uint64_t>& ops_per_dnode() const noexcept {
    return ops_per_dnode_;
  }

  // --- instrumentation (observation only, reset() clears) -------------
  /// MAC/MSU instructions per Dnode (the rest of ops_per_dnode is the
  /// plain-ALU mix).
  const std::vector<std::uint64_t>& mac_ops_per_dnode() const noexcept {
    return mac_ops_per_dnode_;
  }
  /// Non-stalled cycles each Dnode spent in local (stand-alone) mode.
  const std::vector<std::uint64_t>& local_cycles_per_dnode()
      const noexcept {
    return local_cycles_per_dnode_;
  }
  /// Non-stalled cycles each Dnode spent under global configuration.
  const std::vector<std::uint64_t>& global_cycles_per_dnode()
      const noexcept {
    return global_cycles_per_dnode_;
  }
  /// Host-out words forwarded by each switch's tap.
  const std::vector<std::uint64_t>& host_out_words_per_switch()
      const noexcept {
    return host_out_words_per_switch_;
  }
  /// Feedback reads per pipeline.
  const std::vector<std::uint64_t>& fb_reads_per_pipe() const noexcept {
    return fb_reads_per_pipe_;
  }
  /// Feedback reads per pipeline by depth, stride geometry().fb_depth:
  /// entry [pipe * fb_depth + depth] counts reads of that pipe at that
  /// depth.
  const std::vector<std::uint64_t>& fb_read_depth_counts() const noexcept {
    return fb_read_depth_counts_;
  }
  std::uint64_t bus_drives() const noexcept { return bus_drives_; }
  /// Cycles in which more than one Dnode drove the shared bus (the
  /// highest Dnode index won; the others were lost drives).
  std::uint64_t bus_conflicts() const noexcept { return bus_conflicts_; }

  // --- cycle-plan cache -----------------------------------------------
  /// Bound on cached plans.  Eviction is LRU by attachment; the bound
  /// covers page-rotation kernels (one entry per pulsed page) with
  /// room to spare, while capping memory at a few tens of KB.
  static constexpr std::size_t kPlanCacheCapacity = 16;

  /// Cycle plans compiled since construction/reset — one per *distinct*
  /// configuration content, not one per rewrite.
  std::uint64_t plan_compiles() const noexcept { return plan_compiles_; }
  /// Cycles executed from a compiled plan (attached or re-attached).
  std::uint64_t plan_hits() const noexcept { return plan_hits_; }
  /// Times the attached plan was detached because the configuration
  /// changed.  plan_invalidations - plan_content_hits is the true miss
  /// count (content never seen compiled before).
  std::uint64_t plan_invalidations() const noexcept {
    return plan_invalidations_;
  }
  /// Detachments recovered by re-attaching a cached plan whose content
  /// key matched the rewritten configuration — the cycles that were
  /// recompiles (or interpreter fallbacks) before the content-keyed
  /// cache.  Subset of plan_hits.
  std::uint64_t plan_content_hits() const noexcept {
    return plan_content_hits_;
  }
  /// Cache entries discarded to stay within kPlanCacheCapacity.
  std::uint64_t plan_evictions() const noexcept { return plan_evictions_; }
  /// Periodic plan-attachment sequences recognized and fused.
  std::uint64_t plan_seq_fusions() const noexcept {
    return plan_seq_fusions_;
  }
  /// Re-attachments served by sequence prediction (O(1) provenance
  /// check, no hash/lookup).  Subset of plan_content_hits.
  std::uint64_t plan_seq_hits() const noexcept { return plan_seq_hits_; }
  bool plan_cache_enabled() const noexcept { return plan_enabled_; }
  /// Superstep dispatches (run_planned() calls that executed >= 1
  /// cycle) and total cycles they covered.  Observability only: these
  /// are the ONLY counters allowed to differ between superstep and
  /// per-cycle execution.
  std::uint64_t superstep_dispatches() const noexcept {
    return superstep_dispatches_;
  }
  std::uint64_t superstep_cycles() const noexcept {
    return superstep_cycles_;
  }
  /// Enable/disable the cycle-plan cache at runtime (A/B comparisons).
  /// Disabling detaches the current plan without counting an
  /// invalidation — it is a tooling action, not a configuration write.
  void set_plan_cache_enabled(bool enabled) noexcept;
  /// Bumped by every write_local(); part of the plan invalidation key.
  std::uint64_t local_generation() const noexcept {
    return local_generation_;
  }

  // --- last-cycle views for event tracing ------------------------------
  // Valid immediately after a non-stalled step(); the System's event
  // emitter is the only intended consumer.  The planned path maintains
  // the full per-Dnode views only while trace mode is on (the System
  // toggles it with the sink) — with tracing off it skips inactive
  // Dnodes entirely.
  std::span<const Dnode::Effects> last_effects() const noexcept {
    return effects_;
  }
  const std::vector<const DnodeInstr*>& last_fetched() const noexcept {
    return fetched_;
  }
  const std::vector<bool>& last_is_local() const noexcept {
    return is_local_;
  }
  /// Keep the per-Dnode trace views (last_effects/last_fetched) exact
  /// on the planned path.  The System sets this together with its
  /// event sink.
  void set_trace_views(bool on) noexcept { trace_views_ = on; }

  /// Clear all architectural state (configuration memory is separate).
  /// Also drops the whole plan cache and zeroes the plan counters.
  void reset();

  /// Clear architectural state but KEEP the compiled plan cache — the
  /// pooled-rerun fast path.  Cached plans re-attach on the rerun only
  /// after their content key is re-verified against the live
  /// configuration (provenance hints are dropped, so the first
  /// re-attachment per entry does a full content compare), which makes
  /// a rerun of a different program a clean miss.  Counters are zeroed
  /// and the sequence fusion state cleared; outputs and architectural
  /// statistics of a rerun are bit-identical to a fresh System, only
  /// the ring.plan.* counters reflect the warm cache.
  void reset_for_rerun();

 private:
  /// One cached compiled plan, keyed by configuration content.
  struct PlanCacheEntry {
    std::uint64_t key_hash = 0;  ///< content_hash(cfg) mixed w/ local hash
    /// Full content snapshot backing the hash: live instruction words,
    /// widened mode bytes, route words, then per-Dnode local limit +
    /// raw slots.  Collision guard — a hash match attaches only after
    /// this compares equal (or the provenance hint proves identity).
    std::vector<std::uint64_t> content;
    // Provenance hint: the content is byte-identical to the live image
    // whenever the same ConfigMemory (uid) has the same immutable page
    // applied and no local-control write happened since — an O(1)
    // identity proof that skips the content compare.  src_page == -1
    // (word-written image) never matches.
    std::uint64_t src_uid = 0;
    std::ptrdiff_t src_page = -1;
    std::uint64_t src_local_gen = 0;
    std::uint32_t sightings = 0;  ///< compile on the second sighting
    std::uint64_t last_use = 0;   ///< LRU clock for eviction
    bool compiled = false;
    CyclePlan plan;
  };

  std::size_t flat_index(std::size_t layer, std::size_t lane) const;
  std::size_t upstream_layer(std::size_t layer) const noexcept;

  Word read_feedback(const FeedbackAddr& addr) const;

  /// Record one feedback read actually consumed by an instruction.
  void note_fb_read(const FeedbackAddr& addr);

  /// Reference path: re-interpret ConfigMemory + local programs.
  CycleResult step_interpreted(const ConfigMemory& cfg, Word bus,
                               HostFifo& host_in,
                               std::vector<Word>& host_out);
  /// Fast path: execute one cycle from a compiled plan.
  CycleResult step_planned(const CyclePlan& plan, Word bus,
                           HostFifo& host_in, std::vector<Word>& host_out);
  /// Clock-edge tail of the interpreter: capture pre-edge outputs,
  /// commit every Dnode, latch the feedback pipelines.
  void commit_edge();
  /// Dnode hostEn pushes and bus drives (after commit_edge()).
  void drain_effects(CycleResult& result, std::vector<Word>& host_out);

  // --- plan cache internals -------------------------------------------
  /// Hash of the local-control content (limits + raw slots), cached
  /// per local_generation_.
  std::uint64_t local_content_hash();
  /// Combined content key of the live configuration.
  std::uint64_t live_key_hash(const ConfigMemory& cfg);
  /// Append the full live content (see PlanCacheEntry::content).
  void build_content(const ConfigMemory& cfg,
                     std::vector<std::uint64_t>& out) const;
  bool content_matches(const ConfigMemory& cfg,
                       const std::vector<std::uint64_t>& content) const;
  bool hint_matches(const PlanCacheEntry& e,
                    const ConfigMemory& cfg) const noexcept {
    return e.src_page >= 0 && e.src_uid == cfg.uid() &&
           e.src_page == cfg.live_page() &&
           e.src_local_gen == local_generation_;
  }
  /// Find the entry for the live content (hash + hint-or-content
  /// verify), or nullptr.
  PlanCacheEntry* find_entry(const ConfigMemory& cfg, std::uint64_t key);
  /// Shared architectural-state reset (Dnodes, pipes, statistics).
  void reset_arch_state();
  /// Insert a fresh entry for the live content, evicting the LRU entry
  /// at capacity.  Returns the (possibly reused) entry.
  PlanCacheEntry* insert_entry(const ConfigMemory& cfg, std::uint64_t key);
  /// Make `e` the attached plan: restamp the validity key, refresh the
  /// provenance hint, reset mode sync, record the attachment in the
  /// sequence history.
  void attach_plan(PlanCacheEntry* e, const ConfigMemory& cfg);
  /// Record an attachment in the history and try to detect a periodic
  /// sequence (no-op while fused).
  void note_attach(PlanCacheEntry* e);
  void unfuse() noexcept;

  RingGeometry geom_;
  std::vector<Dnode> dnodes_;              // [layer * lanes + lane]
  std::vector<FeedbackPipeline> pipes_;    // one per switch / layer
  std::vector<DnodeMode> last_mode_;       // mode at last NON-stalled cycle
  std::vector<std::uint64_t> ops_per_dnode_;
  std::vector<std::uint64_t> mac_ops_per_dnode_;
  std::vector<std::uint64_t> local_cycles_per_dnode_;
  std::vector<std::uint64_t> global_cycles_per_dnode_;
  std::vector<std::uint64_t> host_out_words_per_switch_;
  std::vector<std::uint64_t> fb_reads_per_pipe_;
  std::vector<std::uint64_t> fb_read_depth_counts_;  // [pipe*fb_depth+depth]
  std::uint64_t bus_drives_ = 0;
  std::uint64_t bus_conflicts_ = 0;

  // Plan cache (see header comment).  current_plan_ is the attached
  // entry; its plan is current while the stamped (cfg uid, cfg
  // generation, local_generation_) match the live values.
  std::vector<std::unique_ptr<PlanCacheEntry>> plan_cache_;
  PlanCacheEntry* current_plan_ = nullptr;
  std::uint64_t plan_use_clock_ = 0;
  bool plan_enabled_ = true;
  bool mode_synced_ = false;     // planned path applied mode transitions
  bool pre_outs_valid_ = false;  // pre_outs_[i] == dnodes_[i].out()
  bool trace_views_ = false;     // maintain full effects_/fetched_
  std::uint64_t local_generation_ = 0;
  std::uint64_t local_hash_ = 0;
  std::uint64_t local_hash_gen_ = ~std::uint64_t{0};
  // Sequence fusion: history of recent attachments while hunting for a
  // period; the fused sequence and its cursor afterwards.
  std::vector<PlanCacheEntry*> plan_history_;
  std::vector<PlanCacheEntry*> seq_;
  std::size_t seq_pos_ = 0;
  bool seq_fused_ = false;
  std::uint64_t plan_compiles_ = 0;
  std::uint64_t plan_hits_ = 0;
  std::uint64_t plan_invalidations_ = 0;
  std::uint64_t plan_content_hits_ = 0;
  std::uint64_t plan_evictions_ = 0;
  std::uint64_t plan_seq_fusions_ = 0;
  std::uint64_t plan_seq_hits_ = 0;

  // Per-cycle scratch (members to avoid per-step allocations).
  struct PortNeed {
    bool in1_host = false;
    bool in2_host = false;
    bool direct_host = false;
  };
  std::vector<const DnodeInstr*> fetched_;
  std::vector<bool> is_local_;
  std::vector<PortNeed> needs_;
  std::vector<Dnode::Effects> effects_;
  std::vector<Word> pre_outs_;             // [layer * lanes + lane]
  std::vector<std::uint8_t> local_slot_;   // planned path: slot per Dnode
  std::vector<std::uint16_t> exec_scratch_;  // planned path: executed Dnodes

  // Superstep scratch (reused across dispatches) + counters.
  struct SuperExec {
    std::uint16_t dnode;
    const PlannedSlot* slot;
  };
  std::vector<SuperExec> ss_exec_;       // non-NOP slots, phase-major
  std::vector<std::uint32_t> ss_begin_;  // [period+1] offsets into ss_exec_
  std::vector<std::uint32_t> ss_pops_;   // [period] host pops per phase
  std::vector<std::uint32_t> ss_out_;    // ss_exec_ indices w/ host/bus en
  std::vector<std::uint32_t> ss_out_begin_;  // [period+1] into ss_out_
  std::vector<std::uint16_t> ss_active_; // Dnodes live during a superstep
  std::uint64_t superstep_dispatches_ = 0;
  std::uint64_t superstep_cycles_ = 0;
};

}  // namespace sring
