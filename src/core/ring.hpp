// The Ring operating layer (paper §4.2).
//
// `layers` Dnode layers of `lanes` Dnodes each, closed into a ring.
// Switch s routes data from layer s-1 (mod layers) into layer s and
// owns the feedback pipeline that latches layer s-1's outputs every
// clock edge.
//
// Per-cycle evaluation order (one call to step()):
//   1. every Dnode's microinstruction is fetched from the configuration
//      memory (global mode) or its local control unit (local mode) — a
//      Dnode entering local mode this cycle fetches slot 0;
//   2. the host-FIFO pops required by this cycle are counted; if the
//      input FIFO cannot satisfy them the whole ring stalls (systolic
//      back-pressure) and NO state advances — not the local counters,
//      not the mode-transition tracking, not any statistic.  A stalled
//      cycle is a pure retry: re-issuing it later behaves exactly as if
//      the stall never happened;
//   3. switches resolve each Dnode's in1/in2/fifo1/fifo2 operands from
//      the upstream output registers (previous edge), the feedback
//      pipelines, the bus, or freshly popped host words (pop order:
//      layer-ascending, lane-ascending, port order in1, in2, direct
//      host operand);
//   4. all Dnodes execute combinationally and stage their writes;
//   5. commit: mode transitions take architectural effect (a Dnode
//      entering local mode resets its counter), register files and
//      output registers latch, local counters advance, every feedback
//      pipeline latches its upstream layer's pre-edge output vector,
//      switch host-out taps and Dnode hostEn results append to the
//      host output stream.
//
// Cycle-plan cache: when the configuration (ConfigMemory generation +
// local-control programs) was observed stable across one step boundary,
// the Ring compiles it into a CyclePlan and executes subsequent cycles
// from the plan — same architectural semantics, none of the per-cycle
// re-interpretation.  Any configuration write invalidates the plan and
// the next step falls back to the interpreter, so hardware multiplexing
// (rewriting configware every cycle) never pays a recompile.  Set the
// SRING_NO_PLAN_CACHE environment variable (any non-empty value, read
// at Ring construction) or call set_plan_cache_enabled(false) to force
// the interpreter; outputs and architectural statistics are bit-exact
// either way, only the plan counters differ.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "core/config_memory.hpp"
#include "core/cycle_plan.hpp"
#include "core/dnode.hpp"
#include "core/feedback_pipeline.hpp"
#include "core/switch.hpp"

namespace sring {

class Ring {
 public:
  explicit Ring(const RingGeometry& g);

  const RingGeometry& geometry() const noexcept { return geom_; }

  /// Outcome of one clock cycle.
  struct CycleResult {
    bool stalled = false;          ///< host input underflow: no state change
    unsigned ops = 0;              ///< Dnode instructions executed (non-NOP)
    unsigned arith_ops = 0;        ///< arithmetic operations (MAC/MSU = 2)
    unsigned host_words_in = 0;    ///< words popped from the input FIFO
    unsigned host_words_out = 0;   ///< words pushed to the output stream
    std::optional<Word> bus_drive; ///< bus value driven by a Dnode, if any
  };

  /// Advance one clock cycle.  `bus` is the shared-bus value visible to
  /// the Dnodes this cycle; host traffic uses the given FIFOs.
  CycleResult step(const ConfigMemory& cfg, Word bus,
                   std::deque<Word>& host_in, std::vector<Word>& host_out);

  // --- state access ---------------------------------------------------
  Dnode& dnode(std::size_t layer, std::size_t lane);
  const Dnode& dnode(std::size_t layer, std::size_t lane) const;
  Dnode& dnode_flat(std::size_t index);
  const Dnode& dnode_flat(std::size_t index) const;

  const FeedbackPipeline& pipeline(std::size_t sw) const;

  /// Write a local-control register of a Dnode (controller WRLOC path).
  /// Invalidates the compiled cycle plan.
  void write_local(std::size_t dnode_index, std::size_t slot,
                   std::uint64_t value);

  /// Cumulative executed-instruction count per Dnode (utilization).
  const std::vector<std::uint64_t>& ops_per_dnode() const noexcept {
    return ops_per_dnode_;
  }

  // --- instrumentation (observation only, reset() clears) -------------
  /// MAC/MSU instructions per Dnode (the rest of ops_per_dnode is the
  /// plain-ALU mix).
  const std::vector<std::uint64_t>& mac_ops_per_dnode() const noexcept {
    return mac_ops_per_dnode_;
  }
  /// Non-stalled cycles each Dnode spent in local (stand-alone) mode.
  const std::vector<std::uint64_t>& local_cycles_per_dnode()
      const noexcept {
    return local_cycles_per_dnode_;
  }
  /// Non-stalled cycles each Dnode spent under global configuration.
  const std::vector<std::uint64_t>& global_cycles_per_dnode()
      const noexcept {
    return global_cycles_per_dnode_;
  }
  /// Host-out words forwarded by each switch's tap.
  const std::vector<std::uint64_t>& host_out_words_per_switch()
      const noexcept {
    return host_out_words_per_switch_;
  }
  /// Feedback reads per pipeline.
  const std::vector<std::uint64_t>& fb_reads_per_pipe() const noexcept {
    return fb_reads_per_pipe_;
  }
  /// Feedback reads per pipeline by depth, stride geometry().fb_depth:
  /// entry [pipe * fb_depth + depth] counts reads of that pipe at that
  /// depth.
  const std::vector<std::uint64_t>& fb_read_depth_counts() const noexcept {
    return fb_read_depth_counts_;
  }
  std::uint64_t bus_drives() const noexcept { return bus_drives_; }
  /// Cycles in which more than one Dnode drove the shared bus (the
  /// highest Dnode index won; the others were lost drives).
  std::uint64_t bus_conflicts() const noexcept { return bus_conflicts_; }

  // --- cycle-plan cache -----------------------------------------------
  /// Cycle plans compiled since construction/reset.
  std::uint64_t plan_compiles() const noexcept { return plan_compiles_; }
  /// Cycles executed from an already-compiled plan.
  std::uint64_t plan_hits() const noexcept { return plan_hits_; }
  /// Compiled plans discarded because the configuration changed.
  std::uint64_t plan_invalidations() const noexcept {
    return plan_invalidations_;
  }
  bool plan_cache_enabled() const noexcept { return plan_enabled_; }
  /// Enable/disable the cycle-plan cache at runtime (A/B comparisons).
  /// Disabling drops any compiled plan without counting an
  /// invalidation — it is a tooling action, not a configuration write.
  void set_plan_cache_enabled(bool enabled) noexcept;
  /// Bumped by every write_local(); part of the plan invalidation key.
  std::uint64_t local_generation() const noexcept {
    return local_generation_;
  }

  // --- last-cycle views for event tracing ------------------------------
  // Valid immediately after a non-stalled step(); the System's event
  // emitter is the only intended consumer.
  std::span<const Dnode::Effects> last_effects() const noexcept {
    return effects_;
  }
  const std::vector<const DnodeInstr*>& last_fetched() const noexcept {
    return fetched_;
  }
  const std::vector<bool>& last_is_local() const noexcept {
    return is_local_;
  }

  /// Clear all architectural state (configuration memory is separate).
  /// Also drops the compiled plan and zeroes the plan counters.
  void reset();

 private:
  std::size_t flat_index(std::size_t layer, std::size_t lane) const;
  std::size_t upstream_layer(std::size_t layer) const noexcept;

  Word read_feedback(const FeedbackAddr& addr) const;

  /// Record one feedback read actually consumed by an instruction.
  void note_fb_read(const FeedbackAddr& addr);

  /// Reference path: re-interpret ConfigMemory + local programs.
  CycleResult step_interpreted(const ConfigMemory& cfg, Word bus,
                               std::deque<Word>& host_in,
                               std::vector<Word>& host_out);
  /// Fast path: execute from the compiled plan (plan_ must be valid).
  CycleResult step_planned(Word bus, std::deque<Word>& host_in,
                           std::vector<Word>& host_out);
  /// Clock-edge tail shared by both paths: capture pre-edge outputs,
  /// commit every Dnode, latch the feedback pipelines.
  void commit_edge();
  /// Dnode hostEn pushes and bus drives (after commit_edge()).
  void drain_effects(CycleResult& result, std::vector<Word>& host_out);

  RingGeometry geom_;
  std::vector<Dnode> dnodes_;              // [layer * lanes + lane]
  std::vector<FeedbackPipeline> pipes_;    // one per switch / layer
  std::vector<DnodeMode> last_mode_;       // mode at last NON-stalled cycle
  std::vector<std::uint64_t> ops_per_dnode_;
  std::vector<std::uint64_t> mac_ops_per_dnode_;
  std::vector<std::uint64_t> local_cycles_per_dnode_;
  std::vector<std::uint64_t> global_cycles_per_dnode_;
  std::vector<std::uint64_t> host_out_words_per_switch_;
  std::vector<std::uint64_t> fb_reads_per_pipe_;
  std::vector<std::uint64_t> fb_read_depth_counts_;  // [pipe*fb_depth+depth]
  std::uint64_t bus_drives_ = 0;
  std::uint64_t bus_conflicts_ = 0;

  // Cycle-plan cache.  A plan is current while (cfg uid, cfg
  // generation, local_generation_) match the values stamped into it;
  // the last_cfg_* trackers implement the compile-on-stability
  // heuristic (compile only after the same configuration was seen
  // across one step boundary, so configware rewritten every cycle runs
  // the interpreter with zero recompile overhead).
  CyclePlan plan_;
  bool plan_enabled_ = true;
  bool mode_synced_ = false;     // planned path applied mode transitions
  std::uint64_t local_generation_ = 0;
  std::uint64_t last_cfg_uid_ = 0;  // 0: nothing seen (uids start at 1)
  std::uint64_t last_cfg_gen_ = 0;
  std::uint64_t last_local_gen_ = 0;
  std::uint64_t plan_compiles_ = 0;
  std::uint64_t plan_hits_ = 0;
  std::uint64_t plan_invalidations_ = 0;

  // Per-cycle scratch (members to avoid per-step allocations).
  struct PortNeed {
    bool in1_host = false;
    bool in2_host = false;
    bool direct_host = false;
  };
  std::vector<const DnodeInstr*> fetched_;
  std::vector<bool> is_local_;
  std::vector<PortNeed> needs_;
  std::vector<Dnode::Effects> effects_;
  std::vector<Word> pre_outs_;             // [layer * lanes + lane]
  std::vector<std::uint8_t> local_slot_;   // planned path: slot per Dnode
};

}  // namespace sring
