#include "core/local_control.hpp"

#include "common/error.hpp"

namespace sring {

void LocalControl::write(std::size_t slot, std::uint64_t value) {
  if (slot < kLocalProgramSlots) {
    decoded_[slot] = DnodeInstr::decode(value);  // validates eagerly
    slots_[slot] = value;
    return;
  }
  if (slot == kLimitSlot) {
    limit_ = static_cast<std::uint8_t>(value & 0x7u);
    if (counter_ > limit_) counter_ = 0;
    return;
  }
  if (slot == kResetSlot) {
    counter_ = 0;
    return;
  }
  throw SimError("LocalControl::write: bad slot index");
}

const DnodeInstr& LocalControl::current() const {
  return decoded_[counter_];
}

const DnodeInstr& LocalControl::instr_at(std::size_t slot) const {
  check(slot < kLocalProgramSlots,
        "LocalControl::instr_at: slot out of range");
  return decoded_[slot];
}

void LocalControl::advance() noexcept {
  counter_ = counter_ >= limit_ ? 0 : static_cast<std::uint8_t>(counter_ + 1);
}

}  // namespace sring
