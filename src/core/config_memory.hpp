// Configuration layer (paper §3).
//
// Holds the live configuration of the operating layer: one 48-bit
// microinstruction and an execution mode per Dnode, and one route word
// per (switch, downstream lane).  The configuration controller rewrites
// it word-by-word (WRCFG/WRMODE/WRSW) or swaps in a preloaded full
// snapshot ("page") in a single cycle (PAGE/PAGER) — the mechanism that
// realizes the paper's "change up to the entire content each clock
// cycle".
//
// A page swap does not copy the page: the live image is a reference to
// the applied page until the next word write materializes a private
// copy (copy-on-write).  Page swaps are the hot operation of
// hardware-multiplexed kernels, so they also carry a precomputed
// content hash and memoized per-switch route-change deltas — the
// observable semantics (accessors, generation, statistics) are
// identical to eager copying.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/switch.hpp"
#include "isa/dnode_instr.hpp"

namespace sring {

/// Dnode execution mode (paper §4.1).
enum class DnodeMode : std::uint8_t {
  kGlobal = 0,  ///< microinstruction supplied by the configuration layer
  kLocal = 1,   ///< microinstruction supplied by the local control unit
};

/// Shape of a ring instance: `layers` Dnode layers of `lanes` Dnodes,
/// closed into a ring; one switch (and feedback pipeline) per layer.
struct RingGeometry {
  std::size_t layers = 4;
  std::size_t lanes = 2;
  std::size_t fb_depth = 16;  ///< feedback pipeline depth (1..16)

  std::size_t dnode_count() const noexcept { return layers * lanes; }
  std::size_t switch_count() const noexcept { return layers; }

  bool operator==(const RingGeometry&) const = default;

  /// Validate against the route-word field widths (<=32 layers,
  /// <=16 lanes, fb_depth 1..16).
  void validate() const;
};

/// One complete configuration snapshot.
struct ConfigPage {
  std::vector<std::uint64_t> dnode_instr;  ///< encoded microinstructions
  std::vector<std::uint8_t> dnode_mode;    ///< DnodeMode values
  std::vector<std::uint64_t> switch_route; ///< [switch * lanes + lane]

  bool operator==(const ConfigPage&) const = default;

  static ConfigPage zeroed(const RingGeometry& g);
};

/// Process-unique identity of a live configuration image.  Copying or
/// moving a ConfigMemory mints a fresh uid for the destination, so a
/// (uid, generation) pair observed once can never accidentally match a
/// different object later — the Ring's compiled cycle-plan cache keys
/// its validity on exactly this pair.
class ConfigIdentity {
 public:
  ConfigIdentity() noexcept : uid_(next()) {}
  ConfigIdentity(const ConfigIdentity&) noexcept : uid_(next()) {}
  ConfigIdentity(ConfigIdentity&&) noexcept : uid_(next()) {}
  ConfigIdentity& operator=(const ConfigIdentity&) noexcept {
    uid_ = next();
    return *this;
  }
  ConfigIdentity& operator=(ConfigIdentity&&) noexcept {
    uid_ = next();
    return *this;
  }

  std::uint64_t value() const noexcept { return uid_; }

 private:
  static std::uint64_t next() noexcept;  // atomic; never returns 0
  std::uint64_t uid_;
};

class ConfigMemory {
 public:
  explicit ConfigMemory(const RingGeometry& g);

  const RingGeometry& geometry() const noexcept { return geom_; }

  // --- cycle-plan cache invalidation key ----------------------------
  /// Process-unique id of this live image (fresh after copy/move).
  std::uint64_t uid() const noexcept { return identity_.value(); }
  /// Bumped by every live-configuration mutation (WRCFG/WRMODE/WRSW,
  /// page swaps, reset_live).  Together with uid() this tells the Ring
  /// whether a compiled cycle plan is still current.
  std::uint64_t generation() const noexcept { return generation_; }

  // --- cycle-plan cache content key ---------------------------------
  /// FNV-1a hash of the live configuration bytes (microinstruction
  /// words, mode bytes, route words).  O(1) while a page is applied
  /// (page hashes are precomputed at add_page); lazily recomputed —
  /// and cached per generation — after word writes.  Two live images
  /// with equal hash are byte-identical up to hash collisions; the
  /// Ring's plan cache verifies candidates against the full content.
  std::uint64_t content_hash() const;
  /// Index of the applied page backing the live image, or -1 when the
  /// live image was modified word-by-word since the last swap (or
  /// never came from a page).  Because pages are immutable once
  /// registered, (uid, live_page) equality is an O(1) proof that two
  /// live images of the same ConfigMemory are byte-identical.
  std::ptrdiff_t live_page() const noexcept { return live_page_; }

  // --- live configuration ------------------------------------------
  // Writes validate eagerly and maintain a decoded shadow of every
  // word, so the per-cycle fetch path never re-decodes.
  void write_dnode_instr(std::size_t dnode, std::uint64_t encoded);
  void write_dnode_mode(std::size_t dnode, DnodeMode mode);
  void write_switch_route(std::size_t sw, std::size_t lane,
                          std::uint64_t encoded);

  const DnodeInstr& dnode_instr(std::size_t dnode) const;
  std::uint64_t dnode_instr_raw(std::size_t dnode) const;
  DnodeMode dnode_mode(std::size_t dnode) const;
  const SwitchRoute& switch_route(std::size_t sw, std::size_t lane) const;

  /// Raw views of the live image for content snapshotting (plan cache).
  const std::vector<std::uint64_t>& live_instr_words() const noexcept {
    return active_raw().dnode_instr;
  }
  const std::vector<std::uint8_t>& live_mode_bytes() const noexcept {
    return active_raw().dnode_mode;
  }
  const std::vector<std::uint64_t>& live_route_words() const noexcept {
    return active_raw().switch_route;
  }

  // --- pages --------------------------------------------------------
  /// Register a page; returns its index.
  std::size_t add_page(ConfigPage page);
  std::size_t page_count() const noexcept { return pages_.size(); }

  /// Apply page `index` to the live configuration (one-cycle swap).
  void apply_page(std::size_t index);

  /// Restore the live configuration (and its instrumentation) to the
  /// freshly-constructed all-NOP state while keeping every registered
  /// page.  This is the runtime's fast-reload path: a pooled System
  /// re-arming the same program skips re-decoding the configware.
  void reset_live();

  /// Number of configuration words rewritten so far (statistics).
  std::uint64_t words_written() const noexcept { return words_written_; }

  // --- route-change instrumentation ---------------------------------
  // A "route change" is a switch route word whose decoded value
  // actually differs after a WRSW or page swap — rewriting a route
  // with its current value does not count.  Observation only; never
  // part of the simulated semantics.
  const std::vector<std::uint64_t>& route_changes_per_switch()
      const noexcept {
    return route_changes_per_switch_;
  }
  std::uint64_t route_changes_total() const noexcept;

 private:
  struct DecodedPage {
    std::vector<DnodeInstr> instr;
    std::vector<SwitchRoute> route;
  };
  static DecodedPage decode_page(const ConfigPage& page);
  static std::uint64_t hash_page(const ConfigPage& page) noexcept;

  /// The raw/decoded image the accessors read: the applied page while
  /// live_page_ >= 0, the private live copy otherwise.
  const ConfigPage& active_raw() const noexcept {
    return live_page_ >= 0 ? pages_[static_cast<std::size_t>(live_page_)]
                           : live_;
  }
  const DecodedPage& active_dec() const noexcept {
    return live_page_ >= 0
               ? pages_decoded_[static_cast<std::size_t>(live_page_)]
               : live_decoded_;
  }
  /// Copy the applied page into the private live image so a word write
  /// can land (copy-on-write materialization).
  void materialize_live();

  RingGeometry geom_;
  ConfigPage live_;
  DecodedPage live_decoded_;
  std::vector<ConfigPage> pages_;
  std::vector<DecodedPage> pages_decoded_;
  std::vector<std::uint64_t> page_hashes_;
  std::ptrdiff_t live_page_ = -1;
  /// Memoized per-switch decoded-route diff counts for (from page, to
  /// page) swaps, keyed from << 32 | to.  Pages are immutable, so a
  /// computed diff never goes stale.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> page_diffs_;
  std::uint64_t words_written_ = 0;
  std::vector<std::uint64_t> route_changes_per_switch_;
  ConfigIdentity identity_;
  std::uint64_t generation_ = 0;
  mutable std::uint64_t live_hash_ = 0;
  mutable std::uint64_t live_hash_gen_ = ~std::uint64_t{0};
};

}  // namespace sring
