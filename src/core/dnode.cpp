#include "core/dnode.hpp"

#include "common/error.hpp"
#include "core/alu.hpp"

namespace sring {

Word Dnode::resolve(DnodeSrc src, const DnodeInstr& instr,
                    const Inputs& inputs) const {
  switch (src) {
    case DnodeSrc::kZero:
      return 0;
    case DnodeSrc::kIn1:
      return inputs.in1;
    case DnodeSrc::kIn2:
      return inputs.in2;
    case DnodeSrc::kFifo1:
      return inputs.fifo1;
    case DnodeSrc::kFifo2:
      return inputs.fifo2;
    case DnodeSrc::kBus:
      return inputs.bus;
    case DnodeSrc::kHost:
      return inputs.host;
    case DnodeSrc::kImm:
      return instr.imm;
    case DnodeSrc::kR0:
      return regs_.read(0);
    case DnodeSrc::kR1:
      return regs_.read(1);
    case DnodeSrc::kR2:
      return regs_.read(2);
    case DnodeSrc::kR3:
      return regs_.read(3);
    case DnodeSrc::kSrcCount:
      break;
  }
  throw SimError("Dnode::resolve: bad operand source");
}

Dnode::Effects Dnode::execute(const DnodeInstr& instr, const Inputs& inputs) {
  Effects eff;
  if (instr.op == DnodeOp::kNop) return eff;

  const Word a = resolve(instr.src_a, instr, inputs);
  const Word b = op_uses_b(instr.op) ? resolve(instr.src_b, instr, inputs)
                                     : Word{0};
  const Word c = op_uses_c(instr.op) ? resolve(instr.src_c, instr, inputs)
                                     : Word{0};
  const Word result = alu_execute(instr.op, a, b, c);

  if (instr.dst != DnodeDst::kNone) {
    regs_.stage_write(dst_reg_index(instr.dst), result);
  }
  if (instr.out_en) {
    staged_out_ = result;
  }
  eff.executed = true;
  eff.result = result;
  eff.out_en = instr.out_en;
  eff.bus_en = instr.bus_en;
  eff.host_en = instr.host_en;
  return eff;
}

void Dnode::commit(bool advance_local) {
  regs_.commit();
  if (staged_out_) {
    out_ = *staged_out_;
    staged_out_.reset();
  }
  if (advance_local) local_.advance();
}

void Dnode::discard() noexcept {
  regs_.discard();
  staged_out_.reset();
}

void Dnode::reset() {
  regs_ = RegisterFile{};
  local_ = LocalControl{};
  out_ = 0;
  staged_out_.reset();
}

}  // namespace sring
