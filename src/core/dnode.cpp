#include "core/dnode.hpp"

namespace sring {

void Dnode::discard() noexcept {
  regs_.discard();
  staged_out_.reset();
}

void Dnode::reset() {
  regs_ = RegisterFile{};
  local_ = LocalControl{};
  out_ = 0;
  staged_out_.reset();
}

}  // namespace sring
