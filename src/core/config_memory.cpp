#include "core/config_memory.hpp"

#include <atomic>

#include "common/error.hpp"

namespace sring {

std::uint64_t ConfigIdentity::next() noexcept {
  // Starts at 1 so that 0 is a safe "matches nothing" sentinel for
  // cached (uid, generation) pairs.
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void RingGeometry::validate() const {
  check(layers >= 1 && layers <= 32,
        "RingGeometry: layers must be in [1, 32]");
  check(lanes >= 1 && lanes <= 16, "RingGeometry: lanes must be in [1, 16]");
  check(fb_depth >= 1 && fb_depth <= 16,
        "RingGeometry: fb_depth must be in [1, 16]");
}

ConfigPage ConfigPage::zeroed(const RingGeometry& g) {
  ConfigPage p;
  p.dnode_instr.assign(g.dnode_count(), 0);
  p.dnode_mode.assign(g.dnode_count(),
                      static_cast<std::uint8_t>(DnodeMode::kGlobal));
  p.switch_route.assign(g.switch_count() * g.lanes, 0);
  return p;
}

ConfigMemory::DecodedPage ConfigMemory::decode_page(const ConfigPage& page) {
  DecodedPage d;
  d.instr.reserve(page.dnode_instr.size());
  for (const auto w : page.dnode_instr) {
    d.instr.push_back(DnodeInstr::decode(w));
  }
  d.route.reserve(page.switch_route.size());
  for (const auto w : page.switch_route) {
    d.route.push_back(SwitchRoute::decode(w));
  }
  return d;
}

ConfigMemory::ConfigMemory(const RingGeometry& g)
    : geom_(g), live_(ConfigPage::zeroed(g)) {
  geom_.validate();
  live_decoded_ = decode_page(live_);
  route_changes_per_switch_.assign(geom_.switch_count(), 0);
}

void ConfigMemory::write_dnode_instr(std::size_t dnode,
                                     std::uint64_t encoded) {
  check(dnode < geom_.dnode_count(),
        "ConfigMemory: dnode index out of range");
  // Decode validates eagerly: a malformed word never lands.
  live_decoded_.instr[dnode] = DnodeInstr::decode(encoded);
  live_.dnode_instr[dnode] = encoded;
  ++words_written_;
  ++generation_;
}

void ConfigMemory::write_dnode_mode(std::size_t dnode, DnodeMode mode) {
  check(dnode < geom_.dnode_count(),
        "ConfigMemory: dnode index out of range");
  live_.dnode_mode[dnode] = static_cast<std::uint8_t>(mode);
  ++words_written_;
  ++generation_;
}

void ConfigMemory::write_switch_route(std::size_t sw, std::size_t lane,
                                      std::uint64_t encoded) {
  check(sw < geom_.switch_count(), "ConfigMemory: switch index out of range");
  check(lane < geom_.lanes, "ConfigMemory: lane index out of range");
  const std::size_t i = sw * geom_.lanes + lane;
  SwitchRoute decoded = SwitchRoute::decode(encoded);  // validates
  if (!(decoded == live_decoded_.route[i])) {
    ++route_changes_per_switch_[sw];
  }
  live_decoded_.route[i] = std::move(decoded);
  live_.switch_route[i] = encoded;
  ++words_written_;
  ++generation_;
}

void ConfigMemory::reset_live() {
  live_ = ConfigPage::zeroed(geom_);
  live_decoded_ = decode_page(live_);
  words_written_ = 0;
  route_changes_per_switch_.assign(geom_.switch_count(), 0);
  ++generation_;  // monotonic within this object: plans never revalidate
}

std::uint64_t ConfigMemory::route_changes_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto c : route_changes_per_switch_) total += c;
  return total;
}

const DnodeInstr& ConfigMemory::dnode_instr(std::size_t dnode) const {
  check(dnode < geom_.dnode_count(),
        "ConfigMemory: dnode index out of range");
  return live_decoded_.instr[dnode];
}

std::uint64_t ConfigMemory::dnode_instr_raw(std::size_t dnode) const {
  check(dnode < geom_.dnode_count(),
        "ConfigMemory: dnode index out of range");
  return live_.dnode_instr[dnode];
}

DnodeMode ConfigMemory::dnode_mode(std::size_t dnode) const {
  check(dnode < geom_.dnode_count(),
        "ConfigMemory: dnode index out of range");
  return static_cast<DnodeMode>(live_.dnode_mode[dnode]);
}

const SwitchRoute& ConfigMemory::switch_route(std::size_t sw,
                                              std::size_t lane) const {
  check(sw < geom_.switch_count(), "ConfigMemory: switch index out of range");
  check(lane < geom_.lanes, "ConfigMemory: lane index out of range");
  return live_decoded_.route[sw * geom_.lanes + lane];
}

std::size_t ConfigMemory::add_page(ConfigPage page) {
  check(page.dnode_instr.size() == geom_.dnode_count() &&
            page.dnode_mode.size() == geom_.dnode_count() &&
            page.switch_route.size() == geom_.switch_count() * geom_.lanes,
        "ConfigMemory::add_page: page shape does not match geometry");
  for (const auto m : page.dnode_mode) {
    check(m <= static_cast<std::uint8_t>(DnodeMode::kLocal),
          "ConfigMemory::add_page: bad mode value");
  }
  pages_decoded_.push_back(decode_page(page));  // validates all words
  pages_.push_back(std::move(page));
  return pages_.size() - 1;
}

void ConfigMemory::apply_page(std::size_t index) {
  check(index < pages_.size(), "ConfigMemory::apply_page: no such page");
  for (std::size_t sw = 0; sw < geom_.switch_count(); ++sw) {
    for (std::size_t lane = 0; lane < geom_.lanes; ++lane) {
      const std::size_t i = sw * geom_.lanes + lane;
      if (!(live_decoded_.route[i] == pages_decoded_[index].route[i])) {
        ++route_changes_per_switch_[sw];
      }
    }
  }
  live_ = pages_[index];
  live_decoded_ = pages_decoded_[index];
  words_written_ += live_.dnode_instr.size() + live_.dnode_mode.size() +
                    live_.switch_route.size();
  ++generation_;
}

}  // namespace sring
