#include "core/config_memory.hpp"

#include <atomic>

#include "common/error.hpp"

namespace sring {

std::uint64_t ConfigIdentity::next() noexcept {
  // Starts at 1 so that 0 is a safe "matches nothing" sentinel for
  // cached (uid, generation) pairs.
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void RingGeometry::validate() const {
  check(layers >= 1 && layers <= 32,
        "RingGeometry: layers must be in [1, 32]");
  check(lanes >= 1 && lanes <= 16, "RingGeometry: lanes must be in [1, 16]");
  check(fb_depth >= 1 && fb_depth <= 16,
        "RingGeometry: fb_depth must be in [1, 16]");
}

ConfigPage ConfigPage::zeroed(const RingGeometry& g) {
  ConfigPage p;
  p.dnode_instr.assign(g.dnode_count(), 0);
  p.dnode_mode.assign(g.dnode_count(),
                      static_cast<std::uint8_t>(DnodeMode::kGlobal));
  p.switch_route.assign(g.switch_count() * g.lanes, 0);
  return p;
}

ConfigMemory::DecodedPage ConfigMemory::decode_page(const ConfigPage& page) {
  DecodedPage d;
  d.instr.reserve(page.dnode_instr.size());
  for (const auto w : page.dnode_instr) {
    d.instr.push_back(DnodeInstr::decode(w));
  }
  d.route.reserve(page.switch_route.size());
  for (const auto w : page.switch_route) {
    d.route.push_back(SwitchRoute::decode(w));
  }
  return d;
}

std::uint64_t ConfigMemory::hash_page(const ConfigPage& page) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix64 = [&h](std::uint64_t w) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ (w & 0xFFu)) * 0x100000001b3ull;
      w >>= 8;
    }
  };
  for (const auto w : page.dnode_instr) mix64(w);
  for (const auto m : page.dnode_mode) {
    h = (h ^ m) * 0x100000001b3ull;
  }
  for (const auto w : page.switch_route) mix64(w);
  return h;
}

ConfigMemory::ConfigMemory(const RingGeometry& g)
    : geom_(g), live_(ConfigPage::zeroed(g)) {
  geom_.validate();
  live_decoded_ = decode_page(live_);
  route_changes_per_switch_.assign(geom_.switch_count(), 0);
}

void ConfigMemory::materialize_live() {
  if (live_page_ < 0) return;
  live_ = pages_[static_cast<std::size_t>(live_page_)];
  live_decoded_ = pages_decoded_[static_cast<std::size_t>(live_page_)];
  live_page_ = -1;
}

std::uint64_t ConfigMemory::content_hash() const {
  if (live_page_ >= 0) {
    return page_hashes_[static_cast<std::size_t>(live_page_)];
  }
  if (live_hash_gen_ != generation_) {
    live_hash_ = hash_page(live_);
    live_hash_gen_ = generation_;
  }
  return live_hash_;
}

void ConfigMemory::write_dnode_instr(std::size_t dnode,
                                     std::uint64_t encoded) {
  check(dnode < geom_.dnode_count(),
        "ConfigMemory: dnode index out of range");
  materialize_live();
  // Decode validates eagerly: a malformed word never lands.
  live_decoded_.instr[dnode] = DnodeInstr::decode(encoded);
  live_.dnode_instr[dnode] = encoded;
  ++words_written_;
  ++generation_;
}

void ConfigMemory::write_dnode_mode(std::size_t dnode, DnodeMode mode) {
  check(dnode < geom_.dnode_count(),
        "ConfigMemory: dnode index out of range");
  materialize_live();
  live_.dnode_mode[dnode] = static_cast<std::uint8_t>(mode);
  ++words_written_;
  ++generation_;
}

void ConfigMemory::write_switch_route(std::size_t sw, std::size_t lane,
                                      std::uint64_t encoded) {
  check(sw < geom_.switch_count(), "ConfigMemory: switch index out of range");
  check(lane < geom_.lanes, "ConfigMemory: lane index out of range");
  materialize_live();
  const std::size_t i = sw * geom_.lanes + lane;
  SwitchRoute decoded = SwitchRoute::decode(encoded);  // validates
  if (!(decoded == live_decoded_.route[i])) {
    ++route_changes_per_switch_[sw];
  }
  live_decoded_.route[i] = std::move(decoded);
  live_.switch_route[i] = encoded;
  ++words_written_;
  ++generation_;
}

void ConfigMemory::reset_live() {
  live_ = ConfigPage::zeroed(geom_);
  live_decoded_ = decode_page(live_);
  live_page_ = -1;
  words_written_ = 0;
  route_changes_per_switch_.assign(geom_.switch_count(), 0);
  ++generation_;  // monotonic within this object: plans never revalidate
}

std::uint64_t ConfigMemory::route_changes_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto c : route_changes_per_switch_) total += c;
  return total;
}

const DnodeInstr& ConfigMemory::dnode_instr(std::size_t dnode) const {
  check(dnode < geom_.dnode_count(),
        "ConfigMemory: dnode index out of range");
  return active_dec().instr[dnode];
}

std::uint64_t ConfigMemory::dnode_instr_raw(std::size_t dnode) const {
  check(dnode < geom_.dnode_count(),
        "ConfigMemory: dnode index out of range");
  return active_raw().dnode_instr[dnode];
}

DnodeMode ConfigMemory::dnode_mode(std::size_t dnode) const {
  check(dnode < geom_.dnode_count(),
        "ConfigMemory: dnode index out of range");
  return static_cast<DnodeMode>(active_raw().dnode_mode[dnode]);
}

const SwitchRoute& ConfigMemory::switch_route(std::size_t sw,
                                              std::size_t lane) const {
  check(sw < geom_.switch_count(), "ConfigMemory: switch index out of range");
  check(lane < geom_.lanes, "ConfigMemory: lane index out of range");
  return active_dec().route[sw * geom_.lanes + lane];
}

std::size_t ConfigMemory::add_page(ConfigPage page) {
  check(page.dnode_instr.size() == geom_.dnode_count() &&
            page.dnode_mode.size() == geom_.dnode_count() &&
            page.switch_route.size() == geom_.switch_count() * geom_.lanes,
        "ConfigMemory::add_page: page shape does not match geometry");
  for (const auto m : page.dnode_mode) {
    check(m <= static_cast<std::uint8_t>(DnodeMode::kLocal),
          "ConfigMemory::add_page: bad mode value");
  }
  pages_decoded_.push_back(decode_page(page));  // validates all words
  page_hashes_.push_back(hash_page(page));
  pages_.push_back(std::move(page));
  return pages_.size() - 1;
}

void ConfigMemory::apply_page(std::size_t index) {
  check(index < pages_.size(), "ConfigMemory::apply_page: no such page");
  const DecodedPage& to = pages_decoded_[index];
  if (live_page_ >= 0) {
    // Page-to-page swap: the per-switch decoded-route diff depends
    // only on the immutable (from, to) pair, so it is computed once
    // and replayed as counter bumps on every later swap.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(live_page_) << 32) |
        static_cast<std::uint64_t>(index);
    auto it = page_diffs_.find(key);
    if (it == page_diffs_.end()) {
      std::vector<std::uint64_t> diffs(geom_.switch_count(), 0);
      const DecodedPage& from = pages_decoded_[static_cast<std::size_t>(
          live_page_)];
      for (std::size_t sw = 0; sw < geom_.switch_count(); ++sw) {
        for (std::size_t lane = 0; lane < geom_.lanes; ++lane) {
          const std::size_t i = sw * geom_.lanes + lane;
          if (!(from.route[i] == to.route[i])) ++diffs[sw];
        }
      }
      it = page_diffs_.emplace(key, std::move(diffs)).first;
    }
    const std::vector<std::uint64_t>& diffs = it->second;
    for (std::size_t sw = 0; sw < geom_.switch_count(); ++sw) {
      route_changes_per_switch_[sw] += diffs[sw];
    }
  } else {
    for (std::size_t sw = 0; sw < geom_.switch_count(); ++sw) {
      for (std::size_t lane = 0; lane < geom_.lanes; ++lane) {
        const std::size_t i = sw * geom_.lanes + lane;
        if (!(live_decoded_.route[i] == to.route[i])) {
          ++route_changes_per_switch_[sw];
        }
      }
    }
  }
  // The live image becomes a reference to the page — no copy; a later
  // word write materializes a private copy first.
  live_page_ = static_cast<std::ptrdiff_t>(index);
  words_written_ += pages_[index].dnode_instr.size() +
                    pages_[index].dnode_mode.size() +
                    pages_[index].switch_route.size();
  ++generation_;
}

}  // namespace sring
