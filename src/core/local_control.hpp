// Dnode local control unit ("stand-alone" mode).
//
// Paper §4.1: nine registers — eight microinstruction registers plus a
// LIMIT register — an up-to-8-state counter and an 8-to-1 multiplexer.
// Each cycle the counter addresses one of the eight instruction
// registers; after LIMIT it wraps to zero, so the Dnode loops over a
// private microprogram of 1..8 steps with no controller involvement.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"
#include "isa/dnode_instr.hpp"

namespace sring {

class LocalControl {
 public:
  /// Slot indices accepted by write(): 0..7 are the microinstruction
  /// registers, kLimitSlot sets LIMIT, kResetSlot resets the counter.
  static constexpr std::size_t kLimitSlot = 8;
  static constexpr std::size_t kResetSlot = 9;

  /// Write one local register.  For kLimitSlot the low 3 bits of
  /// `value` become LIMIT; for kResetSlot the counter is cleared.
  void write(std::size_t slot, std::uint64_t value);

  /// Microinstruction currently selected by the counter (pre-decoded
  /// at write time; the fetch path never re-decodes).
  const DnodeInstr& current() const;

  /// Microinstruction in a specific slot (0..kLocalProgramSlots-1).
  /// Lets the Ring fetch slot 0 for a mode-entry cycle without
  /// touching the counter, and the cycle-plan compiler snapshot the
  /// whole program.
  const DnodeInstr& instr_at(std::size_t slot) const;

  /// Advance the counter (clock edge while the Dnode runs in local
  /// mode): wraps to 0 after reaching LIMIT.
  void advance() noexcept;

  /// Advance the counter by `cycles` clock edges at once — the
  /// superstep engine's end-of-run fixup, equivalent to that many
  /// advance() calls.
  void advance_by(std::uint64_t cycles) noexcept {
    counter_ = static_cast<std::uint8_t>(
        (counter_ + cycles) % (static_cast<std::uint64_t>(limit_) + 1));
  }

  void reset_counter() noexcept { counter_ = 0; }

  std::uint8_t counter() const noexcept { return counter_; }
  std::uint8_t limit() const noexcept { return limit_; }

  /// Raw (encoded) microinstruction registers — the local half of the
  /// plan cache's content key.  Together with limit() this is the
  /// whole architectural content of the unit (the counter is runtime
  /// state, not content).
  const std::array<std::uint64_t, kLocalProgramSlots>& raw_slots()
      const noexcept {
    return slots_;
  }

 private:
  std::array<std::uint64_t, kLocalProgramSlots> slots_{};
  std::array<DnodeInstr, kLocalProgramSlots> decoded_{};
  std::uint8_t limit_ = 0;
  std::uint8_t counter_ = 0;
};

}  // namespace sring
