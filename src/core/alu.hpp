// Combinational Dnode datapath: 16-bit ALU + hardwired multiplier.
//
// The multiplier and the adder can be chained in the same cycle (MAC /
// MSU), which is the paper's "up to two arithmetic operations each
// clock cycle".
#pragma once

#include "common/types.hpp"
#include "isa/dnode_instr.hpp"

namespace sring {

/// Evaluate one Dnode operation.  Pure combinational function: signed
/// two's-complement semantics, results wrap to 16 bits except for the
/// saturating variants (kAdds/kSubs).
Word alu_execute(DnodeOp op, Word a, Word b, Word c) noexcept;

}  // namespace sring
