// Combinational Dnode datapath: 16-bit ALU + hardwired multiplier.
//
// The multiplier and the adder can be chained in the same cycle (MAC /
// MSU), which is the paper's "up to two arithmetic operations each
// clock cycle".
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.hpp"
#include "isa/dnode_instr.hpp"

namespace sring {

/// Evaluate one Dnode operation.  Pure combinational function: signed
/// two's-complement semantics, results wrap to 16 bits except for the
/// saturating variants (kAdds/kSubs).  Defined inline: this is the
/// innermost call of every executed Dnode cycle and must fold into the
/// ring's fused loop without LTO.
inline Word alu_execute(DnodeOp op, Word a, Word b, Word c) noexcept {
  const std::int32_t sa = as_signed(a);
  const std::int32_t sb = as_signed(b);
  const std::int32_t sc = as_signed(c);
  switch (op) {
    case DnodeOp::kNop:
      return 0;
    case DnodeOp::kPass:
      return a;
    case DnodeOp::kAdd:
      return to_word(sa + sb);
    case DnodeOp::kSub:
      return to_word(sa - sb);
    case DnodeOp::kRsub:
      return to_word(sb - sa);
    case DnodeOp::kAdds:
      return to_word_saturated(sa + sb);
    case DnodeOp::kSubs:
      return to_word_saturated(sa - sb);
    case DnodeOp::kMul:
      return to_word(static_cast<std::int64_t>(sa) * sb);
    case DnodeOp::kMulh:
      return to_word((static_cast<std::int64_t>(sa) * sb) >> 16);
    case DnodeOp::kMac:
      return to_word(static_cast<std::int64_t>(sa) * sb + sc);
    case DnodeOp::kMsu:
      return to_word(sc - static_cast<std::int64_t>(sa) * sb);
    case DnodeOp::kAnd:
      return static_cast<Word>(a & b);
    case DnodeOp::kOr:
      return static_cast<Word>(a | b);
    case DnodeOp::kXor:
      return static_cast<Word>(a ^ b);
    case DnodeOp::kNot:
      return static_cast<Word>(~a);
    case DnodeOp::kShl:
      return to_word(static_cast<std::int64_t>(a) << (b & 15u));
    case DnodeOp::kShr:
      return static_cast<Word>(a >> (b & 15u));
    case DnodeOp::kAsr:
      return to_word(sa >> (b & 15u));
    case DnodeOp::kAbs:
      return to_word(sa < 0 ? -sa : sa);  // |-32768| wraps to -32768
    case DnodeOp::kAbsdiff:
      return to_word(sa >= sb ? sa - sb : sb - sa);
    case DnodeOp::kMin:
      return to_word(std::min(sa, sb));
    case DnodeOp::kMax:
      return to_word(std::max(sa, sb));
    case DnodeOp::kCmpeq:
      return a == b ? 1u : 0u;
    case DnodeOp::kCmplt:
      return sa < sb ? 1u : 0u;
    case DnodeOp::kSelect:
      return a != 0 ? b : c;
    case DnodeOp::kOpCount:
      break;
  }
  return 0;
}

}  // namespace sring
