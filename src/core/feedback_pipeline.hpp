// Feedback pipeline (the "reverse dataflow" of paper §4.2).
//
// Each switch owns one: every clock edge it unconditionally latches the
// full output vector of the upstream Dnode layer.  All switches may
// read any pipeline at any depth, which replaces long-distance routing
// and provides the delays recursive filters need.
//
// Depth convention: read(lane, 0) returns the value latched at the most
// recent clock edge, i.e. the upstream output delayed by exactly one
// cycle relative to the direct (PREV) route.  read(lane, d) is delayed
// by d additional cycles.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace sring {

class FeedbackPipeline {
 public:
  FeedbackPipeline(std::size_t lanes, std::size_t depth);

  std::size_t lanes() const noexcept { return lanes_; }
  std::size_t depth() const noexcept { return depth_; }

  /// Read one lane at the given depth (0 = most recently latched).
  Word read(std::size_t lane, std::size_t depth) const;

  /// Unchecked read for pre-validated addresses — the Ring's compiled
  /// cycle-plan path, which proves lane/depth in range at plan-compile
  /// time.  Out-of-range arguments are undefined behaviour here.
  Word read_fast(std::size_t lane, std::size_t depth) const noexcept {
    std::size_t stage = head_ + depth;
    if (stage >= depth_) stage -= depth_;
    return stages_[stage * lanes_ + lane];
  }

  /// Clock edge: latch the upstream layer's output vector.
  void push(const std::vector<Word>& upstream_outputs);

  /// Same, from a raw pointer to `lanes()` words.  Inline: latched once
  /// per switch per cycle inside the ring's fused loop.  The oldest
  /// stage is overwritten and becomes the new depth-0 stage
  /// (conditional decrement, not modulo — a runtime division dominated
  /// the latch cost).
  void push_from(const Word* upstream_outputs) {
    head_ = (head_ == 0 ? depth_ : head_) - 1;
    std::copy(upstream_outputs, upstream_outputs + lanes_,
              stages_.begin() + static_cast<std::ptrdiff_t>(head_ * lanes_));
    ++pushes_;
  }

  /// Clock edges latched since the last reset (instrumentation).
  std::uint64_t pushes() const noexcept { return pushes_; }

  /// Stages holding live (post-reset) data: min(pushes, depth).
  std::size_t occupancy() const noexcept {
    return pushes_ < depth_ ? static_cast<std::size_t>(pushes_) : depth_;
  }

  /// Clear all stages to zero.
  void reset() noexcept;

 private:
  std::size_t lanes_;
  std::size_t depth_;
  std::size_t head_ = 0;                 // index of the depth-0 stage
  std::uint64_t pushes_ = 0;
  std::vector<Word> stages_;             // depth_ x lanes_, ring buffer
};

}  // namespace sring
