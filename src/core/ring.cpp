#include "core/ring.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"
#include "core/local_control.hpp"

namespace sring {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline void fnv_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xFFu;
    h *= kFnvPrime;
  }
}

}  // namespace

Ring::Ring(const RingGeometry& g) : geom_(g) {
  geom_.validate();
  dnodes_.resize(geom_.dnode_count());
  pipes_.reserve(geom_.switch_count());
  for (std::size_t s = 0; s < geom_.switch_count(); ++s) {
    pipes_.emplace_back(geom_.lanes, geom_.fb_depth);
  }
  last_mode_.assign(geom_.dnode_count(), DnodeMode::kGlobal);
  ops_per_dnode_.assign(geom_.dnode_count(), 0);
  mac_ops_per_dnode_.assign(geom_.dnode_count(), 0);
  local_cycles_per_dnode_.assign(geom_.dnode_count(), 0);
  global_cycles_per_dnode_.assign(geom_.dnode_count(), 0);
  host_out_words_per_switch_.assign(geom_.switch_count(), 0);
  fb_reads_per_pipe_.assign(geom_.switch_count(), 0);
  fb_read_depth_counts_.assign(geom_.switch_count() * geom_.fb_depth, 0);
  fetched_.assign(geom_.dnode_count(), nullptr);
  is_local_.assign(geom_.dnode_count(), false);
  needs_.assign(geom_.dnode_count(), {});
  effects_.assign(geom_.dnode_count(), {});
  pre_outs_.assign(geom_.dnode_count(), 0);
  local_slot_.assign(geom_.dnode_count(), 0);
  exec_scratch_.reserve(geom_.dnode_count());
  const char* no_plan = std::getenv("SRING_NO_PLAN_CACHE");
  plan_enabled_ = no_plan == nullptr || *no_plan == '\0';
}

std::size_t Ring::flat_index(std::size_t layer, std::size_t lane) const {
  check(layer < geom_.layers && lane < geom_.lanes,
        "Ring: dnode coordinates out of range");
  return layer * geom_.lanes + lane;
}

std::size_t Ring::upstream_layer(std::size_t layer) const noexcept {
  return (layer + geom_.layers - 1) % geom_.layers;
}

Dnode& Ring::dnode(std::size_t layer, std::size_t lane) {
  // The caller may mutate output registers directly (test harnesses
  // do): the planned path's cached pre-edge vector goes stale.
  pre_outs_valid_ = false;
  return dnodes_[flat_index(layer, lane)];
}

const Dnode& Ring::dnode(std::size_t layer, std::size_t lane) const {
  return dnodes_[flat_index(layer, lane)];
}

Dnode& Ring::dnode_flat(std::size_t index) {
  check(index < dnodes_.size(), "Ring: dnode index out of range");
  pre_outs_valid_ = false;
  return dnodes_[index];
}

const Dnode& Ring::dnode_flat(std::size_t index) const {
  check(index < dnodes_.size(), "Ring: dnode index out of range");
  return dnodes_[index];
}

const FeedbackPipeline& Ring::pipeline(std::size_t sw) const {
  check(sw < pipes_.size(), "Ring: switch index out of range");
  return pipes_[sw];
}

void Ring::write_local(std::size_t dnode_index, std::size_t slot,
                       std::uint64_t value) {
  check(dnode_index < dnodes_.size(), "Ring: dnode index out of range");
  dnodes_[dnode_index].local().write(slot, value);
  ++local_generation_;
}

Word Ring::read_feedback(const FeedbackAddr& addr) const {
  check(addr.pipe < pipes_.size(), "Ring: feedback pipe out of range");
  return pipes_[addr.pipe].read(addr.lane, addr.depth);
}

void Ring::note_fb_read(const FeedbackAddr& addr) {
  ++fb_reads_per_pipe_[addr.pipe];
  ++fb_read_depth_counts_[addr.pipe * geom_.fb_depth + addr.depth];
}

void Ring::set_plan_cache_enabled(bool enabled) noexcept {
  plan_enabled_ = enabled;
  if (!enabled) current_plan_ = nullptr;
}

void Ring::reset_arch_state() {
  for (auto& d : dnodes_) d.reset();
  for (auto& p : pipes_) p.reset();
  last_mode_.assign(geom_.dnode_count(), DnodeMode::kGlobal);
  ops_per_dnode_.assign(geom_.dnode_count(), 0);
  mac_ops_per_dnode_.assign(geom_.dnode_count(), 0);
  local_cycles_per_dnode_.assign(geom_.dnode_count(), 0);
  global_cycles_per_dnode_.assign(geom_.dnode_count(), 0);
  host_out_words_per_switch_.assign(geom_.switch_count(), 0);
  fb_reads_per_pipe_.assign(geom_.switch_count(), 0);
  fb_read_depth_counts_.assign(geom_.switch_count() * geom_.fb_depth, 0);
  bus_drives_ = 0;
  bus_conflicts_ = 0;
  superstep_dispatches_ = 0;
  superstep_cycles_ = 0;
  current_plan_ = nullptr;
  mode_synced_ = false;
  pre_outs_valid_ = false;
  local_generation_ = 0;
  local_hash_gen_ = ~std::uint64_t{0};
  unfuse();
  plan_compiles_ = 0;
  plan_hits_ = 0;
  plan_invalidations_ = 0;
  plan_content_hits_ = 0;
  plan_evictions_ = 0;
  plan_seq_fusions_ = 0;
  plan_seq_hits_ = 0;
}

void Ring::reset() {
  reset_arch_state();
  // Drop the whole plan cache so a reset System replays identically to
  // a fresh one, counters included.
  plan_cache_.clear();
  plan_use_clock_ = 0;
}

void Ring::reset_for_rerun() {
  reset_arch_state();
  // Keep compiled plans but drop their provenance hints: the rerun's
  // configuration is a fresh image (reset_live + reprogramming), so
  // the first re-attachment of every entry must re-verify the full
  // content before the O(1) hint is re-established.  A rerun with a
  // different program therefore misses cleanly.
  for (auto& e : plan_cache_) {
    e->src_uid = 0;
    e->src_page = -1;
  }
}

Ring::CycleResult Ring::step(const ConfigMemory& cfg, Word bus,
                             HostFifo& host_in,
                             std::vector<Word>& host_out) {
  check(cfg.geometry().layers == geom_.layers &&
            cfg.geometry().lanes == geom_.lanes,
        "Ring::step: configuration memory geometry mismatch");

  if (!plan_enabled_) return step_interpreted(cfg, bus, host_in, host_out);

  const std::uint64_t uid = cfg.uid();
  const std::uint64_t gen = cfg.generation();
  if (current_plan_ != nullptr) {
    CyclePlan& plan = current_plan_->plan;
    if (plan.cfg_uid == uid && plan.cfg_generation == gen &&
        plan.local_generation == local_generation_) {
      ++plan_hits_;
      return step_planned(plan, bus, host_in, host_out);
    }
    current_plan_ = nullptr;
    ++plan_invalidations_;
  }

  // The configuration changed.  Fused sequence first: if the rotation
  // was recognized, the predicted successor re-attaches after an O(1)
  // provenance check — no hashing, no cache scan.
  if (seq_fused_) {
    PlanCacheEntry* const pred = seq_[seq_pos_];
    if (hint_matches(*pred, cfg)) {
      seq_pos_ = (seq_pos_ + 1) % seq_.size();
      ++plan_seq_hits_;
      ++plan_content_hits_;
      ++plan_hits_;
      attach_plan(pred, cfg);
      return step_planned(pred->plan, bus, host_in, host_out);
    }
  }

  // Content-keyed lookup: hash the live configuration and scan the
  // cache (hint or full-content verified).
  const std::uint64_t key = live_key_hash(cfg);
  PlanCacheEntry* const e = find_entry(cfg, key);
  if (seq_fused_) {
    // The hint couldn't prove the prediction (e.g. word-written
    // content with no page provenance).  Reconcile with the lookup:
    // the predicted entry keeps the fusion, anything else breaks it.
    if (e != nullptr && e == seq_[seq_pos_]) {
      seq_pos_ = (seq_pos_ + 1) % seq_.size();
    } else {
      unfuse();
    }
  }
  if (e == nullptr) {
    insert_entry(cfg, key)->sightings = 1;
    return step_interpreted(cfg, bus, host_in, host_out);
  }
  if (e->compiled) {
    ++plan_content_hits_;
    ++plan_hits_;
    attach_plan(e, cfg);
    return step_planned(e->plan, bus, host_in, host_out);
  }
  if (++e->sightings >= 2) {
    // Second sighting of this content: compile.  compile throws
    // exactly where the interpreter would reject the configuration at
    // execution time.
    compile_cycle_plan(geom_, cfg, dnodes_, e->plan);
    e->plan.valid = true;
    e->compiled = true;
    ++plan_compiles_;
    attach_plan(e, cfg);
    return step_planned(e->plan, bus, host_in, host_out);
  }
  // First sighting: interpret, compile if the content ever recurs.
  return step_interpreted(cfg, bus, host_in, host_out);
}

// --- plan cache internals ----------------------------------------------

std::uint64_t Ring::local_content_hash() {
  if (local_hash_gen_ == local_generation_) return local_hash_;
  std::uint64_t h = kFnvOffset;
  for (const Dnode& d : dnodes_) {
    const LocalControl& lc = d.local();
    fnv_mix(h, lc.limit());
    for (const std::uint64_t w : lc.raw_slots()) fnv_mix(h, w);
  }
  local_hash_ = h;
  local_hash_gen_ = local_generation_;
  return h;
}

std::uint64_t Ring::live_key_hash(const ConfigMemory& cfg) {
  std::uint64_t h = cfg.content_hash();
  h ^= local_content_hash() + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

void Ring::build_content(const ConfigMemory& cfg,
                         std::vector<std::uint64_t>& out) const {
  const auto& iw = cfg.live_instr_words();
  const auto& mb = cfg.live_mode_bytes();
  const auto& rw = cfg.live_route_words();
  out.reserve(iw.size() + mb.size() + rw.size() +
              dnodes_.size() * (1 + kLocalProgramSlots));
  out.insert(out.end(), iw.begin(), iw.end());
  for (const std::uint8_t b : mb) out.push_back(b);
  out.insert(out.end(), rw.begin(), rw.end());
  for (const Dnode& d : dnodes_) {
    const LocalControl& lc = d.local();
    out.push_back(lc.limit());
    const auto& slots = lc.raw_slots();
    out.insert(out.end(), slots.begin(), slots.end());
  }
}

bool Ring::content_matches(const ConfigMemory& cfg,
                           const std::vector<std::uint64_t>& content) const {
  const auto& iw = cfg.live_instr_words();
  const auto& mb = cfg.live_mode_bytes();
  const auto& rw = cfg.live_route_words();
  const std::size_t total = iw.size() + mb.size() + rw.size() +
                            dnodes_.size() * (1 + kLocalProgramSlots);
  if (content.size() != total) return false;
  std::size_t k = 0;
  for (const std::uint64_t w : iw) {
    if (content[k++] != w) return false;
  }
  for (const std::uint8_t b : mb) {
    if (content[k++] != b) return false;
  }
  for (const std::uint64_t w : rw) {
    if (content[k++] != w) return false;
  }
  for (const Dnode& d : dnodes_) {
    const LocalControl& lc = d.local();
    if (content[k++] != lc.limit()) return false;
    for (const std::uint64_t w : lc.raw_slots()) {
      if (content[k++] != w) return false;
    }
  }
  return true;
}

Ring::PlanCacheEntry* Ring::find_entry(const ConfigMemory& cfg,
                                       std::uint64_t key) {
  for (auto& p : plan_cache_) {
    if (p->key_hash != key) continue;
    if (hint_matches(*p, cfg) || content_matches(cfg, p->content)) {
      // Content verified: (re-)establish the O(1) provenance hint for
      // the next sighting and protect the entry from eviction.
      p->src_uid = cfg.uid();
      p->src_page = cfg.live_page();
      p->src_local_gen = local_generation_;
      p->last_use = ++plan_use_clock_;
      return p.get();
    }
  }
  return nullptr;
}

Ring::PlanCacheEntry* Ring::insert_entry(const ConfigMemory& cfg,
                                         std::uint64_t key) {
  PlanCacheEntry* e = nullptr;
  if (plan_cache_.size() < kPlanCacheCapacity) {
    plan_cache_.push_back(std::make_unique<PlanCacheEntry>());
    e = plan_cache_.back().get();
  } else {
    // Evict the least-recently-attached entry and reuse its storage.
    // The sequence history may reference the victim — drop it.
    e = plan_cache_.front().get();
    for (auto& p : plan_cache_) {
      if (p->last_use < e->last_use) e = p.get();
    }
    ++plan_evictions_;
    unfuse();
    e->compiled = false;
    e->plan.valid = false;
    e->content.clear();
  }
  e->key_hash = key;
  build_content(cfg, e->content);
  e->src_uid = cfg.uid();
  e->src_page = cfg.live_page();
  e->src_local_gen = local_generation_;
  e->sightings = 0;
  e->last_use = ++plan_use_clock_;
  return e;
}

void Ring::attach_plan(PlanCacheEntry* e, const ConfigMemory& cfg) {
  CyclePlan& plan = e->plan;
  plan.cfg_uid = cfg.uid();
  plan.cfg_generation = cfg.generation();
  plan.local_generation = local_generation_;
  e->src_uid = cfg.uid();
  e->src_page = cfg.live_page();
  e->src_local_gen = local_generation_;
  e->last_use = ++plan_use_clock_;
  for (std::size_t i = 0; i < dnodes_.size(); ++i) {
    is_local_[i] = plan.dnodes[i].is_local;
  }
  mode_synced_ = false;
  current_plan_ = e;
  note_attach(e);
}

void Ring::note_attach(PlanCacheEntry* e) {
  if (seq_fused_) return;  // prediction owns the cursor while fused
  plan_history_.push_back(e);
  if (plan_history_.size() > 3 * kMaxSuperstepPeriod) {
    plan_history_.erase(
        plan_history_.begin(),
        plan_history_.end() -
            static_cast<std::ptrdiff_t>(2 * kMaxSuperstepPeriod));
  }
  // Periodic rotation: the last p attachments repeat the p before
  // them.  The inner loop's first compare (current entry vs the one a
  // period ago) prunes almost every candidate period immediately.
  const std::size_t h = plan_history_.size();
  const std::size_t max_p = std::min(kMaxSuperstepPeriod, h / 2);
  for (std::size_t p = 1; p <= max_p; ++p) {
    bool match = true;
    for (std::size_t k = 0; k < p; ++k) {
      if (plan_history_[h - 1 - k] != plan_history_[h - 1 - p - k]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    seq_.assign(plan_history_.end() - static_cast<std::ptrdiff_t>(p),
                plan_history_.end());
    seq_pos_ = 0;
    seq_fused_ = true;
    ++plan_seq_fusions_;
    plan_history_.clear();
    return;
  }
}

void Ring::unfuse() noexcept {
  seq_.clear();
  seq_pos_ = 0;
  seq_fused_ = false;
  plan_history_.clear();
}

// --- cycle execution ----------------------------------------------------

void Ring::commit_edge() {
  const std::size_t n = geom_.dnode_count();
  // Capture pre-edge output vectors: these are what the feedback
  // pipelines and host-out taps latch at this clock edge.
  for (std::size_t i = 0; i < n; ++i) {
    pre_outs_[i] = dnodes_[i].out();
  }
  for (std::size_t i = 0; i < n; ++i) {
    dnodes_[i].commit(is_local_[i]);
  }
  for (std::size_t s = 0; s < geom_.switch_count(); ++s) {
    const std::size_t up = upstream_layer(s);
    pipes_[s].push_from(pre_outs_.data() + up * geom_.lanes);
  }
  pre_outs_valid_ = false;  // pre_outs_ now holds pre-edge values
}

void Ring::drain_effects(CycleResult& result, std::vector<Word>& host_out) {
  const std::size_t n = geom_.dnode_count();
  for (std::size_t i = 0; i < n; ++i) {
    if (effects_[i].executed && effects_[i].host_en) {
      host_out.push_back(effects_[i].result);
      ++result.host_words_out;
    }
    if (effects_[i].executed && effects_[i].bus_en) {
      ++bus_drives_;
      if (result.bus_drive.has_value()) ++bus_conflicts_;
      result.bus_drive = effects_[i].result;
    }
  }
}

Ring::CycleResult Ring::step_interpreted(const ConfigMemory& cfg, Word bus,
                                         HostFifo& host_in,
                                         std::vector<Word>& host_out) {
  const std::size_t n = geom_.dnode_count();

  // Phase 1: fetch.  Mode transitions are observed but NOT committed —
  // a Dnode entering local mode this cycle fetches slot 0 directly, and
  // its counter is reset only once the cycle is known to advance, so a
  // stalled transition cycle leaves every local program untouched.
  for (std::size_t i = 0; i < n; ++i) {
    is_local_[i] = cfg.dnode_mode(i) == DnodeMode::kLocal;
    if (is_local_[i]) {
      fetched_[i] = last_mode_[i] == DnodeMode::kGlobal
                        ? &dnodes_[i].local().instr_at(0)
                        : &dnodes_[i].local().current();
    } else {
      fetched_[i] = &cfg.dnode_instr(i);
    }
  }

  // Phase 2: count the host pops this cycle needs.
  std::size_t pops_needed = 0;
  for (std::size_t layer = 0; layer < geom_.layers; ++layer) {
    for (std::size_t lane = 0; lane < geom_.lanes; ++lane) {
      const std::size_t i = layer * geom_.lanes + lane;
      needs_[i] = PortNeed{};
      const DnodeInstr& instr = *fetched_[i];
      if (instr.op == DnodeOp::kNop) continue;
      const SwitchRoute& route = cfg.switch_route(layer, lane);
      if (route.in1.kind == RouteKind::kHost &&
          instr_reads(instr, DnodeSrc::kIn1)) {
        needs_[i].in1_host = true;
        ++pops_needed;
      }
      if (route.in2.kind == RouteKind::kHost &&
          instr_reads(instr, DnodeSrc::kIn2)) {
        needs_[i].in2_host = true;
        ++pops_needed;
      }
      if (instr_reads(instr, DnodeSrc::kHost)) {
        needs_[i].direct_host = true;
        ++pops_needed;
      }
    }
  }

  CycleResult result;
  if (host_in.size() < pops_needed) {
    result.stalled = true;
    return result;  // systolic back-pressure: nothing advances
  }

  // The cycle advances: commit mode transitions (a Dnode entering
  // local mode restarts its program at slot 0) and record the mode
  // every Dnode ran under.
  for (std::size_t i = 0; i < n; ++i) {
    if (is_local_[i]) {
      if (last_mode_[i] == DnodeMode::kGlobal) {
        dnodes_[i].local().reset_counter();
      }
      last_mode_[i] = DnodeMode::kLocal;
      ++local_cycles_per_dnode_[i];
    } else {
      last_mode_[i] = DnodeMode::kGlobal;
      ++global_cycles_per_dnode_[i];
    }
  }

  // Phase 3+4: route and execute.  Routing reads only pre-edge state
  // (output registers, pipelines, bus), so evaluation order across
  // Dnodes does not matter except for the documented host pop order.
  for (std::size_t layer = 0; layer < geom_.layers; ++layer) {
    const std::size_t up = upstream_layer(layer);
    for (std::size_t lane = 0; lane < geom_.lanes; ++lane) {
      const std::size_t i = layer * geom_.lanes + lane;
      effects_[i] = Dnode::Effects{};
      const DnodeInstr& instr = *fetched_[i];
      if (instr.op == DnodeOp::kNop) continue;
      const SwitchRoute& route = cfg.switch_route(layer, lane);

      Dnode::Inputs in;
      const auto resolve_port = [&](const PortRoute& p,
                                    bool pops) -> Word {
        switch (p.kind) {
          case RouteKind::kZero:
            return 0;
          case RouteKind::kPrev:
            check(p.lane < geom_.lanes, "Ring: route lane out of range");
            return dnodes_[flat_index(up, p.lane)].out();
          case RouteKind::kHost: {
            if (!pops) return 0;
            const Word w = host_in.front();
            host_in.pop_front();
            ++result.host_words_in;
            return w;
          }
          case RouteKind::kFeedback:
            return read_feedback(p.fb);
          case RouteKind::kBus:
            return bus;
          case RouteKind::kKindCount:
            break;
        }
        throw SimError("Ring: bad route kind");
      };

      in.in1 = resolve_port(route.in1, needs_[i].in1_host);
      in.in2 = resolve_port(route.in2, needs_[i].in2_host);
      in.fifo1 = read_feedback(route.fifo1);
      in.fifo2 = read_feedback(route.fifo2);
      in.bus = bus;
      // Feedback-occupancy accounting: only reads the instruction
      // actually consumes (the ports above are sampled regardless).
      if (route.in1.kind == RouteKind::kFeedback &&
          instr_reads(instr, DnodeSrc::kIn1)) {
        note_fb_read(route.in1.fb);
      }
      if (route.in2.kind == RouteKind::kFeedback &&
          instr_reads(instr, DnodeSrc::kIn2)) {
        note_fb_read(route.in2.fb);
      }
      if (instr_reads(instr, DnodeSrc::kFifo1)) note_fb_read(route.fifo1);
      if (instr_reads(instr, DnodeSrc::kFifo2)) note_fb_read(route.fifo2);
      if (needs_[i].direct_host) {
        in.host = host_in.front();
        host_in.pop_front();
        ++result.host_words_in;
      }

      effects_[i] = dnodes_[i].execute(instr, in);
      if (effects_[i].executed) {
        ++result.ops;
        const bool is_mac =
            instr.op == DnodeOp::kMac || instr.op == DnodeOp::kMsu;
        result.arith_ops += is_mac ? 2 : 1;
        ++ops_per_dnode_[i];
        if (is_mac) ++mac_ops_per_dnode_[i];
      }
    }
  }

  // Phase 5: commit, then host output: switch taps first (switch
  // order), then Dnode hostEn results (dnode order).  Bus drive:
  // highest dnode index wins.
  commit_edge();
  for (std::size_t s = 0; s < geom_.switch_count(); ++s) {
    for (std::size_t lane = 0; lane < geom_.lanes; ++lane) {
      const SwitchRoute& route = cfg.switch_route(s, lane);
      if (route.host_out_en) {
        check(route.host_out_lane < geom_.lanes,
              "Ring: host-out lane out of range");
        host_out.push_back(
            pre_outs_[upstream_layer(s) * geom_.lanes + route.host_out_lane]);
        ++result.host_words_out;
        ++host_out_words_per_switch_[s];
      }
    }
  }
  drain_effects(result, host_out);
  return result;
}

Ring::CycleResult Ring::step_planned(const CyclePlan& plan, Word bus,
                                     HostFifo& host_in,
                                     std::vector<Word>& host_out) {
  CycleResult result;

  // Pops this cycle: static (global-mode) schedule plus the current
  // slot of every local program.  A Dnode whose local-mode entry has
  // not committed yet (stall pending) fetches slot 0.
  std::size_t pops_needed = plan.static_pops;
  for (const std::uint16_t i : plan.local_dnodes) {
    const std::uint8_t slot = last_mode_[i] == DnodeMode::kGlobal
                                  ? std::uint8_t{0}
                                  : dnodes_[i].local().counter();
    local_slot_[i] = slot;
    pops_needed += plan.dnodes[i].local[slot].pops;
  }
  if (host_in.size() < pops_needed) {
    result.stalled = true;
    return result;  // systolic back-pressure: nothing advances
  }

  if (!mode_synced_) {
    // First advancing cycle under this attachment: commit mode
    // transitions exactly as the interpreter would.  Modes cannot
    // change while the plan stays attached, so this runs once per
    // attach.
    for (const std::uint16_t i : plan.local_dnodes) {
      if (last_mode_[i] == DnodeMode::kGlobal) {
        dnodes_[i].local().reset_counter();
      }
      last_mode_[i] = DnodeMode::kLocal;
    }
    for (const std::uint16_t i : plan.global_dnodes) {
      last_mode_[i] = DnodeMode::kGlobal;
    }
    mode_synced_ = true;
  }
  for (const std::uint16_t i : plan.local_dnodes) {
    ++local_cycles_per_dnode_[i];
  }
  for (const std::uint16_t i : plan.global_dnodes) {
    ++global_cycles_per_dnode_[i];
  }

  // Standing invariant between planned cycles: pre_outs_[i] mirrors
  // every output register at the top of the cycle, so the edge below
  // needs to refresh only the Dnodes that executed.  Interpreted or
  // fused cycles in between break the invariant and it is rebuilt
  // here once.
  const std::size_t n = dnodes_.size();
  if (!pre_outs_valid_) {
    for (std::size_t i = 0; i < n; ++i) {
      pre_outs_[i] = dnodes_[i].out();
    }
    pre_outs_valid_ = true;
  }

  if (trace_views_) {
    // Event tracing consumes per-Dnode fetch/effect views for ALL
    // Dnodes; keep them exact only when a sink is attached.
    for (std::size_t i = 0; i < n; ++i) {
      const PlannedDnode& pd = plan.dnodes[i];
      const PlannedSlot& ps =
          pd.is_local ? pd.local[local_slot_[i]] : pd.global;
      fetched_[i] = &ps.instr;
      effects_[i] = Dnode::Effects{};
    }
  }

  // Execute: only Dnodes with a reachable non-NOP slot, ascending —
  // which preserves the documented host pop order exactly.
  exec_scratch_.clear();
  for (const std::uint16_t i : plan.exec_dnodes) {
    const PlannedDnode& pd = plan.dnodes[i];
    const PlannedSlot& ps =
        pd.is_local ? pd.local[local_slot_[i]] : pd.global;
    if (ps.nop) continue;

    Dnode::Inputs in;
    in.bus = bus;
    const auto resolve = [&](PlannedSlot::Port kind, std::uint16_t prev,
                             const FeedbackAddr& fb) -> Word {
      switch (kind) {
        case PlannedSlot::Port::kZero:
          return 0;
        case PlannedSlot::Port::kPrev:
          return pre_outs_[prev];
        case PlannedSlot::Port::kHost: {
          const Word w = host_in.front();
          host_in.pop_front();
          ++result.host_words_in;
          return w;
        }
        case PlannedSlot::Port::kFeedback:
          note_fb_read(fb);
          return pipes_[fb.pipe].read_fast(fb.lane, fb.depth);
        case PlannedSlot::Port::kBus:
          return bus;
      }
      return 0;
    };
    in.in1 = resolve(ps.in1, ps.in1_prev, ps.in1_fb);
    in.in2 = resolve(ps.in2, ps.in2_prev, ps.in2_fb);
    if (ps.read_fifo1) {
      in.fifo1 = pipes_[ps.fifo1.pipe].read_fast(ps.fifo1.lane, ps.fifo1.depth);
      note_fb_read(ps.fifo1);
    }
    if (ps.read_fifo2) {
      in.fifo2 = pipes_[ps.fifo2.pipe].read_fast(ps.fifo2.lane, ps.fifo2.depth);
      note_fb_read(ps.fifo2);
    }
    if (ps.direct_pop) {
      in.host = host_in.front();
      host_in.pop_front();
      ++result.host_words_in;
    }

    effects_[i] = dnodes_[i].execute(ps.instr, in);
    exec_scratch_.push_back(i);
    ++result.ops;
    result.arith_ops += ps.is_mac ? 2u : 1u;
    ++ops_per_dnode_[i];
    if (ps.is_mac) ++mac_ops_per_dnode_[i];
  }

  // Clock edge.  pre_outs_ holds the pre-edge output vector (the
  // invariant), so pipelines and taps latch from it directly;
  // committing only the executed Dnodes plus one counter advance per
  // local Dnode is equivalent to the interpreter's commit_edge().
  for (std::size_t s = 0; s < geom_.switch_count(); ++s) {
    pipes_[s].push_from(pre_outs_.data() + upstream_layer(s) * geom_.lanes);
  }
  for (const HostTapPlan& tap : plan.host_taps) {
    host_out.push_back(pre_outs_[tap.src]);
    ++result.host_words_out;
    ++host_out_words_per_switch_[tap.sw];
  }
  for (const std::uint16_t i : exec_scratch_) {
    dnodes_[i].commit(false);
  }
  for (const std::uint16_t i : plan.local_dnodes) {
    dnodes_[i].local().advance();
  }
  for (const std::uint16_t i : exec_scratch_) {
    pre_outs_[i] = dnodes_[i].out();  // restore the invariant
  }

  // Host output (after the taps above) and bus drives, ascending Dnode
  // order: highest index wins the bus.
  for (const std::uint16_t i : exec_scratch_) {
    const Dnode::Effects& eff = effects_[i];
    if (eff.host_en) {
      host_out.push_back(eff.result);
      ++result.host_words_out;
    }
    if (eff.bus_en) {
      ++bus_drives_;
      if (result.bus_drive.has_value()) ++bus_conflicts_;
      result.bus_drive = eff.result;
    }
  }
  return result;
}

Ring::SuperstepResult Ring::run_planned(const ConfigMemory& cfg, Word bus,
                                        HostFifo& host_in,
                                        std::vector<Word>& host_out,
                                        std::uint64_t max_cycles,
                                        std::size_t host_out_stop,
                                        const HostDepthProbe& probe) {
  SuperstepResult res;
  if (max_cycles == 0 || !plan_enabled_ || current_plan_ == nullptr) {
    return res;
  }
  const CyclePlan& plan = current_plan_->plan;
  if (plan.cfg_uid != cfg.uid() || plan.cfg_generation != cfg.generation() ||
      plan.local_generation != local_generation_) {
    return res;  // stale plan: the per-cycle path owns invalidation
  }
  if (plan.superstep_period == 0) return res;  // period over the cap

  // First-cycle stall check before any state is touched: a Dnode whose
  // local-mode entry has not committed yet fetches slot 0 — which is
  // also where its counter lands after the mode sync below, so the
  // schedule built from post-sync counters agrees with this check.
  {
    std::size_t pops = plan.static_pops;
    for (const std::uint16_t i : plan.local_dnodes) {
      const std::uint8_t slot = last_mode_[i] == DnodeMode::kGlobal
                                    ? std::uint8_t{0}
                                    : dnodes_[i].local().counter();
      pops += plan.dnodes[i].local[slot].pops;
    }
    if (host_in.size() < pops) return res;  // per-cycle path replays the stall
  }

  // The first cycle is known to advance: commit mode transitions
  // exactly as step_planned's one-time sync would.
  if (!mode_synced_) {
    for (const std::uint16_t i : plan.local_dnodes) {
      if (last_mode_[i] == DnodeMode::kGlobal) {
        dnodes_[i].local().reset_counter();
      }
      last_mode_[i] = DnodeMode::kLocal;
    }
    for (const std::uint16_t i : plan.global_dnodes) {
      last_mode_[i] = DnodeMode::kGlobal;
    }
    mode_synced_ = true;
  }

  // Unroll the schedule over the local-program period: per phase, the
  // non-NOP slots in flat Dnode order (preserving the documented host
  // pop order) and the cycle's total host-pop count.  Phase p serves
  // superstep cycle k with k % period == p, starting from the current
  // local counters, so local-slot bookkeeping vanishes from the loop.
  const std::size_t period = plan.superstep_period;
  const std::size_t n = dnodes_.size();
  ss_exec_.clear();
  ss_begin_.assign(period + 1, 0);
  ss_pops_.assign(period, 0);
  ss_out_.clear();
  ss_out_begin_.assign(period + 1, 0);
  for (std::size_t p = 0; p < period; ++p) {
    ss_begin_[p] = static_cast<std::uint32_t>(ss_exec_.size());
    ss_out_begin_[p] = static_cast<std::uint32_t>(ss_out_.size());
    std::uint32_t pops = static_cast<std::uint32_t>(plan.static_pops);
    for (std::size_t i = 0; i < n; ++i) {
      const PlannedDnode& pd = plan.dnodes[i];
      const PlannedSlot* slot = &pd.global;
      if (pd.is_local) {
        slot = &pd.local[(dnodes_[i].local().counter() + p) % pd.local_len];
        pops += slot->pops;
      }
      if (!slot->nop) {
        if (slot->instr.host_en || slot->instr.bus_en) {
          ss_out_.push_back(static_cast<std::uint32_t>(ss_exec_.size()));
        }
        ss_exec_.push_back({static_cast<std::uint16_t>(i), slot});
      }
    }
    ss_pops_[p] = pops;
  }
  ss_begin_[period] = static_cast<std::uint32_t>(ss_exec_.size());
  ss_out_begin_[period] = static_cast<std::uint32_t>(ss_out_.size());

  // Only active Dnodes (some reachable non-NOP slot) can change their
  // output register during the superstep; capture the full pre-edge
  // vector once and refresh just those entries per cycle.
  ss_active_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (plan.dnodes[i].active) {
      ss_active_.push_back(static_cast<std::uint16_t>(i));
    }
    pre_outs_[i] = dnodes_[i].out();
  }

  const std::size_t lanes = geom_.lanes;
  const std::size_t switches = geom_.switch_count();
  std::uint64_t words_in = 0;
  std::uint64_t words_out = 0;
  std::size_t phase = 0;
  std::size_t prev_top = 0;
  bool have_prev_top = false;

  for (;;) {
    const std::size_t out_at_top = host_out.size();
    // Output stop with the per-cycle host-visibility lag: the System's
    // run_until_outputs loop admits cycle c against a host mirror one
    // tick stale — host_out's size at the top of cycle c-1.  The first
    // fused cycle was already admitted by the caller.
    if (have_prev_top && prev_top >= host_out_stop) break;

    // Impending stall: hand back so the per-cycle path replays the
    // stall cycle-accurately (a stalled cycle advances nothing here).
    const std::uint32_t need = ss_pops_[phase];
    if (host_in.size() < need) break;

    // The cycle will execute: sample the host-FIFO depth histogram at
    // the same point System::step does (pre-pop).
    if (probe.counts != nullptr) {
      const std::size_t d = host_in.size();
      ++probe.counts[probe.lut[d < probe.lut_max ? d : probe.lut_max]];
    }

    // Execute the phase.  Every per-exec statistic here is a plan
    // constant (which Dnode, MAC or not, which feedback addresses), so
    // all counter work is hoisted to the flush below — the loop body is
    // operand fetch, ALU, stage.
    const SuperExec* const e = ss_exec_.data() + ss_begin_[phase];
    const SuperExec* const e_end = ss_exec_.data() + ss_begin_[phase + 1];
    for (const SuperExec* it = e; it != e_end; ++it) {
      const PlannedSlot& ps = *it->slot;
      Dnode::Inputs in;
      in.bus = bus;
      const auto resolve = [&](PlannedSlot::Port kind, std::uint16_t prev,
                               const FeedbackAddr& fb) -> Word {
        switch (kind) {
          case PlannedSlot::Port::kZero:
            return 0;
          case PlannedSlot::Port::kPrev:
            return dnodes_[prev].out();
          case PlannedSlot::Port::kHost:
            return host_in.pop();
          case PlannedSlot::Port::kFeedback:
            return pipes_[fb.pipe].read_fast(fb.lane, fb.depth);
          case PlannedSlot::Port::kBus:
            return bus;
        }
        return 0;
      };
      in.in1 = resolve(ps.in1, ps.in1_prev, ps.in1_fb);
      in.in2 = resolve(ps.in2, ps.in2_prev, ps.in2_fb);
      if (ps.read_fifo1) {
        in.fifo1 =
            pipes_[ps.fifo1.pipe].read_fast(ps.fifo1.lane, ps.fifo1.depth);
      }
      if (ps.read_fifo2) {
        in.fifo2 =
            pipes_[ps.fifo2.pipe].read_fast(ps.fifo2.lane, ps.fifo2.depth);
      }
      if (ps.direct_pop) in.host = host_in.pop();

      effects_[it->dnode] = dnodes_[it->dnode].execute(ps.instr, in);
    }
    words_in += need;

    // Clock edge.  Committing only the Dnodes that executed is
    // equivalent to commit_edge(): a Dnode with nothing staged commits
    // to its own current state, and local counters are fixed up in one
    // advance_by() below.
    for (const std::uint16_t i : ss_active_) {
      pre_outs_[i] = dnodes_[i].out();
    }
    for (const SuperExec* it = e; it != e_end; ++it) {
      dnodes_[it->dnode].commit(false);
    }
    for (std::size_t s = 0; s < switches; ++s) {
      pipes_[s].push_from(pre_outs_.data() + upstream_layer(s) * lanes);
    }

    // Host output: switch taps first (switch order), then Dnode hostEn
    // results (Dnode order).  Bus drive: highest Dnode index wins.
    for (const HostTapPlan& tap : plan.host_taps) {
      host_out.push_back(pre_outs_[tap.src]);  // per-switch counter flushed
    }
    words_out += plan.host_taps.size();
    std::optional<Word> drive;
    const std::uint32_t* o = ss_out_.data() + ss_out_begin_[phase];
    const std::uint32_t* const o_end =
        ss_out_.data() + ss_out_begin_[phase + 1];
    for (; o != o_end; ++o) {
      const Dnode::Effects& eff = effects_[ss_exec_[*o].dnode];
      if (eff.host_en) {
        host_out.push_back(eff.result);
        ++words_out;
      }
      if (eff.bus_en) {
        ++bus_drives_;
        if (drive.has_value()) ++bus_conflicts_;
        drive = eff.result;
      }
    }

    ++res.cycles;
    prev_top = out_at_top;
    have_prev_top = true;
    ++phase;
    if (phase == period) phase = 0;
    if (drive.has_value()) {
      // The driven value must be visible on the bus next cycle: break
      // so the caller can update it.
      res.bus_drive = drive;
      break;
    }
    if (res.cycles >= max_cycles) break;
  }

  // One flush for the whole superstep.  plan_hits_ advances by the
  // executed cycle count so the plan counters — and with them the full
  // SystemStats — stay bit-identical with per-cycle planned execution.
  // The loop only breaks at cycle boundaries, so phase p ran exactly
  // floor(cycles/period) times plus one if p < cycles % period — which
  // lets every plan-constant per-exec statistic (op counts, MAC counts,
  // feedback-read histograms, tap traffic) be settled here instead of
  // inside the fused loop.
  std::uint64_t ops = 0;
  std::uint64_t arith = 0;
  {
    const std::uint64_t full = res.cycles / period;
    const std::size_t rem = static_cast<std::size_t>(res.cycles % period);
    for (std::size_t p = 0; p < period; ++p) {
      const std::uint64_t cnt = full + (p < rem ? 1 : 0);
      if (cnt == 0) continue;
      for (std::uint32_t k = ss_begin_[p]; k < ss_begin_[p + 1]; ++k) {
        const SuperExec& ex = ss_exec_[k];
        const PlannedSlot& ps = *ex.slot;
        ops += cnt;
        arith += cnt * (ps.is_mac ? 2u : 1u);
        ops_per_dnode_[ex.dnode] += cnt;
        if (ps.is_mac) mac_ops_per_dnode_[ex.dnode] += cnt;
        const auto note_n = [&](const FeedbackAddr& fb) {
          fb_reads_per_pipe_[fb.pipe] += cnt;
          fb_read_depth_counts_[fb.pipe * geom_.fb_depth + fb.depth] += cnt;
        };
        if (ps.in1 == PlannedSlot::Port::kFeedback) note_n(ps.in1_fb);
        if (ps.in2 == PlannedSlot::Port::kFeedback) note_n(ps.in2_fb);
        if (ps.read_fifo1) note_n(ps.fifo1);
        if (ps.read_fifo2) note_n(ps.fifo2);
      }
    }
    for (const HostTapPlan& tap : plan.host_taps) {
      host_out_words_per_switch_[tap.sw] += res.cycles;
    }
  }
  res.ops = ops;
  res.arith_ops = arith;
  res.host_words_in = words_in;
  res.host_words_out = words_out;
  res.out_size_at_last_top = prev_top;
  ++superstep_dispatches_;
  superstep_cycles_ += res.cycles;
  plan_hits_ += res.cycles;
  for (const std::uint16_t i : plan.local_dnodes) {
    dnodes_[i].local().advance_by(res.cycles);
    local_cycles_per_dnode_[i] += res.cycles;
  }
  for (const std::uint16_t i : plan.global_dnodes) {
    global_cycles_per_dnode_[i] += res.cycles;
  }
  // pre_outs_ holds the LAST cycle's pre-edge vector for active
  // Dnodes; refresh those to restore the per-cycle planned invariant.
  for (const std::uint16_t i : ss_active_) {
    pre_outs_[i] = dnodes_[i].out();
  }
  pre_outs_valid_ = true;
  return res;
}

}  // namespace sring
