#include "core/ring.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace sring {

Ring::Ring(const RingGeometry& g) : geom_(g) {
  geom_.validate();
  dnodes_.resize(geom_.dnode_count());
  pipes_.reserve(geom_.switch_count());
  for (std::size_t s = 0; s < geom_.switch_count(); ++s) {
    pipes_.emplace_back(geom_.lanes, geom_.fb_depth);
  }
  last_mode_.assign(geom_.dnode_count(), DnodeMode::kGlobal);
  ops_per_dnode_.assign(geom_.dnode_count(), 0);
  mac_ops_per_dnode_.assign(geom_.dnode_count(), 0);
  local_cycles_per_dnode_.assign(geom_.dnode_count(), 0);
  global_cycles_per_dnode_.assign(geom_.dnode_count(), 0);
  host_out_words_per_switch_.assign(geom_.switch_count(), 0);
  fb_reads_per_pipe_.assign(geom_.switch_count(), 0);
  fb_read_depth_counts_.assign(geom_.switch_count() * geom_.fb_depth, 0);
  fetched_.assign(geom_.dnode_count(), nullptr);
  is_local_.assign(geom_.dnode_count(), false);
  needs_.assign(geom_.dnode_count(), {});
  effects_.assign(geom_.dnode_count(), {});
  pre_outs_.assign(geom_.dnode_count(), 0);
  local_slot_.assign(geom_.dnode_count(), 0);
  const char* no_plan = std::getenv("SRING_NO_PLAN_CACHE");
  plan_enabled_ = no_plan == nullptr || *no_plan == '\0';
}

std::size_t Ring::flat_index(std::size_t layer, std::size_t lane) const {
  check(layer < geom_.layers && lane < geom_.lanes,
        "Ring: dnode coordinates out of range");
  return layer * geom_.lanes + lane;
}

std::size_t Ring::upstream_layer(std::size_t layer) const noexcept {
  return (layer + geom_.layers - 1) % geom_.layers;
}

Dnode& Ring::dnode(std::size_t layer, std::size_t lane) {
  return dnodes_[flat_index(layer, lane)];
}

const Dnode& Ring::dnode(std::size_t layer, std::size_t lane) const {
  return dnodes_[flat_index(layer, lane)];
}

Dnode& Ring::dnode_flat(std::size_t index) {
  check(index < dnodes_.size(), "Ring: dnode index out of range");
  return dnodes_[index];
}

const Dnode& Ring::dnode_flat(std::size_t index) const {
  check(index < dnodes_.size(), "Ring: dnode index out of range");
  return dnodes_[index];
}

const FeedbackPipeline& Ring::pipeline(std::size_t sw) const {
  check(sw < pipes_.size(), "Ring: switch index out of range");
  return pipes_[sw];
}

void Ring::write_local(std::size_t dnode_index, std::size_t slot,
                       std::uint64_t value) {
  check(dnode_index < dnodes_.size(), "Ring: dnode index out of range");
  dnodes_[dnode_index].local().write(slot, value);
  ++local_generation_;
}

Word Ring::read_feedback(const FeedbackAddr& addr) const {
  check(addr.pipe < pipes_.size(), "Ring: feedback pipe out of range");
  return pipes_[addr.pipe].read(addr.lane, addr.depth);
}

void Ring::note_fb_read(const FeedbackAddr& addr) {
  ++fb_reads_per_pipe_[addr.pipe];
  ++fb_read_depth_counts_[addr.pipe * geom_.fb_depth + addr.depth];
}

void Ring::set_plan_cache_enabled(bool enabled) noexcept {
  plan_enabled_ = enabled;
  if (!enabled) plan_.valid = false;
}

void Ring::reset() {
  for (auto& d : dnodes_) d.reset();
  for (auto& p : pipes_) p.reset();
  last_mode_.assign(geom_.dnode_count(), DnodeMode::kGlobal);
  ops_per_dnode_.assign(geom_.dnode_count(), 0);
  mac_ops_per_dnode_.assign(geom_.dnode_count(), 0);
  local_cycles_per_dnode_.assign(geom_.dnode_count(), 0);
  global_cycles_per_dnode_.assign(geom_.dnode_count(), 0);
  host_out_words_per_switch_.assign(geom_.switch_count(), 0);
  fb_reads_per_pipe_.assign(geom_.switch_count(), 0);
  fb_read_depth_counts_.assign(geom_.switch_count() * geom_.fb_depth, 0);
  bus_drives_ = 0;
  bus_conflicts_ = 0;
  superstep_dispatches_ = 0;
  superstep_cycles_ = 0;
  // Plan cache: drop the plan, forget the stability trackers, zero the
  // counters, so a reset System replays identically to a fresh one.
  plan_.valid = false;
  mode_synced_ = false;
  local_generation_ = 0;
  last_cfg_uid_ = 0;
  last_cfg_gen_ = 0;
  last_local_gen_ = 0;
  plan_compiles_ = 0;
  plan_hits_ = 0;
  plan_invalidations_ = 0;
}

Ring::CycleResult Ring::step(const ConfigMemory& cfg, Word bus,
                             HostFifo& host_in,
                             std::vector<Word>& host_out) {
  check(cfg.geometry().layers == geom_.layers &&
            cfg.geometry().lanes == geom_.lanes,
        "Ring::step: configuration memory geometry mismatch");

  if (!plan_enabled_) return step_interpreted(cfg, bus, host_in, host_out);

  const std::uint64_t uid = cfg.uid();
  const std::uint64_t gen = cfg.generation();
  if (plan_.valid) {
    if (plan_.cfg_uid == uid && plan_.cfg_generation == gen &&
        plan_.local_generation == local_generation_) {
      ++plan_hits_;
      return step_planned(bus, host_in, host_out);
    }
    plan_.valid = false;
    ++plan_invalidations_;
  }
  if (last_cfg_uid_ == uid && last_cfg_gen_ == gen &&
      last_local_gen_ == local_generation_) {
    // Configuration stable across a step boundary: compile and run the
    // plan.  compile throws exactly where the interpreter would reject
    // the configuration at execution time.
    compile_cycle_plan(geom_, cfg, dnodes_, plan_);
    plan_.cfg_uid = uid;
    plan_.cfg_generation = gen;
    plan_.local_generation = local_generation_;
    plan_.valid = true;
    ++plan_compiles_;
    mode_synced_ = false;
    for (std::size_t i = 0; i < dnodes_.size(); ++i) {
      is_local_[i] = plan_.dnodes[i].is_local;
    }
    return step_planned(bus, host_in, host_out);
  }
  // Configuration in flux (hardware multiplexing): interpret this
  // cycle and remember what we saw.
  last_cfg_uid_ = uid;
  last_cfg_gen_ = gen;
  last_local_gen_ = local_generation_;
  return step_interpreted(cfg, bus, host_in, host_out);
}

void Ring::commit_edge() {
  const std::size_t n = geom_.dnode_count();
  // Capture pre-edge output vectors: these are what the feedback
  // pipelines and host-out taps latch at this clock edge.
  for (std::size_t i = 0; i < n; ++i) {
    pre_outs_[i] = dnodes_[i].out();
  }
  for (std::size_t i = 0; i < n; ++i) {
    dnodes_[i].commit(is_local_[i]);
  }
  for (std::size_t s = 0; s < geom_.switch_count(); ++s) {
    const std::size_t up = upstream_layer(s);
    pipes_[s].push_from(pre_outs_.data() + up * geom_.lanes);
  }
}

void Ring::drain_effects(CycleResult& result, std::vector<Word>& host_out) {
  const std::size_t n = geom_.dnode_count();
  for (std::size_t i = 0; i < n; ++i) {
    if (effects_[i].executed && effects_[i].host_en) {
      host_out.push_back(effects_[i].result);
      ++result.host_words_out;
    }
    if (effects_[i].executed && effects_[i].bus_en) {
      ++bus_drives_;
      if (result.bus_drive.has_value()) ++bus_conflicts_;
      result.bus_drive = effects_[i].result;
    }
  }
}

Ring::CycleResult Ring::step_interpreted(const ConfigMemory& cfg, Word bus,
                                         HostFifo& host_in,
                                         std::vector<Word>& host_out) {
  const std::size_t n = geom_.dnode_count();

  // Phase 1: fetch.  Mode transitions are observed but NOT committed —
  // a Dnode entering local mode this cycle fetches slot 0 directly, and
  // its counter is reset only once the cycle is known to advance, so a
  // stalled transition cycle leaves every local program untouched.
  for (std::size_t i = 0; i < n; ++i) {
    is_local_[i] = cfg.dnode_mode(i) == DnodeMode::kLocal;
    if (is_local_[i]) {
      fetched_[i] = last_mode_[i] == DnodeMode::kGlobal
                        ? &dnodes_[i].local().instr_at(0)
                        : &dnodes_[i].local().current();
    } else {
      fetched_[i] = &cfg.dnode_instr(i);
    }
  }

  // Phase 2: count the host pops this cycle needs.
  std::size_t pops_needed = 0;
  for (std::size_t layer = 0; layer < geom_.layers; ++layer) {
    for (std::size_t lane = 0; lane < geom_.lanes; ++lane) {
      const std::size_t i = layer * geom_.lanes + lane;
      needs_[i] = PortNeed{};
      const DnodeInstr& instr = *fetched_[i];
      if (instr.op == DnodeOp::kNop) continue;
      const SwitchRoute& route = cfg.switch_route(layer, lane);
      if (route.in1.kind == RouteKind::kHost &&
          instr_reads(instr, DnodeSrc::kIn1)) {
        needs_[i].in1_host = true;
        ++pops_needed;
      }
      if (route.in2.kind == RouteKind::kHost &&
          instr_reads(instr, DnodeSrc::kIn2)) {
        needs_[i].in2_host = true;
        ++pops_needed;
      }
      if (instr_reads(instr, DnodeSrc::kHost)) {
        needs_[i].direct_host = true;
        ++pops_needed;
      }
    }
  }

  CycleResult result;
  if (host_in.size() < pops_needed) {
    result.stalled = true;
    return result;  // systolic back-pressure: nothing advances
  }

  // The cycle advances: commit mode transitions (a Dnode entering
  // local mode restarts its program at slot 0) and record the mode
  // every Dnode ran under.
  for (std::size_t i = 0; i < n; ++i) {
    if (is_local_[i]) {
      if (last_mode_[i] == DnodeMode::kGlobal) {
        dnodes_[i].local().reset_counter();
      }
      last_mode_[i] = DnodeMode::kLocal;
      ++local_cycles_per_dnode_[i];
    } else {
      last_mode_[i] = DnodeMode::kGlobal;
      ++global_cycles_per_dnode_[i];
    }
  }

  // Phase 3+4: route and execute.  Routing reads only pre-edge state
  // (output registers, pipelines, bus), so evaluation order across
  // Dnodes does not matter except for the documented host pop order.
  for (std::size_t layer = 0; layer < geom_.layers; ++layer) {
    const std::size_t up = upstream_layer(layer);
    for (std::size_t lane = 0; lane < geom_.lanes; ++lane) {
      const std::size_t i = layer * geom_.lanes + lane;
      effects_[i] = Dnode::Effects{};
      const DnodeInstr& instr = *fetched_[i];
      if (instr.op == DnodeOp::kNop) continue;
      const SwitchRoute& route = cfg.switch_route(layer, lane);

      Dnode::Inputs in;
      const auto resolve_port = [&](const PortRoute& p,
                                    bool pops) -> Word {
        switch (p.kind) {
          case RouteKind::kZero:
            return 0;
          case RouteKind::kPrev:
            check(p.lane < geom_.lanes, "Ring: route lane out of range");
            return dnodes_[flat_index(up, p.lane)].out();
          case RouteKind::kHost: {
            if (!pops) return 0;
            const Word w = host_in.front();
            host_in.pop_front();
            ++result.host_words_in;
            return w;
          }
          case RouteKind::kFeedback:
            return read_feedback(p.fb);
          case RouteKind::kBus:
            return bus;
          case RouteKind::kKindCount:
            break;
        }
        throw SimError("Ring: bad route kind");
      };

      in.in1 = resolve_port(route.in1, needs_[i].in1_host);
      in.in2 = resolve_port(route.in2, needs_[i].in2_host);
      in.fifo1 = read_feedback(route.fifo1);
      in.fifo2 = read_feedback(route.fifo2);
      in.bus = bus;
      // Feedback-occupancy accounting: only reads the instruction
      // actually consumes (the ports above are sampled regardless).
      if (route.in1.kind == RouteKind::kFeedback &&
          instr_reads(instr, DnodeSrc::kIn1)) {
        note_fb_read(route.in1.fb);
      }
      if (route.in2.kind == RouteKind::kFeedback &&
          instr_reads(instr, DnodeSrc::kIn2)) {
        note_fb_read(route.in2.fb);
      }
      if (instr_reads(instr, DnodeSrc::kFifo1)) note_fb_read(route.fifo1);
      if (instr_reads(instr, DnodeSrc::kFifo2)) note_fb_read(route.fifo2);
      if (needs_[i].direct_host) {
        in.host = host_in.front();
        host_in.pop_front();
        ++result.host_words_in;
      }

      effects_[i] = dnodes_[i].execute(instr, in);
      if (effects_[i].executed) {
        ++result.ops;
        const bool is_mac =
            instr.op == DnodeOp::kMac || instr.op == DnodeOp::kMsu;
        result.arith_ops += is_mac ? 2 : 1;
        ++ops_per_dnode_[i];
        if (is_mac) ++mac_ops_per_dnode_[i];
      }
    }
  }

  // Phase 5: commit, then host output: switch taps first (switch
  // order), then Dnode hostEn results (dnode order).  Bus drive:
  // highest dnode index wins.
  commit_edge();
  for (std::size_t s = 0; s < geom_.switch_count(); ++s) {
    for (std::size_t lane = 0; lane < geom_.lanes; ++lane) {
      const SwitchRoute& route = cfg.switch_route(s, lane);
      if (route.host_out_en) {
        check(route.host_out_lane < geom_.lanes,
              "Ring: host-out lane out of range");
        host_out.push_back(
            pre_outs_[upstream_layer(s) * geom_.lanes + route.host_out_lane]);
        ++result.host_words_out;
        ++host_out_words_per_switch_[s];
      }
    }
  }
  drain_effects(result, host_out);
  return result;
}

Ring::CycleResult Ring::step_planned(Word bus, HostFifo& host_in,
                                     std::vector<Word>& host_out) {
  CycleResult result;

  // Pops this cycle: static (global-mode) schedule plus the current
  // slot of every local program.  A Dnode whose local-mode entry has
  // not committed yet (stall pending) fetches slot 0.
  std::size_t pops_needed = plan_.static_pops;
  for (const std::uint16_t i : plan_.local_dnodes) {
    const std::uint8_t slot = last_mode_[i] == DnodeMode::kGlobal
                                  ? std::uint8_t{0}
                                  : dnodes_[i].local().counter();
    local_slot_[i] = slot;
    pops_needed += plan_.dnodes[i].local[slot].pops;
  }
  if (host_in.size() < pops_needed) {
    result.stalled = true;
    return result;  // systolic back-pressure: nothing advances
  }

  if (!mode_synced_) {
    // First advancing cycle under this plan: commit mode transitions
    // exactly as the interpreter would.  Modes cannot change while the
    // plan stays valid, so this runs once per compile.
    for (const std::uint16_t i : plan_.local_dnodes) {
      if (last_mode_[i] == DnodeMode::kGlobal) {
        dnodes_[i].local().reset_counter();
      }
      last_mode_[i] = DnodeMode::kLocal;
    }
    for (const std::uint16_t i : plan_.global_dnodes) {
      last_mode_[i] = DnodeMode::kGlobal;
    }
    mode_synced_ = true;
  }
  for (const std::uint16_t i : plan_.local_dnodes) {
    ++local_cycles_per_dnode_[i];
  }
  for (const std::uint16_t i : plan_.global_dnodes) {
    ++global_cycles_per_dnode_[i];
  }

  const std::size_t n = dnodes_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const PlannedDnode& pd = plan_.dnodes[i];
    const PlannedSlot& ps = pd.is_local ? pd.local[local_slot_[i]] : pd.global;
    fetched_[i] = &ps.instr;
    effects_[i] = Dnode::Effects{};
    if (ps.nop) continue;

    Dnode::Inputs in;
    in.bus = bus;
    const auto resolve = [&](PlannedSlot::Port kind, std::uint16_t prev,
                             const FeedbackAddr& fb) -> Word {
      switch (kind) {
        case PlannedSlot::Port::kZero:
          return 0;
        case PlannedSlot::Port::kPrev:
          return dnodes_[prev].out();
        case PlannedSlot::Port::kHost: {
          const Word w = host_in.front();
          host_in.pop_front();
          ++result.host_words_in;
          return w;
        }
        case PlannedSlot::Port::kFeedback:
          note_fb_read(fb);
          return pipes_[fb.pipe].read_fast(fb.lane, fb.depth);
        case PlannedSlot::Port::kBus:
          return bus;
      }
      return 0;
    };
    in.in1 = resolve(ps.in1, ps.in1_prev, ps.in1_fb);
    in.in2 = resolve(ps.in2, ps.in2_prev, ps.in2_fb);
    if (ps.read_fifo1) {
      in.fifo1 = pipes_[ps.fifo1.pipe].read_fast(ps.fifo1.lane, ps.fifo1.depth);
      note_fb_read(ps.fifo1);
    }
    if (ps.read_fifo2) {
      in.fifo2 = pipes_[ps.fifo2.pipe].read_fast(ps.fifo2.lane, ps.fifo2.depth);
      note_fb_read(ps.fifo2);
    }
    if (ps.direct_pop) {
      in.host = host_in.front();
      host_in.pop_front();
      ++result.host_words_in;
    }

    effects_[i] = dnodes_[i].execute(ps.instr, in);
    ++result.ops;
    result.arith_ops += ps.is_mac ? 2u : 1u;
    ++ops_per_dnode_[i];
    if (ps.is_mac) ++mac_ops_per_dnode_[i];
  }

  commit_edge();
  for (const HostTapPlan& tap : plan_.host_taps) {
    host_out.push_back(pre_outs_[tap.src]);
    ++result.host_words_out;
    ++host_out_words_per_switch_[tap.sw];
  }
  drain_effects(result, host_out);
  return result;
}

Ring::SuperstepResult Ring::run_planned(const ConfigMemory& cfg, Word bus,
                                        HostFifo& host_in,
                                        std::vector<Word>& host_out,
                                        std::uint64_t max_cycles,
                                        std::size_t host_out_stop,
                                        const HostDepthProbe& probe) {
  SuperstepResult res;
  if (max_cycles == 0 || !plan_enabled_ || !plan_.valid) return res;
  if (plan_.cfg_uid != cfg.uid() || plan_.cfg_generation != cfg.generation() ||
      plan_.local_generation != local_generation_) {
    return res;  // stale plan: the per-cycle path owns invalidation
  }
  if (plan_.superstep_period == 0) return res;  // period over the cap

  // First-cycle stall check before any state is touched: a Dnode whose
  // local-mode entry has not committed yet fetches slot 0 — which is
  // also where its counter lands after the mode sync below, so the
  // schedule built from post-sync counters agrees with this check.
  {
    std::size_t pops = plan_.static_pops;
    for (const std::uint16_t i : plan_.local_dnodes) {
      const std::uint8_t slot = last_mode_[i] == DnodeMode::kGlobal
                                    ? std::uint8_t{0}
                                    : dnodes_[i].local().counter();
      pops += plan_.dnodes[i].local[slot].pops;
    }
    if (host_in.size() < pops) return res;  // per-cycle path replays the stall
  }

  // The first cycle is known to advance: commit mode transitions
  // exactly as step_planned's one-time sync would.
  if (!mode_synced_) {
    for (const std::uint16_t i : plan_.local_dnodes) {
      if (last_mode_[i] == DnodeMode::kGlobal) {
        dnodes_[i].local().reset_counter();
      }
      last_mode_[i] = DnodeMode::kLocal;
    }
    for (const std::uint16_t i : plan_.global_dnodes) {
      last_mode_[i] = DnodeMode::kGlobal;
    }
    mode_synced_ = true;
  }

  // Unroll the schedule over the local-program period: per phase, the
  // non-NOP slots in flat Dnode order (preserving the documented host
  // pop order) and the cycle's total host-pop count.  Phase p serves
  // superstep cycle k with k % period == p, starting from the current
  // local counters, so local-slot bookkeeping vanishes from the loop.
  const std::size_t period = plan_.superstep_period;
  const std::size_t n = dnodes_.size();
  ss_exec_.clear();
  ss_begin_.assign(period + 1, 0);
  ss_pops_.assign(period, 0);
  ss_out_.clear();
  ss_out_begin_.assign(period + 1, 0);
  for (std::size_t p = 0; p < period; ++p) {
    ss_begin_[p] = static_cast<std::uint32_t>(ss_exec_.size());
    ss_out_begin_[p] = static_cast<std::uint32_t>(ss_out_.size());
    std::uint32_t pops = static_cast<std::uint32_t>(plan_.static_pops);
    for (std::size_t i = 0; i < n; ++i) {
      const PlannedDnode& pd = plan_.dnodes[i];
      const PlannedSlot* slot = &pd.global;
      if (pd.is_local) {
        slot = &pd.local[(dnodes_[i].local().counter() + p) % pd.local_len];
        pops += slot->pops;
      }
      if (!slot->nop) {
        if (slot->instr.host_en || slot->instr.bus_en) {
          ss_out_.push_back(static_cast<std::uint32_t>(ss_exec_.size()));
        }
        ss_exec_.push_back({static_cast<std::uint16_t>(i), slot});
      }
    }
    ss_pops_[p] = pops;
  }
  ss_begin_[period] = static_cast<std::uint32_t>(ss_exec_.size());
  ss_out_begin_[period] = static_cast<std::uint32_t>(ss_out_.size());

  // Only active Dnodes (some reachable non-NOP slot) can change their
  // output register during the superstep; capture the full pre-edge
  // vector once and refresh just those entries per cycle.
  ss_active_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (plan_.dnodes[i].active) {
      ss_active_.push_back(static_cast<std::uint16_t>(i));
    }
    pre_outs_[i] = dnodes_[i].out();
  }

  const std::size_t lanes = geom_.lanes;
  const std::size_t switches = geom_.switch_count();
  std::uint64_t words_in = 0;
  std::uint64_t words_out = 0;
  std::size_t phase = 0;
  std::size_t prev_top = 0;
  bool have_prev_top = false;

  for (;;) {
    const std::size_t out_at_top = host_out.size();
    // Output stop with the per-cycle host-visibility lag: the System's
    // run_until_outputs loop admits cycle c against a host mirror one
    // tick stale — host_out's size at the top of cycle c-1.  The first
    // fused cycle was already admitted by the caller.
    if (have_prev_top && prev_top >= host_out_stop) break;

    // Impending stall: hand back so the per-cycle path replays the
    // stall cycle-accurately (a stalled cycle advances nothing here).
    const std::uint32_t need = ss_pops_[phase];
    if (host_in.size() < need) break;

    // The cycle will execute: sample the host-FIFO depth histogram at
    // the same point System::step does (pre-pop).
    if (probe.counts != nullptr) {
      const std::size_t d = host_in.size();
      ++probe.counts[probe.lut[d < probe.lut_max ? d : probe.lut_max]];
    }

    // Execute the phase.  Every per-exec statistic here is a plan
    // constant (which Dnode, MAC or not, which feedback addresses), so
    // all counter work is hoisted to the flush below — the loop body is
    // operand fetch, ALU, stage.
    const SuperExec* const e = ss_exec_.data() + ss_begin_[phase];
    const SuperExec* const e_end = ss_exec_.data() + ss_begin_[phase + 1];
    for (const SuperExec* it = e; it != e_end; ++it) {
      const PlannedSlot& ps = *it->slot;
      Dnode::Inputs in;
      in.bus = bus;
      const auto resolve = [&](PlannedSlot::Port kind, std::uint16_t prev,
                               const FeedbackAddr& fb) -> Word {
        switch (kind) {
          case PlannedSlot::Port::kZero:
            return 0;
          case PlannedSlot::Port::kPrev:
            return dnodes_[prev].out();
          case PlannedSlot::Port::kHost:
            return host_in.pop();
          case PlannedSlot::Port::kFeedback:
            return pipes_[fb.pipe].read_fast(fb.lane, fb.depth);
          case PlannedSlot::Port::kBus:
            return bus;
        }
        return 0;
      };
      in.in1 = resolve(ps.in1, ps.in1_prev, ps.in1_fb);
      in.in2 = resolve(ps.in2, ps.in2_prev, ps.in2_fb);
      if (ps.read_fifo1) {
        in.fifo1 =
            pipes_[ps.fifo1.pipe].read_fast(ps.fifo1.lane, ps.fifo1.depth);
      }
      if (ps.read_fifo2) {
        in.fifo2 =
            pipes_[ps.fifo2.pipe].read_fast(ps.fifo2.lane, ps.fifo2.depth);
      }
      if (ps.direct_pop) in.host = host_in.pop();

      effects_[it->dnode] = dnodes_[it->dnode].execute(ps.instr, in);
    }
    words_in += need;

    // Clock edge.  Committing only the Dnodes that executed is
    // equivalent to commit_edge(): a Dnode with nothing staged commits
    // to its own current state, and local counters are fixed up in one
    // advance_by() below.
    for (const std::uint16_t i : ss_active_) {
      pre_outs_[i] = dnodes_[i].out();
    }
    for (const SuperExec* it = e; it != e_end; ++it) {
      dnodes_[it->dnode].commit(false);
    }
    for (std::size_t s = 0; s < switches; ++s) {
      pipes_[s].push_from(pre_outs_.data() + upstream_layer(s) * lanes);
    }

    // Host output: switch taps first (switch order), then Dnode hostEn
    // results (Dnode order).  Bus drive: highest Dnode index wins.
    for (const HostTapPlan& tap : plan_.host_taps) {
      host_out.push_back(pre_outs_[tap.src]);  // per-switch counter flushed
    }
    words_out += plan_.host_taps.size();
    std::optional<Word> drive;
    const std::uint32_t* o = ss_out_.data() + ss_out_begin_[phase];
    const std::uint32_t* const o_end = ss_out_.data() + ss_out_begin_[phase + 1];
    for (; o != o_end; ++o) {
      const Dnode::Effects& eff = effects_[ss_exec_[*o].dnode];
      if (eff.host_en) {
        host_out.push_back(eff.result);
        ++words_out;
      }
      if (eff.bus_en) {
        ++bus_drives_;
        if (drive.has_value()) ++bus_conflicts_;
        drive = eff.result;
      }
    }

    ++res.cycles;
    prev_top = out_at_top;
    have_prev_top = true;
    ++phase;
    if (phase == period) phase = 0;
    if (drive.has_value()) {
      // The driven value must be visible on the bus next cycle: break
      // so the caller can update it.
      res.bus_drive = drive;
      break;
    }
    if (res.cycles >= max_cycles) break;
  }

  // One flush for the whole superstep.  plan_hits_ advances by the
  // executed cycle count so the plan counters — and with them the full
  // SystemStats — stay bit-identical with per-cycle planned execution.
  // The loop only breaks at cycle boundaries, so phase p ran exactly
  // floor(cycles/period) times plus one if p < cycles % period — which
  // lets every plan-constant per-exec statistic (op counts, MAC counts,
  // feedback-read histograms, tap traffic) be settled here instead of
  // inside the fused loop.
  std::uint64_t ops = 0;
  std::uint64_t arith = 0;
  {
    const std::uint64_t full = res.cycles / period;
    const std::size_t rem = static_cast<std::size_t>(res.cycles % period);
    for (std::size_t p = 0; p < period; ++p) {
      const std::uint64_t cnt = full + (p < rem ? 1 : 0);
      if (cnt == 0) continue;
      for (std::uint32_t k = ss_begin_[p]; k < ss_begin_[p + 1]; ++k) {
        const SuperExec& ex = ss_exec_[k];
        const PlannedSlot& ps = *ex.slot;
        ops += cnt;
        arith += cnt * (ps.is_mac ? 2u : 1u);
        ops_per_dnode_[ex.dnode] += cnt;
        if (ps.is_mac) mac_ops_per_dnode_[ex.dnode] += cnt;
        const auto note_n = [&](const FeedbackAddr& fb) {
          fb_reads_per_pipe_[fb.pipe] += cnt;
          fb_read_depth_counts_[fb.pipe * geom_.fb_depth + fb.depth] += cnt;
        };
        if (ps.in1 == PlannedSlot::Port::kFeedback) note_n(ps.in1_fb);
        if (ps.in2 == PlannedSlot::Port::kFeedback) note_n(ps.in2_fb);
        if (ps.read_fifo1) note_n(ps.fifo1);
        if (ps.read_fifo2) note_n(ps.fifo2);
      }
    }
    for (const HostTapPlan& tap : plan_.host_taps) {
      host_out_words_per_switch_[tap.sw] += res.cycles;
    }
  }
  res.ops = ops;
  res.arith_ops = arith;
  res.host_words_in = words_in;
  res.host_words_out = words_out;
  res.out_size_at_last_top = prev_top;
  ++superstep_dispatches_;
  superstep_cycles_ += res.cycles;
  plan_hits_ += res.cycles;
  for (const std::uint16_t i : plan_.local_dnodes) {
    dnodes_[i].local().advance_by(res.cycles);
    local_cycles_per_dnode_[i] += res.cycles;
  }
  for (const std::uint16_t i : plan_.global_dnodes) {
    global_cycles_per_dnode_[i] += res.cycles;
  }
  return res;
}

}  // namespace sring
