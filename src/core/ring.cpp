#include "core/ring.hpp"

#include "common/error.hpp"

namespace sring {

Ring::Ring(const RingGeometry& g) : geom_(g) {
  geom_.validate();
  dnodes_.resize(geom_.dnode_count());
  pipes_.reserve(geom_.switch_count());
  for (std::size_t s = 0; s < geom_.switch_count(); ++s) {
    pipes_.emplace_back(geom_.lanes, geom_.fb_depth);
  }
  last_mode_.assign(geom_.dnode_count(), DnodeMode::kGlobal);
  ops_per_dnode_.assign(geom_.dnode_count(), 0);
  mac_ops_per_dnode_.assign(geom_.dnode_count(), 0);
  local_cycles_per_dnode_.assign(geom_.dnode_count(), 0);
  global_cycles_per_dnode_.assign(geom_.dnode_count(), 0);
  host_out_words_per_switch_.assign(geom_.switch_count(), 0);
  fb_reads_per_pipe_.assign(geom_.switch_count(), 0);
  fb_read_depth_counts_.assign(geom_.switch_count() * 16, 0);
  fetched_.assign(geom_.dnode_count(), nullptr);
  is_local_.assign(geom_.dnode_count(), false);
  needs_.assign(geom_.dnode_count(), {});
  effects_.assign(geom_.dnode_count(), {});
  pre_outs_.assign(geom_.dnode_count(), 0);
}

std::size_t Ring::flat_index(std::size_t layer, std::size_t lane) const {
  check(layer < geom_.layers && lane < geom_.lanes,
        "Ring: dnode coordinates out of range");
  return layer * geom_.lanes + lane;
}

std::size_t Ring::upstream_layer(std::size_t layer) const noexcept {
  return (layer + geom_.layers - 1) % geom_.layers;
}

Dnode& Ring::dnode(std::size_t layer, std::size_t lane) {
  return dnodes_[flat_index(layer, lane)];
}

const Dnode& Ring::dnode(std::size_t layer, std::size_t lane) const {
  return dnodes_[flat_index(layer, lane)];
}

Dnode& Ring::dnode_flat(std::size_t index) {
  check(index < dnodes_.size(), "Ring: dnode index out of range");
  return dnodes_[index];
}

const Dnode& Ring::dnode_flat(std::size_t index) const {
  check(index < dnodes_.size(), "Ring: dnode index out of range");
  return dnodes_[index];
}

const FeedbackPipeline& Ring::pipeline(std::size_t sw) const {
  check(sw < pipes_.size(), "Ring: switch index out of range");
  return pipes_[sw];
}

void Ring::write_local(std::size_t dnode_index, std::size_t slot,
                       std::uint64_t value) {
  check(dnode_index < dnodes_.size(), "Ring: dnode index out of range");
  dnodes_[dnode_index].local().write(slot, value);
}

Word Ring::read_feedback(const FeedbackAddr& addr) const {
  check(addr.pipe < pipes_.size(), "Ring: feedback pipe out of range");
  return pipes_[addr.pipe].read(addr.lane, addr.depth);
}

void Ring::note_fb_read(const FeedbackAddr& addr) {
  ++fb_reads_per_pipe_[addr.pipe];
  ++fb_read_depth_counts_[addr.pipe * std::size_t{16} + addr.depth];
}

void Ring::reset() {
  for (auto& d : dnodes_) d.reset();
  for (auto& p : pipes_) p.reset();
  last_mode_.assign(geom_.dnode_count(), DnodeMode::kGlobal);
  ops_per_dnode_.assign(geom_.dnode_count(), 0);
  mac_ops_per_dnode_.assign(geom_.dnode_count(), 0);
  local_cycles_per_dnode_.assign(geom_.dnode_count(), 0);
  global_cycles_per_dnode_.assign(geom_.dnode_count(), 0);
  host_out_words_per_switch_.assign(geom_.switch_count(), 0);
  fb_reads_per_pipe_.assign(geom_.switch_count(), 0);
  fb_read_depth_counts_.assign(geom_.switch_count() * 16, 0);
  bus_drives_ = 0;
  bus_conflicts_ = 0;
}

namespace {

/// True if `instr` reads the given operand source anywhere.
bool instr_reads(const DnodeInstr& instr, DnodeSrc src) {
  if (instr.op == DnodeOp::kNop) return false;
  if (instr.src_a == src) return true;
  if (op_uses_b(instr.op) && instr.src_b == src) return true;
  if (op_uses_c(instr.op) && instr.src_c == src) return true;
  return false;
}

}  // namespace

Ring::CycleResult Ring::step(const ConfigMemory& cfg, Word bus,
                             std::deque<Word>& host_in,
                             std::vector<Word>& host_out) {
  check(cfg.geometry().layers == geom_.layers &&
            cfg.geometry().lanes == geom_.lanes,
        "Ring::step: configuration memory geometry mismatch");

  const std::size_t n = geom_.dnode_count();

  // Phase 1: fetch.  A global->local transition resets the local
  // counter so a freshly entered local program starts at slot 0.
  for (std::size_t i = 0; i < n; ++i) {
    const DnodeMode mode = cfg.dnode_mode(i);
    if (mode == DnodeMode::kLocal && last_mode_[i] == DnodeMode::kGlobal) {
      dnodes_[i].local().reset_counter();
    }
    last_mode_[i] = mode;
    is_local_[i] = mode == DnodeMode::kLocal;
    fetched_[i] = is_local_[i] ? &dnodes_[i].local().current()
                               : &cfg.dnode_instr(i);
  }

  // Phase 2: count the host pops this cycle needs.
  std::size_t pops_needed = 0;
  for (std::size_t layer = 0; layer < geom_.layers; ++layer) {
    for (std::size_t lane = 0; lane < geom_.lanes; ++lane) {
      const std::size_t i = layer * geom_.lanes + lane;
      needs_[i] = PortNeed{};
      const DnodeInstr& instr = *fetched_[i];
      if (instr.op == DnodeOp::kNop) continue;
      const SwitchRoute& route = cfg.switch_route(layer, lane);
      if (route.in1.kind == RouteKind::kHost &&
          instr_reads(instr, DnodeSrc::kIn1)) {
        needs_[i].in1_host = true;
        ++pops_needed;
      }
      if (route.in2.kind == RouteKind::kHost &&
          instr_reads(instr, DnodeSrc::kIn2)) {
        needs_[i].in2_host = true;
        ++pops_needed;
      }
      if (instr_reads(instr, DnodeSrc::kHost)) {
        needs_[i].direct_host = true;
        ++pops_needed;
      }
    }
  }

  CycleResult result;
  if (host_in.size() < pops_needed) {
    result.stalled = true;
    return result;  // systolic back-pressure: nothing advances
  }

  for (std::size_t i = 0; i < n; ++i) {
    ++(is_local_[i] ? local_cycles_per_dnode_ : global_cycles_per_dnode_)[i];
  }

  // Phase 3+4: route and execute.  Routing reads only pre-edge state
  // (output registers, pipelines, bus), so evaluation order across
  // Dnodes does not matter except for the documented host pop order.
  for (std::size_t layer = 0; layer < geom_.layers; ++layer) {
    const std::size_t up = upstream_layer(layer);
    for (std::size_t lane = 0; lane < geom_.lanes; ++lane) {
      const std::size_t i = layer * geom_.lanes + lane;
      effects_[i] = Dnode::Effects{};
      const DnodeInstr& instr = *fetched_[i];
      if (instr.op == DnodeOp::kNop) continue;
      const SwitchRoute& route = cfg.switch_route(layer, lane);

      Dnode::Inputs in;
      const auto resolve_port = [&](const PortRoute& p,
                                    bool pops) -> Word {
        switch (p.kind) {
          case RouteKind::kZero:
            return 0;
          case RouteKind::kPrev:
            check(p.lane < geom_.lanes, "Ring: route lane out of range");
            return dnodes_[flat_index(up, p.lane)].out();
          case RouteKind::kHost: {
            if (!pops) return 0;
            const Word w = host_in.front();
            host_in.pop_front();
            ++result.host_words_in;
            return w;
          }
          case RouteKind::kFeedback:
            return read_feedback(p.fb);
          case RouteKind::kBus:
            return bus;
          case RouteKind::kKindCount:
            break;
        }
        throw SimError("Ring: bad route kind");
      };

      in.in1 = resolve_port(route.in1, needs_[i].in1_host);
      in.in2 = resolve_port(route.in2, needs_[i].in2_host);
      in.fifo1 = read_feedback(route.fifo1);
      in.fifo2 = read_feedback(route.fifo2);
      in.bus = bus;
      // Feedback-occupancy accounting: only reads the instruction
      // actually consumes (the ports above are sampled regardless).
      if (route.in1.kind == RouteKind::kFeedback &&
          instr_reads(instr, DnodeSrc::kIn1)) {
        note_fb_read(route.in1.fb);
      }
      if (route.in2.kind == RouteKind::kFeedback &&
          instr_reads(instr, DnodeSrc::kIn2)) {
        note_fb_read(route.in2.fb);
      }
      if (instr_reads(instr, DnodeSrc::kFifo1)) note_fb_read(route.fifo1);
      if (instr_reads(instr, DnodeSrc::kFifo2)) note_fb_read(route.fifo2);
      if (needs_[i].direct_host) {
        in.host = host_in.front();
        host_in.pop_front();
        ++result.host_words_in;
      }

      effects_[i] = dnodes_[i].execute(instr, in);
      if (effects_[i].executed) {
        ++result.ops;
        const bool is_mac =
            instr.op == DnodeOp::kMac || instr.op == DnodeOp::kMsu;
        result.arith_ops += is_mac ? 2 : 1;
        ++ops_per_dnode_[i];
        if (is_mac) ++mac_ops_per_dnode_[i];
      }
    }
  }

  // Capture pre-edge output vectors: these are what the feedback
  // pipelines and host-out taps latch at this clock edge.
  for (std::size_t i = 0; i < n; ++i) {
    pre_outs_[i] = dnodes_[i].out();
  }

  // Phase 5: commit.
  for (std::size_t i = 0; i < n; ++i) {
    dnodes_[i].commit(is_local_[i]);
  }
  for (std::size_t s = 0; s < geom_.switch_count(); ++s) {
    const std::size_t up = upstream_layer(s);
    pipes_[s].push_from(pre_outs_.data() + up * geom_.lanes);
  }

  // Host output: switch taps first (switch order), then Dnode hostEn
  // results (dnode order).  Bus drive: highest dnode index wins.
  for (std::size_t s = 0; s < geom_.switch_count(); ++s) {
    for (std::size_t lane = 0; lane < geom_.lanes; ++lane) {
      const SwitchRoute& route = cfg.switch_route(s, lane);
      if (route.host_out_en) {
        check(route.host_out_lane < geom_.lanes,
              "Ring: host-out lane out of range");
        host_out.push_back(
            pre_outs_[upstream_layer(s) * geom_.lanes + route.host_out_lane]);
        ++result.host_words_out;
        ++host_out_words_per_switch_[s];
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (effects_[i].executed && effects_[i].host_en) {
      host_out.push_back(effects_[i].result);
      ++result.host_words_out;
    }
    if (effects_[i].executed && effects_[i].bus_en) {
      ++bus_drives_;
      if (result.bus_drive.has_value()) ++bus_conflicts_;
      result.bus_drive = effects_[i].result;
    }
  }
  return result;
}

}  // namespace sring
