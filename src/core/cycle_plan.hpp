// Decoded cycle plan — the Ring's compiled hot path.
//
// The paper's hardware multiplexing lets the controller rewrite any
// configuration word every cycle, but between rewrites the
// configuration layer is stable.  Re-interpreting ConfigMemory every
// cycle (fetch mode word, fetch microinstruction, decode route kinds,
// re-derive host-pop needs, re-validate feedback addresses) made the
// interpreter the throughput ceiling.  A CyclePlan flattens the current
// configuration page + per-Dnode mode vector into pre-resolved operand
// sources, pre-validated route indices, a host-pop schedule and the
// host-out tap list, so steady-state cycles execute straight from the
// plan.
//
// Attachment contract: a plan is *attached* (executing without any
// per-cycle checks beyond the stamp compare) exactly while
//   (cfg.uid(), cfg.generation(), ring local-control generation)
// match the values stamped at the last attach.  Every ConfigMemory
// write path (WRCFG/WRMODE/WRSW, page swaps, reset_live) bumps the
// generation; Ring::write_local (the controller's WRLOC path) bumps
// the local generation.  A stamp mismatch only *detaches* — compiled
// plans live in the Ring's bounded content-keyed cache and re-attach
// whenever the rewritten configuration's content matches a cached key
// (see Ring), so hardware multiplexing over a repertoire of
// configurations recompiles each distinct content once, not once per
// rewrite.  The interpreter remains the reference for content never
// seen twice.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/config_memory.hpp"
#include "core/dnode.hpp"
#include "core/switch.hpp"
#include "isa/dnode_instr.hpp"

namespace sring {

/// Everything one Dnode needs to execute one specific microinstruction:
/// the decoded instruction plus its operand routing with all validation
/// hoisted to compile time.
struct PlannedSlot {
  /// Pre-resolved source of one input port.  kHost always pops (a host
  /// route whose operand the instruction never reads compiles to
  /// kZero, matching the interpreter's "no pop, value 0" behaviour).
  enum class Port : std::uint8_t { kZero, kPrev, kHost, kFeedback, kBus };

  DnodeInstr instr{};            ///< decoded copy (owned by the plan)
  bool nop = true;
  bool is_mac = false;           ///< MAC/MSU: counts as two arith ops
  Port in1 = Port::kZero;
  Port in2 = Port::kZero;
  std::uint16_t in1_prev = 0;    ///< flat upstream Dnode index (kPrev)
  std::uint16_t in2_prev = 0;
  FeedbackAddr in1_fb{};         ///< pre-validated (kFeedback)
  FeedbackAddr in2_fb{};
  bool read_fifo1 = false;       ///< instruction consumes fifo1/fifo2
  bool read_fifo2 = false;
  FeedbackAddr fifo1{};          ///< pre-validated
  FeedbackAddr fifo2{};
  bool direct_pop = false;       ///< instruction reads the HOST source
  std::uint8_t pops = 0;         ///< host words this slot consumes
};

/// Per-Dnode plan: one slot in global mode, the whole local
/// microprogram (slots 0..limit) in stand-alone mode.
struct PlannedDnode {
  bool is_local = false;
  /// Any reachable slot is non-NOP: this Dnode can change state during
  /// a superstep (the fused loop tracks only active Dnodes' outputs).
  bool active = false;
  /// Local program length (limit + 1); 1 when !is_local.
  std::uint8_t local_len = 1;
  PlannedSlot global;                                  ///< !is_local
  std::array<PlannedSlot, kLocalProgramSlots> local{}; ///< is_local
};

/// One switch host-out tap: which pre-edge output word it forwards.
struct HostTapPlan {
  std::uint32_t src = 0;  ///< flat index into the pre-edge output vector
  std::uint32_t sw = 0;   ///< owning switch (per-switch statistics)
};

/// Superstep schedules repeat with the LCM of the active local program
/// lengths.  Periods beyond this cap (mixed 5/7/8-step programs can
/// reach 840) are not worth unrolling — the plan marks them
/// superstep-ineligible and the per-cycle planned path handles them.
inline constexpr std::size_t kMaxSuperstepPeriod = 64;

struct CyclePlan {
  bool valid = false;
  // Invalidation key captured at compile time (see header comment).
  std::uint64_t cfg_uid = 0;
  std::uint64_t cfg_generation = 0;
  std::uint64_t local_generation = 0;

  std::size_t static_pops = 0;  ///< host pops from global-mode Dnodes
  /// LCM of local program lengths (the schedule repeat period for the
  /// superstep engine); 0 when it would exceed kMaxSuperstepPeriod.
  std::size_t superstep_period = 1;
  std::vector<PlannedDnode> dnodes;          ///< [layer * lanes + lane]
  std::vector<std::uint16_t> local_dnodes;   ///< flat indices, ascending
  std::vector<std::uint16_t> global_dnodes;  ///< flat indices, ascending
  /// Active Dnodes (some reachable non-NOP slot), ascending.  The
  /// per-cycle planned path iterates only these — the ascending order
  /// preserves the documented host pop and output drain order.
  std::vector<std::uint16_t> exec_dnodes;
  std::vector<HostTapPlan> host_taps;        ///< switch-asc, lane-asc
};

/// Compile the live configuration + local-control programs into `plan`
/// (storage is reused across recompiles; the caller stamps the
/// invalidation key and `valid`).  Throws SimError on any route the
/// interpreter would reject at execution time — pre-validation must
/// not accept configurations the cycle-accurate path rejects.
void compile_cycle_plan(const RingGeometry& geom, const ConfigMemory& cfg,
                        const std::vector<Dnode>& dnodes, CyclePlan& plan);

}  // namespace sring
