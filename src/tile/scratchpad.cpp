#include "tile/scratchpad.hpp"

#include "common/error.hpp"

namespace sring::tile {

Scratchpad::Scratchpad(std::size_t capacity_tiles)
    : capacity_(capacity_tiles) {
  check(capacity_ >= 1, "tile: scratchpad capacity must be >= 1 tile");
}

void Scratchpad::touch(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

void Scratchpad::evict_over_capacity() {
  // Walk from the LRU end, skipping pinned tiles.  Pinned residency
  // above capacity is allowed (and is the caller's sizing bug).
  auto it = lru_.end();
  while (entries_.size() > capacity_ && it != lru_.begin()) {
    --it;
    auto found = entries_.find(*it);
    if (found == entries_.end() || found->second.tile.pinned) continue;
    it = lru_.erase(it);
    entries_.erase(found);
    ++evictions_;
  }
}

const StagedTile& Scratchpad::get_or_fill(const TileKey& key,
                                          const Filler& fill) {
  auto found = entries_.find(key);
  if (found != entries_.end()) {
    ++hits_;
    bytes_saved_ += found->second.tile.bytes();
    touch(found->second);
    return found->second.tile;
  }
  return this->fill(key, fill());
}

const StagedTile& Scratchpad::fill(const TileKey& key, StagedTile tile) {
  ++refills_;
  bytes_filled_ += tile.bytes();
  auto found = entries_.find(key);
  if (found != entries_.end()) {
    const bool pinned = found->second.tile.pinned;
    found->second.tile = std::move(tile);
    found->second.tile.pinned = pinned;
    touch(found->second);
    return found->second.tile;
  }
  lru_.push_front(key);
  Entry entry;
  entry.tile = std::move(tile);
  entry.lru_it = lru_.begin();
  auto [it, inserted] = entries_.emplace(key, std::move(entry));
  evict_over_capacity();
  return it->second.tile;
}

bool Scratchpad::contains(const TileKey& key) const {
  return entries_.find(key) != entries_.end();
}

void Scratchpad::retain(const TileKey& key) {
  auto found = entries_.find(key);
  if (found != entries_.end()) found->second.tile.pinned = true;
}

void Scratchpad::release(const TileKey& key) {
  auto found = entries_.find(key);
  if (found != entries_.end()) found->second.tile.pinned = false;
}

bool Scratchpad::evict(const TileKey& key) {
  auto found = entries_.find(key);
  if (found == entries_.end() || found->second.tile.pinned) return false;
  lru_.erase(found->second.lru_it);
  entries_.erase(found);
  ++evictions_;
  return true;
}

void Scratchpad::clear() {
  evictions_ += entries_.size();
  entries_.clear();
  lru_.clear();
}

void Scratchpad::export_metrics(obs::Registry& reg) const {
  reg.counter("tile.scratch.hits").add(hits_);
  reg.counter("tile.scratch.refills").add(refills_);
  reg.counter("tile.scratch.evictions").add(evictions_);
  reg.counter("tile.scratch.bytes_filled").add(bytes_filled_);
  reg.counter("tile.scratch.bytes_saved").add(bytes_saved_);
  reg.counter("tile.scratch.resident").set(entries_.size());
  reg.counter("tile.scratch.capacity").set(capacity_);
}

}  // namespace sring::tile
