// Tile planner: decomposes an MxKxN narrow-integer GEMM into the
// ordered schedule of 8-row x tile_n-column output tiles the matvec8
// engine can execute, with inter-tile operand reuse computed up front.
//
// Tiling grid.  The matvec8 configware page fixes the A sub-tile at
// 8x8 (one baked Matrix8, eight Dnode rows) and consumes K in chunks
// of 8; only the output-tile width tile_n is free.  A TileStep (ti,
// tk, tj) computes the partial products of output rows [8*ti, 8*ti+8)
// x columns [tile_n*tj, ...) contributed by K-chunk tk.  Ragged edges
// are zero-padded — zero rows/columns contribute zero to the wrapped
// accumulation, so padding never perturbs the result.
//
// Mappings order the same step set differently:
//   output-stationary  (ti, tj, tk): the 8 x tile_n output tile stays
//     in the host accumulator while its K-chunks stream through;
//   weight-stationary  (ti, tk, tj): the A sub-tile (the "weight", a
//     baked configware page) stays resident across all column tiles,
//     so consecutive jobs share a program_key and re-arm from the
//     SystemPool/plan cache instead of recompiling.
//
// plan_gemm replays the step order against the same LRU model the
// Scratchpad implements, so the predicted hits/refills/bytes match
// the observed tile.scratch.* counters exactly (tested).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "tile/gemm_ref.hpp"
#include "tile/scratchpad.hpp"

namespace sring::tile {

/// A sub-tile height / K-chunk depth, fixed by the matvec8 engine.
inline constexpr std::size_t kTileM = 8;
inline constexpr std::size_t kTileK = 8;

/// One schedule entry: row-band ti, K-chunk tk, column tile tj.
struct TileStep {
  std::uint32_t ti = 0;
  std::uint32_t tk = 0;
  std::uint32_t tj = 0;

  bool operator==(const TileStep&) const = default;
};

/// Scratchpad keys of a step's operand tiles.
TileKey a_tile_key(const TileStep& step) noexcept;
TileKey b_tile_key(const TileStep& step) noexcept;

struct TileSchedule {
  GemmSpec spec;
  std::size_t tiles_m = 0;  ///< ceil(m / 8)
  std::size_t tiles_k = 0;  ///< ceil(k / 8)
  std::size_t tiles_n = 0;  ///< ceil(n / tile_n)
  std::vector<TileStep> steps;

  std::size_t a_tile_words = 0;  ///< 64 (one Matrix8)
  std::size_t b_tile_words = 0;  ///< 8 * tile_n feed words

  /// Predicted traffic for a scratchpad of the planned capacity:
  std::size_t scratch_capacity = 0;
  std::uint64_t streamed_bytes = 0;   ///< per-job streaming, no reuse
  std::uint64_t staged_bytes = 0;     ///< predicted refill traffic
  std::uint64_t expected_hits = 0;
  std::uint64_t expected_refills = 0;
  /// streamed_bytes / staged_bytes — the operand-traffic reduction an
  /// LRU scratchpad of this capacity delivers on this schedule.
  double reuse_factor = 1.0;
};

/// Plan the tile schedule of `spec` for a scratchpad holding
/// `scratch_capacity` tiles.  Throws SimError on an invalid spec.
TileSchedule plan_gemm(const GemmSpec& spec, std::size_t scratch_capacity);

/// Bounded LRU of tile schedules keyed by (GemmSpec, scratch capacity).
/// plan_gemm replays the whole schedule against the eviction model, so
/// re-planning an identical request is pure waste — the net server
/// (which sees the same GEMM shapes over and over) asks the cache
/// instead.  Thread-safe: shards share one instance; the returned
/// schedule is immutable and outlives eviction via shared_ptr.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  /// The cached schedule for (spec, scratch_capacity), planning and
  /// inserting on a miss.  Throws SimError (without caching anything)
  /// on an invalid spec.
  std::shared_ptr<const TileSchedule> get_or_plan(
      const GemmSpec& spec, std::size_t scratch_capacity);

  std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;

 private:
  struct Entry {
    GemmSpec spec;
    std::size_t scratch_capacity = 0;
    std::shared_ptr<const TileSchedule> sched;
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace sring::tile
