#include "tile/gemm_job.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "kernels/matvec_kernel.hpp"

namespace sring::tile {

namespace {

/// FNV-1a over a word sequence (same content-hash idiom as
/// kernels/jobs.cpp program keys).
std::uint64_t fnv1a(std::span<const Word> words) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const Word w : words) {
    for (int shift = 0; shift < 16; shift += 8) {
      h ^= (w >> shift) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

}  // namespace

GemmJobBuilder::GemmJobBuilder(const RingGeometry& geometry,
                               Scratchpad& scratch)
    : geometry_(geometry), scratch_(scratch) {
  geometry_.validate();
  check(geometry_.dnode_count() >= kTileM,
        "tile: GEMM lowering needs at least 8 Dnodes (matvec8 rows)");
}

const StagedTile& GemmJobBuilder::stage_a(const TileSchedule& sched,
                                          const TileStep& step,
                                          std::span<const Word> a) {
  return scratch_.get_or_fill(a_tile_key(step), [&] {
    const GemmSpec& spec = sched.spec;
    // Pack the 8x8 sub-matrix, zero-padding ragged edges: zero rows
    // produce discarded outputs, zero columns multiply padded feed
    // words, both contribute nothing to the wrapped accumulation.
    dsp::Matrix8 m{};
    StagedTile tile;
    tile.words.resize(kTileM * kTileK, 0);
    for (std::size_t r = 0; r < kTileM; ++r) {
      const std::size_t row = std::size_t{step.ti} * kTileM + r;
      if (row >= spec.m) break;
      for (std::size_t q = 0; q < kTileK; ++q) {
        const std::size_t col = std::size_t{step.tk} * kTileK + q;
        if (col >= spec.k) break;
        m[r][q] = a[row * spec.k + col];
        tile.words[r * kTileK + q] = m[r][q];
      }
    }
    tile.program = std::make_shared<const LoadableProgram>(
        kernels::make_matvec8_program(geometry_, m, spec.tile_n));
    char key[96];
    std::snprintf(key, sizeof(key), "gemm.tile/L%zux%zufb%zu/b%zu/%016llx",
                  geometry_.layers, geometry_.lanes, geometry_.fb_depth,
                  spec.tile_n,
                  static_cast<unsigned long long>(fnv1a(tile.words)));
    tile.program_key = key;
    return tile;
  });
}

const StagedTile& GemmJobBuilder::stage_b(const TileSchedule& sched,
                                          const TileStep& step,
                                          std::span<const Word> b) {
  return scratch_.get_or_fill(b_tile_key(step), [&] {
    const GemmSpec& spec = sched.spec;
    // Feed order: one 8-word block per output column — the K-chunk's
    // values of that column, zero-padded past the operand edge.
    StagedTile tile;
    tile.words.resize(spec.tile_n * kTileK, 0);
    for (std::size_t c = 0; c < spec.tile_n; ++c) {
      const std::size_t col = std::size_t{step.tj} * spec.tile_n + c;
      if (col >= spec.n) break;
      for (std::size_t q = 0; q < kTileK; ++q) {
        const std::size_t row = std::size_t{step.tk} * kTileK + q;
        if (row >= spec.k) break;
        tile.words[c * kTileK + q] = b[row * spec.n + col];
      }
    }
    return tile;
  });
}

rt::Job GemmJobBuilder::build(const TileSchedule& sched,
                              const TileStep& step, std::span<const Word> a,
                              std::span<const Word> b) {
  const GemmSpec& spec = sched.spec;
  check(a.size() == spec.m * spec.k,
        "tile: A operand size does not match m*k");
  check(b.size() == spec.k * spec.n,
        "tile: B operand size does not match k*n");

  // Copy the A tile's handles before staging B: with a tiny
  // scratchpad, staging B may evict the A entry we hold a reference
  // into.
  const StagedTile& a_tile = stage_a(sched, step, a);
  std::shared_ptr<const LoadableProgram> program = a_tile.program;
  std::string program_key = a_tile.program_key;
  const StagedTile& b_tile = stage_b(sched, step, b);

  rt::Job job;
  job.name = "gemm.tile";
  job.program = std::move(program);
  job.program_key = std::move(program_key);
  job.input = b_tile.words;
  job.run = rt::Job::Run::kUntilHalt;
  job.max_cycles = 64 + 40 * job.input.size();
  job.drain_cycles = 2;
  job.take_words = output_words(sched);
  return job;
}

}  // namespace sring::tile
