#include "tile/gemm_ref.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace sring::tile {

const char* dtype_name(Dtype dtype) noexcept {
  return dtype == Dtype::kInt8 ? "int8" : "int16";
}

const char* mapping_name(Mapping mapping) noexcept {
  return mapping == Mapping::kOutputStationary ? "os" : "ws";
}

Word narrow_readback(Word acc, unsigned shift, Dtype dtype) {
  check(shift <= kMaxReadbackShift,
        "tile: readback shift exceeds the 16-bit accumulator width");
  std::int32_t v = as_signed(acc);
  if (shift > 0) {
    // Round half toward +inf, then arithmetic shift (C++20 defines
    // signed right shift as arithmetic).
    v = (v + (std::int32_t{1} << (shift - 1))) >> shift;
  }
  v = std::clamp(v, dtype_min(dtype), dtype_max(dtype));
  return to_word(v);
}

void GemmSpec::validate() const {
  check(m >= 1 && k >= 1 && n >= 1, "tile: GEMM dimensions must be >= 1");
  check(shift <= kMaxReadbackShift,
        "tile: readback shift exceeds the 16-bit accumulator width");
  check(tile_n >= 1, "tile: tile_n must be >= 1");
}

std::vector<Word> gemm_reference(const GemmSpec& spec,
                                 std::span<const Word> a,
                                 std::span<const Word> b) {
  spec.validate();
  check(a.size() == spec.m * spec.k,
        "tile: A operand size does not match m*k");
  check(b.size() == spec.k * spec.n,
        "tile: B operand size does not match k*n");
  std::vector<Word> c(spec.m * spec.n);
  for (std::size_t i = 0; i < spec.m; ++i) {
    for (std::size_t j = 0; j < spec.n; ++j) {
      std::int64_t sum = 0;
      for (std::size_t kk = 0; kk < spec.k; ++kk) {
        sum += std::int64_t{as_signed(a[i * spec.k + kk])} *
               as_signed(b[kk * spec.n + j]);
      }
      // One truncation at the end equals the ring's per-step wrapping
      // (mod-2^16 arithmetic is a homomorphism from int64).
      c[i * spec.n + j] = narrow_readback(to_word(sum), spec.shift,
                                          spec.dtype);
    }
  }
  return c;
}

GemmSpec Conv2dSpec::as_gemm() const {
  GemmSpec g;
  g.m = filters;
  g.k = kh * kw;
  g.n = out_h() * out_w();
  g.dtype = dtype;
  g.shift = shift;
  g.mapping = mapping;
  g.tile_n = tile_n;
  return g;
}

void Conv2dSpec::validate() const {
  check(kh >= 1 && kw >= 1 && filters >= 1,
        "tile: conv2d filter shape must be >= 1");
  check(in_h >= kh && in_w >= kw,
        "tile: conv2d input smaller than the filter window");
  as_gemm().validate();
}

std::vector<Word> im2col(const Conv2dSpec& spec,
                         std::span<const Word> image) {
  spec.validate();
  check(image.size() == spec.in_h * spec.in_w,
        "tile: conv2d image size does not match in_h*in_w");
  const std::size_t oh = spec.out_h();
  const std::size_t ow = spec.out_w();
  std::vector<Word> b(spec.kh * spec.kw * oh * ow);
  for (std::size_t fy = 0; fy < spec.kh; ++fy) {
    for (std::size_t fx = 0; fx < spec.kw; ++fx) {
      const std::size_t row = fy * spec.kw + fx;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          b[row * (oh * ow) + oy * ow + ox] =
              image[(oy + fy) * spec.in_w + (ox + fx)];
        }
      }
    }
  }
  return b;
}

std::vector<Word> random_operand(std::size_t count, Dtype dtype,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> out(count);
  for (Word& w : out) {
    w = rng.next_word_in(dtype_min(dtype), dtype_max(dtype));
  }
  return out;
}

}  // namespace sring::tile
