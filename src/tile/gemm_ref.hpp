// Narrow-integer GEMM/conv specifications and the scalar golden model
// the tiled lowering is held bit-exact against.
//
// Arithmetic contract.  The ring's MAC wraps every partial sum to 16
// bits (`to_word(a*b + acc)` per step, src/core/alu.hpp).  Because
// truncation mod 2^16 is a ring homomorphism from int64, the fully
// wrapped per-step accumulation equals the exact int64 dot product
// truncated once at the end — and host-side accumulation of per-chunk
// partial products with wrapping adds is order-independent.  That is
// what lets the tiled runner (and the server's asynchronous tile
// orchestration) combine K-chunks in any completion order and still
// match this reference word-for-word.
//
// Readback narrowing follows the systolic-accelerator idiom (Gemmini's
// out_rounding_saturating_shift): round half up on the signed value,
// arithmetic right shift, saturate into the int8/int16 range.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace sring::tile {

/// Element type of a GEMM/conv operand and of the narrowed output.
/// Operands are stored sign-extended in 16-bit datapath words.
enum class Dtype : std::uint8_t { kInt8 = 0, kInt16 = 1 };

/// Tile-schedule mapping: which operand stays resident across the
/// inner loop (see docs/WORKLOADS.md).
enum class Mapping : std::uint8_t {
  kOutputStationary = 0,  ///< (ti, tj) outer, K-chunks inner
  kWeightStationary = 1,  ///< (ti, tk) outer, column tiles inner
};

const char* dtype_name(Dtype dtype) noexcept;
const char* mapping_name(Mapping mapping) noexcept;

constexpr std::int32_t dtype_min(Dtype dtype) noexcept {
  return dtype == Dtype::kInt8 ? -128 : -32768;
}
constexpr std::int32_t dtype_max(Dtype dtype) noexcept {
  return dtype == Dtype::kInt8 ? 127 : 32767;
}

/// Maximum rounding shift: shifting a 16-bit accumulator further
/// always yields 0/-1, so larger requests are a caller bug.
inline constexpr unsigned kMaxReadbackShift = 15;

/// Rounding-saturating readback: interpret the wrapped 16-bit
/// accumulator as signed, add 2^(shift-1) (round half toward +inf),
/// arithmetic-shift right, clamp into the dtype range.  shift == 0
/// saturates only.
Word narrow_readback(Word acc, unsigned shift, Dtype dtype);

/// One MxKxN narrow-integer GEMM: C = narrow((A x B) >> shift).
/// A is row-major m*k, B row-major k*n, both as sign-extended words.
struct GemmSpec {
  std::size_t m = 8;
  std::size_t k = 8;
  std::size_t n = 8;
  Dtype dtype = Dtype::kInt8;
  unsigned shift = 0;  ///< rounding right shift on readback
  Mapping mapping = Mapping::kOutputStationary;
  /// Output-tile width in columns (the streamed B-block count per tile
  /// job); tile height and K-chunk depth are fixed at 8 by the matvec8
  /// engine.
  std::size_t tile_n = 8;

  /// Throws SimError on degenerate dimensions / out-of-range fields.
  void validate() const;

  bool operator==(const GemmSpec&) const = default;
};

/// Scalar golden model: exact int64 dot products truncated to the
/// ring's 16-bit accumulator, then narrow_readback per element.
/// Returns row-major m*n words.
std::vector<Word> gemm_reference(const GemmSpec& spec,
                                 std::span<const Word> a,
                                 std::span<const Word> b);

/// 'valid' (no padding) 2-D convolution of one single-channel image
/// with `filters` kh x kw kernels, lowered to GEMM by im2col:
/// A = filters x (kh*kw) filter matrix, B = (kh*kw) x (out_h*out_w)
/// patch matrix.
struct Conv2dSpec {
  std::size_t in_h = 16;
  std::size_t in_w = 16;
  std::size_t kh = 3;
  std::size_t kw = 3;
  std::size_t filters = 8;
  Dtype dtype = Dtype::kInt8;
  unsigned shift = 0;
  Mapping mapping = Mapping::kOutputStationary;
  std::size_t tile_n = 8;

  std::size_t out_h() const noexcept { return in_h - kh + 1; }
  std::size_t out_w() const noexcept { return in_w - kw + 1; }

  /// The GEMM this convolution lowers to.
  GemmSpec as_gemm() const;

  void validate() const;
};

/// Unfold `image` (row-major in_h*in_w) into the im2col patch matrix
/// B: row (fy*kw+fx), column (oy*out_w+ox) holds
/// image[oy+fy][ox+fx].
std::vector<Word> im2col(const Conv2dSpec& spec,
                         std::span<const Word> image);

/// Deterministic operand filled with uniform values in the dtype's
/// range, stored sign-extended.
std::vector<Word> random_operand(std::size_t count, Dtype dtype,
                                 std::uint64_t seed);

}  // namespace sring::tile
