// Host-side operand scratchpad: the staging buffer between operand
// memory and the ring's host FIFOs.
//
// Hardware systolic arrays (the paper's §3 host/IP split; Gemmini's
// scratchpad sized in matrices) win by staging operand tiles once and
// reusing them across many output tiles instead of re-streaming them
// per job.  This models that memory level on the host: a bounded LRU
// store of packed operand tiles, where a hit means the tile's bytes
// did NOT have to travel from operand memory again.  A-tiles
// additionally carry their baked matvec configware page, so a hit
// also re-arms the ring from the plan/pool caches instead of
// recompiling.
//
// Counters (exported as tile.scratch.* via export_metrics):
//   hits          tile already staged when requested
//   refills       tile staged from operand memory (miss or explicit)
//   evictions     LRU or explicit evictions
//   bytes_filled  operand bytes staged (the scratchpad's real traffic)
//   bytes_saved   operand bytes a streamed-per-job baseline would
//                 have refetched (tile bytes per hit)
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "sim/program.hpp"

namespace sring::tile {

/// Which operand grid a staged tile belongs to.
enum class Operand : std::uint8_t { kA = 0, kB = 1 };

/// Identity of one operand tile in its tile grid.
struct TileKey {
  Operand operand = Operand::kA;
  std::uint32_t row = 0;
  std::uint32_t col = 0;

  bool operator==(const TileKey&) const = default;
};

struct TileKeyHash {
  std::size_t operator()(const TileKey& k) const noexcept {
    // Fibonacci-mix the packed coordinates; operand in the top bit.
    const std::uint64_t packed =
        (std::uint64_t{static_cast<std::uint8_t>(k.operand)} << 62) |
        (std::uint64_t{k.row} << 31) | k.col;
    return static_cast<std::size_t>(packed * 0x9E3779B97F4A7C15ull);
  }
};

/// One staged tile: the packed words (A: row-major 8x8 sub-matrix;
/// B: column-major feed blocks) plus, for A tiles, the matvec page
/// program baked from them and its pool-reuse key.
struct StagedTile {
  std::vector<Word> words;
  std::shared_ptr<const LoadableProgram> program;
  std::string program_key;
  bool pinned = false;

  std::size_t bytes() const noexcept { return words.size() * sizeof(Word); }
};

/// Bounded LRU staging buffer sized in operand tiles.
class Scratchpad {
 public:
  explicit Scratchpad(std::size_t capacity_tiles = 64);

  using Filler = std::function<StagedTile()>;

  /// The tile at `key`, staging it via `fill` on a miss.  A hit counts
  /// the tile's bytes as saved traffic; a miss counts a refill and the
  /// staged bytes, evicting the LRU unpinned tile when over capacity.
  /// The reference stays valid until the tile is evicted.
  const StagedTile& get_or_fill(const TileKey& key, const Filler& fill);

  /// Explicit alloc+fill: stage `tile` at `key` now (replacing any
  /// resident tile), counting a refill.
  const StagedTile& fill(const TileKey& key, StagedTile tile);

  bool contains(const TileKey& key) const;

  /// Pin `key` against LRU eviction (no-op when absent).  Pinned tiles
  /// can push residency above capacity; that is the caller's bug.
  void retain(const TileKey& key);
  void release(const TileKey& key);

  /// Drop `key` now; false when absent or pinned.
  bool evict(const TileKey& key);
  void clear();

  std::size_t capacity_tiles() const noexcept { return capacity_; }
  std::size_t resident_tiles() const noexcept { return entries_.size(); }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t refills() const noexcept { return refills_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t bytes_filled() const noexcept { return bytes_filled_; }
  std::uint64_t bytes_saved() const noexcept { return bytes_saved_; }

  /// Export the tile.scratch.* counters into `reg`.
  void export_metrics(obs::Registry& reg) const;

 private:
  struct Entry {
    StagedTile tile;
    std::list<TileKey>::iterator lru_it;
  };

  void touch(Entry& entry);
  void evict_over_capacity();

  std::size_t capacity_;
  std::list<TileKey> lru_;  ///< front = most recently used
  std::unordered_map<TileKey, Entry, TileKeyHash> entries_;

  std::uint64_t hits_ = 0;
  std::uint64_t refills_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t bytes_filled_ = 0;
  std::uint64_t bytes_saved_ = 0;
};

}  // namespace sring::tile
