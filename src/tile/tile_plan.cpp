#include "tile/tile_plan.hpp"

#include <list>
#include <unordered_map>

#include "common/error.hpp"

namespace sring::tile {

TileKey a_tile_key(const TileStep& step) noexcept {
  return TileKey{Operand::kA, step.ti, step.tk};
}

TileKey b_tile_key(const TileStep& step) noexcept {
  return TileKey{Operand::kB, step.tk, step.tj};
}

namespace {

/// Replay the step order against the Scratchpad's LRU policy without
/// materializing tiles — pure key bookkeeping, O(steps).
void predict_reuse(TileSchedule& sched) {
  const std::uint64_t a_bytes = sched.a_tile_words * sizeof(Word);
  const std::uint64_t b_bytes = sched.b_tile_words * sizeof(Word);

  std::list<TileKey> lru;
  std::unordered_map<TileKey, std::list<TileKey>::iterator, TileKeyHash>
      resident;
  const auto access = [&](const TileKey& key, std::uint64_t bytes) {
    sched.streamed_bytes += bytes;
    auto found = resident.find(key);
    if (found != resident.end()) {
      ++sched.expected_hits;
      lru.splice(lru.begin(), lru, found->second);
      return;
    }
    ++sched.expected_refills;
    sched.staged_bytes += bytes;
    lru.push_front(key);
    resident[key] = lru.begin();
    if (resident.size() > sched.scratch_capacity) {
      resident.erase(lru.back());
      lru.pop_back();
    }
  };

  for (const TileStep& step : sched.steps) {
    access(a_tile_key(step), a_bytes);
    access(b_tile_key(step), b_bytes);
  }
  sched.reuse_factor =
      sched.staged_bytes > 0
          ? static_cast<double>(sched.streamed_bytes) /
                static_cast<double>(sched.staged_bytes)
          : 1.0;
}

}  // namespace

TileSchedule plan_gemm(const GemmSpec& spec,
                       std::size_t scratch_capacity) {
  spec.validate();
  check(scratch_capacity >= 1,
        "tile: scratchpad capacity must be >= 1 tile");

  TileSchedule sched;
  sched.spec = spec;
  sched.tiles_m = (spec.m + kTileM - 1) / kTileM;
  sched.tiles_k = (spec.k + kTileK - 1) / kTileK;
  sched.tiles_n = (spec.n + spec.tile_n - 1) / spec.tile_n;
  sched.a_tile_words = kTileM * kTileK;
  sched.b_tile_words = kTileK * spec.tile_n;
  sched.scratch_capacity = scratch_capacity;

  sched.steps.reserve(sched.tiles_m * sched.tiles_k * sched.tiles_n);
  const auto step = [](std::size_t ti, std::size_t tk, std::size_t tj) {
    return TileStep{static_cast<std::uint32_t>(ti),
                    static_cast<std::uint32_t>(tk),
                    static_cast<std::uint32_t>(tj)};
  };
  if (spec.mapping == Mapping::kOutputStationary) {
    for (std::size_t ti = 0; ti < sched.tiles_m; ++ti) {
      for (std::size_t tj = 0; tj < sched.tiles_n; ++tj) {
        for (std::size_t tk = 0; tk < sched.tiles_k; ++tk) {
          sched.steps.push_back(step(ti, tk, tj));
        }
      }
    }
  } else {
    for (std::size_t ti = 0; ti < sched.tiles_m; ++ti) {
      for (std::size_t tk = 0; tk < sched.tiles_k; ++tk) {
        for (std::size_t tj = 0; tj < sched.tiles_n; ++tj) {
          sched.steps.push_back(step(ti, tk, tj));
        }
      }
    }
  }

  predict_reuse(sched);
  return sched;
}

std::shared_ptr<const TileSchedule> PlanCache::get_or_plan(
    const GemmSpec& spec, std::size_t scratch_capacity) {
  {
    std::lock_guard lock(mu_);
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (it->scratch_capacity == scratch_capacity && it->spec == spec) {
        lru_.splice(lru_.begin(), lru_, it);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return lru_.front().sched;
      }
    }
  }
  // Plan outside the lock: a big schedule should not serialize the
  // shards behind it.  Two shards racing the same cold spec both plan
  // (the schedule is deterministic, so either copy is correct) and the
  // second insert wins the front slot.
  auto sched = std::make_shared<const TileSchedule>(
      plan_gemm(spec, scratch_capacity));
  misses_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  lru_.push_front(Entry{spec, scratch_capacity, sched});
  while (lru_.size() > capacity_) {
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return sched;
}

std::size_t PlanCache::size() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

}  // namespace sring::tile
