// Tiled GEMM/conv execution on the rt worker fleet.
//
// run_gemm plans the schedule, stages tiles through a Scratchpad,
// lowers every step to an rt::Job (GemmJobBuilder) and submits the
// batch to the fleet.  Per-chunk partial products are folded into a
// 16-bit accumulator grid with wrapping adds — order-independent
// (mod-2^16 addition is associative and commutative), which is what
// makes the result bit-identical at any worker count and lets the net
// server accumulate tile completions asynchronously.  The final grid
// is narrowed with the rounding-saturating readback.
//
// accumulate_tile and narrow_grid are exposed separately because the
// server's poll loop performs the same fold incrementally as tile
// jobs complete.
#pragma once

#include <span>
#include <vector>

#include "rt/runtime.hpp"
#include "tile/gemm_job.hpp"

namespace sring::tile {

struct GemmRunConfig {
  RingGeometry geometry{8, 2, 16};
  /// Scratchpad size in operand tiles.  128 holds the full working
  /// set of a 64x64x64 / tile_n=8 GEMM (64 A + 64 B tiles).
  std::size_t scratch_tiles = 128;
};

struct GemmResult {
  std::vector<Word> c;    ///< row-major m*n narrowed outputs
  TileSchedule schedule;  ///< includes the up-front reuse prediction

  std::uint64_t jobs = 0;
  std::uint64_t sim_cycles = 0;

  // Observed scratchpad behaviour (equals the schedule's prediction).
  std::uint64_t scratch_hits = 0;
  std::uint64_t scratch_refills = 0;
  std::uint64_t scratch_evictions = 0;
  std::uint64_t bytes_filled = 0;
  std::uint64_t bytes_saved = 0;
  /// streamed_bytes / bytes_filled — operand-traffic reduction vs the
  /// stream-every-job baseline.
  double traffic_reduction = 1.0;
};

/// Fold one tile job's host outputs into the m*n accumulator grid
/// (wrapping adds; padded rows/columns are discarded here).
void accumulate_tile(const TileSchedule& sched, const TileStep& step,
                     std::span<const Word> outputs, std::span<Word> acc);

/// Apply the rounding-saturating readback to a full accumulator grid.
std::vector<Word> narrow_grid(const GemmSpec& spec,
                              std::span<const Word> acc);

/// Execute `spec` over the fleet.  Throws SimError on invalid
/// operands or a failed tile job.
GemmResult run_gemm(rt::Runtime& rt, const GemmRunConfig& cfg,
                    const GemmSpec& spec, std::span<const Word> a,
                    std::span<const Word> b);

/// im2col-lowered convolution; returns the GEMM result whose rows are
/// filters and columns are output pixels (row-major filters x
/// (out_h*out_w)).
GemmResult run_conv2d(rt::Runtime& rt, const GemmRunConfig& cfg,
                      const Conv2dSpec& spec,
                      std::span<const Word> filters,
                      std::span<const Word> image);

}  // namespace sring::tile
