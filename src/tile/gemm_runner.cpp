#include "tile/gemm_runner.hpp"

#include "common/error.hpp"

namespace sring::tile {

void accumulate_tile(const TileSchedule& sched, const TileStep& step,
                     std::span<const Word> outputs, std::span<Word> acc) {
  const GemmSpec& spec = sched.spec;
  check(outputs.size() == GemmJobBuilder::output_words(sched),
        "tile: tile job returned an unexpected output count");
  check(acc.size() == spec.m * spec.n,
        "tile: accumulator grid size does not match m*n");
  for (std::size_t c = 0; c < spec.tile_n; ++c) {
    const std::size_t col = std::size_t{step.tj} * spec.tile_n + c;
    if (col >= spec.n) break;  // padded columns are discarded
    for (std::size_t r = 0; r < kTileM; ++r) {
      const std::size_t row = std::size_t{step.ti} * kTileM + r;
      if (row >= spec.m) break;  // padded rows are discarded
      Word& slot = acc[row * spec.n + col];
      slot = to_word(std::int64_t{as_signed(slot)} +
                     as_signed(outputs[c * kTileM + r]));
    }
  }
}

std::vector<Word> narrow_grid(const GemmSpec& spec,
                              std::span<const Word> acc) {
  check(acc.size() == spec.m * spec.n,
        "tile: accumulator grid size does not match m*n");
  std::vector<Word> out(acc.size());
  for (std::size_t i = 0; i < acc.size(); ++i) {
    out[i] = narrow_readback(acc[i], spec.shift, spec.dtype);
  }
  return out;
}

GemmResult run_gemm(rt::Runtime& rt, const GemmRunConfig& cfg,
                    const GemmSpec& spec, std::span<const Word> a,
                    std::span<const Word> b) {
  GemmResult res;
  res.schedule = plan_gemm(spec, cfg.scratch_tiles);

  Scratchpad scratch(cfg.scratch_tiles);
  GemmJobBuilder builder(cfg.geometry, scratch);

  std::vector<rt::Job> jobs;
  jobs.reserve(res.schedule.steps.size());
  for (const TileStep& step : res.schedule.steps) {
    jobs.push_back(builder.build(res.schedule, step, a, b));
  }

  const std::vector<rt::JobResult> results =
      rt.submit_batch(std::move(jobs));

  std::vector<Word> acc(spec.m * spec.n, 0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const rt::JobResult& r = results[i];
    check(r.ok, "tile: tile job failed: " + r.error);
    accumulate_tile(res.schedule, res.schedule.steps[i], r.outputs, acc);
    res.sim_cycles += r.report.stats.cycles;
  }
  res.c = narrow_grid(spec, acc);

  res.jobs = results.size();
  res.scratch_hits = scratch.hits();
  res.scratch_refills = scratch.refills();
  res.scratch_evictions = scratch.evictions();
  res.bytes_filled = scratch.bytes_filled();
  res.bytes_saved = scratch.bytes_saved();
  res.traffic_reduction =
      res.bytes_filled > 0
          ? static_cast<double>(res.schedule.streamed_bytes) /
                static_cast<double>(res.bytes_filled)
          : 1.0;
  return res;
}

GemmResult run_conv2d(rt::Runtime& rt, const GemmRunConfig& cfg,
                      const Conv2dSpec& spec,
                      std::span<const Word> filters,
                      std::span<const Word> image) {
  spec.validate();
  const GemmSpec gemm = spec.as_gemm();
  check(filters.size() == gemm.m * gemm.k,
        "tile: conv2d filter bank size does not match filters*kh*kw");
  const std::vector<Word> patches = im2col(spec, image);
  return run_gemm(rt, cfg, gemm, filters, patches);
}

}  // namespace sring::tile
