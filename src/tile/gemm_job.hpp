// GemmJobBuilder: lowers one TileStep onto the existing matvec8
// configware page as a plain rt::Job, staging both operand tiles
// through the Scratchpad on the way.
//
// Per step the job computes the 8 x tile_n partial-product block
//   P[r][c] = sum over the step's K-chunk of A[8*ti+r][8*tk+q] *
//             B[8*tk+q][tile_n*tj+c]   (mod 2^16)
// by baking the A sub-tile as the page's Matrix8 and streaming the B
// sub-tile's columns as 8-word feed blocks.  The A tile's program and
// program_key live in its scratchpad entry, so a scratchpad hit also
// makes the job a SystemPool/plan-cache hit on the worker — the
// weight-stationary mapping orders steps to maximize exactly that.
//
// The worker fleet, plan cache, superstep engine and telemetry all see
// an ordinary matvec-shaped job; nothing downstream of rt::Job knows
// tiles exist.
#pragma once

#include <span>

#include "core/config_memory.hpp"
#include "rt/job.hpp"
#include "tile/scratchpad.hpp"
#include "tile/tile_plan.hpp"

namespace sring::tile {

class GemmJobBuilder {
 public:
  /// `scratch` must outlive the builder; the geometry needs >= 8
  /// Dnodes (matvec8's requirement).
  GemmJobBuilder(const RingGeometry& geometry, Scratchpad& scratch);

  /// Build the rt::Job of `step`.  `a`/`b` are the full row-major
  /// operands of the schedule's spec; tiles already staged are not
  /// touched again.
  rt::Job build(const TileSchedule& sched, const TileStep& step,
                std::span<const Word> a, std::span<const Word> b);

  /// Host output words of one tile job (tile_n blocks of 8 rows).
  static std::size_t output_words(const TileSchedule& sched) {
    return sched.spec.tile_n * kTileM;
  }

 private:
  const StagedTile& stage_a(const TileSchedule& sched,
                            const TileStep& step, std::span<const Word> a);
  const StagedTile& stage_b(const TileSchedule& sched,
                            const TileStep& step, std::span<const Word> b);

  RingGeometry geometry_;
  Scratchpad& scratch_;
};

}  // namespace sring::tile
