#include "isa/risc_instr.hpp"

#include <array>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace sring {

namespace {

constexpr std::array<std::string_view,
                     static_cast<std::size_t>(RiscOp::kOpCount)>
    kNames = {"nop",   "halt",  "ldi",    "ldih",   "mov",    "add",
              "sub",   "mul",   "and",    "or",     "xor",    "shl",
              "shr",   "asr",   "addi",   "beq",    "bne",    "blt",
              "bge",   "jmp",   "wrcfg",  "wrmode", "wrloc",  "wrsw",
              "page",  "pager", "busw",   "rdbus",  "inpop",  "outpush",
              "incnt", "outcnt", "rdcyc", "wait"};

}  // namespace

namespace {

/// Which operand fields a format carries.
struct FieldUse {
  bool rd = false;
  bool ra = false;
  bool rb = false;
  bool imm = false;
};

FieldUse fields_of(RiscFormat format) {
  switch (format) {
    case RiscFormat::kNone:
      return {};
    case RiscFormat::kRdImm:
      return {true, false, false, true};
    case RiscFormat::kRdRa:
      return {true, true, false, false};
    case RiscFormat::kRdRaRb:
      return {true, true, true, false};
    case RiscFormat::kRdRaImm:
      return {true, true, false, true};
    case RiscFormat::kRaRbImm:
      return {false, true, true, true};
    case RiscFormat::kImm:
      return {false, false, false, true};
    case RiscFormat::kRa:
      return {false, true, false, false};
    case RiscFormat::kRd:
      return {true, false, false, false};
    case RiscFormat::kRaRb:
      return {false, true, true, false};
  }
  return {};
}

constexpr unsigned kSlotA = 22;  // first register slot
constexpr unsigned kSlotB = 18;  // second register slot
constexpr unsigned kSlotC = 14;  // third register slot

}  // namespace

std::uint32_t RiscInstr::encode() const {
  check(static_cast<unsigned>(op) <
            static_cast<unsigned>(RiscOp::kOpCount),
        "RiscInstr::encode: bad opcode");
  check(rd < kRiscRegCount && ra < kRiscRegCount && rb < kRiscRegCount,
        "RiscInstr::encode: register index out of range");
  const FieldUse use = fields_of(format_of(op));
  if (use.imm) {
    check(fits_signed(imm, 16) ||
              fits_unsigned(static_cast<std::uint64_t>(imm), 16),
          "RiscInstr::encode: immediate does not fit in 16 bits");
  }
  std::uint64_t w = 0;
  w = deposit_bits(w, 26, 6, static_cast<std::uint64_t>(op));
  // Registers fill slots A, B, C in rd, ra, rb order (present ones).
  unsigned slot = kSlotA;
  const auto place = [&](std::uint8_t reg) {
    w = deposit_bits(w, slot, 4, reg);
    slot -= 4;
  };
  if (use.rd) place(rd);
  if (use.ra) place(ra);
  if (use.rb) place(rb);
  if (use.imm) {
    w = deposit_bits(w, 0, 16, static_cast<std::uint64_t>(imm) & 0xFFFFu);
  }
  return static_cast<std::uint32_t>(w);
}

RiscInstr RiscInstr::decode(std::uint32_t word) {
  RiscInstr instr;
  const auto op = extract_bits(word, 26, 6);
  check(op < static_cast<std::uint64_t>(RiscOp::kOpCount),
        "RiscInstr::decode: bad opcode field");
  instr.op = static_cast<RiscOp>(op);
  const FieldUse use = fields_of(format_of(instr.op));
  unsigned slot = kSlotA;
  const auto fetch = [&]() {
    const auto reg = static_cast<std::uint8_t>(extract_bits(word, slot, 4));
    slot -= 4;
    return reg;
  };
  if (use.rd) instr.rd = fetch();
  if (use.ra) instr.ra = fetch();
  if (use.rb) instr.rb = fetch();
  if (use.imm) {
    // PAGE and WAIT treat the immediate as an unsigned count;
    // everything else sign-extends.
    if (instr.op == RiscOp::kPage || instr.op == RiscOp::kWait) {
      instr.imm = static_cast<std::int32_t>(extract_bits(word, 0, 16));
    } else {
      instr.imm = static_cast<std::int32_t>(sign_extend(word, 16));
    }
  }
  return instr;
}

RiscFormat format_of(RiscOp op) noexcept {
  switch (op) {
    case RiscOp::kNop:
    case RiscOp::kHalt:
      return RiscFormat::kNone;
    case RiscOp::kLdi:
    case RiscOp::kLdih:
      return RiscFormat::kRdImm;
    case RiscOp::kMov:
      return RiscFormat::kRdRa;
    case RiscOp::kAdd:
    case RiscOp::kSub:
    case RiscOp::kMul:
    case RiscOp::kAnd:
    case RiscOp::kOr:
    case RiscOp::kXor:
    case RiscOp::kShl:
    case RiscOp::kShr:
    case RiscOp::kAsr:
      return RiscFormat::kRdRaRb;
    case RiscOp::kAddi:
      return RiscFormat::kRdRaImm;
    case RiscOp::kBeq:
    case RiscOp::kBne:
    case RiscOp::kBlt:
    case RiscOp::kBge:
      return RiscFormat::kRaRbImm;
    case RiscOp::kJmp:
    case RiscOp::kPage:
    case RiscOp::kWait:
      return RiscFormat::kImm;
    case RiscOp::kPager:
    case RiscOp::kBusw:
    case RiscOp::kOutpush:
      return RiscFormat::kRa;
    case RiscOp::kRdbus:
    case RiscOp::kInpop:
    case RiscOp::kIncnt:
    case RiscOp::kOutcnt:
    case RiscOp::kRdcyc:
      return RiscFormat::kRd;
    case RiscOp::kWrcfg:
    case RiscOp::kWrmode:
    case RiscOp::kWrloc:
    case RiscOp::kWrsw:
      return RiscFormat::kRaRb;
    case RiscOp::kOpCount:
      break;
  }
  return RiscFormat::kNone;
}

bool is_branch(RiscOp op) noexcept {
  switch (op) {
    case RiscOp::kBeq:
    case RiscOp::kBne:
    case RiscOp::kBlt:
    case RiscOp::kBge:
    case RiscOp::kJmp:
      return true;
    default:
      return false;
  }
}

std::string_view to_mnemonic(RiscOp op) noexcept {
  return kNames[static_cast<std::size_t>(op)];
}

std::optional<RiscOp> parse_risc_op(std::string_view text) noexcept {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == text) return static_cast<RiscOp>(i);
  }
  return std::nullopt;
}

std::string RiscInstr::to_string() const {
  std::string s{to_mnemonic(op)};
  const auto reg = [](std::uint8_t r) { return "r" + std::to_string(r); };
  switch (format_of(op)) {
    case RiscFormat::kNone:
      break;
    case RiscFormat::kRdImm:
      s += ' ' + reg(rd) + ", " + std::to_string(imm);
      break;
    case RiscFormat::kRdRa:
      s += ' ' + reg(rd) + ", " + reg(ra);
      break;
    case RiscFormat::kRdRaRb:
      s += ' ' + reg(rd) + ", " + reg(ra) + ", " + reg(rb);
      break;
    case RiscFormat::kRdRaImm:
      s += ' ' + reg(rd) + ", " + reg(ra) + ", " + std::to_string(imm);
      break;
    case RiscFormat::kRaRbImm:
      s += ' ' + reg(ra) + ", " + reg(rb) + ", " + std::to_string(imm);
      break;
    case RiscFormat::kImm:
      s += ' ' + std::to_string(imm);
      break;
    case RiscFormat::kRa:
      s += ' ' + reg(ra);
      break;
    case RiscFormat::kRd:
      s += ' ' + reg(rd);
      break;
    case RiscFormat::kRaRb:
      s += ' ' + reg(ra) + ", " + reg(rb);
      break;
  }
  return s;
}

}  // namespace sring
