// Dnode microinstruction format.
//
// The paper specifies the Dnode datapath (16-bit ALU + hardwired
// multiplier, MAC in one cycle, 4x16 register file, master-slave
// registers) but not an encoding.  We define a 48-bit microinstruction
// packed into a uint64_t:
//
//   bits  0..5   opcode
//   bits  6..9   srcA
//   bits 10..13  srcB
//   bits 14..17  srcC        (third operand: MAC/MSU accumulator, SELECT)
//   bits 18..20  dst         (R0..R3 or NONE)
//   bit  21      outEn       (drive the systolic output register)
//   bit  22      busEn       (drive the shared bus next cycle)
//   bit  23      hostEn      (push the result into the host output FIFO)
//   bits 24..39  imm16       (value of the IMM operand source)
//
// All operations complete in a single clock cycle, including MAC
// (multiplier and adder chained combinationally), reproducing the
// paper's "up to two arithmetic operations each clock cycle".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "common/types.hpp"

namespace sring {

/// Dnode ALU/multiplier operation.  Signed two's-complement semantics;
/// results wrap to 16 bits unless the op is a saturating variant.
enum class DnodeOp : std::uint8_t {
  kNop = 0,   ///< no operation; produces 0, writes nothing
  kPass,      ///< result = A
  kAdd,       ///< result = A + B
  kSub,       ///< result = A - B
  kRsub,      ///< result = B - A
  kAdds,      ///< result = saturate(A + B)
  kSubs,      ///< result = saturate(A - B)
  kMul,       ///< result = low 16 bits of A * B
  kMulh,      ///< result = high 16 bits of the 32-bit signed product
  kMac,       ///< result = A * B + C   (single-cycle multiply-accumulate)
  kMsu,       ///< result = C - A * B
  kAnd,       ///< result = A & B
  kOr,        ///< result = A | B
  kXor,       ///< result = A ^ B
  kNot,       ///< result = ~A
  kShl,       ///< result = A << (B & 15)
  kShr,       ///< result = logical A >> (B & 15)
  kAsr,       ///< result = arithmetic A >> (B & 15)
  kAbs,       ///< result = |A|  (|-32768| wraps to -32768)
  kAbsdiff,   ///< result = |A - B|   (the SAD primitive)
  kMin,       ///< result = min(A, B) signed
  kMax,       ///< result = max(A, B) signed
  kCmpeq,     ///< result = (A == B) ? 1 : 0
  kCmplt,     ///< result = (A < B) ? 1 : 0 signed
  kSelect,    ///< result = (A != 0) ? B : C
  kOpCount,
};

/// Operand source of a Dnode microinstruction (paper fig. 3: "In(1,2),
/// fifo(1,2), bus, Rp(i,j)"; we add ZERO, HOST and an immediate).
enum class DnodeSrc : std::uint8_t {
  kZero = 0,  ///< constant 0
  kIn1,       ///< first input routed by the upstream switch
  kIn2,       ///< second input routed by the upstream switch
  kFifo1,     ///< first feedback-pipeline read routed by the switch
  kFifo2,     ///< second feedback-pipeline read routed by the switch
  kBus,       ///< shared bus (controller <-> Dnodes)
  kHost,      ///< host input port (pops the host input FIFO)
  kImm,       ///< the microinstruction's 16-bit immediate
  kR0,        ///< register file entry 0
  kR1,
  kR2,
  kR3,
  kSrcCount,
};

/// Result destination inside the Dnode.  kNone is zero so that the
/// all-zero microinstruction word is the canonical NOP.
enum class DnodeDst : std::uint8_t {
  kNone = 0,  ///< result not written to the register file
  kR0,
  kR1,
  kR2,
  kR3,
  kDstCount,
};

/// Register-file index of a destination (dst must not be kNone).
inline std::size_t dst_reg_index(DnodeDst dst) {
  check(dst != DnodeDst::kNone && dst != DnodeDst::kDstCount,
        "dst_reg_index: not a register destination");
  return static_cast<std::size_t>(dst) - 1;
}

/// Decoded Dnode microinstruction.
struct DnodeInstr {
  DnodeOp op = DnodeOp::kNop;
  DnodeSrc src_a = DnodeSrc::kZero;
  DnodeSrc src_b = DnodeSrc::kZero;
  DnodeSrc src_c = DnodeSrc::kZero;
  DnodeDst dst = DnodeDst::kNone;
  bool out_en = false;
  bool bus_en = false;
  bool host_en = false;
  Word imm = 0;

  bool operator==(const DnodeInstr&) const = default;

  /// Pack into the canonical 48-bit encoding.
  std::uint64_t encode() const noexcept;

  /// Unpack; throws SimError on a malformed word (bad enum field).
  static DnodeInstr decode(std::uint64_t word);

  /// Human-readable one-line form, e.g. "mac r0, in1, in2, r0 out".
  std::string to_string() const;
};

/// True if the operation reads its B (respectively C) operand.
/// Inline constexpr: queried per operand per executed Dnode per cycle,
/// and must constant-fold inside the ring's fused superstep loop.
constexpr bool op_uses_b(DnodeOp op) noexcept {
  switch (op) {
    case DnodeOp::kNop:
    case DnodeOp::kPass:
    case DnodeOp::kNot:
    case DnodeOp::kAbs:
      return false;
    default:
      return true;
  }
}

constexpr bool op_uses_c(DnodeOp op) noexcept {
  switch (op) {
    case DnodeOp::kMac:
    case DnodeOp::kMsu:
    case DnodeOp::kSelect:
      return true;
    default:
      return false;
  }
}

/// True if `instr` reads the given operand source anywhere (A, or B/C
/// when the operation consumes them).  NOP reads nothing.
constexpr bool instr_reads(const DnodeInstr& instr, DnodeSrc src) noexcept {
  if (instr.op == DnodeOp::kNop) return false;
  if (instr.src_a == src) return true;
  if (op_uses_b(instr.op) && instr.src_b == src) return true;
  if (op_uses_c(instr.op) && instr.src_c == src) return true;
  return false;
}

/// Lower-case mnemonic ("mac"); stable, used by assembler and traces.
std::string_view to_mnemonic(DnodeOp op) noexcept;
std::string_view to_mnemonic(DnodeSrc src) noexcept;
std::string_view to_mnemonic(DnodeDst dst) noexcept;

/// Parse a mnemonic; empty optional if unknown.
std::optional<DnodeOp> parse_dnode_op(std::string_view text) noexcept;
std::optional<DnodeSrc> parse_dnode_src(std::string_view text) noexcept;
std::optional<DnodeDst> parse_dnode_dst(std::string_view text) noexcept;

}  // namespace sring
