#include "isa/dnode_instr.hpp"

#include <array>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace sring {

namespace {

struct Field {
  unsigned lsb;
  unsigned width;
};

constexpr Field kOpField{0, 6};
constexpr Field kSrcAField{6, 4};
constexpr Field kSrcBField{10, 4};
constexpr Field kSrcCField{14, 4};
constexpr Field kDstField{18, 3};
constexpr Field kOutEnField{21, 1};
constexpr Field kBusEnField{22, 1};
constexpr Field kHostEnField{23, 1};
constexpr Field kImmField{24, 16};

constexpr std::array<std::string_view,
                     static_cast<std::size_t>(DnodeOp::kOpCount)>
    kOpNames = {"nop",  "pass", "add",  "sub",    "rsub",  "adds", "subs",
                "mul",  "mulh", "mac",  "msu",    "and",   "or",   "xor",
                "not",  "shl",  "shr",  "asr",    "abs",   "absdiff",
                "min",  "max",  "cmpeq", "cmplt", "select"};

constexpr std::array<std::string_view,
                     static_cast<std::size_t>(DnodeSrc::kSrcCount)>
    kSrcNames = {"zero", "in1", "in2", "fifo1", "fifo2", "bus",
                 "host", "imm", "r0",  "r1",    "r2",    "r3"};

constexpr std::array<std::string_view,
                     static_cast<std::size_t>(DnodeDst::kDstCount)>
    kDstNames = {"none", "r0", "r1", "r2", "r3"};

}  // namespace

std::uint64_t DnodeInstr::encode() const noexcept {
  std::uint64_t w = 0;
  w = deposit_bits(w, kOpField.lsb, kOpField.width,
                   static_cast<std::uint64_t>(op));
  w = deposit_bits(w, kSrcAField.lsb, kSrcAField.width,
                   static_cast<std::uint64_t>(src_a));
  w = deposit_bits(w, kSrcBField.lsb, kSrcBField.width,
                   static_cast<std::uint64_t>(src_b));
  w = deposit_bits(w, kSrcCField.lsb, kSrcCField.width,
                   static_cast<std::uint64_t>(src_c));
  w = deposit_bits(w, kDstField.lsb, kDstField.width,
                   static_cast<std::uint64_t>(dst));
  w = deposit_bits(w, kOutEnField.lsb, kOutEnField.width, out_en ? 1 : 0);
  w = deposit_bits(w, kBusEnField.lsb, kBusEnField.width, bus_en ? 1 : 0);
  w = deposit_bits(w, kHostEnField.lsb, kHostEnField.width, host_en ? 1 : 0);
  w = deposit_bits(w, kImmField.lsb, kImmField.width, imm);
  return w;
}

DnodeInstr DnodeInstr::decode(std::uint64_t word) {
  DnodeInstr instr;
  const auto op = extract_bits(word, kOpField.lsb, kOpField.width);
  check(op < static_cast<std::uint64_t>(DnodeOp::kOpCount),
        "DnodeInstr::decode: bad opcode field");
  instr.op = static_cast<DnodeOp>(op);

  const auto decode_src = [&](Field f, const char* what) {
    const auto v = extract_bits(word, f.lsb, f.width);
    check(v < static_cast<std::uint64_t>(DnodeSrc::kSrcCount), what);
    return static_cast<DnodeSrc>(v);
  };
  instr.src_a = decode_src(kSrcAField, "DnodeInstr::decode: bad srcA field");
  instr.src_b = decode_src(kSrcBField, "DnodeInstr::decode: bad srcB field");
  instr.src_c = decode_src(kSrcCField, "DnodeInstr::decode: bad srcC field");

  const auto dst = extract_bits(word, kDstField.lsb, kDstField.width);
  check(dst < static_cast<std::uint64_t>(DnodeDst::kDstCount),
        "DnodeInstr::decode: bad dst field");
  instr.dst = static_cast<DnodeDst>(dst);

  instr.out_en = extract_bits(word, kOutEnField.lsb, 1) != 0;
  instr.bus_en = extract_bits(word, kBusEnField.lsb, 1) != 0;
  instr.host_en = extract_bits(word, kHostEnField.lsb, 1) != 0;
  instr.imm = static_cast<Word>(extract_bits(word, kImmField.lsb, 16));
  return instr;
}


std::string_view to_mnemonic(DnodeOp op) noexcept {
  return kOpNames[static_cast<std::size_t>(op)];
}

std::string_view to_mnemonic(DnodeSrc src) noexcept {
  return kSrcNames[static_cast<std::size_t>(src)];
}

std::string_view to_mnemonic(DnodeDst dst) noexcept {
  return kDstNames[static_cast<std::size_t>(dst)];
}

std::optional<DnodeOp> parse_dnode_op(std::string_view text) noexcept {
  for (std::size_t i = 0; i < kOpNames.size(); ++i) {
    if (kOpNames[i] == text) return static_cast<DnodeOp>(i);
  }
  return std::nullopt;
}

std::optional<DnodeSrc> parse_dnode_src(std::string_view text) noexcept {
  for (std::size_t i = 0; i < kSrcNames.size(); ++i) {
    if (kSrcNames[i] == text) return static_cast<DnodeSrc>(i);
  }
  return std::nullopt;
}

std::optional<DnodeDst> parse_dnode_dst(std::string_view text) noexcept {
  for (std::size_t i = 0; i < kDstNames.size(); ++i) {
    if (kDstNames[i] == text) return static_cast<DnodeDst>(i);
  }
  return std::nullopt;
}

std::string DnodeInstr::to_string() const {
  std::string s{to_mnemonic(op)};
  if (op != DnodeOp::kNop) {
    s += ' ';
    s += to_mnemonic(dst);
    s += ", ";
    s += to_mnemonic(src_a);
    if (src_a == DnodeSrc::kImm) s += "(" + std::to_string(as_signed(imm)) + ")";
    if (op_uses_b(op)) {
      s += ", ";
      s += to_mnemonic(src_b);
      if (src_b == DnodeSrc::kImm)
        s += "(" + std::to_string(as_signed(imm)) + ")";
    }
    if (op_uses_c(op)) {
      s += ", ";
      s += to_mnemonic(src_c);
      if (src_c == DnodeSrc::kImm)
        s += "(" + std::to_string(as_signed(imm)) + ")";
    }
  }
  if (out_en) s += " out";
  if (bus_en) s += " bus";
  if (host_en) s += " host";
  return s;
}

}  // namespace sring
