// Instruction set of the RISC configuration controller.
//
// The paper specifies a "custom RISC core with a dedicated instruction
// set" able to rewrite up to the entire configuration memory each
// clock cycle; it does not publish the encoding.  Ours:
//
//   32-bit fixed-width instructions; the opcode always sits in bits
//   26..31 and the remaining fields are placed per operand format
//   (three register slots FA = bits 22..25, FB = bits 18..21,
//   FC = bits 14..17, and a 16-bit immediate in bits 0..15):
//
//     kRdImm    rd=FA, imm          kRaRbImm  ra=FA, rb=FB, imm
//     kRdRa     rd=FA, ra=FB        kImm      imm
//     kRdRaRb   rd=FA, ra=FB, rb=FC kRa       ra=FA
//     kRdRaImm  rd=FA, ra=FB, imm   kRd       rd=FA
//     kRaRb     ra=FA, rb=FB        kNone     (no operands)
//
//   Fields a format does not use are zero in the encoding, so
//   encode() canonicalizes and decode(encode(x)) == canonical(x).
//
//   16 general-purpose 64-bit registers r0..r15 (64-bit so that a full
//   48-bit Dnode microinstruction or 64-bit switch route fits in one
//   register), a program counter, and a cycle counter.
//
// The "entire configuration in one cycle" capability is realized by
// PAGE/PAGER, which apply a preloaded full-configuration page (all
// Dnode microinstructions, modes and switch routes) atomically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sring {

inline constexpr std::size_t kRiscRegCount = 16;

/// Controller opcode.  rd/ra/rb are register indices, `imm` the 16-bit
/// immediate field.
enum class RiscOp : std::uint8_t {
  kNop = 0,
  kHalt,     ///< stop the controller (the ring keeps cycling)
  kLdi,      ///< rd = sign_extend(imm)
  kLdih,     ///< rd = (rd << 16) | uimm   (builds wide constants)
  kMov,      ///< rd = ra
  kAdd,      ///< rd = ra + rb
  kSub,      ///< rd = ra - rb
  kMul,      ///< rd = ra * rb
  kAnd,      ///< rd = ra & rb
  kOr,       ///< rd = ra | rb
  kXor,      ///< rd = ra ^ rb
  kShl,      ///< rd = ra << (rb & 63)
  kShr,      ///< rd = ra >> (rb & 63)  logical
  kAsr,      ///< rd = ra >> (rb & 63)  arithmetic
  kAddi,     ///< rd = ra + sign_extend(imm)
  kBeq,      ///< if (ra == rb) pc += 1 + imm
  kBne,      ///< if (ra != rb) pc += 1 + imm
  kBlt,      ///< if (ra < rb) signed, pc += 1 + imm
  kBge,      ///< if (ra >= rb) signed, pc += 1 + imm
  kJmp,      ///< pc += 1 + imm
  kWrcfg,    ///< config.dnode_instr[ra] = rb  (48-bit microinstruction)
  kWrmode,   ///< config.dnode_mode[ra] = rb   (0 global, 1 local)
  kWrloc,    ///< dnode[ra / 16].local[ra % 16] = rb (slots 0..7 program,
             ///<   8 = LIMIT, 9 = counter reset; see LocalControl)
  kWrsw,     ///< switch route: ra = switch*16 + lane, rb = packed route
  kPage,     ///< apply configuration page `uimm` atomically
  kPager,    ///< apply configuration page `ra` atomically
  kBusw,     ///< drive the shared bus with low 16 bits of ra
  kRdbus,    ///< rd = current bus value (zero-extended)
  kInpop,    ///< rd = pop host input FIFO (stalls while empty)
  kOutpush,  ///< push low 16 bits of ra into the host output FIFO
  kIncnt,    ///< rd = number of words waiting in the host input FIFO
  kOutcnt,   ///< rd = number of words in the host output FIFO
  kRdcyc,    ///< rd = current cycle counter
  kWait,     ///< stall for uimm cycles
  kOpCount,
};

/// Decoded controller instruction.
struct RiscInstr {
  RiscOp op = RiscOp::kNop;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::int32_t imm = 0;  ///< signed value of the 16-bit immediate field

  bool operator==(const RiscInstr&) const = default;

  std::uint32_t encode() const;
  static RiscInstr decode(std::uint32_t word);
  std::string to_string() const;
};

/// Operand shape of an opcode, used by the assembler and printer.
enum class RiscFormat : std::uint8_t {
  kNone,      ///< nop, halt
  kRdImm,     ///< ldi/ldih rd, imm
  kRdRa,      ///< mov/rdbus... rd, ra
  kRdRaRb,    ///< add rd, ra, rb
  kRdRaImm,   ///< addi rd, ra, imm
  kRaRbImm,   ///< beq ra, rb, imm(label)
  kImm,       ///< jmp imm(label), page imm, wait imm
  kRa,        ///< busw/outpush/pager ra
  kRd,        ///< rd-only: rdbus/inpop/incnt/outcnt/rdcyc rd
  kRaRb,      ///< wrcfg/wrmode/wrloc/wrsw ra, rb
};

RiscFormat format_of(RiscOp op) noexcept;

/// True for branch/jump ops whose immediate is a pc-relative offset
/// (the assembler lets these take label operands).
bool is_branch(RiscOp op) noexcept;

std::string_view to_mnemonic(RiscOp op) noexcept;
std::optional<RiscOp> parse_risc_op(std::string_view text) noexcept;

}  // namespace sring
