#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>

namespace sring::net {

namespace {

void set_io_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

RemoteResult to_remote_result(JobResultMsg&& msg) {
  RemoteResult out;
  out.ok = true;
  out.outputs = std::move(msg.outputs);
  out.sim_cycles = msg.sim_cycles;
  out.worker = msg.worker;
  out.reused_system = msg.reused_system != 0;
  out.counters = std::move(msg.counters);
  out.trace_id = msg.trace_id;
  out.queue_wait_us = msg.queue_wait_us;
  out.execute_us = msg.execute_us;
  out.total_us = msg.total_us;
  return out;
}

}  // namespace

Client::Client(ClientConfig config) : config_(std::move(config)) {}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

void Client::backoff_sleep(int attempt) const {
  // Capped exponential: initial << attempt, clamped to backoff_max_ms.
  const std::int64_t ms = std::min<std::int64_t>(
      config_.backoff_max_ms,
      static_cast<std::int64_t>(config_.backoff_initial_ms)
          << std::min(attempt, 20));
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void Client::connect() {
  if (fd_ >= 0) return;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("net: bad server address: " + config_.host);
  }

  std::string last_error = "no attempt made";
  const int attempts = std::max(1, config_.connect_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) backoff_sleep(attempt - 1);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      set_io_timeout(fd, config_.io_timeout_ms);
      fd_ = fd;
      inbuf_.clear();
      return;
    }
    last_error = std::strerror(errno);
    ::close(fd);
  }
  throw NetError("net: cannot connect to " + config_.host + ":" +
                 std::to_string(config_.port) + " after " +
                 std::to_string(attempts) + " attempts: " + last_error);
}

void Client::send_frame(MsgType type,
                        std::span<const std::uint8_t> payload) {
  connect();
  std::vector<std::uint8_t> wire;
  append_frame(wire, type, payload, config_.protocol_version);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const bool timeout = n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
    close();
    throw NetError(timeout ? "net: send timed out"
                           : "net: connection lost while sending");
  }
}

Frame Client::recv_frame() {
  std::uint8_t buf[64 * 1024];
  while (true) {
    Frame frame;
    std::size_t consumed = 0;
    const ParseStatus status = try_parse_frame(
        inbuf_, config_.max_frame_bytes, frame, consumed);
    if (status == ParseStatus::kFrame) {
      inbuf_.erase(inbuf_.begin(),
                   inbuf_.begin() + static_cast<std::ptrdiff_t>(consumed));
      return frame;
    }
    if (status != ParseStatus::kNeedMore) {
      close();
      throw ProtocolError("net: malformed frame from server (status " +
                          std::to_string(static_cast<int>(status)) + ")");
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      inbuf_.insert(inbuf_.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const bool timeout = n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
    close();
    throw NetError(timeout
                       ? "net: receive timed out"
                       : "net: server closed the connection mid-frame");
  }
}

double Client::ping() {
  const std::uint64_t token = 0x5352494E47ull + next_tag_;
  const auto t0 = std::chrono::steady_clock::now();
  send_frame(MsgType::kPing, encode_ping(token));
  const Frame frame = recv_frame();
  const auto t1 = std::chrono::steady_clock::now();
  if (frame.type != MsgType::kPong || decode_ping(frame.payload) != token) {
    close();
    throw ProtocolError("net: bad ping response");
  }
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

ServerInfoMsg Client::server_info() {
  send_frame(MsgType::kServerInfoReq, {});
  const Frame frame = recv_frame();
  if (frame.type != MsgType::kServerInfo) {
    close();
    throw ProtocolError("net: expected ServerInfo response");
  }
  return decode_server_info(frame.payload);
}

RemoteResult Client::submit(const JobRequest& req) {
  JobRequest tagged = req;
  if (tagged.tag == 0) tagged.tag = next_tag_++;
  const std::vector<std::uint8_t> payload =
      encode_job_request(tagged, config_.protocol_version);

  RemoteResult out;
  for (int attempt = 0; attempt <= config_.busy_retries; ++attempt) {
    if (attempt > 0) {
      // A v5 server says how long to back off; otherwise exponential.
      if (out.retry_after_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(out.retry_after_ms));
      } else {
        backoff_sleep(attempt - 1);
      }
    }
    send_frame(MsgType::kSubmitJob, payload);
    const Frame frame = recv_frame();
    if (frame.type == MsgType::kJobResult) {
      // Decode by the frame's own version: the server mirrors ours,
      // but trusting the wire keeps mixed-version paths honest.
      JobResultMsg msg = decode_job_result(frame.payload, frame.version);
      if (msg.tag != tagged.tag) {
        close();
        throw ProtocolError("net: response tag mismatch");
      }
      const std::uint32_t hint = out.retry_after_ms;
      out = to_remote_result(std::move(msg));
      out.retry_after_ms = hint;
      return out;
    }
    if (frame.type != MsgType::kError) {
      close();
      throw ProtocolError("net: unexpected response type " +
                          std::to_string(
                              static_cast<unsigned>(frame.type)));
    }
    const ErrorMsg err = decode_error(frame.payload, frame.version);
    if (err.code == ErrorCode::kBusy) {
      out.busy = true;  // retry with backoff, or report busy when spent
      out.retry_after_ms = err.retry_after_ms;
      continue;
    }
    out.busy = false;
    out.ok = false;
    out.error = err.message;
    return out;
  }
  out.error = "server busy (queue full) after " +
              std::to_string(config_.busy_retries + 1) + " attempts";
  return out;
}

RemoteDfgCompiled Client::compile_dfg(const std::vector<std::uint8_t>& dfg,
                                      const RingGeometry& geometry) {
  if (config_.protocol_version < 3) {
    throw NetError("net: DFG messages require protocol version >= 3");
  }
  SubmitDfgMsg req;
  req.tag = next_tag_++;
  req.geometry = geometry;
  req.dfg = dfg;
  const std::vector<std::uint8_t> payload = encode_submit_dfg(req);

  RemoteDfgCompiled out;
  for (int attempt = 0; attempt <= config_.busy_retries; ++attempt) {
    if (attempt > 0) backoff_sleep(attempt - 1);
    send_frame(MsgType::kSubmitDfg, payload);
    const Frame frame = recv_frame();
    if (frame.type == MsgType::kDfgCompiled) {
      DfgCompiledMsg msg = decode_dfg_compiled(frame.payload);
      if (msg.tag != req.tag) {
        close();
        throw ProtocolError("net: response tag mismatch");
      }
      out.ok = true;
      out.dfg_hash = msg.dfg_hash;
      out.cache_hit = msg.cache_hit != 0;
      out.compile_us = msg.compile_us;
      out.dnodes_used = msg.dnodes_used;
      out.max_latency = msg.max_latency;
      out.pushes_per_cycle = msg.pushes_per_cycle;
      out.input_count = msg.input_count;
      out.outputs = std::move(msg.outputs);
      return out;
    }
    if (frame.type != MsgType::kError) {
      close();
      throw ProtocolError("net: unexpected response type " +
                          std::to_string(
                              static_cast<unsigned>(frame.type)));
    }
    const ErrorMsg err = decode_error(frame.payload, frame.version);
    if (err.code == ErrorCode::kBusy) {
      out.busy = true;
      continue;
    }
    out.busy = false;
    out.error = err.message;
    return out;
  }
  out.error = "server busy (queue full) after " +
              std::to_string(config_.busy_retries + 1) + " attempts";
  return out;
}

RemoteDfgResult Client::submit_dfg(
    const std::vector<std::uint8_t>& dfg,
    const std::vector<std::vector<Word>>& streams,
    const RingGeometry& geometry, std::uint64_t trace_id) {
  if (config_.protocol_version < 3) {
    throw NetError("net: DFG messages require protocol version >= 3");
  }
  SubmitDfgJobMsg req;
  req.tag = next_tag_++;
  req.geometry = geometry;
  req.dfg = dfg;
  req.streams = streams;
  req.trace_id = trace_id;
  const std::vector<std::uint8_t> payload = encode_submit_dfg_job(req);

  RemoteDfgResult out;
  for (int attempt = 0; attempt <= config_.busy_retries; ++attempt) {
    if (attempt > 0) backoff_sleep(attempt - 1);
    send_frame(MsgType::kSubmitDfgJob, payload);
    const Frame frame = recv_frame();
    if (frame.type == MsgType::kJobResult) {
      JobResultMsg msg = decode_job_result(frame.payload, frame.version);
      if (msg.tag != req.tag) {
        close();
        throw ProtocolError("net: response tag mismatch");
      }
      // The flat word vector is the per-output streams concatenated in
      // Dfg output order; the svc.dfg.* counters say how to split it.
      std::uint64_t n_outputs = 0;
      std::uint64_t n_samples = 0;
      for (const auto& [name, value] : msg.counters) {
        if (name == "svc.dfg.outputs") n_outputs = value;
        else if (name == "svc.dfg.samples") n_samples = value;
        else if (name == "svc.dfg.cache_hit") out.cache_hit = value != 0;
        else if (name == "svc.dfg.hash") out.dfg_hash = value;
      }
      if (n_outputs == 0 ||
          msg.outputs.size() != n_outputs * n_samples) {
        close();
        throw ProtocolError(
            "net: DFG result words do not match its de-lacing metadata");
      }
      out.streams.resize(n_outputs);
      for (std::uint64_t o = 0; o < n_outputs; ++o) {
        out.streams[o].assign(
            msg.outputs.begin() +
                static_cast<std::ptrdiff_t>(o * n_samples),
            msg.outputs.begin() +
                static_cast<std::ptrdiff_t>((o + 1) * n_samples));
      }
      out.ok = true;
      out.sim_cycles = msg.sim_cycles;
      out.worker = msg.worker;
      out.reused_system = msg.reused_system != 0;
      out.counters = std::move(msg.counters);
      out.trace_id = msg.trace_id;
      out.queue_wait_us = msg.queue_wait_us;
      out.execute_us = msg.execute_us;
      out.total_us = msg.total_us;
      return out;
    }
    if (frame.type != MsgType::kError) {
      close();
      throw ProtocolError("net: unexpected response type " +
                          std::to_string(
                              static_cast<unsigned>(frame.type)));
    }
    const ErrorMsg err = decode_error(frame.payload, frame.version);
    if (err.code == ErrorCode::kBusy) {
      out.busy = true;
      continue;
    }
    out.busy = false;
    out.ok = false;
    out.error = err.message;
    return out;
  }
  out.error = "server busy (queue full) after " +
              std::to_string(config_.busy_retries + 1) + " attempts";
  return out;
}

std::uint64_t RemoteGemmResult::counter(const std::string& name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0;
}

RemoteGemmResult Client::submit_gemm(const tile::GemmSpec& spec,
                                     const std::vector<Word>& a,
                                     const std::vector<Word>& b,
                                     const RingGeometry& geometry,
                                     std::uint32_t scratch_tiles,
                                     std::uint64_t trace_id) {
  if (config_.protocol_version < 4) {
    throw NetError("net: tiled-GEMM messages require protocol version >= 4");
  }
  SubmitGemmMsg req;
  req.tag = next_tag_++;
  req.geometry = geometry;
  req.spec = spec;
  req.scratch_tiles = scratch_tiles;
  req.a = a;
  req.b = b;
  req.trace_id = trace_id;
  const std::vector<std::uint8_t> payload = encode_submit_gemm(req);

  RemoteGemmResult out;
  for (int attempt = 0; attempt <= config_.busy_retries; ++attempt) {
    if (attempt > 0) backoff_sleep(attempt - 1);
    send_frame(MsgType::kSubmitGemm, payload);
    const Frame frame = recv_frame();
    if (frame.type == MsgType::kJobResult) {
      JobResultMsg msg = decode_job_result(frame.payload, frame.version);
      if (msg.tag != req.tag) {
        close();
        throw ProtocolError("net: response tag mismatch");
      }
      if (msg.outputs.size() != spec.m * spec.n) {
        close();
        throw ProtocolError("net: GEMM result size does not match m*n");
      }
      out.ok = true;
      out.c = std::move(msg.outputs);
      out.sim_cycles = msg.sim_cycles;
      out.worker = msg.worker;
      out.reused_system = msg.reused_system != 0;
      out.counters = std::move(msg.counters);
      out.trace_id = msg.trace_id;
      out.total_us = msg.total_us;
      return out;
    }
    if (frame.type != MsgType::kError) {
      close();
      throw ProtocolError("net: unexpected response type " +
                          std::to_string(
                              static_cast<unsigned>(frame.type)));
    }
    const ErrorMsg err = decode_error(frame.payload, frame.version);
    if (err.code == ErrorCode::kBusy) {
      out.busy = true;
      continue;
    }
    out.busy = false;
    out.ok = false;
    out.error = err.message;
    return out;
  }
  out.error = "server busy (queue full) after " +
              std::to_string(config_.busy_retries + 1) + " attempts";
  return out;
}

std::vector<RemoteResult> Client::submit_batch(
    const std::vector<JobRequest>& reqs) {
  std::vector<RemoteResult> out;
  out.reserve(reqs.size());
  for (const JobRequest& req : reqs) out.push_back(submit(req));
  return out;
}

std::vector<RemoteResult> Client::submit_pipelined(
    const std::vector<JobRequest>& reqs, std::size_t window) {
  std::vector<RemoteResult> out(reqs.size());
  if (reqs.empty()) return out;
  window = std::max<std::size_t>(1, window);

  std::vector<JobRequest> tagged(reqs);
  std::unordered_map<std::uint32_t, std::size_t> by_tag;
  by_tag.reserve(tagged.size());
  for (std::size_t i = 0; i < tagged.size(); ++i) {
    if (tagged[i].tag == 0) tagged[i].tag = next_tag_++;
    if (!by_tag.emplace(tagged[i].tag, i).second) {
      throw NetError("net: submit_pipelined requires unique tags");
    }
  }

  // Keep up to `window` frames in flight; the server answers in
  // completion order, so replies correlate by tag, not position.
  std::vector<std::size_t> busy;  // shed entries, retried sequentially
  std::size_t next_send = 0;
  std::size_t outstanding = 0;
  std::size_t settled = 0;
  std::uint32_t busy_hint_ms = 0;
  while (settled < tagged.size()) {
    while (next_send < tagged.size() && outstanding < window) {
      send_frame(MsgType::kSubmitJob,
                 encode_job_request(tagged[next_send],
                                    config_.protocol_version));
      ++next_send;
      ++outstanding;
    }
    const Frame frame = recv_frame();
    std::uint32_t tag = 0;
    RemoteResult result;
    if (frame.type == MsgType::kJobResult) {
      JobResultMsg msg = decode_job_result(frame.payload, frame.version);
      tag = msg.tag;
      result = to_remote_result(std::move(msg));
    } else if (frame.type == MsgType::kError) {
      const ErrorMsg err = decode_error(frame.payload, frame.version);
      tag = err.tag;
      if (err.code == ErrorCode::kBusy) {
        result.busy = true;
        result.retry_after_ms = err.retry_after_ms;
        busy_hint_ms = std::max(busy_hint_ms, err.retry_after_ms);
      }
      result.error = err.message;
    } else {
      close();
      throw ProtocolError("net: unexpected response type " +
                          std::to_string(
                              static_cast<unsigned>(frame.type)));
    }
    const auto found = by_tag.find(tag);
    if (found == by_tag.end()) {
      close();
      throw ProtocolError("net: response tag matches no in-flight job");
    }
    if (result.busy) busy.push_back(found->second);
    out[found->second] = std::move(result);
    by_tag.erase(found);
    --outstanding;
    ++settled;
  }

  // Shed entries degrade to the sequential path, which retries with
  // the server's pacing hint (or exponential backoff without one).
  for (const std::size_t index : busy) {
    if (busy_hint_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(busy_hint_ms));
    }
    out[index] = submit(tagged[index]);
  }
  return out;
}

std::vector<RemoteResult> Client::submit_batch_wire(
    const std::vector<JobRequest>& reqs, std::uint64_t trace_id) {
  if (config_.protocol_version < 5) {
    throw NetError("net: batched submits require protocol version >= 5");
  }
  std::vector<RemoteResult> out(reqs.size());
  if (reqs.empty()) return out;

  SubmitJobBatchMsg msg;
  msg.tag = next_tag_++;
  msg.jobs = reqs;
  msg.trace_id = trace_id;
  for (JobRequest& job : msg.jobs) {
    if (job.tag == 0) job.tag = next_tag_++;
  }
  send_frame(MsgType::kSubmitJobBatch,
             encode_submit_job_batch(msg, config_.protocol_version));

  const Frame frame = recv_frame();
  if (frame.type == MsgType::kError) {
    // Whole-batch refusal (draining, malformed): every entry fails
    // the same way rather than throwing, matching submit()'s shape.
    const ErrorMsg err = decode_error(frame.payload, frame.version);
    for (RemoteResult& r : out) {
      r.busy = err.code == ErrorCode::kBusy;
      r.retry_after_ms = err.retry_after_ms;
      r.error = err.message;
    }
    return out;
  }
  if (frame.type != MsgType::kJobBatchResult) {
    close();
    throw ProtocolError("net: expected JobBatchResult response");
  }
  JobBatchResultMsg reply =
      decode_job_batch_result(frame.payload, frame.version);
  if (reply.tag != msg.tag || reply.entries.size() != reqs.size()) {
    close();
    throw ProtocolError("net: batch result does not match the request");
  }
  for (std::size_t i = 0; i < reply.entries.size(); ++i) {
    JobBatchEntryMsg& entry = reply.entries[i];
    if (entry.ok != 0) {
      out[i] = to_remote_result(std::move(entry.result));
    } else {
      out[i].busy = entry.error.code == ErrorCode::kBusy;
      out[i].retry_after_ms = entry.error.retry_after_ms;
      out[i].error = entry.error.message;
    }
  }
  return out;
}

StatsReplyMsg Client::stats(bool include_flight) {
  if (config_.protocol_version < 2) {
    throw NetError("net: GetStats requires protocol version >= 2");
  }
  send_frame(MsgType::kGetStats,
             encode_get_stats(include_flight ? kStatsIncludeFlight : 0));
  const Frame frame = recv_frame();
  if (frame.type != MsgType::kStatsReply) {
    close();
    throw ProtocolError("net: expected StatsReply response");
  }
  return decode_stats_reply(frame.payload);
}

bool Client::drain() {
  send_frame(MsgType::kDrain, {});
  const Frame frame = recv_frame();
  return frame.type == MsgType::kDrainAck;
}

}  // namespace sring::net
