// Blocking client library for the remote job-serving subsystem.
//
// Mirrors the rt::Runtime surface across a socket: submit() /
// submit_batch() take the same kernel descriptions the kernels/jobs
// factories take (as net::JobRequest) and return bit-exact outputs —
// the loopback tests hold remote results word-for-word equal to direct
// rt::Runtime execution.
//
// Failure discipline:
//  * connect() retries with capped exponential backoff, then throws
//    NetError.
//  * Server-side Busy (bounded backpressure) is retried
//    `busy_retries` times with the same backoff, then surfaces as
//    RemoteResult{busy=true} — the caller decides whether to shed or
//    spin.
//  * A job that raised a SimError on the server comes back as
//    RemoteResult{ok=false, error=<SimError text verbatim>}.
//  * Transport damage (timeout, disconnect, malformed frames) throws
//    NetError/ProtocolError.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/protocol.hpp"

namespace sring::net {

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  int connect_attempts = 5;
  int backoff_initial_ms = 20;  ///< doubles per retry...
  int backoff_max_ms = 1000;    ///< ...capped here

  int io_timeout_ms = 30000;  ///< per send/recv deadline
  int busy_retries = 8;       ///< Busy resubmissions inside submit()

  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Wire dialect this client speaks.  The server mirrors it per
  /// frame, so pinning 1 here exercises the legacy byte layout against
  /// a v2 server (the compatibility tests do exactly that).
  std::uint16_t protocol_version = kProtocolVersion;
};

/// One remote job outcome.  Exactly one of {ok, busy, !error.empty()}
/// describes the terminal state; outputs/counters are valid when ok.
struct RemoteResult {
  bool ok = false;
  bool busy = false;       ///< shed by backpressure after busy_retries
  /// Server's resubmission hint from the last Busy shed (v5+ servers;
  /// 0 when none was given).  submit() already honours it between
  /// retries; it is surfaced for callers pacing their own loops.
  std::uint32_t retry_after_ms = 0;
  std::string error;       ///< server-side SimError text, verbatim
  std::vector<Word> outputs;
  std::uint64_t sim_cycles = 0;
  std::uint32_t worker = 0;
  bool reused_system = false;
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  // v2 telemetry tail; all zero when the server answered in v1.
  std::uint64_t trace_id = 0;      ///< echo of JobRequest.trace_id
  std::uint64_t queue_wait_us = 0;
  std::uint64_t execute_us = 0;
  std::uint64_t total_us = 0;      ///< enqueue → completion, server clock
};

/// Outcome of a server-side DFG compile (SubmitDfg → DfgCompiled).
/// On ok, the mapped program's shape + output metadata let the caller
/// size input streams and interpret later job results.
struct RemoteDfgCompiled {
  bool ok = false;
  bool busy = false;
  std::string error;  ///< codec/mapper/validation diagnostic, verbatim
  std::uint64_t dfg_hash = 0;
  bool cache_hit = false;
  std::uint64_t compile_us = 0;  ///< 0 on cache hits
  std::uint16_t dnodes_used = 0;
  std::uint16_t max_latency = 0;
  std::uint16_t pushes_per_cycle = 0;
  std::uint16_t input_count = 0;
  std::vector<DfgOutputMetaMsg> outputs;
};

/// Outcome of a remote DFG job (SubmitDfgJob).  `streams` holds one
/// de-laced stream per Dfg output, in output order — bit-identical to
/// mapper::run_mapped on the same graph and inputs.
struct RemoteDfgResult {
  bool ok = false;
  bool busy = false;
  std::string error;
  std::vector<std::vector<Word>> streams;  ///< per Dfg output
  std::uint64_t dfg_hash = 0;
  bool cache_hit = false;  ///< compile cache outcome for this run
  std::uint64_t sim_cycles = 0;
  std::uint32_t worker = 0;
  bool reused_system = false;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::uint64_t trace_id = 0;
  std::uint64_t queue_wait_us = 0;
  std::uint64_t execute_us = 0;
  std::uint64_t total_us = 0;
};

/// Outcome of a remote tiled GEMM (SubmitGemm, protocol v4).  `c` is
/// the row-major m*n narrowed output — bit-identical to
/// tile::run_gemm locally and to tile::gemm_reference.  The counters
/// slice carries the server-side tile.scratch.* behaviour.
struct RemoteGemmResult {
  bool ok = false;
  bool busy = false;
  std::string error;
  std::vector<Word> c;
  std::uint64_t sim_cycles = 0;
  std::uint32_t worker = 0;
  bool reused_system = false;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::uint64_t trace_id = 0;
  std::uint64_t total_us = 0;  ///< admission → reply, server clock

  /// tile.* counter lookup; 0 when absent.
  std::uint64_t counter(const std::string& name) const;
};

class Client {
 public:
  explicit Client(ClientConfig config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Establish the connection now (submit() connects lazily).
  void connect();
  void close();
  bool connected() const noexcept { return fd_ >= 0; }

  /// Round-trip a token; returns the measured latency in microseconds.
  double ping();

  ServerInfoMsg server_info();

  /// Run one job remotely (blocking).  Assigns a fresh tag when
  /// req.tag is 0.  Throws NetError on transport failure.
  RemoteResult submit(const JobRequest& req);

  /// Sequential batch, results in submission order.
  std::vector<RemoteResult> submit_batch(
      const std::vector<JobRequest>& reqs);

  /// Pipelined submission over the one connection: keeps up to
  /// `window` SubmitJob frames in flight and correlates the server's
  /// completion-order replies by tag.  Results return in input order.
  /// Busy sheds are retried sequentially afterwards (honouring the
  /// server's retry_after_ms hint), so a transient overload degrades
  /// to the submit() path instead of failing the lot.
  std::vector<RemoteResult> submit_pipelined(
      const std::vector<JobRequest>& reqs, std::size_t window = 16);

  /// Single-frame batched submission (protocol v5): every job rides
  /// one SubmitJobBatch frame and one JobBatchResult comes back, with
  /// per-entry outcomes in input order.  Requires
  /// protocol_version >= 5.
  std::vector<RemoteResult> submit_batch_wire(
      const std::vector<JobRequest>& reqs, std::uint64_t trace_id = 0);

  /// Compile (or cache-hit) a canonical DFG blob (svc/dfg_codec)
  /// server-side without running it.  Requires protocol_version >= 3.
  RemoteDfgCompiled compile_dfg(const std::vector<std::uint8_t>& dfg,
                                const RingGeometry& geometry);

  /// Compile + run a DFG over equal-length input streams (one per DFG
  /// input).  Requires protocol_version >= 3.
  RemoteDfgResult submit_dfg(const std::vector<std::uint8_t>& dfg,
                             const std::vector<std::vector<Word>>& streams,
                             const RingGeometry& geometry,
                             std::uint64_t trace_id = 0);

  /// Run one tiled narrow-int GEMM server-side: the server plans the
  /// tile schedule, stages operands through its scratchpad and
  /// interleaves the tile jobs with other clients' work.  Requires
  /// protocol_version >= 4.
  RemoteGemmResult submit_gemm(const tile::GemmSpec& spec,
                               const std::vector<Word>& a,
                               const std::vector<Word>& b,
                               const RingGeometry& geometry,
                               std::uint32_t scratch_tiles = 128,
                               std::uint64_t trace_id = 0);

  /// Poll the server's live stats snapshot (counters, per-phase
  /// latency quantiles, sampler rates; optionally the recent flight
  /// records).  Requires protocol_version >= 2.
  StatsReplyMsg stats(bool include_flight = false);

  /// Ask the server to drain; true once DrainAck arrives.
  bool drain();

 private:
  void send_frame(MsgType type, std::span<const std::uint8_t> payload);
  Frame recv_frame();
  void backoff_sleep(int attempt) const;

  ClientConfig config_;
  int fd_ = -1;
  std::uint32_t next_tag_ = 1;
  std::vector<std::uint8_t> inbuf_;
};

}  // namespace sring::net
