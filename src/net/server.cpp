#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <thread>

#include "obs/quantile.hpp"
#include "obs/span.hpp"
#include "svc/dfg_job.hpp"

namespace sring::net {

namespace {

constexpr int kPollTickMs = 250;
/// Poll cadence while deferred jobs are parked: their deadlines are
/// tens of milliseconds, so the shard must look again well before the
/// regular tick would.
constexpr int kDeferredTickMs = 5;

std::uint64_t us_between(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  if (to < from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

std::uint32_t clamp_u32(std::uint64_t v) {
  return v > UINT32_MAX ? UINT32_MAX : static_cast<std::uint32_t>(v);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw NetError("net: fcntl(O_NONBLOCK) failed: " +
                   std::string(std::strerror(errno)));
  }
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void wake_shard(int wake_fd, char byte) {
  [[maybe_unused]] const ssize_t n = ::write(wake_fd, &byte, 1);
}

/// SIGTERM/SIGINT → request_drain() of the one registered server.
/// request_drain is async-signal-safe: an atomic store plus write()s.
/// The previous dispositions are kept so ~Server can restore them
/// before the instance dies (signals must never reach a freed server).
std::atomic<Server*> g_signal_server{nullptr};
struct sigaction g_prev_sigterm {};
struct sigaction g_prev_sigint {};

void signal_drain_handler(int) {
  Server* server = g_signal_server.load(std::memory_order_acquire);
  if (server != nullptr) server->request_drain();
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      compile_(config_.compile),
      plan_cache_(std::max<std::size_t>(1, config_.plan_cache_capacity)),
      sampler_(obs::SamplerConfig{
          config_.sampler_capacity,
          {"net.jobs.completed", "net.jobs.failed", "net.bytes.in",
           "net.bytes.out", "net.frames.in", "net.rejects.busy",
           "rt.sim_cycles", "rt.busy_us"}}),
      recorder_(obs::FlightRecorderConfig{config_.flight_recent,
                                          config_.flight_captured,
                                          config_.slow_threshold_us}) {
  start_time_ = std::chrono::steady_clock::now();
  // Backdated so the first poll tick takes the sampler's baseline.
  last_sample_ = start_time_ - config_.sample_interval;
  runtime_ = std::make_unique<rt::Runtime>(config_.runtime);

  // Resolve the admission watermarks against the real queue shape.
  const std::size_t cap = runtime_->queue_capacity();
  admission_low_ = config_.admission_low != 0
                       ? config_.admission_low
                       : std::max<std::size_t>(1, cap / 2);
  admission_high_ =
      config_.admission_high != 0 ? config_.admission_high : cap;
  if (admission_high_ < admission_low_) admission_high_ = admission_low_;

  // Shards (and their wake pipes) exist before run() so request_drain
  // can reach every loop from any thread or signal handler at any
  // point in the server's life.
  const std::size_t shard_count = std::max<std::size_t>(1, config_.shards);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0) {
      throw NetError("net: pipe() failed: " +
                     std::string(std::strerror(errno)));
    }
    shard->wake_r = pipe_fds[0];
    shard->wake_w = pipe_fds[1];
    set_nonblocking(shard->wake_r);
    set_nonblocking(shard->wake_w);
    shards_.push_back(std::move(shard));
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw NetError("net: socket() failed: " +
                   std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    close_fd(listen_fd_);
    throw NetError("net: bad listen address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    close_fd(listen_fd_);
    throw NetError("net: cannot listen on " + config_.host + ":" +
                   std::to_string(config_.port) + ": " + why);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    const std::string why = std::strerror(errno);
    close_fd(listen_fd_);
    throw NetError("net: getsockname failed: " + why);
  }
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);
}

Server::~Server() {
  if (signal_handlers_installed_ &&
      g_signal_server.load(std::memory_order_acquire) == this) {
    // Restore the previous dispositions FIRST: after sigaction returns
    // no new signal can enter signal_drain_handler, so the pointer
    // clear below cannot race a handler into a destroyed server.
    // (Assumes no other thread installs SIGTERM/SIGINT concurrently.)
    ::sigaction(SIGTERM, &g_prev_sigterm, nullptr);
    ::sigaction(SIGINT, &g_prev_sigint, nullptr);
    g_signal_server.store(nullptr, std::memory_order_release);
  }
  runtime_.reset();  // joins workers first: no notify after the pipes die
  for (auto& shard : shards_) {
    for (auto& conn : shard->conns) close_fd(conn.fd);
    for (int fd : shard->inbox) {
      if (fd >= 0) ::close(fd);
    }
    close_fd(shard->wake_r);
    close_fd(shard->wake_w);
  }
  close_fd(listen_fd_);
}

void Server::request_drain() noexcept {
  drain_requested_.store(true, std::memory_order_release);
  for (const auto& shard : shards_) wake_shard(shard->wake_w, 'd');
}

void Server::enable_signal_drain() {
  g_signal_server.store(this, std::memory_order_release);
  struct sigaction sa{};
  sa.sa_handler = signal_drain_handler;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, &g_prev_sigterm);
  ::sigaction(SIGINT, &sa, &g_prev_sigint);
  signal_handlers_installed_ = true;
}

Server::Conn* Server::find_conn(Shard& shard, std::uint64_t id) {
  for (auto& conn : shard.conns) {
    if (conn.id == id && conn.fd >= 0) return &conn;
  }
  return nullptr;
}

void Server::close_conn(Conn& conn) {
  if (conn.fd < 0) return;
  close_fd(conn.fd);
  counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
}

namespace {

/// Best-effort non-blocking flush; returns false on a hard error.
bool flush_out(int fd, std::vector<std::uint8_t>& out, std::size_t& pos,
               std::atomic<std::uint64_t>& bytes_out) {
  while (pos < out.size()) {
    const ssize_t n = ::send(fd, out.data() + pos, out.size() - pos,
                             MSG_NOSIGNAL);
    if (n > 0) {
      pos += static_cast<std::size_t>(n);
      bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (pos == out.size()) {
    out.clear();
    pos = 0;
  }
  return true;
}

}  // namespace

void Server::send_frame(Conn& conn, MsgType type,
                        std::span<const std::uint8_t> payload,
                        std::uint16_t version) {
  if (conn.fd < 0) return;
  // Header and payload always agree on the dialect: on a pipelined
  // connection interleaving v1..v5 frames, every reply mirrors the
  // version of the exact frame that requested it.
  append_frame(conn.out, type, payload, version);
  counters_.frames_out.fetch_add(1, std::memory_order_relaxed);
  // Optimistic flush: most responses fit the socket buffer, so the
  // reply leaves in the same loop iteration that produced it.
  if (!flush_out(conn.fd, conn.out, conn.out_pos, counters_.bytes_out)) {
    close_conn(conn);
  }
}

void Server::send_error(Conn& conn, std::uint32_t tag, ErrorCode code,
                        const std::string& message, std::uint16_t version,
                        std::uint32_t retry_after_ms) {
  ErrorMsg msg;
  msg.tag = tag;
  msg.code = code;
  msg.message = message;
  msg.retry_after_ms = retry_after_ms;  // rides the wire on v5+ only
  send_frame(conn, MsgType::kError, encode_error(msg, version), version);
}

void Server::handle_submit(Shard& shard, Conn& conn, const Frame& frame) {
  JobRequest req;
  try {
    req = decode_job_request(frame.payload, frame.version);
  } catch (const ProtocolError& e) {
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, 0, ErrorCode::kBadRequest, e.what(), frame.version);
    conn.closing = true;
    return;
  }
  if (drain_requested_.load(std::memory_order_acquire)) {
    counters_.rejects_shutdown.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, req.tag, ErrorCode::kShuttingDown,
               "server is draining", frame.version);
    return;
  }
  rt::Job job;
  try {
    job = to_rt_job(req);
  } catch (const SimError& e) {
    send_error(conn, req.tag, ErrorCode::kBadRequest, e.what(),
               frame.version);
    return;
  } catch (const std::exception& e) {
    // e.g. std::bad_alloc from a request whose parameters demand more
    // memory than the host has — the never-crash invariant holds: the
    // request fails, the server keeps serving.
    send_error(conn, req.tag, ErrorCode::kBadRequest, e.what(),
               frame.version);
    return;
  }
  admit_job(shard, conn, std::move(job), req.tag, req.trace_id,
            frame.version, nullptr, 0, false, nullptr, 0);
}

void Server::handle_submit_batch(Shard& shard, Conn& conn,
                                 const Frame& frame) {
  if (frame.version < 5) {
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, 0, ErrorCode::kBadRequest,
               "batched submits require protocol v5", frame.version);
    conn.closing = true;
    return;
  }
  SubmitJobBatchMsg req;
  try {
    req = decode_submit_job_batch(frame.payload, frame.version);
  } catch (const ProtocolError& e) {
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, 0, ErrorCode::kBadRequest, e.what(), frame.version);
    conn.closing = true;
    return;
  }
  counters_.batch_requests.fetch_add(1, std::memory_order_relaxed);
  counters_.batch_jobs.fetch_add(req.jobs.size(),
                                 std::memory_order_relaxed);
  if (drain_requested_.load(std::memory_order_acquire)) {
    counters_.rejects_shutdown.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, req.tag, ErrorCode::kShuttingDown,
               "server is draining", frame.version);
    return;
  }

  auto batch = std::make_shared<BatchState>();
  batch->conn_id = conn.id;
  batch->version = frame.version;
  batch->trace_id = req.trace_id;
  batch->admitted = std::chrono::steady_clock::now();
  batch->result.tag = req.tag;
  batch->result.entries.resize(req.jobs.size());
  batch->remaining = req.jobs.size();
  if (req.jobs.empty()) {
    send_frame(conn, MsgType::kJobBatchResult,
               encode_job_batch_result(batch->result, frame.version),
               frame.version);
    return;
  }
  // The whole batch is one logical in-flight unit for the pipelining
  // window and the idle reaper; the reply leaves when the last entry
  // settles (finalize_batch releases this hold).
  ++conn.pending_jobs;
  for (std::size_t i = 0; i < req.jobs.size(); ++i) {
    JobRequest& jr = req.jobs[i];
    // Entries without their own trace inherit the batch's, before
    // conversion so the fleet (and the flight recorder) see it too.
    if (jr.trace_id == 0) jr.trace_id = req.trace_id;
    rt::Job job;
    try {
      job = to_rt_job(jr);
    } catch (const std::exception& e) {
      JobBatchEntryMsg entry;
      entry.ok = 0;
      entry.error.tag = jr.tag;
      entry.error.code = ErrorCode::kBadRequest;
      entry.error.message = e.what();
      settle_batch_entry(shard, batch, i, std::move(entry));
      continue;
    }
    admit_job(shard, conn, std::move(job), jr.tag, jr.trace_id,
              frame.version, nullptr, 0, false, batch, i);
  }
}

void Server::admit_job(Shard& shard, Conn& conn, rt::Job job,
                       std::uint32_t tag, std::uint64_t trace_id,
                       std::uint16_t version,
                       std::shared_ptr<const svc::CompiledDfg> dfg,
                       std::size_t dfg_samples, bool dfg_cache_hit,
                       std::shared_ptr<BatchState> batch,
                       std::size_t batch_index) {
  // Admission is stamped before the enqueue: a worker may arm the job
  // the instant it lands, and e2e must bracket the execute interval.
  const auto admitted = std::chrono::steady_clock::now();
  const std::size_t depth = runtime_->queue_depth();
  if (depth >= admission_high_) {
    shed_job(shard, &conn, tag, version, batch, batch_index);
    return;
  }
  if (depth >= admission_low_) {
    // Between the watermarks: park the job instead of either queueing
    // deeper (latency) or shedding (wasted work) — the shard retries
    // as completions pull the depth back down.
    DeferredJob dj;
    dj.conn_id = conn.id;
    dj.tag = tag;
    dj.job_name = job.name;
    dj.job = std::move(job);
    dj.trace_id = trace_id;
    dj.version = version;
    dj.admitted = admitted;
    dj.deadline = admitted + config_.admission_max_delay;
    dj.dfg = std::move(dfg);
    dj.dfg_samples = dfg_samples;
    dj.dfg_cache_hit = dfg_cache_hit;
    dj.batch_index = batch_index;
    if (batch == nullptr) ++conn.pending_jobs;  // parked hold on window
    dj.batch = std::move(batch);
    shard.deferred.push_back(std::move(dj));
    counters_.admission_delayed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  PendingJob meta;
  meta.conn_id = conn.id;
  meta.tag = tag;
  meta.trace_id = trace_id;
  meta.job_name = job.name;
  meta.version = version;
  meta.admitted = admitted;
  meta.dfg = std::move(dfg);
  meta.dfg_samples = dfg_samples;
  meta.dfg_cache_hit = dfg_cache_hit;
  meta.batch = batch;
  meta.batch_index = batch_index;
  switch (submit_pending(shard, &conn, std::move(job), std::move(meta))) {
    case FleetSubmit::kAccepted:
      counters_.admission_accepted.fetch_add(1, std::memory_order_relaxed);
      break;
    case FleetSubmit::kQueueFull:
      // The depth read raced another shard past the high watermark.
      shed_job(shard, &conn, tag, version, batch, batch_index);
      break;
    case FleetSubmit::kShutDown:
      counters_.rejects_shutdown.fetch_add(1, std::memory_order_relaxed);
      if (batch != nullptr) {
        JobBatchEntryMsg entry;
        entry.ok = 0;
        entry.error.tag = tag;
        entry.error.code = ErrorCode::kShuttingDown;
        entry.error.message = "runtime is shut down";
        settle_batch_entry(shard, batch, batch_index, std::move(entry));
      } else {
        send_error(conn, tag, ErrorCode::kShuttingDown,
                   "runtime is shut down", version);
      }
      break;
  }
}

Server::FleetSubmit Server::submit_pending(Shard& shard, Conn* conn,
                                           rt::Job job, PendingJob meta) {
  const int wake_fd = shard.wake_w;
  auto submitted = runtime_->try_submit(std::move(job), [wake_fd] {
    wake_shard(wake_fd, 'j');
  });
  switch (submitted.status) {
    case rt::Runtime::SubmitStatus::kAccepted: {
      meta.result = std::move(submitted.result);
      // Batch entries share the single hold their batch took.
      if (conn != nullptr && meta.batch == nullptr) ++conn->pending_jobs;
      shard.pending.push_back(std::move(meta));
      counters_.jobs_submitted.fetch_add(1, std::memory_order_relaxed);
      shard.jobs_submitted.fetch_add(1, std::memory_order_relaxed);
      return FleetSubmit::kAccepted;
    }
    case rt::Runtime::SubmitStatus::kQueueFull:
      return FleetSubmit::kQueueFull;
    case rt::Runtime::SubmitStatus::kShutDown:
      break;
  }
  return FleetSubmit::kShutDown;
}

void Server::shed_job(Shard& shard, Conn* conn, std::uint32_t tag,
                      std::uint16_t version,
                      const std::shared_ptr<BatchState>& batch,
                      std::size_t batch_index) {
  counters_.admission_shed.fetch_add(1, std::memory_order_relaxed);
  counters_.rejects_busy.fetch_add(1, std::memory_order_relaxed);
  if (batch != nullptr) {
    JobBatchEntryMsg entry;
    entry.ok = 0;
    entry.error.tag = tag;
    entry.error.code = ErrorCode::kBusy;
    entry.error.message = "job queue is full — resubmit later";
    entry.error.retry_after_ms = config_.retry_after_hint_ms;
    settle_batch_entry(shard, batch, batch_index, std::move(entry));
    return;
  }
  if (conn != nullptr) {
    send_error(*conn, tag, ErrorCode::kBusy,
               "job queue is full — resubmit later", version,
               config_.retry_after_hint_ms);
  }
}

void Server::pump_deferred(Shard& shard) {
  if (shard.deferred.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  for (auto it = shard.deferred.begin(); it != shard.deferred.end();) {
    const bool due = now >= it->deadline;
    // Attempt only when success is likely (depth back under low) or
    // the deadline forces the issue — an attempt consumes the job, so
    // a failed one settles the request (shed) rather than re-parking.
    if (!due && runtime_->queue_depth() >= admission_low_) {
      ++it;
      continue;
    }
    Conn* conn = find_conn(shard, it->conn_id);
    if (conn == nullptr && it->batch == nullptr) {
      // Peer vanished while parked: nothing to answer, nothing to run.
      it = shard.deferred.erase(it);
      continue;
    }
    if (conn != nullptr && it->batch == nullptr &&
        conn->pending_jobs > 0) {
      --conn->pending_jobs;  // release the parked hold; submit re-takes
    }
    PendingJob meta;
    meta.conn_id = it->conn_id;
    meta.tag = it->tag;
    meta.trace_id = it->trace_id;
    meta.job_name = std::move(it->job_name);
    meta.version = it->version;
    meta.admitted = it->admitted;  // e2e includes the deferral
    meta.dfg = std::move(it->dfg);
    meta.dfg_samples = it->dfg_samples;
    meta.dfg_cache_hit = it->dfg_cache_hit;
    meta.batch = it->batch;
    meta.batch_index = it->batch_index;
    const std::uint32_t tag = it->tag;
    const std::uint16_t version = it->version;
    auto batch = std::move(it->batch);
    const std::size_t batch_index = it->batch_index;
    rt::Job job = std::move(it->job);
    it = shard.deferred.erase(it);
    switch (submit_pending(shard, conn, std::move(job), std::move(meta))) {
      case FleetSubmit::kAccepted:
        counters_.admission_accepted.fetch_add(1,
                                               std::memory_order_relaxed);
        break;
      case FleetSubmit::kQueueFull:
        shed_job(shard, conn, tag, version, batch, batch_index);
        break;
      case FleetSubmit::kShutDown:
        counters_.rejects_shutdown.fetch_add(1, std::memory_order_relaxed);
        if (batch != nullptr) {
          JobBatchEntryMsg entry;
          entry.ok = 0;
          entry.error.tag = tag;
          entry.error.code = ErrorCode::kShuttingDown;
          entry.error.message = "runtime is shut down";
          settle_batch_entry(shard, batch, batch_index, std::move(entry));
        } else if (conn != nullptr) {
          send_error(*conn, tag, ErrorCode::kShuttingDown,
                     "runtime is shut down", version);
        }
        break;
    }
  }
}

void Server::settle_batch_entry(Shard& shard,
                                const std::shared_ptr<BatchState>& batch,
                                std::size_t index,
                                JobBatchEntryMsg entry) {
  BatchState& b = *batch;
  b.result.entries[index] = std::move(entry);
  if (b.remaining > 0) --b.remaining;
  if (b.remaining == 0) finalize_batch(shard, b);
}

void Server::finalize_batch(Shard& shard, BatchState& batch) {
  Conn* conn = find_conn(shard, batch.conn_id);
  if (conn == nullptr) return;  // peer vanished; entries are forfeit
  send_frame(*conn, MsgType::kJobBatchResult,
             encode_job_batch_result(batch.result, batch.version),
             batch.version);
  if (conn->pending_jobs > 0) --conn->pending_jobs;
  conn->last_activity = std::chrono::steady_clock::now();
}

namespace {

DfgCompiledMsg make_dfg_compiled_msg(std::uint32_t tag,
                                     const svc::CompiledDfg& compiled,
                                     bool cache_hit) {
  const mapper::MappedProgram& mapped = compiled.mapped;
  DfgCompiledMsg msg;
  msg.tag = tag;
  msg.dfg_hash = compiled.dfg_hash;
  msg.cache_hit = cache_hit ? 1 : 0;
  // Hits report 0: no compile ran, so there is no cost to report.
  msg.compile_us = cache_hit ? 0 : clamp_u32(compiled.compile_us);
  msg.dnodes_used = static_cast<std::uint16_t>(mapped.dnodes_used);
  msg.max_latency = static_cast<std::uint16_t>(mapped.max_latency);
  msg.pushes_per_cycle =
      static_cast<std::uint16_t>(mapped.pushes_per_cycle);
  msg.input_count = static_cast<std::uint16_t>(mapped.input_count);
  for (const mapper::MappedOutput& mo : mapped.outputs) {
    DfgOutputMetaMsg meta;
    meta.name = mo.name;
    meta.latency = static_cast<std::uint16_t>(mo.latency);
    meta.push_rank = static_cast<std::uint16_t>(mo.push_rank);
    msg.outputs.push_back(std::move(meta));
  }
  return msg;
}

}  // namespace

void Server::handle_compile_dfg(Conn& conn, const Frame& frame) {
  if (frame.version < 3) {
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, 0, ErrorCode::kBadRequest,
               "DFG messages require protocol v3", frame.version);
    conn.closing = true;
    return;
  }
  SubmitDfgMsg req;
  try {
    req = decode_submit_dfg(frame.payload);
  } catch (const ProtocolError& e) {
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, 0, ErrorCode::kBadRequest, e.what(), frame.version);
    conn.closing = true;
    return;
  }
  if (drain_requested_.load(std::memory_order_acquire)) {
    counters_.rejects_shutdown.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, req.tag, ErrorCode::kShuttingDown,
               "server is draining", frame.version);
    return;
  }
  try {
    const svc::CompileService::Result res =
        compile_.get_or_compile(req.dfg, req.geometry);
    send_frame(conn, MsgType::kDfgCompiled,
               encode_dfg_compiled(make_dfg_compiled_msg(
                   req.tag, *res.compiled, res.cache_hit)),
               frame.version);
  } catch (const SimError& e) {
    // Codec / mapper / golden-model diagnostics travel verbatim; the
    // graph was bad, not the connection, so it stays open.
    send_error(conn, req.tag, ErrorCode::kBadRequest, e.what(),
               frame.version);
  }
}

void Server::handle_submit_dfg(Shard& shard, Conn& conn,
                               const Frame& frame) {
  if (frame.version < 3) {
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, 0, ErrorCode::kBadRequest,
               "DFG messages require protocol v3", frame.version);
    conn.closing = true;
    return;
  }
  SubmitDfgJobMsg req;
  try {
    req = decode_submit_dfg_job(frame.payload);
  } catch (const ProtocolError& e) {
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, 0, ErrorCode::kBadRequest, e.what(), frame.version);
    conn.closing = true;
    return;
  }
  if (drain_requested_.load(std::memory_order_acquire)) {
    counters_.rejects_shutdown.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, req.tag, ErrorCode::kShuttingDown,
               "server is draining", frame.version);
    return;
  }
  // Compile (or hit the cache) BEFORE the admission stamp inside
  // admit_job: compile latency must never appear in the job's span
  // timeline, and a cache hit costs one hash + map lookup.  The
  // compile service is internally locked — shards share it safely.
  svc::CompileService::Result res;
  rt::Job job;
  try {
    res = compile_.get_or_compile(req.dfg, req.geometry);
    job = svc::make_dfg_job(res.compiled, req.streams);
  } catch (const SimError& e) {
    send_error(conn, req.tag, ErrorCode::kBadRequest, e.what(),
               frame.version);
    return;
  }
  job.trace_id = req.trace_id;
  const std::size_t samples = req.streams.empty() ? 0
                                                  : req.streams[0].size();
  admit_job(shard, conn, std::move(job), req.tag, req.trace_id,
            frame.version, std::move(res.compiled), samples, res.cache_hit,
            nullptr, 0);
}

void Server::handle_submit_gemm(Shard& shard, Conn& conn,
                                const Frame& frame) {
  if (frame.version < 4) {
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, 0, ErrorCode::kBadRequest,
               "tiled-GEMM messages require protocol v4", frame.version);
    conn.closing = true;
    return;
  }
  SubmitGemmMsg req;
  try {
    req = decode_submit_gemm(frame.payload);
  } catch (const ProtocolError& e) {
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, 0, ErrorCode::kBadRequest, e.what(), frame.version);
    conn.closing = true;
    return;
  }
  if (drain_requested_.load(std::memory_order_acquire)) {
    counters_.rejects_shutdown.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, req.tag, ErrorCode::kShuttingDown,
               "server is draining", frame.version);
    return;
  }
  std::shared_ptr<GemmState> state;
  try {
    // The plan cache serves repeated shapes without re-planning; the
    // schedule is immutable and shared across requests and shards.
    state = std::make_shared<GemmState>(
        req.geometry, plan_cache_.get_or_plan(req.spec, req.scratch_tiles),
        std::move(req.a), std::move(req.b), req.scratch_tiles);
  } catch (const SimError& e) {
    // Geometry the tile engine cannot lower (e.g. fewer than 8
    // Dnodes); the connection stays open.
    send_error(conn, req.tag, ErrorCode::kBadRequest, e.what(),
               frame.version);
    return;
  }
  state->conn_id = conn.id;
  state->tag = req.tag;
  state->version = frame.version;
  state->trace_id = req.trace_id;
  state->admitted = std::chrono::steady_clock::now();
  shard.gemms.push_back(std::move(state));
  // One logical job from the connection's point of view: the idle
  // reaper must not cut a peer waiting on a long tile schedule.
  ++conn.pending_jobs;
  counters_.gemm_requests.fetch_add(1, std::memory_order_relaxed);
  pump_gemms(shard);
}

void Server::pump_gemms(Shard& shard) {
  const int wake_fd = shard.wake_w;
  bool queue_full = false;
  for (auto& g : shard.gemms) {
    if (queue_full) break;
    while (!g->failed && g->next_step < g->sched->steps.size()) {
      const tile::TileStep step = g->sched->steps[g->next_step];
      rt::Job job;
      try {
        job = g->builder.build(*g->sched, step, g->a, g->b);
      } catch (const SimError& e) {
        g->failed = true;
        g->error = e.what();
        g->next_step = g->sched->steps.size();
        break;
      }
      job.trace_id = g->trace_id;
      auto submitted = runtime_->try_submit(std::move(job), [wake_fd] {
        wake_shard(wake_fd, 'j');
      });
      if (submitted.status == rt::Runtime::SubmitStatus::kQueueFull) {
        // Backpressure: the held step retries on the next poll tick or
        // tile completion, so one giant GEMM never wedges the loop.
        queue_full = true;
        break;
      }
      if (submitted.status == rt::Runtime::SubmitStatus::kShutDown) {
        g->failed = true;
        g->error = "runtime is shut down";
        g->next_step = g->sched->steps.size();
        break;
      }
      PendingJob pj;
      pj.conn_id = g->conn_id;
      pj.tag = g->tag;
      pj.result = std::move(submitted.result);
      pj.trace_id = g->trace_id;
      pj.job_name = "gemm.tile";
      pj.version = g->version;
      pj.admitted = std::chrono::steady_clock::now();
      pj.gemm = g;
      pj.gemm_step = step;
      shard.pending.push_back(std::move(pj));
      ++g->next_step;
      ++g->outstanding;
      counters_.gemm_tile_jobs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  for (auto it = shard.gemms.begin(); it != shard.gemms.end();) {
    GemmState& g = **it;
    if (g.outstanding > 0 ||
        (!g.failed && g.next_step < g.sched->steps.size())) {
      ++it;
      continue;
    }
    finalize_gemm(shard, g);
    it = shard.gemms.erase(it);
  }
}

void Server::finalize_gemm(Shard& shard, GemmState& g) {
  counters_.gemm_scratch_hits.fetch_add(g.scratch.hits(),
                                        std::memory_order_relaxed);
  counters_.gemm_scratch_refills.fetch_add(g.scratch.refills(),
                                           std::memory_order_relaxed);
  counters_.gemm_bytes_filled.fetch_add(g.scratch.bytes_filled(),
                                        std::memory_order_relaxed);
  counters_.gemm_bytes_saved.fetch_add(g.scratch.bytes_saved(),
                                       std::memory_order_relaxed);

  const auto now = std::chrono::steady_clock::now();
  Conn* conn = find_conn(shard, g.conn_id);
  if (conn != nullptr) {
    if (!g.failed) {
      JobResultMsg msg;
      msg.tag = g.tag;
      msg.outputs = tile::narrow_grid(g.sched->spec, g.acc);
      msg.sim_cycles = g.sim_cycles;
      msg.worker = g.last_worker;
      msg.reused_system = g.any_reused ? 1 : 0;
      msg.counters = {
          {"sim.cycles", g.sim_cycles},
          {"tile.jobs", g.sched->steps.size()},
          {"tile.scratch.hits", g.scratch.hits()},
          {"tile.scratch.refills", g.scratch.refills()},
          {"tile.scratch.evictions", g.scratch.evictions()},
          {"tile.scratch.bytes_filled", g.scratch.bytes_filled()},
          {"tile.scratch.bytes_saved", g.scratch.bytes_saved()},
          {"tile.streamed_bytes", g.sched->streamed_bytes},
      };
      msg.trace_id = g.trace_id;
      msg.total_us = clamp_u32(us_between(g.admitted, now));
      send_frame(*conn, MsgType::kJobResult,
                 encode_job_result(msg, g.version), g.version);
    } else {
      send_error(*conn, g.tag, ErrorCode::kJobFailed, g.error, g.version);
    }
    if (conn->pending_jobs > 0) --conn->pending_jobs;
    conn->last_activity = now;
  }
  if (g.failed) {
    counters_.jobs_failed.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.jobs_completed.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::handle_frame(Shard& shard, Conn& conn, const Frame& frame) {
  counters_.frames_in.fetch_add(1, std::memory_order_relaxed);
  shard.frames_in.fetch_add(1, std::memory_order_relaxed);
  try {
    switch (frame.type) {
      case MsgType::kPing:
        send_frame(conn, MsgType::kPong,
                   encode_ping(decode_ping(frame.payload)), frame.version);
        return;
      case MsgType::kServerInfoReq: {
        ServerInfoMsg info;
        info.workers =
            static_cast<std::uint32_t>(runtime_->worker_count());
        info.queue_capacity =
            static_cast<std::uint32_t>(config_.runtime.queue_capacity);
        info.max_frame_bytes =
            static_cast<std::uint32_t>(config_.max_frame_bytes);
        info.jobs_completed =
            counters_.jobs_completed.load(std::memory_order_relaxed);
        info.server = "sring-serve";
        send_frame(conn, MsgType::kServerInfo, encode_server_info(info),
                   frame.version);
        return;
      }
      case MsgType::kSubmitJob:
        handle_submit(shard, conn, frame);
        return;
      case MsgType::kSubmitJobBatch:
        handle_submit_batch(shard, conn, frame);
        return;
      case MsgType::kSubmitDfg:
        handle_compile_dfg(conn, frame);
        return;
      case MsgType::kSubmitDfgJob:
        handle_submit_dfg(shard, conn, frame);
        return;
      case MsgType::kSubmitGemm:
        handle_submit_gemm(shard, conn, frame);
        return;
      case MsgType::kGetStats:
        send_frame(conn, MsgType::kStatsReply,
                   encode_stats_reply(
                       stats_snapshot(decode_get_stats(frame.payload))),
                   frame.version);
        return;
      case MsgType::kDrain:
        counters_.drains.fetch_add(1, std::memory_order_relaxed);
        send_frame(conn, MsgType::kDrainAck, {}, frame.version);
        request_drain();
        return;
      default:
        counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        send_error(conn, 0, ErrorCode::kBadRequest,
                   "unexpected message type " +
                       std::to_string(
                           static_cast<unsigned>(frame.type)),
                   frame.version);
        conn.closing = true;
        return;
    }
  } catch (const ProtocolError& e) {
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, 0, ErrorCode::kBadRequest, e.what(), frame.version);
    conn.closing = true;
  } catch (const std::exception& e) {
    // Last-resort guard for the never-crash invariant: whatever one
    // frame did, only that connection pays for it.
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, 0, ErrorCode::kInternal, e.what(), frame.version);
    conn.closing = true;
  }
}

void Server::drain_input(Shard& shard, Conn& conn) {
  std::size_t offset = 0;
  bool keep = true;
  while (keep && !conn.closing) {
    // Pipelining window: stop parsing once the connection has its
    // fill of in-flight work.  The unparsed bytes stay buffered (and,
    // past the socket buffer, TCP backpressure holds the peer);
    // parsing resumes as completions free the window.
    if (conn.pending_jobs >= config_.pipeline_window) break;
    Frame frame;
    std::size_t consumed = 0;
    const auto view = std::span<const std::uint8_t>(conn.in).subspan(offset);
    const ParseStatus status =
        try_parse_frame(view, config_.max_frame_bytes, frame, consumed);
    if (status == ParseStatus::kNeedMore) break;
    if (status == ParseStatus::kFrame) {
      offset += consumed;
      conn.version = frame.version;  // for replies with no frame to mirror
      handle_frame(shard, conn, frame);
      continue;
    }
    // Malformed bytes: answer once, then close after the flush.  The
    // frames parsed before the damage were already dispatched — a
    // malformed frame mid-burst costs the connection, not the burst.
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    const char* what = "malformed frame";
    switch (status) {
      case ParseStatus::kBadMagic: what = "bad frame magic"; break;
      case ParseStatus::kBadVersion: what = "unsupported protocol version";
        break;
      case ParseStatus::kTooLarge: what = "frame exceeds size limit"; break;
      case ParseStatus::kBadCrc: what = "frame CRC mismatch"; break;
      default: break;
    }
    send_error(conn, 0, ErrorCode::kBadRequest, what, conn.version);
    conn.closing = true;
    keep = false;
  }
  if (offset > 0) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(offset));
  }
}

void Server::accept_ready(Shard& shard0) {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; the loop retries on next poll
    }
    if (active_conns_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      counters_.connections_rejected.fetch_add(1,
                                               std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    active_conns_.fetch_add(1, std::memory_order_relaxed);
    // Round-robin handoff: the acceptor keeps every Nth connection and
    // passes the rest to their shard's inbox, waking its loop.
    Shard& target = *shards_[next_shard_rr_ % shards_.size()];
    ++next_shard_rr_;
    if (&target == &shard0) {
      Conn conn;
      conn.fd = fd;
      conn.id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
      conn.last_activity = std::chrono::steady_clock::now();
      shard0.conns.push_back(std::move(conn));
      shard0.connections.fetch_add(1, std::memory_order_relaxed);
    } else {
      {
        std::lock_guard lock(target.inbox_mu);
        target.inbox.push_back(fd);
      }
      wake_shard(target.wake_w, 'c');
    }
  }
}

void Server::adopt_inbox(Shard& shard) {
  std::vector<int> fds;
  {
    std::lock_guard lock(shard.inbox_mu);
    fds.swap(shard.inbox);
  }
  if (fds.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  for (const int fd : fds) {
    Conn conn;
    conn.fd = fd;
    conn.id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conn.last_activity = now;
    shard.conns.push_back(std::move(conn));
    shard.connections.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::collect_completions(Shard& shard) {
  const auto now = std::chrono::steady_clock::now();
  for (auto it = shard.pending.begin(); it != shard.pending.end();) {
    if (it->result.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ++it;
      continue;
    }
    rt::JobResult result = it->result.get();
    if (it->gemm != nullptr) {
      // Tile job of a v4 GEMM: fold into the state's accumulator, no
      // per-tile reply.  The single response leaves via finalize_gemm
      // once every tile has landed (pump_gemms runs right after this
      // sweep — never during it, since it push_backs into pending).
      GemmState& g = *it->gemm;
      if (g.outstanding > 0) --g.outstanding;
      if (!result.ok) {
        if (!g.failed) {
          g.failed = true;
          g.error = result.error;
        }
        g.next_step = g.sched->steps.size();  // abandon unsubmitted tiles
      } else if (!g.failed) {
        try {
          tile::accumulate_tile(*g.sched, it->gemm_step, result.outputs,
                                g.acc);
          g.sim_cycles += result.report.stats.cycles;
          g.last_worker = static_cast<std::uint32_t>(result.worker);
          g.any_reused = g.any_reused || result.reused_system;
        } catch (const SimError& e) {
          // Output shape the schedule does not expect — a server bug,
          // not a client one; fail the request without crashing.
          g.failed = true;
          g.error = e.what();
          g.next_step = g.sched->steps.size();
        }
      }
      if (obs::telemetry_enabled()) {
        record_completion(shard, *it, result, 0,
                          std::chrono::steady_clock::now());
      }
      it = shard.pending.erase(it);
      continue;
    }
    if (it->batch != nullptr) {
      // Entry of a v5 batch: settle it; the one reply leaves when the
      // last entry lands.
      JobBatchEntryMsg entry;
      if (result.ok) {
        entry.ok = 1;
        entry.result = make_job_result_msg(it->tag, result);
        counters_.jobs_completed.fetch_add(1, std::memory_order_relaxed);
      } else {
        entry.ok = 0;
        entry.error.tag = it->tag;
        entry.error.code = ErrorCode::kJobFailed;
        entry.error.message = result.error;
        counters_.jobs_failed.fetch_add(1, std::memory_order_relaxed);
      }
      if (obs::telemetry_enabled()) {
        record_completion(shard, *it, result, 0,
                          std::chrono::steady_clock::now());
      }
      auto batch = std::move(it->batch);
      const std::size_t index = it->batch_index;
      it = shard.pending.erase(it);
      settle_batch_entry(shard, batch, index, std::move(entry));
      continue;
    }
    Conn* conn = find_conn(shard, it->conn_id);
    const bool timed = obs::telemetry_enabled();
    std::uint64_t serialize_us = 0;
    if (conn != nullptr) {
      const auto s0 = timed ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{};
      if (result.ok) {
        JobResultMsg msg = make_job_result_msg(it->tag, result);
        bool deliver = true;
        if (it->dfg != nullptr) {
          // DFG job: de-lace the raw fleet words into per-output
          // streams, concatenated in Dfg output order.  The appended
          // counters tell the client how to split the flat words back.
          try {
            const auto streams = svc::delace_outputs(
                *it->dfg, result.outputs, it->dfg_samples);
            msg.outputs.clear();
            for (const auto& s : streams) {
              msg.outputs.insert(msg.outputs.end(), s.begin(), s.end());
            }
            msg.counters.emplace_back("svc.dfg.outputs", streams.size());
            msg.counters.emplace_back("svc.dfg.samples", it->dfg_samples);
            msg.counters.emplace_back("svc.dfg.cache_hit",
                                      it->dfg_cache_hit ? 1 : 0);
            msg.counters.emplace_back("svc.dfg.hash", it->dfg->dfg_hash);
          } catch (const SimError& e) {
            // Raw stream shorter than the program promises — a server
            // bug, not a client one; answer it without crashing.
            send_error(*conn, it->tag, ErrorCode::kInternal, e.what(),
                       it->version);
            deliver = false;
          }
        }
        if (deliver) {
          send_frame(*conn, MsgType::kJobResult,
                     encode_job_result(msg, it->version), it->version);
        }
      } else {
        // SimError text travels verbatim; the client re-raises it.
        send_error(*conn, it->tag, ErrorCode::kJobFailed, result.error,
                   it->version);
      }
      if (timed) {
        serialize_us = us_between(s0, std::chrono::steady_clock::now());
      }
      if (conn->pending_jobs > 0) --conn->pending_jobs;
      conn->last_activity = now;
    }
    if (result.ok) {
      counters_.jobs_completed.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters_.jobs_failed.fetch_add(1, std::memory_order_relaxed);
    }
    if (timed) {
      record_completion(shard, *it, result, serialize_us,
                        std::chrono::steady_clock::now());
    }
    it = shard.pending.erase(it);
  }
}

void Server::record_completion(
    Shard& shard, const PendingJob& pending, const rt::JobResult& result,
    std::uint64_t serialize_us,
    std::chrono::steady_clock::time_point done) {
  const obs::SpanTimeline& tl = result.timeline;
  const std::uint64_t e2e = us_between(pending.admitted, done);

  obs::SpanRecord rec;
  rec.trace_id = pending.trace_id;
  rec.name = pending.job_name;
  rec.ok = result.ok;
  rec.error = result.error;
  rec.worker = static_cast<std::uint32_t>(result.worker);
  rec.sim_cycles = result.report.stats.cycles;
  rec.plan_hits = result.report.stats.plan_hits;
  if (const obs::Counter* c =
          result.report.metrics.find_counter("ring.superstep.cycles")) {
    rec.superstep_cycles = c->value();
  }
  rec.start_offset_us = us_between(start_time_, pending.admitted);
  rec.queue_wait_us = clamp_u32(tl.queue_wait_us());
  rec.arm_us = clamp_u32(tl.arm_us());
  rec.execute_us = clamp_u32(tl.execute_us());
  rec.serialize_us = clamp_u32(serialize_us);
  rec.e2e_us = clamp_u32(e2e);

  {
    // Latency histograms go to the shard's own slice; metrics() merges
    // the slices, so the totals are invariant to the shard count.
    std::lock_guard lock(shard.lat_mu);
    const auto& bounds = obs::latency_bounds_us();
    shard.latency.histogram("net.latency.queue_wait_us", bounds)
        .record(tl.queue_wait_us());
    shard.latency.histogram("net.latency.arm_us", bounds)
        .record(tl.arm_us());
    shard.latency.histogram("net.latency.execute_us", bounds)
        .record(tl.execute_us());
    shard.latency.histogram("net.latency.serialize_us", bounds)
        .record(serialize_us);
    shard.latency.histogram("net.latency.e2e_us", bounds).record(e2e);
  }
  std::lock_guard lock(telemetry_mu_);
  recorder_.record(std::move(rec));
}

void Server::maybe_sample(std::chrono::steady_clock::time_point now) {
  if (!obs::telemetry_enabled()) return;
  if (now - last_sample_ < config_.sample_interval) return;
  last_sample_ = now;
  const obs::Registry snap = metrics();  // takes its own locks
  std::lock_guard lock(telemetry_mu_);
  sampler_.sample(snap, now);
}

void Server::shard_loop(Shard& shard) {
  const bool acceptor = shard.index == 0;
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn_ids;  // parallel to fds tail
  std::vector<std::uint8_t> buf(64 * 1024);

  // Armed when the drain flush phase begins; a peer that never reads
  // its responses cannot hold this shard open past the deadline.
  bool drain_flush_armed = false;
  std::chrono::steady_clock::time_point drain_flush_deadline{};

  while (true) {
    const bool draining = drain_requested_.load(std::memory_order_acquire);
    if (draining && acceptor && listen_fd_ >= 0) close_fd(listen_fd_);

    adopt_inbox(shard);

    // Drop fully closed / flushed-and-closing connections.
    for (auto& conn : shard.conns) {
      if (conn.fd >= 0 && conn.closing && conn.out_pos == conn.out.size()) {
        close_conn(conn);
      }
    }
    shard.conns.erase(
        std::remove_if(shard.conns.begin(), shard.conns.end(),
                       [](const Conn& c) { return c.fd < 0; }),
        shard.conns.end());

    if (draining && shard.pending.empty() && shard.gemms.empty() &&
        shard.deferred.empty()) {
      // In-flight work answered; flush what remains and finish.
      const auto flush_now = std::chrono::steady_clock::now();
      if (!drain_flush_armed) {
        drain_flush_armed = true;
        drain_flush_deadline = flush_now + config_.drain_flush_timeout;
      }
      bool flushed = true;
      for (auto& conn : shard.conns) {
        if (conn.fd < 0) continue;
        if (!flush_out(conn.fd, conn.out, conn.out_pos,
                       counters_.bytes_out) ||
            conn.out.empty()) {
          close_conn(conn);
        } else {
          flushed = false;
        }
      }
      if (flushed) break;
      if (flush_now >= drain_flush_deadline) {
        // Unflushed responses to peers that stopped reading; drop them
        // so SIGTERM always terminates.
        for (auto& conn : shard.conns) close_conn(conn);
        break;
      }
    }

    fds.clear();
    fd_conn_ids.clear();
    fds.push_back({shard.wake_r, POLLIN, 0});
    const bool poll_listen = acceptor && listen_fd_ >= 0;
    if (poll_listen) fds.push_back({listen_fd_, POLLIN, 0});
    for (auto& conn : shard.conns) {
      if (conn.fd < 0) continue;
      short events = conn.closing ? 0 : POLLIN;
      if (conn.out_pos < conn.out.size()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
      fd_conn_ids.push_back(conn.id);
    }

    // Tick at least as often as the sampler wants a point, and much
    // faster while deferred jobs wait on a millisecond deadline.
    const int sample_ms = static_cast<int>(
        std::max<std::int64_t>(1, config_.sample_interval.count()));
    int tick_ms = std::min(kPollTickMs, sample_ms);
    if (!shard.deferred.empty()) {
      tick_ms = std::min(tick_ms, kDeferredTickMs);
    }
    const int n = ::poll(fds.data(), fds.size(), tick_ms);
    if (n < 0 && errno != EINTR) {
      throw NetError("net: poll failed: " +
                     std::string(std::strerror(errno)));
    }

    // Wake pipe: drain it, then sweep completed jobs.
    if (fds[0].revents & POLLIN) {
      while (::read(shard.wake_r, buf.data(), buf.size()) > 0) {
      }
    }
    adopt_inbox(shard);  // a handoff may have arrived with the wake
    collect_completions(shard);
    pump_gemms(shard);
    pump_deferred(shard);
    // Completions freed pipeline windows: resume parsing connections
    // whose buffers still hold frames.
    for (auto& conn : shard.conns) {
      if (conn.fd < 0 || conn.closing || conn.in.empty()) continue;
      if (conn.pending_jobs < config_.pipeline_window) {
        drain_input(shard, conn);
      }
    }
    if (acceptor) maybe_sample(std::chrono::steady_clock::now());

    std::size_t at = 1;
    if (poll_listen) {
      if (fds[at].revents & POLLIN) accept_ready(shard);
      ++at;
    }
    for (std::size_t i = 0; at < fds.size(); ++at, ++i) {
      Conn* conn = find_conn(shard, fd_conn_ids[i]);
      if (conn == nullptr) continue;
      const short revents = fds[at].revents;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Peer vanished: pending jobs still run, results are dropped.
        close_conn(*conn);
        continue;
      }
      if (revents & POLLOUT) {
        if (!flush_out(conn->fd, conn->out, conn->out_pos,
                       counters_.bytes_out)) {
          close_conn(*conn);
          continue;
        }
        conn->last_activity = std::chrono::steady_clock::now();
      }
      if ((revents & POLLIN) && !conn->closing) {
        bool peer_closed = false;
        while (true) {
          const ssize_t r = ::recv(conn->fd, buf.data(), buf.size(), 0);
          if (r > 0) {
            counters_.bytes_in.fetch_add(static_cast<std::uint64_t>(r),
                                         std::memory_order_relaxed);
            conn->in.insert(conn->in.end(), buf.data(), buf.data() + r);
            continue;
          }
          if (r == 0) {
            peer_closed = true;
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR) continue;
          peer_closed = true;
          break;
        }
        drain_input(shard, *conn);
        // Stamp AFTER processing: a large input burst can take longer
        // than a short idle_timeout to answer, and a stale stamp would
        // reap the very connection that is actively talking to us.
        conn->last_activity = std::chrono::steady_clock::now();
        if (peer_closed) close_conn(*conn);
      }
    }

    // Idle reaping: connections with a job in flight are exempt, but a
    // closing connection is not — its flush either progresses (which
    // refreshes last_activity) or the peer has stopped reading and the
    // unflushed output is forfeit.
    const auto reap_now = std::chrono::steady_clock::now();
    for (auto& conn : shard.conns) {
      if (conn.fd < 0 || (conn.pending_jobs > 0 && !conn.closing)) continue;
      if (reap_now - conn.last_activity > config_.idle_timeout) {
        counters_.timeouts.fetch_add(1, std::memory_order_relaxed);
        close_conn(conn);
      }
    }
  }

  for (auto& conn : shard.conns) close_conn(conn);
  shard.conns.clear();
}

void Server::run() {
  check(!ran_, "net: Server::run() may only be called once");
  ran_ = true;

  // Shards 1..N-1 on their own threads, shard 0 (acceptor + sampler)
  // on the caller's thread.  A shard that dies on an unexpected error
  // drains the rest so run() still returns, then rethrows.
  std::vector<std::exception_ptr> errors(shards_.size());
  const auto run_shard = [this, &errors](std::size_t index) {
    try {
      shard_loop(*shards_[index]);
    } catch (...) {
      errors[index] = std::current_exception();
      request_drain();
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(shards_.size() - 1);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    threads.emplace_back(run_shard, i);
  }
  run_shard(0);
  for (auto& t : threads) t.join();

  // Handoffs that raced the drain: accepted fds no shard adopted.
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->inbox_mu);
    for (int fd : shard->inbox) {
      if (fd < 0) continue;
      ::close(fd);
      counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
      active_conns_.fetch_sub(1, std::memory_order_relaxed);
    }
    shard->inbox.clear();
  }
  close_fd(listen_fd_);

  // Post-mortem flight dump — covers Drain frames, request_drain() and
  // SIGTERM alike, since they all funnel through this return path.
  if (!config_.flight_dump_path.empty()) {
    std::lock_guard lock(telemetry_mu_);
    std::ofstream out(config_.flight_dump_path);
    if (out) recorder_.write_jsonl(out);
  }
  runtime_->shutdown();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

obs::Registry Server::metrics() const {
  obs::Registry out;
  const auto get = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  out.counter("net.connections.accepted")
      .set(get(counters_.connections_accepted));
  out.counter("net.connections.closed")
      .set(get(counters_.connections_closed));
  out.counter("net.connections.rejected")
      .set(get(counters_.connections_rejected));
  out.counter("net.connections.active")
      .set(get(counters_.connections_accepted) -
           get(counters_.connections_closed));
  out.counter("net.frames.in").set(get(counters_.frames_in));
  out.counter("net.frames.out").set(get(counters_.frames_out));
  out.counter("net.bytes.in").set(get(counters_.bytes_in));
  out.counter("net.bytes.out").set(get(counters_.bytes_out));
  out.counter("net.rejects.busy").set(get(counters_.rejects_busy));
  out.counter("net.rejects.shutdown").set(get(counters_.rejects_shutdown));
  out.counter("net.protocol_errors").set(get(counters_.protocol_errors));
  out.counter("net.timeouts").set(get(counters_.timeouts));
  out.counter("net.jobs.submitted").set(get(counters_.jobs_submitted));
  out.counter("net.jobs.completed").set(get(counters_.jobs_completed));
  out.counter("net.jobs.failed").set(get(counters_.jobs_failed));
  out.counter("net.drains").set(get(counters_.drains));
  out.counter("net.admission.accepted")
      .set(get(counters_.admission_accepted));
  out.counter("net.admission.delayed")
      .set(get(counters_.admission_delayed));
  out.counter("net.admission.shed").set(get(counters_.admission_shed));
  out.counter("net.batch.requests").set(get(counters_.batch_requests));
  out.counter("net.batch.jobs").set(get(counters_.batch_jobs));
  out.counter("net.gemm.requests").set(get(counters_.gemm_requests));
  out.counter("net.gemm.tile_jobs").set(get(counters_.gemm_tile_jobs));
  out.counter("tile.scratch.hits").set(get(counters_.gemm_scratch_hits));
  out.counter("tile.scratch.refills")
      .set(get(counters_.gemm_scratch_refills));
  out.counter("tile.scratch.bytes_filled")
      .set(get(counters_.gemm_bytes_filled));
  out.counter("tile.scratch.bytes_saved")
      .set(get(counters_.gemm_bytes_saved));
  out.counter("tile.plan.hits").set(plan_cache_.hits());
  out.counter("tile.plan.misses").set(plan_cache_.misses());
  out.counter("tile.plan.evictions").set(plan_cache_.evictions());
  out.counter("net.shards").set(shards_.size());
  for (const auto& shard : shards_) {
    const std::string prefix =
        "net.shard." + std::to_string(shard->index);
    out.counter(prefix + ".frames_in").set(get(shard->frames_in));
    out.counter(prefix + ".jobs").set(get(shard->jobs_submitted));
    out.counter(prefix + ".connections").set(get(shard->connections));
    std::lock_guard lock(shard->lat_mu);
    out.merge_from(shard->latency);
  }
  out.merge_from(runtime_->metrics());
  out.merge_from(compile_.metrics());
  return out;
}

StatsReplyMsg Server::stats_snapshot(std::uint32_t flags) const {
  const auto now = std::chrono::steady_clock::now();
  const obs::Registry snap = metrics();  // takes its own locks

  StatsReplyMsg msg;
  msg.uptime_us = us_between(start_time_, now);
  msg.workers = static_cast<std::uint32_t>(runtime_->worker_count());
  if (const obs::Counter* c = snap.find_counter("rt.queue.depth")) {
    msg.queue_depth = static_cast<std::uint32_t>(c->value());
  }
  msg.queue_capacity =
      static_cast<std::uint32_t>(config_.runtime.queue_capacity);

  // Cumulative busy time across the fleet vs wall time × workers.
  if (const obs::Counter* busy = snap.find_counter("rt.busy_us")) {
    const double denom = static_cast<double>(msg.uptime_us) *
                         static_cast<double>(std::max(1u, msg.workers));
    if (denom > 0.0) {
      msg.worker_utilization =
          std::min(1.0, static_cast<double>(busy->value()) / denom);
    }
  }

  for (const auto& [name, counter] : snap.counters()) {
    msg.counters.emplace_back(name, counter.value());
  }
  for (const auto& [name, hist] : snap.histograms()) {
    if (name.find(".latency.") == std::string::npos) continue;
    StatsQuantileMsg q;
    q.name = name;
    q.count = hist.count();
    if (hist.count() > 0) {
      q.mean_us = static_cast<double>(hist.sum()) /
                  static_cast<double>(hist.count());
    }
    q.p50_us = obs::histogram_quantile(hist, 0.50);
    q.p90_us = obs::histogram_quantile(hist, 0.90);
    q.p99_us = obs::histogram_quantile(hist, 0.99);
    q.max_us = hist.max();
    msg.latencies.push_back(std::move(q));
  }

  std::lock_guard lock(telemetry_mu_);
  for (const auto& [name, per_sec] : sampler_.rates()) {
    msg.rates.push_back({name, per_sec});
  }
  if (flags & kStatsIncludeFlight) {
    const auto recent = recorder_.recent();
    msg.flight.assign(recent.begin(), recent.end());
  }
  return msg;
}

}  // namespace sring::net
