// Sharded poll-based job server: the rt runtime exposed as a network
// service.
//
// The serving front end mirrors the ring architecture's own scaling
// story — many cheap independent engines behind one shared fleet.  N
// event-loop shards each run their own poll() loop over their own
// connections, read/write buffers, self-wake pipe and telemetry
// slice; shard 0 additionally owns the listening socket and hands
// accepted fds to the other shards round-robin.  Every shard feeds
// the one rt::Runtime.  The design invariants:
//
//  * The accept loop never blocks on the fleet.  SubmitJob frames go
//    through Runtime::try_submit; admission is governed by queue-depth
//    watermarks (accept below low, briefly defer between low and
//    high, shed with Error{kBusy} + retry_after_ms above high).
//  * Frames pipeline per connection: every complete frame in the
//    buffer is parsed and admitted up to a bounded in-flight window;
//    replies leave in completion order and correlate by tag, each in
//    the exact protocol version of the frame that requested it.
//  * Job completions wake the owning shard through its pipe (workers
//    call the envelope's notify hook), so response latency is not
//    quantized by the poll timeout.
//  * Malformed bytes (bad magic/version, oversized frame, CRC
//    mismatch, garbage) answer Error{kBadRequest} and close that one
//    connection — even mid-pipeline, the frames parsed before the
//    damage are still answered; the server itself never crashes.
//  * Drain — via a Drain frame, request_drain() or SIGTERM when
//    enable_signal_drain() was called — stops accepting connections
//    and jobs, lets every shard finish its in-flight and deferred
//    jobs, flushes every response, then returns from run().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "rt/runtime.hpp"
#include "svc/compile_service.hpp"
#include "tile/gemm_runner.hpp"
#include "tile/tile_plan.hpp"

namespace sring::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()

  rt::RuntimeConfig runtime;  ///< worker fleet behind the socket

  /// Event-loop shards.  Shard 0 runs on the run() caller's thread and
  /// owns the listening socket; shards 1..N-1 get their own threads
  /// and receive accepted fds round-robin.  1 reproduces the classic
  /// single-poll-loop server exactly.
  std::size_t shards = 1;

  /// Per-connection in-flight window: how many admitted-but-unanswered
  /// jobs one pipelined connection may accumulate before the shard
  /// stops parsing its buffer (bytes stay queued; TCP backpressure
  /// does the rest).  Parsing resumes as completions drain the window.
  std::size_t pipeline_window = 32;

  // --- queue-depth admission watermarks (net.admission.*) ---
  // Replaces the binary full/not-full Busy shed: below the low
  // watermark jobs are admitted immediately; between low and high they
  // are briefly deferred (smoothing bursts instead of shedding them);
  // at or above high they are shed with Error{kBusy} carrying a
  // retry_after_ms hint (v5 clients see the hint; older clients see
  // the same Error bytes as before).

  std::size_t admission_low = 0;   ///< 0 = max(1, queue_capacity / 2)
  std::size_t admission_high = 0;  ///< 0 = queue_capacity

  /// Longest a job may sit deferred; past this the shard force-tries
  /// the submit and sheds Busy if the queue is still full.
  std::chrono::milliseconds admission_max_delay{50};

  /// The retry_after_ms hint shed responses carry to v5 clients.
  std::uint32_t retry_after_hint_ms = 25;

  std::size_t max_connections = 64;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// DFG compile service shape (cache capacity, validation depth).
  svc::CompileServiceConfig compile;

  /// Tile-schedule cache: repeated (GemmSpec, scratch capacity) pairs
  /// skip re-planning (tile.plan.hits / misses / evictions).
  std::size_t plan_cache_capacity = 32;

  /// Idle cutoff for a connection with no pending jobs; activity on
  /// the socket or a job completion resets it.  Also applies to
  /// closing connections still waiting for their output to flush, so
  /// a peer that never reads cannot pin a connection forever.
  std::chrono::milliseconds idle_timeout{30000};

  /// Upper bound on the final flush phase of a drain: once every
  /// accepted job is answered, connections that have not drained
  /// their output within this window are force-closed so run() always
  /// returns (a peer that stops reading must not block SIGTERM).
  std::chrono::milliseconds drain_flush_timeout{5000};

  // --- live telemetry (all off-hot-path; see docs/OBSERVABILITY.md) ---

  /// Rolling-sampler period; the poll loops tick at least this often.
  std::chrono::milliseconds sample_interval{1000};
  std::size_t sampler_capacity = 128;  ///< delta points kept

  /// Flight recorder: last-N completions ring, pinned slow/error ring,
  /// and the e2e threshold past which a job counts as slow.
  std::size_t flight_recent = 64;
  std::size_t flight_captured = 64;
  std::uint64_t slow_threshold_us = 100'000;

  /// When set, the captured flight records are dumped as JSONL to this
  /// path as run() returns (covers Drain, SIGTERM and shutdown).
  std::string flight_dump_path;
};

class Server {
 public:
  /// Binds and listens immediately (so port() is valid before run()),
  /// and starts the runtime fleet.  Throws NetError on bind failure.
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (resolves an ephemeral request).
  std::uint16_t port() const noexcept { return port_; }

  /// Serve until drained.  Spawns shards-1 threads (shard 0 runs on
  /// the caller's thread) and returns once every accepted job has been
  /// answered and every response flushed on every shard.
  void run();

  /// Thread- and signal-safe drain request; run() winds down.
  void request_drain() noexcept;

  /// Route SIGTERM/SIGINT to request_drain() of this server (one
  /// server per process; `sras serve` uses it).  The destructor
  /// restores the previous handlers before the server goes away, so a
  /// late signal can never reach a destroyed instance.  Signals are
  /// assumed to be delivered on the threads of this process only; no
  /// other thread may concurrently install SIGTERM/SIGINT handlers.
  void enable_signal_drain();

  /// net.* counters plus the fleet's rt.* metrics, the shard-local
  /// net.latency.* histograms (merged via Registry::merge_from — the
  /// totals are shard-count-invariant) and per-shard net.shard.<i>.*
  /// counters.  Callable from any thread while run() is live.
  obs::Registry metrics() const;

  /// The live stats snapshot a GetStats frame polls, also callable
  /// in-process (bench_serve uses it).  Thread-safe.
  StatsReplyMsg stats_snapshot(std::uint32_t flags) const;

  std::size_t shard_count() const noexcept { return shards_.size(); }

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;  ///< never reused, unlike fds
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    std::size_t out_pos = 0;
    /// Logical in-flight requests (queued jobs, deferred admissions,
    /// whole GEMMs/batches) — the pipelining window and the idle
    /// reaper both key off it.
    std::size_t pending_jobs = 0;
    bool closing = false;  ///< close once out drains
    std::chrono::steady_clock::time_point last_activity;
    /// Version of the last frame this peer sent — used only for
    /// replies with no request frame to mirror (parse errors).
    std::uint16_t version = kProtocolVersion;
  };

  /// One in-flight tiled GEMM (v4): the server-side analogue of
  /// tile::run_gemm, unrolled into the shard loop so the tile jobs of
  /// many clients interleave on the fleet.  Tile completions fold into
  /// `acc` in whatever order they land (wrapping adds are
  /// order-independent — see tile/gemm_ref.hpp), and the single
  /// JobResult reply goes out once the last tile has been folded.
  /// The schedule is shared with (and may outlive) the plan cache.
  struct GemmState {
    std::uint64_t conn_id = 0;
    std::uint32_t tag = 0;
    std::uint16_t version = kProtocolVersion;
    std::uint64_t trace_id = 0;
    std::chrono::steady_clock::time_point admitted;  ///< e2e epoch

    std::shared_ptr<const tile::TileSchedule> sched;
    std::vector<Word> a, b;
    tile::Scratchpad scratch;
    tile::GemmJobBuilder builder;  ///< holds a reference to `scratch`
    std::vector<Word> acc;         ///< m*n wrapping accumulator grid

    std::size_t next_step = 0;    ///< first un-submitted schedule step
    std::size_t outstanding = 0;  ///< tile jobs currently pending
    std::uint64_t sim_cycles = 0;
    std::uint32_t last_worker = 0;
    bool any_reused = false;
    bool failed = false;
    std::string error;  ///< first tile failure, verbatim

    GemmState(const RingGeometry& geometry,
              std::shared_ptr<const tile::TileSchedule> schedule,
              std::vector<Word> a_in, std::vector<Word> b_in,
              std::size_t scratch_tiles)
        : sched(std::move(schedule)),
          a(std::move(a_in)),
          b(std::move(b_in)),
          scratch(scratch_tiles),
          builder(geometry, scratch),
          acc(sched->spec.m * sched->spec.n, 0) {}
  };

  /// One in-flight v5 SubmitJobBatch: entries settle independently
  /// (admission errors inline, completions as they land, deferred
  /// sheds at their deadline) and the single JobBatchResult reply goes
  /// out when the last entry has settled.
  struct BatchState {
    std::uint64_t conn_id = 0;
    std::uint16_t version = kProtocolVersion;
    std::uint64_t trace_id = 0;
    std::chrono::steady_clock::time_point admitted;
    JobBatchResultMsg result;   ///< tag + entries, filled as they settle
    std::size_t remaining = 0;  ///< unsettled entries
  };

  struct PendingJob {
    std::uint64_t conn_id = 0;
    std::uint32_t tag = 0;
    std::future<rt::JobResult> result;
    std::uint64_t trace_id = 0;
    std::string job_name;        ///< for the flight recorder
    std::uint16_t version = kProtocolVersion;  ///< reply frame version
    std::chrono::steady_clock::time_point admitted;  ///< e2e epoch
    /// Set for DFG jobs: the raw fleet outputs are de-laced through the
    /// compiled program's output metadata before the reply is encoded.
    std::shared_ptr<const svc::CompiledDfg> dfg;
    std::size_t dfg_samples = 0;
    bool dfg_cache_hit = false;
    /// Set for tile jobs of a v4 GEMM: the completion folds into the
    /// state's accumulator instead of answering the client directly.
    std::shared_ptr<GemmState> gemm;
    tile::TileStep gemm_step{};
    /// Set for entries of a v5 batch: the completion settles one entry
    /// of the batch result instead of answering directly.
    std::shared_ptr<BatchState> batch;
    std::size_t batch_index = 0;
  };

  /// A job parked between the admission watermarks: the shard retries
  /// it on every tick/wake and sheds Busy past its deadline.
  struct DeferredJob {
    std::uint64_t conn_id = 0;
    std::uint32_t tag = 0;
    rt::Job job;
    std::uint64_t trace_id = 0;
    std::string job_name;
    std::uint16_t version = kProtocolVersion;
    std::chrono::steady_clock::time_point admitted;  ///< receive stamp
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<const svc::CompiledDfg> dfg;
    std::size_t dfg_samples = 0;
    bool dfg_cache_hit = false;
    std::shared_ptr<BatchState> batch;
    std::size_t batch_index = 0;
  };

  /// One event-loop shard: its own poll loop, connections, in-flight
  /// state, wake pipe and telemetry slice.  Only the inbox (fd handoff
  /// from the acceptor) and the latency registry are ever touched by
  /// another thread, each behind its own mutex.
  struct Shard {
    std::size_t index = 0;
    int wake_r = -1;
    int wake_w = -1;

    std::deque<Conn> conns;
    std::vector<PendingJob> pending;
    std::vector<std::shared_ptr<GemmState>> gemms;
    std::deque<DeferredJob> deferred;

    /// Accepted fds handed off by shard 0; adopted at the loop top.
    std::mutex inbox_mu;
    std::vector<int> inbox;

    // Per-shard counters (net.shard.<i>.*), read lock-free by
    // metrics().
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> jobs_submitted{0};
    std::atomic<std::uint64_t> connections{0};

    /// Shard-local net.latency.* histograms; Server::metrics() merges
    /// every shard's registry via Registry::merge_from.
    mutable std::mutex lat_mu;
    obs::Registry latency;
  };

  enum class FleetSubmit : std::uint8_t {
    kAccepted = 0,
    kQueueFull,
    kShutDown
  };

  void send_frame(Conn& conn, MsgType type,
                  std::span<const std::uint8_t> payload,
                  std::uint16_t version);
  void send_error(Conn& conn, std::uint32_t tag, ErrorCode code,
                  const std::string& message, std::uint16_t version,
                  std::uint32_t retry_after_ms = 0);
  void handle_frame(Shard& shard, Conn& conn, const Frame& frame);
  void handle_submit(Shard& shard, Conn& conn, const Frame& frame);
  void handle_submit_batch(Shard& shard, Conn& conn, const Frame& frame);
  void handle_submit_dfg(Shard& shard, Conn& conn, const Frame& frame);
  void handle_compile_dfg(Conn& conn, const Frame& frame);
  void handle_submit_gemm(Shard& shard, Conn& conn, const Frame& frame);
  /// Submit as many un-queued tile steps as the fleet will take (a
  /// full queue stops the pump; held steps retry on the next tick),
  /// then finalize every GEMM whose last tile has landed.  Never
  /// called while collect_completions() iterates pending.
  void pump_gemms(Shard& shard);
  void finalize_gemm(Shard& shard, GemmState& gemm);
  /// Watermark admission shared by every submit path: accept below
  /// low, defer between low and high, shed at or above high.  Batch
  /// entries settle into `batch` instead of answering directly.
  void admit_job(Shard& shard, Conn& conn, rt::Job job, std::uint32_t tag,
                 std::uint64_t trace_id, std::uint16_t version,
                 std::shared_ptr<const svc::CompiledDfg> dfg,
                 std::size_t dfg_samples, bool dfg_cache_hit,
                 std::shared_ptr<BatchState> batch,
                 std::size_t batch_index);
  /// Low-level fleet submit: on kAccepted registers `meta` (with its
  /// future) in shard.pending and bumps the counters.
  FleetSubmit submit_pending(Shard& shard, Conn* conn, rt::Job job,
                             PendingJob meta);
  /// Busy-shed one job: Error{kBusy, retry_after_ms} to the peer, or
  /// the equivalent settled batch entry.
  void shed_job(Shard& shard, Conn* conn, std::uint32_t tag,
                std::uint16_t version,
                const std::shared_ptr<BatchState>& batch,
                std::size_t batch_index);
  /// Retry deferred jobs (immediately when the depth fell below low or
  /// the deadline/drain forces the attempt), shedding Busy on a still
  /// full queue past the deadline.
  void pump_deferred(Shard& shard);
  /// Record one settled batch entry; sends the JobBatchResult when the
  /// last entry lands.
  void settle_batch_entry(Shard& shard,
                          const std::shared_ptr<BatchState>& batch,
                          std::size_t index, JobBatchEntryMsg entry);
  void finalize_batch(Shard& shard, BatchState& batch);
  /// Fold one finished job into the shard's latency histograms + the
  /// server-wide flight recorder.
  void record_completion(Shard& shard, const PendingJob& pending,
                         const rt::JobResult& result,
                         std::uint64_t serialize_us,
                         std::chrono::steady_clock::time_point done);
  void maybe_sample(std::chrono::steady_clock::time_point now);
  /// Parse conn.in, dispatching every complete frame up to the
  /// pipeline window.  A connection that must close is flagged via
  /// conn.closing (it still needs its output flushed first).
  void drain_input(Shard& shard, Conn& conn);
  /// Accept pending connections (shard 0 only) and distribute them
  /// round-robin across every shard.
  void accept_ready(Shard& shard0);
  /// Adopt fds the acceptor handed to this shard.
  void adopt_inbox(Shard& shard);
  void collect_completions(Shard& shard);
  void close_conn(Conn& conn);
  Conn* find_conn(Shard& shard, std::uint64_t id);
  /// The per-shard event loop; shard 0 additionally accepts + samples.
  void shard_loop(Shard& shard);

  ServerConfig config_;
  std::unique_ptr<rt::Runtime> runtime_;
  svc::CompileService compile_;  ///< internally locked; shards share it
  tile::PlanCache plan_cache_;   ///< internally locked; shards share it
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> drain_requested_{false};
  bool ran_ = false;
  bool signal_handlers_installed_ = false;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t next_shard_rr_ = 0;  ///< acceptor (shard 0) thread only
  std::atomic<std::uint64_t> next_conn_id_{1};
  std::atomic<std::size_t> active_conns_{0};
  std::size_t admission_low_ = 0;   ///< resolved from config in ctor
  std::size_t admission_high_ = 0;

  struct NetCounters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_closed{0};
    std::atomic<std::uint64_t> connections_rejected{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> rejects_busy{0};
    std::atomic<std::uint64_t> rejects_shutdown{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> timeouts{0};
    std::atomic<std::uint64_t> jobs_submitted{0};
    std::atomic<std::uint64_t> jobs_completed{0};
    std::atomic<std::uint64_t> jobs_failed{0};
    std::atomic<std::uint64_t> drains{0};
    // Watermark admission (net.admission.*): accepted/shed are final
    // outcomes (every job-class admission ends in exactly one of
    // them); delayed counts parkings, which later resolve into one of
    // the two.  Sheds also count in rejects_busy, which remains the
    // what-the-client-saw counter.
    std::atomic<std::uint64_t> admission_accepted{0};
    std::atomic<std::uint64_t> admission_delayed{0};
    std::atomic<std::uint64_t> admission_shed{0};
    // v5 batched submits.
    std::atomic<std::uint64_t> batch_requests{0};
    std::atomic<std::uint64_t> batch_jobs{0};
    // v4 tiled-GEMM aggregates, folded in at admission / finalize so
    // `sras stats` sees the scratchpad behaviour across all requests.
    std::atomic<std::uint64_t> gemm_requests{0};
    std::atomic<std::uint64_t> gemm_tile_jobs{0};
    std::atomic<std::uint64_t> gemm_scratch_hits{0};
    std::atomic<std::uint64_t> gemm_scratch_refills{0};
    std::atomic<std::uint64_t> gemm_bytes_filled{0};
    std::atomic<std::uint64_t> gemm_bytes_saved{0};
  };
  NetCounters counters_;

  // Server-wide telemetry.  Shard threads write per completion /
  // sample tick (never per byte), metrics()/stats_snapshot() read from
  // any thread — everything behind one mutex.  Per-shard latency
  // histograms live in the shards, behind their own lat_mu.
  mutable std::mutex telemetry_mu_;
  obs::Sampler sampler_;
  obs::FlightRecorder recorder_;
  std::chrono::steady_clock::time_point start_time_;
  std::chrono::steady_clock::time_point last_sample_;  ///< shard-0 only
};

}  // namespace sring::net
