// Poll-based job server: the rt runtime exposed as a network service.
//
// One thread runs the whole network side — a poll() loop over the
// listening socket, a self-wake pipe and every client connection —
// while the owned rt::Runtime's worker fleet executes jobs.  The
// design invariants:
//
//  * The accept loop never blocks on the fleet.  SubmitJob frames go
//    through Runtime::try_submit; a full queue answers Error{kBusy}
//    immediately (bounded backpressure, load is shed at admission
//    exactly like the JobQueue sheds it in-process).
//  * Job completions wake the loop through the pipe (workers call the
//    envelope's notify hook), so response latency is not quantized by
//    the poll timeout.
//  * Malformed bytes (bad magic/version, oversized frame, CRC
//    mismatch, garbage) answer Error{kBadRequest} and close that one
//    connection; the server itself never crashes or hangs on them.
//  * Drain — via a Drain frame, request_drain() or SIGTERM when
//    enable_signal_drain() was called — stops accepting connections
//    and jobs, lets in-flight jobs finish, flushes every response,
//    then returns from run().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "rt/runtime.hpp"
#include "svc/compile_service.hpp"
#include "tile/gemm_runner.hpp"

namespace sring::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()

  rt::RuntimeConfig runtime;  ///< worker fleet behind the socket

  std::size_t max_connections = 64;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// DFG compile service shape (cache capacity, validation depth).
  svc::CompileServiceConfig compile;

  /// Idle cutoff for a connection with no pending jobs; activity on
  /// the socket or a job completion resets it.  Also applies to
  /// closing connections still waiting for their output to flush, so
  /// a peer that never reads cannot pin a connection forever.
  std::chrono::milliseconds idle_timeout{30000};

  /// Upper bound on the final flush phase of a drain: once every
  /// accepted job is answered, connections that have not drained
  /// their output within this window are force-closed so run() always
  /// returns (a peer that stops reading must not block SIGTERM).
  std::chrono::milliseconds drain_flush_timeout{5000};

  // --- live telemetry (all off-hot-path; see docs/OBSERVABILITY.md) ---

  /// Rolling-sampler period; the poll loop ticks at least this often.
  std::chrono::milliseconds sample_interval{1000};
  std::size_t sampler_capacity = 128;  ///< delta points kept

  /// Flight recorder: last-N completions ring, pinned slow/error ring,
  /// and the e2e threshold past which a job counts as slow.
  std::size_t flight_recent = 64;
  std::size_t flight_captured = 64;
  std::uint64_t slow_threshold_us = 100'000;

  /// When set, the captured flight records are dumped as JSONL to this
  /// path as run() returns (covers Drain, SIGTERM and shutdown).
  std::string flight_dump_path;
};

class Server {
 public:
  /// Binds and listens immediately (so port() is valid before run()),
  /// and starts the runtime fleet.  Throws NetError on bind failure.
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (resolves an ephemeral request).
  std::uint16_t port() const noexcept { return port_; }

  /// Serve until drained.  Returns once every accepted job has been
  /// answered and every response flushed.
  void run();

  /// Thread- and signal-safe drain request; run() winds down.
  void request_drain() noexcept;

  /// Route SIGTERM/SIGINT to request_drain() of this server (one
  /// server per process; `sras serve` uses it).  The destructor
  /// restores the previous handlers before the server goes away, so a
  /// late signal can never reach a destroyed instance.  Signals are
  /// assumed to be delivered on the threads of this process only; no
  /// other thread may concurrently install SIGTERM/SIGINT handlers.
  void enable_signal_drain();

  /// net.* counters plus the fleet's rt.* metrics and the server-side
  /// net.latency.* histograms, callable from any thread while run()
  /// is live.
  obs::Registry metrics() const;

  /// The live stats snapshot a GetStats frame polls, also callable
  /// in-process (bench_serve uses it).  Thread-safe.
  StatsReplyMsg stats_snapshot(std::uint32_t flags) const;

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;  ///< never reused, unlike fds
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    std::size_t out_pos = 0;
    std::size_t pending_jobs = 0;
    bool closing = false;  ///< close once out drains
    std::chrono::steady_clock::time_point last_activity;
    /// Version of the last frame this peer sent; every reply mirrors
    /// it so v1 clients keep parsing a v2 server's frames.
    std::uint16_t version = kProtocolVersion;
  };

  /// One in-flight tiled GEMM (v4): the server-side analogue of
  /// tile::run_gemm, unrolled into the poll loop so the tile jobs of
  /// many clients interleave on the fleet.  Tile completions fold into
  /// `acc` in whatever order they land (wrapping adds are
  /// order-independent — see tile/gemm_ref.hpp), and the single
  /// JobResult reply goes out once the last tile has been folded.
  struct GemmState {
    std::uint64_t conn_id = 0;
    std::uint32_t tag = 0;
    std::uint16_t version = kProtocolVersion;
    std::uint64_t trace_id = 0;
    std::chrono::steady_clock::time_point admitted;  ///< e2e epoch

    tile::TileSchedule sched;
    std::vector<Word> a, b;
    tile::Scratchpad scratch;
    tile::GemmJobBuilder builder;  ///< holds a reference to `scratch`
    std::vector<Word> acc;         ///< m*n wrapping accumulator grid

    std::size_t next_step = 0;    ///< first un-submitted schedule step
    std::size_t outstanding = 0;  ///< tile jobs currently in pending_
    std::uint64_t sim_cycles = 0;
    std::uint32_t last_worker = 0;
    bool any_reused = false;
    bool failed = false;
    std::string error;  ///< first tile failure, verbatim

    GemmState(const RingGeometry& geometry, tile::TileSchedule schedule,
              std::vector<Word> a_in, std::vector<Word> b_in,
              std::size_t scratch_tiles)
        : sched(std::move(schedule)),
          a(std::move(a_in)),
          b(std::move(b_in)),
          scratch(scratch_tiles),
          builder(geometry, scratch),
          acc(sched.spec.m * sched.spec.n, 0) {}
  };

  struct PendingJob {
    std::uint64_t conn_id = 0;
    std::uint32_t tag = 0;
    std::future<rt::JobResult> result;
    std::uint64_t trace_id = 0;
    std::string job_name;        ///< for the flight recorder
    std::uint16_t version = kProtocolVersion;  ///< reply frame version
    std::chrono::steady_clock::time_point admitted;  ///< e2e epoch
    /// Set for DFG jobs: the raw fleet outputs are de-laced through the
    /// compiled program's output metadata before the reply is encoded.
    std::shared_ptr<const svc::CompiledDfg> dfg;
    std::size_t dfg_samples = 0;
    bool dfg_cache_hit = false;
    /// Set for tile jobs of a v4 GEMM: the completion folds into the
    /// state's accumulator instead of answering the client directly.
    std::shared_ptr<GemmState> gemm;
    tile::TileStep gemm_step{};
  };

  void send_frame(Conn& conn, MsgType type,
                  std::span<const std::uint8_t> payload);
  void send_error(Conn& conn, std::uint32_t tag, ErrorCode code,
                  const std::string& message);
  void handle_frame(Conn& conn, const Frame& frame);
  void handle_submit(Conn& conn, const Frame& frame);
  void handle_submit_dfg(Conn& conn, const Frame& frame);
  void handle_compile_dfg(Conn& conn, const Frame& frame);
  void handle_submit_gemm(Conn& conn, const Frame& frame);
  /// Submit as many un-queued tile steps as the fleet will take (a
  /// full queue stops the pump; held steps retry on the next poll
  /// tick), then finalize every GEMM whose last tile has landed.
  /// Never called while collect_completions() iterates pending_.
  void pump_gemms();
  void finalize_gemm(GemmState& gemm);
  /// Shared admission tail of both submit paths: stamp the e2e epoch,
  /// try_submit to the fleet, answer Busy/ShuttingDown, or register the
  /// PendingJob.  For DFG jobs `dfg`/`dfg_samples`/`dfg_cache_hit`
  /// carry the de-lacing context; admission is stamped AFTER the
  /// compile phase, so compile latency never enters the job's span
  /// timeline.
  void admit_job(Conn& conn, rt::Job job, std::uint32_t tag,
                 std::uint64_t trace_id, std::uint16_t version,
                 std::shared_ptr<const svc::CompiledDfg> dfg,
                 std::size_t dfg_samples, bool dfg_cache_hit);
  /// Fold one finished job into the latency histograms + recorder.
  void record_completion(const PendingJob& pending,
                         const rt::JobResult& result,
                         std::uint64_t serialize_us,
                         std::chrono::steady_clock::time_point done);
  void maybe_sample(std::chrono::steady_clock::time_point now);
  /// Parse conn.in, dispatching every complete frame.  A connection
  /// that must close is flagged via conn.closing (it still needs its
  /// output flushed first).
  void drain_input(Conn& conn);
  void accept_ready();
  void collect_completions();
  void close_conn(Conn& conn);
  Conn* find_conn(std::uint64_t id);

  ServerConfig config_;
  std::unique_ptr<rt::Runtime> runtime_;
  svc::CompileService compile_;  ///< poll-thread compile + cache
  int listen_fd_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> drain_requested_{false};
  bool ran_ = false;
  bool signal_handlers_installed_ = false;

  std::deque<Conn> conns_;
  std::vector<PendingJob> pending_;
  std::vector<std::shared_ptr<GemmState>> gemms_;
  std::uint64_t next_conn_id_ = 1;

  struct NetCounters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_closed{0};
    std::atomic<std::uint64_t> connections_rejected{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> rejects_busy{0};
    std::atomic<std::uint64_t> rejects_shutdown{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> timeouts{0};
    std::atomic<std::uint64_t> jobs_submitted{0};
    std::atomic<std::uint64_t> jobs_completed{0};
    std::atomic<std::uint64_t> jobs_failed{0};
    std::atomic<std::uint64_t> drains{0};
    // v4 tiled-GEMM aggregates, folded in at admission / finalize so
    // `sras stats` sees the scratchpad behaviour across all requests.
    std::atomic<std::uint64_t> gemm_requests{0};
    std::atomic<std::uint64_t> gemm_tile_jobs{0};
    std::atomic<std::uint64_t> gemm_scratch_hits{0};
    std::atomic<std::uint64_t> gemm_scratch_refills{0};
    std::atomic<std::uint64_t> gemm_bytes_filled{0};
    std::atomic<std::uint64_t> gemm_bytes_saved{0};
  };
  NetCounters counters_;

  // Telemetry state.  The poll thread writes, metrics()/
  // stats_snapshot() read from any thread — everything behind one
  // mutex taken per job completion / sample tick, never per byte.
  mutable std::mutex telemetry_mu_;
  obs::Registry latency_;  ///< net.latency.* histograms
  obs::Sampler sampler_;
  obs::FlightRecorder recorder_;
  std::chrono::steady_clock::time_point start_time_;
  std::chrono::steady_clock::time_point last_sample_;
};

}  // namespace sring::net
