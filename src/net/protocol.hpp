// Wire protocol of the remote job-serving subsystem.
//
// The paper deploys the Systolic Ring as an IP core a host hands work
// to; `src/net/` extends that host/core split across a socket.  The
// protocol is a versioned, length-prefixed binary framing with a CRC
// trailer — the software analogue of the paper's host-interface FIFO
// discipline: every transfer is a self-delimiting block the receiver
// can validate before acting on it.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//        0     4  magic "SRNG"
//        4     2  protocol version (kProtocolVersion)
//        6     2  message type (MsgType)
//        8     4  payload length in bytes
//       12   len  payload
//   12+len     4  CRC-32 (IEEE) over the payload bytes
//
// A peer that receives a frame with a bad magic, unknown version,
// oversized length or CRC mismatch must answer with an Error frame and
// close — never crash, never hang.  Payload encodings are documented
// per message in docs/SERVING.md and exercised byte-for-byte by
// tests/test_net_protocol.cpp.
//
// Version negotiation: the version field is per-frame.  A server
// accepts any version in [kMinProtocolVersion, kProtocolVersion] and
// answers every request in the version the request arrived in, so a
// v1 client keeps round-tripping jobs bit-identically against a v2
// server — it simply never sees the v2 payload tails (trace_id, span
// durations) or the v2-only GetStats/StatsReply messages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/image.hpp"
#include "common/types.hpp"
#include "core/config_memory.hpp"
#include "obs/flight_recorder.hpp"
#include "rt/job.hpp"
#include "tile/gemm_ref.hpp"

namespace sring::net {

/// Transport/framing failure (timeout, disconnect, refused connect).
class NetError : public SimError {
 public:
  explicit NetError(const std::string& what) : SimError(what) {}
};

/// Malformed frame or payload — the bytes themselves are wrong.
class ProtocolError : public NetError {
 public:
  explicit ProtocolError(const std::string& what) : NetError(what) {}
};

inline constexpr std::uint8_t kMagic[4] = {'S', 'R', 'N', 'G'};
/// Newest protocol this build speaks.  v2 added trace_id on
/// SubmitJob/JobResult, span durations on JobResult, and
/// GetStats/StatsReply.  v3 added the DFG compile service messages
/// (SubmitDfg/DfgCompiled/SubmitDfgJob).  v4 added the tiled-GEMM
/// message (SubmitGemm), answered with the existing JobResult.  v5
/// added the batched-submit pair (SubmitJobBatch/JobBatchResult) and a
/// retry_after_ms tail on Error.  Each version leaves every older
/// payload byte layout untouched.
inline constexpr std::uint16_t kProtocolVersion = 5;
/// Oldest protocol still accepted (v1 clients round-trip unchanged).
inline constexpr std::uint16_t kMinProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 12;
inline constexpr std::size_t kTrailerBytes = 4;

/// Default cap on payload size; both peers enforce it before buffering.
inline constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;

/// Server-side cap on the motion-estimation search range.  The
/// displacement set grows as (2*range+1)^2, so an unchecked u16 range
/// in a tiny frame could demand O(range^2) memory before the job ever
/// reaches the queue; requests above the cap answer Error{kBadRequest}.
inline constexpr std::uint16_t kMaxMotionRange = 64;

enum class MsgType : std::uint16_t {
  kPing = 1,           ///< u64 token; server echoes it back as Pong
  kPong = 2,
  kServerInfoReq = 3,  ///< empty payload
  kServerInfo = 4,
  kSubmitJob = 5,      ///< JobRequest
  kJobResult = 6,      ///< successful job: outputs + counters
  kError = 7,          ///< typed failure, SimError text verbatim
  kDrain = 8,          ///< graceful-shutdown request
  kDrainAck = 9,
  kGetStats = 10,      ///< v2: u32 flags (kStatsIncludeFlight)
  kStatsReply = 11,    ///< v2: StatsReplyMsg
  kSubmitDfg = 12,     ///< v3: SubmitDfgMsg — compile + cache only
  kDfgCompiled = 13,   ///< v3: DfgCompiledMsg
  kSubmitDfgJob = 14,  ///< v3: SubmitDfgJobMsg — compile + execute
  kSubmitGemm = 15,    ///< v4: SubmitGemmMsg — tiled narrow-int GEMM
  kSubmitJobBatch = 16,  ///< v5: SubmitJobBatchMsg — many jobs, one frame
  kJobBatchResult = 17,  ///< v5: JobBatchResultMsg — per-entry outcomes
};

/// GetStats flag: also ship the flight recorder's captured ring.
inline constexpr std::uint32_t kStatsIncludeFlight = 1;

enum class ErrorCode : std::uint16_t {
  kBadRequest = 1,    ///< malformed frame/payload; connection closes
  kBusy = 2,          ///< job queue full — resubmit later
  kShuttingDown = 3,  ///< server is draining; no new jobs
  kJobFailed = 4,     ///< job ran and raised a SimError (text verbatim)
  kInternal = 5,
};

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) — the frame
/// trailer.  crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(std::span<const std::uint8_t> data);

// ---------------------------------------------------------------------------
// Typed messages

/// Kernel selector of a SubmitJob — one id per descriptor in
/// kernels/jobs.hpp.
enum class KernelId : std::uint16_t {
  kFir = 1,               ///< spatial systolic FIR
  kMotionEstimation = 2,  ///< full-search block motion estimation
  kDwt53 = 3,             ///< forward 1-D 5/3 wavelet
  kMatvec8 = 4,           ///< block 8x8 matrix-vector product
};

/// What a SubmitJob frame carries: everything the server needs to
/// rebuild the rt::Job via the kernels/jobs descriptors — kernel id,
/// ring geometry, kernel parameters and the input payload.  Programs
/// are never shipped over the wire; the server synthesizes them, so a
/// client cannot submit arbitrary configware.
struct JobRequest {
  KernelId kernel = KernelId::kFir;
  RingGeometry geometry{8, 2, 16};
  std::uint32_t tag = 0;  ///< echoed in the response for pipelining

  std::vector<Word> input;  ///< fir/dwt signal or matvec x; unused for me

  // kFir
  std::vector<Word> fir_coeffs;

  // kMotionEstimation
  Image me_ref;
  Image me_cand;
  std::uint16_t me_rx = 0;
  std::uint16_t me_ry = 0;
  std::uint16_t me_range = 0;

  // kMatvec8: 64 row-major matrix words
  std::vector<Word> matvec_m;

  /// v2+: correlation id carried through to JobResult and the server's
  /// flight recorder.  Absent from v1 frames (decodes as 0).
  std::uint64_t trace_id = 0;

  bool operator==(const JobRequest&) const = default;
};

/// What a JobResult frame carries back: the bit-exact output words plus
/// the per-job observability slice (sim cycle count and selected
/// counters from the run's SystemStats) and execution provenance.
struct JobResultMsg {
  std::uint32_t tag = 0;
  std::vector<Word> outputs;
  std::uint64_t sim_cycles = 0;
  std::uint32_t worker = 0;
  std::uint8_t reused_system = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  // v2+ tail: the request's trace_id plus the job's span durations
  // (saturated to u32 microseconds).  All zero when decoded from v1.
  std::uint64_t trace_id = 0;
  std::uint32_t queue_wait_us = 0;
  std::uint32_t execute_us = 0;
  std::uint32_t total_us = 0;

  bool operator==(const JobResultMsg&) const = default;
};

struct ErrorMsg {
  std::uint32_t tag = 0;  ///< matching SubmitJob tag; 0 if none
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  /// v5+ tail: on kBusy sheds, how long the admission controller
  /// suggests waiting before a resubmit (0 = no hint).  Absent from
  /// pre-v5 frames (decodes as 0) — the v1–v4 byte layout is untouched.
  std::uint32_t retry_after_ms = 0;

  bool operator==(const ErrorMsg&) const = default;
};

struct ServerInfoMsg {
  std::uint16_t protocol_version = kProtocolVersion;
  std::uint32_t workers = 0;
  std::uint32_t queue_capacity = 0;
  std::uint32_t max_frame_bytes = 0;
  std::uint64_t jobs_completed = 0;
  std::string server;

  bool operator==(const ServerInfoMsg&) const = default;
};

/// One histogram's latency summary inside a StatsReply: quantiles are
/// interpolated server-side from the live histogram buckets
/// (obs::histogram_quantile), so the snapshot ships fixed-size.
struct StatsQuantileMsg {
  std::string name;
  std::uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t max_us = 0;

  bool operator==(const StatsQuantileMsg&) const = default;
};

/// One sampler-derived rate (jobs/s, bytes/s, ...).
struct StatsRateMsg {
  std::string name;
  double per_sec = 0.0;

  bool operator==(const StatsRateMsg&) const = default;
};

/// The consistent snapshot a GetStats polls from a live server: built
/// in one pass on the server's poll thread, so counters, quantiles
/// and rates all describe the same instant.
struct StatsReplyMsg {
  std::uint16_t stats_version = 1;  ///< payload schema, not protocol
  std::uint64_t uptime_us = 0;
  std::uint32_t workers = 0;
  std::uint32_t queue_depth = 0;
  std::uint32_t queue_capacity = 0;
  /// Fraction of wall time the worker fleet spent on jobs since
  /// start (rt.busy_us / (uptime * workers)); 0 with telemetry off.
  double worker_utilization = 0.0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<StatsQuantileMsg> latencies;
  std::vector<StatsRateMsg> rates;
  /// Captured flight-recorder ring; only with kStatsIncludeFlight.
  std::vector<obs::SpanRecord> flight;

  bool operator==(const StatsReplyMsg&) const = default;

  /// JSON object mirroring the wire fields (`sras stats --jsonl`).
  obs::JsonValue to_json() const;
};

// ---------------------------------------------------------------------------
// DFG compile-service messages (v3).  The graph travels as the
// canonical svc/dfg_codec blob — the server hashes the bytes for its
// compiled-program cache, so identical graphs always hit.

/// Cap on the input streams of one SubmitDfgJob, checked before any
/// stream is buffered (layer-0 lanes bound real inputs far lower).
inline constexpr std::size_t kMaxDfgJobStreams = 256;

/// Compile (or cache-hit) a DFG for a geometry without running it.
struct SubmitDfgMsg {
  std::uint32_t tag = 0;
  RingGeometry geometry{8, 2, 16};
  std::vector<std::uint8_t> dfg;  ///< canonical dfg_codec blob
  std::uint64_t trace_id = 0;

  bool operator==(const SubmitDfgMsg&) const = default;
};

/// One mapped output's wire metadata (name + de-lacing coordinates).
struct DfgOutputMetaMsg {
  std::string name;
  std::uint16_t latency = 0;
  std::uint16_t push_rank = 0;

  bool operator==(const DfgOutputMetaMsg&) const = default;
};

/// The compile service's answer: content hash, cache outcome and the
/// mapped program's shape — everything a client needs to size inputs
/// and interpret a later job's streams.
struct DfgCompiledMsg {
  std::uint32_t tag = 0;
  std::uint64_t dfg_hash = 0;
  std::uint8_t cache_hit = 0;
  std::uint32_t compile_us = 0;  ///< 0 on cache hits (no compile ran)
  std::uint16_t dnodes_used = 0;
  std::uint16_t max_latency = 0;
  std::uint16_t pushes_per_cycle = 0;
  std::uint16_t input_count = 0;
  std::vector<DfgOutputMetaMsg> outputs;

  bool operator==(const DfgCompiledMsg&) const = default;
};

/// Compile (or cache-hit) a DFG and run it over the given input
/// streams (one per DFG input, equal lengths).  Answered with the
/// existing JobResult message whose outputs are the de-laced output
/// streams concatenated in Dfg output order; the counters slice gains
/// svc.dfg.outputs / svc.dfg.samples / svc.dfg.cache_hit / svc.dfg.hash
/// so the client can split the flat words back into streams.
struct SubmitDfgJobMsg {
  std::uint32_t tag = 0;
  RingGeometry geometry{8, 2, 16};
  std::vector<std::uint8_t> dfg;  ///< canonical dfg_codec blob
  std::vector<std::vector<Word>> streams;
  std::uint64_t trace_id = 0;

  bool operator==(const SubmitDfgJobMsg&) const = default;
};

// ---------------------------------------------------------------------------
// Tiled-GEMM message (v4).  The server plans the tile schedule itself
// (src/tile/), stages operand tiles through a per-request scratchpad
// and interleaves the tile jobs with every other client's work; the
// answer is the existing JobResult whose outputs are the row-major
// narrowed C matrix and whose counters slice carries the tile.scratch
// behaviour.

/// Cap on each GEMM dimension (m, k, n, tile_n).  A u16 dimension in a
/// tiny frame could otherwise demand O(m*n) accumulator memory far
/// beyond what its operands justify; requests above the cap answer
/// Error{kBadRequest}.
inline constexpr std::size_t kMaxGemmDim = 512;

/// Cap on the per-request scratchpad size a client may ask for.
inline constexpr std::uint32_t kMaxGemmScratchTiles = 4096;

/// Run C = narrow((A x B) >> shift) tiled over the fleet.  Operand
/// sizes are pinned to the spec (a: m*k, b: k*n words, sign-extended
/// narrow ints); the decode rejects any mismatch.
struct SubmitGemmMsg {
  std::uint32_t tag = 0;
  RingGeometry geometry{8, 2, 16};
  tile::GemmSpec spec;
  std::uint32_t scratch_tiles = 128;  ///< server scratchpad, in tiles
  std::vector<Word> a;
  std::vector<Word> b;
  std::uint64_t trace_id = 0;

  bool operator==(const SubmitGemmMsg&) const = default;
};

// ---------------------------------------------------------------------------
// Batched submit (v5).  One frame carries a whole batch of JobRequests
// as nested length-prefixed blobs (each the exact encode_job_request
// bytes for the frame's version), and one JobBatchResult frame carries
// every outcome — a full JobResultMsg or a per-entry ErrorMsg, in
// request order.  Admission is per entry: a full queue or a shedding
// watermark costs single entries, never the whole batch.

/// Cap on the jobs of one SubmitJobBatch, checked before any entry is
/// decoded (mirrors kMaxDfgJobStreams).
inline constexpr std::size_t kMaxBatchJobs = 256;

/// Submit `jobs.size()` kernel jobs in one round trip.  Entry tags are
/// the per-job correlation ids inside the batch result; `tag` names
/// the batch itself.
struct SubmitJobBatchMsg {
  std::uint32_t tag = 0;
  std::vector<JobRequest> jobs;
  std::uint64_t trace_id = 0;

  bool operator==(const SubmitJobBatchMsg&) const = default;
};

/// One entry of a JobBatchResult: either the job's full JobResultMsg
/// or the ErrorMsg that felled it (per-entry busy/failed/bad-request).
struct JobBatchEntryMsg {
  std::uint8_t ok = 0;
  JobResultMsg result;  ///< valid when ok == 1
  ErrorMsg error;       ///< valid when ok == 0

  bool operator==(const JobBatchEntryMsg&) const = default;
};

/// The batch answer: entries in the exact order of the request's jobs.
struct JobBatchResultMsg {
  std::uint32_t tag = 0;
  std::vector<JobBatchEntryMsg> entries;

  bool operator==(const JobBatchResultMsg&) const = default;
};

// ---------------------------------------------------------------------------
// Framing

struct Frame {
  MsgType type = MsgType::kPing;
  std::uint16_t version = kProtocolVersion;  ///< as parsed off the wire
  std::vector<std::uint8_t> payload;
};

/// Append one complete frame (header + payload + CRC) to `out`.
/// `version` is what goes in the header — a server answering a v1
/// client passes 1 so the old parser accepts the reply.
void append_frame(std::vector<std::uint8_t>& out, MsgType type,
                  std::span<const std::uint8_t> payload,
                  std::uint16_t version = kProtocolVersion);

enum class ParseStatus : std::uint8_t {
  kNeedMore = 0,  ///< buffer holds a frame prefix; read more bytes
  kFrame,         ///< `frame` filled, `consumed` bytes eaten
  kBadMagic,
  kBadVersion,
  kTooLarge,  ///< declared payload length exceeds `max_frame_bytes`
  kBadCrc,
};

/// Incremental frame parser over an accumulation buffer.  Never throws;
/// malformed input comes back as a typed status so the caller can send
/// an Error frame and close.  On kFrame, `consumed` is the number of
/// buffer bytes to discard.
ParseStatus try_parse_frame(std::span<const std::uint8_t> buffer,
                            std::size_t max_frame_bytes, Frame& frame,
                            std::size_t& consumed);

// ---------------------------------------------------------------------------
// Payload codecs (throw ProtocolError on malformed bytes).  The
// SubmitJob/JobResult payloads are versioned: v2 appends a telemetry
// tail after the v1 fields, so both codecs take the frame version.

std::vector<std::uint8_t> encode_job_request(
    const JobRequest& req, std::uint16_t version = kProtocolVersion);
JobRequest decode_job_request(std::span<const std::uint8_t> payload,
                              std::uint16_t version = kProtocolVersion);

std::vector<std::uint8_t> encode_job_result(
    const JobResultMsg& msg, std::uint16_t version = kProtocolVersion);
JobResultMsg decode_job_result(std::span<const std::uint8_t> payload,
                               std::uint16_t version = kProtocolVersion);

std::vector<std::uint8_t> encode_get_stats(std::uint32_t flags);
std::uint32_t decode_get_stats(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_stats_reply(const StatsReplyMsg& msg);
StatsReplyMsg decode_stats_reply(std::span<const std::uint8_t> payload);

// v3-only payloads (DFG compile service); the layouts are pinned by
// tests/test_net_protocol.cpp like every other message.
std::vector<std::uint8_t> encode_submit_dfg(const SubmitDfgMsg& msg);
SubmitDfgMsg decode_submit_dfg(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_dfg_compiled(const DfgCompiledMsg& msg);
DfgCompiledMsg decode_dfg_compiled(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_submit_dfg_job(const SubmitDfgJobMsg& msg);
SubmitDfgJobMsg decode_submit_dfg_job(std::span<const std::uint8_t> payload);

// v4-only payload (tiled GEMM).  decode validates the spec (dtype /
// mapping / shift ranges, dimension caps) and that the operand word
// counts match m*k and k*n.
std::vector<std::uint8_t> encode_submit_gemm(const SubmitGemmMsg& msg);
SubmitGemmMsg decode_submit_gemm(std::span<const std::uint8_t> payload);

// v5-only payloads (batched submit).  Entries nest the per-message
// codecs as length-prefixed blobs, so every per-version layout rule
// above carries over verbatim.
std::vector<std::uint8_t> encode_submit_job_batch(
    const SubmitJobBatchMsg& msg, std::uint16_t version = kProtocolVersion);
SubmitJobBatchMsg decode_submit_job_batch(
    std::span<const std::uint8_t> payload,
    std::uint16_t version = kProtocolVersion);

std::vector<std::uint8_t> encode_job_batch_result(
    const JobBatchResultMsg& msg, std::uint16_t version = kProtocolVersion);
JobBatchResultMsg decode_job_batch_result(
    std::span<const std::uint8_t> payload,
    std::uint16_t version = kProtocolVersion);

// The Error payload is versioned: v5 appends retry_after_ms after the
// v1 fields (older versions' bytes untouched).
std::vector<std::uint8_t> encode_error(
    const ErrorMsg& msg, std::uint16_t version = kProtocolVersion);
ErrorMsg decode_error(std::span<const std::uint8_t> payload,
                      std::uint16_t version = kProtocolVersion);

std::vector<std::uint8_t> encode_server_info(const ServerInfoMsg& msg);
ServerInfoMsg decode_server_info(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_ping(std::uint64_t token);
std::uint64_t decode_ping(std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------------------
// Job mapping

/// Rebuild the rt::Job a request describes via the kernels/jobs
/// descriptors.  Throws SimError on invalid parameters (bad geometry,
/// wrong matrix size, empty signal) — the server turns that into an
/// Error{kBadRequest} frame.
rt::Job to_rt_job(const JobRequest& req);

/// The observability slice shipped in a JobResultMsg: named counters
/// drawn from the job's SystemStats.
std::vector<std::pair<std::string, std::uint64_t>> result_counters(
    const rt::JobResult& result);

/// Assemble the response message for a successful job.
JobResultMsg make_job_result_msg(std::uint32_t tag,
                                 const rt::JobResult& result);

}  // namespace sring::net
