#include "net/protocol.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#include "kernels/jobs.hpp"

namespace sring::net {

namespace {

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), table-driven

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

// ---------------------------------------------------------------------------
// Little-endian payload writer / reader

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int s = 0; s < 32; s += 8) {
      out_.push_back(static_cast<std::uint8_t>(v >> s));
    }
  }
  void u64(std::uint64_t v) {
    for (int s = 0; s < 64; s += 8) {
      out_.push_back(static_cast<std::uint8_t>(v >> s));
    }
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void words(std::span<const Word> w) {
    u32(static_cast<std::uint32_t>(w.size()));
    for (const Word x : w) u16(x);
  }
  void bytes(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }

  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() {
    const auto b = take(2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }
  std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[static_cast<std::size_t>(i)];
    return v;
  }
  std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[static_cast<std::size_t>(i)];
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    const auto b = take(n);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }
  std::vector<Word> words() {
    const std::uint32_t n = u32();
    if (data_.size() - pos_ < std::size_t{n} * 2) {
      throw ProtocolError("net: word vector overruns payload");
    }
    std::vector<Word> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(u16());
    return out;
  }
  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    const auto b = take(n);
    return std::vector<std::uint8_t>(b.begin(), b.end());
  }

  /// Every decode_* must end exactly at the payload boundary; trailing
  /// bytes mean the peer and we disagree about the schema.
  void expect_end() const {
    if (pos_ != data_.size()) {
      throw ProtocolError("net: trailing bytes after payload");
    }
  }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (data_.size() - pos_ < n) {
      throw ProtocolError("net: payload truncated");
    }
    const auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

Image read_image(Reader& r) {
  const std::uint16_t w = r.u16();
  const std::uint16_t h = r.u16();
  const std::vector<Word> px = r.words();
  if (px.size() != std::size_t{w} * h) {
    throw ProtocolError("net: image pixel count does not match its size");
  }
  Image img(w, h);
  img.pixels() = px;
  return img;
}

void write_image(Writer& w, const Image& img) {
  w.u16(static_cast<std::uint16_t>(img.width()));
  w.u16(static_cast<std::uint16_t>(img.height()));
  w.words(img.pixels());
}

void put_u32_at(std::vector<std::uint8_t>& buf, std::size_t at,
                std::uint32_t v) {
  for (int s = 0; s < 32; s += 8) {
    buf[at++] = static_cast<std::uint8_t>(v >> s);
  }
}

std::uint32_t get_u32_at(std::span<const std::uint8_t> buf, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | buf[at + static_cast<std::size_t>(i)];
  }
  return v;
}

std::uint16_t get_u16_at(std::span<const std::uint8_t> buf, std::size_t at) {
  return static_cast<std::uint16_t>(buf[at] | (buf[at + 1] << 8));
}

/// Microsecond durations ride as u32 on the wire; anything past ~71
/// minutes pins at the max instead of wrapping.
std::uint32_t sat_u32(std::uint64_t v) {
  return v > UINT32_MAX ? UINT32_MAX : static_cast<std::uint32_t>(v);
}

void write_span_record(Writer& w, const obs::SpanRecord& rec) {
  w.u64(rec.trace_id);
  w.str(rec.name);
  w.u8(rec.ok ? 1 : 0);
  w.str(rec.error);
  w.u32(rec.worker);
  w.u64(rec.sim_cycles);
  w.u64(rec.plan_hits);
  w.u64(rec.superstep_cycles);
  w.u64(rec.start_offset_us);
  w.u32(rec.queue_wait_us);
  w.u32(rec.arm_us);
  w.u32(rec.execute_us);
  w.u32(rec.serialize_us);
  w.u32(rec.e2e_us);
  w.u8(rec.slow ? 1 : 0);
}

obs::SpanRecord read_span_record(Reader& r) {
  obs::SpanRecord rec;
  rec.trace_id = r.u64();
  rec.name = r.str();
  rec.ok = r.u8() != 0;
  rec.error = r.str();
  rec.worker = r.u32();
  rec.sim_cycles = r.u64();
  rec.plan_hits = r.u64();
  rec.superstep_cycles = r.u64();
  rec.start_offset_us = r.u64();
  rec.queue_wait_us = r.u32();
  rec.arm_us = r.u32();
  rec.execute_us = r.u32();
  rec.serialize_us = r.u32();
  rec.e2e_us = r.u32();
  rec.slow = r.u8() != 0;
  return rec;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void append_frame(std::vector<std::uint8_t>& out, MsgType type,
                  std::span<const std::uint8_t> payload,
                  std::uint16_t version) {
  // Grow geometrically even when asked for an exact fit: reserve(size+n)
  // per frame would otherwise reallocate-and-copy the whole accumulation
  // buffer on EVERY append, turning a response backlog quadratic.
  const std::size_t need =
      out.size() + kHeaderBytes + payload.size() + kTrailerBytes;
  if (out.capacity() < need) {
    out.reserve(std::max(need, out.capacity() * 2));
  }
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  out.push_back(static_cast<std::uint8_t>(version));
  out.push_back(static_cast<std::uint8_t>(version >> 8));
  const std::uint16_t t = static_cast<std::uint16_t>(type);
  out.push_back(static_cast<std::uint8_t>(t));
  out.push_back(static_cast<std::uint8_t>(t >> 8));
  const std::size_t len_at = out.size();
  out.resize(out.size() + 4);
  put_u32_at(out, len_at, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  const std::size_t crc_at = out.size();
  out.resize(out.size() + 4);
  put_u32_at(out, crc_at, crc32(payload));
}

ParseStatus try_parse_frame(std::span<const std::uint8_t> buffer,
                            std::size_t max_frame_bytes, Frame& frame,
                            std::size_t& consumed) {
  consumed = 0;
  // An empty span may have a null data(); memcmp on it is UB even with
  // length 0.
  if (buffer.empty()) return ParseStatus::kNeedMore;
  // Reject a wrong magic as soon as the first divergent byte arrives —
  // garbage on the socket should not sit unanswered until 12 bytes
  // accumulate.
  const std::size_t magic_check = std::min<std::size_t>(buffer.size(), 4);
  if (std::memcmp(buffer.data(), kMagic, magic_check) != 0) {
    return ParseStatus::kBadMagic;
  }
  if (buffer.size() < kHeaderBytes) return ParseStatus::kNeedMore;
  const std::uint16_t version = get_u16_at(buffer, 4);
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return ParseStatus::kBadVersion;
  }
  const std::uint32_t len = get_u32_at(buffer, 8);
  if (len > max_frame_bytes) return ParseStatus::kTooLarge;
  const std::size_t total = kHeaderBytes + len + kTrailerBytes;
  if (buffer.size() < total) return ParseStatus::kNeedMore;
  const auto payload = buffer.subspan(kHeaderBytes, len);
  if (crc32(payload) != get_u32_at(buffer, kHeaderBytes + len)) {
    return ParseStatus::kBadCrc;
  }
  frame.type = static_cast<MsgType>(get_u16_at(buffer, 6));
  frame.version = version;
  frame.payload.assign(payload.begin(), payload.end());
  consumed = total;
  return ParseStatus::kFrame;
}

std::vector<std::uint8_t> encode_job_request(const JobRequest& req,
                                             std::uint16_t version) {
  Writer w;
  w.u32(req.tag);
  w.u16(static_cast<std::uint16_t>(req.kernel));
  w.u16(static_cast<std::uint16_t>(req.geometry.layers));
  w.u16(static_cast<std::uint16_t>(req.geometry.lanes));
  w.u16(static_cast<std::uint16_t>(req.geometry.fb_depth));
  switch (req.kernel) {
    case KernelId::kFir:
      w.words(req.fir_coeffs);
      break;
    case KernelId::kMotionEstimation:
      write_image(w, req.me_ref);
      write_image(w, req.me_cand);
      w.u16(req.me_rx);
      w.u16(req.me_ry);
      w.u16(req.me_range);
      break;
    case KernelId::kDwt53:
      break;
    case KernelId::kMatvec8:
      w.words(req.matvec_m);
      break;
    default:
      throw ProtocolError("net: unknown kernel id in request");
  }
  w.words(req.input);
  if (version >= 2) w.u64(req.trace_id);
  return w.take();
}

JobRequest decode_job_request(std::span<const std::uint8_t> payload,
                              std::uint16_t version) {
  Reader r(payload);
  JobRequest req;
  req.tag = r.u32();
  req.kernel = static_cast<KernelId>(r.u16());
  req.geometry.layers = r.u16();
  req.geometry.lanes = r.u16();
  req.geometry.fb_depth = r.u16();
  switch (req.kernel) {
    case KernelId::kFir:
      req.fir_coeffs = r.words();
      break;
    case KernelId::kMotionEstimation:
      req.me_ref = read_image(r);
      req.me_cand = read_image(r);
      req.me_rx = r.u16();
      req.me_ry = r.u16();
      req.me_range = r.u16();
      break;
    case KernelId::kDwt53:
      break;
    case KernelId::kMatvec8:
      req.matvec_m = r.words();
      break;
    default:
      throw ProtocolError("net: unknown kernel id " +
                          std::to_string(static_cast<unsigned>(req.kernel)));
  }
  req.input = r.words();
  if (version >= 2) req.trace_id = r.u64();
  r.expect_end();
  return req;
}

std::vector<std::uint8_t> encode_job_result(const JobResultMsg& msg,
                                            std::uint16_t version) {
  Writer w;
  w.u32(msg.tag);
  w.words(msg.outputs);
  w.u64(msg.sim_cycles);
  w.u32(msg.worker);
  w.u8(msg.reused_system);
  w.u32(static_cast<std::uint32_t>(msg.counters.size()));
  for (const auto& [name, value] : msg.counters) {
    w.str(name);
    w.u64(value);
  }
  if (version >= 2) {
    w.u64(msg.trace_id);
    w.u32(msg.queue_wait_us);
    w.u32(msg.execute_us);
    w.u32(msg.total_us);
  }
  return w.take();
}

JobResultMsg decode_job_result(std::span<const std::uint8_t> payload,
                               std::uint16_t version) {
  Reader r(payload);
  JobResultMsg msg;
  msg.tag = r.u32();
  msg.outputs = r.words();
  msg.sim_cycles = r.u64();
  msg.worker = r.u32();
  msg.reused_system = r.u8();
  const std::uint32_t n = r.u32();
  msg.counters.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = r.str();
    const std::uint64_t value = r.u64();
    msg.counters.emplace_back(std::move(name), value);
  }
  if (version >= 2) {
    msg.trace_id = r.u64();
    msg.queue_wait_us = r.u32();
    msg.execute_us = r.u32();
    msg.total_us = r.u32();
  }
  r.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_get_stats(std::uint32_t flags) {
  Writer w;
  w.u32(flags);
  return w.take();
}

std::uint32_t decode_get_stats(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const std::uint32_t flags = r.u32();
  r.expect_end();
  return flags;
}

std::vector<std::uint8_t> encode_stats_reply(const StatsReplyMsg& msg) {
  Writer w;
  w.u16(msg.stats_version);
  w.u64(msg.uptime_us);
  w.u32(msg.workers);
  w.u32(msg.queue_depth);
  w.u32(msg.queue_capacity);
  w.f64(msg.worker_utilization);
  w.u32(static_cast<std::uint32_t>(msg.counters.size()));
  for (const auto& [name, value] : msg.counters) {
    w.str(name);
    w.u64(value);
  }
  w.u32(static_cast<std::uint32_t>(msg.latencies.size()));
  for (const StatsQuantileMsg& q : msg.latencies) {
    w.str(q.name);
    w.u64(q.count);
    w.f64(q.mean_us);
    w.f64(q.p50_us);
    w.f64(q.p90_us);
    w.f64(q.p99_us);
    w.u64(q.max_us);
  }
  w.u32(static_cast<std::uint32_t>(msg.rates.size()));
  for (const StatsRateMsg& rate : msg.rates) {
    w.str(rate.name);
    w.f64(rate.per_sec);
  }
  w.u32(static_cast<std::uint32_t>(msg.flight.size()));
  for (const obs::SpanRecord& rec : msg.flight) write_span_record(w, rec);
  return w.take();
}

StatsReplyMsg decode_stats_reply(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  StatsReplyMsg msg;
  msg.stats_version = r.u16();
  msg.uptime_us = r.u64();
  msg.workers = r.u32();
  msg.queue_depth = r.u32();
  msg.queue_capacity = r.u32();
  msg.worker_utilization = r.f64();
  const std::uint32_t nc = r.u32();
  msg.counters.reserve(nc);
  for (std::uint32_t i = 0; i < nc; ++i) {
    std::string name = r.str();
    const std::uint64_t value = r.u64();
    msg.counters.emplace_back(std::move(name), value);
  }
  const std::uint32_t nl = r.u32();
  msg.latencies.reserve(nl);
  for (std::uint32_t i = 0; i < nl; ++i) {
    StatsQuantileMsg q;
    q.name = r.str();
    q.count = r.u64();
    q.mean_us = r.f64();
    q.p50_us = r.f64();
    q.p90_us = r.f64();
    q.p99_us = r.f64();
    q.max_us = r.u64();
    msg.latencies.push_back(std::move(q));
  }
  const std::uint32_t nr = r.u32();
  msg.rates.reserve(nr);
  for (std::uint32_t i = 0; i < nr; ++i) {
    StatsRateMsg rate;
    rate.name = r.str();
    rate.per_sec = r.f64();
    msg.rates.push_back(std::move(rate));
  }
  const std::uint32_t nf = r.u32();
  msg.flight.reserve(nf);
  for (std::uint32_t i = 0; i < nf; ++i) {
    msg.flight.push_back(read_span_record(r));
  }
  r.expect_end();
  return msg;
}

obs::JsonValue StatsReplyMsg::to_json() const {
  obs::JsonValue j = obs::JsonValue::object();
  j.set("stats_version", std::uint64_t{stats_version});
  j.set("uptime_us", uptime_us);
  j.set("workers", std::uint64_t{workers});
  j.set("queue_depth", std::uint64_t{queue_depth});
  j.set("queue_capacity", std::uint64_t{queue_capacity});
  j.set("worker_utilization", worker_utilization);
  obs::JsonValue cj = obs::JsonValue::object();
  for (const auto& [name, value] : counters) cj.set(name, value);
  j.set("counters", std::move(cj));
  obs::JsonValue lj = obs::JsonValue::object();
  for (const StatsQuantileMsg& q : latencies) {
    obs::JsonValue qj = obs::JsonValue::object();
    qj.set("count", q.count);
    qj.set("mean_us", q.mean_us);
    qj.set("p50_us", q.p50_us);
    qj.set("p90_us", q.p90_us);
    qj.set("p99_us", q.p99_us);
    qj.set("max_us", q.max_us);
    lj.set(q.name, std::move(qj));
  }
  j.set("latencies", std::move(lj));
  obs::JsonValue rj = obs::JsonValue::object();
  for (const StatsRateMsg& rate : rates) rj.set(rate.name, rate.per_sec);
  j.set("rates", std::move(rj));
  obs::JsonValue fj = obs::JsonValue::array();
  for (const obs::SpanRecord& rec : flight) fj.push_back(rec.to_json());
  j.set("flight", std::move(fj));
  return j;
}

std::vector<std::uint8_t> encode_submit_dfg(const SubmitDfgMsg& msg) {
  Writer w;
  w.u32(msg.tag);
  w.u16(static_cast<std::uint16_t>(msg.geometry.layers));
  w.u16(static_cast<std::uint16_t>(msg.geometry.lanes));
  w.u16(static_cast<std::uint16_t>(msg.geometry.fb_depth));
  w.bytes(msg.dfg);
  w.u64(msg.trace_id);
  return w.take();
}

SubmitDfgMsg decode_submit_dfg(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  SubmitDfgMsg msg;
  msg.tag = r.u32();
  msg.geometry.layers = r.u16();
  msg.geometry.lanes = r.u16();
  msg.geometry.fb_depth = r.u16();
  msg.dfg = r.bytes();
  msg.trace_id = r.u64();
  r.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_dfg_compiled(const DfgCompiledMsg& msg) {
  Writer w;
  w.u32(msg.tag);
  w.u64(msg.dfg_hash);
  w.u8(msg.cache_hit);
  w.u32(msg.compile_us);
  w.u16(msg.dnodes_used);
  w.u16(msg.max_latency);
  w.u16(msg.pushes_per_cycle);
  w.u16(msg.input_count);
  w.u32(static_cast<std::uint32_t>(msg.outputs.size()));
  for (const DfgOutputMetaMsg& o : msg.outputs) {
    w.str(o.name);
    w.u16(o.latency);
    w.u16(o.push_rank);
  }
  return w.take();
}

DfgCompiledMsg decode_dfg_compiled(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  DfgCompiledMsg msg;
  msg.tag = r.u32();
  msg.dfg_hash = r.u64();
  msg.cache_hit = r.u8();
  msg.compile_us = r.u32();
  msg.dnodes_used = r.u16();
  msg.max_latency = r.u16();
  msg.pushes_per_cycle = r.u16();
  msg.input_count = r.u16();
  const std::uint32_t n = r.u32();
  if (payload.size() < std::size_t{n} * 4) {
    throw ProtocolError("net: output metadata overruns payload");
  }
  msg.outputs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    DfgOutputMetaMsg o;
    o.name = r.str();
    o.latency = r.u16();
    o.push_rank = r.u16();
    msg.outputs.push_back(std::move(o));
  }
  r.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_submit_dfg_job(const SubmitDfgJobMsg& msg) {
  Writer w;
  w.u32(msg.tag);
  w.u16(static_cast<std::uint16_t>(msg.geometry.layers));
  w.u16(static_cast<std::uint16_t>(msg.geometry.lanes));
  w.u16(static_cast<std::uint16_t>(msg.geometry.fb_depth));
  w.bytes(msg.dfg);
  w.u32(static_cast<std::uint32_t>(msg.streams.size()));
  for (const auto& s : msg.streams) w.words(s);
  w.u64(msg.trace_id);
  return w.take();
}

SubmitDfgJobMsg decode_submit_dfg_job(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  SubmitDfgJobMsg msg;
  msg.tag = r.u32();
  msg.geometry.layers = r.u16();
  msg.geometry.lanes = r.u16();
  msg.geometry.fb_depth = r.u16();
  msg.dfg = r.bytes();
  const std::uint32_t n = r.u32();
  if (n > kMaxDfgJobStreams) {
    throw ProtocolError("net: DFG job carries " + std::to_string(n) +
                        " input streams, limit is " +
                        std::to_string(kMaxDfgJobStreams));
  }
  msg.streams.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) msg.streams.push_back(r.words());
  msg.trace_id = r.u64();
  r.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_submit_gemm(const SubmitGemmMsg& msg) {
  Writer w;
  w.u32(msg.tag);
  w.u16(static_cast<std::uint16_t>(msg.geometry.layers));
  w.u16(static_cast<std::uint16_t>(msg.geometry.lanes));
  w.u16(static_cast<std::uint16_t>(msg.geometry.fb_depth));
  w.u16(static_cast<std::uint16_t>(msg.spec.m));
  w.u16(static_cast<std::uint16_t>(msg.spec.k));
  w.u16(static_cast<std::uint16_t>(msg.spec.n));
  w.u8(static_cast<std::uint8_t>(msg.spec.dtype));
  w.u8(static_cast<std::uint8_t>(msg.spec.shift));
  w.u8(static_cast<std::uint8_t>(msg.spec.mapping));
  w.u16(static_cast<std::uint16_t>(msg.spec.tile_n));
  w.u32(msg.scratch_tiles);
  w.words(msg.a);
  w.words(msg.b);
  w.u64(msg.trace_id);
  return w.take();
}

SubmitGemmMsg decode_submit_gemm(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  SubmitGemmMsg msg;
  msg.tag = r.u32();
  msg.geometry.layers = r.u16();
  msg.geometry.lanes = r.u16();
  msg.geometry.fb_depth = r.u16();
  msg.spec.m = r.u16();
  msg.spec.k = r.u16();
  msg.spec.n = r.u16();
  const std::uint8_t dtype = r.u8();
  if (dtype > static_cast<std::uint8_t>(tile::Dtype::kInt16)) {
    throw ProtocolError("net: unknown GEMM dtype " + std::to_string(dtype));
  }
  msg.spec.dtype = static_cast<tile::Dtype>(dtype);
  msg.spec.shift = r.u8();
  const std::uint8_t mapping = r.u8();
  if (mapping > static_cast<std::uint8_t>(tile::Mapping::kWeightStationary)) {
    throw ProtocolError("net: unknown GEMM mapping " +
                        std::to_string(mapping));
  }
  msg.spec.mapping = static_cast<tile::Mapping>(mapping);
  msg.spec.tile_n = r.u16();
  msg.scratch_tiles = r.u32();
  msg.a = r.words();
  msg.b = r.words();
  msg.trace_id = r.u64();
  r.expect_end();

  for (const std::size_t dim :
       {msg.spec.m, msg.spec.k, msg.spec.n, msg.spec.tile_n}) {
    if (dim > kMaxGemmDim) {
      throw ProtocolError("net: GEMM dimension " + std::to_string(dim) +
                          " exceeds limit of " + std::to_string(kMaxGemmDim));
    }
  }
  if (msg.scratch_tiles < 1 || msg.scratch_tiles > kMaxGemmScratchTiles) {
    throw ProtocolError("net: GEMM scratchpad size must be in [1, " +
                        std::to_string(kMaxGemmScratchTiles) + "] tiles");
  }
  try {
    msg.spec.validate();
  } catch (const SimError& e) {
    throw ProtocolError(std::string("net: bad GEMM spec: ") + e.what());
  }
  if (msg.a.size() != msg.spec.m * msg.spec.k) {
    throw ProtocolError("net: GEMM A operand size does not match m*k");
  }
  if (msg.b.size() != msg.spec.k * msg.spec.n) {
    throw ProtocolError("net: GEMM B operand size does not match k*n");
  }
  return msg;
}

std::vector<std::uint8_t> encode_submit_job_batch(const SubmitJobBatchMsg& msg,
                                                  std::uint16_t version) {
  Writer w;
  w.u32(msg.tag);
  w.u32(static_cast<std::uint32_t>(msg.jobs.size()));
  for (const JobRequest& req : msg.jobs) {
    w.bytes(encode_job_request(req, version));
  }
  w.u64(msg.trace_id);
  return w.take();
}

SubmitJobBatchMsg decode_submit_job_batch(std::span<const std::uint8_t> payload,
                                          std::uint16_t version) {
  Reader r(payload);
  SubmitJobBatchMsg msg;
  msg.tag = r.u32();
  const std::uint32_t n = r.u32();
  if (n > kMaxBatchJobs) {
    throw ProtocolError("net: job batch carries " + std::to_string(n) +
                        " entries, limit is " + std::to_string(kMaxBatchJobs));
  }
  msg.jobs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    msg.jobs.push_back(decode_job_request(r.bytes(), version));
  }
  msg.trace_id = r.u64();
  r.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_job_batch_result(const JobBatchResultMsg& msg,
                                                  std::uint16_t version) {
  Writer w;
  w.u32(msg.tag);
  w.u32(static_cast<std::uint32_t>(msg.entries.size()));
  for (const JobBatchEntryMsg& e : msg.entries) {
    w.u8(e.ok);
    w.bytes(e.ok ? encode_job_result(e.result, version)
                 : encode_error(e.error, version));
  }
  return w.take();
}

JobBatchResultMsg decode_job_batch_result(std::span<const std::uint8_t> payload,
                                          std::uint16_t version) {
  Reader r(payload);
  JobBatchResultMsg msg;
  msg.tag = r.u32();
  const std::uint32_t n = r.u32();
  if (n > kMaxBatchJobs) {
    throw ProtocolError("net: job batch result carries " + std::to_string(n) +
                        " entries, limit is " + std::to_string(kMaxBatchJobs));
  }
  msg.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    JobBatchEntryMsg e;
    e.ok = r.u8();
    const std::vector<std::uint8_t> blob = r.bytes();
    if (e.ok) {
      e.result = decode_job_result(blob, version);
    } else {
      e.error = decode_error(blob, version);
    }
    msg.entries.push_back(std::move(e));
  }
  r.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_error(const ErrorMsg& msg,
                                       std::uint16_t version) {
  Writer w;
  w.u32(msg.tag);
  w.u16(static_cast<std::uint16_t>(msg.code));
  w.str(msg.message);
  if (version >= 5) w.u32(msg.retry_after_ms);
  return w.take();
}

ErrorMsg decode_error(std::span<const std::uint8_t> payload,
                      std::uint16_t version) {
  Reader r(payload);
  ErrorMsg msg;
  msg.tag = r.u32();
  msg.code = static_cast<ErrorCode>(r.u16());
  msg.message = r.str();
  if (version >= 5) msg.retry_after_ms = r.u32();
  r.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_server_info(const ServerInfoMsg& msg) {
  Writer w;
  w.u16(msg.protocol_version);
  w.u32(msg.workers);
  w.u32(msg.queue_capacity);
  w.u32(msg.max_frame_bytes);
  w.u64(msg.jobs_completed);
  w.str(msg.server);
  return w.take();
}

ServerInfoMsg decode_server_info(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  ServerInfoMsg msg;
  msg.protocol_version = r.u16();
  msg.workers = r.u32();
  msg.queue_capacity = r.u32();
  msg.max_frame_bytes = r.u32();
  msg.jobs_completed = r.u64();
  msg.server = r.str();
  r.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_ping(std::uint64_t token) {
  Writer w;
  w.u64(token);
  return w.take();
}

std::uint64_t decode_ping(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const std::uint64_t token = r.u64();
  r.expect_end();
  return token;
}

namespace {

rt::Job to_rt_job_impl(const JobRequest& req) {
  req.geometry.validate();
  switch (req.kernel) {
    case KernelId::kFir:
      return kernels::make_spatial_fir_job(req.geometry, req.input,
                                           req.fir_coeffs);
    case KernelId::kMotionEstimation:
      check(req.me_range >= 1,
            "net: motion-estimation range must be at least 1");
      check(req.me_range <= kMaxMotionRange,
            "net: motion-estimation range exceeds limit of " +
                std::to_string(kMaxMotionRange));
      return kernels::make_motion_estimation_job(
          req.geometry, req.me_ref, req.me_rx, req.me_ry, req.me_cand,
          static_cast<int>(req.me_range));
    case KernelId::kDwt53:
      return kernels::make_dwt53_job(req.geometry, req.input);
    case KernelId::kMatvec8: {
      check(req.matvec_m.size() == dsp::kMatvecN * dsp::kMatvecN,
            "net: matvec8 expects a 64-word row-major matrix");
      dsp::Matrix8 m;
      for (std::size_t r = 0; r < dsp::kMatvecN; ++r) {
        for (std::size_t c = 0; c < dsp::kMatvecN; ++c) {
          m[r][c] = req.matvec_m[r * dsp::kMatvecN + c];
        }
      }
      return kernels::make_matvec8_job(req.geometry, m, req.input);
    }
  }
  throw SimError("net: unknown kernel id " +
                 std::to_string(static_cast<unsigned>(req.kernel)));
}

}  // namespace

rt::Job to_rt_job(const JobRequest& req) {
  rt::Job job = to_rt_job_impl(req);
  job.trace_id = req.trace_id;
  return job;
}

std::vector<std::pair<std::string, std::uint64_t>> result_counters(
    const rt::JobResult& result) {
  const SystemStats& s = result.report.stats;
  return {
      {"sim.cycles", s.cycles},
      {"sim.ring_stall_cycles", s.ring_stall_cycles},
      {"sim.ctrl_stall_cycles", s.ctrl_stall_cycles},
      {"sim.dnode_ops", s.dnode_ops},
      {"sim.arith_ops", s.arith_ops},
      {"sim.host_words_in", s.host_words_in},
      {"sim.host_words_out", s.host_words_out},
      {"sim.plan_hits", s.plan_hits},
  };
}

JobResultMsg make_job_result_msg(std::uint32_t tag,
                                 const rt::JobResult& result) {
  JobResultMsg msg;
  msg.tag = tag;
  msg.outputs = result.outputs;
  msg.sim_cycles = result.report.stats.cycles;
  msg.worker = static_cast<std::uint32_t>(result.worker);
  msg.reused_system = result.reused_system ? 1 : 0;
  msg.counters = result_counters(result);
  msg.trace_id = result.trace_id;
  msg.queue_wait_us = sat_u32(result.timeline.queue_wait_us());
  msg.execute_us = sat_u32(result.timeline.execute_us());
  msg.total_us = sat_u32(result.timeline.total_us());
  return msg;
}

}  // namespace sring::net
