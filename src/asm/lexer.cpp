#include "asm/lexer.hpp"

#include <cctype>

#include "common/error.hpp"

namespace sring {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t col = 1;
  std::size_t i = 0;

  const auto push = [&](TokenKind kind, std::string text = {},
                        std::int64_t value = 0) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.value = value;
    t.line = line;
    t.column = col;
    tokens.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      // Collapse runs of newlines into one separator token.
      if (tokens.empty() || tokens.back().kind != TokenKind::kNewline) {
        push(TokenKind::kNewline);
      }
      ++i;
      ++line;
      col = 1;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      ++col;
      continue;
    }
    if (c == ';' || c == '#') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == ',') { push(TokenKind::kComma); ++i; ++col; continue; }
    if (c == ':') { push(TokenKind::kColon); ++i; ++col; continue; }
    if (c == '{') { push(TokenKind::kLBrace); ++i; ++col; continue; }
    if (c == '}') { push(TokenKind::kRBrace); ++i; ++col; continue; }
    if (c == '(') { push(TokenKind::kLParen); ++i; ++col; continue; }
    if (c == ')') { push(TokenKind::kRParen); ++i; ++col; continue; }
    if (c == '=') { push(TokenKind::kEqual); ++i; ++col; continue; }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const std::size_t start = i;
      const std::size_t start_col = col;
      bool negative = false;
      if (c == '-') {
        negative = true;
        ++i;
        ++col;
      }
      int base = 10;
      if (i + 1 < src.size() && src[i] == '0' &&
          (src[i + 1] == 'x' || src[i + 1] == 'X')) {
        base = 16;
        i += 2;
        col += 2;
      } else if (i + 1 < src.size() && src[i] == '0' &&
                 (src[i + 1] == 'b' || src[i + 1] == 'B')) {
        base = 2;
        i += 2;
        col += 2;
      }
      std::uint64_t value = 0;
      std::size_t digits = 0;
      while (i < src.size()) {
        const char d = src[i];
        int dv;
        if (d >= '0' && d <= '9') {
          dv = d - '0';
        } else if (base == 16 && d >= 'a' && d <= 'f') {
          dv = d - 'a' + 10;
        } else if (base == 16 && d >= 'A' && d <= 'F') {
          dv = d - 'A' + 10;
        } else if (d == '_') {
          ++i;
          ++col;
          continue;  // digit group separator
        } else {
          break;
        }
        if (dv >= base) {
          throw AsmError("digit out of range for base", line, col);
        }
        value = value * static_cast<std::uint64_t>(base) +
                static_cast<std::uint64_t>(dv);
        ++digits;
        ++i;
        ++col;
      }
      if (digits == 0) {
        throw AsmError("malformed number literal", line, start_col);
      }
      auto sv = static_cast<std::int64_t>(value);
      if (negative) sv = -sv;
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = std::string(src.substr(start, i - start));
      t.value = sv;
      t.line = line;
      t.column = start_col;
      tokens.push_back(std::move(t));
      continue;
    }

    // '.' starts an identifier only when followed by a letter (a
    // directive like ".controller"); between numbers it is the
    // coordinate separator of "layer.lane".
    const bool dot_directive =
        c == '.' && i + 1 < src.size() &&
        (std::isalpha(static_cast<unsigned char>(src[i + 1])) ||
         src[i + 1] == '_');
    if (is_ident_start(c) && (c != '.' || dot_directive)) {
      const std::size_t start = i;
      const std::size_t start_col = col;
      ++i;
      ++col;
      while (i < src.size() && is_ident_char(src[i])) {
        ++i;
        ++col;
      }
      Token t;
      t.kind = TokenKind::kIdent;
      t.text = std::string(src.substr(start, i - start));
      t.line = line;
      t.column = start_col;
      tokens.push_back(std::move(t));
      continue;
    }

    if (c == '.') {
      push(TokenKind::kDot);
      ++i;
      ++col;
      continue;
    }

    throw AsmError(std::string("unexpected character '") + c + "'", line,
                   col);
  }

  push(TokenKind::kNewline);
  push(TokenKind::kEnd);
  return tokens;
}

}  // namespace sring
