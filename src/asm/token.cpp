#include "asm/token.hpp"

namespace sring {

std::string to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kEqual:
      return "'='";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kNewline:
      return "end of line";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

}  // namespace sring
