#include "asm/program_builder.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"
#include "core/local_control.hpp"

namespace sring {

PageBuilder::PageBuilder(const RingGeometry& g)
    : geom_(g), page_(ConfigPage::zeroed(g)) {
  geom_.validate();
}

std::size_t PageBuilder::flat(std::size_t layer, std::size_t lane) const {
  check(layer < geom_.layers && lane < geom_.lanes,
        "PageBuilder: dnode coordinate out of range");
  return layer * geom_.lanes + lane;
}

PageBuilder& PageBuilder::instr(std::size_t layer, std::size_t lane,
                                const DnodeInstr& instruction) {
  page_.dnode_instr[flat(layer, lane)] = instruction.encode();
  return *this;
}

PageBuilder& PageBuilder::mode(std::size_t layer, std::size_t lane,
                               DnodeMode m) {
  page_.dnode_mode[flat(layer, lane)] = static_cast<std::uint8_t>(m);
  return *this;
}

PageBuilder& PageBuilder::route(std::size_t sw, std::size_t lane,
                                const SwitchRoute& r) {
  check(sw < geom_.switch_count() && lane < geom_.lanes,
        "PageBuilder: switch coordinate out of range");
  page_.switch_route[sw * geom_.lanes + lane] = r.encode();
  return *this;
}

ProgramBuilder::ProgramBuilder(const RingGeometry& g, std::string name)
    : geom_(g), name_(std::move(name)) {
  geom_.validate();
}

ProgramBuilder& ProgramBuilder::emit(const RiscInstr& instruction) {
  code_.push_back(instruction);
  return *this;
}

ProgramBuilder& ProgramBuilder::label(const std::string& name) {
  check(labels_.count(name) == 0,
        "ProgramBuilder: duplicate label " + name);
  labels_[name] = code_.size();
  return *this;
}

ProgramBuilder& ProgramBuilder::nop() {
  return emit({RiscOp::kNop, 0, 0, 0, 0});
}

ProgramBuilder& ProgramBuilder::halt() {
  return emit({RiscOp::kHalt, 0, 0, 0, 0});
}

ProgramBuilder& ProgramBuilder::ldi(std::uint8_t rd, std::int32_t imm16) {
  check(fits_signed(imm16, 16), "ProgramBuilder::ldi: immediate too wide");
  return emit({RiscOp::kLdi, rd, 0, 0, imm16});
}

ProgramBuilder& ProgramBuilder::set_reg(std::uint8_t rd,
                                        std::uint64_t value) {
  // Shortest LDI / LDI+LDIH... chain: emit the top 16-bit chunk with a
  // sign-extending LDI, then shift in lower chunks.
  if (fits_signed(static_cast<std::int64_t>(value), 16)) {
    return ldi(rd, static_cast<std::int32_t>(static_cast<std::int64_t>(value)));
  }
  int top = 3;
  while (top > 0 && extract_bits(value, 16 * top, 16) == 0) --top;
  // The first chunk must not sign-extend into ones, so if its MSB is
  // set start one chunk higher (LDI 0 then LDIH it in).
  std::int64_t first =
      sign_extend(extract_bits(value, 16 * top, 16), 16);
  if (first < 0 && top < 3) {
    ++top;
    first = 0;
  }
  // A negative top chunk is only kept when it occupies bits 48..63;
  // the LDIH shifts then push the sign-extension bits off the top.
  emit({RiscOp::kLdi, rd, 0, 0, static_cast<std::int32_t>(first)});
  for (int chunk = top - 1; chunk >= 0; --chunk) {
    emit({RiscOp::kLdih, rd, 0, 0,
          static_cast<std::int32_t>(extract_bits(value, 16 * chunk, 16))});
  }
  return *this;
}

ProgramBuilder& ProgramBuilder::mov(std::uint8_t rd, std::uint8_t ra) {
  return emit({RiscOp::kMov, rd, ra, 0, 0});
}

ProgramBuilder& ProgramBuilder::addi(std::uint8_t rd, std::uint8_t ra,
                                     std::int32_t imm) {
  return emit({RiscOp::kAddi, rd, ra, 0, imm});
}

ProgramBuilder& ProgramBuilder::alu(RiscOp op, std::uint8_t rd,
                                    std::uint8_t ra, std::uint8_t rb) {
  check(format_of(op) == RiscFormat::kRdRaRb,
        "ProgramBuilder::alu: not a three-register op");
  return emit({op, rd, ra, rb, 0});
}

ProgramBuilder& ProgramBuilder::branch(RiscOp op, std::uint8_t ra,
                                       std::uint8_t rb,
                                       const std::string& label) {
  check(format_of(op) == RiscFormat::kRaRbImm,
        "ProgramBuilder::branch: not a compare-branch op");
  fixups_.push_back({code_.size(), label});
  return emit({op, 0, ra, rb, 0});
}

ProgramBuilder& ProgramBuilder::jmp(const std::string& label) {
  fixups_.push_back({code_.size(), label});
  return emit({RiscOp::kJmp, 0, 0, 0, 0});
}

ProgramBuilder& ProgramBuilder::page_switch(std::size_t page_index) {
  check(fits_unsigned(page_index, 16),
        "ProgramBuilder::page_switch: page index too large");
  return emit({RiscOp::kPage, 0, 0, 0,
               static_cast<std::int32_t>(page_index)});
}

ProgramBuilder& ProgramBuilder::wait(std::uint32_t cycles) {
  check(fits_unsigned(cycles, 16), "ProgramBuilder::wait: too long");
  return emit({RiscOp::kWait, 0, 0, 0, static_cast<std::int32_t>(cycles)});
}

ProgramBuilder& ProgramBuilder::inpop(std::uint8_t rd) {
  return emit({RiscOp::kInpop, rd, 0, 0, 0});
}

ProgramBuilder& ProgramBuilder::outpush(std::uint8_t ra) {
  return emit({RiscOp::kOutpush, 0, ra, 0, 0});
}

ProgramBuilder& ProgramBuilder::busw(std::uint8_t ra) {
  return emit({RiscOp::kBusw, 0, ra, 0, 0});
}

ProgramBuilder& ProgramBuilder::wrcfg(std::size_t dnode,
                                      const DnodeInstr& instruction) {
  set_reg(kScratchA, dnode);
  set_reg(kScratchB, instruction.encode());
  return emit({RiscOp::kWrcfg, 0, kScratchA, kScratchB, 0});
}

ProgramBuilder& ProgramBuilder::wrmode(std::size_t dnode, DnodeMode mode) {
  set_reg(kScratchA, dnode);
  set_reg(kScratchB, static_cast<std::uint64_t>(mode));
  return emit({RiscOp::kWrmode, 0, kScratchA, kScratchB, 0});
}

ProgramBuilder& ProgramBuilder::wrloc(std::size_t dnode, std::size_t slot,
                                      std::uint64_t value) {
  check(slot <= LocalControl::kResetSlot,
        "ProgramBuilder::wrloc: bad slot");
  set_reg(kScratchA, dnode * 16 + slot);
  set_reg(kScratchB, value);
  return emit({RiscOp::kWrloc, 0, kScratchA, kScratchB, 0});
}

ProgramBuilder& ProgramBuilder::wrsw(std::size_t sw, std::size_t lane,
                                     const SwitchRoute& route) {
  check(sw < geom_.switch_count() && lane < geom_.lanes,
        "ProgramBuilder::wrsw: switch coordinate out of range");
  set_reg(kScratchA, sw * 16 + lane);
  set_reg(kScratchB, route.encode());
  return emit({RiscOp::kWrsw, 0, kScratchA, kScratchB, 0});
}

std::size_t ProgramBuilder::add_page(const ConfigPage& page) {
  pages_.push_back(page);
  return pages_.size() - 1;
}

ProgramBuilder& ProgramBuilder::local_init(std::size_t dnode,
                                           std::size_t slot,
                                           std::uint64_t value) {
  check(dnode < geom_.dnode_count(),
        "ProgramBuilder::local_init: dnode out of range");
  check(slot <= LocalControl::kResetSlot,
        "ProgramBuilder::local_init: bad slot");
  local_init_.push_back({static_cast<std::uint32_t>(dnode),
                         static_cast<std::uint8_t>(slot), value});
  return *this;
}

ProgramBuilder& ProgramBuilder::local_program(
    std::size_t dnode, const std::vector<DnodeInstr>& instrs) {
  check(!instrs.empty() && instrs.size() <= kLocalProgramSlots,
        "ProgramBuilder::local_program: 1..8 instructions required");
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    local_init(dnode, i, instrs[i].encode());
  }
  local_init(dnode, LocalControl::kLimitSlot, instrs.size() - 1);
  return *this;
}

LoadableProgram ProgramBuilder::build() const {
  std::vector<RiscInstr> code = code_;
  for (const auto& fix : fixups_) {
    const auto it = labels_.find(fix.label);
    check(it != labels_.end(),
          "ProgramBuilder: undefined label " + fix.label);
    const std::int64_t offset =
        static_cast<std::int64_t>(it->second) -
        (static_cast<std::int64_t>(fix.index) + 1);
    check(fits_signed(offset, 16),
          "ProgramBuilder: branch target out of range");
    code[fix.index].imm = static_cast<std::int32_t>(offset);
  }
  LoadableProgram p;
  p.name = name_;
  p.geometry = geom_;
  p.controller_code.reserve(code.size());
  for (const auto& instr : code) {
    p.controller_code.push_back(instr.encode());
  }
  p.pages = pages_;
  p.local_init = local_init_;
  return p;
}

}  // namespace sring
