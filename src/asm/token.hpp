// Tokens of the two-level Systolic Ring assembly language.
#pragma once

#include <cstdint>
#include <string>

namespace sring {

enum class TokenKind : std::uint8_t {
  kIdent,     ///< identifier / mnemonic / directive (".controller")
  kNumber,    ///< integer literal (decimal, hex 0x, binary 0b, negative)
  kComma,
  kColon,
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kEqual,
  kDot,       ///< '.' between numbers (dnode coordinates "0.1")
  kNewline,   ///< statement separator (also ';' outside comments? no: ';' starts a comment)
  kEnd,       ///< end of input
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;          ///< raw text for identifiers
  std::int64_t value = 0;    ///< numeric value for kNumber
  std::size_t line = 0;      ///< 1-based
  std::size_t column = 0;    ///< 1-based

  bool is_ident(const std::string& s) const {
    return kind == TokenKind::kIdent && text == s;
  }
};

/// Printable name of a token kind, for diagnostics.
std::string to_string(TokenKind kind);

}  // namespace sring
