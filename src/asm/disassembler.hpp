// Disassembler: turns a loadable program back into assembly text that
// the assembler accepts (round-trip property: reassembling the output
// reproduces the same object, modulo label names).
#pragma once

#include <string>

#include "sim/program.hpp"

namespace sring {

/// Full program listing (.ring / .controller / .page / .local sections).
std::string disassemble(const LoadableProgram& program);

}  // namespace sring
