// Programmatic construction of loadable programs.
//
// The kernel generators (src/kernels) use this instead of emitting
// assembly text: a PageBuilder composes configuration pages, and the
// ProgramBuilder emits controller code with label fixups and 64-bit
// constant materialization.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/config_memory.hpp"
#include "isa/risc_instr.hpp"
#include "sim/program.hpp"

namespace sring {

/// Composes one configuration page for a given geometry.
class PageBuilder {
 public:
  explicit PageBuilder(const RingGeometry& g);

  PageBuilder& instr(std::size_t layer, std::size_t lane,
                     const DnodeInstr& instruction);
  PageBuilder& mode(std::size_t layer, std::size_t lane, DnodeMode m);
  PageBuilder& route(std::size_t sw, std::size_t lane,
                     const SwitchRoute& r);

  const ConfigPage& page() const noexcept { return page_; }
  ConfigPage build() const { return page_; }

 private:
  std::size_t flat(std::size_t layer, std::size_t lane) const;

  RingGeometry geom_;
  ConfigPage page_;
};

/// Emits controller code and assembles the full loadable program.
class ProgramBuilder {
 public:
  ProgramBuilder(const RingGeometry& g, std::string name);

  /// Scratch registers used by the convenience emitters below; user
  /// code should avoid them.
  static constexpr std::uint8_t kScratchA = 14;
  static constexpr std::uint8_t kScratchB = 15;

  // --- raw emission ------------------------------------------------------
  ProgramBuilder& emit(const RiscInstr& instruction);
  ProgramBuilder& label(const std::string& name);

  // --- plain instruction helpers ------------------------------------------
  ProgramBuilder& nop();
  ProgramBuilder& halt();
  ProgramBuilder& ldi(std::uint8_t rd, std::int32_t imm16);
  /// Materialize an arbitrary 64-bit constant (LDI + LDIH chain).
  ProgramBuilder& set_reg(std::uint8_t rd, std::uint64_t value);
  ProgramBuilder& mov(std::uint8_t rd, std::uint8_t ra);
  ProgramBuilder& addi(std::uint8_t rd, std::uint8_t ra, std::int32_t imm);
  ProgramBuilder& alu(RiscOp op, std::uint8_t rd, std::uint8_t ra,
                      std::uint8_t rb);
  ProgramBuilder& branch(RiscOp op, std::uint8_t ra, std::uint8_t rb,
                         const std::string& label);
  ProgramBuilder& jmp(const std::string& label);
  ProgramBuilder& page_switch(std::size_t page_index);
  ProgramBuilder& wait(std::uint32_t cycles);
  ProgramBuilder& inpop(std::uint8_t rd);
  ProgramBuilder& outpush(std::uint8_t ra);
  ProgramBuilder& busw(std::uint8_t ra);

  // --- configuration-write helpers (use the scratch registers) -------------
  ProgramBuilder& wrcfg(std::size_t dnode, const DnodeInstr& instruction);
  ProgramBuilder& wrmode(std::size_t dnode, DnodeMode mode);
  ProgramBuilder& wrloc(std::size_t dnode, std::size_t slot,
                        std::uint64_t value);
  ProgramBuilder& wrsw(std::size_t sw, std::size_t lane,
                       const SwitchRoute& route);

  // --- program assembly -----------------------------------------------------
  /// Register a configuration page; returns its index.
  std::size_t add_page(const ConfigPage& page);
  std::size_t add_page(const PageBuilder& pb) { return add_page(pb.build()); }

  /// Preload a local-control register at load time.
  ProgramBuilder& local_init(std::size_t dnode, std::size_t slot,
                             std::uint64_t value);
  /// Preload a whole local microprogram (slots 0..n-1 plus LIMIT).
  ProgramBuilder& local_program(std::size_t dnode,
                                const std::vector<DnodeInstr>& instrs);

  /// Resolve labels and produce the program; throws SimError on an
  /// undefined label.
  LoadableProgram build() const;

 private:
  RingGeometry geom_;
  std::string name_;
  std::vector<RiscInstr> code_;
  std::map<std::string, std::size_t> labels_;
  struct Fixup {
    std::size_t index;
    std::string label;
  };
  std::vector<Fixup> fixups_;
  std::vector<ConfigPage> pages_;
  std::vector<LocalWrite> local_init_;
};

}  // namespace sring
