// Two-level assembler (paper §5.1: "we wrote an assembling tool, which
// parses both RISC level (for the control) and Ring level assembler
// primitives.  It directly generates the machine object code, ready to
// be executed in the architecture.").
//
// Source structure:
//
//   .name myprog                ; optional program name
//   .ring LAYERS LANES [FBDEPTH]; ring geometry (required, first)
//   .equ  taps 8                ; named constant
//
//   .controller                 ; RISC management code
//   start:
//       ldi   r1, 0
//       page  init              ; page operands may be names or numbers
//   loop:
//       addi  r1, r1, 1
//       blt   r1, r2, loop      ; branch targets: labels or offsets
//       halt
//
//   .page init                  ; one full configuration snapshot
//       dnode 0.0 local         ; set execution mode
//       dnode 1.0 { mac r0, in1, in2, r0 out }
//       switch 1.0 in1=prev0 in2=host fifo1=fb(0,0,3) hostout=prev0
//
//   .local 0.0                  ; preloaded local microprogram (slots
//   {                           ; 0..n-1; LIMIT defaults to n-1)
//       mac r0, in1, in2, r0
//       pass none, r0 host
//   }
//
// Ring-level microinstruction syntax: `op dst, srcA[, srcB[, srcC]]`
// followed by optional flags `out`, `bus`, `host`.  The IMM operand
// source is written `imm(value)`.
#pragma once

#include <string_view>

#include "sim/program.hpp"

namespace sring {

/// Assemble source text into a loadable program; throws AsmError with
/// line/column on any diagnostic.
LoadableProgram assemble(std::string_view source);

}  // namespace sring
