#include "asm/disassembler.hpp"

#include <map>

#include "core/local_control.hpp"
#include "core/switch.hpp"
#include "isa/dnode_instr.hpp"
#include "isa/risc_instr.hpp"

namespace sring {

namespace {

std::string route_to_asm(const PortRoute& p) {
  switch (p.kind) {
    case RouteKind::kZero:
      return "zero";
    case RouteKind::kPrev:
      return "prev" + std::to_string(p.lane);
    case RouteKind::kHost:
      return "host";
    case RouteKind::kBus:
      return "bus";
    case RouteKind::kFeedback:
      return "fb(" + std::to_string(p.fb.pipe) + "," +
             std::to_string(p.fb.lane) + "," + std::to_string(p.fb.depth) +
             ")";
    case RouteKind::kKindCount:
      break;
  }
  return "zero";
}

std::string fb_to_asm(const FeedbackAddr& a) {
  return "fb(" + std::to_string(a.pipe) + "," + std::to_string(a.lane) +
         "," + std::to_string(a.depth) + ")";
}

}  // namespace

std::string disassemble(const LoadableProgram& p) {
  std::string out;
  if (!p.name.empty()) out += ".name " + p.name + "\n";
  out += ".ring " + std::to_string(p.geometry.layers) + " " +
         std::to_string(p.geometry.lanes) + " " +
         std::to_string(p.geometry.fb_depth) + "\n\n";

  if (!p.controller_code.empty()) {
    out += ".controller\n";
    for (const auto word : p.controller_code) {
      out += "    " + RiscInstr::decode(word).to_string() + "\n";
    }
    out += "\n";
  }

  for (std::size_t pi = 0; pi < p.pages.size(); ++pi) {
    const auto& page = p.pages[pi];
    out += ".page p" + std::to_string(pi) + "\n";
    for (std::size_t d = 0; d < page.dnode_instr.size(); ++d) {
      const std::string coord =
          std::to_string(d / p.geometry.lanes) + "." +
          std::to_string(d % p.geometry.lanes);
      if (page.dnode_mode[d] ==
          static_cast<std::uint8_t>(DnodeMode::kLocal)) {
        out += "    dnode " + coord + " local\n";
      }
      if (page.dnode_instr[d] != 0) {
        out += "    dnode " + coord + " { " +
               DnodeInstr::decode(page.dnode_instr[d]).to_string() + " }\n";
      }
    }
    for (std::size_t s = 0; s < p.geometry.switch_count(); ++s) {
      for (std::size_t lane = 0; lane < p.geometry.lanes; ++lane) {
        const auto raw = page.switch_route[s * p.geometry.lanes + lane];
        if (raw == 0) continue;
        const SwitchRoute r = SwitchRoute::decode(raw);
        out += "    switch " + std::to_string(s) + "." +
               std::to_string(lane);
        out += " in1=" + route_to_asm(r.in1);
        out += " in2=" + route_to_asm(r.in2);
        out += " fifo1=" + fb_to_asm(r.fifo1);
        out += " fifo2=" + fb_to_asm(r.fifo2);
        if (r.host_out_en) {
          out += " hostout=prev" + std::to_string(r.host_out_lane);
        }
        out += "\n";
      }
    }
    out += "\n";
  }

  // Group local-init writes per dnode.  LIMIT writes terminate a group
  // in assembler output, so emit program slots first, then `limit`.
  std::map<std::uint32_t, std::vector<LocalWrite>> per_dnode;
  for (const auto& lw : p.local_init) per_dnode[lw.dnode].push_back(lw);
  for (const auto& [dnode, writes] : per_dnode) {
    out += ".local " + std::to_string(dnode / p.geometry.lanes) + "." +
           std::to_string(dnode % p.geometry.lanes) + "\n{\n";
    std::int64_t limit = -1;
    std::map<std::uint8_t, std::uint64_t> slots;
    for (const auto& lw : writes) {
      if (lw.slot < kLocalProgramSlots) {
        slots[lw.slot] = lw.value;
      } else if (lw.slot == LocalControl::kLimitSlot) {
        limit = static_cast<std::int64_t>(lw.value);
      }
    }
    for (const auto& [slot, value] : slots) {
      out += "    " + DnodeInstr::decode(value).to_string() + "\n";
    }
    if (limit >= 0 &&
        limit != static_cast<std::int64_t>(slots.size()) - 1) {
      out += "    limit " + std::to_string(limit) + "\n";
    }
    out += "}\n\n";
  }
  return out;
}

}  // namespace sring
