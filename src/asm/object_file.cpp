#include "asm/object_file.hpp"

#include <fstream>

#include "common/error.hpp"

namespace sring {

namespace {

constexpr std::uint32_t kMagic = 0x4F475253u;  // "SRGO"
constexpr std::uint32_t kVersion = 1;

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    check(pos_ < bytes_.size(), "object file: truncated");
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    check(pos_ + n <= bytes_.size(), "object file: truncated string");
    std::string s(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return s;
  }
  bool done() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> serialize_program(const LoadableProgram& p) {
  Writer w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.str(p.name);
  w.u32(static_cast<std::uint32_t>(p.geometry.layers));
  w.u32(static_cast<std::uint32_t>(p.geometry.lanes));
  w.u32(static_cast<std::uint32_t>(p.geometry.fb_depth));
  w.u32(static_cast<std::uint32_t>(p.controller_code.size()));
  for (const auto word : p.controller_code) w.u32(word);
  w.u32(static_cast<std::uint32_t>(p.pages.size()));
  for (const auto& page : p.pages) {
    check(page.dnode_instr.size() == p.geometry.dnode_count() &&
              page.dnode_mode.size() == p.geometry.dnode_count() &&
              page.switch_route.size() ==
                  p.geometry.switch_count() * p.geometry.lanes,
          "serialize_program: page shape mismatch");
    for (const auto v : page.dnode_instr) w.u64(v);
    for (const auto v : page.dnode_mode) w.u8(v);
    for (const auto v : page.switch_route) w.u64(v);
  }
  w.u32(static_cast<std::uint32_t>(p.local_init.size()));
  for (const auto& lw : p.local_init) {
    w.u32(lw.dnode);
    w.u8(lw.slot);
    w.u64(lw.value);
  }
  return w.take();
}

LoadableProgram deserialize_program(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  check(r.u32() == kMagic, "object file: bad magic");
  check(r.u32() == kVersion, "object file: unsupported version");
  LoadableProgram p;
  p.name = r.str();
  p.geometry.layers = r.u32();
  p.geometry.lanes = r.u32();
  p.geometry.fb_depth = r.u32();
  p.geometry.validate();
  const std::uint32_t code_len = r.u32();
  p.controller_code.reserve(code_len);
  for (std::uint32_t i = 0; i < code_len; ++i) {
    p.controller_code.push_back(r.u32());
  }
  const std::uint32_t page_count = r.u32();
  for (std::uint32_t pi = 0; pi < page_count; ++pi) {
    ConfigPage page = ConfigPage::zeroed(p.geometry);
    for (auto& v : page.dnode_instr) v = r.u64();
    for (auto& v : page.dnode_mode) v = r.u8();
    for (auto& v : page.switch_route) v = r.u64();
    p.pages.push_back(std::move(page));
  }
  const std::uint32_t lw_count = r.u32();
  for (std::uint32_t i = 0; i < lw_count; ++i) {
    LocalWrite lw;
    lw.dnode = r.u32();
    lw.slot = r.u8();
    lw.value = r.u64();
    p.local_init.push_back(lw);
  }
  check(r.done(), "object file: trailing bytes");
  return p;
}

void save_program(const LoadableProgram& program, const std::string& path) {
  const auto bytes = serialize_program(program);
  std::ofstream out(path, std::ios::binary);
  check(out.good(), "save_program: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  check(out.good(), "save_program: write failed for " + path);
}

LoadableProgram load_program(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  check(in.good(), "load_program: cannot open " + path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return deserialize_program(bytes);
}

}  // namespace sring
