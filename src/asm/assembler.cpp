#include "asm/assembler.hpp"

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "asm/lexer.hpp"
#include "asm/macro.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "core/local_control.hpp"
#include "isa/dnode_instr.hpp"
#include "isa/risc_instr.hpp"

namespace sring {

namespace {

/// Parse a short decimal suffix ("prev3" -> 3); rejects anything that
/// is not 1..4 plain digits so corrupt input cannot overflow stoi.
std::optional<int> parse_small_uint(std::string_view digits) {
  if (digits.empty() || digits.size() > 4) return std::nullopt;
  int value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
  }
  return value;
}

class Parser {
 public:
  explicit Parser(std::string_view source)
      : tokens_(expand_macros(lex(source))) {}

  LoadableProgram parse() {
    skip_newlines();
    while (!at(TokenKind::kEnd)) {
      const Token& t = peek();
      if (t.is_ident(".name")) {
        parse_name();
      } else if (t.is_ident(".ring")) {
        parse_ring();
      } else if (t.is_ident(".equ")) {
        parse_equ();
      } else if (t.is_ident(".controller")) {
        parse_controller();
      } else if (t.is_ident(".page")) {
        parse_page();
      } else if (t.is_ident(".local")) {
        parse_local();
      } else {
        fail("expected a directive (.ring/.controller/.page/.local/...)",
             t);
      }
      skip_newlines();
    }
    finalize();
    return std::move(program_);
  }

 private:
  // --- token plumbing ---------------------------------------------------
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool at(TokenKind kind) const { return peek().kind == kind; }
  Token take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  Token expect(TokenKind kind, const std::string& what) {
    if (!at(kind)) {
      fail("expected " + what + ", found " + to_string(peek().kind),
           peek());
    }
    return take();
  }
  void skip_newlines() {
    while (at(TokenKind::kNewline)) take();
  }
  void end_statement() {
    if (at(TokenKind::kEnd)) return;
    expect(TokenKind::kNewline, "end of line");
  }
  [[noreturn]] void fail(const std::string& message, const Token& t) const {
    throw AsmError(message, t.line, t.column);
  }

  /// Number or .equ constant.
  std::int64_t parse_number() {
    if (at(TokenKind::kNumber)) return take().value;
    if (at(TokenKind::kIdent)) {
      const Token t = peek();
      const auto it = constants_.find(t.text);
      if (it != constants_.end()) {
        take();
        return it->second;
      }
      fail("unknown constant '" + t.text + "'", t);
    }
    fail("expected a number", peek());
  }

  /// "layer.lane" coordinate or flat Dnode index.
  std::size_t parse_dnode_coord() {
    const Token first = peek();
    const auto a = parse_number();
    if (at(TokenKind::kDot)) {
      take();
      const auto b = parse_number();
      require_geometry(first);
      if (a < 0 || b < 0 ||
          static_cast<std::size_t>(a) >= program_.geometry.layers ||
          static_cast<std::size_t>(b) >= program_.geometry.lanes) {
        fail("dnode coordinate out of range", first);
      }
      return static_cast<std::size_t>(a) * program_.geometry.lanes +
             static_cast<std::size_t>(b);
    }
    require_geometry(first);
    if (a < 0 ||
        static_cast<std::size_t>(a) >= program_.geometry.dnode_count()) {
      fail("dnode index out of range", first);
    }
    return static_cast<std::size_t>(a);
  }

  void require_geometry(const Token& t) const {
    if (!have_geometry_) {
      fail("a .ring directive must precede this statement", t);
    }
  }

  // --- directives --------------------------------------------------------
  void parse_name() {
    take();
    program_.name = expect(TokenKind::kIdent, "program name").text;
    end_statement();
  }

  void parse_ring() {
    const Token t = take();
    if (have_geometry_) fail("duplicate .ring directive", t);
    program_.geometry.layers = static_cast<std::size_t>(parse_number());
    program_.geometry.lanes = static_cast<std::size_t>(parse_number());
    if (at(TokenKind::kNumber) || at(TokenKind::kIdent)) {
      program_.geometry.fb_depth = static_cast<std::size_t>(parse_number());
    }
    try {
      program_.geometry.validate();
    } catch (const SimError& e) {
      fail(e.what(), t);
    }
    have_geometry_ = true;
    end_statement();
  }

  void parse_equ() {
    take();
    const std::string name = expect(TokenKind::kIdent, "constant name").text;
    constants_[name] = parse_number();
    end_statement();
  }

  // --- controller section -------------------------------------------------
  struct LabelFixup {
    std::size_t instr_index;
    std::string label;
    Token token;
    bool is_page;  ///< page-name operand rather than branch target
  };

  void parse_controller() {
    take();
    end_statement();
    skip_newlines();
    while (!at(TokenKind::kEnd)) {
      const Token& t = peek();
      if (t.kind == TokenKind::kIdent && t.text[0] == '.') break;
      if (t.kind == TokenKind::kIdent &&
          peek(1).kind == TokenKind::kColon) {
        if (labels_.count(t.text) != 0) {
          fail("duplicate label '" + t.text + "'", t);
        }
        labels_[t.text] = instrs_.size();
        take();
        take();
        skip_newlines();
        continue;
      }
      parse_ctrl_instr();
      skip_newlines();
    }
  }

  std::uint8_t parse_reg() {
    const Token t = expect(TokenKind::kIdent, "register (r0..r15)");
    if (t.text.size() >= 2 && t.text[0] == 'r') {
      const auto n = parse_small_uint(std::string_view(t.text).substr(1));
      if (n && *n >= 0 && *n < static_cast<int>(kRiscRegCount)) {
        return static_cast<std::uint8_t>(*n);
      }
    }
    fail("expected a register r0..r15, found '" + t.text + "'", t);
  }

  /// Immediate operand that may be a label (branches) or page name.
  std::int32_t parse_imm_or_label(RiscOp op) {
    if (at(TokenKind::kIdent) &&
        constants_.count(peek().text) == 0) {
      const Token t = take();
      if (!is_branch(op) && op != RiscOp::kPage) {
        fail("unknown constant '" + t.text + "'", t);
      }
      fixups_.push_back(
          {instrs_.size(), t.text, t, op == RiscOp::kPage});
      return 0;
    }
    const auto v = parse_number();
    if (!fits_signed(v, 16) && !fits_unsigned(
                                   static_cast<std::uint64_t>(v), 16)) {
      fail("immediate does not fit in 16 bits", peek());
    }
    return static_cast<std::int32_t>(v);
  }

  void parse_ctrl_instr() {
    const Token t = expect(TokenKind::kIdent, "instruction mnemonic");
    const auto op = parse_risc_op(t.text);
    if (!op) fail("unknown controller mnemonic '" + t.text + "'", t);
    RiscInstr instr;
    instr.op = *op;
    switch (format_of(*op)) {
      case RiscFormat::kNone:
        break;
      case RiscFormat::kRdImm:
        instr.rd = parse_reg();
        expect(TokenKind::kComma, "','");
        instr.imm = parse_imm_or_label(*op);
        break;
      case RiscFormat::kRdRa:
        instr.rd = parse_reg();
        expect(TokenKind::kComma, "','");
        instr.ra = parse_reg();
        break;
      case RiscFormat::kRdRaRb:
        instr.rd = parse_reg();
        expect(TokenKind::kComma, "','");
        instr.ra = parse_reg();
        expect(TokenKind::kComma, "','");
        instr.rb = parse_reg();
        break;
      case RiscFormat::kRdRaImm:
        instr.rd = parse_reg();
        expect(TokenKind::kComma, "','");
        instr.ra = parse_reg();
        expect(TokenKind::kComma, "','");
        instr.imm = parse_imm_or_label(*op);
        break;
      case RiscFormat::kRaRbImm:
        instr.ra = parse_reg();
        expect(TokenKind::kComma, "','");
        instr.rb = parse_reg();
        expect(TokenKind::kComma, "','");
        instr.imm = parse_imm_or_label(*op);
        break;
      case RiscFormat::kImm:
        instr.imm = parse_imm_or_label(*op);
        break;
      case RiscFormat::kRa:
        instr.ra = parse_reg();
        break;
      case RiscFormat::kRd:
        instr.rd = parse_reg();
        break;
      case RiscFormat::kRaRb:
        instr.ra = parse_reg();
        expect(TokenKind::kComma, "','");
        instr.rb = parse_reg();
        break;
    }
    instrs_.push_back(instr);
    instr_tokens_.push_back(t);
    end_statement();
  }

  // --- ring-level microinstructions ---------------------------------------
  DnodeSrc parse_src(DnodeInstr& instr, const Token& where) {
    const Token t = expect(TokenKind::kIdent, "operand source");
    const auto src = parse_dnode_src(t.text);
    if (!src) fail("unknown operand source '" + t.text + "'", t);
    if (*src == DnodeSrc::kImm && at(TokenKind::kLParen)) {
      take();
      const auto v = parse_number();
      if (v < -32768 || v > 65535) {
        fail("immediate out of 16-bit range", t);
      }
      const Word w = to_word(v);
      if (imm_set_ && instr.imm != w) {
        fail("conflicting immediate values in one microinstruction",
             where);
      }
      instr.imm = w;
      imm_set_ = true;
      expect(TokenKind::kRParen, "')'");
    }
    return *src;
  }

  DnodeInstr parse_microinstr() {
    imm_set_ = false;
    const Token t = expect(TokenKind::kIdent, "Dnode mnemonic");
    const auto op = parse_dnode_op(t.text);
    if (!op) fail("unknown Dnode mnemonic '" + t.text + "'", t);
    DnodeInstr instr;
    instr.op = *op;
    if (*op != DnodeOp::kNop) {
      const Token dt = expect(TokenKind::kIdent, "destination");
      const auto dst = parse_dnode_dst(dt.text);
      if (!dst) fail("unknown destination '" + dt.text + "'", dt);
      instr.dst = *dst;
      expect(TokenKind::kComma, "','");
      instr.src_a = parse_src(instr, t);
      if (op_uses_b(*op)) {
        expect(TokenKind::kComma, "','");
        instr.src_b = parse_src(instr, t);
      }
      if (op_uses_c(*op)) {
        expect(TokenKind::kComma, "','");
        instr.src_c = parse_src(instr, t);
      }
    }
    // Optional flags.
    while (at(TokenKind::kIdent)) {
      const Token f = peek();
      if (f.text == "out") {
        instr.out_en = true;
      } else if (f.text == "bus") {
        instr.bus_en = true;
      } else if (f.text == "host") {
        instr.host_en = true;
      } else {
        break;
      }
      take();
    }
    return instr;
  }

  // --- page section --------------------------------------------------------
  void parse_page() {
    const Token t = take();
    require_geometry(t);
    const std::string name =
        at(TokenKind::kIdent) ? take().text
                              : std::to_string(program_.pages.size());
    if (page_names_.count(name) != 0) {
      fail("duplicate page name '" + name + "'", t);
    }
    page_names_[name] = program_.pages.size();
    end_statement();
    skip_newlines();

    ConfigPage page = ConfigPage::zeroed(program_.geometry);
    while (!at(TokenKind::kEnd)) {
      const Token& s = peek();
      if (s.kind == TokenKind::kIdent && s.text[0] == '.') break;
      if (s.is_ident("dnode")) {
        take();
        const std::size_t d = parse_dnode_coord();
        if (at(TokenKind::kIdent) && peek().text == "local") {
          take();
          page.dnode_mode[d] = static_cast<std::uint8_t>(DnodeMode::kLocal);
        } else if (at(TokenKind::kIdent) && peek().text == "global") {
          take();
          page.dnode_mode[d] =
              static_cast<std::uint8_t>(DnodeMode::kGlobal);
        } else {
          expect(TokenKind::kLBrace, "'{' or mode (local/global)");
          page.dnode_instr[d] = parse_microinstr().encode();
          expect(TokenKind::kRBrace, "'}'");
        }
        end_statement();
      } else if (s.is_ident("switch")) {
        take();
        parse_switch_entry(page);
        end_statement();
      } else {
        fail("expected 'dnode' or 'switch' in page section", s);
      }
      skip_newlines();
    }
    program_.pages.push_back(std::move(page));
  }

  FeedbackAddr parse_fb_addr(const Token& where) {
    expect(TokenKind::kLParen, "'('");
    FeedbackAddr a;
    const auto p = parse_number();
    expect(TokenKind::kComma, "','");
    const auto l = parse_number();
    expect(TokenKind::kComma, "','");
    const auto d = parse_number();
    expect(TokenKind::kRParen, "')'");
    if (p < 0 || static_cast<std::size_t>(p) >=
                     program_.geometry.switch_count() ||
        l < 0 || static_cast<std::size_t>(l) >= program_.geometry.lanes ||
        d < 0 ||
        static_cast<std::size_t>(d) >= program_.geometry.fb_depth) {
      fail("feedback address out of range for this geometry", where);
    }
    a.pipe = static_cast<std::uint8_t>(p);
    a.lane = static_cast<std::uint8_t>(l);
    a.depth = static_cast<std::uint8_t>(d);
    return a;
  }

  PortRoute parse_port_route(const Token& where) {
    const Token t = expect(TokenKind::kIdent, "port route");
    if (t.text == "zero") return PortRoute::zero();
    if (t.text == "host") return PortRoute::host();
    if (t.text == "bus") return PortRoute::bus();
    if (t.text == "fb") return PortRoute::feedback(parse_fb_addr(where));
    if (t.text.rfind("prev", 0) == 0 && t.text.size() > 4) {
      const auto lane =
          parse_small_uint(std::string_view(t.text).substr(4));
      if (lane && *lane >= 0 &&
          static_cast<std::size_t>(*lane) < program_.geometry.lanes) {
        return PortRoute::prev(static_cast<std::uint8_t>(*lane));
      }
      fail("prev lane out of range", t);
    }
    fail("unknown port route '" + t.text + "'", t);
  }

  void parse_switch_entry(ConfigPage& page) {
    const Token where = peek();
    // switch coordinate: "sw.lane" (switch index == downstream layer)
    const auto a = parse_number();
    std::size_t sw;
    std::size_t lane;
    if (at(TokenKind::kDot)) {
      take();
      const auto b = parse_number();
      sw = static_cast<std::size_t>(a);
      lane = static_cast<std::size_t>(b);
    } else {
      const auto flat = static_cast<std::size_t>(a);
      sw = flat / program_.geometry.lanes;
      lane = flat % program_.geometry.lanes;
    }
    if (sw >= program_.geometry.switch_count() ||
        lane >= program_.geometry.lanes) {
      fail("switch coordinate out of range", where);
    }
    SwitchRoute route;
    while (at(TokenKind::kIdent)) {
      const Token key = take();
      expect(TokenKind::kEqual, "'='");
      if (key.text == "in1") {
        route.in1 = parse_port_route(key);
      } else if (key.text == "in2") {
        route.in2 = parse_port_route(key);
      } else if (key.text == "fifo1") {
        const Token fb = expect(TokenKind::kIdent, "fb(...)");
        if (fb.text != "fb") fail("expected fb(pipe,lane,depth)", fb);
        route.fifo1 = parse_fb_addr(key);
      } else if (key.text == "fifo2") {
        const Token fb = expect(TokenKind::kIdent, "fb(...)");
        if (fb.text != "fb") fail("expected fb(pipe,lane,depth)", fb);
        route.fifo2 = parse_fb_addr(key);
      } else if (key.text == "hostout") {
        const Token v = expect(TokenKind::kIdent, "prev<lane>");
        if (v.text.rfind("prev", 0) != 0) {
          fail("hostout expects prev<lane>", v);
        }
        const auto l =
            parse_small_uint(std::string_view(v.text).substr(4));
        if (!l || *l < 0 ||
            static_cast<std::size_t>(*l) >= program_.geometry.lanes) {
          fail("hostout lane out of range", v);
        }
        route.host_out_en = true;
        route.host_out_lane = static_cast<std::uint8_t>(*l);
      } else {
        fail("unknown switch attribute '" + key.text + "'", key);
      }
    }
    page.switch_route[sw * program_.geometry.lanes + lane] =
        route.encode();
  }

  // --- local section --------------------------------------------------------
  void parse_local() {
    const Token t = take();
    require_geometry(t);
    const std::size_t d = parse_dnode_coord();
    skip_newlines();
    expect(TokenKind::kLBrace, "'{'");
    skip_newlines();
    std::size_t slot = 0;
    std::optional<std::int64_t> explicit_limit;
    while (!at(TokenKind::kRBrace)) {
      if (at(TokenKind::kIdent) && peek().text == "limit") {
        take();
        explicit_limit = parse_number();
      } else {
        if (slot >= kLocalProgramSlots) {
          fail("local program exceeds 8 microinstructions", peek());
        }
        const DnodeInstr instr = parse_microinstr();
        program_.local_init.push_back(
            {static_cast<std::uint32_t>(d), static_cast<std::uint8_t>(slot),
             instr.encode()});
        ++slot;
      }
      if (!at(TokenKind::kRBrace)) end_statement();
      skip_newlines();
    }
    take();  // '}'
    const std::int64_t limit =
        explicit_limit.value_or(slot == 0 ? 0
                                          : static_cast<std::int64_t>(slot) -
                                                1);
    if (limit < 0 ||
        limit >= static_cast<std::int64_t>(kLocalProgramSlots)) {
      fail("local program LIMIT out of range", t);
    }
    program_.local_init.push_back(
        {static_cast<std::uint32_t>(d),
         static_cast<std::uint8_t>(LocalControl::kLimitSlot),
         static_cast<std::uint64_t>(limit)});
    end_statement();
  }

  // --- finalization -----------------------------------------------------------
  void finalize() {
    for (const auto& fix : fixups_) {
      if (fix.is_page) {
        const auto it = page_names_.find(fix.label);
        if (it == page_names_.end()) {
          fail("unknown page '" + fix.label + "'", fix.token);
        }
        instrs_[fix.instr_index].imm =
            static_cast<std::int32_t>(it->second);
        continue;
      }
      const auto it = labels_.find(fix.label);
      if (it == labels_.end()) {
        fail("unknown label '" + fix.label + "'", fix.token);
      }
      const auto target = static_cast<std::int64_t>(it->second);
      const auto from = static_cast<std::int64_t>(fix.instr_index) + 1;
      const std::int64_t offset = target - from;
      if (!fits_signed(offset, 16)) {
        fail("branch target out of range", fix.token);
      }
      instrs_[fix.instr_index].imm = static_cast<std::int32_t>(offset);
    }
    program_.controller_code.reserve(instrs_.size());
    for (std::size_t i = 0; i < instrs_.size(); ++i) {
      try {
        program_.controller_code.push_back(instrs_[i].encode());
      } catch (const SimError& e) {
        fail(e.what(), instr_tokens_[i]);
      }
    }
    if (!have_geometry_) {
      throw AsmError("program has no .ring directive", 1, 1);
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  LoadableProgram program_;
  bool have_geometry_ = false;
  bool imm_set_ = false;
  std::map<std::string, std::int64_t> constants_;
  std::map<std::string, std::size_t> labels_;
  std::map<std::string, std::size_t> page_names_;
  std::vector<RiscInstr> instrs_;
  std::vector<Token> instr_tokens_;
  std::vector<LabelFixup> fixups_;
};

}  // namespace

LoadableProgram assemble(std::string_view source) {
  return Parser(source).parse();
}

}  // namespace sring
