// Token-level macro preprocessor for the assembler.
//
//   .macro tap LAYER COEF
//       dnode  LAYER.0 { pass none, in1 out }
//       switch LAYER.0 in1=fb(LAYER,0,0)
//       dnode  LAYER.1 { mac none, in1, imm(COEF), in2 out }
//       switch LAYER.1 in1=prev0 in2=prev1
//   .endm
//
//   tap 1 2
//   tap 2 -3
//
// Invocation: the macro name at statement start, followed by one
// argument token per parameter.  Parameters substitute wherever their
// identifier appears in the body.  Macros may invoke earlier-defined
// macros (expansion depth is bounded to catch accidental recursion).
#pragma once

#include <vector>

#include "asm/token.hpp"

namespace sring {

/// Expand .macro/.endm definitions and their invocations; throws
/// AsmError on malformed definitions, arity mismatches, or runaway
/// recursion.
std::vector<Token> expand_macros(std::vector<Token> tokens);

}  // namespace sring
