// Binary object-file format for assembled Systolic Ring programs —
// the "machine object code, ready to be executed in the architecture"
// of paper §5.1, and what the PRG memory of the fig. 6 prototype holds.
//
// Layout (little-endian):
//   u32 magic "SRGO"   u32 version
//   u32 name length, bytes
//   u32 layers, u32 lanes, u32 fb_depth
//   u32 controller word count, u32 words...
//   u32 page count; per page: dnode_count x u64 instrs,
//       dnode_count x u8 modes, switch_count*lanes x u64 routes
//   u32 local-init count; per entry: u32 dnode, u8 slot, u64 value
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/program.hpp"

namespace sring {

/// Serialize to the binary object format.
std::vector<std::uint8_t> serialize_program(const LoadableProgram& program);

/// Parse a binary object; throws SimError on a malformed image.
LoadableProgram deserialize_program(const std::vector<std::uint8_t>& bytes);

/// File convenience wrappers (throw SimError on I/O failure).
void save_program(const LoadableProgram& program, const std::string& path);
LoadableProgram load_program(const std::string& path);

}  // namespace sring
