#include "asm/macro.hpp"

#include <map>
#include <string>

#include "common/error.hpp"

namespace sring {

namespace {

struct Macro {
  std::vector<std::string> params;
  std::vector<Token> body;  // without the trailing .endm
};

constexpr int kMaxExpansionDepth = 16;

class Expander {
 public:
  explicit Expander(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    std::size_t i = 0;
    bool at_statement_start = true;
    while (i < tokens_.size()) {
      const Token& t = tokens_[i];
      if (t.is_ident(".macro")) {
        i = parse_definition(i);
        at_statement_start = true;
        continue;
      }
      if (t.is_ident(".endm")) {
        throw AsmError(".endm without .macro", t.line, t.column);
      }
      if (at_statement_start && t.kind == TokenKind::kIdent &&
          macros_.count(t.text) != 0) {
        i = expand_invocation(i, out, 0);
        at_statement_start = true;
        continue;
      }
      at_statement_start = t.kind == TokenKind::kNewline;
      out.push_back(t);
      ++i;
    }
    return out;
  }

 private:
  /// Parse ".macro NAME p1 p2 ... NL body .endm"; returns the index
  /// just past the definition.
  std::size_t parse_definition(std::size_t i) {
    const Token& head = tokens_[i];
    ++i;  // .macro
    if (i >= tokens_.size() || tokens_[i].kind != TokenKind::kIdent) {
      throw AsmError("expected macro name after .macro", head.line,
                     head.column);
    }
    const std::string name = tokens_[i].text;
    if (macros_.count(name) != 0) {
      throw AsmError("duplicate macro '" + name + "'", tokens_[i].line,
                     tokens_[i].column);
    }
    ++i;
    Macro macro;
    while (i < tokens_.size() &&
           tokens_[i].kind == TokenKind::kIdent) {
      macro.params.push_back(tokens_[i].text);
      ++i;
    }
    if (i >= tokens_.size() || tokens_[i].kind != TokenKind::kNewline) {
      throw AsmError("expected end of line after macro parameters",
                     head.line, head.column);
    }
    ++i;  // newline
    // Collect the body until the matching .endm.
    while (i < tokens_.size() && !tokens_[i].is_ident(".endm")) {
      if (tokens_[i].kind == TokenKind::kEnd ||
          tokens_[i].is_ident(".macro")) {
        throw AsmError("unterminated macro '" + name + "'", head.line,
                       head.column);
      }
      macro.body.push_back(tokens_[i]);
      ++i;
    }
    if (i >= tokens_.size()) {
      throw AsmError("unterminated macro '" + name + "'", head.line,
                     head.column);
    }
    ++i;  // .endm
    macros_.emplace(name, std::move(macro));
    return i;
  }

  /// Expand one invocation starting at index i; appends to `out` and
  /// returns the index just past the argument list.
  std::size_t expand_invocation(std::size_t i, std::vector<Token>& out,
                                int depth) {
    const Token& head = tokens_[i];
    if (depth >= kMaxExpansionDepth) {
      throw AsmError("macro expansion too deep (recursive macro?)",
                     head.line, head.column);
    }
    const Macro& macro = macros_.at(head.text);
    ++i;
    // One argument token per parameter (numbers or identifiers).
    std::map<std::string, Token> args;
    for (const std::string& param : macro.params) {
      if (i >= tokens_.size() ||
          (tokens_[i].kind != TokenKind::kNumber &&
           tokens_[i].kind != TokenKind::kIdent)) {
        throw AsmError("macro '" + head.text + "' expects " +
                           std::to_string(macro.params.size()) +
                           " argument(s)",
                       head.line, head.column);
      }
      args.emplace(param, tokens_[i]);
      ++i;
    }
    if (i < tokens_.size() && tokens_[i].kind != TokenKind::kNewline &&
        tokens_[i].kind != TokenKind::kEnd) {
      throw AsmError("too many arguments to macro '" + head.text + "'",
                     tokens_[i].line, tokens_[i].column);
    }

    // Substitute and splice, re-expanding nested invocations.
    bool at_statement_start = true;
    for (std::size_t b = 0; b < macro.body.size(); ++b) {
      Token t = macro.body[b];
      if (t.kind == TokenKind::kIdent) {
        const auto it = args.find(t.text);
        if (it != args.end()) {
          // Substituted tokens keep the invocation site's location.
          t = it->second;
          t.line = head.line;
          t.column = head.column;
          out.push_back(t);
          at_statement_start = false;
          continue;
        }
        if (at_statement_start && macros_.count(t.text) != 0) {
          // Nested invocation: gather its argument tokens from the
          // (already substituted) body.
          b = expand_nested(macro, args, b, out, depth + 1);
          at_statement_start = true;
          continue;
        }
      }
      at_statement_start = t.kind == TokenKind::kNewline;
      out.push_back(t);
    }
    return i;
  }

  /// Expand a macro invocation that appears inside another macro's
  /// body; returns the body index just past the nested argument list.
  std::size_t expand_nested(const Macro& outer,
                            const std::map<std::string, Token>& args,
                            std::size_t b, std::vector<Token>& out,
                            int depth) {
    const Token head = outer.body[b];
    if (depth >= kMaxExpansionDepth) {
      throw AsmError("macro expansion too deep (recursive macro?)",
                     head.line, head.column);
    }
    const Macro& macro = macros_.at(head.text);
    ++b;
    std::map<std::string, Token> nested_args;
    for (const std::string& param : macro.params) {
      if (b >= outer.body.size() ||
          (outer.body[b].kind != TokenKind::kNumber &&
           outer.body[b].kind != TokenKind::kIdent)) {
        throw AsmError("macro '" + head.text + "' expects " +
                           std::to_string(macro.params.size()) +
                           " argument(s)",
                       head.line, head.column);
      }
      Token arg = outer.body[b];
      if (arg.kind == TokenKind::kIdent) {
        const auto it = args.find(arg.text);
        if (it != args.end()) arg = it->second;
      }
      nested_args.emplace(param, arg);
      ++b;
    }
    bool at_statement_start = true;
    for (std::size_t nb = 0; nb < macro.body.size(); ++nb) {
      Token t = macro.body[nb];
      if (t.kind == TokenKind::kIdent) {
        const auto it = nested_args.find(t.text);
        if (it != nested_args.end()) {
          t = it->second;
          out.push_back(t);
          at_statement_start = false;
          continue;
        }
        if (at_statement_start && macros_.count(t.text) != 0) {
          nb = expand_nested(macro, nested_args, nb, out, depth + 1);
          at_statement_start = true;
          continue;
        }
      }
      at_statement_start = t.kind == TokenKind::kNewline;
      out.push_back(t);
    }
    // Callers advance with ++b: hand back the last consumed index.
    return b - 1;
  }

  std::vector<Token> tokens_;
  std::map<std::string, Macro> macros_;
};

}  // namespace

std::vector<Token> expand_macros(std::vector<Token> tokens) {
  return Expander(std::move(tokens)).run();
}

}  // namespace sring
