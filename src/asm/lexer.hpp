// Lexer for the Systolic Ring assembly language.
//
// Comments run from ';' or '#' to end of line.  Newlines are
// significant (statement separators).  Identifiers may start with '.'
// (directives) or a letter/underscore; numbers accept decimal,
// 0x-hex and 0b-binary with an optional leading '-'.
#pragma once

#include <string_view>
#include <vector>

#include "asm/token.hpp"

namespace sring {

/// Tokenize the whole input; throws AsmError on a bad character or
/// malformed number.  The result always ends with a kEnd token.
std::vector<Token> lex(std::string_view source);

}  // namespace sring
