#include "model/perf.hpp"

namespace sring::model {

double peak_mips(std::size_t dnodes, double frequency_mhz) {
  return static_cast<double>(dnodes) * frequency_mhz;
}

double peak_mops(std::size_t dnodes, double frequency_mhz) {
  return 2.0 * peak_mips(dnodes, frequency_mhz);
}

double peak_bandwidth_bytes_per_s(std::size_t dnodes,
                                  double frequency_mhz) {
  return static_cast<double>(dnodes) * 2.0 * frequency_mhz * 1e6;
}

double sustained_mips(const SystemStats& stats, double frequency_mhz) {
  if (stats.cycles == 0) return 0.0;
  const double seconds =
      static_cast<double>(stats.cycles) / (frequency_mhz * 1e6);
  return static_cast<double>(stats.dnode_ops) / seconds / 1e6;
}

double sustained_bandwidth_bytes_per_s(const SystemStats& stats,
                                       double frequency_mhz) {
  if (stats.cycles == 0) return 0.0;
  const double seconds =
      static_cast<double>(stats.cycles) / (frequency_mhz * 1e6);
  return 2.0 *
         static_cast<double>(stats.host_words_in + stats.host_words_out) /
         seconds;
}

}  // namespace sring::model
