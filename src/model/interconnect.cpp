#include "model/interconnect.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sring::model {

std::string to_string(Topology t) {
  switch (t) {
    case Topology::kRing:
      return "ring";
    case Topology::kMesh:
      return "mesh";
    case Topology::kCrossbar:
      return "crossbar";
    case Topology::kArray:
      return "array";
  }
  return "?";
}

double longest_wire_pitches(Topology t, std::size_t dnodes) {
  check(dnodes >= 1, "longest_wire_pitches: need at least one Dnode");
  const double n = static_cast<double>(dnodes);
  switch (t) {
    case Topology::kRing:
      // Adjacent layers only; the feedback pipelines are registered
      // every stage, so no combinational wire grows with N.
      return 1.0;
    case Topology::kMesh:
      // Long-line overlays span the die edge: ~sqrt(N) pitches.
      return std::sqrt(n);
    case Topology::kCrossbar:
      // Any block to any block across the crossbar spine: ~N pitches
      // of total traversal in one cycle.
      return n;
    case Topology::kArray:
      // Pipeline neighbours are local, but feedback returns cross the
      // whole array: ~N/2 on average, N worst case.
      return std::max(1.0, n / 2.0);
  }
  return 1.0;
}

double interconnect_area_dnodes(Topology t, std::size_t dnodes) {
  check(dnodes >= 1, "interconnect_area_dnodes: need at least one Dnode");
  const double n = static_cast<double>(dnodes);
  switch (t) {
    case Topology::kRing:
      // One switch + one feedback pipeline per layer: linear, small
      // constant (fitted ~0.2 Dnode-equivalents per Dnode in tech.cpp).
      return 0.2 * n;
    case Topology::kMesh:
      // Per-block routing channels plus sqrt(N) long lines per row and
      // column: ~0.9 per block plus the overlay.
      return 0.9 * n + 0.5 * std::sqrt(n) * std::sqrt(n);
    case Topology::kCrossbar:
      // N x N crosspoints at ~1/50 Dnode each: quadratic.
      return n * n / 50.0;
    case Topology::kArray:
      // Linear channels plus dedicated feedback busses (~one bus lane
      // per four blocks spanning the array).
      return 0.4 * n + n * std::sqrt(n) / 16.0;
  }
  return 0.0;
}

double relative_frequency(Topology t, std::size_t dnodes,
                          double wire_tax_per_pitch) {
  const double wire = longest_wire_pitches(t, dnodes);
  return 1.0 / (1.0 + wire_tax_per_pitch * (wire - 1.0));
}

}  // namespace sring::model
