// Peak-rate accounting for the comparative-results section (§5.1):
// raw MIPS, host bandwidth, and sustained figures from simulation
// statistics.
#pragma once

#include <cstddef>

#include "sim/stats.hpp"

namespace sring::model {

/// Peak instruction rate: one Dnode microinstruction per cycle.
/// Ring-8 at 200 MHz -> 1600 MIPS (the paper's headline).
double peak_mips(std::size_t dnodes, double frequency_mhz);

/// Peak arithmetic-op rate counting MAC as two operations.
double peak_mops(std::size_t dnodes, double frequency_mhz);

/// Theoretical host bandwidth: every Dnode can consume one 16-bit word
/// per cycle (two input ports exist, but the switch host path is one
/// word per Dnode per cycle in the paper's 3 GB/s figure for Ring-8 at
/// 200 MHz -> 8 * 2 bytes * 200e6 = 3.2e9).
double peak_bandwidth_bytes_per_s(std::size_t dnodes,
                                  double frequency_mhz);

/// Sustained MIPS achieved by a simulation run at a given clock.
double sustained_mips(const SystemStats& stats, double frequency_mhz);

/// Sustained host data rate of a run (both directions), bytes/s.
double sustained_bandwidth_bytes_per_s(const SystemStats& stats,
                                       double frequency_mhz);

}  // namespace sring::model
