#include "model/offload.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sring::model {

OffloadAnalysis analyze_offload(const OffloadScenario& s) {
  check(s.host_cycles_per_sample > 0 && s.host_clock_hz > 0 &&
            s.ring_cycles_per_sample > 0 && s.ring_clock_hz > 0 &&
            s.link_bytes_per_s > 0 && s.bytes_per_sample > 0,
        "analyze_offload: rates must be positive");
  const double n = static_cast<double>(s.samples);
  OffloadAnalysis a;
  a.host_only_s = n * s.host_cycles_per_sample / s.host_clock_hz;
  a.ring_compute_s = n * s.ring_cycles_per_sample / s.ring_clock_hz;
  a.transfer_s = n * s.bytes_per_sample / s.link_bytes_per_s;
  a.offload_total_s = s.startup_cycles / s.ring_clock_hz +
                      std::max(a.ring_compute_s, a.transfer_s);
  a.speedup =
      a.offload_total_s > 0 ? a.host_only_s / a.offload_total_s : 0.0;
  a.offload_wins = a.offload_total_s < a.host_only_s;
  return a;
}

std::size_t break_even_samples(OffloadScenario scenario,
                               std::size_t limit) {
  // The per-sample offload cost is max(compute, transfer); if that
  // already exceeds the host's per-sample cost, no stream length wins.
  scenario.samples = 1;
  const OffloadAnalysis unit = analyze_offload(scenario);
  const double host_per_sample = unit.host_only_s;
  const double offload_per_sample =
      std::max(unit.ring_compute_s, unit.transfer_s);
  if (offload_per_sample >= host_per_sample) return 0;

  // Binary search the smallest winning N.
  std::size_t lo = 1;
  std::size_t hi = limit;
  scenario.samples = hi;
  if (!analyze_offload(scenario).offload_wins) return 0;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    scenario.samples = mid;
    if (analyze_offload(scenario).offload_wins) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace sring::model
