// Technology / area / frequency model (paper Table 3, Table 2 area
// row, and fig. 7's Ring-64).
//
// The paper's published anchors (Synopsys Design Compiler estimates on
// ST CMOS):
//
//   Table 3:  0.25 um: Dnode 0.06 mm2, Ring-8 core 0.9 mm2, 180 MHz
//             0.18 um: Dnode 0.04 mm2, Ring-8 core 0.7 mm2, 200 MHz
//   Table 2:  Ring-16 area 1.4 mm2 (0.25 um), 200 MHz quoted clock
//   Fig 7:    Ring-64 3.4 mm2 at 0.18 um
//
// Model: core_area(N) = fixed + N * (dnode_area + per_dnode_overhead),
// i.e. a fixed controller block plus linear Dnode + configuration +
// switch cost.  The two per-technology coefficients are fitted to the
// published Ring-8 anchor and the second published point of that node
// (Ring-16 at 0.25 um, Ring-64 at 0.18 um), after which the model
// reproduces every published area in the paper exactly — the unit
// tests pin this.  Frequency is modeled as size-independent, which is
// precisely the paper's §4.2 scalability claim (no long-distance
// routing, so the critical path does not grow with the ring).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sring::model {

struct TechNode {
  std::string name;              ///< e.g. "0.18um"
  double feature_um = 0.18;
  double dnode_area_mm2 = 0.04;  ///< Table 3 anchor
  double fixed_area_mm2 = 0.0;   ///< fitted controller block
  double per_dnode_overhead_mm2 = 0.0;  ///< fitted config+switch share
  double frequency_mhz = 200.0;  ///< Table 3 anchor
};

/// The paper's two ST CMOS nodes with fitted coefficients.
TechNode tech_025um();
TechNode tech_018um();

/// Core area of a Ring-N instance (Dnodes + switches + configuration
/// layer + controller) in mm².
double core_area_mm2(const TechNode& tech, std::size_t dnodes);

/// Dnode-only silicon share, for utilization-of-area style breakdowns.
double dnode_area_share(const TechNode& tech, std::size_t dnodes);

/// Estimated clock (MHz); constant in N by the routing-free argument.
double frequency_mhz(const TechNode& tech, std::size_t dnodes);

}  // namespace sring::model
