// Interconnect scalability comparison (paper §4.2).
//
// The paper's architectural argument: mesh-based, crossbar-based and
// 2-D array operating layers all hit routing walls as reconfigurable
// networks grow ("die-long interconnections cause hard timing
// problems"), while the ring + feedback-pipeline structure keeps every
// wire local, "removing" the routing problem.
//
// This module turns that prose into first-order analytic models so the
// claim can be plotted (bench_interconnect).  Units are normalized:
// wire lengths in Dnode pitches, areas in Dnode-equivalents.  The
// constants are standard first-order VLSI estimates (bisection-style
// reasoning), documented per topology; the point reproduced is the
// asymptotic *shape*, not absolute micrometers.
#pragma once

#include <cstddef>
#include <string>

namespace sring::model {

enum class Topology {
  kRing,      ///< this paper: adjacent-layer switches + feedback pipes
  kMesh,      ///< 2-D nearest-neighbour mesh with long-line overlays
  kCrossbar,  ///< full crossbar between all blocks
  kArray,     ///< 1-D/2-D pipeline array with global feedback busses
};

std::string to_string(Topology t);

/// Longest wire a signal must cross in one cycle, in Dnode pitches.
/// Sets the critical path: frequency ~ 1 / (datapath + wire delay).
double longest_wire_pitches(Topology t, std::size_t dnodes);

/// Interconnect area overhead in Dnode-equivalents.
double interconnect_area_dnodes(Topology t, std::size_t dnodes);

/// Relative achievable frequency (1.0 = wire-free datapath limit),
/// using a linear wire-delay tax per pitch.
double relative_frequency(Topology t, std::size_t dnodes,
                          double wire_tax_per_pitch = 0.02);

}  // namespace sring::model
