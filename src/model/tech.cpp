#include "model/tech.hpp"

#include "common/error.hpp"

namespace sring::model {

TechNode tech_025um() {
  TechNode t;
  t.name = "0.25um";
  t.feature_um = 0.25;
  t.dnode_area_mm2 = 0.06;
  t.frequency_mhz = 180.0;
  // Fit to Ring-8 = 0.9 mm2 and Ring-16 = 1.4 mm2 (Table 2):
  //   fixed + 8*(0.06+p) = 0.9 ; fixed + 16*(0.06+p) = 1.4
  //   => 8*(0.06+p) = 0.5 => p = 0.0025, fixed = 0.4
  t.per_dnode_overhead_mm2 = 0.0025;
  t.fixed_area_mm2 = 0.4;
  return t;
}

TechNode tech_018um() {
  TechNode t;
  t.name = "0.18um";
  t.feature_um = 0.18;
  t.dnode_area_mm2 = 0.04;
  t.frequency_mhz = 200.0;
  // Fit to Ring-8 = 0.7 mm2 (Table 3) and Ring-64 = 3.4 mm2 (fig. 7):
  //   8*(0.04+p) + fixed = 0.7 ; 64*(0.04+p) + fixed = 3.4
  //   => 56*(0.04+p) = 2.7 => p = 0.00821428..., fixed = 0.31428...
  t.per_dnode_overhead_mm2 = 2.7 / 56.0 - 0.04;
  t.fixed_area_mm2 = 0.7 - 8.0 * (2.7 / 56.0);
  return t;
}

double core_area_mm2(const TechNode& tech, std::size_t dnodes) {
  check(dnodes >= 1, "core_area_mm2: need at least one Dnode");
  return tech.fixed_area_mm2 +
         static_cast<double>(dnodes) *
             (tech.dnode_area_mm2 + tech.per_dnode_overhead_mm2);
}

double dnode_area_share(const TechNode& tech, std::size_t dnodes) {
  return static_cast<double>(dnodes) * tech.dnode_area_mm2 /
         core_area_mm2(tech, dnodes);
}

double frequency_mhz(const TechNode& tech, std::size_t dnodes) {
  check(dnodes >= 1, "frequency_mhz: need at least one Dnode");
  // Size-independent by construction: the ring's switches only connect
  // adjacent layers and the feedback pipelines replace long wires, so
  // the critical path is the Dnode datapath at every size (§4.2).
  return tech.frequency_mhz;
}

}  // namespace sring::model
