// Host-vs-accelerator offload analysis (paper §1/§3: the ring is "not
// intended to be a stand-alone solution, rather an IP core accelerator
// ... the µP can confide the most demanding part of a given
// application to our IP core").
//
// First-order pipelined-offload model: the host streams operands over
// the link while the ring computes, so steady-state throughput is
// bounded by max(compute rate, transfer rate) and a fixed startup
// latency (configuration upload + pipeline fill) is amortized over the
// stream.  The same quantities are measurable in the simulator
// (System + LinkRate), which the tests use to validate the model.
#pragma once

#include <cstddef>

namespace sring::model {

struct OffloadScenario {
  std::size_t samples = 0;
  double host_cycles_per_sample = 0;  ///< scalar-CPU cost of the kernel
  double host_clock_hz = 450e6;       ///< the paper's Pentium II 450
  double ring_cycles_per_sample = 1;  ///< measured kernel throughput
  double ring_clock_hz = 200e6;       ///< Table 3, 0.18 um
  double link_bytes_per_s = 250e6;    ///< the paper's PCI figure
  double bytes_per_sample = 4;        ///< operands in + results out
  double startup_cycles = 64;         ///< config upload + pipeline fill
};

struct OffloadAnalysis {
  double host_only_s = 0;      ///< compute everything on the host
  double ring_compute_s = 0;   ///< ring compute time alone
  double transfer_s = 0;       ///< link time alone
  double offload_total_s = 0;  ///< startup + pipelined max(compute, xfer)
  double speedup = 0;          ///< host_only / offload_total
  bool offload_wins = false;
};

/// Evaluate one scenario.
OffloadAnalysis analyze_offload(const OffloadScenario& scenario);

/// Smallest stream length for which offloading beats the host (or 0 if
/// it never does — e.g. the link is slower than the host computes).
std::size_t break_even_samples(OffloadScenario scenario,
                               std::size_t limit = 1 << 24);

}  // namespace sring::model
