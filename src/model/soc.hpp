// Fig. 7: "a foreseeable SoC" — a 4 mm x 3 mm, 0.18 um die combining a
// 64-Dnode Systolic Ring (3.4 mm2) with an ARM7TDMI core (0.54 mm2),
// flash, CAN and converters.  This module reproduces the floorplan
// budget as a checkable inventory.
#pragma once

#include <string>
#include <vector>

namespace sring::model {

struct SocBlock {
  std::string name;
  double area_mm2 = 0.0;
  std::string note;
};

struct SocFloorplan {
  double die_width_mm = 4.0;
  double die_height_mm = 3.0;
  std::vector<SocBlock> blocks;

  double die_area_mm2() const noexcept {
    return die_width_mm * die_height_mm;
  }
  double used_area_mm2() const;
  double free_area_mm2() const { return die_area_mm2() - used_area_mm2(); }

  /// True when every block fits inside the die budget.
  bool fits() const { return used_area_mm2() <= die_area_mm2(); }

  std::string to_string() const;
};

/// The paper's fig. 7 instance (Ring-64 + ARM7TDMI + peripherals).
SocFloorplan foreseeable_soc();

}  // namespace sring::model
