#include "model/soc.hpp"

#include <cstdio>

#include "model/tech.hpp"

namespace sring::model {

double SocFloorplan::used_area_mm2() const {
  double sum = 0.0;
  for (const auto& b : blocks) sum += b.area_mm2;
  return sum;
}

std::string SocFloorplan::to_string() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-14s %8s  %s\n", "block",
                "area/mm2", "note");
  out += line;
  for (const auto& b : blocks) {
    std::snprintf(line, sizeof(line), "%-14s %8.2f  %s\n", b.name.c_str(),
                  b.area_mm2, b.note.c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "die %.0fx%.0f mm = %.1f mm2, used %.2f mm2, free %.2f "
                "mm2 (wiring/pads)\n",
                die_width_mm, die_height_mm, die_area_mm2(),
                used_area_mm2(), free_area_mm2());
  out += line;
  return out;
}

SocFloorplan foreseeable_soc() {
  SocFloorplan soc;
  const TechNode tech = tech_018um();
  soc.blocks = {
      {"ring64", core_area_mm2(tech, 64),
       "64-Dnode Systolic Ring, fast data-oriented computation"},
      {"arm7tdmi", 0.54, "32-bit ARM RISC core (WindowsCE/EPOC32/Linux)"},
      {"flash", 2.2, "code + configware storage"},
      {"sram", 1.6, "working memory"},
      {"can", 0.4, "field bus interface"},
      {"adc_dac", 0.8, "CAN/CNA converters"},
      {"misc_io", 0.6, "clocking, power, pads share"},
  };
  return soc;
}

}  // namespace sring::model
