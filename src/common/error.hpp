// Error handling for the Systolic Ring toolchain.
//
// Two families:
//  * SimError  — a model invariant was violated (bad configuration,
//    out-of-range index).  These indicate misuse of the API.
//  * AsmError  — user-facing assembler/loader diagnostics, carrying a
//    source location.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace sring {

/// Violation of a simulator invariant or misconfiguration.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Assembler / object-file diagnostic with a source position.
class AsmError : public std::runtime_error {
 public:
  AsmError(std::string message, std::size_t line, std::size_t column);

  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Throw SimError with `message` if `condition` is false.
void check(bool condition, const std::string& message);

}  // namespace sring
