// Error handling for the Systolic Ring toolchain.
//
// Two families:
//  * SimError  — a model invariant was violated (bad configuration,
//    out-of-range index).  These indicate misuse of the API.
//  * AsmError  — user-facing assembler/loader diagnostics, carrying a
//    source location.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace sring {

/// Violation of a simulator invariant or misconfiguration.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Assembler / object-file diagnostic with a source position.
class AsmError : public std::runtime_error {
 public:
  AsmError(std::string message, std::size_t line, std::size_t column);

  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Cold path of check(): always throws SimError(message).
[[noreturn]] void raise_sim_error(const char* message);

/// Throw SimError with `message` if `condition` is false.
///
/// The literal overload is the one hot paths hit: it must not build a
/// std::string per call (the old signature heap-allocated the message
/// on every call, passing or failing — measurable in the cycle loop),
/// so the failure path is out-of-line and the success path is a single
/// predictable branch.
inline void check(bool condition, const char* message) {
  if (!condition) [[unlikely]] raise_sim_error(message);
}
void check(bool condition, const std::string& message);

}  // namespace sring
