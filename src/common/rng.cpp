#include "common/rng.hpp"

namespace sring {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : s0_(0), s1_(0) {
  std::uint64_t sm = seed;
  s0_ = splitmix64(sm);
  s1_ = splitmix64(sm);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift128+ must not be all-zero
}

std::uint64_t Rng::next_u64() noexcept {
  std::uint64_t x = s0_;
  const std::uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Modulo bias is negligible for the small bounds used in workloads.
  return bound == 0 ? 0 : next_u64() % bound;
}

Word Rng::next_word() noexcept {
  return static_cast<Word>(next_u64() & 0xFFFFu);
}

Word Rng::next_word_in(std::int32_t lo, std::int32_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo + 1);
  return to_word(lo + static_cast<std::int64_t>(next_below(span)));
}

}  // namespace sring
