#include "common/error.hpp"

namespace sring {

namespace {
std::string format_asm_error(const std::string& message, std::size_t line,
                             std::size_t column) {
  return "line " + std::to_string(line) + ":" + std::to_string(column) +
         ": " + message;
}
}  // namespace

AsmError::AsmError(std::string message, std::size_t line, std::size_t column)
    : std::runtime_error(format_asm_error(message, line, column)),
      line_(line),
      column_(column) {}

void raise_sim_error(const char* message) { throw SimError(message); }

void check(bool condition, const std::string& message) {
  if (!condition) throw SimError(message);
}

}  // namespace sring
