// Minimal grayscale image container used by the motion-estimation and
// wavelet workloads and the Fig-6 prototype example (video memory dump).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace sring {

/// Row-major 16-bit grayscale image.
class Image {
 public:
  Image() = default;
  Image(std::size_t width, std::size_t height, Word fill = 0);

  std::size_t width() const noexcept { return width_; }
  std::size_t height() const noexcept { return height_; }
  std::size_t size() const noexcept { return pixels_.size(); }

  Word& at(std::size_t x, std::size_t y);
  Word at(std::size_t x, std::size_t y) const;

  /// Clamped access: coordinates outside the image read the nearest
  /// border pixel (standard DSP boundary extension).
  Word at_clamped(std::ptrdiff_t x, std::ptrdiff_t y) const;

  const std::vector<Word>& pixels() const noexcept { return pixels_; }
  std::vector<Word>& pixels() noexcept { return pixels_; }

  bool operator==(const Image& other) const = default;

  /// Synthetic test pattern: smooth gradient plus deterministic noise,
  /// 8-bit range — a stand-in for the camera frames the paper used.
  static Image synthetic(std::size_t width, std::size_t height,
                         std::uint64_t seed);

  /// `other` shifted by (dx, dy) with border clamp and mild noise; used
  /// to build motion-estimation frame pairs with a known true motion.
  static Image shifted(const Image& src, int dx, int dy,
                       std::uint64_t noise_seed, int noise_amp);

  /// Serialize as binary 8-bit PGM (values clamped to 0..255); the
  /// prototype example uses this as its "VGA monitor".
  std::string to_pgm() const;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<Word> pixels_;
};

}  // namespace sring
