// Flat host-FIFO: the word queue between the host interface and the
// ring / configuration controller.
//
// The simulator's hottest memory operation is popping one host word per
// operand route per cycle.  A std::deque pays block-map indirection and
// a branch per pop; this FIFO stores the live window in one contiguous
// std::vector and pops by bumping a cursor.  Consumed prefix storage is
// reclaimed lazily on the push side (when the fifo drains empty, or
// when the dead prefix dominates the buffer), so both push_back and
// pop_front are amortized O(1) and the pop fast path is a single
// indexed load plus an increment — what the superstep engine's fused
// cycle loop needs.
//
// Like std::deque, front()/pop_front() on an empty fifo are undefined;
// every simulator pop site is preceded by the ring's host-pop stall
// check or an explicit empty() test.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace sring {

class HostFifo {
 public:
  std::size_t size() const noexcept { return buf_.size() - head_; }
  bool empty() const noexcept { return head_ == buf_.size(); }

  Word front() const noexcept { return buf_[head_]; }

  /// Peek at the i-th live word (0 = front).
  Word at(std::size_t i) const noexcept { return buf_[head_ + i]; }

  void pop_front() noexcept { ++head_; }

  /// Pop and return the front word (the hot-path form).
  Word pop() noexcept { return buf_[head_++]; }

  void push_back(Word w) {
    reclaim();
    buf_.push_back(w);
  }

  void append(std::span<const Word> words) {
    reclaim();
    buf_.insert(buf_.end(), words.begin(), words.end());
  }

  void assign(std::initializer_list<Word> words) {
    clear();
    buf_.assign(words);
  }

  void clear() noexcept {
    buf_.clear();
    head_ = 0;
  }

 private:
  /// Drop the consumed prefix when it is free to do so (fifo empty) or
  /// when dead words dominate the buffer (amortized O(1) per pop).
  void reclaim() {
    if (head_ == 0) return;
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    } else if (head_ >= kReclaimMin && head_ >= buf_.size() - head_) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  static constexpr std::size_t kReclaimMin = 1024;

  std::vector<Word> buf_;
  std::size_t head_ = 0;  // index of the front word
};

}  // namespace sring
