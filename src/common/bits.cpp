#include "common/bits.hpp"

// Header-only; this translation unit exists to give the target a place
// to compile the header standalone and catch ODR/regression issues.
namespace sring {
static_assert(extract_bits(0xF0u, 4, 4) == 0xFu);
static_assert(deposit_bits(0, 8, 4, 0xAu) == 0xA00u);
static_assert(sign_extend(0x8000u, 16) == -32768);
static_assert(fits_signed(-32768, 16) && !fits_signed(32768, 16));
}  // namespace sring
