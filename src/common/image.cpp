#include "common/image.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sring {

Image::Image(std::size_t width, std::size_t height, Word fill)
    : width_(width), height_(height), pixels_(width * height, fill) {
  check(width > 0 && height > 0, "Image dimensions must be positive");
}

Word& Image::at(std::size_t x, std::size_t y) {
  check(x < width_ && y < height_, "Image::at out of range");
  return pixels_[y * width_ + x];
}

Word Image::at(std::size_t x, std::size_t y) const {
  check(x < width_ && y < height_, "Image::at out of range");
  return pixels_[y * width_ + x];
}

Word Image::at_clamped(std::ptrdiff_t x, std::ptrdiff_t y) const {
  const auto cx = std::clamp<std::ptrdiff_t>(
      x, 0, static_cast<std::ptrdiff_t>(width_) - 1);
  const auto cy = std::clamp<std::ptrdiff_t>(
      y, 0, static_cast<std::ptrdiff_t>(height_) - 1);
  return pixels_[static_cast<std::size_t>(cy) * width_ +
                 static_cast<std::size_t>(cx)];
}

Image Image::synthetic(std::size_t width, std::size_t height,
                       std::uint64_t seed) {
  Image img(width, height);
  Rng rng(seed);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      // Diagonal gradient with block texture and +-8 noise, kept 8-bit.
      const std::int64_t grad =
          static_cast<std::int64_t>((x * 199) / std::max<std::size_t>(width, 1) +
                                    (y * 53) / std::max<std::size_t>(height, 1));
      const std::int64_t texture = ((x / 4 + y / 4) % 2) ? 24 : 0;
      const std::int64_t noise =
          static_cast<std::int64_t>(rng.next_below(17)) - 8;
      img.at(x, y) = to_word(std::clamp<std::int64_t>(
          grad + texture + noise, 0, 255));
    }
  }
  return img;
}

Image Image::shifted(const Image& src, int dx, int dy,
                     std::uint64_t noise_seed, int noise_amp) {
  Image img(src.width(), src.height());
  Rng rng(noise_seed);
  for (std::size_t y = 0; y < src.height(); ++y) {
    for (std::size_t x = 0; x < src.width(); ++x) {
      const Word base = src.at_clamped(
          static_cast<std::ptrdiff_t>(x) - dx,
          static_cast<std::ptrdiff_t>(y) - dy);
      const std::int64_t noise =
          noise_amp > 0 ? static_cast<std::int64_t>(
                              rng.next_below(2u * noise_amp + 1)) -
                              noise_amp
                        : 0;
      img.at(x, y) = to_word(std::clamp<std::int64_t>(
          as_signed(base) + noise, 0, 255));
    }
  }
  return img;
}

std::string Image::to_pgm() const {
  std::string out = "P5\n" + std::to_string(width_) + " " +
                    std::to_string(height_) + "\n255\n";
  out.reserve(out.size() + pixels_.size());
  for (const Word w : pixels_) {
    const std::int32_t v = std::clamp<std::int32_t>(as_signed(w), 0, 255);
    out.push_back(static_cast<char>(v));
  }
  return out;
}

}  // namespace sring
