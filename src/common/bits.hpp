// Bit-field packing helpers used by the instruction encoders.
#pragma once

#include <cstdint>

namespace sring {

/// Extract `width` bits of `value` starting at bit `lsb`.
constexpr std::uint64_t extract_bits(std::uint64_t value, unsigned lsb,
                                     unsigned width) noexcept {
  const std::uint64_t mask =
      width >= 64 ? ~0ull : ((1ull << width) - 1ull);
  return (value >> lsb) & mask;
}

/// Return `value` with `field` (of `width` bits) deposited at bit `lsb`.
/// Bits of `field` above `width` are discarded.
constexpr std::uint64_t deposit_bits(std::uint64_t value, unsigned lsb,
                                     unsigned width,
                                     std::uint64_t field) noexcept {
  const std::uint64_t mask =
      width >= 64 ? ~0ull : ((1ull << width) - 1ull);
  return (value & ~(mask << lsb)) | ((field & mask) << lsb);
}

/// Sign-extend the low `width` bits of `value` to 64 bits.
constexpr std::int64_t sign_extend(std::uint64_t value,
                                   unsigned width) noexcept;

constexpr std::int64_t sign_extend(std::uint64_t value,
                                   unsigned width) noexcept {
  const std::uint64_t m = 1ull << (width - 1);
  const std::uint64_t x = extract_bits(value, 0, width);
  return static_cast<std::int64_t>((x ^ m) - m);
}

/// True if `value` fits in a signed field of `width` bits.
constexpr bool fits_signed(std::int64_t value, unsigned width) noexcept {
  const std::int64_t lo = -(1ll << (width - 1));
  const std::int64_t hi = (1ll << (width - 1)) - 1;
  return value >= lo && value <= hi;
}

/// True if `value` fits in an unsigned field of `width` bits.
constexpr bool fits_unsigned(std::uint64_t value, unsigned width) noexcept {
  return width >= 64 || value < (1ull << width);
}

}  // namespace sring
