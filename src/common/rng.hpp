// Deterministic pseudo-random generator for workloads and tests.
//
// A fixed xoshiro-style generator keeps workloads reproducible across
// platforms and standard-library versions (std::mt19937 distributions
// are not bit-stable across implementations).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace sring {

/// SplitMix64-seeded xorshift128+ generator; bit-stable everywhere.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDFACEu) noexcept;

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound) (bound > 0).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform datapath word over the full 16-bit range.
  Word next_word() noexcept;

  /// Uniform signed value in [lo, hi] returned as a datapath word.
  Word next_word_in(std::int32_t lo, std::int32_t hi) noexcept;

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace sring
