// Fundamental datapath types of the Systolic Ring simulator.
//
// The paper's operating layer is a 16-bit word-level architecture; all
// Dnode arithmetic is two's-complement on 16-bit words.  We store words
// as uint16_t so that wrap-around is well defined, and convert through
// int32_t when signed semantics are needed.
#pragma once

#include <cstdint>
#include <cstddef>

namespace sring {

/// One 16-bit datapath word (raw bits; signedness is an op property).
using Word = std::uint16_t;

/// Signed view of a datapath word.
using SWord = std::int16_t;

/// Width of the datapath in bits.
inline constexpr unsigned kWordBits = 16;

/// Convert raw word bits to their signed (two's-complement) value.
constexpr std::int32_t as_signed(Word w) noexcept {
  return static_cast<std::int32_t>(static_cast<SWord>(w));
}

/// Truncate a wide integer to a datapath word (wrap-around semantics).
constexpr Word to_word(std::int64_t v) noexcept {
  return static_cast<Word>(static_cast<std::uint64_t>(v) & 0xFFFFu);
}

/// Saturate a wide integer into the signed 16-bit range.
constexpr Word to_word_saturated(std::int64_t v) noexcept {
  if (v > 32767) return 0x7FFFu;
  if (v < -32768) return 0x8000u;
  return to_word(v);
}

/// Number of Dnode register-file entries (paper: 4 x 16-bit registers).
inline constexpr std::size_t kDnodeRegCount = 4;

/// Local control unit: number of microinstruction registers (paper: 8,
/// plus a LIMIT register makes the 9-register local controller).
inline constexpr std::size_t kLocalProgramSlots = 8;

}  // namespace sring
