// RISC configuration controller (paper §3).
//
// A small sequential core with its own program memory whose job is to
// manage the configuration of the operating layer dynamically — it can
// rewrite individual configuration words (WRCFG/WRMODE/WRSW/WRLOC) or
// swap a full preloaded page per cycle (PAGE/PAGER) — and to move data
// between the host FIFOs, the shared bus and the ring.
//
// It executes exactly one instruction per clock cycle; INPOP on an
// empty host FIFO and WAIT stall it in place.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/host_fifo.hpp"
#include "core/config_memory.hpp"
#include "core/ring.hpp"
#include "isa/risc_instr.hpp"

namespace sring {

class Controller {
 public:
  Controller() = default;
  explicit Controller(std::vector<std::uint32_t> program);

  /// Replace the program and reset architectural state.
  void load_program(std::vector<std::uint32_t> program);

  /// Everything the controller can touch during one cycle.
  struct StepContext {
    ConfigMemory& cfg;
    Ring& ring;
    Word bus;                      ///< bus value at the start of the cycle
    HostFifo& host_in;
    std::vector<Word>& host_out;
    std::uint64_t cycle;           ///< global cycle counter (RDCYC)
  };

  /// Why a cycle stalled (observability; `kNone` when not stalled).
  enum class StallCause : std::uint8_t { kNone = 0, kInpop, kWait };

  struct StepResult {
    bool halted = false;          ///< controller is (now) halted
    bool stalled = false;         ///< instruction could not complete
    bool executed = false;        ///< an instruction completed this cycle
    StallCause stall_cause = StallCause::kNone;
    RiscOp op = RiscOp::kNop;     ///< opcode completed, when executed
    std::optional<Word> bus_drive;///< BUSW value, visible this cycle
  };

  /// Execute one cycle.  No-op once halted.
  StepResult step(const StepContext& ctx);

  bool halted() const noexcept { return halted_; }
  std::uint64_t pc() const noexcept { return pc_; }
  std::uint64_t instructions_executed() const noexcept {
    return instructions_; }

  // --- stall-cause instrumentation (observation only) ----------------
  std::uint64_t inpop_stall_cycles() const noexcept {
    return inpop_stalls_; }
  std::uint64_t wait_stall_cycles() const noexcept { return wait_stalls_; }
  std::uint64_t bus_writes() const noexcept { return bus_writes_; }

  // --- superstep support ---------------------------------------------
  /// Cycles left in an in-flight WAIT (0 when not waiting).  While
  /// waiting the controller is as inert as when halted, so the
  /// superstep engine may fuse up to this many ring cycles.
  std::uint64_t wait_cycles_remaining() const noexcept {
    return wait_remaining_; }

  /// Account `cycles` WAIT stall cycles at once, exactly as that many
  /// per-cycle step() calls would have.  Requires
  /// cycles <= wait_cycles_remaining().
  void skip_wait(std::uint64_t cycles);

  std::uint64_t reg(std::size_t index) const;
  void set_reg(std::size_t index, std::uint64_t value);

  /// Reset PC/registers/halt state; keeps the loaded program.
  void reset();

 private:
  std::vector<std::uint32_t> program_;
  // Decode-once cache filled lazily at first execution of each word,
  // so a data word the PC never reaches still faults only if executed
  // (exactly the eager-decode-per-cycle timing), while steady-state
  // loops skip the field extraction entirely.
  std::vector<RiscInstr> decoded_;
  std::vector<std::uint8_t> decoded_valid_;
  std::array<std::uint64_t, kRiscRegCount> regs_{};
  std::uint64_t pc_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint32_t wait_remaining_ = 0;
  std::uint64_t inpop_stalls_ = 0;
  std::uint64_t wait_stalls_ = 0;
  std::uint64_t bus_writes_ = 0;
  bool halted_ = false;
};

}  // namespace sring
