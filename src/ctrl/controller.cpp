#include "ctrl/controller.hpp"

#include "common/error.hpp"

namespace sring {

Controller::Controller(std::vector<std::uint32_t> program) {
  load_program(std::move(program));
}

void Controller::load_program(std::vector<std::uint32_t> program) {
  program_ = std::move(program);
  decoded_.assign(program_.size(), RiscInstr{});
  decoded_valid_.assign(program_.size(), 0);
  reset();
}

std::uint64_t Controller::reg(std::size_t index) const {
  check(index < kRiscRegCount, "Controller::reg: index out of range");
  return regs_[index];
}

void Controller::set_reg(std::size_t index, std::uint64_t value) {
  check(index < kRiscRegCount, "Controller::set_reg: index out of range");
  regs_[index] = value;
}

void Controller::reset() {
  regs_.fill(0);
  pc_ = 0;
  instructions_ = 0;
  wait_remaining_ = 0;
  inpop_stalls_ = 0;
  wait_stalls_ = 0;
  bus_writes_ = 0;
  halted_ = false;
}

void Controller::skip_wait(std::uint64_t cycles) {
  check(cycles <= wait_remaining_,
        "Controller::skip_wait: skipping past the end of the wait");
  wait_remaining_ -= static_cast<std::uint32_t>(cycles);
  wait_stalls_ += cycles;
}

Controller::StepResult Controller::step(const StepContext& ctx) {
  StepResult res;
  if (halted_) {
    res.halted = true;
    return res;
  }
  if (wait_remaining_ > 0) {
    --wait_remaining_;
    res.stalled = true;
    res.stall_cause = StallCause::kWait;
    ++wait_stalls_;
    return res;
  }
  check(pc_ < program_.size(),
        "Controller: PC ran past the end of program memory "
        "(missing HALT?)");

  if (!decoded_valid_[pc_]) {
    decoded_[pc_] = RiscInstr::decode(program_[pc_]);
    decoded_valid_[pc_] = 1;
  }
  const RiscInstr instr = decoded_[pc_];
  const std::uint64_t a = regs_[instr.ra];
  const std::uint64_t b = regs_[instr.rb];
  std::uint64_t next_pc = pc_ + 1;
  const auto branch_to = [&]() {
    next_pc = pc_ + 1 + static_cast<std::int64_t>(instr.imm);
  };

  switch (instr.op) {
    case RiscOp::kNop:
      break;
    case RiscOp::kHalt:
      halted_ = true;
      break;
    case RiscOp::kLdi:
      regs_[instr.rd] =
          static_cast<std::uint64_t>(static_cast<std::int64_t>(instr.imm));
      break;
    case RiscOp::kLdih:
      regs_[instr.rd] = (regs_[instr.rd] << 16) |
                        (static_cast<std::uint64_t>(instr.imm) & 0xFFFFu);
      break;
    case RiscOp::kMov:
      regs_[instr.rd] = a;
      break;
    case RiscOp::kAdd:
      regs_[instr.rd] = a + b;
      break;
    case RiscOp::kSub:
      regs_[instr.rd] = a - b;
      break;
    case RiscOp::kMul:
      regs_[instr.rd] = a * b;
      break;
    case RiscOp::kAnd:
      regs_[instr.rd] = a & b;
      break;
    case RiscOp::kOr:
      regs_[instr.rd] = a | b;
      break;
    case RiscOp::kXor:
      regs_[instr.rd] = a ^ b;
      break;
    case RiscOp::kShl:
      regs_[instr.rd] = a << (b & 63u);
      break;
    case RiscOp::kShr:
      regs_[instr.rd] = a >> (b & 63u);
      break;
    case RiscOp::kAsr:
      regs_[instr.rd] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(a) >> (b & 63u));
      break;
    case RiscOp::kAddi:
      regs_[instr.rd] = a + static_cast<std::uint64_t>(
                                static_cast<std::int64_t>(instr.imm));
      break;
    case RiscOp::kBeq:
      if (a == b) branch_to();
      break;
    case RiscOp::kBne:
      if (a != b) branch_to();
      break;
    case RiscOp::kBlt:
      if (static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b))
        branch_to();
      break;
    case RiscOp::kBge:
      if (static_cast<std::int64_t>(a) >= static_cast<std::int64_t>(b))
        branch_to();
      break;
    case RiscOp::kJmp:
      branch_to();
      break;
    case RiscOp::kWrcfg:
      ctx.cfg.write_dnode_instr(static_cast<std::size_t>(a), b);
      break;
    case RiscOp::kWrmode:
      ctx.cfg.write_dnode_mode(
          static_cast<std::size_t>(a),
          (b & 1u) ? DnodeMode::kLocal : DnodeMode::kGlobal);
      break;
    case RiscOp::kWrloc:
      ctx.ring.write_local(static_cast<std::size_t>(a / 16),
                           static_cast<std::size_t>(a % 16), b);
      break;
    case RiscOp::kWrsw:
      // Address packing mirrors WRLOC: ra = switch * 16 + lane.
      ctx.cfg.write_switch_route(static_cast<std::size_t>(a) / 16,
                                 static_cast<std::size_t>(a) % 16, b);
      break;
    case RiscOp::kPage:
      ctx.cfg.apply_page(static_cast<std::size_t>(instr.imm));
      break;
    case RiscOp::kPager:
      ctx.cfg.apply_page(static_cast<std::size_t>(a));
      break;
    case RiscOp::kBusw:
      res.bus_drive = static_cast<Word>(a & 0xFFFFu);
      ++bus_writes_;
      break;
    case RiscOp::kRdbus:
      regs_[instr.rd] = ctx.bus;
      break;
    case RiscOp::kInpop:
      if (ctx.host_in.empty()) {
        res.stalled = true;
        res.stall_cause = StallCause::kInpop;
        ++inpop_stalls_;
        return res;  // PC holds; retry next cycle
      }
      regs_[instr.rd] = ctx.host_in.front();
      ctx.host_in.pop_front();
      break;
    case RiscOp::kOutpush:
      ctx.host_out.push_back(static_cast<Word>(a & 0xFFFFu));
      break;
    case RiscOp::kIncnt:
      regs_[instr.rd] = ctx.host_in.size();
      break;
    case RiscOp::kOutcnt:
      regs_[instr.rd] = ctx.host_out.size();
      break;
    case RiscOp::kRdcyc:
      regs_[instr.rd] = ctx.cycle;
      break;
    case RiscOp::kWait:
      if (instr.imm > 1) {
        wait_remaining_ = static_cast<std::uint32_t>(instr.imm) - 1;
      }
      break;
    case RiscOp::kOpCount:
      throw SimError("Controller: bad opcode");
  }

  pc_ = next_pc;
  ++instructions_;
  res.executed = true;
  res.op = instr.op;
  res.halted = halted_;
  return res;
}

}  // namespace sring
