#include "mapper/mapper.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "asm/program_builder.hpp"
#include "common/error.hpp"
#include "sim/system.hpp"

namespace sring::mapper {

namespace {

DnodeOp to_dnode_op(DfgOp op) {
  switch (op) {
    case DfgOp::kAdd:
      return DnodeOp::kAdd;
    case DfgOp::kSub:
      return DnodeOp::kSub;
    case DfgOp::kMul:
      return DnodeOp::kMul;
    case DfgOp::kAbsdiff:
      return DnodeOp::kAbsdiff;
    case DfgOp::kMin:
      return DnodeOp::kMin;
    case DfgOp::kMax:
      return DnodeOp::kMax;
    case DfgOp::kAnd:
      return DnodeOp::kAnd;
    case DfgOp::kOr:
      return DnodeOp::kOr;
    case DfgOp::kXor:
      return DnodeOp::kXor;
    case DfgOp::kShl:
      return DnodeOp::kShl;
    case DfgOp::kAsr:
      return DnodeOp::kAsr;
    case DfgOp::kPass:
      return DnodeOp::kPass;
    case DfgOp::kNot:
      return DnodeOp::kNot;
    case DfgOp::kAbs:
      return DnodeOp::kAbs;
    default:
      throw SimError("map_dfg: node kind has no Dnode operation");
  }
}

/// Resolved source of an operand edge: a real producer + accumulated
/// sample delay, or a constant.
struct EdgeSource {
  bool is_const = false;
  Word const_value = 0;
  NodeId producer = 0;   ///< a non-delay, non-const node
  unsigned delay = 0;    ///< accumulated z^-k along the chain
};

EdgeSource resolve_edge(const Dfg& dfg, NodeId id) {
  EdgeSource e;
  unsigned guard = 0;
  while (true) {
    const DfgNode& n = dfg.node(id);
    if (n.op == DfgOp::kConst) {
      check(e.delay == 0, "map_dfg: delayed constant is meaningless");
      e.is_const = true;
      e.const_value = n.value;
      return e;
    }
    if (n.op == DfgOp::kDelay) {
      check(n.a < id, "map_dfg: recursive delays are not mappable "
                      "(use kernels/iir_kernel for recursion)");
      e.delay += n.delay;
      id = n.a;
      check(++guard < 4096, "map_dfg: delay chain too long");
      continue;
    }
    e.producer = id;
    return e;
  }
}

/// The up-to-three operand edges of a node after MAC fusion: for a
/// fused consumer, a/b are the multiplier inputs and c the addend.
struct NodeOperands {
  std::optional<NodeId> a;
  std::optional<NodeId> b;
  std::optional<NodeId> c;   ///< only for fused MAC/MSU
  DnodeOp op = DnodeOp::kNop;
};

}  // namespace

MappedProgram map_dfg(const Dfg& dfg, const RingGeometry& geometry) {
  dfg.validate();
  geometry.validate();
  const auto& nodes = dfg.nodes();

  // --- MAC fusion pre-pass ----------------------------------------------
  // Count direct (non-delay-mediated) uses of every node; a kMul with
  // exactly one total use, consumed directly by a kAdd (either side)
  // or as a kSub subtrahend, and not itself an output, fuses into the
  // consumer.
  std::vector<unsigned> uses(nodes.size(), 0);
  for (const DfgNode& n : nodes) {
    const unsigned arity = dfg_arity(n.op);
    if (arity >= 1) ++uses[n.a];
    if (arity == 2) ++uses[n.b];
  }
  for (const NodeId out : dfg.outputs()) ++uses[out];

  // fused_into[m] = consumer; fused_mul[n] = m.
  std::vector<std::optional<NodeId>> fused_mul(nodes.size());
  std::vector<bool> fused_away(nodes.size(), false);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const DfgNode& n = nodes[i];
    if (n.op != DfgOp::kAdd && n.op != DfgOp::kSub) continue;
    const auto fusable = [&](NodeId m) {
      return nodes[m].op == DfgOp::kMul && uses[m] == 1 &&
             !fused_away[m];
    };
    if (n.op == DfgOp::kAdd && fusable(n.a)) {
      fused_mul[i] = n.a;
      fused_away[n.a] = true;
    } else if (fusable(n.b)) {
      // add: a + (m) -> MAC; sub: a - (m) -> MSU.
      fused_mul[i] = n.b;
      fused_away[n.b] = true;
    }
  }

  // Effective operand set and Dnode operation per node.
  const auto operands_of = [&](std::size_t i) {
    const DfgNode& n = nodes[i];
    NodeOperands ops;
    if (fused_mul[i]) {
      const DfgNode& m = nodes[*fused_mul[i]];
      ops.a = m.a;
      ops.b = m.b;
      ops.c = *fused_mul[i] == n.a ? n.b : n.a;
      ops.op = n.op == DfgOp::kAdd ? DnodeOp::kMac : DnodeOp::kMsu;
    } else {
      const unsigned arity = dfg_arity(n.op);
      if (arity >= 1) ops.a = n.a;
      if (arity == 2) ops.b = n.b;
      ops.op = to_dnode_op(n.op);
    }
    return ops;
  };

  // --- levelize ---------------------------------------------------------
  std::vector<std::size_t> level(nodes.size(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const DfgNode& n = nodes[i];
    switch (n.op) {
      case DfgOp::kInput:
      case DfgOp::kConst:
        level[i] = 0;
        break;
      case DfgOp::kDelay:
        level[i] = level[resolve_edge(dfg, static_cast<NodeId>(i)).producer];
        break;
      default: {
        if (fused_away[i]) break;  // no Dnode, no level of its own
        const NodeOperands ops = operands_of(i);
        std::size_t deepest = 0;
        bool has_real_operand = false;
        unsigned adjacent = 0;
        const auto consider = [&](const std::optional<NodeId>& operand) {
          if (!operand) return;
          const EdgeSource e = resolve_edge(dfg, *operand);
          if (e.is_const) return;
          has_real_operand = true;
          deepest = std::max(deepest, level[e.producer]);
        };
        consider(ops.a);
        consider(ops.b);
        consider(ops.c);
        check(has_real_operand,
              "map_dfg: node has only constant operands (fold it "
              "instead)");
        level[i] = deepest + 1;
        // Count direct-adjacent (undelayed, gap-0) operands: only two
        // direct input ports exist; with three, bump a layer so every
        // operand travels through the pipelines.
        const auto adjacent_count = [&](const std::optional<NodeId>& op) {
          if (!op) return;
          const EdgeSource e = resolve_edge(dfg, *op);
          if (!e.is_const && e.delay == 0 &&
              level[e.producer] + 1 == level[i]) {
            ++adjacent;
          }
        };
        adjacent_count(ops.a);
        adjacent_count(ops.b);
        adjacent_count(ops.c);
        if (adjacent > 2) ++level[i];
        break;
      }
    }
  }

  // --- lane assignment ----------------------------------------------------
  std::vector<std::size_t> lane(nodes.size(), 0);
  std::vector<bool> has_dnode(nodes.size(), false);
  std::vector<std::size_t> used_lanes(geometry.layers, 0);

  check(dfg.inputs().size() <= geometry.lanes,
        "map_dfg: more inputs than layer-0 lanes");
  for (std::size_t k = 0; k < dfg.inputs().size(); ++k) {
    const NodeId id = dfg.inputs()[k];
    lane[id] = k;
    has_dnode[id] = true;
  }
  used_lanes[0] = dfg.inputs().size();

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const DfgOp op = nodes[i].op;
    if (op == DfgOp::kInput || op == DfgOp::kConst ||
        op == DfgOp::kDelay || fused_away[i]) {
      continue;
    }
    const std::size_t layer = level[i];
    check(layer < geometry.layers,
          "map_dfg: graph needs " + std::to_string(layer + 1) +
              " layers, ring has " + std::to_string(geometry.layers));
    check(used_lanes[layer] < geometry.lanes,
          "map_dfg: layer " + std::to_string(layer) +
              " overflows its " + std::to_string(geometry.lanes) +
              " lanes");
    lane[i] = used_lanes[layer]++;
    has_dnode[i] = true;
  }

  // --- outputs -------------------------------------------------------------
  std::vector<bool> pushes(nodes.size(), false);
  for (const NodeId out : dfg.outputs()) {
    check(has_dnode[out],
          "map_dfg: output '" + dfg.node(out).name +
              "' is a delay/constant or fused away; route it through a "
              "pass node");
    pushes[out] = true;
  }

  // --- build the configuration page ----------------------------------------
  PageBuilder page(geometry);
  std::vector<Placement> placements;

  for (std::size_t k = 0; k < dfg.inputs().size(); ++k) {
    const NodeId id = dfg.inputs()[k];
    SwitchRoute route;
    route.in1 = PortRoute::host();
    page.route(0, lane[id], route);
    DnodeInstr instr;
    instr.op = DnodeOp::kPass;
    instr.src_a = DnodeSrc::kIn1;
    instr.out_en = true;
    instr.host_en = pushes[id];
    page.instr(0, lane[id], instr);
    placements.push_back(
        {id, 0, lane[id], "input '" + dfg.node(id).name + "'"});
  }

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const DfgNode& n = nodes[i];
    if (!has_dnode[i] || n.op == DfgOp::kInput) continue;
    const std::size_t layer = level[i];
    const NodeOperands ops = operands_of(i);

    SwitchRoute route;
    DnodeInstr instr;
    instr.op = ops.op;
    instr.out_en = true;
    instr.host_en = pushes[i];

    bool imm_used = false;
    bool in1_used = false;
    bool in2_used = false;
    bool fifo1_used = false;
    bool fifo2_used = false;
    const auto bind = [&](NodeId operand) -> DnodeSrc {
      const EdgeSource e = resolve_edge(dfg, operand);
      if (e.is_const) {
        check(!imm_used || instr.imm == e.const_value,
              "map_dfg: a Dnode carries a single immediate; two "
              "different constants feed one node");
        instr.imm = e.const_value;
        imm_used = true;
        return DnodeSrc::kImm;
      }
      const std::size_t p = level[e.producer];
      check(p < layer, "map_dfg: operand does not precede its consumer");
      const std::size_t gap = layer - p - 1;  // 0 for adjacent layers
      if (gap == 0 && e.delay == 0) {
        // Direct route through the upstream switch.
        const auto prev = PortRoute::prev(
            static_cast<std::uint8_t>(lane[e.producer]));
        if (!in1_used) {
          route.in1 = prev;
          in1_used = true;
          return DnodeSrc::kIn1;
        }
        check(!in2_used,
              "map_dfg: more than two adjacent-layer operands");
        route.in2 = prev;
        in2_used = true;
        return DnodeSrc::kIn2;
      }
      // Feedback read: depth = layer distance + z^-k delays - 1.
      const std::size_t depth = gap - 1 + e.delay;
      check(depth < geometry.fb_depth,
            "map_dfg: edge needs feedback depth " + std::to_string(depth) +
                ", pipeline has " + std::to_string(geometry.fb_depth));
      FeedbackAddr addr;
      addr.pipe = static_cast<std::uint8_t>((p + 1) % geometry.layers);
      addr.lane = static_cast<std::uint8_t>(lane[e.producer]);
      addr.depth = static_cast<std::uint8_t>(depth);
      if (!fifo1_used) {
        route.fifo1 = addr;
        fifo1_used = true;
        return DnodeSrc::kFifo1;
      }
      if (!fifo2_used) {
        route.fifo2 = addr;
        fifo2_used = true;
        return DnodeSrc::kFifo2;
      }
      // Overflow: the in1/in2 ports also carry feedback routes.
      if (!in1_used) {
        route.in1 = PortRoute::feedback(addr);
        in1_used = true;
        return DnodeSrc::kIn1;
      }
      check(!in2_used, "map_dfg: operand ports exhausted");
      route.in2 = PortRoute::feedback(addr);
      in2_used = true;
      return DnodeSrc::kIn2;
    };

    if (ops.a) instr.src_a = bind(*ops.a);
    if (ops.b) instr.src_b = bind(*ops.b);
    if (ops.c) instr.src_c = bind(*ops.c);
    page.route(layer, lane[i], route);
    page.instr(layer, lane[i], instr);
    placements.push_back({static_cast<NodeId>(i), layer, lane[i],
                          instr.to_string() + "   [" + route.to_string() +
                              "]" +
                              (fused_mul[i] ? "  (fused MAC)" : "")});
  }

  // --- assemble -----------------------------------------------------------
  ProgramBuilder pb(geometry, "mapped_dfg");
  pb.add_page(page);
  pb.page_switch(0);
  pb.halt();

  MappedProgram mapped;
  mapped.program = pb.build();
  mapped.geometry = geometry;
  mapped.input_count = dfg.inputs().size();

  std::map<std::size_t, std::size_t> rank_of_flat;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (has_dnode[i] && pushes[i]) {
      rank_of_flat.emplace(level[i] * geometry.lanes + lane[i], 0);
    }
  }
  std::size_t rank = 0;
  for (auto& [flat, r] : rank_of_flat) r = rank++;
  mapped.pushes_per_cycle = rank_of_flat.size();

  for (const NodeId out : dfg.outputs()) {
    MappedOutput mo;
    mo.name = dfg.node(out).name;
    mo.latency = level[out];
    mo.push_rank =
        rank_of_flat.at(level[out] * geometry.lanes + lane[out]);
    mapped.outputs.push_back(mo);
    mapped.max_latency = std::max(mapped.max_latency, mo.latency);
  }
  std::size_t used = 0;
  for (const auto b : has_dnode) used += b ? 1 : 0;
  mapped.dnodes_used = used;
  mapped.placements = std::move(placements);
  return mapped;
}

std::string mapping_report(const MappedProgram& mapped) {
  std::string out = "DFG placement on ring " +
                    std::to_string(mapped.geometry.layers) + "x" +
                    std::to_string(mapped.geometry.lanes) + " (" +
                    std::to_string(mapped.dnodes_used) + "/" +
                    std::to_string(mapped.geometry.dnode_count()) +
                    " Dnodes):\n";
  for (const auto& p : mapped.placements) {
    out += "  node " + std::to_string(p.node) + " -> dnode " +
           std::to_string(p.layer) + "." + std::to_string(p.lane) + ": " +
           p.description + "\n";
  }
  for (const auto& o : mapped.outputs) {
    out += "  output '" + o.name + "': latency " +
           std::to_string(o.latency) + " cycles, push rank " +
           std::to_string(o.push_rank) + "\n";
  }
  return out;
}

MappedRun run_mapped(const MappedProgram& mapped,
                     const std::vector<std::vector<Word>>& input_streams) {
  check(input_streams.size() == mapped.input_count,
        "run_mapped: input stream count mismatch");
  const std::size_t samples =
      input_streams.empty() ? 0 : input_streams[0].size();
  for (const auto& s : input_streams) {
    check(s.size() == samples, "run_mapped: ragged input streams");
  }
  check(samples > 0, "run_mapped: empty input");

  System sys({mapped.geometry});
  sys.load(mapped.program);

  const std::size_t pad = mapped.max_latency;
  std::vector<Word> feed;
  feed.reserve((samples + pad) * mapped.input_count);
  for (std::size_t n = 0; n < samples + pad; ++n) {
    for (const auto& stream : input_streams) {
      feed.push_back(n < samples ? stream[n] : Word{0});
    }
  }
  sys.host().send(feed);
  sys.run_until_outputs(mapped.pushes_per_cycle * (samples + pad),
                        64 + 8 * feed.size());

  const auto raw = sys.host().take_received();
  MappedRun run;
  run.outputs.resize(mapped.outputs.size());
  for (std::size_t o = 0; o < mapped.outputs.size(); ++o) {
    const auto& mo = mapped.outputs[o];
    run.outputs[o].resize(samples);
    for (std::size_t n = 0; n < samples; ++n) {
      const std::size_t group = n + mo.latency;
      run.outputs[o][n] =
          raw[group * mapped.pushes_per_cycle + mo.push_rank];
    }
  }
  run.stats = sys.stats();
  run.cycles_per_sample = static_cast<double>(run.stats.cycles) /
                          static_cast<double>(samples);
  return run;
}

}  // namespace sring::mapper
