#include "mapper/dfg.hpp"

#include <deque>

#include "common/error.hpp"
#include "core/alu.hpp"

namespace sring::mapper {

unsigned dfg_arity(DfgOp op) noexcept {
  switch (op) {
    case DfgOp::kInput:
    case DfgOp::kConst:
      return 0;
    case DfgOp::kPass:
    case DfgOp::kNot:
    case DfgOp::kAbs:
    case DfgOp::kDelay:
      return 1;
    default:
      return 2;
  }
}

NodeId Dfg::push(DfgNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Dfg::add_input(std::string name) {
  DfgNode n;
  n.op = DfgOp::kInput;
  n.name = std::move(name);
  const NodeId id = push(std::move(n));
  inputs_.push_back(id);
  return id;
}

NodeId Dfg::add_const(Word value) {
  DfgNode n;
  n.op = DfgOp::kConst;
  n.value = value;
  return push(std::move(n));
}

NodeId Dfg::add_unary(DfgOp op, NodeId a) {
  check(dfg_arity(op) == 1 && op != DfgOp::kDelay,
        "Dfg::add_unary: not a unary op");
  check(a < nodes_.size(), "Dfg::add_unary: operand out of range");
  DfgNode n;
  n.op = op;
  n.a = a;
  return push(std::move(n));
}

NodeId Dfg::add_binary(DfgOp op, NodeId a, NodeId b) {
  check(dfg_arity(op) == 2, "Dfg::add_binary: not a binary op");
  check(a < nodes_.size() && b < nodes_.size(),
        "Dfg::add_binary: operand out of range");
  DfgNode n;
  n.op = op;
  n.a = a;
  n.b = b;
  return push(std::move(n));
}

NodeId Dfg::add_delay(NodeId a, unsigned delay) {
  check(a < nodes_.size(), "Dfg::add_delay: operand out of range");
  check(delay >= 1, "Dfg::add_delay: delay must be >= 1");
  DfgNode n;
  n.op = DfgOp::kDelay;
  n.a = a;
  n.delay = delay;
  return push(std::move(n));
}

Dfg Dfg::assemble(std::vector<DfgNode> nodes, std::vector<NodeId> outputs) {
  Dfg dfg;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const DfgNode& n = nodes[i];
    const unsigned arity = dfg_arity(n.op);
    if (arity >= 1 && n.op != DfgOp::kDelay) {
      check(n.a < i, "Dfg: combinational operand must precede its user");
    }
    if (arity == 2) {
      check(n.b < i, "Dfg: combinational operand must precede its user");
    }
    if (n.op == DfgOp::kDelay) {
      check(n.a < nodes.size(), "Dfg: delay operand out of range");
      check(n.delay >= 1, "Dfg: delay must be >= 1");
    }
    if (n.op == DfgOp::kInput) {
      dfg.inputs_.push_back(static_cast<NodeId>(i));
    }
  }
  for (const NodeId out : outputs) {
    check(out < nodes.size(), "Dfg: output id out of range");
  }
  dfg.nodes_ = std::move(nodes);
  dfg.outputs_ = std::move(outputs);
  return dfg;
}

void Dfg::mark_output(NodeId node, std::string name) {
  check(node < nodes_.size(), "Dfg::mark_output: node out of range");
  if (!name.empty()) nodes_[node].name = std::move(name);
  outputs_.push_back(node);
}

const DfgNode& Dfg::node(NodeId id) const {
  check(id < nodes_.size(), "Dfg::node: id out of range");
  return nodes_[id];
}

void Dfg::validate() const {
  check(!outputs_.empty(), "Dfg: at least one output required");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const DfgNode& n = nodes_[i];
    const unsigned arity = dfg_arity(n.op);
    // Nodes are created in topological order by construction (operand
    // ids always precede the node), except delays which may reference
    // any node — this is what permits recursive graphs.
    if (arity >= 1 && n.op != DfgOp::kDelay) {
      check(n.a < i, "Dfg: combinational operand must precede its user");
    }
    if (arity == 2) {
      check(n.b < i, "Dfg: combinational operand must precede its user");
    }
    if (n.op == DfgOp::kDelay) {
      check(n.a < nodes_.size(), "Dfg: delay operand out of range");
      check(n.delay >= 1, "Dfg: delay must be >= 1");
    }
  }
}

namespace {

DnodeOp to_alu_op(DfgOp op) {
  switch (op) {
    case DfgOp::kAdd:
      return DnodeOp::kAdd;
    case DfgOp::kSub:
      return DnodeOp::kSub;
    case DfgOp::kMul:
      return DnodeOp::kMul;
    case DfgOp::kAbsdiff:
      return DnodeOp::kAbsdiff;
    case DfgOp::kMin:
      return DnodeOp::kMin;
    case DfgOp::kMax:
      return DnodeOp::kMax;
    case DfgOp::kAnd:
      return DnodeOp::kAnd;
    case DfgOp::kOr:
      return DnodeOp::kOr;
    case DfgOp::kXor:
      return DnodeOp::kXor;
    case DfgOp::kShl:
      return DnodeOp::kShl;
    case DfgOp::kAsr:
      return DnodeOp::kAsr;
    case DfgOp::kPass:
      return DnodeOp::kPass;
    case DfgOp::kNot:
      return DnodeOp::kNot;
    case DfgOp::kAbs:
      return DnodeOp::kAbs;
    default:
      throw SimError("to_alu_op: not an ALU op");
  }
}

}  // namespace

std::vector<std::vector<Word>> interpret_dfg(
    const Dfg& dfg, const std::vector<std::vector<Word>>& input_streams) {
  dfg.validate();
  check(input_streams.size() == dfg.inputs().size(),
        "interpret_dfg: input stream count mismatch");
  std::size_t steps = input_streams.empty() ? 0 : input_streams[0].size();
  for (const auto& s : input_streams) {
    check(s.size() == steps, "interpret_dfg: ragged input streams");
  }

  const auto& nodes = dfg.nodes();
  std::vector<Word> value(nodes.size(), 0);       // this step
  std::vector<std::deque<Word>> delay_state(nodes.size());
  // Pre-fill delay lines with zeros (reset state).
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].op == DfgOp::kDelay) {
      delay_state[i].assign(nodes[i].delay, 0);
    }
  }

  std::vector<std::vector<Word>> outputs(dfg.outputs().size());
  for (std::size_t n = 0; n < steps; ++n) {
    // Delays first: they emit state captured on previous steps, which
    // is what allows them to reference later (recursive) nodes.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].op == DfgOp::kDelay) {
        value[i] = delay_state[i].front();
        delay_state[i].pop_front();
      }
    }
    std::size_t input_index = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const DfgNode& node = nodes[i];
      switch (node.op) {
        case DfgOp::kInput:
          value[i] = input_streams[input_index++][n];
          break;
        case DfgOp::kConst:
          value[i] = node.value;
          break;
        case DfgOp::kDelay:
          break;  // already produced above
        default:
          value[i] = alu_execute(to_alu_op(node.op), value[node.a],
                                 dfg_arity(node.op) == 2 ? value[node.b]
                                                         : Word{0},
                                 0);
      }
    }
    // Capture delay inputs for future steps.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].op == DfgOp::kDelay) {
        delay_state[i].push_back(value[nodes[i].a]);
      }
    }
    for (std::size_t o = 0; o < dfg.outputs().size(); ++o) {
      outputs[o].push_back(value[dfg.outputs()[o]]);
    }
  }
  return outputs;
}

}  // namespace sring::mapper
