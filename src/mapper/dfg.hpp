// Dataflow-graph IR for the mapping tool.
//
// Paper §6: "Our future work takes place in the realization of an
// efficient compiling/profiling tool, the key to success of
// reconfigurable computing architectures.  This allows efficient
// algorithm compilation by the ability to identify macro-operators
// (RIF, RII, FIFOs & LIFOs, trigonometric op., etc.) on the high level
// description, and directly map them onto Dnodes."
//
// This module is that tool's front half: a streaming dataflow graph
// where every node produces one 16-bit sample per step.  kDelay nodes
// (z^-k) are the only state; everything else is combinational, so a
// valid graph is acyclic apart from paths through delays.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sring::mapper {

using NodeId = std::uint32_t;

/// Streaming node kinds.  Binary arithmetic follows the Dnode ALU
/// semantics exactly (wrapping 16-bit two's complement).
enum class DfgOp : std::uint8_t {
  kInput,    ///< one host stream (no operands)
  kConst,    ///< a compile-time constant (no operands)
  kAdd,      ///< a + b
  kSub,      ///< a - b
  kMul,      ///< low 16 bits of a * b
  kAbsdiff,  ///< |a - b|
  kMin,      ///< min(a, b) signed
  kMax,      ///< max(a, b) signed
  kAnd,
  kOr,
  kXor,
  kShl,      ///< a << (b & 15)
  kAsr,      ///< arithmetic a >> (b & 15)
  kPass,     ///< a (unary; useful as an explicit pipeline stage)
  kNot,      ///< ~a (unary)
  kAbs,      ///< |a| (unary)
  kDelay,    ///< a delayed by `delay` samples (z^-delay)
};

/// Number of data operands an op consumes (0, 1 or 2).
unsigned dfg_arity(DfgOp op) noexcept;

struct DfgNode {
  DfgOp op = DfgOp::kPass;
  NodeId a = 0;          ///< first operand (if arity >= 1)
  NodeId b = 0;          ///< second operand (if arity == 2)
  Word value = 0;        ///< constant value for kConst
  unsigned delay = 0;    ///< z^-delay for kDelay (>= 1)
  std::string name;      ///< optional label (inputs/outputs)
};

/// A streaming dataflow graph with named inputs and ordered outputs.
class Dfg {
 public:
  NodeId add_input(std::string name);
  NodeId add_const(Word value);
  NodeId add_unary(DfgOp op, NodeId a);
  NodeId add_binary(DfgOp op, NodeId a, NodeId b);
  NodeId add_delay(NodeId a, unsigned delay);

  /// Rebuild a graph from raw parts — the wire decoder's entry point
  /// (svc/dfg_codec).  Unlike the add_* builders, delays here may
  /// reference *later* nodes, so recursive graphs can be expressed and
  /// then rejected by map_dfg with its own diagnostic.  Enforces the
  /// same structural rules as validate() except the at-least-one-output
  /// requirement (callers validate() before use).
  static Dfg assemble(std::vector<DfgNode> nodes,
                      std::vector<NodeId> outputs);

  /// Register a node as a program output (order defines the output
  /// stream order).
  void mark_output(NodeId node, std::string name = {});

  const std::vector<DfgNode>& nodes() const noexcept { return nodes_; }
  const std::vector<NodeId>& outputs() const noexcept { return outputs_; }
  const std::vector<NodeId>& inputs() const noexcept { return inputs_; }

  const DfgNode& node(NodeId id) const;

  /// Structural validation: operand references in range, arities
  /// respected, at least one output.  Throws SimError on violation.
  void validate() const;

 private:
  NodeId push(DfgNode node);

  std::vector<DfgNode> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
};

/// Golden streaming interpreter: runs `steps` samples, reading each
/// input stream in declaration order.  Delay state starts at zero.
std::vector<std::vector<Word>> interpret_dfg(
    const Dfg& dfg, const std::vector<std::vector<Word>>& input_streams);

}  // namespace sring::mapper
