// DFG -> Systolic Ring mapping (the paper's §6 "compiling tool").
//
// Strategy: ASAP levelization.  Every combinational node becomes one
// Dnode; its level (= ring layer) is one past its deepest operand.
// Inputs are `pass host` Dnodes on layer 0.  Constants fold into the
// consumer's immediate field.  kDelay nodes occupy no Dnode at all:
// a delay only deepens the feedback-pipeline read of the consuming
// edge — the paper's "required delays are automatically achieved in
// [the pipelines]".
//
// Edge transport for a consumer at layer c reading a producer at
// layer p with accumulated delay k samples:
//   * c == p+1 and k == 0 : direct switch route (PREV),
//   * otherwise           : feedback read of pipe p+1 at depth
//                           c - p - 2 + k  (one sample per cycle, so
//                           layer distance and z^-k delays are the
//                           same currency).
//
// MAC fusion: a kMul whose single consumer is a kAdd (either operand)
// or a kSub (as the subtrahend) is folded into that consumer as a
// one-cycle MAC/MSU — one Dnode instead of two, exploiting the Dnode's
// chained multiplier+adder.  When the fused node would need three
// adjacent-layer operands (only two direct input ports exist), its
// layer is bumped so every operand arrives through the feedback
// pipelines; feedback reads overflow from fifo1/fifo2 into unused
// in1/in2 ports (all four ports can carry pipeline reads).
//
// The mapped design is fully pipelined: one sample per clock cycle,
// one Dnode per operator, outputs streamed with per-output latency
// equal to the producer's layer.  Feed-forward graphs only (recursive
// filters need the half-rate scheme of kernels/iir_kernel).
#pragma once

#include <string>
#include <vector>

#include "mapper/dfg.hpp"
#include "sim/program.hpp"
#include "sim/stats.hpp"

namespace sring::mapper {

struct MappedOutput {
  std::string name;
  std::size_t latency = 0;    ///< cycles from sample in to value out
  std::size_t push_rank = 0;  ///< position inside a cycle's push group
};

/// Where one DFG node landed.
struct Placement {
  NodeId node = 0;
  std::size_t layer = 0;
  std::size_t lane = 0;
  std::string description;  ///< the generated microinstruction
};

struct MappedProgram {
  LoadableProgram program;
  RingGeometry geometry;
  std::size_t input_count = 0;
  std::size_t pushes_per_cycle = 0;  ///< host words emitted per cycle
  std::vector<MappedOutput> outputs; ///< in Dfg output order
  std::size_t max_latency = 0;
  std::vector<Placement> placements; ///< one per Dnode-owning node

  /// Dnodes used (for occupancy reports).
  std::size_t dnodes_used = 0;
};

/// Human-readable placement table (the profiling report of the
/// paper's §6 compiling/profiling tool).
std::string mapping_report(const MappedProgram& mapped);

/// Map a validated feed-forward DFG onto the given geometry; throws
/// SimError with a diagnostic when the graph does not fit (too many
/// layers, too many ops in a layer, feedback depth exceeded, ...).
MappedProgram map_dfg(const Dfg& dfg, const RingGeometry& geometry);

struct MappedRun {
  std::vector<std::vector<Word>> outputs;  ///< in Dfg output order
  SystemStats stats;
  double cycles_per_sample = 0.0;
};

/// Execute a mapped program over equal-length input streams.
MappedRun run_mapped(const MappedProgram& mapped,
                     const std::vector<std::vector<Word>>& input_streams);

}  // namespace sring::mapper
