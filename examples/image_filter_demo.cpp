// Image filtering demo: 3x3 convolutions composed by the compiler and
// run on a Ring-64, with PGM output for the "VGA monitor".
//
//   $ ./image_filter_demo [output_dir]
#include <cstdio>
#include <fstream>

#include "kernels/conv2d_kernel.hpp"

namespace {

void dump(const sring::Image& img, const std::string& path, int bias,
          int shift) {
  sring::Image view(img.width(), img.height());
  for (std::size_t i = 0; i < img.size(); ++i) {
    const std::int32_t v =
        (sring::as_signed(img.pixels()[i]) >> shift) + bias;
    view.pixels()[i] = sring::to_word(v < 0 ? 0 : (v > 255 ? 255 : v));
  }
  std::ofstream f(path, std::ios::binary);
  f << view.to_pgm();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sring;
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const RingGeometry ring64{8, 8, 16};
  const Image img = Image::synthetic(96, 72, 404);

  struct Filter {
    const char* name;
    dsp::Kernel3x3 kernel;
    int bias;
    int shift;  // renormalization for display
  };
  const Filter filters[] = {
      {"smooth", dsp::kernel_smooth(), 0, 4},
      {"sharpen", dsp::kernel_sharpen(), 0, 0},
      {"sobel_x", dsp::kernel_sobel_x(), 128, 2},
  };

  std::printf("3x3 convolutions on a Ring-64 (compiler-composed):\n");
  for (const auto& f : filters) {
    const auto result = kernels::run_conv2d_3x3(ring64, img, f.kernel);
    const bool ok =
        result.output == dsp::conv2d_3x3_reference(img, f.kernel);
    std::printf("  %-8s %zu Dnodes, %.2f cycles/pixel, bit-exact: %s\n",
                f.name, result.dnodes_used, result.cycles_per_pixel,
                ok ? "yes" : "NO");
    dump(result.output, out_dir + "/filter_" + f.name + ".pgm", f.bias,
         f.shift);
    if (!ok) return 1;
  }
  std::ofstream orig(out_dir + "/filter_input.pgm", std::ios::binary);
  orig << img.to_pgm();
  std::printf("  PGMs written to %s/filter_*.pgm\n", out_dir.c_str());
  return 0;
}
