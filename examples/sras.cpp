// sras — the Systolic Ring assembler tool (paper §5.1: "to program
// this structure we wrote an assembling tool, which parses both RISC
// level and Ring level assembler primitives; it directly generates the
// machine object code, ready to be executed in the architecture").
//
// Usage:
//   sras <input.sasm> -o <output.srgo>      assemble to object code
//   sras -d <object.srgo>                   disassemble to stdout
//   sras -r <object.srgo> [max_cycles]      load and run (host FIFOs
//                                           empty; prints statistics)
//
// Run-mode observability flags:
//   --trace-format=<text|jsonl|chrome>      structured cycle trace
//   --trace-out <path>                      trace file (default stdout)
//   --report-json <path>                    machine-readable RunReport
//
// Run-mode fleet flags (batch-execution runtime):
//   --workers <n>                           worker threads (default 1)
//   --batch <n>                             run the program n times
//                                           across the fleet; outputs
//                                           must stay bit-identical
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "asm/assembler.hpp"
#include "asm/disassembler.hpp"
#include "asm/object_file.hpp"
#include "common/error.hpp"
#include "obs/cli.hpp"
#include "obs/sinks.hpp"
#include "rt/runtime.hpp"
#include "sim/report.hpp"
#include "sim/system.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sras <input.sasm> -o <output.srgo>\n"
               "  sras -d <object.srgo>\n"
               "  sras -r <object.srgo> [max_cycles]\n"
               "        [--trace-format=<text|jsonl|chrome>]\n"
               "        [--trace-out <path>] [--report-json <path>]\n"
               "        [--workers <n>] [--batch <n>]\n");
  return 2;
}

std::unique_ptr<sring::obs::EventSink> make_sink(const std::string& format,
                                                 std::ostream& out) {
  using namespace sring::obs;
  if (format == "text") return std::make_unique<TextSink>(out);
  if (format == "jsonl") return std::make_unique<JsonlSink>(out);
  if (format == "chrome") return std::make_unique<ChromeTraceSink>(out);
  throw sring::SimError("unknown trace format: " + format +
                        " (expected text, jsonl or chrome)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sring;
  try {
    const std::string trace_format =
        obs::extract_option(argc, argv, "--trace-format").value_or("");
    const std::string trace_out =
        obs::extract_option(argc, argv, "--trace-out").value_or("");
    const std::string report_json =
        obs::extract_option(argc, argv, "--report-json").value_or("");
    const std::string workers_opt =
        obs::extract_option(argc, argv, "--workers").value_or("");
    const std::string batch_opt =
        obs::extract_option(argc, argv, "--batch").value_or("");

    if (argc >= 3 && std::string(argv[1]) == "-d") {
      std::printf("%s", disassemble(load_program(argv[2])).c_str());
      return 0;
    }
    if (argc >= 3 && std::string(argv[1]) == "-r") {
      const LoadableProgram prog = load_program(argv[2]);
      const std::uint64_t budget =
          argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 100000;

      // Fleet mode: replicate the program across the batch-execution
      // runtime.  Host FIFOs start empty, exactly like a single run.
      if (!workers_opt.empty() || !batch_opt.empty()) {
        const std::size_t workers = workers_opt.empty()
                                        ? 1
                                        : std::strtoul(workers_opt.c_str(),
                                                       nullptr, 10);
        const std::size_t batch =
            batch_opt.empty() ? 1
                              : std::strtoul(batch_opt.c_str(), nullptr, 10);
        check(workers >= 1 && batch >= 1,
              "sras: --workers and --batch must be at least 1");

        rt::Job job;
        job.name = prog.name.empty() ? "sras_run" : prog.name;
        job.program = std::make_shared<const LoadableProgram>(prog);
        job.program_key = "sras/" + job.name;
        job.max_cycles = budget;

        rt::RuntimeConfig cfg;
        cfg.workers = workers;
        rt::Runtime runtime(cfg);
        std::vector<rt::Job> jobs(batch, job);
        const auto results = runtime.submit_batch(std::move(jobs));

        std::uint64_t cycles = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
          check(results[i].ok, "sras: job " + std::to_string(i) +
                                   " failed: " + results[i].error);
          check(results[i].outputs == results[0].outputs,
                "sras: job " + std::to_string(i) +
                    " outputs diverged from job 0");
          cycles += results[i].report.stats.cycles;
        }
        std::printf(
            "ran %zu jobs on %zu workers: %llu total simulated cycles, "
            "outputs bit-identical\n",
            results.size(), runtime.worker_count(),
            static_cast<unsigned long long>(cycles));

        RunReport report = results[0].report;
        report.extra("rt_workers", std::uint64_t{runtime.worker_count()})
            .extra("rt_batch", std::uint64_t{batch})
            .extra("rt_total_cycles", cycles);
        maybe_write_run_report(report, report_json);
        return 0;
      }

      System sys({prog.geometry});
      sys.load(prog);

      // Trace sink: stream borrowed, sink owned here; end() runs
      // before either goes away (System::set_trace never finalizes).
      std::ofstream trace_file;
      std::unique_ptr<obs::EventSink> sink;
      if (!trace_format.empty()) {
        std::ostream* out = &std::cout;
        if (!trace_out.empty()) {
          trace_file.open(trace_out);
          check(trace_file.good(),
                "cannot open trace file: " + trace_out);
          out = &trace_file;
        }
        sink = make_sink(trace_format, *out);
        sys.set_trace(sink.get());
      }

      sys.run_until_halt(budget);
      if (sink) {
        sys.set_trace(nullptr);
        sink->end();
      }

      std::printf("halted after %llu cycles\n%s\n",
                  static_cast<unsigned long long>(sys.cycle()),
                  sys.stats().to_string().c_str());
      maybe_write_run_report(
          RunReport::from_system(prog.name.empty() ? "sras_run" : prog.name,
                                 sys),
          report_json);
      return 0;
    }
    if (argc == 4 && std::string(argv[2]) == "-o") {
      std::ifstream in(argv[1]);
      if (!in.good()) {
        std::fprintf(stderr, "sras: cannot open %s\n", argv[1]);
        return 1;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      const LoadableProgram prog = assemble(ss.str());
      save_program(prog, argv[3]);
      std::printf(
          "%s: %zu controller words, %zu pages, %zu local writes -> %s\n",
          prog.name.empty() ? argv[1] : prog.name.c_str(),
          prog.controller_code.size(), prog.pages.size(),
          prog.local_init.size(), argv[3]);
      return 0;
    }
    return usage();
  } catch (const AsmError& e) {
    std::fprintf(stderr, "sras: %s\n", e.what());
    return 1;
  } catch (const SimError& e) {
    std::fprintf(stderr, "sras: %s\n", e.what());
    return 1;
  }
}
