// sras — the Systolic Ring assembler tool (paper §5.1: "to program
// this structure we wrote an assembling tool, which parses both RISC
// level and Ring level assembler primitives; it directly generates the
// machine object code, ready to be executed in the architecture").
//
// Usage:
//   sras <input.sasm> -o <output.srgo>      assemble to object code
//   sras -d <object.srgo>                   disassemble to stdout
//   sras -r <object.srgo> [max_cycles]      load and run (host FIFOs
//                                           empty; prints statistics)
//
// Run-mode observability flags:
//   --trace-format=<text|jsonl|chrome>      structured cycle trace
//   --trace-out <path>                      trace file (default stdout)
//   --report-json <path>                    machine-readable RunReport
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "asm/assembler.hpp"
#include "asm/disassembler.hpp"
#include "asm/object_file.hpp"
#include "common/error.hpp"
#include "obs/cli.hpp"
#include "obs/sinks.hpp"
#include "sim/report.hpp"
#include "sim/system.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sras <input.sasm> -o <output.srgo>\n"
               "  sras -d <object.srgo>\n"
               "  sras -r <object.srgo> [max_cycles]\n"
               "        [--trace-format=<text|jsonl|chrome>]\n"
               "        [--trace-out <path>] [--report-json <path>]\n");
  return 2;
}

std::unique_ptr<sring::obs::EventSink> make_sink(const std::string& format,
                                                 std::ostream& out) {
  using namespace sring::obs;
  if (format == "text") return std::make_unique<TextSink>(out);
  if (format == "jsonl") return std::make_unique<JsonlSink>(out);
  if (format == "chrome") return std::make_unique<ChromeTraceSink>(out);
  throw sring::SimError("unknown trace format: " + format +
                        " (expected text, jsonl or chrome)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sring;
  try {
    const std::string trace_format =
        obs::extract_option(argc, argv, "--trace-format").value_or("");
    const std::string trace_out =
        obs::extract_option(argc, argv, "--trace-out").value_or("");
    const std::string report_json =
        obs::extract_option(argc, argv, "--report-json").value_or("");

    if (argc >= 3 && std::string(argv[1]) == "-d") {
      std::printf("%s", disassemble(load_program(argv[2])).c_str());
      return 0;
    }
    if (argc >= 3 && std::string(argv[1]) == "-r") {
      const LoadableProgram prog = load_program(argv[2]);
      const std::uint64_t budget =
          argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 100000;
      System sys({prog.geometry});
      sys.load(prog);

      // Trace sink: stream borrowed, sink owned here; end() runs
      // before either goes away (System::set_trace never finalizes).
      std::ofstream trace_file;
      std::unique_ptr<obs::EventSink> sink;
      if (!trace_format.empty()) {
        std::ostream* out = &std::cout;
        if (!trace_out.empty()) {
          trace_file.open(trace_out);
          check(trace_file.good(),
                "cannot open trace file: " + trace_out);
          out = &trace_file;
        }
        sink = make_sink(trace_format, *out);
        sys.set_trace(sink.get());
      }

      sys.run_until_halt(budget);
      if (sink) {
        sys.set_trace(nullptr);
        sink->end();
      }

      std::printf("halted after %llu cycles\n%s\n",
                  static_cast<unsigned long long>(sys.cycle()),
                  sys.stats().to_string().c_str());
      maybe_write_run_report(
          RunReport::from_system(prog.name.empty() ? "sras_run" : prog.name,
                                 sys),
          report_json);
      return 0;
    }
    if (argc == 4 && std::string(argv[2]) == "-o") {
      std::ifstream in(argv[1]);
      if (!in.good()) {
        std::fprintf(stderr, "sras: cannot open %s\n", argv[1]);
        return 1;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      const LoadableProgram prog = assemble(ss.str());
      save_program(prog, argv[3]);
      std::printf(
          "%s: %zu controller words, %zu pages, %zu local writes -> %s\n",
          prog.name.empty() ? argv[1] : prog.name.c_str(),
          prog.controller_code.size(), prog.pages.size(),
          prog.local_init.size(), argv[3]);
      return 0;
    }
    return usage();
  } catch (const AsmError& e) {
    std::fprintf(stderr, "sras: %s\n", e.what());
    return 1;
  } catch (const SimError& e) {
    std::fprintf(stderr, "sras: %s\n", e.what());
    return 1;
  }
}
