// sras — the Systolic Ring assembler tool (paper §5.1: "to program
// this structure we wrote an assembling tool, which parses both RISC
// level and Ring level assembler primitives; it directly generates the
// machine object code, ready to be executed in the architecture").
//
// Usage:
//   sras <input.sasm> -o <output.srgo>      assemble to object code
//   sras -d <object.srgo>                   disassemble to stdout
//   sras -r <object.srgo> [max_cycles]      load and run (host FIFOs
//                                           empty; prints statistics)
//
// Run-mode observability flags:
//   --trace-format=<text|jsonl|chrome>      structured cycle trace
//   --trace-out <path>                      trace file (default stdout)
//   --report-json <path>                    machine-readable RunReport
//
// Run-mode fleet flags (batch-execution runtime):
//   --workers <n>                           worker threads (default 1)
//   --batch <n>                             run the program n times
//                                           across the fleet; outputs
//                                           must stay bit-identical
//
// Serving subcommands (src/net/ remote job-serving subsystem):
//   sras serve [--host H] [--port N] [--workers N] [--queue N]
//              [--port-file P] [--report-json P] [--sample-ms N]
//              [--slow-us N] [--flight-dump P]
//       run a job server until SIGTERM / a client Drain; exits 0 on a
//       clean drain and writes the net+rt metrics report (plus the
//       captured flight records when --flight-dump is given).
//   sras remote [--host H] [--port N] [--kernel all|fir|me|dwt|matvec]
//               [--count N] [--info] [--ping] [--drain]
//       submit deterministic kernel jobs and verify the remote outputs
//       bit-exact against local rt::Runtime execution.
//   sras remote --dfg <graph.dfg> [--count N] [--samples N]
//       parse a text dataflow graph, submit it (as a canonical blob)
//       to the server's compile service --count times, and verify
//       every de-laced output stream bit-exact against the local
//       mapper; run 2+ must be a compile-cache hit.
//
// Mapper subcommand (src/svc/ DFG front end, offline):
//   sras map --dfg-file <graph.dfg> [--layers N] [--lanes N] [--fb N]
//            [--samples N] [--report-json P]
//       parse + map a text dataflow graph, print the placement report
//       and the canonical blob's content hash, and cross-check the
//       mapped program against the golden DSP model.
//   sras stats [--host H] --port N [--count N] [--interval-ms N]
//              [--jsonl] [--flight]
//       poll a live server's GetStats snapshot: counters, per-phase
//       latency quantiles and sampler rates, pretty-printed or as
//       JSONL for scraping; --flight appends the recent span records.
//
// Tiled-GEMM subcommand (src/tile/ scratchpad + tiling engine):
//   sras gemm [--m N] [--k N] [--n N] [--dtype int8|int16] [--shift N]
//             [--mapping os|ws] [--tile-n N] [--scratch-tiles N]
//             [--workers N] [--seed N] [--port N] [--report-json P]
//       run one tiled narrow-int GEMM on the local fleet, verify it
//       bit-exact against the scalar reference and print the
//       tile.scratch.* staging behaviour; with --port, resubmit the
//       same GEMM to a live server (protocol v4) and hold the served
//       words bit-identical to the local run.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "asm/assembler.hpp"
#include "asm/disassembler.hpp"
#include "asm/object_file.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/matvec.hpp"
#include "mapper/mapper.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/cli.hpp"
#include "obs/sinks.hpp"
#include "rt/runtime.hpp"
#include "sim/report.hpp"
#include "sim/system.hpp"
#include "svc/dfg_codec.hpp"
#include "svc/dfg_text.hpp"
#include "tile/gemm_runner.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sras <input.sasm> -o <output.srgo>\n"
               "  sras -d <object.srgo>\n"
               "  sras -r <object.srgo> [max_cycles]\n"
               "        [--trace-format=<text|jsonl|chrome>]\n"
               "        [--trace-out <path>] [--report-json <path>]\n"
               "        [--workers <n>] [--batch <n>]\n"
               "  sras serve [--host H] [--port N] [--workers N]\n"
               "        [--queue N] [--shards N] [--port-file P]\n"
               "        [--report-json P] [--sample-ms N] [--slow-us N]\n"
               "        [--flight-dump P]\n"
               "  sras remote [--host H] [--port N]\n"
               "        [--kernel all|fir|me|dwt|matvec] [--count N]\n"
               "        [--pipeline N] [--batch-wire]\n"
               "        [--info] [--ping] [--drain] [--report-json P]\n"
               "  sras remote --dfg <graph.dfg> --port N [--count N]\n"
               "        [--samples N]\n"
               "  sras map --dfg-file <graph.dfg> [--layers N]\n"
               "        [--lanes N] [--fb N] [--samples N]\n"
               "        [--report-json P]\n"
               "  sras stats [--host H] --port N [--count N]\n"
               "        [--interval-ms N] [--jsonl] [--flight]\n"
               "  sras gemm [--m N] [--k N] [--n N]\n"
               "        [--dtype int8|int16] [--shift N] [--mapping os|ws]\n"
               "        [--tile-n N] [--scratch-tiles N] [--workers N]\n"
               "        [--seed N] [--host H] [--port N]\n"
               "        [--report-json P]\n");
  return 2;
}

std::size_t opt_size(int& argc, char** argv, const char* name,
                     std::size_t fallback) {
  const auto v = sring::obs::extract_option(argc, argv, name);
  return v ? std::strtoul(v->c_str(), nullptr, 10) : fallback;
}

/// Deterministic JobRequests for `sras remote` — same seeding scheme
/// as bench_serve, so remote-vs-local comparison is reproducible.
std::vector<sring::net::JobRequest> build_remote_requests(
    const std::string& kernel, std::size_t count) {
  using namespace sring;
  const RingGeometry geom{8, 2, 16};
  std::vector<net::JobRequest> reqs;
  std::vector<std::string> kinds;
  if (kernel == "all") {
    kinds = {"fir", "me", "dwt", "matvec"};
  } else {
    kinds = {kernel};
  }
  for (const std::string& kind : kinds) {
    for (std::size_t i = 0; i < count; ++i) {
      Rng rng(0x5EEDull + i);
      net::JobRequest req;
      req.geometry = geom;
      if (kind == "fir") {
        req.kernel = net::KernelId::kFir;
        req.fir_coeffs = {1, static_cast<Word>(-2), 3, 4};
        req.input.resize(128);
        for (auto& w : req.input) w = rng.next_word_in(-128, 127);
      } else if (kind == "me") {
        req.kernel = net::KernelId::kMotionEstimation;
        req.me_ref = Image::synthetic(16, 16, 7 + i);
        req.me_cand = Image::shifted(req.me_ref, 1, -1, 11 + i, 2);
        req.me_rx = 4;
        req.me_ry = 4;
        req.me_range = 2;
      } else if (kind == "dwt") {
        req.kernel = net::KernelId::kDwt53;
        req.input.resize(128);
        for (auto& w : req.input) w = rng.next_word_in(-128, 127);
      } else if (kind == "matvec") {
        req.kernel = net::KernelId::kMatvec8;
        const dsp::Matrix8 m = dsp::dct8_matrix_q7();
        for (const auto& row : m) {
          req.matvec_m.insert(req.matvec_m.end(), row.begin(), row.end());
        }
        req.input.resize(64);
        for (auto& w : req.input) w = rng.next_word_in(-64, 63);
      } else {
        throw SimError("sras remote: unknown kernel '" + kind +
                       "' (expected all, fir, me, dwt or matvec)");
      }
      reqs.push_back(std::move(req));
    }
  }
  return reqs;
}

std::string read_text_file(const std::string& path, const char* who) {
  std::ifstream in(path);
  sring::check(in.good(), std::string(who) + ": cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Deterministic per-run input streams for a DFG — reproducible on
/// both ends of the wire, so remote results can be held bit-exact
/// against the local mapper.
std::vector<std::vector<sring::Word>> build_dfg_streams(
    std::size_t input_count, std::size_t samples, std::size_t run) {
  using namespace sring;
  std::vector<std::vector<Word>> streams(input_count);
  Rng rng(0xD0F6ull + 0x9E37ull * run);
  for (auto& s : streams) {
    s.resize(samples);
    for (auto& w : s) w = rng.next_word_in(-200, 200);
  }
  return streams;
}

int cmd_map(int argc, char** argv) {
  using namespace sring;
  const std::string dfg_file =
      obs::extract_option(argc, argv, "--dfg-file").value_or("");
  const std::size_t layers = opt_size(argc, argv, "--layers", 8);
  const std::size_t lanes = opt_size(argc, argv, "--lanes", 2);
  const std::size_t fb = opt_size(argc, argv, "--fb", 16);
  const std::size_t samples = opt_size(argc, argv, "--samples", 32);
  const std::string report_json =
      obs::extract_option(argc, argv, "--report-json").value_or("");
  check(!dfg_file.empty(), "sras map: --dfg-file is required");

  const mapper::Dfg dfg =
      svc::parse_dfg_text(read_text_file(dfg_file, "sras map"));
  const std::vector<std::uint8_t> blob = svc::encode_dfg(dfg);
  const std::uint64_t hash = svc::dfg_hash(blob);
  const RingGeometry geom{layers, lanes, fb};
  const mapper::MappedProgram mapped = mapper::map_dfg(dfg, geom);

  std::printf("%s", mapper::mapping_report(mapped).c_str());
  std::printf(
      "dfg %s: hash %s, %zu byte blob, %zu/%zu dnodes, latency %zu, "
      "%zu input(s), %zu output(s)\n",
      dfg_file.c_str(), svc::dfg_hash_hex(hash).c_str(), blob.size(),
      mapped.dnodes_used, geom.dnode_count(), mapped.max_latency,
      mapped.input_count, mapped.outputs.size());

  // Cross-check the mapped program against the golden DSP model on a
  // deterministic vector — the same discipline the compile service
  // applies server-side.
  bool validated = false;
  if (samples > 0 && mapped.input_count > 0) {
    const auto streams = build_dfg_streams(mapped.input_count, samples, 0);
    const auto golden = mapper::interpret_dfg(dfg, streams);
    const auto run = mapper::run_mapped(mapped, streams);
    check(run.outputs == golden,
          "sras map: mapped program diverges from the golden DSP model");
    validated = true;
    std::printf("validated against the golden model on %zu samples\n",
                samples);
  }

  RunReport report;
  report.name = "sras_map";
  report.extra("schema_version", std::uint64_t{1})
      .extra("dfg_hash", svc::dfg_hash_hex(hash))
      .extra("blob_bytes", std::uint64_t{blob.size()})
      .extra("dnodes_used", std::uint64_t{mapped.dnodes_used})
      .extra("max_latency", std::uint64_t{mapped.max_latency})
      .extra("inputs", std::uint64_t{mapped.input_count})
      .extra("outputs", std::uint64_t{mapped.outputs.size()})
      .extra("validated", validated);
  maybe_write_run_report(report, report_json);
  return 0;
}

int cmd_serve(int argc, char** argv) {
  using namespace sring;
  const std::string host =
      obs::extract_option(argc, argv, "--host").value_or("127.0.0.1");
  const std::size_t port = opt_size(argc, argv, "--port", 0);
  const std::size_t workers = opt_size(argc, argv, "--workers", 0);
  const std::size_t queue = opt_size(argc, argv, "--queue", 64);
  const std::size_t shards = opt_size(argc, argv, "--shards", 1);
  const std::string port_file =
      obs::extract_option(argc, argv, "--port-file").value_or("");
  const std::string report_json =
      obs::extract_option(argc, argv, "--report-json").value_or("");
  const std::size_t sample_ms = opt_size(argc, argv, "--sample-ms", 1000);
  const std::size_t slow_us = opt_size(argc, argv, "--slow-us", 100000);
  const std::string flight_dump =
      obs::extract_option(argc, argv, "--flight-dump").value_or("");
  check(port <= 65535, "sras serve: --port out of range");
  check(queue >= 1, "sras serve: --queue must be at least 1");
  check(shards >= 1 && shards <= 64,
        "sras serve: --shards must be 1..64");
  check(sample_ms >= 1, "sras serve: --sample-ms must be at least 1");

  net::ServerConfig cfg;
  cfg.host = host;
  cfg.port = static_cast<std::uint16_t>(port);
  cfg.runtime.workers = workers;
  cfg.runtime.queue_capacity = queue;
  cfg.shards = shards;
  cfg.sample_interval = std::chrono::milliseconds(sample_ms);
  cfg.slow_threshold_us = slow_us;
  cfg.flight_dump_path = flight_dump;

  net::Server server(cfg);
  server.enable_signal_drain();
  std::printf(
      "sras serve: listening on %s:%u (workers=%zu queue=%zu shards=%zu)\n",
      host.c_str(), server.port(),
      workers == 0 ? std::size_t{0} : workers, queue, shards);
  std::fflush(stdout);
  if (!port_file.empty()) {
    // The port file is how scripts discover an ephemeral port; write
    // it only after listen() succeeded.
    std::ofstream pf(port_file);
    check(pf.good(), "sras serve: cannot write port file " + port_file);
    pf << server.port() << "\n";
  }

  server.run();

  const obs::Registry m = server.metrics();
  const auto counter = [&m](const char* name) {
    const auto* c = m.find_counter(name);
    return c != nullptr ? c->value() : 0;
  };
  const std::uint64_t plan_compiles = counter("ring.plan.compiles");
  const std::uint64_t plan_hits = counter("ring.plan.hits");
  const double plan_hit_rate =
      plan_compiles + plan_hits > 0
          ? static_cast<double>(plan_hits) /
                static_cast<double>(plan_compiles + plan_hits)
          : 0.0;
  std::printf(
      "sras serve: drained cleanly — %llu connections, %llu frames in, "
      "%llu jobs ok, %llu failed, %llu busy-rejects, %llu protocol "
      "errors\n"
      "sras serve: plan cache %llu compiles / %llu hits (%.1f%% hit "
      "rate), %llu superstep cycles\n",
      static_cast<unsigned long long>(counter("net.connections.accepted")),
      static_cast<unsigned long long>(counter("net.frames.in")),
      static_cast<unsigned long long>(counter("net.jobs.completed")),
      static_cast<unsigned long long>(counter("net.jobs.failed")),
      static_cast<unsigned long long>(counter("net.rejects.busy")),
      static_cast<unsigned long long>(counter("net.protocol_errors")),
      static_cast<unsigned long long>(plan_compiles),
      static_cast<unsigned long long>(plan_hits), 100.0 * plan_hit_rate,
      static_cast<unsigned long long>(counter("ring.superstep.cycles")));

  RunReport report;
  report.name = "sras_serve";
  report.metrics = m;
  report.extra("schema_version", std::uint64_t{1})
      .extra("host", host)
      .extra("port", std::uint64_t{server.port()})
      .extra("queue_capacity", std::uint64_t{queue});
  maybe_write_run_report(report, report_json);
  return 0;
}

int cmd_stats(int argc, char** argv) {
  using namespace sring;
  const std::string host =
      obs::extract_option(argc, argv, "--host").value_or("127.0.0.1");
  const std::size_t port = opt_size(argc, argv, "--port", 0);
  const std::size_t count = opt_size(argc, argv, "--count", 1);
  const std::size_t interval_ms =
      opt_size(argc, argv, "--interval-ms", 1000);
  const bool jsonl = obs::extract_flag(argc, argv, "--jsonl");
  const bool flight = obs::extract_flag(argc, argv, "--flight");
  check(port >= 1 && port <= 65535,
        "sras stats: --port is required (1..65535)");
  check(count >= 1, "sras stats: --count must be at least 1");

  net::ClientConfig ccfg;
  ccfg.host = host;
  ccfg.port = static_cast<std::uint16_t>(port);
  net::Client client(ccfg);

  for (std::size_t poll = 0; poll < count; ++poll) {
    if (poll > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    const net::StatsReplyMsg s = client.stats(flight);
    if (jsonl) {
      s.to_json().dump(std::cout);
      std::cout << '\n';
      std::cout.flush();
      continue;
    }
    std::printf(
        "server up %.1fs: %u workers (%.0f%% utilized), queue %u/%u\n",
        static_cast<double>(s.uptime_us) / 1e6, s.workers,
        100.0 * s.worker_utilization, s.queue_depth, s.queue_capacity);
    for (const auto& [name, value] : s.counters) {
      std::printf("  %-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
    for (const auto& q : s.latencies) {
      std::printf(
          "  %-32s n=%-6llu mean %8.0f us  p50 %8.0f  p90 %8.0f  "
          "p99 %8.0f  max %8llu\n",
          q.name.c_str(), static_cast<unsigned long long>(q.count),
          q.mean_us, q.p50_us, q.p90_us, q.p99_us,
          static_cast<unsigned long long>(q.max_us));
    }
    for (const auto& [name, per_sec] : s.rates) {
      std::printf("  %-32s %.1f/s\n", name.c_str(), per_sec);
    }
    for (const auto& rec : s.flight) {
      std::printf(
          "  flight trace=%llu %s%s%s worker=%u queue %u us / exec %u "
          "us / e2e %u us\n",
          static_cast<unsigned long long>(rec.trace_id),
          rec.name.c_str(), rec.slow ? " SLOW" : "",
          rec.ok ? "" : " FAILED", rec.worker, rec.queue_wait_us,
          rec.execute_us, rec.e2e_us);
    }
    std::fflush(stdout);
  }
  return 0;
}

int cmd_remote(int argc, char** argv) {
  using namespace sring;
  const std::string host =
      obs::extract_option(argc, argv, "--host").value_or("127.0.0.1");
  const std::size_t port = opt_size(argc, argv, "--port", 0);
  const std::string kernel =
      obs::extract_option(argc, argv, "--kernel").value_or("all");
  const std::string dfg_file =
      obs::extract_option(argc, argv, "--dfg").value_or("");
  const std::size_t samples = opt_size(argc, argv, "--samples", 32);
  const std::size_t count = opt_size(argc, argv, "--count", 4);
  const std::size_t pipeline = opt_size(argc, argv, "--pipeline", 0);
  const bool batch_wire = obs::extract_flag(argc, argv, "--batch-wire");
  const bool info = obs::extract_flag(argc, argv, "--info");
  const bool do_ping = obs::extract_flag(argc, argv, "--ping");
  const bool do_drain = obs::extract_flag(argc, argv, "--drain");
  const std::string report_json =
      obs::extract_option(argc, argv, "--report-json").value_or("");
  check(port >= 1 && port <= 65535,
        "sras remote: --port is required (1..65535)");
  check(count >= 1, "sras remote: --count must be at least 1");

  net::ClientConfig ccfg;
  ccfg.host = host;
  ccfg.port = static_cast<std::uint16_t>(port);
  net::Client client(ccfg);

  if (do_ping) {
    std::printf("ping: %.1f us\n", client.ping());
    return 0;
  }
  if (info) {
    const net::ServerInfoMsg si = client.server_info();
    std::printf(
        "server %s: protocol v%u, %u workers, queue %u, max frame %u "
        "bytes, %llu jobs completed\n",
        si.server.c_str(), si.protocol_version, si.workers,
        si.queue_capacity, si.max_frame_bytes,
        static_cast<unsigned long long>(si.jobs_completed));
    return 0;
  }
  if (do_drain) {
    check(client.drain(), "sras remote: server did not acknowledge drain");
    std::printf("drain acknowledged\n");
    return 0;
  }

  // DFG mode: compile + run a dataflow graph remotely --count times,
  // verifying every de-laced stream against the local mapper.  The
  // graph blob is identical each run, so run 2+ must hit the server's
  // compile cache.
  if (!dfg_file.empty()) {
    check(samples >= 1, "sras remote: --samples must be at least 1");
    const mapper::Dfg dfg =
        svc::parse_dfg_text(read_text_file(dfg_file, "sras remote"));
    const std::vector<std::uint8_t> blob = svc::encode_dfg(dfg);
    const RingGeometry geom{8, 2, 16};
    const mapper::MappedProgram mapped = mapper::map_dfg(dfg, geom);
    check(mapped.input_count > 0,
          "sras remote: the graph has no input nodes to stream");

    std::size_t cache_hits = 0;
    double total_us = 0.0;
    for (std::size_t run = 0; run < count; ++run) {
      const auto streams =
          build_dfg_streams(mapped.input_count, samples, run);
      const auto t0 = std::chrono::steady_clock::now();
      const net::RemoteDfgResult r = client.submit_dfg(blob, streams, geom);
      const auto t1 = std::chrono::steady_clock::now();
      total_us +=
          std::chrono::duration<double, std::micro>(t1 - t0).count();
      check(r.ok, "sras remote: DFG run " + std::to_string(run) +
                      " failed: " + (r.busy ? "busy" : r.error));
      const auto local = mapper::run_mapped(mapped, streams);
      check(r.streams == local.outputs,
            "sras remote: DFG run " + std::to_string(run) +
                " outputs diverged from the local mapper");
      if (r.cache_hit) ++cache_hits;
      std::printf("dfg run %zu: hash %s %s, %zu stream(s) bit-exact\n",
                  run, sring::svc::dfg_hash_hex(r.dfg_hash).c_str(),
                  r.cache_hit ? "cache hit" : "compiled",
                  r.streams.size());
    }
    check(count < 2 || cache_hits >= count - 1,
          "sras remote: expected compile-cache hits after the first run");
    std::printf(
        "%zu DFG runs remote == local bit-exact; %zu cache hit(s), "
        "mean latency %.1f us\n",
        count, cache_hits, total_us / static_cast<double>(count));

    RunReport report;
    report.name = "sras_remote_dfg";
    report.extra("schema_version", std::uint64_t{1})
        .extra("dfg_file", dfg_file)
        .extra("runs", std::uint64_t{count})
        .extra("cache_hits", std::uint64_t{cache_hits})
        .extra("mean_latency_us", total_us / static_cast<double>(count))
        .extra("outputs_bit_identical", true);
    maybe_write_run_report(report, report_json);
    return 0;
  }

  // Verification mode: run the same deterministic jobs locally and
  // remotely; every output word must match.
  const std::vector<net::JobRequest> reqs =
      build_remote_requests(kernel, count);
  rt::Runtime local;
  std::vector<rt::Job> local_jobs;
  local_jobs.reserve(reqs.size());
  for (const auto& req : reqs) local_jobs.push_back(net::to_rt_job(req));
  const std::vector<rt::JobResult> expected =
      local.submit_batch(std::move(local_jobs));

  check(!(batch_wire && pipeline > 0),
        "sras remote: --batch-wire and --pipeline are mutually exclusive");

  const char* mode = batch_wire ? "batch-wire"
                     : pipeline > 0 ? "pipelined"
                                    : "sequential";
  double total_us = 0.0;
  std::uint64_t remote_cycles = 0;
  std::vector<net::RemoteResult> results;
  if (batch_wire || pipeline > 0) {
    const auto t0 = std::chrono::steady_clock::now();
    results = batch_wire ? client.submit_batch_wire(reqs)
                         : client.submit_pipelined(reqs, pipeline);
    const auto t1 = std::chrono::steady_clock::now();
    total_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  } else {
    results.reserve(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      results.push_back(client.submit(reqs[i]));
      const auto t1 = std::chrono::steady_clock::now();
      total_us +=
          std::chrono::duration<double, std::micro>(t1 - t0).count();
    }
  }
  check(results.size() == reqs.size(),
        "sras remote: result count mismatch");
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const net::RemoteResult& r = results[i];
    check(r.ok, "sras remote: job " + std::to_string(i) +
                    " failed: " + (r.busy ? "busy" : r.error));
    check(expected[i].ok, "sras remote: local reference job " +
                              std::to_string(i) +
                              " failed: " + expected[i].error);
    check(r.outputs == expected[i].outputs,
          "sras remote: job " + std::to_string(i) +
              " outputs diverged from local execution");
    remote_cycles += r.sim_cycles;
  }
  std::printf(
      "%zu jobs (%s, %s) remote == local bit-exact; mean latency %.1f "
      "us, %llu simulated cycles\n",
      reqs.size(), kernel.c_str(), mode,
      total_us / static_cast<double>(reqs.size()),
      static_cast<unsigned long long>(remote_cycles));

  RunReport report;
  report.name = "sras_remote";
  report.extra("schema_version", std::uint64_t{1})
      .extra("kernel", kernel)
      .extra("mode", std::string(mode))
      .extra("jobs", std::uint64_t{reqs.size()})
      .extra("mean_latency_us",
             total_us / static_cast<double>(reqs.size()))
      .extra("outputs_bit_identical", true);
  maybe_write_run_report(report, report_json);
  return 0;
}

int cmd_gemm(int argc, char** argv) {
  using namespace sring;
  const std::size_t m = opt_size(argc, argv, "--m", 64);
  const std::size_t k = opt_size(argc, argv, "--k", 64);
  const std::size_t n = opt_size(argc, argv, "--n", 64);
  const std::string dtype_s =
      obs::extract_option(argc, argv, "--dtype").value_or("int8");
  const std::size_t shift = opt_size(argc, argv, "--shift", 5);
  const std::string mapping_s =
      obs::extract_option(argc, argv, "--mapping").value_or("os");
  const std::size_t tile_n = opt_size(argc, argv, "--tile-n", 8);
  const std::size_t scratch = opt_size(argc, argv, "--scratch-tiles", 128);
  const std::size_t workers = opt_size(argc, argv, "--workers", 0);
  const std::size_t seed = opt_size(argc, argv, "--seed", 1);
  const std::string host =
      obs::extract_option(argc, argv, "--host").value_or("127.0.0.1");
  const std::size_t port = opt_size(argc, argv, "--port", 0);
  const std::string report_json =
      obs::extract_option(argc, argv, "--report-json").value_or("");
  check(port <= 65535, "sras gemm: --port out of range");

  tile::GemmSpec spec;
  spec.m = m;
  spec.k = k;
  spec.n = n;
  if (dtype_s == "int8") {
    spec.dtype = tile::Dtype::kInt8;
  } else if (dtype_s == "int16") {
    spec.dtype = tile::Dtype::kInt16;
  } else {
    throw SimError("sras gemm: unknown --dtype '" + dtype_s +
                   "' (expected int8 or int16)");
  }
  spec.shift = static_cast<unsigned>(shift);
  if (mapping_s == "os") {
    spec.mapping = tile::Mapping::kOutputStationary;
  } else if (mapping_s == "ws") {
    spec.mapping = tile::Mapping::kWeightStationary;
  } else {
    throw SimError("sras gemm: unknown --mapping '" + mapping_s +
                   "' (expected os or ws)");
  }
  spec.tile_n = tile_n;
  spec.validate();

  const auto a =
      tile::random_operand(spec.m * spec.k, spec.dtype, 0xA11Aull + seed);
  const auto b =
      tile::random_operand(spec.k * spec.n, spec.dtype, 0xB22Bull + seed);

  rt::RuntimeConfig rcfg;
  rcfg.workers = workers;
  rt::Runtime runtime(rcfg);
  tile::GemmRunConfig gcfg;
  gcfg.scratch_tiles = scratch;
  const auto t0 = std::chrono::steady_clock::now();
  const tile::GemmResult res = tile::run_gemm(runtime, gcfg, spec, a, b);
  const auto t1 = std::chrono::steady_clock::now();
  const double local_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  check(res.c == tile::gemm_reference(spec, a, b),
        "sras gemm: fleet output diverged from the scalar reference");

  std::printf(
      "sras gemm: %zux%zux%zu %s shift=%u %s tile_n=%zu scratch=%zu "
      "workers=%zu\n"
      "  verified bit-exact against the scalar int GEMM reference\n"
      "  %-28s %llu\n  %-28s %llu\n  %-28s %llu\n  %-28s %llu\n"
      "  %-28s %llu\n  %-28s %llu\n  %-28s %llu\n  %-28s %llu\n"
      "  traffic reduction %.2fx (%.1f us local)\n",
      spec.m, spec.k, spec.n, tile::dtype_name(spec.dtype), spec.shift,
      tile::mapping_name(spec.mapping), spec.tile_n, scratch,
      runtime.worker_count(), "tile.jobs",
      static_cast<unsigned long long>(res.jobs), "tile.sim_cycles",
      static_cast<unsigned long long>(res.sim_cycles), "tile.scratch.hits",
      static_cast<unsigned long long>(res.scratch_hits),
      "tile.scratch.refills",
      static_cast<unsigned long long>(res.scratch_refills),
      "tile.scratch.evictions",
      static_cast<unsigned long long>(res.scratch_evictions),
      "tile.scratch.bytes_filled",
      static_cast<unsigned long long>(res.bytes_filled),
      "tile.scratch.bytes_saved",
      static_cast<unsigned long long>(res.bytes_saved),
      "tile.streamed_bytes",
      static_cast<unsigned long long>(res.schedule.streamed_bytes),
      res.traffic_reduction, local_us);

  // Served verification: the same spec + operands through a live v4
  // server must reproduce the local words exactly — the wrapping-fold
  // accumulation is order-independent, so asynchronous server-side
  // tile completion cannot change a single bit.
  bool served = false;
  if (port != 0) {
    net::ClientConfig ccfg;
    ccfg.host = host;
    ccfg.port = static_cast<std::uint16_t>(port);
    net::Client client(ccfg);
    const net::RemoteGemmResult r = client.submit_gemm(
        spec, a, b, gcfg.geometry, static_cast<std::uint32_t>(scratch));
    check(r.ok, "sras gemm: served run failed: " +
                    (r.busy ? std::string("busy") : r.error));
    check(r.c == res.c,
          "sras gemm: served outputs diverged from the local fleet");
    check(r.counter("tile.scratch.hits") == res.scratch_hits,
          "sras gemm: served scratchpad behaviour diverged from local");
    served = true;
    std::printf(
        "  served == local bit-exact (%llu sim cycles, %u us server "
        "e2e)\n",
        static_cast<unsigned long long>(r.sim_cycles),
        static_cast<unsigned>(r.total_us));
  }

  RunReport report;
  report.name = "sras_gemm";
  report.extra("schema_version", std::uint64_t{1})
      .extra("m", std::uint64_t{spec.m})
      .extra("k", std::uint64_t{spec.k})
      .extra("n", std::uint64_t{spec.n})
      .extra("dtype", std::string(tile::dtype_name(spec.dtype)))
      .extra("mapping", std::string(tile::mapping_name(spec.mapping)))
      .extra("tile_n", std::uint64_t{spec.tile_n})
      .extra("scratch_tiles", std::uint64_t{scratch})
      .extra("tile_jobs", res.jobs)
      .extra("scratch_hits", res.scratch_hits)
      .extra("scratch_refills", res.scratch_refills)
      .extra("bytes_filled", res.bytes_filled)
      .extra("bytes_saved", res.bytes_saved)
      .extra("traffic_reduction", res.traffic_reduction)
      .extra("outputs_bit_identical", true)
      .extra("served_verified", served);
  maybe_write_run_report(report, report_json);
  return 0;
}

std::unique_ptr<sring::obs::EventSink> make_sink(const std::string& format,
                                                 std::ostream& out) {
  using namespace sring::obs;
  if (format == "text") return std::make_unique<TextSink>(out);
  if (format == "jsonl") return std::make_unique<JsonlSink>(out);
  if (format == "chrome") return std::make_unique<ChromeTraceSink>(out);
  throw sring::SimError("unknown trace format: " + format +
                        " (expected text, jsonl or chrome)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sring;
  try {
    // Serving subcommands claim their own flags (--workers etc. mean
    // different things there), so dispatch before generic parsing.
    if (argc >= 2 && std::string(argv[1]) == "serve") {
      return cmd_serve(argc, argv);
    }
    if (argc >= 2 && std::string(argv[1]) == "remote") {
      return cmd_remote(argc, argv);
    }
    if (argc >= 2 && std::string(argv[1]) == "stats") {
      return cmd_stats(argc, argv);
    }
    if (argc >= 2 && std::string(argv[1]) == "map") {
      return cmd_map(argc, argv);
    }
    if (argc >= 2 && std::string(argv[1]) == "gemm") {
      return cmd_gemm(argc, argv);
    }

    const std::string trace_format =
        obs::extract_option(argc, argv, "--trace-format").value_or("");
    const std::string trace_out =
        obs::extract_option(argc, argv, "--trace-out").value_or("");
    const std::string report_json =
        obs::extract_option(argc, argv, "--report-json").value_or("");
    const std::string workers_opt =
        obs::extract_option(argc, argv, "--workers").value_or("");
    const std::string batch_opt =
        obs::extract_option(argc, argv, "--batch").value_or("");

    if (argc >= 3 && std::string(argv[1]) == "-d") {
      std::printf("%s", disassemble(load_program(argv[2])).c_str());
      return 0;
    }
    if (argc >= 3 && std::string(argv[1]) == "-r") {
      const LoadableProgram prog = load_program(argv[2]);
      const std::uint64_t budget =
          argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 100000;

      // Fleet mode: replicate the program across the batch-execution
      // runtime.  Host FIFOs start empty, exactly like a single run.
      if (!workers_opt.empty() || !batch_opt.empty()) {
        const std::size_t workers = workers_opt.empty()
                                        ? 1
                                        : std::strtoul(workers_opt.c_str(),
                                                       nullptr, 10);
        const std::size_t batch =
            batch_opt.empty() ? 1
                              : std::strtoul(batch_opt.c_str(), nullptr, 10);
        check(workers >= 1 && batch >= 1,
              "sras: --workers and --batch must be at least 1");

        rt::Job job;
        job.name = prog.name.empty() ? "sras_run" : prog.name;
        job.program = std::make_shared<const LoadableProgram>(prog);
        job.program_key = "sras/" + job.name;
        job.max_cycles = budget;

        rt::RuntimeConfig cfg;
        cfg.workers = workers;
        rt::Runtime runtime(cfg);
        std::vector<rt::Job> jobs(batch, job);
        const auto results = runtime.submit_batch(std::move(jobs));

        std::uint64_t cycles = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
          check(results[i].ok, "sras: job " + std::to_string(i) +
                                   " failed: " + results[i].error);
          check(results[i].outputs == results[0].outputs,
                "sras: job " + std::to_string(i) +
                    " outputs diverged from job 0");
          cycles += results[i].report.stats.cycles;
        }
        std::printf(
            "ran %zu jobs on %zu workers: %llu total simulated cycles, "
            "outputs bit-identical\n",
            results.size(), runtime.worker_count(),
            static_cast<unsigned long long>(cycles));

        RunReport report = results[0].report;
        report.extra("rt_workers", std::uint64_t{runtime.worker_count()})
            .extra("rt_batch", std::uint64_t{batch})
            .extra("rt_total_cycles", cycles);
        maybe_write_run_report(report, report_json);
        return 0;
      }

      System sys({prog.geometry});
      sys.load(prog);

      // Trace sink: stream borrowed, sink owned here; end() runs
      // before either goes away (System::set_trace never finalizes).
      std::ofstream trace_file;
      std::unique_ptr<obs::EventSink> sink;
      if (!trace_format.empty()) {
        std::ostream* out = &std::cout;
        if (!trace_out.empty()) {
          trace_file.open(trace_out);
          check(trace_file.good(),
                "cannot open trace file: " + trace_out);
          out = &trace_file;
        }
        sink = make_sink(trace_format, *out);
        sys.set_trace(sink.get());
      }

      sys.run_until_halt(budget);
      if (sink) {
        sys.set_trace(nullptr);
        sink->end();
      }

      std::printf("halted after %llu cycles\n%s\n",
                  static_cast<unsigned long long>(sys.cycle()),
                  sys.stats().to_string().c_str());
      maybe_write_run_report(
          RunReport::from_system(prog.name.empty() ? "sras_run" : prog.name,
                                 sys),
          report_json);
      return 0;
    }
    if (argc == 4 && std::string(argv[2]) == "-o") {
      std::ifstream in(argv[1]);
      if (!in.good()) {
        std::fprintf(stderr, "sras: cannot open %s\n", argv[1]);
        return 1;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      const LoadableProgram prog = assemble(ss.str());
      save_program(prog, argv[3]);
      std::printf(
          "%s: %zu controller words, %zu pages, %zu local writes -> %s\n",
          prog.name.empty() ? argv[1] : prog.name.c_str(),
          prog.controller_code.size(), prog.pages.size(),
          prog.local_init.size(), argv[3]);
      return 0;
    }
    return usage();
  } catch (const AsmError& e) {
    std::fprintf(stderr, "sras: %s\n", e.what());
    return 1;
  } catch (const SimError& e) {
    std::fprintf(stderr, "sras: %s\n", e.what());
    return 1;
  }
}
