// Motion-estimation demo (the paper's §5.1 video use case): estimate
// the motion field between two frames with the Ring-16 SAD engine and
// cross-check one block against the MMX and ASIC baselines.
//
//   $ ./motion_demo
#include <cstdio>

#include "baseline/asic_me.hpp"
#include "baseline/mmx.hpp"
#include "common/image.hpp"
#include "kernels/motion_estimation.hpp"

int main() {
  using namespace sring;
  const RingGeometry ring16{8, 2, 16};

  // Two synthetic frames: the scene moves by (+3, -2) pixels.
  const Image frame0 = Image::synthetic(96, 96, 7);
  const Image frame1 = Image::shifted(frame0, 3, -2, 99, 3);

  std::printf("motion field (8x8 blocks, +-8 search) on a Ring-16:\n");
  std::uint64_t total_cycles = 0;
  for (std::size_t by = 16; by + 24 <= 96; by += 16) {
    std::printf("  ");
    for (std::size_t bx = 16; bx + 24 <= 96; bx += 16) {
      const auto mv =
          kernels::run_motion_estimation(ring16, frame0, bx, by, frame1, 8);
      total_cycles += mv.cycles;
      std::printf("(%+d,%+d) ", mv.best.dx, mv.best.dy);
    }
    std::printf("\n");
  }
  std::printf("(planted motion was (+3,-2))\n\n");

  // One block, three engines.
  const auto ring = kernels::run_motion_estimation(ring16, frame0, 40, 40,
                                                   frame1, 8);
  const auto mmx = baseline::mmx_motion_estimation(frame0, 40, 40, frame1, 8);
  const auto asic = baseline::asic_motion_estimation(frame0, 40, 40,
                                                     frame1, 8);
  std::printf("one 8x8 block, 289 candidates:\n");
  std::printf("  %-22s %8s  best\n", "engine", "cycles");
  std::printf("  %-22s %8llu  (%+d,%+d) sad=%u\n", "ASIC PE-array [7]",
              static_cast<unsigned long long>(asic.cycles), asic.best.dx,
              asic.best.dy, asic.best.sad);
  std::printf("  %-22s %8llu  (%+d,%+d) sad=%u\n", "Systolic Ring-16",
              static_cast<unsigned long long>(ring.cycles), ring.best.dx,
              ring.best.dy, ring.best.sad);
  std::printf("  %-22s %8llu  (%+d,%+d) sad=%u\n", "Pentium MMX [8]",
              static_cast<unsigned long long>(mmx.stats.cycles),
              mmx.best.dx, mmx.best.dy, mmx.best.sad);
  return 0;
}
