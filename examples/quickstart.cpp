// Quickstart: build a Systolic Ring program three ways (assembly text,
// ProgramBuilder, kernel generator), run it cycle-accurately, and read
// the results back.
//
//   $ ./quickstart
#include <cstdio>

#include "asm/assembler.hpp"
#include "asm/disassembler.hpp"
#include "asm/program_builder.hpp"
#include "kernels/fir_kernel.hpp"
#include "sim/system.hpp"

namespace {

// A Ring-8 (4 layers x 2 lanes): one Dnode in stand-alone (local) mode
// multiply-accumulates host word pairs and streams every partial sum.
constexpr const char* kSource = R"(
.name quickstart
.ring 4 2 16

.controller
    page  boot          ; apply the configuration, one cycle
    halt                ; the ring keeps computing on its own

.page boot
    dnode 0.0 local
    switch 0.0 in1=host in2=host

.local 0.0
{
    mac r0, in1, in2, r0 host
}
)";

}  // namespace

int main() {
  using namespace sring;

  // 1. Assemble and load.
  const LoadableProgram prog = assemble(kSource);
  System sys({prog.geometry});
  sys.load(prog);

  // 2. Stream a dot product: sum of i * (i+1) for i = 1..8.
  std::vector<Word> pairs;
  for (Word i = 1; i <= 8; ++i) {
    pairs.push_back(i);
    pairs.push_back(static_cast<Word>(i + 1));
  }
  sys.host().send(pairs);
  sys.run_until_outputs(8, 1000);

  std::printf("running MAC of (1*2, 2*3, ..., 8*9):\n  ");
  for (const Word w : sys.host().take_received()) {
    std::printf("%d ", as_signed(w));
  }
  std::printf("\n  (%llu cycles, %llu Dnode ops)\n\n",
              static_cast<unsigned long long>(sys.stats().cycles),
              static_cast<unsigned long long>(sys.stats().dnode_ops));

  // 3. The same program can be disassembled back to source.
  std::printf("disassembly of the loaded object:\n%s\n",
              disassemble(prog).c_str());

  // 4. Kernel generators build bigger pipelines programmatically: a
  //    4-tap systolic FIR on a Ring-16, one sample per cycle.
  const RingGeometry ring16{8, 2, 16};
  std::vector<Word> x;
  for (int i = 0; i < 16; ++i) x.push_back(to_word(i % 5 - 2));
  const std::vector<Word> coeffs = {1, 2, 3, 4};
  const auto fir = kernels::run_spatial_fir(ring16, x, coeffs);
  std::printf("4-tap systolic FIR over 16 samples (%.2f cycles/sample):\n  ",
              fir.cycles_per_sample);
  for (const Word w : fir.outputs) std::printf("%d ", as_signed(w));
  std::printf("\n");
  return 0;
}
