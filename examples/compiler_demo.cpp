// Compiler demo — the paper's §6 "future work" tool: describe a
// filter as a dataflow graph, let the mapper place it on the ring
// (one Dnode per operator, delays absorbed by the feedback
// pipelines), then run it and compare against the golden interpreter.
//
//   $ ./compiler_demo
#include <cstdio>

#include "asm/disassembler.hpp"
#include "common/rng.hpp"
#include "mapper/mapper.hpp"

int main() {
  using namespace sring;
  using namespace sring::mapper;

  // A small edge-enhancement filter over one stream:
  //   smooth[n] = (x[n] + 2 x[n-1] + x[n-2]) >> 2
  //   edge[n]   = |x[n] - x[n-2]|
  //   y[n]      = smooth[n] + (edge[n] >> 1)
  Dfg g;
  const auto x = g.add_input("x");
  const auto x1 = g.add_delay(x, 1);
  const auto x2 = g.add_delay(x, 2);
  const auto twice_mid = g.add_binary(DfgOp::kShl, x1, g.add_const(1));
  const auto ends = g.add_binary(DfgOp::kAdd, x, x2);
  const auto sum = g.add_binary(DfgOp::kAdd, ends, twice_mid);
  const auto smooth = g.add_binary(DfgOp::kAsr, sum, g.add_const(2));
  const auto edge = g.add_binary(DfgOp::kAbsdiff, x, x2);
  const auto half_edge = g.add_binary(DfgOp::kAsr, edge, g.add_const(1));
  const auto y = g.add_binary(DfgOp::kAdd, smooth, half_edge);
  g.mark_output(smooth, "smooth");
  g.mark_output(y, "enhanced");

  // Layer 1 holds three operators, so use a 4-lane ring (Ring-32).
  const RingGeometry ring32{8, 4, 16};
  const auto mapped = map_dfg(g, ring32);
  std::printf("mapped %zu DFG nodes onto %zu of %zu Dnodes\n\n%s",
              g.nodes().size(), mapped.dnodes_used, ring32.dnode_count(),
              mapping_report(mapped).c_str());

  Rng rng(12);
  std::vector<Word> stream(64);
  for (auto& v : stream) v = rng.next_word_in(0, 255);
  const auto run = run_mapped(mapped, {stream});
  const auto golden = interpret_dfg(g, {stream});

  std::printf("\nring vs interpreter, first 12 samples of 'enhanced':\n");
  std::printf("  ring:   ");
  for (int i = 0; i < 12; ++i) std::printf("%4d", as_signed(run.outputs[1][i]));
  std::printf("\n  golden: ");
  for (int i = 0; i < 12; ++i) std::printf("%4d", as_signed(golden[1][i]));
  std::printf("\n  bit-exact: %s, %.2f cycles/sample\n",
              run.outputs == golden ? "yes" : "NO",
              run.cycles_per_sample);

  std::printf("\ngenerated configuration (disassembled):\n%s",
              disassemble(mapped.program).c_str());
  return run.outputs == golden ? 0 : 1;
}
