// Recreation of the paper's fig. 6 APEX-board prototype in simulation:
//
//   "A Ring-8 version including the configuration controller has been
//    synthesized and implemented.  This core reads its configuration
//    code from a preloaded memory (PRG), and applies the corresponding
//    computations on a 16-bit coded image also preloaded on another
//    memory (IMAGE).  The resulting image is then written on video
//    memory (VIDEO), displayed on a monitor by a VGA controller."
//
// Here: the PRG memory is an object file on disk produced by the
// assembler; IMAGE is the pre-filled host input FIFO; VIDEO is the
// host output stream, dumped as PGM files (the "VGA monitor"); and the
// "logic analyzer" is the cycle trace printed for the first cycles.
//
//   $ ./prototype_fig6 [output_dir]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "asm/assembler.hpp"
#include "asm/object_file.hpp"
#include "common/image.hpp"
#include "obs/sinks.hpp"
#include "sim/system.hpp"
#include "sim/vcd.hpp"

namespace {

// Horizontal edge detector: Dnode 0.0 streams pixels, Dnode 1.0
// computes |x[i] - x[i-1]| through a depth-0 feedback tap.
constexpr const char* kEdgeSource = R"(
.name fig6_edge
.ring 4 2 16

.controller
    page  run
    halt

.page run
    dnode 0.0 { pass none, in1 out }
    switch 0.0 in1=host
    dnode 1.0 { absdiff none, in1, fifo1 host }
    switch 1.0 in1=prev0 fifo1=fb(1,0,0)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace sring;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // --- build & "burn" the PRG memory --------------------------------
  const LoadableProgram prog = assemble(kEdgeSource);
  const std::string prg_path = out_dir + "/fig6_prg.srgo";
  save_program(prog, prg_path);
  std::printf("PRG memory written: %s (%zu controller words, %zu pages)\n",
              prg_path.c_str(), prog.controller_code.size(),
              prog.pages.size());

  // --- IMAGE memory ---------------------------------------------------
  const Image input = Image::synthetic(64, 64, 2026);
  {
    std::ofstream f(out_dir + "/fig6_image.pgm", std::ios::binary);
    f << input.to_pgm();
  }

  // --- run the Ring-8 --------------------------------------------------
  System sys({prog.geometry});
  sys.load(load_program(prg_path));  // read back from "PRG"

  std::ostringstream trace_text;
  obs::TextSink trace(trace_text);
  sys.set_trace(&trace);

  // Waveform dump for the first 64 cycles (view with GTKWave).
  std::ofstream vcd_file(out_dir + "/fig6.vcd");
  VcdWriter vcd(vcd_file, sys);

  // Stream row by row; one padding pixel per row flushes the pipeline
  // (and resets the horizontal derivative at row starts).
  Image video(64, 64);
  for (std::size_t y = 0; y < 64; ++y) {
    std::vector<Word> row;
    for (std::size_t x = 0; x < 64; ++x) row.push_back(input.at(x, y));
    sys.host().send(row);
  }
  for (int i = 0; i < 64; ++i) {
    sys.step();
    vcd.sample(sys);
  }
  sys.run_until_outputs(64 * 64, 100000);
  const auto out = sys.host().take_received();
  // Latency: Dnode 1.0's result for pixel i is pushed two cycles after
  // the pixel enters (pass stage + absdiff stage); the first pushes
  // compare against zero-history.  Row boundaries keep the horizontal
  // wrap artifact of a raw raster stream — exactly what the real
  // prototype showed on the monitor.
  for (std::size_t i = 0; i < 64 * 64; ++i) {
    // Scale edges up for visibility on the "monitor".
    const std::int32_t v = as_signed(out[i]) * 2;
    video.pixels()[i] = to_word(v > 255 ? 255 : v);
  }
  {
    std::ofstream f(out_dir + "/fig6_video.pgm", std::ios::binary);
    f << video.to_pgm();
  }

  const auto stats = sys.stats();
  std::printf(
      "ran %llu cycles, %llu Dnode ops, %llu words in, %llu words out\n",
      static_cast<unsigned long long>(stats.cycles),
      static_cast<unsigned long long>(stats.dnode_ops),
      static_cast<unsigned long long>(stats.host_words_in),
      static_cast<unsigned long long>(stats.host_words_out));
  std::printf("VIDEO memory dumped: %s/fig6_video.pgm\n", out_dir.c_str());
  std::printf("waveform dumped: %s/fig6.vcd (first 64 cycles)\n",
              out_dir.c_str());

  // --- logic analyzer ---------------------------------------------------
  std::printf("\nlogic analyzer (first 8 cycles):\n");
  std::istringstream lines(trace_text.str());
  std::string line;
  for (int i = 0; i < 8 && std::getline(lines, line); ++i) {
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}
