// 2-D wavelet demo (the paper's JPEG2000 use case): run the 5/3
// lifting pipeline on the Ring-16 over an image, dump the subbands as
// PGM files and verify perfect reconstruction.
//
//   $ ./wavelet_demo [output_dir]
#include <cstdio>
#include <fstream>

#include "dsp/wavelet.hpp"
#include "kernels/dwt_kernel.hpp"

namespace {

void dump(const sring::Image& img, const std::string& path, int bias,
          int scale) {
  sring::Image view(img.width(), img.height());
  for (std::size_t i = 0; i < img.size(); ++i) {
    const std::int32_t v =
        sring::as_signed(img.pixels()[i]) * scale + bias;
    view.pixels()[i] =
        sring::to_word(v < 0 ? 0 : (v > 255 ? 255 : v));
  }
  std::ofstream f(path, std::ios::binary);
  f << view.to_pgm();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sring;
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const RingGeometry ring16{8, 2, 16};

  const Image img = Image::synthetic(128, 96, 31);
  const auto result = kernels::run_dwt53_2d(ring16, img);

  std::printf("2-D 5/3 lifting DWT of a %zux%zu image on a Ring-16\n",
              img.width(), img.height());
  std::printf("  total cycles: %llu (%.3f cycles per pixel)\n",
              static_cast<unsigned long long>(result.total_cycles),
              result.cycles_per_sample);

  dump(result.bands.ll, out_dir + "/dwt_ll.pgm", 0, 1);
  dump(result.bands.lh, out_dir + "/dwt_lh.pgm", 128, 2);
  dump(result.bands.hl, out_dir + "/dwt_hl.pgm", 128, 2);
  dump(result.bands.hh, out_dir + "/dwt_hh.pgm", 128, 2);
  std::printf("  subbands written to %s/dwt_{ll,lh,hl,hh}.pgm\n",
              out_dir.c_str());

  // The transform the ring computed is perfectly reconstructible.
  const Image back = dsp::dwt53_inverse_2d(result.bands,
                                           dsp::Boundary::kZero);
  std::printf("  perfect reconstruction: %s\n",
              back == img ? "yes" : "NO (bug!)");
  return back == img ? 0 : 1;
}
