// CORDIC demo — the §6 "trigonometric op." macro-operator: three
// Dnodes and the configuration controller compute sine/cosine streams.
//
//   $ ./cordic_demo
#include <cmath>
#include <cstdio>

#include "kernels/cordic_kernel.hpp"

int main() {
  using namespace sring;
  constexpr double kPi = 3.14159265358979323846;
  const RingGeometry ring16{8, 2, 16};

  std::vector<Word> thetas;
  for (int deg = -90; deg <= 90; deg += 15) {
    thetas.push_back(to_word(static_cast<std::int64_t>(
        std::llround(deg * kPi / 180.0 * dsp::kCordicOne))));
  }
  const auto result = kernels::run_cordic(ring16, thetas);

  std::printf("CORDIC rotation on the ring (Q12, 12 iterations, %.1f "
              "cycles/angle):\n\n", result.cycles_per_sample);
  std::printf("  %6s %12s %12s %12s %12s\n", "deg", "ring cos", "libm cos",
              "ring sin", "libm sin");
  int deg = -90;
  for (const auto& r : result.outputs) {
    const double rad = deg * kPi / 180.0;
    std::printf("  %6d %12.4f %12.4f %12.4f %12.4f\n", deg,
                as_signed(r.cos_q12) / 4096.0, std::cos(rad),
                as_signed(r.sin_q12) / 4096.0, std::sin(rad));
    deg += 15;
  }
  std::printf("\n(three Dnodes: X/Y vector halves coupled through the "
              "feedback pipelines,\n Z broadcasting the rotation "
              "direction over the shared bus)\n");
  return 0;
}
