// Tests for the §4.2 interconnect comparison models.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "model/interconnect.hpp"

namespace sring::model {
namespace {

TEST(Interconnect, RingWiresStayLocal) {
  for (const std::size_t n : {1u, 8u, 64u, 1024u}) {
    EXPECT_DOUBLE_EQ(longest_wire_pitches(Topology::kRing, n), 1.0);
  }
}

TEST(Interconnect, AlternativesGrowWithSize) {
  for (const auto t :
       {Topology::kMesh, Topology::kCrossbar, Topology::kArray}) {
    EXPECT_GT(longest_wire_pitches(t, 256),
              2.0 * longest_wire_pitches(t, 16))
        << to_string(t);
  }
  // Crossbar wires grow strictly faster than mesh wires.
  EXPECT_GT(longest_wire_pitches(Topology::kCrossbar, 256),
            longest_wire_pitches(Topology::kMesh, 256));
}

TEST(Interconnect, RingFrequencyIsFlat) {
  EXPECT_DOUBLE_EQ(relative_frequency(Topology::kRing, 8),
                   relative_frequency(Topology::kRing, 1024));
  EXPECT_DOUBLE_EQ(relative_frequency(Topology::kRing, 8), 1.0);
}

TEST(Interconnect, AlternativeFrequenciesDegrade) {
  for (const auto t :
       {Topology::kMesh, Topology::kCrossbar, Topology::kArray}) {
    EXPECT_LT(relative_frequency(t, 1024), relative_frequency(t, 16))
        << to_string(t);
    EXPECT_LT(relative_frequency(t, 1024), 0.8) << to_string(t);
  }
}

TEST(Interconnect, RingAreaLinearCrossbarQuadratic) {
  // Ring doubles with N.
  EXPECT_NEAR(interconnect_area_dnodes(Topology::kRing, 128),
              2.0 * interconnect_area_dnodes(Topology::kRing, 64), 1e-9);
  // Crossbar quadruples with N.
  EXPECT_NEAR(interconnect_area_dnodes(Topology::kCrossbar, 128),
              4.0 * interconnect_area_dnodes(Topology::kCrossbar, 64),
              1e-9);
  // At large sizes the ring has the smallest interconnect of all.
  for (const auto t :
       {Topology::kMesh, Topology::kCrossbar, Topology::kArray}) {
    EXPECT_LT(interconnect_area_dnodes(Topology::kRing, 1024),
              interconnect_area_dnodes(t, 1024))
        << to_string(t);
  }
}

TEST(Interconnect, Validation) {
  EXPECT_THROW(longest_wire_pitches(Topology::kRing, 0), SimError);
  EXPECT_THROW(interconnect_area_dnodes(Topology::kMesh, 0), SimError);
  EXPECT_FALSE(to_string(Topology::kArray).empty());
}

}  // namespace
}  // namespace sring::model
