// Tests for the block matrix-vector / DCT engine.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/matvec.hpp"
#include "kernels/matvec_kernel.hpp"

namespace sring::kernels {
namespace {

RingGeometry ring16() { return {8, 2, 16}; }

dsp::Matrix8 random_matrix(std::uint64_t seed) {
  Rng rng(seed);
  dsp::Matrix8 m;
  for (auto& row : m) {
    for (auto& v : row) v = rng.next_word_in(-128, 127);
  }
  return m;
}

std::vector<Word> random_blocks(std::size_t blocks, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> x(blocks * dsp::kMatvecN);
  for (auto& v : x) v = rng.next_word_in(-128, 127);
  return x;
}

TEST(MatvecGolden, IdentityMatrix) {
  dsp::Matrix8 eye{};
  for (std::size_t i = 0; i < 8; ++i) eye[i][i] = 1;
  const auto x = random_blocks(1, 3);
  const auto y = dsp::block_matvec8_reference(eye, x);
  EXPECT_EQ(y, x);
}

TEST(MatvecGolden, DctMatrixShape) {
  const auto m = dsp::dct8_matrix_q7();
  // DC row is flat and positive.
  for (std::size_t j = 1; j < 8; ++j) {
    EXPECT_EQ(m[0][j], m[0][0]);
  }
  EXPECT_GT(as_signed(m[0][0]), 0);
  // Row 4 alternates in pairs: + - - + + - - +.
  EXPECT_EQ(m[4][0], m[4][3]);
  EXPECT_EQ(m[4][1], m[4][2]);
  EXPECT_EQ(as_signed(m[4][0]), -as_signed(m[4][1]));
  // Odd rows are antisymmetric; even rows symmetric.
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_EQ(as_signed(m[2][j]), as_signed(m[2][7 - j]));
    EXPECT_EQ(as_signed(m[1][j]), -as_signed(m[1][7 - j]));
  }
}

TEST(MatvecGolden, DctOfConstantBlockIsDcOnly) {
  const auto m = dsp::dct8_matrix_q7();
  std::array<Word, 8> x;
  x.fill(to_word(100));
  const auto y = dsp::matvec8_reference(
      m, std::span<const Word, 8>(x.data(), 8));
  EXPECT_NE(as_signed(y[0]), 0);
  for (std::size_t k = 1; k < 8; ++k) {
    // AC rows of the integer matrix sum to (near) zero; a constant
    // block excites only DC.
    EXPECT_NEAR(as_signed(y[k]), 0, 200) << "row " << k;
  }
}

class MatvecSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MatvecSweep, RingMatchesGolden) {
  const auto [blocks, seed] = GetParam();
  const auto m = random_matrix(static_cast<std::uint64_t>(seed));
  const auto x = random_blocks(static_cast<std::size_t>(blocks),
                               static_cast<std::uint64_t>(seed) + 50);
  const auto result = run_block_matvec8(ring16(), m, x);
  EXPECT_EQ(result.outputs, dsp::block_matvec8_reference(m, x));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatvecSweep,
                         ::testing::Combine(::testing::Values(1, 3, 16),
                                            ::testing::Values(1, 2, 3)));

TEST(Matvec, DctEngineEndToEnd) {
  const auto m = dsp::dct8_matrix_q7();
  const auto x = random_blocks(8, 9);
  const auto result = run_block_matvec8(ring16(), m, x);
  EXPECT_EQ(result.outputs, dsp::block_matvec8_reference(m, x));
  // 4 cycles per element + loop upkeep: ~34 cycles per block.
  EXPECT_LE(result.cycles_per_block, 36.0);
}

TEST(Matvec, RejectsBadInput) {
  const auto m = dsp::dct8_matrix_q7();
  std::vector<Word> ragged(13, 0);
  EXPECT_THROW(run_block_matvec8(ring16(), m, ragged), SimError);
  RingGeometry tiny{2, 2, 8};
  std::vector<Word> ok(8, 0);
  EXPECT_THROW(run_block_matvec8(tiny, m, ok), SimError);
}

}  // namespace
}  // namespace sring::kernels
