// Geometry-sweep property tests: architectural invariants must hold
// for every ring shape, not just the paper's Ring-8/16/64 instances.
#include <gtest/gtest.h>

#include <tuple>

#include "asm/program_builder.hpp"
#include "common/rng.hpp"
#include "dsp/fir.hpp"
#include "kernels/fir_kernel.hpp"
#include "kernels/mac_kernel.hpp"
#include "sim/system.hpp"

namespace sring {
namespace {

std::vector<Word> random_stream(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> s(n);
  for (auto& v : s) v = rng.next_word_in(-100, 100);
  return s;
}

class GeometrySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GeometrySweep, RunningMacWorksOnAnyShape) {
  const auto [layers, lanes] = GetParam();
  const RingGeometry g{static_cast<std::size_t>(layers),
                       static_cast<std::size_t>(lanes), 16};
  const auto a = random_stream(24, 1);
  const auto b = random_stream(24, 2);
  const auto result = kernels::run_running_mac(g, a, b);
  EXPECT_EQ(result.partial_sums, dsp::running_mac_reference(a, b))
      << layers << "x" << lanes;
}

TEST_P(GeometrySweep, FullLayerPassChainIsTheIdentityWithLatency) {
  // A pass-through chain across every layer delays the stream by
  // exactly `layers` cycles and preserves it bit-for-bit — the ring's
  // systolic transport invariant at any size.
  const auto [layers, lanes] = GetParam();
  const RingGeometry g{static_cast<std::size_t>(layers),
                       static_cast<std::size_t>(lanes), 16};
  ProgramBuilder pb(g, "chain");
  PageBuilder page(g);
  for (std::size_t l = 0; l < g.layers; ++l) {
    SwitchRoute r;
    r.in1 = l == 0 ? PortRoute::host() : PortRoute::prev(0);
    page.route(l, 0, r);
    DnodeInstr instr;
    instr.op = DnodeOp::kPass;
    instr.src_a = DnodeSrc::kIn1;
    instr.out_en = true;
    instr.host_en = l == g.layers - 1;
    page.instr(l, 0, instr);
  }
  pb.add_page(page);
  pb.page_switch(0);
  pb.halt();

  System sys({g});
  sys.load(pb.build());
  const auto x = random_stream(32, 3);
  std::vector<Word> feed(x.begin(), x.end());
  feed.insert(feed.end(), g.layers, 0);  // flush the chain
  sys.host().send(feed);
  sys.run_until_outputs(x.size() + g.layers, 10000);
  const auto raw = sys.host().take_received();
  // The value pushed at cycle t is x[t - (layers-1)]: the last layer's
  // result for sample n appears layers-1 cycles after injection.
  for (std::size_t n = 0; n < x.size(); ++n) {
    EXPECT_EQ(raw[n + g.layers - 1], x[n])
        << layers << "x" << lanes << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometrySweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16, 32),
                       ::testing::Values(1, 2, 4)));

class FirGeometrySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FirGeometrySweep, SpatialFirIsGeometryPortable) {
  const auto [layers, taps] = GetParam();
  if (layers < taps + 1) GTEST_SKIP() << "does not fit by contract";
  const RingGeometry g{static_cast<std::size_t>(layers), 2, 16};
  const auto x = random_stream(40, 9);
  const auto coeffs = random_stream(static_cast<std::size_t>(taps), 10);
  const auto result = kernels::run_spatial_fir(g, x, coeffs);
  EXPECT_EQ(result.outputs, dsp::fir_reference(x, coeffs))
      << layers << " layers, " << taps << " taps";
}

INSTANTIATE_TEST_SUITE_P(Shapes, FirGeometrySweep,
                         ::testing::Combine(::testing::Values(3, 5, 9, 17,
                                                              32),
                                            ::testing::Values(1, 2, 4,
                                                              8)));

}  // namespace
}  // namespace sring
