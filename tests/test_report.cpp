// Tests for the utilization / profiling reports.
#include <gtest/gtest.h>

#include "kernels/mac_kernel.hpp"
#include "sim/report.hpp"
#include "sim/system.hpp"

namespace sring {
namespace {

TEST(Report, UtilizationShowsActiveDnode) {
  const RingGeometry g{4, 2, 16};
  System sys({g});
  sys.load(kernels::make_running_mac_program(g));
  std::vector<Word> data(64, 1);
  sys.host().send(data);
  sys.run_until_outputs(32, 1000);

  const std::string report =
      utilization_report(sys.ring(), sys.stats().cycles);
  // One line per layer plus the header.
  std::size_t lines = 0;
  for (const char c : report) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 5u);
  EXPECT_NE(report.find("layer0"), std::string::npos);
  EXPECT_NE(report.find("lane0"), std::string::npos);
  // The MAC Dnode ran essentially every cycle; others are at 0%.
  EXPECT_NE(report.find("0.0%"), std::string::npos);
}

TEST(Report, RunSummaryCountsActiveDnodes) {
  const RingGeometry g{4, 2, 16};
  System sys({g});
  sys.load(kernels::make_running_mac_program(g));
  std::vector<Word> data(64, 1);
  sys.host().send(data);
  sys.run_until_outputs(32, 1000);

  const std::string summary = run_summary(sys.ring(), sys.stats());
  EXPECT_NE(summary.find("1/8 Dnodes"), std::string::npos);
  EXPECT_NE(summary.find("cycles"), std::string::npos);
}

TEST(Report, EmptyRunIsAllZero) {
  Ring ring({2, 1, 4});
  const std::string report = utilization_report(ring, 0);
  EXPECT_NE(report.find("0.0%"), std::string::npos);
}

TEST(Stats, UtilizationIsZeroBeforeAnyCycleRan) {
  const SystemStats s;  // cycles == 0
  EXPECT_EQ(s.utilization(8), 0.0);
}

TEST(Stats, UtilizationGuardsZeroDnodeCount) {
  SystemStats s;
  s.cycles = 100;
  s.dnode_ops = 50;
  EXPECT_EQ(s.utilization(0), 0.0);
  EXPECT_DOUBLE_EQ(s.utilization(1), 0.5);
  EXPECT_DOUBLE_EQ(s.utilization(2), 0.25);
}

TEST(Stats, ToStringCarriesTheExtendedCounters) {
  SystemStats s;
  s.ctrl_inpop_stalls = 1;
  s.ctrl_wait_stalls = 2;
  s.bus_drives = 3;
  s.bus_conflicts = 4;
  s.switch_route_changes = 5;
  const std::string text = s.to_string();
  EXPECT_NE(text.find("inpop_stalls=1"), std::string::npos);
  EXPECT_NE(text.find("wait_stalls=2"), std::string::npos);
  EXPECT_NE(text.find("bus_drives=3"), std::string::npos);
  EXPECT_NE(text.find("bus_conflicts=4"), std::string::npos);
  EXPECT_NE(text.find("route_changes=5"), std::string::npos);
}

}  // namespace
}  // namespace sring
