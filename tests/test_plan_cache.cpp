// The Ring's content-keyed plan cache: hardware multiplexing over a
// repertoire of configuration pages must compile each distinct
// configware content once (not once per rewrite), re-attach cached
// plans on byte-identical rewrites, fuse periodic page sequences into
// O(1) predicted re-attachment, bound its memory via LRU eviction, and
// stay bit-identical to the interpreter through all of it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "asm/program_builder.hpp"
#include "common/rng.hpp"
#include "core/ring.hpp"
#include "sim/system.hpp"

namespace sring {
namespace {

constexpr RingGeometry kGeom{4, 2, 8};

std::vector<Word> signal(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Word> x(n);
  for (auto& w : x) w = rng.next_word_in(-100, 100);
  return x;
}

/// Statistics with the plan counters blanked: everything here must be
/// identical between the planned and the interpreted execution.
SystemStats arch_only(SystemStats s) {
  s.plan_compiles = 0;
  s.plan_hits = 0;
  s.plan_invalidations = 0;
  s.plan_content_hits = 0;
  s.plan_evictions = 0;
  s.plan_seq_fusions = 0;
  s.plan_seq_hits = 0;
  return s;
}

/// K distinct single-Dnode pages pulsed round-robin by the controller,
/// one cycle each with an idle page between pulses — the synthetic
/// core of the matvec8 hardware-multiplexing pattern.  Page p pops one
/// host word and emits word + (p + 1).
LoadableProgram make_page_cycle_program(const RingGeometry& g,
                                        std::size_t npages,
                                        std::size_t iters) {
  ProgramBuilder pb(g, "page_cycle");
  const std::size_t idle = pb.add_page(PageBuilder(g));
  for (std::size_t p = 0; p < npages; ++p) {
    PageBuilder page(g);
    DnodeInstr add;
    add.op = DnodeOp::kAdd;
    add.src_a = DnodeSrc::kHost;
    add.src_b = DnodeSrc::kImm;
    add.imm = static_cast<Word>(p + 1);
    add.host_en = true;
    page.instr(0, 0, add);
    pb.add_page(page);
  }
  pb.set_reg(1, iters);
  pb.ldi(2, 0);
  pb.label("loop");
  for (std::size_t p = 0; p < npages; ++p) {
    pb.page_switch(1 + p);
    pb.page_switch(idle);
  }
  pb.addi(1, 1, -1);
  pb.branch(RiscOp::kBne, 1, 2, "loop");
  pb.halt();
  return pb.build();
}

struct PageCycleRun {
  std::vector<Word> outputs;
  SystemStats stats;
  std::uint64_t cycles = 0;
  std::uint64_t seq_fusions = 0;
  std::uint64_t seq_hits = 0;
  std::uint64_t evictions = 0;
};

PageCycleRun run_page_cycle(const LoadableProgram& program,
                            const std::vector<Word>& input,
                            bool plan_enabled, bool superstep) {
  System sys({kGeom});
  sys.ring().set_plan_cache_enabled(plan_enabled);
  sys.set_superstep_enabled(superstep);
  sys.load(program);
  sys.host().send(input);
  sys.run_until_outputs(input.size(), 64 + 16 * input.size());
  PageCycleRun r;
  r.outputs = sys.host().take_received();
  r.stats = sys.stats();
  r.cycles = sys.cycle();
  r.seq_fusions = sys.ring().plan_seq_fusions();
  r.seq_hits = sys.ring().plan_seq_hits();
  r.evictions = sys.ring().plan_evictions();
  return r;
}

TEST(PlanCache, PageRepertoireCompilesOncePerContentAndFuses) {
  constexpr std::size_t kPages = 4;
  constexpr std::size_t kIters = 60;
  const LoadableProgram program =
      make_page_cycle_program(kGeom, kPages, kIters);
  const std::vector<Word> x = signal(31, kPages * kIters);

  const PageCycleRun planned = run_page_cycle(program, x, true, true);

  // Ground truth: page p adds p + 1 to its popped word.
  std::vector<Word> expected(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    expected[i] = static_cast<Word>(x[i] + (i % kPages) + 1);
  }
  EXPECT_EQ(planned.outputs, expected);

  // npages element pages + the all-NOP idle/boot content: each
  // distinct content compiles exactly once across 60 rewrites each.
  EXPECT_EQ(planned.stats.plan_compiles, kPages + 1);
  EXPECT_EQ(planned.evictions, 0u);
  EXPECT_GT(planned.stats.plan_content_hits, 0u)
      << "rewritten-but-byte-identical pages must re-attach, not recompile";
  // Every detach after warm-up re-attaches a cached plan: true misses
  // (invalidations minus content hits) are bounded by the first
  // sighting of each content, not by the rewrite count.
  EXPECT_LE(planned.stats.plan_invalidations -
                planned.stats.plan_content_hits,
            kPages + 1);
  EXPECT_GT(planned.stats.plan_hits, planned.cycles / 2)
      << "the multiplexed loop must run predominantly from cached plans";

  // The periodic page schedule (period 2 * kPages <= 64) must be
  // recognized and served by sequence prediction.
  EXPECT_GE(planned.seq_fusions, 1u);
  EXPECT_GT(planned.seq_hits, kPages * kIters / 2);
}

TEST(PlanCache, PageRepertoireBitExactAcrossPaths) {
  constexpr std::size_t kPages = 4;
  constexpr std::size_t kIters = 40;
  const LoadableProgram program =
      make_page_cycle_program(kGeom, kPages, kIters);
  const std::vector<Word> x = signal(32, kPages * kIters);

  const PageCycleRun fused = run_page_cycle(program, x, true, true);
  const PageCycleRun percycle = run_page_cycle(program, x, true, false);
  const PageCycleRun interp = run_page_cycle(program, x, false, false);

  EXPECT_EQ(fused.outputs, interp.outputs);
  EXPECT_EQ(percycle.outputs, interp.outputs);
  EXPECT_EQ(fused.cycles, interp.cycles);
  EXPECT_EQ(arch_only(fused.stats).to_string(),
            arch_only(interp.stats).to_string());
  // The superstep engine may not move anything, plan counters included.
  EXPECT_EQ(fused.stats.to_string(), percycle.stats.to_string());
  EXPECT_EQ(interp.stats.plan_compiles, 0u);
  EXPECT_EQ(interp.stats.plan_hits, 0u);
}

TEST(PlanCache, EvictionBoundsCacheAndStaysBitExact) {
  // More distinct contents than kPlanCacheCapacity: the cache must
  // evict (bounded memory) and the adversarial thrash pattern must
  // still be bit-identical to the interpreter.
  constexpr std::size_t kPages = Ring::kPlanCacheCapacity + 4;
  constexpr std::size_t kIters = 8;
  const LoadableProgram program =
      make_page_cycle_program(kGeom, kPages, kIters);
  const std::vector<Word> x = signal(33, kPages * kIters);

  const PageCycleRun planned = run_page_cycle(program, x, true, true);
  const PageCycleRun interp = run_page_cycle(program, x, false, false);

  EXPECT_GT(planned.evictions, 0u)
      << "a repertoire wider than the cache must trigger LRU eviction";
  EXPECT_EQ(planned.outputs, interp.outputs);
  EXPECT_EQ(planned.cycles, interp.cycles);
  EXPECT_EQ(arch_only(planned.stats).to_string(),
            arch_only(interp.stats).to_string());
}

TEST(PlanCache, ByteIdenticalRewriteReattachesWithoutRecompile) {
  ConfigMemory cfg({2, 1, 4});
  Ring ring({2, 1, 4});
  HostFifo in;
  std::vector<Word> out;

  DnodeInstr a;
  a.op = DnodeOp::kPass;
  a.src_a = DnodeSrc::kImm;
  a.imm = 7;
  a.out_en = true;
  DnodeInstr b = a;
  b.imm = 9;

  cfg.write_dnode_instr(0, a.encode());
  ring.step(cfg, 0, in, out);  // first sighting: interpreter
  ring.step(cfg, 0, in, out);  // second sighting: compile
  ring.step(cfg, 0, in, out);  // stamp hit
  ASSERT_EQ(ring.plan_compiles(), 1u);
  ASSERT_EQ(ring.plan_invalidations(), 0u);

  // Rewriting the SAME bytes bumps the generation (stamp mismatch) but
  // not the content: the cached plan re-attaches the same cycle, no
  // recompile, and the cycle still counts as a hit.
  cfg.write_dnode_instr(0, a.encode());
  ring.step(cfg, 0, in, out);
  EXPECT_EQ(ring.plan_invalidations(), 1u);
  EXPECT_EQ(ring.plan_content_hits(), 1u);
  EXPECT_EQ(ring.plan_compiles(), 1u);
  EXPECT_EQ(ring.plan_hits(), 2u);

  // Genuinely new content is a true miss: interpret, then compile on
  // the second sighting.
  cfg.write_dnode_instr(0, b.encode());
  ring.step(cfg, 0, in, out);
  EXPECT_EQ(ring.plan_invalidations(), 2u);
  EXPECT_EQ(ring.plan_content_hits(), 1u);
  EXPECT_EQ(ring.plan_compiles(), 1u);
  ring.step(cfg, 0, in, out);
  EXPECT_EQ(ring.plan_compiles(), 2u);

  // Flipping back to the first content re-attaches its cached plan.
  cfg.write_dnode_instr(0, a.encode());
  ring.step(cfg, 0, in, out);
  EXPECT_EQ(ring.plan_compiles(), 2u);
  EXPECT_EQ(ring.plan_content_hits(), 2u);
  EXPECT_EQ(ring.dnode(0, 0).out(), 7u);
}

TEST(PlanCache, ResetForRerunKeepsCompiledPlansWarm) {
  constexpr std::size_t kPages = 4;
  constexpr std::size_t kIters = 30;
  const LoadableProgram program =
      make_page_cycle_program(kGeom, kPages, kIters);
  const std::vector<Word> x = signal(34, kPages * kIters);

  System sys({kGeom});
  sys.load(program);
  sys.host().send(x);
  sys.run_until_outputs(x.size(), 64 + 16 * x.size());
  const std::vector<Word> first = sys.host().take_received();
  EXPECT_EQ(sys.ring().plan_compiles(), kPages + 1);

  sys.reset_for_rerun(program);
  sys.host().send(x);
  sys.run_until_outputs(x.size(), 64 + 16 * x.size());

  EXPECT_EQ(sys.host().take_received(), first);
  EXPECT_EQ(sys.ring().plan_compiles(), 0u)
      << "rerun of the same program must be served from the warm cache";
  EXPECT_GT(sys.ring().plan_content_hits(), 0u)
      << "warm entries re-attach through the content check";
}

}  // namespace
}  // namespace sring
