// Tests for the two-level assembler, lexer diagnostics, and the
// disassembler round-trip property.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "asm/disassembler.hpp"
#include "common/error.hpp"
#include "asm/lexer.hpp"
#include "asm/program_builder.hpp"
#include "isa/risc_instr.hpp"
#include "sim/system.hpp"

namespace sring {
namespace {

TEST(Lexer, TokenizesNumbersAndIdents) {
  const auto tokens = lex("ldi r1, -42 ; comment\nfoo: 0x1F 0b101");
  ASSERT_GE(tokens.size(), 9u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].text, "ldi");
  EXPECT_EQ(tokens[2].kind, TokenKind::kComma);
  EXPECT_EQ(tokens[3].value, -42);
  EXPECT_EQ(tokens[4].kind, TokenKind::kNewline);
  EXPECT_EQ(tokens[5].text, "foo");
  EXPECT_EQ(tokens[6].kind, TokenKind::kColon);
  EXPECT_EQ(tokens[7].value, 0x1F);
  EXPECT_EQ(tokens[8].value, 5);
}

TEST(Lexer, CoordinatesSplitOnDot) {
  const auto tokens = lex("dnode 0.1");
  EXPECT_EQ(tokens[1].value, 0);
  EXPECT_EQ(tokens[2].kind, TokenKind::kDot);
  EXPECT_EQ(tokens[3].value, 1);
}

TEST(Lexer, DirectivesKeepLeadingDot) {
  const auto tokens = lex(".ring 4 2");
  EXPECT_EQ(tokens[0].text, ".ring");
}

TEST(Lexer, ReportsBadCharacterWithPosition) {
  try {
    lex("ldi r1, $");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_EQ(e.column(), 9u);
  }
}

constexpr const char* kMacSource = R"(
; running MAC demo
.name macdemo
.ring 4 2 16

.controller
    page  boot
    halt

.page boot
    dnode 0.0 local
    switch 0.0 in1=host in2=host

.local 0.0
{
    mac r0, in1, in2, r0 host
}
)";

TEST(Assembler, ParsesFullProgram) {
  const auto prog = assemble(kMacSource);
  EXPECT_EQ(prog.name, "macdemo");
  EXPECT_EQ(prog.geometry.layers, 4u);
  EXPECT_EQ(prog.geometry.lanes, 2u);
  EXPECT_EQ(prog.controller_code.size(), 2u);
  ASSERT_EQ(prog.pages.size(), 1u);
  EXPECT_EQ(prog.pages[0].dnode_mode[0],
            static_cast<std::uint8_t>(DnodeMode::kLocal));
  // local program: one instruction + LIMIT write.
  ASSERT_EQ(prog.local_init.size(), 2u);
  EXPECT_EQ(prog.local_init[1].slot, LocalControl::kLimitSlot);
  EXPECT_EQ(prog.local_init[1].value, 0u);
}

TEST(Assembler, AssembledProgramRunsCorrectly) {
  SystemConfig sc;
  sc.geometry = {4, 2, 16};
  System sys(sc);
  sys.load(assemble(kMacSource));
  sys.host().send(std::vector<Word>{2, 3, 4, 5});
  sys.run_until_outputs(2, 1000);
  const auto got = sys.host().take_received();
  ASSERT_GE(got.size(), 2u);
  EXPECT_EQ(got[0], to_word(6));
  EXPECT_EQ(got[1], to_word(26));
}

TEST(Assembler, LabelsResolveForwardAndBackward) {
  const auto prog = assemble(R"(
.ring 2 1
.controller
    ldi r1, 0
    jmp skip
loop:
    addi r1, r1, 1
skip:
    ldi r2, 5
    bne r1, r2, loop
    halt
)");
  // jmp skip jumps over one instruction: offset +1.
  const auto jmp = RiscInstr::decode(prog.controller_code[1]);
  EXPECT_EQ(jmp.op, RiscOp::kJmp);
  EXPECT_EQ(jmp.imm, 1);
  const auto bne = RiscInstr::decode(prog.controller_code[4]);
  EXPECT_EQ(bne.imm, -3);
}

TEST(Assembler, EquConstants) {
  const auto prog = assemble(R"(
.ring 2 1
.equ taps 7
.controller
    ldi r1, taps
    halt
)");
  EXPECT_EQ(RiscInstr::decode(prog.controller_code[0]).imm, 7);
}

TEST(Assembler, ImmediateOperandSyntax) {
  const auto prog = assemble(R"(
.ring 2 1
.page p
    dnode 0.0 { mac r1, in1, imm(-7), r1 out }
)");
  const auto instr = DnodeInstr::decode(prog.pages[0].dnode_instr[0]);
  EXPECT_EQ(instr.op, DnodeOp::kMac);
  EXPECT_EQ(instr.src_b, DnodeSrc::kImm);
  EXPECT_EQ(as_signed(instr.imm), -7);
  EXPECT_TRUE(instr.out_en);
}

TEST(Assembler, SwitchRouteSyntax) {
  const auto prog = assemble(R"(
.ring 4 2 8
.page p
    switch 2.1 in1=prev0 in2=fb(1,1,3) fifo1=fb(3,0,7) hostout=prev1
)");
  const auto route =
      SwitchRoute::decode(prog.pages[0].switch_route[2 * 2 + 1]);
  EXPECT_EQ(route.in1, PortRoute::prev(0));
  EXPECT_EQ(route.in2, PortRoute::feedback({1, 1, 3}));
  EXPECT_EQ(route.fifo1, (FeedbackAddr{3, 0, 7}));
  EXPECT_TRUE(route.host_out_en);
  EXPECT_EQ(route.host_out_lane, 1);
}

struct BadSource {
  const char* text;
  const char* reason;
};

class AssemblerDiagnostics : public ::testing::TestWithParam<BadSource> {};

TEST_P(AssemblerDiagnostics, RejectsBadSource) {
  EXPECT_THROW(assemble(GetParam().text), AsmError) << GetParam().reason;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblerDiagnostics,
    ::testing::Values(
        BadSource{".controller\n halt\n", "missing .ring"},
        BadSource{".ring 99 2\n", "bad geometry"},
        BadSource{".ring 2 1\n.controller\n frob r1\n", "unknown mnemonic"},
        BadSource{".ring 2 1\n.controller\n ldi r99, 0\n", "bad register"},
        BadSource{".ring 2 1\n.controller\n jmp nowhere\n halt\n",
                  "unknown label"},
        BadSource{".ring 2 1\n.controller\n ldi r1, 100000\n",
                  "immediate too wide"},
        BadSource{".ring 2 1\n.page p\n dnode 9.9 local\n",
                  "coordinate out of range"},
        BadSource{".ring 2 1\n.page p\n switch 0.0 in1=prev5\n",
                  "lane out of range"},
        BadSource{".ring 2 1\n.page p\n switch 0.0 in1=fb(7,0,0)\n",
                  "fb pipe out of range"},
        BadSource{".ring 2 1\n.page p\n dnode 0.0 { add r0, imm(1), "
                  "imm(2) }\n",
                  "conflicting immediates"},
        BadSource{".ring 2 1\n.local 0.0\n{\n nop\n nop\n nop\n nop\n nop\n"
                  " nop\n nop\n nop\n nop\n}\n",
                  "local program too long"},
        BadSource{".ring 2 1\n.page dup\n.page dup\n", "duplicate page"},
        BadSource{".ring 2 1\n.controller\nx:\nx:\n halt\n",
                  "duplicate label"}));

TEST(Disassembler, RoundTripsToolGeneratedPrograms) {
  // Property: disassemble -> assemble reproduces controller code,
  // pages and local writes exactly (label names are immaterial).
  const auto original = assemble(kMacSource);
  const std::string listing = disassemble(original);
  const auto reparsed = assemble(listing);
  EXPECT_EQ(reparsed.geometry, original.geometry);
  EXPECT_EQ(reparsed.controller_code, original.controller_code);
  ASSERT_EQ(reparsed.pages.size(), original.pages.size());
  for (std::size_t i = 0; i < original.pages.size(); ++i) {
    EXPECT_EQ(reparsed.pages[i].dnode_instr, original.pages[i].dnode_instr);
    EXPECT_EQ(reparsed.pages[i].dnode_mode, original.pages[i].dnode_mode);
    EXPECT_EQ(reparsed.pages[i].switch_route,
              original.pages[i].switch_route);
  }
}

TEST(Disassembler, RoundTripsBuilderPrograms) {
  ProgramBuilder pb({4, 2, 16}, "built");
  PageBuilder page({4, 2, 16});
  DnodeInstr mac;
  mac.op = DnodeOp::kMac;
  mac.src_a = DnodeSrc::kIn1;
  mac.src_b = DnodeSrc::kImm;
  mac.src_c = DnodeSrc::kR0;
  mac.dst = DnodeDst::kR0;
  mac.imm = to_word(-3);
  page.instr(1, 0, mac);
  SwitchRoute r;
  r.in1 = PortRoute::host();
  r.fifo1 = {2, 1, 5};
  r.host_out_en = true;
  page.route(1, 0, r);
  pb.add_page(page);
  pb.ldi(1, 10);
  pb.label("spin");
  pb.addi(1, 1, -1);
  pb.branch(RiscOp::kBne, 1, 2, "spin");
  pb.page_switch(0);
  pb.halt();
  pb.local_program(3, {mac, DnodeInstr{}});

  const auto original = pb.build();
  const auto reparsed = assemble(disassemble(original));
  EXPECT_EQ(reparsed.controller_code, original.controller_code);
  ASSERT_EQ(reparsed.pages.size(), 1u);
  EXPECT_EQ(reparsed.pages[0].dnode_instr, original.pages[0].dnode_instr);
  EXPECT_EQ(reparsed.pages[0].switch_route,
            original.pages[0].switch_route);
  EXPECT_EQ(reparsed.local_init, original.local_init);
}

}  // namespace
}  // namespace sring
