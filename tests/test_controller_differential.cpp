// Differential testing of the controller: random straight-line ALU
// programs are executed both by the Controller and by an independent
// reference interpreter written directly against the ISA document
// (docs/ISA.md).  Any divergence is a bug in one of the two.
#include <gtest/gtest.h>

#include <array>

#include "common/rng.hpp"
#include "ctrl/controller.hpp"
#include "isa/risc_instr.hpp"

namespace sring {
namespace {

/// Reference semantics, deliberately written independently of
/// controller.cpp (switch on mnemonic-level behaviour).
class ReferenceInterp {
 public:
  void run(const std::vector<RiscInstr>& program) {
    std::size_t pc = 0;
    std::size_t executed = 0;
    while (pc < program.size() && executed < 10000) {
      const RiscInstr& in = program[pc];
      ++executed;
      std::size_t next = pc + 1;
      const std::uint64_t a = regs[in.ra];
      const std::uint64_t b = regs[in.rb];
      const auto sa = static_cast<std::int64_t>(a);
      const auto sb = static_cast<std::int64_t>(b);
      switch (in.op) {
        case RiscOp::kNop:
          break;
        case RiscOp::kHalt:
          return;
        case RiscOp::kLdi:
          regs[in.rd] = static_cast<std::uint64_t>(
              static_cast<std::int64_t>(in.imm));
          break;
        case RiscOp::kLdih:
          regs[in.rd] = (regs[in.rd] << 16) |
                        (static_cast<std::uint64_t>(in.imm) & 0xFFFFu);
          break;
        case RiscOp::kMov:
          regs[in.rd] = a;
          break;
        case RiscOp::kAdd:
          regs[in.rd] = a + b;
          break;
        case RiscOp::kSub:
          regs[in.rd] = a - b;
          break;
        case RiscOp::kMul:
          regs[in.rd] = a * b;
          break;
        case RiscOp::kAnd:
          regs[in.rd] = a & b;
          break;
        case RiscOp::kOr:
          regs[in.rd] = a | b;
          break;
        case RiscOp::kXor:
          regs[in.rd] = a ^ b;
          break;
        case RiscOp::kShl:
          regs[in.rd] = a << (b & 63);
          break;
        case RiscOp::kShr:
          regs[in.rd] = a >> (b & 63);
          break;
        case RiscOp::kAsr:
          regs[in.rd] = static_cast<std::uint64_t>(sa >> (b & 63));
          break;
        case RiscOp::kAddi:
          regs[in.rd] = a + static_cast<std::uint64_t>(
                                static_cast<std::int64_t>(in.imm));
          break;
        case RiscOp::kBeq:
          if (a == b) next = pc + 1 + static_cast<std::int64_t>(in.imm);
          break;
        case RiscOp::kBne:
          if (a != b) next = pc + 1 + static_cast<std::int64_t>(in.imm);
          break;
        case RiscOp::kBlt:
          if (sa < sb) next = pc + 1 + static_cast<std::int64_t>(in.imm);
          break;
        case RiscOp::kBge:
          if (sa >= sb) next = pc + 1 + static_cast<std::int64_t>(in.imm);
          break;
        default:
          FAIL() << "unexpected op in differential corpus";
      }
      pc = next;
    }
  }

  std::array<std::uint64_t, kRiscRegCount> regs{};
};

class ControllerDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ControllerDifferential, RandomAluProgramsAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 77);
  // Straight-line program: seeds, then random ALU ops, then HALT.
  std::vector<RiscInstr> program;
  for (std::uint8_t r = 0; r < 8; ++r) {
    RiscInstr ldi;
    ldi.op = RiscOp::kLdi;
    ldi.rd = r;
    ldi.imm = static_cast<std::int32_t>(rng.next_below(65536)) - 32768;
    program.push_back(ldi);
    RiscInstr ldih;
    ldih.op = RiscOp::kLdih;
    ldih.rd = r;
    ldih.imm = static_cast<std::int32_t>(rng.next_below(65536)) - 32768;
    program.push_back(ldih);
  }
  const RiscOp alu_ops[] = {RiscOp::kAdd, RiscOp::kSub, RiscOp::kMul,
                            RiscOp::kAnd, RiscOp::kOr,  RiscOp::kXor,
                            RiscOp::kShl, RiscOp::kShr, RiscOp::kAsr,
                            RiscOp::kMov, RiscOp::kAddi};
  for (int i = 0; i < 60; ++i) {
    RiscInstr in;
    in.op = alu_ops[rng.next_below(std::size(alu_ops))];
    in.rd = static_cast<std::uint8_t>(rng.next_below(12));
    in.ra = static_cast<std::uint8_t>(rng.next_below(12));
    in.rb = static_cast<std::uint8_t>(rng.next_below(12));
    if (in.op == RiscOp::kAddi) {
      in.imm = static_cast<std::int32_t>(rng.next_below(65536)) - 32768;
    }
    program.push_back(in);
  }
  // A forward skip to exercise branch arithmetic deterministically.
  RiscInstr skip;
  skip.op = RiscOp::kBge;
  skip.ra = static_cast<std::uint8_t>(rng.next_below(12));
  skip.rb = skip.ra;  // always taken
  skip.imm = 1;
  program.push_back(skip);
  RiscInstr poison;  // must be skipped
  poison.op = RiscOp::kLdi;
  poison.rd = 0;
  poison.imm = 0x7EAD;
  program.push_back(poison);
  RiscInstr halt;
  halt.op = RiscOp::kHalt;
  program.push_back(halt);

  // Reference.
  ReferenceInterp ref;
  ref.run(program);

  // Device under test.
  std::vector<std::uint32_t> code;
  for (const auto& in : program) code.push_back(in.encode());
  Controller ctrl(code);
  ConfigMemory cfg({2, 1, 4});
  Ring ring({2, 1, 4});
  HostFifo host_in;
  std::vector<Word> host_out;
  for (int cycle = 0; cycle < 10000 && !ctrl.halted(); ++cycle) {
    ctrl.step({cfg, ring, 0, host_in, host_out,
               static_cast<std::uint64_t>(cycle)});
  }
  ASSERT_TRUE(ctrl.halted());

  for (std::size_t r = 0; r < kRiscRegCount; ++r) {
    EXPECT_EQ(ctrl.reg(r), ref.regs[r]) << "r" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerDifferential,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace sring
