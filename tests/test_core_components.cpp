// Unit tests for register file, local control unit, feedback pipeline
// and the Dnode itself.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/dnode.hpp"
#include "core/feedback_pipeline.hpp"
#include "core/local_control.hpp"
#include "core/register_file.hpp"

namespace sring {
namespace {

TEST(RegisterFile, MasterSlaveTiming) {
  RegisterFile rf;
  rf.stage_write(1, 42);
  EXPECT_EQ(rf.read(1), 0u) << "write must not be visible before commit";
  rf.commit();
  EXPECT_EQ(rf.read(1), 42u);
}

TEST(RegisterFile, DoubleWriteIsAnError) {
  RegisterFile rf;
  rf.stage_write(0, 1);
  EXPECT_THROW(rf.stage_write(1, 2), SimError);
}

TEST(RegisterFile, DiscardDropsStagedWrite) {
  RegisterFile rf;
  rf.stage_write(2, 7);
  rf.discard();
  rf.commit();
  EXPECT_EQ(rf.read(2), 0u);
}

TEST(RegisterFile, BoundsChecked) {
  RegisterFile rf;
  EXPECT_THROW(rf.read(4), SimError);
  EXPECT_THROW(rf.stage_write(4, 0), SimError);
  EXPECT_THROW(rf.poke(9, 0), SimError);
}

TEST(LocalControl, CountsThroughLimitAndWraps) {
  LocalControl lc;
  DnodeInstr i0, i1, i2;
  i0.op = DnodeOp::kPass;
  i1.op = DnodeOp::kAdd;
  i2.op = DnodeOp::kMul;
  lc.write(0, i0.encode());
  lc.write(1, i1.encode());
  lc.write(2, i2.encode());
  lc.write(LocalControl::kLimitSlot, 2);
  EXPECT_EQ(lc.current().op, DnodeOp::kPass);
  lc.advance();
  EXPECT_EQ(lc.current().op, DnodeOp::kAdd);
  lc.advance();
  EXPECT_EQ(lc.current().op, DnodeOp::kMul);
  lc.advance();
  EXPECT_EQ(lc.current().op, DnodeOp::kPass) << "must wrap after LIMIT";
}

TEST(LocalControl, LimitOneRegisterLoopsSlotZero) {
  LocalControl lc;
  DnodeInstr mac;
  mac.op = DnodeOp::kMac;
  lc.write(0, mac.encode());
  lc.write(LocalControl::kLimitSlot, 0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(lc.current().op, DnodeOp::kMac);
    lc.advance();
  }
}

TEST(LocalControl, ResetSlotClearsCounter) {
  LocalControl lc;
  lc.write(LocalControl::kLimitSlot, 7);
  lc.advance();
  lc.advance();
  EXPECT_EQ(lc.counter(), 2);
  lc.write(LocalControl::kResetSlot, 0);
  EXPECT_EQ(lc.counter(), 0);
}

TEST(LocalControl, LimitShrinkResetsOutOfRangeCounter) {
  LocalControl lc;
  lc.write(LocalControl::kLimitSlot, 7);
  for (int i = 0; i < 6; ++i) lc.advance();
  EXPECT_EQ(lc.counter(), 6);
  lc.write(LocalControl::kLimitSlot, 3);
  EXPECT_EQ(lc.counter(), 0) << "counter beyond new LIMIT must clear";
}

TEST(LocalControl, BadSlotRejected) {
  LocalControl lc;
  EXPECT_THROW(lc.write(10, 0), SimError);
}

TEST(FeedbackPipeline, DelaySemantics) {
  FeedbackPipeline fp(2, 4);
  fp.push({10, 20});
  EXPECT_EQ(fp.read(0, 0), 10u);
  EXPECT_EQ(fp.read(1, 0), 20u);
  fp.push({11, 21});
  EXPECT_EQ(fp.read(0, 0), 11u);
  EXPECT_EQ(fp.read(0, 1), 10u);
  fp.push({12, 22});
  EXPECT_EQ(fp.read(0, 2), 10u);
  EXPECT_EQ(fp.read(1, 1), 21u);
}

TEST(FeedbackPipeline, DepthPropertyHolds) {
  // read(lane, d) after k pushes returns the (k-d)-th pushed vector.
  FeedbackPipeline fp(1, 8);
  for (Word v = 1; v <= 20; ++v) {
    fp.push({v});
    for (std::size_t d = 0; d < 8 && d < static_cast<std::size_t>(v); ++d) {
      EXPECT_EQ(fp.read(0, d), static_cast<Word>(v - d));
    }
  }
}

TEST(FeedbackPipeline, BoundsAndReset) {
  FeedbackPipeline fp(2, 3);
  EXPECT_THROW(fp.read(2, 0), SimError);
  EXPECT_THROW(fp.read(0, 3), SimError);
  EXPECT_THROW(fp.push({1}), SimError);
  fp.push({5, 6});
  fp.reset();
  EXPECT_EQ(fp.read(0, 0), 0u);
}

TEST(Dnode, ExecutesAndCommitsLikeHardware) {
  Dnode d;
  DnodeInstr instr;
  instr.op = DnodeOp::kAdd;
  instr.src_a = DnodeSrc::kIn1;
  instr.src_b = DnodeSrc::kIn2;
  instr.dst = DnodeDst::kR0;
  instr.out_en = true;

  Dnode::Inputs in;
  in.in1 = to_word(30);
  in.in2 = to_word(12);
  const auto eff = d.execute(instr, in);
  EXPECT_TRUE(eff.executed);
  EXPECT_EQ(eff.result, to_word(42));
  EXPECT_EQ(d.out(), 0u) << "output register is master-slave";
  EXPECT_EQ(d.regs().read(0), 0u);
  d.commit(false);
  EXPECT_EQ(d.out(), to_word(42));
  EXPECT_EQ(d.regs().read(0), to_word(42));
}

TEST(Dnode, RegisterToRegisterSingleCycle) {
  Dnode d;
  d.regs().poke(1, to_word(6));
  d.regs().poke(2, to_word(7));
  DnodeInstr instr;
  instr.op = DnodeOp::kMul;
  instr.src_a = DnodeSrc::kR1;
  instr.src_b = DnodeSrc::kR2;
  instr.dst = DnodeDst::kR1;  // result into one of the two registers
  d.execute(instr, {});
  d.commit(false);
  EXPECT_EQ(d.regs().read(1), to_word(42));
  EXPECT_EQ(d.regs().read(2), to_word(7));
}

TEST(Dnode, MacUsesThirdOperand) {
  Dnode d;
  d.regs().poke(0, to_word(100));
  DnodeInstr instr;
  instr.op = DnodeOp::kMac;
  instr.src_a = DnodeSrc::kIn1;
  instr.src_b = DnodeSrc::kImm;
  instr.src_c = DnodeSrc::kR0;
  instr.dst = DnodeDst::kR0;
  instr.imm = to_word(3);
  Dnode::Inputs in;
  in.in1 = to_word(5);
  d.execute(instr, in);
  d.commit(false);
  EXPECT_EQ(d.regs().read(0), to_word(115));
}

TEST(Dnode, NopDoesNothing) {
  Dnode d;
  const auto eff = d.execute(DnodeInstr{}, {});
  EXPECT_FALSE(eff.executed);
  d.commit(false);
  EXPECT_EQ(d.out(), 0u);
}

TEST(Dnode, OutputHoldsWhenNotDriven) {
  Dnode d;
  DnodeInstr drive;
  drive.op = DnodeOp::kPass;
  drive.src_a = DnodeSrc::kImm;
  drive.imm = to_word(55);
  drive.out_en = true;
  d.execute(drive, {});
  d.commit(false);
  EXPECT_EQ(d.out(), to_word(55));
  // Now an instruction without outEn: out register must hold.
  DnodeInstr hold;
  hold.op = DnodeOp::kPass;
  hold.src_a = DnodeSrc::kImm;
  hold.imm = to_word(99);
  hold.dst = DnodeDst::kR3;
  d.execute(hold, {});
  d.commit(false);
  EXPECT_EQ(d.out(), to_word(55));
  EXPECT_EQ(d.regs().read(3), to_word(99));
}

TEST(Dnode, DiscardOnStall) {
  Dnode d;
  DnodeInstr instr;
  instr.op = DnodeOp::kPass;
  instr.src_a = DnodeSrc::kImm;
  instr.imm = to_word(1);
  instr.dst = DnodeDst::kR0;
  instr.out_en = true;
  d.execute(instr, {});
  d.discard();
  d.commit(false);
  EXPECT_EQ(d.out(), 0u);
  EXPECT_EQ(d.regs().read(0), 0u);
}

TEST(Dnode, CommitAdvancesLocalCounterOnlyWhenAsked) {
  Dnode d;
  d.local().write(LocalControl::kLimitSlot, 3);
  d.execute(DnodeInstr{}, {});
  d.commit(false);
  EXPECT_EQ(d.local().counter(), 0);
  d.execute(DnodeInstr{}, {});
  d.commit(true);
  EXPECT_EQ(d.local().counter(), 1);
}

}  // namespace
}  // namespace sring
