// Unit tests for src/common: types, bit utilities, errors, RNG, image.
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/image.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace sring {
namespace {

TEST(Types, SignedConversionRoundTrips) {
  EXPECT_EQ(as_signed(Word{0}), 0);
  EXPECT_EQ(as_signed(Word{0x7FFF}), 32767);
  EXPECT_EQ(as_signed(Word{0x8000}), -32768);
  EXPECT_EQ(as_signed(Word{0xFFFF}), -1);
}

TEST(Types, ToWordWraps) {
  EXPECT_EQ(to_word(0x12345), Word{0x2345});
  EXPECT_EQ(to_word(-1), Word{0xFFFF});
  EXPECT_EQ(to_word(65536), Word{0});
  EXPECT_EQ(to_word(-32769), Word{0x7FFF});
}

TEST(Types, SaturationClamps) {
  EXPECT_EQ(to_word_saturated(40000), Word{0x7FFF});
  EXPECT_EQ(to_word_saturated(-40000), Word{0x8000});
  EXPECT_EQ(to_word_saturated(123), Word{123});
}

class ToWordProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ToWordProperty, RoundTripsThroughSigned) {
  const std::int64_t v = GetParam();
  // For any in-range value, to_word then as_signed is the identity.
  if (v >= -32768 && v <= 32767) {
    EXPECT_EQ(as_signed(to_word(v)), v);
  }
  // Wrapping is congruent mod 2^16.
  EXPECT_EQ((as_signed(to_word(v)) - v) % 65536, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ToWordProperty,
                         ::testing::Values(-65536, -40000, -32769, -32768,
                                           -1, 0, 1, 32767, 32768, 65535,
                                           65536, 1234567));

TEST(Bits, ExtractDeposit) {
  EXPECT_EQ(extract_bits(0xDEADBEEF, 8, 8), 0xBEu);
  EXPECT_EQ(deposit_bits(0xFF00, 0, 8, 0xAB), 0xFFABu);
  EXPECT_EQ(deposit_bits(0, 60, 4, 0xF), 0xF000000000000000ull);
  // Depositing discards field bits beyond the width.
  EXPECT_EQ(deposit_bits(0, 0, 4, 0x1F), 0xFull);
}

TEST(Bits, ExtractDepositInverse) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t value = rng.next_u64();
    const unsigned lsb = static_cast<unsigned>(rng.next_below(56));
    const unsigned width = 1 + static_cast<unsigned>(rng.next_below(8));
    const std::uint64_t field = rng.next_u64();
    const auto deposited = deposit_bits(value, lsb, width, field);
    EXPECT_EQ(extract_bits(deposited, lsb, width),
              field & ((1ull << width) - 1));
  }
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0xFFFF, 17), 0xFFFF);
}

TEST(Bits, FitsChecks) {
  EXPECT_TRUE(fits_signed(-32768, 16));
  EXPECT_FALSE(fits_signed(-32769, 16));
  EXPECT_TRUE(fits_unsigned(65535, 16));
  EXPECT_FALSE(fits_unsigned(65536, 16));
}

TEST(Error, CheckThrowsSimError) {
  EXPECT_NO_THROW(check(true, "fine"));
  EXPECT_THROW(check(false, "boom"), SimError);
}

TEST(Error, AsmErrorCarriesLocation) {
  const AsmError e("bad token", 12, 5);
  EXPECT_EQ(e.line(), 12u);
  EXPECT_EQ(e.column(), 5u);
  EXPECT_NE(std::string(e.what()).find("12:5"), std::string::npos);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const Word w = rng.next_word_in(-5, 9);
    EXPECT_GE(as_signed(w), -5);
    EXPECT_LE(as_signed(w), 9);
  }
}

TEST(Image, AccessAndClamp) {
  Image img(4, 3, 7);
  EXPECT_EQ(img.at(0, 0), 7u);
  img.at(3, 2) = 99;
  EXPECT_EQ(img.at(3, 2), 99u);
  EXPECT_EQ(img.at_clamped(-5, -5), img.at(0, 0));
  EXPECT_EQ(img.at_clamped(100, 100), img.at(3, 2));
  EXPECT_THROW(img.at(4, 0), SimError);
}

TEST(Image, SyntheticIsDeterministicAnd8Bit) {
  const Image a = Image::synthetic(32, 16, 5);
  const Image b = Image::synthetic(32, 16, 5);
  EXPECT_EQ(a, b);
  for (const Word w : a.pixels()) {
    EXPECT_LE(as_signed(w), 255);
    EXPECT_GE(as_signed(w), 0);
  }
}

TEST(Image, ShiftedMovesContent) {
  const Image a = Image::synthetic(32, 32, 5);
  const Image b = Image::shifted(a, 3, -2, 0, 0);
  // Interior pixels of the shifted frame equal the source moved by
  // (dx, dy).
  EXPECT_EQ(b.at(10, 10), a.at(7, 12));
}

TEST(Image, PgmHeader) {
  const Image a(8, 4, 100);
  const std::string pgm = a.to_pgm();
  EXPECT_EQ(pgm.substr(0, 3), "P5\n");
  EXPECT_NE(pgm.find("8 4"), std::string::npos);
  EXPECT_EQ(pgm.size(), pgm.find("255\n") + 4 + 32);
}

}  // namespace
}  // namespace sring
