// Tests for the DFG front end, the golden interpreter, and the
// DFG -> ring mapper (every mapped program is checked bit-exactly
// against the interpreter).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/fir.hpp"
#include "mapper/mapper.hpp"

namespace sring::mapper {
namespace {

RingGeometry ring16() { return {8, 2, 16}; }
RingGeometry ring32() { return {8, 4, 16}; }

std::vector<Word> random_stream(std::size_t n, std::uint64_t seed,
                                std::int32_t lo = -100,
                                std::int32_t hi = 100) {
  Rng rng(seed);
  std::vector<Word> s(n);
  for (auto& v : s) v = rng.next_word_in(lo, hi);
  return s;
}

TEST(Dfg, ValidationCatchesStructuralErrors) {
  Dfg empty;
  empty.add_input("x");
  EXPECT_THROW(empty.validate(), SimError) << "no outputs";

  Dfg g;
  const auto x = g.add_input("x");
  EXPECT_THROW(g.add_binary(DfgOp::kAdd, x, 99), SimError);
  EXPECT_THROW(g.add_unary(DfgOp::kAdd, x), SimError);
  EXPECT_THROW(g.add_delay(x, 0), SimError);
  EXPECT_THROW(g.mark_output(1234), SimError);
}

TEST(Interpreter, EvaluatesExpressions) {
  Dfg g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  const auto sum = g.add_binary(DfgOp::kAdd, a, b);
  const auto dif = g.add_binary(DfgOp::kSub, a, b);
  const auto prod = g.add_binary(DfgOp::kMul, sum, dif);
  g.mark_output(prod, "a2_minus_b2");

  const auto out = interpret_dfg(g, {{3, 10}, {2, 4}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(as_signed(out[0][0]), 5);    // 9 - 4
  EXPECT_EQ(as_signed(out[0][1]), 84);   // 100 - 16
}

TEST(Interpreter, DelayShiftsStreams) {
  Dfg g;
  const auto x = g.add_input("x");
  const auto d = g.add_delay(x, 2);
  g.mark_output(d, "x_z2");
  const auto out = interpret_dfg(g, {{1, 2, 3, 4, 5}});
  EXPECT_EQ(out[0], (std::vector<Word>{0, 0, 1, 2, 3}));
}

TEST(Interpreter, DelayedTermInExpression) {
  // y[n] = x[n] + 2 * x[n-1].
  Dfg g;
  const auto x = g.add_input("x");
  const auto two = g.add_const(2);
  const auto dx = g.add_delay(x, 1);
  const auto scaled = g.add_binary(DfgOp::kMul, two, dx);
  const auto y = g.add_binary(DfgOp::kAdd, x, scaled);
  g.mark_output(y, "y");
  const auto out = interpret_dfg(g, {{1, 1, 1, 1}});
  EXPECT_EQ(out[0], (std::vector<Word>{1, 3, 3, 3}));
}

TEST(Mapper, MapsSimpleExpressionBitExactly) {
  Dfg g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  const auto sum = g.add_binary(DfgOp::kAdd, a, b);
  const auto dif = g.add_binary(DfgOp::kSub, a, b);
  const auto prod = g.add_binary(DfgOp::kMul, sum, dif);
  g.mark_output(prod, "p");

  const auto mapped = map_dfg(g, ring16());
  EXPECT_EQ(mapped.input_count, 2u);
  EXPECT_EQ(mapped.dnodes_used, 5u);  // 2 inputs + 3 ops
  EXPECT_EQ(mapped.placements.size(), 5u);
  const std::string report = mapping_report(mapped);
  EXPECT_NE(report.find("input 'a'"), std::string::npos);
  EXPECT_NE(report.find("mul"), std::string::npos);
  EXPECT_NE(report.find("output 'p'"), std::string::npos);

  const auto sa = random_stream(64, 1);
  const auto sb = random_stream(64, 2);
  const auto run = run_mapped(mapped, {sa, sb});
  EXPECT_EQ(run.outputs, interpret_dfg(g, {sa, sb}));
  EXPECT_LE(run.cycles_per_sample, 1.2);
}

TEST(Mapper, ConstantsFoldIntoImmediates) {
  Dfg g;
  const auto x = g.add_input("x");
  const auto c = g.add_const(to_word(-7));
  const auto y = g.add_binary(DfgOp::kMul, x, c);
  g.mark_output(y, "scaled");
  const auto mapped = map_dfg(g, ring16());
  EXPECT_EQ(mapped.dnodes_used, 2u) << "const must not take a Dnode";

  const auto s = random_stream(32, 3);
  EXPECT_EQ(run_mapped(mapped, {s}).outputs, interpret_dfg(g, {s}));
}

TEST(Mapper, DelaysBecomeFeedbackDepth) {
  // y[n] = 3 x[n] + 2 x[n-1] + 5 x[n-2]  == FIR [3, 2, 5].
  Dfg g;
  const auto x = g.add_input("x");
  const auto t0 = g.add_binary(DfgOp::kMul, x, g.add_const(3));
  const auto t1 =
      g.add_binary(DfgOp::kMul, g.add_delay(x, 1), g.add_const(2));
  const auto t2 =
      g.add_binary(DfgOp::kMul, g.add_delay(x, 2), g.add_const(5));
  const auto s01 = g.add_binary(DfgOp::kAdd, t0, t1);
  const auto y = g.add_binary(DfgOp::kAdd, s01, t2);
  g.mark_output(y, "y");

  // Three multiplies land on layer 1: needs a 4-lane ring.
  const auto mapped = map_dfg(g, ring32());
  const auto s = random_stream(100, 4, -50, 50);
  const auto run = run_mapped(mapped, {s});
  EXPECT_EQ(run.outputs[0],
            dsp::fir_reference(s, std::vector<Word>{3, 2, 5}));
}

TEST(Mapper, FusesMulAddIntoMac) {
  // y = a*b + c: three operators collapse into one MAC Dnode.
  Dfg g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  const auto c = g.add_input("c");
  const auto prod = g.add_binary(DfgOp::kMul, a, b);
  const auto y = g.add_binary(DfgOp::kAdd, prod, c);
  g.mark_output(y, "y");

  const auto mapped = map_dfg(g, ring32());
  EXPECT_EQ(mapped.dnodes_used, 4u) << "3 inputs + 1 fused MAC";
  EXPECT_NE(mapping_report(mapped).find("fused MAC"), std::string::npos);

  const auto sa = random_stream(48, 31);
  const auto sb = random_stream(48, 32);
  const auto sc = random_stream(48, 33);
  EXPECT_EQ(run_mapped(mapped, {sa, sb, sc}).outputs,
            interpret_dfg(g, {sa, sb, sc}));
}

TEST(Mapper, FusesSubtrahendMulIntoMsu) {
  // y = c - a*b  ->  MSU.
  Dfg g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  const auto prod = g.add_binary(DfgOp::kMul, a, b);
  const auto c = g.add_binary(DfgOp::kAdd, a, b);  // some other value
  const auto y = g.add_binary(DfgOp::kSub, c, prod);
  g.mark_output(y, "y");

  const auto mapped = map_dfg(g, ring32());
  EXPECT_EQ(mapped.dnodes_used, 4u) << "2 inputs + add + fused MSU";

  const auto sa = random_stream(48, 41);
  const auto sb = random_stream(48, 42);
  EXPECT_EQ(run_mapped(mapped, {sa, sb}).outputs,
            interpret_dfg(g, {sa, sb}));
}

TEST(Mapper, DoesNotFuseMultiUseOrLeadingSubMuls) {
  Dfg g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  const auto prod = g.add_binary(DfgOp::kMul, a, b);
  // prod used twice: must stay a separate Dnode.
  const auto s = g.add_binary(DfgOp::kAdd, prod, a);
  const auto t = g.add_binary(DfgOp::kSub, prod, b);  // a*b - c: no MSU
  g.mark_output(s, "s");
  g.mark_output(t, "t");
  const auto mapped = map_dfg(g, ring32());
  EXPECT_EQ(mapped.dnodes_used, 5u);

  const auto sa = random_stream(40, 51);
  const auto sb = random_stream(40, 52);
  EXPECT_EQ(run_mapped(mapped, {sa, sb}).outputs,
            interpret_dfg(g, {sa, sb}));
}

TEST(Mapper, FusedMacWithThreeAdjacentOperandsBumpsALayer) {
  // a*b + c where a, b, c are all fresh values from the same layer:
  // three direct operands cannot share two input ports, so the MAC
  // moves one layer up and reads everything through the pipelines.
  Dfg g;
  const auto x = g.add_input("x");
  const auto y = g.add_input("y");
  const auto p = g.add_binary(DfgOp::kAdd, x, y);   // layer 1
  const auto q = g.add_binary(DfgOp::kSub, x, y);   // layer 1
  const auto r = g.add_binary(DfgOp::kXor, x, y);   // layer 1
  const auto prod = g.add_binary(DfgOp::kMul, p, q);
  const auto out = g.add_binary(DfgOp::kAdd, prod, r);
  g.mark_output(out, "out");

  const auto mapped = map_dfg(g, ring32());
  const auto sx = random_stream(40, 61);
  const auto sy = random_stream(40, 62);
  EXPECT_EQ(run_mapped(mapped, {sx, sy}).outputs,
            interpret_dfg(g, {sx, sy}));
}

TEST(Mapper, LongEdgesUseDeepFeedback) {
  // A value consumed 4 layers downstream travels through a feedback
  // pipeline, not through intermediate Dnodes.
  Dfg g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  auto acc = g.add_binary(DfgOp::kAdd, a, b);  // layer 1
  for (int i = 0; i < 3; ++i) {
    acc = g.add_binary(DfgOp::kAdd, acc, b);  // layers 2..4, b re-read
  }
  const auto y = g.add_binary(DfgOp::kSub, acc, a);  // layer 5, a from 0
  g.mark_output(y, "y");

  const auto mapped = map_dfg(g, ring16());
  const auto sa = random_stream(48, 5);
  const auto sb = random_stream(48, 6);
  EXPECT_EQ(run_mapped(mapped, {sa, sb}).outputs,
            interpret_dfg(g, {sa, sb}));
}

TEST(Mapper, MultipleOutputsWithDifferentLatencies) {
  Dfg g;
  const auto x = g.add_input("x");
  const auto y = g.add_input("y");
  const auto s = g.add_binary(DfgOp::kAdd, x, y);      // layer 1
  const auto m = g.add_binary(DfgOp::kMul, s, s);      // layer 2
  g.mark_output(x, "x_copy");                          // layer 0
  g.mark_output(s, "sum");
  g.mark_output(m, "square");

  const auto mapped = map_dfg(g, ring16());
  ASSERT_EQ(mapped.outputs.size(), 3u);
  EXPECT_EQ(mapped.outputs[0].latency, 0u);
  EXPECT_EQ(mapped.outputs[1].latency, 1u);
  EXPECT_EQ(mapped.outputs[2].latency, 2u);

  const auto sx = random_stream(40, 7);
  const auto sy = random_stream(40, 8);
  EXPECT_EQ(run_mapped(mapped, {sx, sy}).outputs,
            interpret_dfg(g, {sx, sy}));
}

TEST(Mapper, OperandReuseAndUnaryOps) {
  Dfg g;
  const auto x = g.add_input("x");
  const auto twice = g.add_binary(DfgOp::kAdd, x, x);
  const auto inv = g.add_unary(DfgOp::kNot, twice);
  const auto mag = g.add_unary(DfgOp::kAbs, inv);
  g.mark_output(mag, "m");
  const auto mapped = map_dfg(g, ring16());
  const auto s = random_stream(32, 9);
  EXPECT_EQ(run_mapped(mapped, {s}).outputs, interpret_dfg(g, {s}));
}

TEST(Mapper, SaturationDiagnostics) {
  // Layer overflow: a chain deeper than the ring.
  {
    Dfg g;
    auto v = g.add_input("x");
    for (int i = 0; i < 9; ++i) {
      v = g.add_unary(DfgOp::kPass, v);
    }
    g.mark_output(v);
    EXPECT_THROW(map_dfg(g, ring16()), SimError);
  }
  // Lane overflow: three ops forced into one 2-lane layer.
  {
    Dfg g;
    const auto a = g.add_input("a");
    const auto b = g.add_input("b");
    g.mark_output(g.add_binary(DfgOp::kAdd, a, b));
    g.mark_output(g.add_binary(DfgOp::kSub, a, b));
    g.mark_output(g.add_binary(DfgOp::kXor, a, b));
    EXPECT_THROW(map_dfg(g, ring16()), SimError);
    EXPECT_NO_THROW(map_dfg(g, ring32()));
  }
  // Too many inputs for layer 0.
  {
    Dfg g;
    const auto a = g.add_input("a");
    const auto b = g.add_input("b");
    const auto c = g.add_input("c");
    g.mark_output(g.add_binary(DfgOp::kAdd, g.add_binary(DfgOp::kAdd, a, b),
                               c));
    EXPECT_THROW(map_dfg(g, ring16()), SimError);
  }
  // Feedback depth exhausted by a very long delay.
  {
    Dfg g;
    const auto x = g.add_input("x");
    const auto d = g.add_delay(x, 40);
    g.mark_output(g.add_unary(DfgOp::kPass, d));
    EXPECT_THROW(map_dfg(g, ring16()), SimError);
  }
  // Output directly on a delay node.
  {
    Dfg g;
    const auto x = g.add_input("x");
    g.mark_output(g.add_delay(x, 1));
    EXPECT_THROW(map_dfg(g, ring16()), SimError);
  }
  // Constant-only operands.
  {
    Dfg g;
    g.add_input("x");
    g.mark_output(
        g.add_binary(DfgOp::kAdd, g.add_const(1), g.add_const(2)));
    EXPECT_THROW(map_dfg(g, ring16()), SimError);
  }
}

class MapperRandomExpr : public ::testing::TestWithParam<int> {};

TEST_P(MapperRandomExpr, RandomFeedForwardGraphsMatchInterpreter) {
  // Property: random feed-forward graphs over {add, sub, mul, min,
  // max, xor, absdiff} with occasional delays map bit-exactly.
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Dfg g;
  std::vector<NodeId> pool;
  pool.push_back(g.add_input("a"));
  pool.push_back(g.add_input("b"));
  const DfgOp ops[] = {DfgOp::kAdd, DfgOp::kSub,     DfgOp::kMul,
                       DfgOp::kMin, DfgOp::kMax,     DfgOp::kXor,
                       DfgOp::kAbsdiff};
  for (int i = 0; i < 6; ++i) {
    NodeId a = pool[rng.next_below(pool.size())];
    NodeId b = pool[rng.next_below(pool.size())];
    if (rng.next_below(4) == 0) {
      a = g.add_delay(a, 1 + static_cast<unsigned>(rng.next_below(3)));
    }
    pool.push_back(
        g.add_binary(ops[rng.next_below(std::size(ops))], a, b));
  }
  g.mark_output(pool.back(), "out");

  MappedProgram mapped;
  try {
    mapped = map_dfg(g, ring32());
  } catch (const SimError&) {
    GTEST_SKIP() << "graph does not fit this geometry (expected for "
                    "some seeds)";
  }
  const auto sa = random_stream(64, 100 + GetParam());
  const auto sb = random_stream(64, 200 + GetParam());
  EXPECT_EQ(run_mapped(mapped, {sa, sb}).outputs,
            interpret_dfg(g, {sa, sb}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperRandomExpr, ::testing::Range(1, 13));

}  // namespace
}  // namespace sring::mapper
