// Unit tests for the host link (bandwidth modeling) and the flat
// HostFifo beneath it.
#include <gtest/gtest.h>

#include <cstddef>
#include <deque>
#include <vector>

#include "common/error.hpp"
#include "common/host_fifo.hpp"
#include "common/rng.hpp"
#include "sim/host_interface.hpp"

namespace sring {
namespace {

TEST(HostFifo, FifoOrderAndPeek) {
  HostFifo f;
  EXPECT_TRUE(f.empty());
  f.push_back(1);
  f.push_back(2);
  f.push_back(3);
  EXPECT_EQ(f.size(), 3u);
  EXPECT_EQ(f.front(), 1u);
  EXPECT_EQ(f.at(0), 1u);
  EXPECT_EQ(f.at(2), 3u);
  EXPECT_EQ(f.pop(), 1u);
  f.pop_front();
  EXPECT_EQ(f.front(), 3u);
  EXPECT_EQ(f.pop(), 3u);
  EXPECT_TRUE(f.empty());
}

TEST(HostFifo, AssignReplacesAndAppendExtends) {
  HostFifo f;
  f.push_back(7);
  f.pop_front();
  f.assign({4, 5});
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.front(), 4u);
  const std::vector<Word> more{6, 7};
  f.append(more);
  EXPECT_EQ(f.size(), 4u);
  EXPECT_EQ(f.at(3), 7u);
  f.clear();
  EXPECT_TRUE(f.empty());
}

TEST(HostFifo, MatchesDequeAcrossReclaimChurn) {
  // Interleaved pushes and pops well past the lazy-reclaim threshold:
  // the flat fifo must stay word-for-word a std::deque.
  HostFifo f;
  std::deque<Word> ref;
  Rng rng(99);
  for (std::size_t round = 0; round < 10'000; ++round) {
    const int burst = static_cast<int>(rng.next_word_in(1, 5));
    for (int i = 0; i < burst; ++i) {
      const Word w = rng.next_word_in(-5000, 5000);
      f.push_back(w);
      ref.push_back(w);
    }
    const int pops = static_cast<int>(rng.next_word_in(0, 6));
    for (int i = 0; i < pops && !ref.empty(); ++i) {
      ASSERT_FALSE(f.empty());
      ASSERT_EQ(f.pop(), ref.front());
      ref.pop_front();
    }
    ASSERT_EQ(f.size(), ref.size());
    if (!ref.empty()) ASSERT_EQ(f.front(), ref.front());
  }
  while (!ref.empty()) {
    ASSERT_EQ(f.pop(), ref.front());
    ref.pop_front();
  }
  EXPECT_TRUE(f.empty());
}

TEST(LinkRate, FromBytesPerSecond) {
  // 250 MB/s at 200 MHz: 0.625 words/cycle.
  const LinkRate r = LinkRate::from_bytes_per_second(250e6, 200e6);
  EXPECT_NEAR(static_cast<double>(r.num) / r.den, 0.625, 1e-6);
  EXPECT_THROW(LinkRate::from_bytes_per_second(0, 200e6), SimError);
  // Absurdly slow links that can never move a word are rejected.
  EXPECT_THROW(LinkRate::from_bytes_per_second(1e-9, 200e6), SimError);
}

TEST(HostInterface, IdealLinkIsImmediate) {
  HostInterface host;
  host.send(std::vector<Word>{1, 2, 3});
  EXPECT_EQ(host.ring_in().size(), 3u);
  host.ring_out().push_back(9);
  host.tick();
  EXPECT_EQ(host.received(), (std::vector<Word>{9}));
  EXPECT_EQ(host.words_to_core(), 3u);
  EXPECT_EQ(host.words_to_host(), 1u);
}

TEST(HostInterface, RateLimitedDelivery) {
  // One word every two cycles.
  HostInterface host(LinkRate{1, 2});
  host.send(std::vector<Word>{10, 11, 12});
  EXPECT_TRUE(host.ring_in().empty());
  host.tick();
  EXPECT_TRUE(host.ring_in().empty()) << "half a credit is not a word";
  host.tick();
  EXPECT_EQ(host.ring_in().size(), 1u);
  host.tick();
  host.tick();
  EXPECT_EQ(host.ring_in().size(), 2u);
}

TEST(HostInterface, IdleBandwidthDoesNotBank) {
  HostInterface host(LinkRate{1, 2});
  // 10 idle cycles must not accumulate credits.
  for (int i = 0; i < 10; ++i) host.tick();
  host.send(std::vector<Word>{1, 2, 3, 4});
  host.tick();
  host.tick();
  EXPECT_EQ(host.ring_in().size(), 1u)
      << "burst after idle must still respect the rate";
}

TEST(HostInterface, ReturnPathIsAlsoLimited) {
  HostInterface host(LinkRate{1, 2});
  for (Word w = 0; w < 6; ++w) host.ring_out().push_back(w);
  host.tick();
  host.tick();
  EXPECT_EQ(host.received().size(), 1u);
  for (int i = 0; i < 20; ++i) host.tick();
  EXPECT_EQ(host.received().size(), 6u);
}

TEST(HostInterface, TakeReceivedClears) {
  HostInterface host;
  host.ring_out().push_back(5);
  host.tick();
  EXPECT_EQ(host.take_received(), (std::vector<Word>{5}));
  EXPECT_TRUE(host.received().empty());
  // New output after taking is still delivered.
  host.ring_out().push_back(6);
  host.tick();
  EXPECT_EQ(host.take_received(), (std::vector<Word>{6}));
}

TEST(HostInterface, FastLinkMovesMultipleWordsPerCycle) {
  HostInterface host(LinkRate{3, 1});
  host.send(std::vector<Word>{1, 2, 3, 4, 5});
  host.tick();
  EXPECT_EQ(host.ring_in().size(), 3u);
  host.tick();
  EXPECT_EQ(host.ring_in().size(), 5u);
}

}  // namespace
}  // namespace sring
