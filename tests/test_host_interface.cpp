// Unit tests for the host link (bandwidth modeling).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/host_interface.hpp"

namespace sring {
namespace {

TEST(LinkRate, FromBytesPerSecond) {
  // 250 MB/s at 200 MHz: 0.625 words/cycle.
  const LinkRate r = LinkRate::from_bytes_per_second(250e6, 200e6);
  EXPECT_NEAR(static_cast<double>(r.num) / r.den, 0.625, 1e-6);
  EXPECT_THROW(LinkRate::from_bytes_per_second(0, 200e6), SimError);
  // Absurdly slow links that can never move a word are rejected.
  EXPECT_THROW(LinkRate::from_bytes_per_second(1e-9, 200e6), SimError);
}

TEST(HostInterface, IdealLinkIsImmediate) {
  HostInterface host;
  host.send(std::vector<Word>{1, 2, 3});
  EXPECT_EQ(host.ring_in().size(), 3u);
  host.ring_out().push_back(9);
  host.tick();
  EXPECT_EQ(host.received(), (std::vector<Word>{9}));
  EXPECT_EQ(host.words_to_core(), 3u);
  EXPECT_EQ(host.words_to_host(), 1u);
}

TEST(HostInterface, RateLimitedDelivery) {
  // One word every two cycles.
  HostInterface host(LinkRate{1, 2});
  host.send(std::vector<Word>{10, 11, 12});
  EXPECT_TRUE(host.ring_in().empty());
  host.tick();
  EXPECT_TRUE(host.ring_in().empty()) << "half a credit is not a word";
  host.tick();
  EXPECT_EQ(host.ring_in().size(), 1u);
  host.tick();
  host.tick();
  EXPECT_EQ(host.ring_in().size(), 2u);
}

TEST(HostInterface, IdleBandwidthDoesNotBank) {
  HostInterface host(LinkRate{1, 2});
  // 10 idle cycles must not accumulate credits.
  for (int i = 0; i < 10; ++i) host.tick();
  host.send(std::vector<Word>{1, 2, 3, 4});
  host.tick();
  host.tick();
  EXPECT_EQ(host.ring_in().size(), 1u)
      << "burst after idle must still respect the rate";
}

TEST(HostInterface, ReturnPathIsAlsoLimited) {
  HostInterface host(LinkRate{1, 2});
  for (Word w = 0; w < 6; ++w) host.ring_out().push_back(w);
  host.tick();
  host.tick();
  EXPECT_EQ(host.received().size(), 1u);
  for (int i = 0; i < 20; ++i) host.tick();
  EXPECT_EQ(host.received().size(), 6u);
}

TEST(HostInterface, TakeReceivedClears) {
  HostInterface host;
  host.ring_out().push_back(5);
  host.tick();
  EXPECT_EQ(host.take_received(), (std::vector<Word>{5}));
  EXPECT_TRUE(host.received().empty());
  // New output after taking is still delivered.
  host.ring_out().push_back(6);
  host.tick();
  EXPECT_EQ(host.take_received(), (std::vector<Word>{6}));
}

TEST(HostInterface, FastLinkMovesMultipleWordsPerCycle) {
  HostInterface host(LinkRate{3, 1});
  host.send(std::vector<Word>{1, 2, 3, 4, 5});
  host.tick();
  EXPECT_EQ(host.ring_in().size(), 3u);
  host.tick();
  EXPECT_EQ(host.ring_in().size(), 5u);
}

}  // namespace
}  // namespace sring
