// Integration tests of the full System (controller + ring + host link).
#include <gtest/gtest.h>

#include <sstream>

#include "asm/program_builder.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/fir.hpp"
#include "obs/sinks.hpp"
#include "sim/system.hpp"

namespace sring {
namespace {

RingGeometry geom() { return {4, 2, 16}; }

/// A minimal program: one Dnode in local mode computes a running MAC of
/// host pairs and streams every partial sum back.
LoadableProgram running_mac_program() {
  ProgramBuilder pb(geom(), "running_mac");
  PageBuilder page(geom());
  SwitchRoute r;
  r.in1 = PortRoute::host();
  r.in2 = PortRoute::host();
  page.route(0, 0, r);
  page.mode(0, 0, DnodeMode::kLocal);
  pb.add_page(page);

  DnodeInstr mac;
  mac.op = DnodeOp::kMac;
  mac.src_a = DnodeSrc::kIn1;
  mac.src_b = DnodeSrc::kIn2;
  mac.src_c = DnodeSrc::kR0;
  mac.dst = DnodeDst::kR0;
  mac.host_en = true;
  pb.local_program(0, {mac});

  pb.page_switch(0);
  pb.halt();
  return pb.build();
}

TEST(System, RunningMacMatchesGoldenModel) {
  System sys({geom()});
  sys.load(running_mac_program());

  Rng rng(11);
  std::vector<Word> a(64), b(64), interleaved;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.next_word_in(-100, 100);
    b[i] = rng.next_word_in(-100, 100);
    interleaved.push_back(a[i]);
    interleaved.push_back(b[i]);
  }
  sys.host().send(interleaved);
  sys.run_until_outputs(a.size(), 10000);

  const auto expected = dsp::running_mac_reference(a, b);
  const auto got = sys.host().take_received();
  ASSERT_GE(got.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "at index " << i;
  }
}

TEST(System, StatsAccumulate) {
  System sys({geom()});
  sys.load(running_mac_program());
  std::vector<Word> data(32, 1);
  sys.host().send(data);
  sys.run_until_outputs(16, 10000);
  const auto stats = sys.stats();
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_EQ(stats.host_words_in, 32u);
  EXPECT_GE(stats.host_words_out, 16u);
  EXPECT_GT(stats.dnode_ops, 0u);
  EXPECT_EQ(stats.arith_ops, 2 * stats.dnode_ops) << "all ops are MACs";
  EXPECT_GT(stats.config_words_written, 0u);
  EXPECT_GT(stats.utilization(geom().dnode_count()), 0.0);
}

TEST(System, RingStallsWhenHostDataRunsOut) {
  System sys({geom()});
  sys.load(running_mac_program());
  sys.host().send(std::vector<Word>{1, 1});  // one pair only
  sys.run_cycles(50);
  const auto stats = sys.stats();
  EXPECT_EQ(stats.host_words_in, 2u);
  EXPECT_GT(stats.ring_stall_cycles, 0u);
}

TEST(System, LoadRejectsWrongGeometry) {
  System sys({geom()});
  ProgramBuilder pb({2, 2, 16}, "other");
  pb.halt();
  EXPECT_THROW(sys.load(pb.build()), SimError);
}

TEST(System, LoadResetsState) {
  System sys({geom()});
  sys.load(running_mac_program());
  sys.host().send(std::vector<Word>{3, 3, 4, 4});
  sys.run_until_outputs(2, 1000);
  sys.load(running_mac_program());
  EXPECT_EQ(sys.cycle(), 0u);
  EXPECT_FALSE(sys.controller().halted());
  EXPECT_EQ(sys.ring().dnode(0, 0).regs().read(0), 0u);
}

TEST(System, RunUntilHaltHonorsBudget) {
  System sys({geom()});
  ProgramBuilder pb(geom(), "spin");
  pb.label("spin");
  pb.jmp("spin");
  sys.load(pb.build());
  EXPECT_THROW(sys.run_until_halt(100), SimError);
}

TEST(System, BandwidthLimitedLinkStarvesTheRing) {
  // Ideal link vs a link that delivers one word every 4 cycles: the
  // limited system must take roughly 8x longer per MAC pair.
  const std::size_t pairs = 64;
  std::vector<Word> data(2 * pairs, 3);

  System fast({geom()});
  fast.load(running_mac_program());
  fast.host().send(data);
  fast.run_until_outputs(pairs, 100000);
  const auto fast_cycles = fast.stats().cycles;

  System slow({geom(), LinkRate{1, 4}});
  slow.load(running_mac_program());
  slow.host().send(data);
  slow.run_until_outputs(pairs, 100000);
  const auto slow_cycles = slow.stats().cycles;

  EXPECT_GT(slow_cycles, 6 * fast_cycles);
  EXPECT_GT(slow.stats().ring_stall_cycles, 0u);
}

TEST(System, HybridModeRunsLocalAndGlobalDnodesTogether) {
  // Paper §4.2: "all Dnodes have not to run in the same mode, allowing
  // the Systolic Ring to compute either in global mode, local mode or
  // hybrid mode".  Dnode 0.0 runs a stand-alone MAC stream while the
  // controller simultaneously retargets Dnode 1.0 (global mode)
  // between two constants every few cycles.
  System sys({geom()});
  ProgramBuilder pb(geom(), "hybrid");

  PageBuilder page(geom());
  SwitchRoute r;
  r.in1 = PortRoute::host();
  r.in2 = PortRoute::host();
  page.route(0, 0, r);
  page.mode(0, 0, DnodeMode::kLocal);
  pb.add_page(page);

  DnodeInstr mac;
  mac.op = DnodeOp::kMac;
  mac.src_a = DnodeSrc::kIn1;
  mac.src_b = DnodeSrc::kIn2;
  mac.src_c = DnodeSrc::kR0;
  mac.dst = DnodeDst::kR0;
  mac.host_en = true;
  pb.local_program(0, {mac});

  DnodeInstr emit_a;
  emit_a.op = DnodeOp::kPass;
  emit_a.src_a = DnodeSrc::kImm;
  emit_a.imm = 1111;
  emit_a.host_en = true;
  DnodeInstr emit_b = emit_a;
  emit_b.imm = 2222;

  const std::size_t dnode10 = 1 * geom().lanes;
  pb.page_switch(0);
  pb.ldi(1, 4);
  pb.ldi(2, 0);
  pb.label("loop");
  pb.wrcfg(dnode10, emit_a);  // several cycles of 1111
  pb.wrcfg(dnode10, emit_b);  // then 2222, while the MAC never pauses
  pb.addi(1, 1, -1);
  pb.branch(RiscOp::kBne, 1, 2, "loop");
  pb.halt();
  sys.load(pb.build());

  std::vector<Word> pairs;
  for (Word i = 1; i <= 40; ++i) {
    pairs.push_back(i);
    pairs.push_back(1);
  }
  sys.host().send(pairs);
  sys.run_until_halt(1000, /*drain_cycles=*/2);

  // Split the interleaved output stream by producer.
  const auto raw = sys.host().take_received();
  std::vector<Word> mac_out;
  bool saw_1111 = false;
  bool saw_2222 = false;
  for (const Word w : raw) {
    if (w == 1111) {
      saw_1111 = true;
    } else if (w == 2222) {
      saw_2222 = true;
    } else {
      mac_out.push_back(w);
    }
  }
  EXPECT_TRUE(saw_1111 && saw_2222)
      << "the globally reconfigured Dnode must have emitted both values";
  // The stand-alone MAC stream is the exact running sum 1+2+...+n.
  ASSERT_GE(mac_out.size(), 10u);
  for (std::size_t n = 0; n < mac_out.size(); ++n) {
    EXPECT_EQ(as_signed(mac_out[n]),
              static_cast<std::int32_t>((n + 1) * (n + 2) / 2))
        << "n=" << n;
  }
}

TEST(System, TraceProducesOneLinePerCycle) {
  System sys({geom()});
  sys.load(running_mac_program());
  std::ostringstream os;
  obs::TextSink trace(os);
  sys.set_trace(&trace);
  sys.host().send(std::vector<Word>{1, 2, 3, 4});
  sys.run_cycles(5);
  std::size_t lines = 0;
  for (const char c : os.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5u);
  EXPECT_NE(os.str().find("cyc"), std::string::npos);
}

}  // namespace
}  // namespace sring
