// Unit and property tests for switch route encoding.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/switch.hpp"

namespace sring {
namespace {

TEST(SwitchRoute, DefaultIsAllZero) {
  EXPECT_EQ(SwitchRoute{}.encode(), 0u);
  EXPECT_EQ(SwitchRoute::decode(0), SwitchRoute{});
}

TEST(SwitchRoute, FactoryHelpers) {
  EXPECT_EQ(PortRoute::zero().kind, RouteKind::kZero);
  EXPECT_EQ(PortRoute::prev(3).kind, RouteKind::kPrev);
  EXPECT_EQ(PortRoute::prev(3).lane, 3);
  EXPECT_EQ(PortRoute::host().kind, RouteKind::kHost);
  EXPECT_EQ(PortRoute::bus().kind, RouteKind::kBus);
  const auto fb = PortRoute::feedback({4, 1, 9});
  EXPECT_EQ(fb.kind, RouteKind::kFeedback);
  EXPECT_EQ(fb.fb.pipe, 4);
  EXPECT_EQ(fb.fb.depth, 9);
}

TEST(SwitchRoute, FullRoundTrip) {
  SwitchRoute r;
  r.in1 = PortRoute::prev(5);
  r.in2 = PortRoute::feedback({31, 15, 15});
  r.fifo1 = {7, 3, 12};
  r.fifo2 = {0, 1, 2};
  r.host_out_en = true;
  r.host_out_lane = 9;
  EXPECT_EQ(SwitchRoute::decode(r.encode()), r);
}

TEST(SwitchRoute, RandomRoundTripProperty) {
  Rng rng(2024);
  for (int i = 0; i < 2000; ++i) {
    const auto random_port = [&]() {
      switch (rng.next_below(5)) {
        case 0:
          return PortRoute::zero();
        case 1:
          return PortRoute::prev(
              static_cast<std::uint8_t>(rng.next_below(16)));
        case 2:
          return PortRoute::host();
        case 3:
          return PortRoute::bus();
        default:
          return PortRoute::feedback(
              {static_cast<std::uint8_t>(rng.next_below(32)),
               static_cast<std::uint8_t>(rng.next_below(16)),
               static_cast<std::uint8_t>(rng.next_below(16))});
      }
    };
    SwitchRoute r;
    r.in1 = random_port();
    r.in2 = random_port();
    r.fifo1 = {static_cast<std::uint8_t>(rng.next_below(32)),
               static_cast<std::uint8_t>(rng.next_below(16)),
               static_cast<std::uint8_t>(rng.next_below(16))};
    r.fifo2 = {static_cast<std::uint8_t>(rng.next_below(32)),
               static_cast<std::uint8_t>(rng.next_below(16)),
               static_cast<std::uint8_t>(rng.next_below(16))};
    r.host_out_en = rng.next_below(2) != 0;
    r.host_out_lane = static_cast<std::uint8_t>(rng.next_below(16));
    EXPECT_EQ(SwitchRoute::decode(r.encode()), r);
  }
}

TEST(SwitchRoute, ToStringDescribesRoutes) {
  SwitchRoute r;
  r.in1 = PortRoute::prev(2);
  r.in2 = PortRoute::host();
  r.host_out_en = true;
  r.host_out_lane = 1;
  const std::string s = r.to_string();
  EXPECT_NE(s.find("prev2"), std::string::npos);
  EXPECT_NE(s.find("host"), std::string::npos);
  EXPECT_NE(s.find("hostout=prev1"), std::string::npos);
}

TEST(SwitchRoute, EncodingFitsDocumentedFields) {
  // host_out_lane occupies the top nibble below bit 63.
  SwitchRoute r;
  r.host_out_lane = 15;
  r.host_out_en = true;
  EXPECT_LT(r.encode(), 1ull << 63);
}

}  // namespace
}  // namespace sring
