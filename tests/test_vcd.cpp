// Tests for the VCD waveform writer.
#include <gtest/gtest.h>

#include <sstream>

#include "kernels/mac_kernel.hpp"
#include "sim/system.hpp"
#include "sim/vcd.hpp"

namespace sring {
namespace {

TEST(Vcd, HeaderDeclaresAllSignals) {
  const RingGeometry g{4, 2, 16};
  System sys({g});
  std::ostringstream os;
  VcdWriter vcd(os, sys);
  const std::string header = os.str();
  EXPECT_NE(header.find("$timescale"), std::string::npos);
  EXPECT_NE(header.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(header.find("clk"), std::string::npos);
  EXPECT_NE(header.find("bus[15:0]"), std::string::npos);
  EXPECT_NE(header.find("dnode_0_0_out[15:0]"), std::string::npos);
  EXPECT_NE(header.find("dnode_3_1_out[15:0]"), std::string::npos);
  // One $var per signal: clk, bus, pc, halted, fifo + 8 dnodes = 13.
  std::size_t vars = 0;
  std::size_t pos = 0;
  while ((pos = header.find("$var", pos)) != std::string::npos) {
    ++vars;
    pos += 4;
  }
  EXPECT_EQ(vars, 13u);
}

TEST(Vcd, EmitsChangesOnlyAndClockToggles) {
  const RingGeometry g{4, 2, 16};
  System sys({g});
  // Same running MAC, but also driving the output register so the
  // waveform shows the partial sums.
  LoadableProgram prog = kernels::make_running_mac_program(g);
  for (auto& lw : prog.local_init) {
    if (lw.slot < kLocalProgramSlots) {
      DnodeInstr instr = DnodeInstr::decode(lw.value);
      instr.out_en = true;
      lw.value = instr.encode();
    }
  }
  sys.load(prog);
  sys.host().send(std::vector<Word>{1, 2, 3, 4});

  std::ostringstream os;
  VcdWriter vcd(os, sys);
  const std::size_t header_len = os.str().size();
  for (int i = 0; i < 6; ++i) {
    sys.step();
    vcd.sample(sys);
  }
  const std::string body = os.str().substr(header_len);
  // Six cycles -> 12 timesteps (#0..#11).
  EXPECT_NE(body.find("#0"), std::string::npos);
  EXPECT_NE(body.find("#11"), std::string::npos);
  // Clock toggles every sample.
  std::size_t rising = 0;
  std::size_t pos = 0;
  while ((pos = body.find("1!", pos)) != std::string::npos) {
    ++rising;
    ++pos;
  }
  EXPECT_EQ(rising, 6u) << "clk is signal '!' and must rise per cycle";
  // The MAC results 1*2=2 and 2+3*4=14 travel through the out signal:
  // binary 1110 must appear for the second partial sum.
  EXPECT_NE(body.find("b1110 "), std::string::npos);
}

TEST(Vcd, UnchangedSignalsAreNotReemitted) {
  const RingGeometry g{2, 1, 4};
  System sys({g});
  // Idle program: halt immediately, nothing in the ring changes.
  RiscInstr halt;
  halt.op = RiscOp::kHalt;
  LoadableProgram idle;
  idle.geometry = g;
  idle.controller_code = {halt.encode()};
  sys.load(idle);
  std::ostringstream os;
  VcdWriter vcd(os, sys);
  const std::size_t header_len = os.str().size();
  for (int i = 0; i < 3; ++i) {
    sys.step();
    vcd.sample(sys);
  }
  const std::string body = os.str().substr(header_len);
  // The bus signal ('"') is emitted exactly once (its initial 0).
  std::size_t bus_changes = 0;
  std::size_t pos = 0;
  while ((pos = body.find("b0 \"", pos)) != std::string::npos) {
    ++bus_changes;
    ++pos;
  }
  EXPECT_EQ(bus_changes, 1u);
}

}  // namespace
}  // namespace sring
