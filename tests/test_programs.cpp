// Integration tests over the on-disk assembly corpus
// (examples/programs/*.sasm): every program is assembled from its
// file, run, and checked against a golden model — the complete
// "assembling tool -> object code -> architecture" flow of §5.1.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "asm/assembler.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/fir.hpp"
#include "dsp/iir.hpp"
#include "sim/system.hpp"

#ifndef SRING_PROGRAMS_DIR
#error "SRING_PROGRAMS_DIR must be defined by the build"
#endif

namespace sring {
namespace {

LoadableProgram load_sasm(const std::string& name) {
  const std::string path = std::string(SRING_PROGRAMS_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in.good()) {
    throw SimError("cannot open corpus program " + path);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return assemble(ss.str());
}

std::vector<Word> random_stream(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> s(n);
  for (auto& v : s) v = rng.next_word_in(-100, 100);
  return s;
}

TEST(ProgramCorpus, RunningMac) {
  const auto prog = load_sasm("mac.sasm");
  EXPECT_EQ(prog.name, "running_mac");
  System sys({prog.geometry});
  sys.load(prog);

  const auto a = random_stream(32, 1);
  const auto b = random_stream(32, 2);
  std::vector<Word> feed;
  for (std::size_t i = 0; i < a.size(); ++i) {
    feed.push_back(a[i]);
    feed.push_back(b[i]);
  }
  sys.host().send(feed);
  sys.run_until_outputs(a.size(), 1000);
  auto got = sys.host().take_received();
  got.resize(a.size());
  EXPECT_EQ(got, dsp::running_mac_reference(a, b));
}

TEST(ProgramCorpus, EdgeDetect) {
  const auto prog = load_sasm("edge_detect.sasm");
  System sys({prog.geometry});
  sys.load(prog);

  const auto x = random_stream(48, 3);
  sys.host().send(std::vector<Word>(x.begin(), x.end()));
  sys.run_until_outputs(x.size(), 1000);
  const auto got = sys.host().take_received();

  // Output at cycle t is ||x[t-1] - x[t-2]|| with zero history.
  for (std::size_t t = 0; t < x.size(); ++t) {
    const std::int32_t cur = t >= 1 ? as_signed(x[t - 1]) : 0;
    const std::int32_t prev = t >= 2 ? as_signed(x[t - 2]) : 0;
    EXPECT_EQ(as_signed(got[t]), std::abs(cur - prev)) << "t=" << t;
  }
}

TEST(ProgramCorpus, Fir3UsesEquConstants) {
  const auto prog = load_sasm("fir3.sasm");
  System sys({prog.geometry});
  sys.load(prog);

  const auto x = random_stream(64, 4);
  std::vector<Word> feed(x.begin(), x.end());
  feed.insert(feed.end(), 3, 0);  // warm-up flush
  sys.host().send(feed);
  sys.run_until_outputs(x.size() + 3, 2000);
  const auto raw = sys.host().take_received();

  const auto expected = dsp::fir_reference(
      x, std::vector<Word>{2, to_word(-3), 5});
  for (std::size_t n = 0; n < x.size(); ++n) {
    EXPECT_EQ(raw[n + 3], expected[n]) << "n=" << n;
  }
}

TEST(ProgramCorpus, Fir4WithMacros) {
  const auto prog = load_sasm("fir4_macro.sasm");
  System sys({prog.geometry});
  sys.load(prog);

  const auto x = random_stream(48, 6);
  std::vector<Word> feed(x.begin(), x.end());
  feed.insert(feed.end(), 4, 0);
  sys.host().send(feed);
  sys.run_until_outputs(x.size() + 4, 2000);
  const auto raw = sys.host().take_received();
  const auto expected = dsp::fir_reference(
      x, std::vector<Word>{1, to_word(-2), 3, to_word(-4)});
  for (std::size_t n = 0; n < x.size(); ++n) {
    EXPECT_EQ(raw[n + 4], expected[n]) << "n=" << n;
  }
}

TEST(ProgramCorpus, Iir1Recursion) {
  const auto prog = load_sasm("iir1.sasm");
  System sys({prog.geometry});
  sys.load(prog);

  const auto x = random_stream(40, 5);
  sys.host().send(std::vector<Word>(x.begin(), x.end()));
  sys.run_until_outputs(x.size(), 2000);
  auto got = sys.host().take_received();
  got.resize(x.size());
  EXPECT_EQ(got, dsp::iir1_reference(x, to_word(3)));
}

TEST(ProgramCorpus, AllProgramsHaveConsistentGeometry) {
  for (const char* name : {"mac.sasm", "edge_detect.sasm", "fir3.sasm",
                           "fir4_macro.sasm", "iir1.sasm"}) {
    const auto prog = load_sasm(name);
    EXPECT_NO_THROW(prog.geometry.validate()) << name;
    EXPECT_FALSE(prog.controller_code.empty()) << name;
  }
}

}  // namespace
}  // namespace sring
